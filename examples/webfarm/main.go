// Webfarm demonstrates both directions of adaptation on a web-server farm
// under a diurnal load curve: the framework activates spare servers as load
// climbs (the paper's addServer repair) and — with the ScaleDown extension,
// the paper's third, unshown repair — deactivates them again as load falls,
// honouring the cost goal of §1: "the set of currently active servers should
// be kept to a minimum".
//
// Run: go run ./examples/webfarm
package main

import (
	"fmt"

	"archadapt"
)

func main() {
	k := archadapt.NewKernel()
	net := archadapt.NewNetwork(k)

	// A small datacenter: clients on one switch, the farm on another.
	cRouter := net.AddRouter("edge")
	sRouter := net.AddRouter("farm")
	net.Connect(cRouter, sRouter, 100e6, 5e-4)
	mgrHost := net.AddHost("control-plane")
	net.Connect(mgrHost, sRouter, 100e6, 5e-4)

	serverHosts := map[string]archadapt.NodeID{}
	servers := []string{"W1", "W2", "W3", "W4", "W5", "W6"}
	for _, s := range servers {
		serverHosts[s] = net.AddHost("host" + s)
		net.Connect(serverHosts[s], sRouter, 100e6, 5e-4)
	}
	clientHosts := map[string]archadapt.NodeID{}
	clients := []archadapt.ClientSpec{}
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("pop%d", i)
		clientHosts[name] = net.AddHost(name)
		net.Connect(clientHosts[name], cRouter, 100e6, 5e-4)
		clients = append(clients, archadapt.ClientSpec{Name: name, Group: "Farm"})
	}

	spec := archadapt.Spec{
		Name:          "webfarm",
		Groups:        []archadapt.GroupSpec{{Name: "Farm", Servers: servers, ActiveCount: 2}},
		Clients:       clients,
		MaxLatency:    1.0,
		MaxServerLoad: 4,
		MinBandwidth:  10e3,
	}
	dep, err := archadapt.Deploy(k, net, spec, archadapt.Placement{
		ServerHosts:   serverHosts,
		ClientHosts:   clientHosts,
		QueueHost:     mgrHost,
		ManagerHost:   mgrHost,
		ServiceBase:   0.05,
		ServicePerBit: 0.25 / (8 * 8192), // ~0.3 s per 8 KB page
		ClientRate:    1.0,
	}, 7)
	if err != nil {
		panic(err)
	}
	cfg := archadapt.DefaultConfig()
	cfg.ScaleDown = true
	cfg.SettleTime = 90      // let each scaling action take effect
	cfg.LoadSmoothing = 0.15 // hysteresis against add/remove flapping
	mgr := dep.Manage(cfg)
	dep.Model.Props().Set("minServerLoad", 0.5)
	dep.Model.Props().Set("minReplicas", 2.0)
	dep.App.Start()

	// Diurnal curve: each population ramps 1 -> 4 -> 1 req/s.
	rates := []struct {
		at   float64
		rate float64
	}{
		{300, 2.0}, {600, 4.0}, {1200, 2.0}, {1500, 1.0},
	}
	for _, step := range rates {
		step := step
		k.At(step.at, func() {
			for _, c := range clients {
				dep.App.Client(c.Name).Rate = step.rate
			}
			fmt.Printf("t=%-5.0f demand -> %.0f req/s per population (%.0f aggregate)\n",
				step.at, step.rate, step.rate*4)
		})
	}
	// Report farm size over time.
	k.Ticker(60, 60, func(now float64) {
		fmt.Printf("t=%-5.0f active servers: %v  queue=%d\n",
			now, dep.App.ActiveServersOf("Farm"), dep.App.QueueLen("Farm"))
	})

	k.Run(1800)

	fmt.Println("\nrepair history:")
	for _, sp := range mgr.Spans() {
		fmt.Printf("  [%5.0f..%5.0f] %v %v\n", sp.Start, sp.End, sp.Tactics, sp.Ops)
	}
	fmt.Printf("\nfinal farm: %v (started with 2, peaked during the ramp, shrank after)\n",
		dep.App.ActiveServersOf("Farm"))
}
