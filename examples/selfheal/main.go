// Selfheal demonstrates fault recovery: two of a group's three servers crash
// mid-run. The framework never observes the crash directly — it sees the
// architectural symptoms (queue length and client latency climbing past
// their bounds) and repairs the architecture by activating spares, exactly
// the externalized-adaptation argument of §1: the application itself has no
// recovery code.
//
// Run: go run ./examples/selfheal
package main

import (
	"fmt"

	"archadapt"
)

func main() {
	k := archadapt.NewKernel()
	net := archadapt.NewNetwork(k)

	r := net.AddRouter("r")
	mgrHost := net.AddHost("mgr")
	net.Connect(mgrHost, r, 10e6, 1e-3)
	serverHosts := map[string]archadapt.NodeID{}
	for _, s := range []string{"S1", "S2", "S3", "S4", "S5"} {
		serverHosts[s] = net.AddHost("h" + s)
		net.Connect(serverHosts[s], r, 10e6, 1e-3)
	}
	clientHosts := map[string]archadapt.NodeID{}
	clients := []archadapt.ClientSpec{}
	for _, c := range []string{"C1", "C2", "C3"} {
		clientHosts[c] = net.AddHost("h" + c)
		net.Connect(clientHosts[c], r, 10e6, 1e-3)
		clients = append(clients, archadapt.ClientSpec{Name: c, Group: "G"})
	}

	spec := archadapt.Spec{
		Name: "selfheal",
		Groups: []archadapt.GroupSpec{
			{Name: "G", Servers: []string{"S1", "S2", "S3", "S4", "S5"}, ActiveCount: 3},
		},
		Clients:       clients,
		MaxLatency:    2.0,
		MaxServerLoad: 6,
		MinBandwidth:  10e3,
	}
	dep, err := archadapt.Deploy(k, net, spec, archadapt.Placement{
		ServerHosts:   serverHosts,
		ClientHosts:   clientHosts,
		QueueHost:     mgrHost,
		ManagerHost:   mgrHost,
		ServicePerBit: 0.3 / (8 * 8192), // ~0.35 s per baseline reply
		ClientRate:    2.0,              // 6 req/s aggregate on ~8.5 req/s capacity
	}, 11)
	if err != nil {
		panic(err)
	}
	cfg := archadapt.DefaultConfig()
	cfg.SettleTime = 30
	mgr := dep.Manage(cfg)
	dep.App.Start()

	k.At(200, func() {
		fmt.Println("t=200  S1 and S2 crash (the framework is not told)")
		_ = dep.App.CrashServer("S1")
		_ = dep.App.CrashServer("S2")
	})
	k.Ticker(60, 60, func(now float64) {
		fmt.Printf("t=%-5.0f active=%v queue=%d\n", now, dep.App.ActiveServersOf("G"), dep.App.QueueLen("G"))
	})

	k.Run(900)

	fmt.Println("\nrepair history (symptom-driven, no fault notification):")
	for _, sp := range mgr.Spans() {
		fmt.Printf("  [%5.0f..%5.0f] subject=%s %v %v\n", sp.Start, sp.End, sp.Subject, sp.Tactics, sp.Ops)
	}
	fmt.Printf("\nfinal active servers: %v\n", dep.App.ActiveServersOf("G"))
	fmt.Printf("alerts (situations no tactic could repair): %d\n", len(mgr.Alerts()))
}
