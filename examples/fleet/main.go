// Fleet walkthrough: the grid control plane, step by step.
//
// We generate a 12-router grid, stand up a fleet control plane on it, admit
// four managed applications (each with its own architectural model, gauges
// and repair engine over the shared kernel), aim bandwidth competition at
// one of them, retire another mid-run, and admit a late arrival into the
// freed slots — then print the per-app summary table.
//
// Run: go run ./examples/fleet
package main

import (
	"fmt"

	"archadapt"
)

func main() {
	k := archadapt.NewKernel()
	grid := archadapt.GenerateGrid(k, archadapt.GridSpec{
		Routers:        12,
		HostsPerRouter: 3,
		Seed:           7,
	})
	fmt.Println("generated", grid)

	f, err := archadapt.NewFleet(k, grid, 7, archadapt.FleetConfig{
		Adaptive:     true,
		HostCapacity: 1, // one process per host: contention stays targeted
	})
	if err != nil {
		panic(err)
	}

	// Admit four applications. Each gets two server groups spread across
	// routers by the placement scheduler, so the bandwidth repair always has
	// somewhere to move clients.
	for _, name := range []string{"billing", "search", "media", "batch"} {
		a, err := f.Admit(archadapt.FleetAppSpec{Name: name})
		if err != nil {
			panic(err)
		}
		fmt.Printf("admitted %-8s queue=%s manager=%s\n", a.Name,
			grid.Net.Node(a.Assign.QueueHost).Name,
			grid.Net.Node(a.Assign.ManagerHost).Name)
	}

	// t=150: competition crushes search's primary group. Its own manager
	// must notice (latency gauge), diagnose (bandwidth below floor) and
	// repair (move clients to SG2) — the others are untouched.
	k.At(150, func() {
		fmt.Println("t=150  competition crushes search's primary server group")
		_ = f.CrushPrimary("search")
	})
	k.At(400, func() { f.RestorePrimary("search") })

	// t=250: batch finishes and is retired; its slots go back to the pool
	// and a late arrival takes them.
	k.At(250, func() {
		fmt.Println("t=250  batch retires; admitting late-arriving app 'ml'")
		if err := f.Retire("batch"); err != nil {
			panic(err)
		}
		if _, err := f.Admit(archadapt.FleetAppSpec{Name: "ml"}); err != nil {
			panic(err)
		}
	})

	k.Run(600)
	f.Stop()
	k.Run(720)

	fmt.Println()
	fmt.Print(archadapt.FleetTable(f.Summaries()))

	search := f.App("search")
	fmt.Println()
	for _, sp := range search.Mgr.Spans() {
		fmt.Printf("search repair [%.0f..%.0f s] strategy=%s tactics=%v\n",
			sp.Start, sp.End, sp.Strategy, sp.Tactics)
	}
	fmt.Printf("search clients now on: ")
	for _, c := range search.Opspec.Clients {
		fmt.Printf("%s=%s ", c.Name, search.Sys.Client(c.Name).Group)
	}
	fmt.Println()
}
