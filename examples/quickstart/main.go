// Quickstart: the smallest end-to-end use of the framework.
//
// We build a two-group client/server system on a toy network, crush the
// bandwidth between the client and its server group, and watch the
// architecture manager detect the latency violation and move the client to
// the healthy group — the paper's fixBandwidth repair, end to end.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"archadapt"
)

func main() {
	k := archadapt.NewKernel()
	net := archadapt.NewNetwork(k)

	// Topology: client -- r1 -- r2 -- groupA; r1 -- r3 -- groupB.
	cliHost := net.AddHost("client")
	r1 := net.AddRouter("r1")
	r2 := net.AddRouter("r2")
	r3 := net.AddRouter("r3")
	hostA := net.AddHost("hostA")
	hostB := net.AddHost("hostB")
	mgrHost := net.AddHost("mgr")
	net.Connect(cliHost, r1, 10e6, 1e-3)
	linkA := net.Connect(r1, r2, 10e6, 1e-3)
	net.Connect(r2, hostA, 10e6, 1e-3)
	net.Connect(r1, r3, 10e6, 1e-3)
	net.Connect(r3, hostB, 10e6, 1e-3)
	net.Connect(r1, mgrHost, 10e6, 1e-3)

	spec := archadapt.Spec{
		Name: "quickstart",
		Groups: []archadapt.GroupSpec{
			{Name: "GroupA", Servers: []string{"A1"}, ActiveCount: 1},
			{Name: "GroupB", Servers: []string{"B1"}, ActiveCount: 1},
		},
		Clients:       []archadapt.ClientSpec{{Name: "C1", Group: "GroupA"}},
		MaxLatency:    2.0,
		MaxServerLoad: 6,
		MinBandwidth:  10e3,
	}
	dep, err := archadapt.Deploy(k, net, spec, archadapt.Placement{
		ServerHosts: map[string]archadapt.NodeID{"A1": hostA, "B1": hostB},
		ClientHosts: map[string]archadapt.NodeID{"C1": cliHost},
		QueueHost:   mgrHost,
		ManagerHost: mgrHost,
	}, 42)
	if err != nil {
		panic(err)
	}
	mgr := dep.Manage(archadapt.DefaultConfig())
	dep.App.Start()

	// At t=60 s, competition starves the path to GroupA (5 Kbps left).
	k.At(60, func() {
		fmt.Println("t=60   competition crushes the client<->GroupA path")
		net.SetBackgroundBoth(linkA, 10e6-5e3)
	})

	k.Run(300)

	fmt.Printf("t=300  client is now on %s\n", dep.App.Client("C1").Group)
	for _, sp := range mgr.Spans() {
		fmt.Printf("repair [%0.0f..%0.0f s] subject=%s tactics=%v ops=%v\n",
			sp.Start, sp.End, sp.Subject, sp.Tactics, sp.Ops)
	}
	if len(mgr.Spans()) == 0 {
		fmt.Println("no repairs fired (unexpected)")
	}
	fmt.Println("\narchitectural model after adaptation:")
	fmt.Print(archadapt.PrintModel(dep.Model))
}
