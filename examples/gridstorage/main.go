// Gridstorage reruns the paper's full evaluation (§5): the Figure 6 testbed
// under the Figure 7 workload, thirty simulated minutes each for the control
// run (no adaptation) and the adaptive run, then prints the regenerated
// Figures 8–13 and the control-vs-adaptive comparison.
//
// Run: go run ./examples/gridstorage [-seed N] [-csv]
package main

import (
	"flag"
	"fmt"

	"archadapt"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed (shared by both runs)")
	csv := flag.Bool("csv", false, "emit CSV series instead of ASCII plots")
	flag.Parse()

	fmt.Println("running control (no adaptation), 1800 simulated seconds...")
	control := archadapt.RunExperiment(archadapt.ExperimentOptions{Seed: *seed})
	fmt.Println("running adaptive, same seed...")
	adaptive := archadapt.RunExperiment(archadapt.ExperimentOptions{Adaptive: true, Seed: *seed})

	figures := []struct {
		f   archadapt.Figure
		res *archadapt.ExperimentResults
	}{
		{archadapt.Figure7, control},
		{archadapt.Figure8, control},
		{archadapt.Figure9, control},
		{archadapt.Figure10, control},
		{archadapt.Figure11, adaptive},
		{archadapt.Figure12, adaptive},
		{archadapt.Figure13, adaptive},
	}
	for _, fig := range figures {
		fmt.Println()
		if *csv && fig.f != archadapt.Figure7 {
			fmt.Println("#", fig.f.Title())
			fmt.Print(archadapt.FigureCSV(fig.f, fig.res))
			continue
		}
		fmt.Print(archadapt.RenderFigure(fig.f, fig.res))
	}

	fmt.Println()
	fmt.Println("=== control vs adaptive (the paper's §5.2 discussion) ===")
	fmt.Print(archadapt.CompareRuns(control, adaptive))

	fmt.Println()
	fmt.Println("=== per-run summaries ===")
	fmt.Println(control.Summarize())
	fmt.Println(adaptive.Summarize())
}
