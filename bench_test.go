package archadapt

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Each figure bench runs the corresponding 1800-second
// experiment and reports the quantities the paper reads off the plot as
// custom benchmark metrics, so `go test -bench=.` reproduces the evaluation
// end to end:
//
//	Figure 7        BenchmarkFigure7Workload
//	Figure 8-10     BenchmarkFigure{8,9,10}Control*
//	Figure 11-13    BenchmarkFigure{11,12,13}Repair*
//	Table 1         BenchmarkTable1Operators
//	§5.3 repair time BenchmarkRepairDuration (+ BenchmarkAblationGaugeCaching)
//	§5.3 monitoring  BenchmarkAblationMonitoringQoS
//	§5.3 Remos       BenchmarkAblationRemosPrequery
//	§5.3 oscillation BenchmarkAblationOscillationDamping
//	§7 selection     BenchmarkAblationSmartSelection
//	§5 sizing        BenchmarkQueueingAnalysis
//
// Shape expectations (not absolute numbers) are recorded in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"archadapt/internal/benchfix"
	"archadapt/internal/envmgr"
	"archadapt/internal/experiment"
	"archadapt/internal/netsim"
	"archadapt/internal/queueing"
	"archadapt/internal/remos"
	"archadapt/internal/repair"
	"archadapt/internal/sim"
)

func benchSeed(i int) uint64 { return uint64(i + 1) }

func runControl(i int, cfg ManagerConfig) *ExperimentResults {
	return RunExperiment(ExperimentOptions{Seed: benchSeed(i), Cfg: cfg})
}

func runAdaptive(i int, cfg ManagerConfig) *ExperimentResults {
	return RunExperiment(ExperimentOptions{Adaptive: true, Seed: benchSeed(i), Cfg: cfg})
}

// BenchmarkFigure7Workload builds and installs the Figure 7 schedule.
func BenchmarkFigure7Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := NewTestbed(benchSeed(i))
		sched := PaperWorkload(tb.Net, tb.App, tb.Links, NewRand(benchSeed(i)))
		sched.Install(tb.K)
		if len(sched.Steps) < 5 {
			b.Fatal("workload schedule incomplete")
		}
	}
}

// BenchmarkFigure8ControlLatency regenerates the control latency series.
func BenchmarkFigure8ControlLatency(b *testing.B) {
	var first, frac float64
	for i := 0; i < b.N; i++ {
		s := runControl(i, ManagerConfig{}).Summarize()
		first += s.FirstViolationAt
		frac += s.FracAbove2s
	}
	b.ReportMetric(first/float64(b.N), "s/first-violation")
	b.ReportMetric(100*frac/float64(b.N), "%above-2s")
}

// BenchmarkFigure9ControlLoad regenerates the control queue-length series.
func BenchmarkFigure9ControlLoad(b *testing.B) {
	var maxq float64
	for i := 0; i < b.N; i++ {
		maxq += runControl(i, ManagerConfig{}).Summarize().MaxQueue
	}
	b.ReportMetric(maxq/float64(b.N), "max-queue")
}

// BenchmarkFigure10ControlBandwidth regenerates the control available-
// bandwidth series.
func BenchmarkFigure10ControlBandwidth(b *testing.B) {
	var minbw float64
	for i := 0; i < b.N; i++ {
		minbw += runControl(i, ManagerConfig{}).Summarize().MinBandwidthMbps
	}
	b.ReportMetric(minbw/float64(b.N), "Mbps-min")
}

// BenchmarkFigure11RepairLatency regenerates the adaptive latency series
// with its repair intervals.
func BenchmarkFigure11RepairLatency(b *testing.B) {
	var frac, final float64
	for i := 0; i < b.N; i++ {
		s := runAdaptive(i, ManagerConfig{}).Summarize()
		frac += s.FracAbove2s
		final += s.FinalPhaseFracAbove2s
	}
	b.ReportMetric(100*frac/float64(b.N), "%above-2s")
	b.ReportMetric(100*final/float64(b.N), "%above-2s-final")
}

// BenchmarkFigure12RepairBandwidth regenerates the adaptive bandwidth
// series.
func BenchmarkFigure12RepairBandwidth(b *testing.B) {
	var moves float64
	for i := 0; i < b.N; i++ {
		moves += float64(runAdaptive(i, ManagerConfig{}).Summarize().Moves)
	}
	b.ReportMetric(moves/float64(b.N), "client-moves")
}

// BenchmarkFigure13RepairLoad regenerates the adaptive queue-length series.
func BenchmarkFigure13RepairLoad(b *testing.B) {
	var maxq, acts float64
	for i := 0; i < b.N; i++ {
		s := runAdaptive(i, ManagerConfig{}).Summarize()
		maxq += s.MaxQueue
		acts += float64(len(s.ServerActivations))
	}
	b.ReportMetric(maxq/float64(b.N), "max-queue")
	b.ReportMetric(acts/float64(b.N), "spares-activated")
}

// BenchmarkTable1Operators micro-benchmarks every environment-manager
// operator of Table 1 on a fresh testbed.
func BenchmarkTable1Operators(b *testing.B) {
	bench := func(name string, op func(m *envmgr.Manager, tb *Testbed) error) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tb := NewTestbed(1)
				m := envmgr.New(tb.K, tb.Net, tb.App, tb.Hosts["mS4"], tb.Rm)
				tb.Rm.PrequeryAll(
					[]netsim.NodeID{tb.Hosts["mS4"], tb.Hosts["mS7"]},
					[]netsim.NodeID{tb.Hosts["mC3"]})
				tb.K.RunAll(0)
				b.StartTimer()
				if err := op(m, tb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bench("createReqQueue", func(m *envmgr.Manager, tb *Testbed) error {
		return m.CreateReqQueue("G3")
	})
	bench("findServer", func(m *envmgr.Manager, tb *Testbed) error {
		_, err := m.FindServer("C3", 1e3)
		return err
	})
	bench("moveClient", func(m *envmgr.Manager, tb *Testbed) error {
		return m.MoveClient("C3", experiment.SG2)
	})
	bench("connectServer", func(m *envmgr.Manager, tb *Testbed) error {
		return m.ConnectServer("S4", experiment.SG2)
	})
	bench("activateServer", func(m *envmgr.Manager, tb *Testbed) error {
		return m.ActivateServer("S4")
	})
	bench("deactivateServer", func(m *envmgr.Manager, tb *Testbed) error {
		return m.DeactivateServer("S1")
	})
	bench("remosGetFlow", func(m *envmgr.Manager, tb *Testbed) error {
		return m.RemosGetFlow("C3", "S4", func(float64) {})
	})
}

// BenchmarkRepairDuration measures the end-to-end repair time of the
// baseline (destroy/recreate gauges) configuration — the paper's "averages
// 30 seconds".
func BenchmarkRepairDuration(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean += runAdaptive(i, ManagerConfig{}).Summarize().MeanRepairSeconds
	}
	b.ReportMetric(mean/float64(b.N), "s/repair")
}

// BenchmarkAblationGaugeCaching compares repair time with the §5.3 gauge
// caching fix.
func BenchmarkAblationGaugeCaching(b *testing.B) {
	for _, caching := range []bool{false, true} {
		name := "recreate"
		if caching {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean += runAdaptive(i, ManagerConfig{GaugeCaching: caching}).Summarize().MeanRepairSeconds
			}
			b.ReportMetric(mean/float64(b.N), "s/repair")
		})
	}
}

// BenchmarkAblationMonitoringQoS compares best-effort monitoring (the
// paper's deployment) against QoS-prioritized monitoring traffic.
func BenchmarkAblationMonitoringQoS(b *testing.B) {
	for _, prio := range []Priority{BestEffort, Prioritized} {
		name := "best-effort"
		if prio == Prioritized {
			name = "prioritized"
		}
		b.Run(name, func(b *testing.B) {
			var first, frac float64
			for i := 0; i < b.N; i++ {
				res := runAdaptive(i, ManagerConfig{MonitoringPriority: prio})
				if len(res.Spans) > 0 {
					first += res.Spans[0].Start
				}
				frac += res.Summarize().FracAbove2s
			}
			b.ReportMetric(first/float64(b.N), "s/first-repair")
			b.ReportMetric(100*frac/float64(b.N), "%above-2s")
		})
	}
}

// BenchmarkAblationRemosPrequery compares pre-queried Remos (the paper's
// mitigation) against cold Remos.
func BenchmarkAblationRemosPrequery(b *testing.B) {
	for _, skip := range []bool{false, true} {
		name := "prequeried"
		if skip {
			name = "cold"
		}
		b.Run(name, func(b *testing.B) {
			var firstMove float64
			for i := 0; i < b.N; i++ {
				res := runAdaptive(i, ManagerConfig{SkipRemosPrequery: skip})
				for _, sp := range res.Spans {
					moved := false
					for _, op := range sp.Ops {
						if op.Kind == repair.OpMoveClient {
							moved = true
						}
					}
					if moved {
						firstMove += sp.Start
						break
					}
				}
			}
			b.ReportMetric(firstMove/float64(b.N), "s/first-move")
		})
	}
}

// BenchmarkAblationOscillationDamping compares the raw engine against
// settle+damping under alternating competition (§5.3's observed client
// ping-pong).
func BenchmarkAblationOscillationDamping(b *testing.B) {
	configs := map[string]ManagerConfig{
		"raw":    {},
		"damped": {SettleTime: 20, OscillationWindow: 300, OscillationMoves: 3, DampFactor: 6},
	}
	for _, name := range []string{"raw", "damped"} {
		cfg := configs[name]
		b.Run(name, func(b *testing.B) {
			var moves float64
			for i := 0; i < b.N; i++ {
				res := RunExperiment(ExperimentOptions{
					Adaptive: true, Seed: benchSeed(i), Cfg: cfg, Oscillate: true,
				})
				moves += float64(res.Summarize().Moves)
			}
			b.ReportMetric(moves/float64(b.N), "client-moves")
		})
	}
}

// BenchmarkAblationSmartSelection compares first-reporter repair selection
// (the paper's prototype) against worst-latency-first (§7 future work).
func BenchmarkAblationSmartSelection(b *testing.B) {
	for _, smart := range []bool{false, true} {
		name := "first-reporter"
		if smart {
			name = "worst-first"
		}
		b.Run(name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				frac += runAdaptive(i, ManagerConfig{SmartSelection: smart}).Summarize().FracAbove2s
			}
			b.ReportMetric(100*frac/float64(b.N), "%above-2s")
		})
	}
}

// BenchmarkQueueingAnalysis measures the design-time sizing computation that
// produced the paper's initial configuration (3 servers, 10 Kbps floor).
func BenchmarkQueueingAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _, ok := queueing.ServersFor(6, 3.0, 2.0, 32)
		if !ok || m != 3 {
			b.Fatalf("sizing=%d ok=%v", m, ok)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkKernelEvents measures raw event throughput of the simulation
// kernel.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			k.After(1, next)
		}
	}
	k.After(1, next)
	b.ResetTimer()
	k.RunAll(uint64(b.N) + 1)
}

// BenchmarkMaxMinReflow measures the fluid-flow solver with 100 concurrent
// flows on the paper topology. The fixture is shared with cmd/benchjson
// (internal/benchfix) so the committed baseline measures the same workload.
func BenchmarkMaxMinReflow(b *testing.B) {
	op := benchfix.ReflowStar()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(i)
	}
}

// BenchmarkConstraintCheck measures invariant evaluation over the paper
// model.
func BenchmarkConstraintCheck(b *testing.B) {
	tb := NewTestbed(1)
	inv, err := NewInvariant("lat", "ClientT", "averageLatency <= maxLatency")
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range tb.Model.Components() {
		if c.Type() == "ClientT" {
			c.Props().Set("averageLatency", 1.0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := inv.Check(tb.Model, nil, true); len(vs) != 0 {
			b.Fatal("unexpected violation")
		}
	}
}

// BenchmarkRemosQueries measures warm-path Remos throughput.
func BenchmarkRemosQueries(b *testing.B) {
	k := sim.NewKernel()
	net := netsim.New(k)
	a := net.AddHost("a")
	c := net.AddHost("c")
	h := net.AddHost("rm")
	r := net.AddRouter("r")
	net.Connect(a, r, 10e6, 1e-3)
	net.Connect(c, r, 10e6, 1e-3)
	net.Connect(h, r, 10e6, 1e-3)
	rm := remos.New(k, net, h)
	rm.Prequery(a, c)
	k.RunAll(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm.GetFlow(h, a, c, func(float64) {})
		k.RunAll(0)
	}
}

// BenchmarkFleet measures the fleet control plane as the application count
// grows: N managed applications, each with its own architecture manager,
// multiplexed over one shared kernel and grid under staggered contention.
// ms/app is the per-application wall-clock overhead of a 600-second run —
// the baseline later sharding/batching PRs must beat.
func BenchmarkFleet(b *testing.B) {
	for _, n := range []int{4, 16, 32, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var repairs int
			for i := 0; i < b.N; i++ {
				res, err := RunFleetScenario(FleetScenarioOptions{
					Apps: n, Seed: benchSeed(i), Duration: 600, Adaptive: true,
					CrushStart: 120, CrushStagger: 5, CrushDuration: 240,
				})
				if err != nil {
					b.Fatal(err)
				}
				if got := len(res.Summaries); got != n {
					b.Fatalf("admitted %d apps, want %d", got, n)
				}
				for _, s := range res.Summaries {
					repairs += s.Repairs
				}
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/1e3/float64(b.N*n), "ms/app")
			b.ReportMetric(float64(repairs)/float64(b.N*n), "repairs/app")
		})
	}
}

// BenchmarkFleetParallel measures the worker-pool execution plane on the
// canonical parallel fixture (shared with cmd/benchjson): every crush lands
// at once, so each repair epoch dirties many disjoint network regions and
// the solver fans the per-component fills out to the pool. Workers is a pure
// throughput knob — repairs/app must be identical down every workers column
// (the byte-identity contract the equivalence tests and the chaos parallel
// invariant enforce); ms/app is what the sweep actually measures.
func BenchmarkFleetParallel(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("N=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				var repairs int
				for i := 0; i < b.N; i++ {
					res, err := RunFleetScenario(FleetParallelBenchScenario(n, w, benchSeed(i)))
					if err != nil {
						b.Fatal(err)
					}
					if got := len(res.Summaries); got != n {
						b.Fatalf("admitted %d apps, want %d", got, n)
					}
					for _, s := range res.Summaries {
						repairs += s.Repairs
					}
				}
				b.ReportMetric(float64(b.Elapsed().Microseconds())/1e3/float64(b.N*n), "ms/app")
				b.ReportMetric(float64(repairs)/float64(b.N*n), "repairs/app")
			})
		}
	}
}

// BenchmarkFleetSharded measures the region-sharded hosting plane on the
// canonical sharded fixture (shared with cmd/benchjson): the parallel-plane
// workload with event execution hosted on per-region shard kernels. Shards is
// a pure hosting knob — repairs/app must be identical down every shards
// column (the byte-identity contract the sharded equivalence tests and the
// chaos sharded invariant enforce); ms/app is what the sweep actually
// measures, and the target is roughly flat as shards are added (the window
// driver and exchange must not dominate).
func BenchmarkFleetSharded(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, s := range []struct {
			label  string
			shards int
		}{{"single", 0}, {"1", 1}, {"4", 4}, {"region", -1}} {
			b.Run(fmt.Sprintf("N=%d/shards=%s", n, s.label), func(b *testing.B) {
				b.ReportAllocs()
				var repairs int
				for i := 0; i < b.N; i++ {
					res, err := RunFleetScenario(FleetShardedBenchScenario(n, s.shards, benchSeed(i)))
					if err != nil {
						b.Fatal(err)
					}
					if got := len(res.Summaries); got != n {
						b.Fatalf("admitted %d apps, want %d", got, n)
					}
					for _, sum := range res.Summaries {
						repairs += sum.Repairs
					}
				}
				b.ReportMetric(float64(b.Elapsed().Microseconds())/1e3/float64(b.N*n), "ms/app")
				b.ReportMetric(float64(repairs)/float64(b.N*n), "repairs/app")
			})
		}
	}
}

// BenchmarkFleetOpenLoop measures the open-loop heavy-traffic engine on the
// canonical fixture (shared with cmd/benchjson): every app offers a constant
// 8 req/s aggregate regardless of the modeled population, so users is pure
// bookkeeping — one aggregated flow class per (client-region, server-group)
// pair carries them all. ms/app must therefore not scale with users (the
// gate cmd/benchjson -check enforces); responses/app is the deterministic
// behavior canary.
func BenchmarkFleetOpenLoop(b *testing.B) {
	for _, n := range []int{64, 256} {
		for _, users := range []int{10_000, 1_000_000} {
			b.Run(fmt.Sprintf("N=%d/users=%d", n, users), func(b *testing.B) {
				b.ReportAllocs()
				var responses uint64
				for i := 0; i < b.N; i++ {
					res, err := RunFleetScenario(FleetOpenLoopBenchScenario(n, users, benchSeed(i)))
					if err != nil {
						b.Fatal(err)
					}
					if got := len(res.Summaries); got != n {
						b.Fatalf("admitted %d apps, want %d", got, n)
					}
					for _, s := range res.Summaries {
						responses += s.Responses
					}
				}
				if responses == 0 {
					b.Fatal("no responses delivered")
				}
				b.ReportMetric(float64(b.Elapsed().Microseconds())/1e3/float64(b.N*n), "ms/app")
				b.ReportMetric(float64(responses)/float64(b.N*n), "responses/app")
			})
		}
	}
}

// BenchmarkFleetMigration measures the migration control loop end to end on
// the canonical fixture (shared with cmd/benchjson): N apps, region-collapse
// contention on the first quarter, migration enabled. migrations/app is the
// behavior canary — the scenario is deterministic, so it must not drift.
func BenchmarkFleetMigration(b *testing.B) {
	const n = 16
	b.ReportAllocs()
	var migrations int
	for i := 0; i < b.N; i++ {
		res, err := RunFleetScenario(FleetMigrationBenchScenario(n, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.Summaries); got != n {
			b.Fatalf("admitted %d apps, want %d", got, n)
		}
		for _, s := range res.Summaries {
			migrations += s.Migrations
		}
	}
	if migrations == 0 {
		b.Fatal("no migrations completed")
	}
	b.ReportMetric(float64(b.Elapsed().Microseconds())/1e3/float64(b.N*n), "ms/app")
	b.ReportMetric(float64(migrations)/float64(b.N*n), "migrations/app")
}

// BenchmarkFleetRankedMigration measures the measurement-driven migration
// loop end to end on the ranked variant of the canonical fixture (shared
// with cmd/benchjson): the same region-collapse workload as
// BenchmarkFleetMigration, plus the region health index (one batched Remos
// probe per decision tick), PlaceRanked targeting and the coordination
// cap. migrations/app is the behavior canary, exactly gated in CI.
func BenchmarkFleetRankedMigration(b *testing.B) {
	const n = 16
	b.ReportAllocs()
	var migrations int
	for i := 0; i < b.N; i++ {
		res, err := RunFleetScenario(FleetRankedMigrationBenchScenario(n, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.Summaries); got != n {
			b.Fatalf("admitted %d apps, want %d", got, n)
		}
		for _, s := range res.Summaries {
			migrations += s.Migrations
		}
	}
	if migrations == 0 {
		b.Fatal("no migrations completed")
	}
	b.ReportMetric(float64(b.Elapsed().Microseconds())/1e3/float64(b.N*n), "ms/app")
	b.ReportMetric(float64(migrations)/float64(b.N*n), "migrations/app")
}

// BenchmarkFullAdaptiveRun measures one complete 1800-second adaptive
// experiment (the paper's whole evaluation in one number).
func BenchmarkFullAdaptiveRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runAdaptive(i, ManagerConfig{})
		if len(res.Spans) == 0 {
			b.Fatal("no repairs")
		}
	}
}
