#!/usr/bin/env sh
# Runs the substrate + fleet benchmarks and writes the machine-readable perf
# baseline (BENCH_fleet.json). Thin wrapper over cmd/benchjson so future PRs
# have one entry point:
#
#   scripts/bench.sh                 # full sweep: N=4,16,32,64, 3 iters each
#   scripts/bench.sh -quick          # CI smoke: N=4, 1 iter
#   scripts/bench.sh -out - | jq .   # print to stdout
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/benchjson "$@"
