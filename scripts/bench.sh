#!/usr/bin/env sh
# Runs the substrate + fleet benchmarks and writes the machine-readable perf
# baseline (BENCH_fleet.json). Thin wrapper over cmd/benchjson so future PRs
# have one entry point:
#
#   scripts/bench.sh                 # full sweep: N=4,16,32,64, 3 iters each
#   scripts/bench.sh -quick          # CI smoke: N=4, 1 iter
#   scripts/bench.sh -out - | jq .   # print to stdout
#   scripts/bench.sh -profile [DIR]  # profile the N=16 migration fixture
#                                    # (fleet_cpu.pprof + fleet_heap.pprof
#                                    # in DIR, default /tmp); inspect with
#                                    # `go tool pprof DIR/fleet_cpu.pprof`
set -e
cd "$(dirname "$0")/.."
if [ "$1" = "-profile" ]; then
  dir="${2:-/tmp}"
  mkdir -p "$dir"
  exec go run ./cmd/fleet -mode migrate -apps 16 -seed 1 -spare-routers 4 \
    -crush-all-groups -crush-apps 4 -crush-start 150 -crush-duration 300 \
    -duration 900 -ranked \
    -pprof "$dir/fleet_cpu.pprof,$dir/fleet_heap.pprof" > /dev/null
fi
exec go run ./cmd/benchjson "$@"
