// Package archadapt is a software architecture-based self-adaptation
// framework for grid applications, reproducing Cheng, Garlan, Schmerl,
// Steenkiste & Hu, "Software Architecture-based Adaptation for Grid
// Computing" (HPDC-11, 2002).
//
// The framework keeps an architectural model (a typed component/connector
// graph with property lists) of a running system, monitors the system
// through a probe→gauge→consumer pipeline riding a content-based event bus,
// checks declarative architectural constraints against the model, and on
// violation executes repair strategies — ordered, guarded tactics — whose
// committed operations a translator propagates to the running system via the
// environment manager's runtime operators (the paper's Table 1).
//
// Everything the paper's evaluation depends on is implemented here: a
// discrete-event kernel, a fluid-flow network simulator standing in for the
// 5-router/11-machine testbed, the replicated client/server grid application,
// a Remos-like bandwidth query service, a Siena-like event bus, the Acme-like
// architecture description language, and the full Figure 7 workload with the
// control/adaptive experiment harness regenerating Figures 8–13.
//
// Quick start:
//
//	control := archadapt.RunExperiment(archadapt.ExperimentOptions{Seed: 1})
//	adaptive := archadapt.RunExperiment(archadapt.ExperimentOptions{Adaptive: true, Seed: 1})
//	fmt.Println(archadapt.CompareRuns(control, adaptive))
package archadapt

import (
	"archadapt/internal/acme"
	"archadapt/internal/app"
	"archadapt/internal/bus"
	"archadapt/internal/constraint"
	"archadapt/internal/core"
	"archadapt/internal/envmgr"
	"archadapt/internal/experiment"
	"archadapt/internal/fleet"
	"archadapt/internal/metrics"
	"archadapt/internal/model"
	"archadapt/internal/netsim"
	"archadapt/internal/obs"
	"archadapt/internal/operators"
	"archadapt/internal/queueing"
	"archadapt/internal/remos"
	"archadapt/internal/repair"
	"archadapt/internal/script"
	"archadapt/internal/sim"
	"archadapt/internal/workload"
)

// --- simulation substrate ---

// Kernel is the discrete-event simulation kernel (virtual time).
type Kernel = sim.Kernel

// Rand is the deterministic PRNG used by all stochastic components.
type Rand = sim.Rand

// NewKernel creates a kernel with the clock at zero.
func NewKernel() *Kernel { return sim.NewKernel() }

// NewRand creates a seeded deterministic generator.
func NewRand(seed uint64) *Rand { return sim.NewRand(seed) }

// Network is the fluid-flow network simulator (the testbed substitute).
type Network = netsim.Network

// NodeID identifies a simulated host or router.
type NodeID = netsim.NodeID

// LinkID identifies a simulated duplex link.
type LinkID = netsim.LinkID

// Priority selects best-effort vs QoS-protected control traffic.
type Priority = netsim.Priority

// Control-traffic priorities.
const (
	BestEffort  = netsim.BestEffort
	Prioritized = netsim.Prioritized
)

// NewNetwork creates an empty network on the kernel.
func NewNetwork(k *Kernel) *Network { return netsim.New(k) }

// --- managed application ---

// App is the managed client/server grid application.
type App = app.System

// Client is a request-generating client process.
type Client = app.Client

// Server is a (possibly spare) server process.
type Server = app.Server

// NewApp creates an application whose request queues live on queueHost.
func NewApp(k *Kernel, n *Network, queueHost NodeID) *App { return app.New(k, n, queueHost) }

// --- architecture model, ADL, constraints ---

// Model is the runtime architectural model: a typed graph of components and
// connectors with property lists.
type Model = model.System

// Component is a model component.
type Component = model.Component

// Connector is a model connector.
type Connector = model.Connector

// Invariant is a parsed architectural constraint.
type Invariant = constraint.Invariant

// NewModel creates an empty model with a name and style.
func NewModel(name, style string) *Model { return model.NewSystem(name, style) }

// ParseConstraint parses a constraint expression (Figure 5's predicate
// language: select/exists/forall, connected, attached, size, ...).
func ParseConstraint(src string) (constraint.Expr, error) { return constraint.Parse(src) }

// NewInvariant parses an invariant with a name and an element-type scope.
func NewInvariant(name, scope, src string) (*Invariant, error) {
	return constraint.NewInvariant(name, scope, src)
}

// ACMEDescription is a parsed architecture description (model + invariants).
type ACMEDescription = acme.Description

// ParseACME parses an Acme-like architecture description.
func ParseACME(src string) (*ACMEDescription, error) { return acme.Parse(src) }

// PrintACME renders a description in canonical ADL form.
func PrintACME(d *ACMEDescription) string { return acme.Print(d) }

// PrintModel renders just a model in canonical ADL form.
func PrintModel(m *Model) string { return acme.PrintSystem(m) }

// --- client-server style ---

// Spec describes a client/server deployment (groups, spares, clients,
// thresholds) in the paper's architectural style.
type Spec = operators.Spec

// GroupSpec describes one replicated server group.
type GroupSpec = operators.GroupSpec

// ClientSpec describes one client.
type ClientSpec = operators.ClientSpec

// BuildModel constructs the architectural model for a spec.
func BuildModel(spec Spec) (*Model, error) { return operators.Build(spec) }

// Strategy is a repair strategy (ordered guarded tactics).
type Strategy = repair.Strategy

// Tactic is one guarded repair.
type Tactic = repair.Tactic

// FixLatency builds the paper's Figure 5 strategy over a group query.
func FixLatency(query operators.GroupQuery) *Strategy { return operators.FixLatency(query) }

// ShrinkStrategy builds the scale-down strategy (the paper's third,
// unshown repair).
func ShrinkStrategy() *Strategy { return operators.ShrinkStrategy() }

// --- monitoring, environment, manager ---

// Bus is the Siena-like content-based event bus.
type Bus = bus.Bus

// NewBus creates a bus over the network.
func NewBus(k *Kernel, n *Network) *Bus { return bus.New(k, n) }

// Remos is the bandwidth-prediction service (remos_get_flow).
type Remos = remos.Service

// NewRemos creates a Remos service on a host.
func NewRemos(k *Kernel, n *Network, host NodeID) *Remos { return remos.New(k, n, host) }

// EnvManager exposes the Table 1 runtime operators.
type EnvManager = envmgr.Manager

// ManagerConfig tunes the architecture manager.
type ManagerConfig = core.Config

// Manager is the architecture manager: the framework's model layer.
type Manager = core.Manager

// RepairSpan is one completed repair with its wall-clock extent.
type RepairSpan = core.RepairSpan

// DefaultConfig returns the paper-faithful manager configuration.
func DefaultConfig() ManagerConfig { return core.Defaults() }

// NewManager wires an architecture manager over an application and model;
// host is the repair-infrastructure machine.
func NewManager(cfg ManagerConfig, k *Kernel, n *Network, a *App, m *Model, host NodeID, rm *Remos) *Manager {
	return core.New(cfg, k, n, a, m, host, rm)
}

// --- experiment harness ---

// ExperimentOptions configures a full §5 experiment run.
type ExperimentOptions = experiment.Options

// ExperimentResults carries the measured series and repair history.
type ExperimentResults = experiment.Results

// ExperimentSummary is a run's aggregate row.
type ExperimentSummary = experiment.Summary

// Testbed is the Figure 6 deployment.
type Testbed = experiment.Testbed

// Figure identifies a paper figure.
type Figure = experiment.Figure

// The paper's evaluation figures.
const (
	Figure7  = experiment.Figure7
	Figure8  = experiment.Figure8
	Figure9  = experiment.Figure9
	Figure10 = experiment.Figure10
	Figure11 = experiment.Figure11
	Figure12 = experiment.Figure12
	Figure13 = experiment.Figure13
)

// NewTestbed builds the Figure 6 testbed.
func NewTestbed(seed uint64) *Testbed { return experiment.NewTestbed(seed) }

// RunExperiment executes one control or adaptive run of the paper's
// experiment.
func RunExperiment(opts ExperimentOptions) *ExperimentResults { return experiment.Run(opts) }

// RenderFigure produces the textual form of a figure from a run.
func RenderFigure(f Figure, r *ExperimentResults) string { return experiment.RenderFigure(f, r) }

// FigureCSV renders a figure's series as CSV.
func FigureCSV(f Figure, r *ExperimentResults) string { return experiment.CSVFor(f, r) }

// CompareRuns renders the control-vs-adaptive comparison table.
func CompareRuns(control, adaptive *ExperimentResults) string {
	return experiment.CompareRuns(control, adaptive)
}

// Series is a sampled time series.
type Series = metrics.Series

// Dist is an order-insensitive sample distribution (mean, min/max,
// nearest-rank percentiles), the representation behind phase latencies.
type Dist = metrics.Dist

// --- observability plane ---

// Tracer is the deterministic observability plane: causal control-loop
// spans, phase-latency distributions and kernel event-rate counters, all
// stamped in virtual time. Enable it fleet-wide with FleetConfig.Trace (or
// FleetScenarioOptions.Trace) and read it back via Fleet.Tracer.
type Tracer = obs.Tracer

// TraceSpan is one causal span in a trace.
type TraceSpan = obs.Span

// TraceSpanID identifies a span; parents always have lower IDs.
type TraceSpanID = obs.SpanID

// TraceKind is a span's place in the control loop (probe.sample,
// gauge.report, violation, repair, migrate.decide, ...).
type TraceKind = obs.Kind

// TracePhase is one adaptation phase (detect, decide, drain, recover).
type TracePhase = obs.Phase

// PhaseSet holds one latency distribution per adaptation phase.
type PhaseSet = obs.PhaseSet

// NewTracer creates a tracer reading the given clock (typically Kernel.Now).
func NewTracer(clock func() float64) *Tracer { return obs.New(clock) }

// ASCIIPlot renders series as a terminal plot.
func ASCIIPlot(title string, series []*Series, width, height int, logScale bool, yMin, yMax float64) string {
	return metrics.ASCIIPlot(title, series, width, height, logScale, yMin, yMax)
}

// --- grid topology generation & fleet control plane ---

// GridSpec parameterizes a generated grid topology (routers, hosts per
// router, link capacities) scaling the Figure 6 testbed shape.
type GridSpec = netsim.GridSpec

// Grid is a generated grid topology with the structure placement needs.
type Grid = netsim.Grid

// GenerateGrid builds a grid topology on a fresh network bound to k.
func GenerateGrid(k *Kernel, spec GridSpec) *Grid { return netsim.GenerateGrid(k, spec) }

// Fleet is the grid control plane: it admits, places, runs and retires many
// managed applications on one shared simulated grid, each with its own
// architecture manager multiplexed over the shared kernel.
type Fleet = fleet.Fleet

// FleetConfig tunes the fleet control plane.
type FleetConfig = fleet.Config

// FleetAppSpec describes one managed application to admit.
type FleetAppSpec = fleet.AppSpec

// FleetApp is a handle on one admitted application.
type FleetApp = fleet.App

// FleetAppSummary is one application's aggregate row.
type FleetAppSummary = fleet.AppSummary

// FleetAssignment maps one application's processes onto grid hosts.
type FleetAssignment = fleet.Assignment

// FleetScheduler places applications on grid hosts.
type FleetScheduler = fleet.Scheduler

// FleetScenarioOptions configures a canned fleet run.
type FleetScenarioOptions = fleet.ScenarioOptions

// FleetScenarioResult bundles a finished fleet run with its summaries.
type FleetScenarioResult = fleet.ScenarioResult

// NewFleet creates a fleet control plane over a generated grid.
func NewFleet(k *Kernel, grid *Grid, seed uint64, cfg FleetConfig) (*Fleet, error) {
	return fleet.New(k, grid, seed, cfg)
}

// RunFleetScenario executes one canned fleet run to completion.
func RunFleetScenario(opts FleetScenarioOptions) (*FleetScenarioResult, error) {
	return fleet.RunScenario(opts)
}

// FleetTable renders per-app summaries as a fixed-width table.
func FleetTable(sums []FleetAppSummary) string { return fleet.Table(sums) }

// FleetCompareTable renders a per-app comparison of two same-seed runs
// (control vs adaptive, or pinned vs migrating).
func FleetCompareTable(control, adaptive []FleetAppSummary) string {
	return fleet.CompareTable(control, adaptive)
}

// FleetComparePair is one application's summaries across two same-seed runs.
type FleetComparePair = fleet.ComparePair

// FleetComparePairs pairs two runs' summaries by application name.
func FleetComparePairs(a, b []FleetAppSummary) []FleetComparePair {
	return fleet.ComparePairs(a, b)
}

// FleetMigrationPolicy tunes the fleet-level migration controller: the
// feedback loop that re-places a whole application when its grid region
// degrades beyond what intra-app repair can fix.
type FleetMigrationPolicy = fleet.MigrationPolicy

// FleetMigration records one re-placement of an application.
type FleetMigration = fleet.Migration

// FleetOpenLoopPolicy enables and tunes the open-loop heavy-traffic engine:
// aggregated arrival-driven flow classes, replica autoscaling and fleet
// admission control. The zero value disables it entirely.
type FleetOpenLoopPolicy = fleet.OpenLoopPolicy

// FleetScalePolicy tunes the open-loop replica autoscaler.
type FleetScalePolicy = fleet.ScalePolicy

// FleetAdmissionPolicy tunes the open-loop fleet admission controller.
type FleetAdmissionPolicy = fleet.AdmissionPolicy

// FleetArrivalSpec declaratively selects an application's open-loop arrival
// process (Poisson, diurnal with bursts, or trace-driven).
type FleetArrivalSpec = fleet.ArrivalSpec

// FleetAdmissionLedger is the admission controller's balanced books (see
// Fleet.OpenLoopLedger).
type FleetAdmissionLedger = fleet.AdmissionLedger

// FleetCatalogEntry is one named scenario in the fleet workload catalog.
type FleetCatalogEntry = fleet.CatalogEntry

// FleetCatalog returns the named scenario suite (see SCENARIOS.md).
func FleetCatalog() []FleetCatalogEntry { return fleet.Catalog() }

// FleetScenarioByName returns a catalog entry by name.
func FleetScenarioByName(name string) (FleetCatalogEntry, error) {
	return fleet.ScenarioByName(name)
}

// FleetMigrationBenchScenario is the canonical migration benchmark fixture
// shared by BenchmarkFleetMigration and cmd/benchjson.
func FleetMigrationBenchScenario(n int, seed uint64) FleetScenarioOptions {
	return fleet.MigrationBenchScenario(n, seed)
}

// FleetRankedMigrationBenchScenario is the measurement-driven variant of
// the migration fixture (region health index + PlaceRanked), shared by
// BenchmarkFleetRankedMigration and cmd/benchjson.
func FleetRankedMigrationBenchScenario(n int, seed uint64) FleetScenarioOptions {
	return fleet.RankedMigrationBenchScenario(n, seed)
}

// FleetParallelBenchScenario is the canonical parallel-plane fixture
// (simultaneous crushes, Workers-count sweep), shared by
// BenchmarkFleetParallel and cmd/benchjson.
func FleetParallelBenchScenario(n, workers int, seed uint64) FleetScenarioOptions {
	return fleet.ParallelBenchScenario(n, workers, seed)
}

// FleetShardedBenchScenario is the canonical region-sharded hosting fixture
// (the parallel-plane workload executed on per-region shard kernels), shared
// by BenchmarkFleetSharded and cmd/benchjson.
func FleetShardedBenchScenario(n, shards int, seed uint64) FleetScenarioOptions {
	return fleet.ShardedBenchScenario(n, shards, seed)
}

// FleetOpenLoopBenchScenario is the canonical open-loop fixture (constant
// aggregate offered load per app, so cost must not scale with the modeled
// population), shared by BenchmarkFleetOpenLoop and cmd/benchjson.
func FleetOpenLoopBenchScenario(n, users int, seed uint64) FleetScenarioOptions {
	return fleet.OpenLoopBenchScenario(n, users, seed)
}

// FleetRegionRank is a measured health score per grid region, consumed by
// FleetScheduler.PlaceRanked.
type FleetRegionRank = fleet.RegionRank

// FleetRegionHealth is the fleet's measured per-region health index (see
// Fleet.RegionHealth; non-nil when ranked migration targeting is enabled).
type FleetRegionHealth = fleet.RegionHealth

// --- design-time analysis ---

// MMm is the queueing model used for design-time sizing.
type MMm = queueing.MMm

// ServersFor returns the minimum replica count meeting a latency bound.
func ServersFor(lambda, mu, maxLatency float64, maxServers int) (int, MMm, bool) {
	return queueing.ServersFor(lambda, mu, maxLatency, maxServers)
}

// MinBandwidth returns the bandwidth floor for a reply size and budget.
func MinBandwidth(respBits, budget float64) float64 {
	return queueing.MinBandwidth(respBits, budget)
}

// --- workload ---

// WorkloadSchedule is a set of timed experimental-condition changes.
type WorkloadSchedule = workload.Schedule

// WorkloadLinks names the contested links of the Figure 7 schedule.
type WorkloadLinks = workload.Links

// PaperWorkload builds the Figure 7 schedule.
func PaperWorkload(n *Network, a *App, links WorkloadLinks, rng *Rand) *WorkloadSchedule {
	return workload.Paper(n, a, links, rng)
}

// --- repair-script language (Figure 5) ---

// ScriptLibrary is a compiled repair script: strategies and tactics written
// in the paper's Figure 5 language, executable on the repair engine.
type ScriptLibrary = script.Library

// ScriptOperatorSet supplies style operators and queries to scripts.
type ScriptOperatorSet = script.OperatorSet

// FixLatencyScript is the Figure 5 strategy in its textual form.
const FixLatencyScript = operators.FixLatencyScript

// CompileRepairScript compiles script source against an operator set.
func CompileRepairScript(src string, ops ScriptOperatorSet) (*ScriptLibrary, error) {
	return script.Compile(src, ops)
}

// ClientServerScriptOperators returns the client-server style's operator
// set (addServer/move/remove, roleOf/groupOf/findGoodSGrp) for scripts.
func ClientServerScriptOperators(query operators.GroupQuery) ScriptOperatorSet {
	return operators.ScriptOperators(query)
}
