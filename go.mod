module archadapt

go 1.24
