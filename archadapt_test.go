package archadapt

import (
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, the way the examples
// and external users do.

func TestFacadeExperimentRoundTrip(t *testing.T) {
	control := RunExperiment(ExperimentOptions{Seed: 3, Duration: 700})
	adaptive := RunExperiment(ExperimentOptions{Adaptive: true, Seed: 3, Duration: 700})
	if control.Summarize().Repairs != 0 {
		t.Fatal("control repaired")
	}
	if adaptive.Summarize().Repairs == 0 {
		t.Fatal("adaptive did not repair")
	}
	out := CompareRuns(control, adaptive)
	if !strings.Contains(out, "adaptive") {
		t.Fatalf("comparison:\n%s", out)
	}
	if plot := RenderFigure(Figure8, control); len(plot) < 100 {
		t.Fatal("figure render failed")
	}
}

func TestFacadeDeployAndRepair(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k)
	cHost := net.AddHost("client")
	r1 := net.AddRouter("r1")
	r2 := net.AddRouter("r2")
	r3 := net.AddRouter("r3")
	hostA := net.AddHost("hostA")
	hostB := net.AddHost("hostB")
	mgrHost := net.AddHost("mgr")
	net.Connect(cHost, r1, 10e6, 1e-3)
	linkA := net.Connect(r1, r2, 10e6, 1e-3)
	net.Connect(r2, hostA, 10e6, 1e-3)
	net.Connect(r1, r3, 10e6, 1e-3)
	net.Connect(r3, hostB, 10e6, 1e-3)
	net.Connect(r1, mgrHost, 10e6, 1e-3)

	spec := Spec{
		Name: "t",
		Groups: []GroupSpec{
			{Name: "GroupA", Servers: []string{"A1"}, ActiveCount: 1},
			{Name: "GroupB", Servers: []string{"B1"}, ActiveCount: 1},
		},
		Clients:       []ClientSpec{{Name: "C1", Group: "GroupA"}},
		MaxLatency:    2.0,
		MaxServerLoad: 6,
		MinBandwidth:  10e3,
	}
	dep, err := Deploy(k, net, spec, Placement{
		ServerHosts: map[string]NodeID{"A1": hostA, "B1": hostB},
		ClientHosts: map[string]NodeID{"C1": cHost},
		QueueHost:   mgrHost,
		ManagerHost: mgrHost,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	mgr := dep.Manage(DefaultConfig())
	dep.App.Start()
	k.At(60, func() { net.SetBackgroundBoth(linkA, 10e6-5e3) })
	k.Run(300)
	if dep.App.Client("C1").Group != "GroupB" {
		t.Fatalf("client not moved; spans=%+v alerts=%d", mgr.Spans(), len(mgr.Alerts()))
	}
}

func TestFacadeDeployErrors(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k)
	h := net.AddHost("h")
	spec := Spec{
		Name:    "t",
		Groups:  []GroupSpec{{Name: "G", Servers: []string{"S1"}, ActiveCount: 1}},
		Clients: []ClientSpec{{Name: "C1", Group: "G"}},
	}
	if _, err := Deploy(k, net, spec, Placement{
		ClientHosts: map[string]NodeID{"C1": h},
		QueueHost:   h, ManagerHost: h,
	}, 1); err == nil {
		t.Fatal("missing server host should fail")
	}
	if _, err := Deploy(k, net, spec, Placement{
		ServerHosts: map[string]NodeID{"S1": h},
		QueueHost:   h, ManagerHost: h,
	}, 1); err == nil {
		t.Fatal("missing client host should fail")
	}
}

func TestFacadeACME(t *testing.T) {
	src := `system s : ClientServerFam = {
        property maxLatency = 2.0;
        component c : ClientT = { port p : RequestT; property averageLatency = 1.0; }
        invariant lat on ClientT : averageLatency <= maxLatency;
    }`
	d, err := ParseACME(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := PrintACME(d)
	d2, err := ParseACME(printed)
	if err != nil {
		t.Fatal(err)
	}
	if !d.System.Equal(d2.System) {
		t.Fatal("ACME round trip failed")
	}
	if len(d.Invariants[0].Check(d.System, nil, false)) != 0 {
		t.Fatal("invariant should hold")
	}
}

func TestFacadeQueueingAnalysis(t *testing.T) {
	m, q, ok := ServersFor(6, 3, 2.0, 10)
	if !ok || m != 3 {
		t.Fatalf("sizing=%d %v ok=%v", m, q, ok)
	}
	if bw := MinBandwidth(20*8192, 2.0); bw < 80e3 || bw > 82e3 {
		t.Fatalf("MinBandwidth=%v", bw)
	}
}

func TestFacadeConstraintAndModel(t *testing.T) {
	m := NewModel("demo", "Fam")
	m.Props().Set("limit", 5.0)
	c := m.AddComponent("x", "T")
	c.Props().Set("v", 7.0)
	inv, err := NewInvariant("bound", "T", "v <= limit")
	if err != nil {
		t.Fatal(err)
	}
	if vs := inv.Check(m, nil, false); len(vs) != 1 {
		t.Fatalf("violations=%v", vs)
	}
	if _, err := ParseConstraint("exists p : T in self.Components | p.v > 0"); err != nil {
		t.Fatal(err)
	}
}
