// Command mdlinks checks that the relative links in the given markdown
// files resolve to existing files — the CI docs gate, so README.md,
// ARCHITECTURE.md and SCENARIOS.md cannot silently drift apart as the
// repository grows.
//
//	go run ./cmd/mdlinks README.md ARCHITECTURE.md SCENARIOS.md
//
// Inline links ([text](target)) are checked; external targets (a scheme
// like https:) and pure in-page anchors (#section) are skipped, and a
// file#anchor target checks only the file part. Targets resolve relative to
// the markdown file's own directory. Exits non-zero listing every broken
// link.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links, skipping images' leading "!".
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlinks FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		raw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdlinks: %v\n", err)
			broken++
			continue
		}
		dir := filepath.Dir(file)
		for _, m := range linkRe.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // in-page anchor
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Fprintf(os.Stderr, "mdlinks: %s: broken link %q\n", file, m[1])
				broken++
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlinks: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}
