// Command benchjson runs the substrate and fleet benchmarks and writes a
// machine-readable perf baseline (BENCH_fleet.json by default), so successive
// PRs can track ms/app, repairs/app and allocation counts without parsing
// `go test -bench` text output. scripts/bench.sh wraps it; CI runs it in
// -quick mode as a smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"archadapt/internal/benchfix"
	"archadapt/internal/fleet"
)

// Baseline is the file schema. Fields are stable: future PRs append runs by
// regenerating the file and comparing against the committed one.
type Baseline struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	Reflow      ReflowBench `json:"reflow"`
	Fleet       []FleetRow  `json:"fleet"`
	// FleetMigration mirrors BenchmarkFleetMigration: the canonical
	// region-collapse + migration fixture (fleet.MigrationBenchScenario).
	FleetMigration []FleetRow `json:"fleet_migration"`
	// FleetRankedMigration mirrors BenchmarkFleetRankedMigration: the same
	// fixture with measurement-driven targeting (region health index +
	// PlaceRanked, fleet.RankedMigrationBenchScenario).
	FleetRankedMigration []FleetRow `json:"fleet_ranked_migration"`
	// FleetParallel mirrors BenchmarkFleetParallel: the simultaneous-crush
	// fixture (fleet.ParallelBenchScenario) swept over worker counts at a
	// fixed app count. Workers is a pure throughput knob, so repairs_per_app
	// must be identical down the sweep — -check enforces it exactly.
	FleetParallel []FleetRow `json:"fleet_parallel"`
	// FleetSharded mirrors BenchmarkFleetSharded: the same simultaneous-crush
	// fixture (fleet.ShardedBenchScenario) with event execution hosted on
	// per-region shard kernels, swept over shard counts (0 = the single-kernel
	// oracle, -1 = one shard per region). Shards is a pure hosting knob, so
	// repairs_per_app must be identical down the sweep — -check enforces it
	// exactly.
	FleetSharded []FleetRow `json:"fleet_sharded"`
	// FleetOpenLoop mirrors BenchmarkFleetOpenLoop: the open-loop fixture
	// (fleet.OpenLoopBenchScenario) at a fixed app count over population
	// sizes. Each app offers a constant 8 req/s aggregate regardless of
	// users, so ms_per_app must not scale with the population and
	// responses_per_app must be identical down the sweep — -check enforces
	// both.
	FleetOpenLoop []FleetRow `json:"fleet_openloop"`
}

// ReflowBench mirrors BenchmarkMaxMinReflow: one background change against
// 100 concurrent flows on a 10-host star.
type ReflowBench struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// FleetRow mirrors one BenchmarkFleet/N=<n> size point.
type FleetRow struct {
	Apps          int     `json:"apps"`
	MsPerApp      float64 `json:"ms_per_app"`
	RepairsPerApp float64 `json:"repairs_per_app"`
	AllocsPerApp  float64 `json:"allocs_per_app"`
	MBPerApp      float64 `json:"mb_per_app"`
	// MigrationsPerApp is set only on migration-fixture rows. Like
	// repairs_per_app it is a deterministic behavior canary.
	MigrationsPerApp float64 `json:"migrations_per_app,omitempty"`
	// Workers is set only on fleet_parallel rows: the worker-pool size the
	// row was measured at (1 = the serial oracle).
	Workers int `json:"workers,omitempty"`
	// Shards is set only on fleet_sharded rows: the region shard count the
	// row was measured at (omitted/0 = the single-kernel oracle, -1 = one
	// shard per region).
	Shards int `json:"shards,omitempty"`
	// Users and ResponsesPerApp are set only on fleet_openloop rows: the
	// modeled population per app and the deterministic synthetic-response
	// canary (population-independent by construction).
	Users           int     `json:"users,omitempty"`
	ResponsesPerApp float64 `json:"responses_per_app,omitempty"`
}

func benchReflow() ReflowBench {
	res := testing.Benchmark(func(b *testing.B) {
		op := benchfix.ReflowStar()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op(i)
		}
	})
	return ReflowBench{
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

func benchFleet(n, iters int) (FleetRow, error) {
	return benchScenario(n, iters, func(i int) fleet.ScenarioOptions {
		return fleet.ScenarioOptions{
			Apps: n, Seed: uint64(i + 1), Duration: 600, Adaptive: true,
			CrushStart: 120, CrushStagger: 5, CrushDuration: 240,
		}
	})
}

// benchMigration measures the canonical migration fixture (shared with
// BenchmarkFleetMigration).
func benchMigration(n, iters int) (FleetRow, error) {
	return benchScenario(n, iters, func(i int) fleet.ScenarioOptions {
		return fleet.MigrationBenchScenario(n, uint64(i+1))
	})
}

// benchRankedMigration measures the measurement-driven variant (shared
// with BenchmarkFleetRankedMigration).
func benchRankedMigration(n, iters int) (FleetRow, error) {
	return benchScenario(n, iters, func(i int) fleet.ScenarioOptions {
		return fleet.RankedMigrationBenchScenario(n, uint64(i+1))
	})
}

// benchParallel measures the parallel-plane fixture (shared with
// BenchmarkFleetParallel) at one worker count.
func benchParallel(n, workers, iters int) (FleetRow, error) {
	row, err := benchScenario(n, iters, func(i int) fleet.ScenarioOptions {
		return fleet.ParallelBenchScenario(n, workers, uint64(i+1))
	})
	row.Workers = workers
	return row, err
}

// benchSharded measures the region-sharded hosting fixture (shared with
// BenchmarkFleetSharded) at one shard count.
func benchSharded(n, shards, iters int) (FleetRow, error) {
	row, err := benchScenario(n, iters, func(i int) fleet.ScenarioOptions {
		return fleet.ShardedBenchScenario(n, shards, uint64(i+1))
	})
	row.Shards = shards
	return row, err
}

// benchOpenLoop measures the open-loop fixture (shared with
// BenchmarkFleetOpenLoop) at one population size.
func benchOpenLoop(n, users, iters int) (FleetRow, error) {
	row, err := benchScenario(n, iters, func(i int) fleet.ScenarioOptions {
		return fleet.OpenLoopBenchScenario(n, users, uint64(i+1))
	})
	row.Users = users
	return row, err
}

func benchScenario(n, iters int, opts func(i int) fleet.ScenarioOptions) (FleetRow, error) {
	row := FleetRow{Apps: n}
	var repairs, migrations int
	var responses uint64
	var ms runtimeMem
	ms.start()
	begin := time.Now()
	for i := 0; i < iters; i++ {
		res, err := fleet.RunScenario(opts(i))
		if err != nil {
			return row, err
		}
		if got := len(res.Summaries); got != n {
			return row, fmt.Errorf("admitted %d apps, want %d", got, n)
		}
		for _, s := range res.Summaries {
			repairs += s.Repairs
			migrations += s.Migrations
			responses += s.Responses
		}
	}
	elapsed := time.Since(begin)
	allocs, bytes := ms.stop()
	den := float64(iters * n)
	row.MsPerApp = float64(elapsed.Microseconds()) / 1e3 / den
	row.RepairsPerApp = float64(repairs) / den
	row.AllocsPerApp = float64(allocs) / den
	row.MBPerApp = float64(bytes) / den / 1e6
	row.MigrationsPerApp = float64(migrations) / den
	if opts(0).OpenLoop.Enabled {
		row.ResponsesPerApp = float64(responses) / den
	}
	return row, nil
}

// runtimeMem snapshots allocation counters around a measured section.
type runtimeMem struct {
	before runtime.MemStats
}

func (m *runtimeMem) start() { runtime.ReadMemStats(&m.before) }

func (m *runtimeMem) stop() (allocs, bytes uint64) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return after.Mallocs - m.before.Mallocs, after.TotalAlloc - m.before.TotalAlloc
}

// check compares a fresh N=32 run against the committed baseline and fails
// when allocs/app regressed beyond tolerance — the CI regression gate, with
// allocs/app as the canary (it is deterministic where ms/app is machine-
// dependent).
func check(baselinePath string, tolerance float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing baseline: %v\n", err)
		os.Exit(1)
	}
	var committed *FleetRow
	for i := range base.Fleet {
		if base.Fleet[i].Apps == 32 {
			committed = &base.Fleet[i]
		}
	}
	if committed == nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline has no N=32 row\n")
		os.Exit(1)
	}
	row, err := benchFleet(32, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: fleet N=32: %v\n", err)
		os.Exit(1)
	}
	limit := committed.AllocsPerApp * (1 + tolerance)
	fmt.Fprintf(os.Stderr, "check N=32: allocs/app %.0f (committed %.0f, limit %.0f), ms/app %.3f (committed %.3f)\n",
		row.AllocsPerApp, committed.AllocsPerApp, limit, row.MsPerApp, committed.MsPerApp)
	failed := false
	if row.AllocsPerApp > limit {
		fmt.Fprintf(os.Stderr, "benchjson: allocs/app regressed >%.0f%% vs %s — rerun scripts/bench.sh and justify the regression\n",
			100*tolerance, baselinePath)
		failed = true
	}
	// Migration fixtures (unranked and ranked): same allocs/app gate, plus
	// migrations/app as an exact behavior canary (both scenarios are
	// deterministic).
	fixtures := []struct {
		label string
		rows  []FleetRow
		bench func(n, iters int) (FleetRow, error)
	}{
		{"migration", base.FleetMigration, benchMigration},
		{"ranked migration", base.FleetRankedMigration, benchRankedMigration},
	}
	var rankedFresh, rankedCommitted FleetRow
	for _, fx := range fixtures {
		var committed *FleetRow
		for i := range fx.rows {
			if fx.rows[i].Apps == 16 {
				committed = &fx.rows[i]
			}
		}
		if committed == nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline has no %s N=16 row\n", fx.label)
			os.Exit(1)
		}
		row, err := fx.bench(16, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s N=16: %v\n", fx.label, err)
			os.Exit(1)
		}
		if fx.label == "ranked migration" {
			rankedFresh, rankedCommitted = row, *committed
		}
		limit := committed.AllocsPerApp * (1 + tolerance)
		fmt.Fprintf(os.Stderr, "check %s N=16: allocs/app %.0f (committed %.0f, limit %.0f), migrations/app %.4f (committed %.4f)\n",
			fx.label, row.AllocsPerApp, committed.AllocsPerApp, limit, row.MigrationsPerApp, committed.MigrationsPerApp)
		if row.AllocsPerApp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: %s allocs/app regressed >%.0f%% vs %s\n", fx.label, 100*tolerance, baselinePath)
			failed = true
		}
		if row.MigrationsPerApp != committed.MigrationsPerApp {
			fmt.Fprintf(os.Stderr, "benchjson: %s migrations/app drifted from the committed baseline — the scenario is deterministic; investigate before regenerating\n", fx.label)
			failed = true
		}
	}
	// Parallel-plane gates: Workers is a pure throughput knob, so every
	// fleet_parallel row — fresh and committed, serial oracle and pooled —
	// must report the identical repairs/app, and each fresh row's allocs/app
	// is held to the same tolerance as the other fixtures against its own
	// committed worker count.
	if len(base.FleetParallel) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: baseline has no fleet_parallel rows — regenerate with scripts/bench.sh\n")
		os.Exit(1)
	}
	oracleRepairs := base.FleetParallel[0].RepairsPerApp
	for _, committed := range base.FleetParallel {
		if committed.RepairsPerApp != oracleRepairs {
			fmt.Fprintf(os.Stderr, "benchjson: committed fleet_parallel rows disagree on repairs/app (workers=%d: %.4f vs %.4f) — the baseline itself violates worker invariance\n",
				committed.Workers, committed.RepairsPerApp, oracleRepairs)
			failed = true
			continue
		}
		fresh, err := benchParallel(committed.Apps, committed.Workers, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parallel N=%d workers=%d: %v\n", committed.Apps, committed.Workers, err)
			os.Exit(1)
		}
		limit := committed.AllocsPerApp * (1 + tolerance)
		fmt.Fprintf(os.Stderr, "check parallel N=%d workers=%d: repairs/app %.4f (committed %.4f), allocs/app %.0f (limit %.0f), ms/app %.3f\n",
			committed.Apps, committed.Workers, fresh.RepairsPerApp, committed.RepairsPerApp, fresh.AllocsPerApp, limit, fresh.MsPerApp)
		if fresh.RepairsPerApp != committed.RepairsPerApp {
			fmt.Fprintf(os.Stderr, "benchjson: parallel workers=%d repairs/app drifted from the committed baseline — worker count must not change behavior; investigate before regenerating\n",
				committed.Workers)
			failed = true
		}
		if fresh.AllocsPerApp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: parallel workers=%d allocs/app regressed >%.0f%% vs %s\n",
				committed.Workers, 100*tolerance, baselinePath)
			failed = true
		}
	}

	// Sharded-plane gates: Shards is a pure hosting knob, so every
	// fleet_sharded row — fresh and committed, single-kernel oracle and
	// region-sharded — must report the identical repairs/app, and each fresh
	// row's allocs/app is held to the general tolerance against its own
	// committed shard count.
	if len(base.FleetSharded) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: baseline has no fleet_sharded rows — regenerate with scripts/bench.sh\n")
		os.Exit(1)
	}
	shardRepairs := base.FleetSharded[0].RepairsPerApp
	for _, committed := range base.FleetSharded {
		if committed.RepairsPerApp != shardRepairs {
			fmt.Fprintf(os.Stderr, "benchjson: committed fleet_sharded rows disagree on repairs/app (shards=%d: %.4f vs %.4f) — the baseline itself violates shard invariance\n",
				committed.Shards, committed.RepairsPerApp, shardRepairs)
			failed = true
			continue
		}
		fresh, err := benchSharded(committed.Apps, committed.Shards, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: sharded N=%d shards=%d: %v\n", committed.Apps, committed.Shards, err)
			os.Exit(1)
		}
		limit := committed.AllocsPerApp * (1 + tolerance)
		fmt.Fprintf(os.Stderr, "check sharded N=%d shards=%d: repairs/app %.4f (committed %.4f), allocs/app %.0f (limit %.0f), ms/app %.3f\n",
			committed.Apps, committed.Shards, fresh.RepairsPerApp, committed.RepairsPerApp, fresh.AllocsPerApp, limit, fresh.MsPerApp)
		if fresh.RepairsPerApp != committed.RepairsPerApp {
			fmt.Fprintf(os.Stderr, "benchjson: sharded shards=%d repairs/app drifted from the committed baseline — shard count must not change behavior; investigate before regenerating\n",
				committed.Shards)
			failed = true
		}
		if fresh.AllocsPerApp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: sharded shards=%d allocs/app regressed >%.0f%% vs %s\n",
				committed.Shards, 100*tolerance, baselinePath)
			failed = true
		}
	}

	// Open-loop gates: the modeled population is pure bookkeeping — one
	// aggregated flow class per (client-region, server-group) pair carries
	// however many users the row models — so every committed fleet_openloop
	// row must report the identical responses/app, a fresh run must
	// reproduce it exactly (the scenario is deterministic), allocs/app is
	// held to the general tolerance, and ms/app must not scale with users:
	// the most expensive fresh row may cost at most twice the cheapest
	// (they are near-equal in practice; 2x absorbs wall-clock noise on
	// same-machine sub-second runs).
	if len(base.FleetOpenLoop) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: baseline has no fleet_openloop rows — regenerate with scripts/bench.sh\n")
		os.Exit(1)
	}
	olResponses := base.FleetOpenLoop[0].ResponsesPerApp
	olMsMin, olMsMax := 0.0, 0.0
	for _, committed := range base.FleetOpenLoop {
		if committed.ResponsesPerApp != olResponses {
			fmt.Fprintf(os.Stderr, "benchjson: committed fleet_openloop rows disagree on responses/app (users=%d: %.4f vs %.4f) — the baseline itself violates population invariance\n",
				committed.Users, committed.ResponsesPerApp, olResponses)
			failed = true
			continue
		}
		fresh, err := benchOpenLoop(committed.Apps, committed.Users, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: openloop N=%d users=%d: %v\n", committed.Apps, committed.Users, err)
			os.Exit(1)
		}
		limit := committed.AllocsPerApp * (1 + tolerance)
		fmt.Fprintf(os.Stderr, "check openloop N=%d users=%d: responses/app %.4f (committed %.4f), allocs/app %.0f (limit %.0f), ms/app %.3f\n",
			committed.Apps, committed.Users, fresh.ResponsesPerApp, committed.ResponsesPerApp, fresh.AllocsPerApp, limit, fresh.MsPerApp)
		if fresh.ResponsesPerApp != committed.ResponsesPerApp {
			fmt.Fprintf(os.Stderr, "benchjson: openloop users=%d responses/app drifted from the committed baseline — the scenario is deterministic; investigate before regenerating\n",
				committed.Users)
			failed = true
		}
		if fresh.AllocsPerApp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: openloop users=%d allocs/app regressed >%.0f%% vs %s\n",
				committed.Users, 100*tolerance, baselinePath)
			failed = true
		}
		if olMsMin == 0 || fresh.MsPerApp < olMsMin {
			olMsMin = fresh.MsPerApp
		}
		if fresh.MsPerApp > olMsMax {
			olMsMax = fresh.MsPerApp
		}
	}
	if olMsMin > 0 && olMsMax > 2*olMsMin {
		fmt.Fprintf(os.Stderr, "benchjson: openloop ms/app scales with the modeled population (%.3f vs %.3f, >2x) — aggregation must keep cost population-independent\n",
			olMsMax, olMsMin)
		failed = true
	}

	// Observability-plane gates against the ranked fixture:
	//
	//  1. trace-off overhead: with tracing disabled the plane must cost
	//     nothing — the fresh trace-off run above is held to a much tighter
	//     allocs/app tolerance than the general gate, because the committed
	//     row predates the plane entirely. ms/app is reported for context but
	//     not gated (machine-dependent).
	//  2. traced behavior canary: a traced run of the same fixture must make
	//     exactly the committed migration decisions — the tracer observes the
	//     control loop, it never steers it.
	const traceOffTolerance = 0.02
	traceLimit := rankedCommitted.AllocsPerApp * (1 + traceOffTolerance)
	fmt.Fprintf(os.Stderr, "check trace-off N=16: allocs/app %.0f (committed %.0f, limit %.0f), ms/app %.3f (committed %.3f)\n",
		rankedFresh.AllocsPerApp, rankedCommitted.AllocsPerApp, traceLimit, rankedFresh.MsPerApp, rankedCommitted.MsPerApp)
	if rankedFresh.AllocsPerApp > traceLimit {
		fmt.Fprintf(os.Stderr, "benchjson: disabled tracing costs allocations (>%.0f%% over the pre-plane baseline) — the off path must stay free\n",
			100*traceOffTolerance)
		failed = true
	}
	traced, err := benchScenario(16, 1, func(i int) fleet.ScenarioOptions {
		o := fleet.RankedMigrationBenchScenario(16, uint64(i+1))
		o.Trace = true
		return o
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: traced ranked migration N=16: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "check traced N=16: migrations/app %.4f (committed %.4f), allocs/app %.0f\n",
		traced.MigrationsPerApp, rankedCommitted.MigrationsPerApp, traced.AllocsPerApp)
	if traced.MigrationsPerApp != rankedCommitted.MigrationsPerApp {
		fmt.Fprintln(os.Stderr, "benchjson: tracing changed migration behavior — the tracer must only observe")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "check passed")
}

func main() {
	out := flag.String("out", "BENCH_fleet.json", "output file ('-' for stdout)")
	quick := flag.Bool("quick", false, "smoke mode: N=4 only, one iteration")
	iters := flag.Int("iters", 3, "fleet scenario iterations per size point")
	checkPath := flag.String("check", "", "compare fresh fleet N=32, (ranked) migration N=16, parallel worker-sweep, sharded shard-sweep and open-loop population-sweep runs against this committed baseline; exit non-zero if allocs/app regressed >20%, migrations/app or responses/app drifted, repairs/app differs across worker or shard counts, open-loop ms/app scales with users, disabled tracing costs >2% allocs, or tracing changes behavior")
	flag.Parse()

	if *checkPath != "" {
		check(*checkPath, 0.20)
		return
	}

	sizes := []int{4, 16, 32, 64}
	if *quick {
		sizes = []int{4}
		// Unless the user explicitly asked otherwise, drop to one iteration
		// and write to stdout: a quick run is a truncated (N=4-only) sweep
		// and must not silently replace the committed full baseline.
		explicitIters, explicitOut := false, false
		flag.Visit(func(f *flag.Flag) {
			explicitIters = explicitIters || f.Name == "iters"
			explicitOut = explicitOut || f.Name == "out"
		})
		if !explicitIters {
			*iters = 1
		}
		if !explicitOut {
			*out = "-"
		}
	}

	base := Baseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Reflow:      benchReflow(),
	}
	for _, n := range sizes {
		row, err := benchFleet(n, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: fleet N=%d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fleet N=%-3d %7.3f ms/app  %5.2f repairs/app  %10.0f allocs/app\n",
			n, row.MsPerApp, row.RepairsPerApp, row.AllocsPerApp)
		base.Fleet = append(base.Fleet, row)
	}
	migSizes := []int{16}
	if *quick {
		migSizes = []int{4}
	}
	migFixtures := []struct {
		label string
		bench func(n, iters int) (FleetRow, error)
		dst   *[]FleetRow
	}{
		{"migration", benchMigration, &base.FleetMigration},
		{"ranked migration", benchRankedMigration, &base.FleetRankedMigration},
	}
	for _, fx := range migFixtures {
		for _, n := range migSizes {
			// Always one iteration (seed 1): migrations_per_app is gated with
			// exact equality by -check, which also runs one seed-1 iteration,
			// so generation and check must sample the identical deterministic
			// run.
			row, err := fx.bench(n, 1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s N=%d: %v\n", fx.label, n, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%s N=%-3d %7.3f ms/app  %5.2f migrations/app  %10.0f allocs/app\n",
				fx.label, n, row.MsPerApp, row.MigrationsPerApp, row.AllocsPerApp)
			*fx.dst = append(*fx.dst, row)
		}
	}
	// Parallel-plane sweep: one seed-1 iteration per worker count, like the
	// migration fixtures, because repairs_per_app is exactly gated by -check.
	parN := 16
	if *quick {
		parN = 4
	}
	for _, w := range []int{1, 2, 4} {
		row, err := benchParallel(parN, w, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parallel N=%d workers=%d: %v\n", parN, w, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "parallel N=%-3d workers=%d %7.3f ms/app  %5.2f repairs/app  %10.0f allocs/app\n",
			parN, w, row.MsPerApp, row.RepairsPerApp, row.AllocsPerApp)
		base.FleetParallel = append(base.FleetParallel, row)
	}
	// Sharded-plane sweep: one seed-1 iteration per shard count, like the
	// parallel sweep, because repairs_per_app is exactly gated by -check.
	for _, s := range []int{0, 1, -1} {
		row, err := benchSharded(parN, s, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: sharded N=%d shards=%d: %v\n", parN, s, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sharded N=%-3d shards=%-2d %7.3f ms/app  %5.2f repairs/app  %10.0f allocs/app\n",
			parN, s, row.MsPerApp, row.RepairsPerApp, row.AllocsPerApp)
		base.FleetSharded = append(base.FleetSharded, row)
	}
	// Open-loop population sweep: one seed-1 iteration per size, because
	// responses_per_app is exactly gated by -check (and ms_per_app must not
	// scale with users).
	olN := 64
	if *quick {
		olN = 4
	}
	for _, users := range []int{10_000, 1_000_000} {
		row, err := benchOpenLoop(olN, users, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: openloop N=%d users=%d: %v\n", olN, users, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "openloop N=%-3d users=%-7d %7.3f ms/app  %5.0f responses/app  %10.0f allocs/app\n",
			olN, users, row.MsPerApp, row.ResponsesPerApp, row.AllocsPerApp)
		base.FleetOpenLoop = append(base.FleetOpenLoop, row)
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (reflow %d ns/op, %d allocs/op)\n",
		*out, base.Reflow.NsPerOp, base.Reflow.AllocsPerOp)
}
