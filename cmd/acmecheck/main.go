// Command acmecheck parses an architecture description, validates its
// structure, evaluates its invariants, and optionally reprints it in
// canonical form — the AcmeLib workflow of §4 as a command-line tool.
//
// Usage:
//
//	acmecheck [-print] file.acme [file2.acme ...]
//	acmecheck -print -        (read from stdin)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"archadapt"
)

func main() {
	reprint := flag.Bool("print", false, "reprint the description in canonical form")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: acmecheck [-print] file.acme ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		d, err := archadapt.ParseACME(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: system %q (%s): %d components, %d connectors, %d attachments, %d invariants\n",
			path, d.System.Name(), d.System.Type(),
			len(d.System.Components()), len(d.System.Connectors()),
			len(d.System.Attachments()), len(d.Invariants))
		violations := 0
		for _, inv := range d.Invariants {
			for _, v := range inv.Check(d.System, nil, false) {
				fmt.Printf("  violation: %s\n", v)
				violations++
			}
		}
		if violations == 0 {
			fmt.Println("  all invariants hold")
		} else {
			exit = 1
		}
		if *reprint {
			fmt.Print(archadapt.PrintACME(d))
		}
	}
	os.Exit(exit)
}
