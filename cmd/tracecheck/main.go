// Command tracecheck structurally validates a Chrome trace_event JSON file
// produced by `fleet -trace out.json -trace-format chrome`. It is the CI
// gate behind the exporter: a trace that loads in a viewer can still be
// causally broken (orphaned spans, decisions with no monitoring ancestry),
// and nothing in chrome://tracing would complain.
//
// Checks:
//
//   - the file is a trace_event container ({"traceEvents":[...]}) with
//     displayTimeUnit "ms", process/thread metadata, and at least one event;
//   - every span event carries args.span/args.parent, parents reference
//     emitted spans with lower IDs (causes precede effects in virtual time);
//   - the control loop's layers are present: probe samples, gauge reports,
//     model updates, violations and repair spans at minimum — plus the
//     migration chain (verdict → migrate.decide → drain → cutover →
//     recover) unless -require-migration=false, and region-health counters
//     whenever a ranked decision was traced;
//   - every migrate.decide span is causally rooted in the monitoring plane:
//     walking args.parent reaches a probe.sample or gauge.report event;
//   - counter tracks (kernel event rate) are non-empty.
//
// Usage:
//
//	tracecheck [-require-migration=false] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Args map[string]any `json:"args"`
}

type trace struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", a...)
	os.Exit(1)
}

func main() {
	requireMigration := flag.Bool("require-migration", true,
		"require the migration decision chain and region-health counters")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require-migration=false] trace.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	var tr trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		fail("%s is not trace_event JSON: %v", flag.Arg(0), err)
	}
	if tr.DisplayTimeUnit != "ms" {
		fail("displayTimeUnit is %q, want \"ms\"", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 {
		fail("trace has no events")
	}

	// Index span events (those carrying args.span) and tally everything else.
	spanNum := func(ev *event, key string) (uint64, bool) {
		v, ok := ev.Args[key]
		if !ok {
			return 0, false
		}
		f, ok := v.(float64)
		if !ok || f < 0 {
			return 0, false
		}
		return uint64(f), true
	}
	catOf := map[uint64]string{}    // span ID → cat
	parentOf := map[uint64]uint64{} // span ID → parent span ID
	byCat := map[string]int{}
	var procs, counters, flows int
	for i := range tr.TraceEvents {
		ev := &tr.TraceEvents[i]
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs++
			}
			continue
		case "C":
			counters++
			byCat[ev.Cat]++
			continue
		case "s", "f":
			flows++
			continue
		case "X", "i":
		default:
			fail("event %d has unexpected phase %q", i, ev.Ph)
		}
		byCat[ev.Cat]++
		id, ok := spanNum(ev, "span")
		if !ok {
			fail("%s event %d (%s) has no args.span", ev.Ph, i, ev.Name)
		}
		if _, dup := catOf[id]; dup {
			fail("span %d emitted twice", id)
		}
		parent, ok := spanNum(ev, "parent")
		if !ok {
			fail("span %d (%s) has no args.parent", id, ev.Name)
		}
		if parent >= id && parent != 0 {
			fail("span %d has parent %d: causes must precede effects", id, parent)
		}
		catOf[id] = ev.Cat
		parentOf[id] = parent
	}
	for id, parent := range parentOf {
		if parent != 0 {
			if _, ok := catOf[parent]; !ok {
				fail("span %d references unexported parent %d", id, parent)
			}
		}
	}
	if procs < 2 {
		fail("want fleet + app process metadata, found %d process rows", procs)
	}
	if counters == 0 {
		fail("no counter tracks (kernel event rate missing)")
	}

	required := []string{"probe.sample", "gauge.update", "gauge.report", "model.update", "violation"}
	if *requireMigration {
		required = append(required, "verdict", "migrate.decide", "drain", "cutover", "recover")
	}
	for _, cat := range required {
		if byCat[cat] == 0 {
			fail("no %s events in the trace", cat)
		}
	}
	// Region-health counters exist exactly when ranked targeting ran; a
	// ranked decision without the index it consulted is a broken trace.
	ranked := 0
	for i := range tr.TraceEvents {
		if ev := &tr.TraceEvents[i]; ev.Cat == "migrate.decide" && ev.Name == "ranked" {
			ranked++
		}
	}
	if ranked > 0 && byCat["region.health"] == 0 {
		fail("%d ranked migrate.decide events but no region.health counters", ranked)
	}

	// Causal root check: every migration decision must trace back to the
	// monitoring plane.
	for id, cat := range catOf {
		if cat != "migrate.decide" {
			continue
		}
		rooted := false
		for p := parentOf[id]; p != 0; p = parentOf[p] {
			if c := catOf[p]; c == "probe.sample" || c == "gauge.report" {
				rooted = true
				break
			}
		}
		if !rooted {
			fail("migrate.decide span %d has no probe/report ancestor", id)
		}
	}

	fmt.Printf("tracecheck: ok — %d events, %d spans, %d flow arrows, %d counters, %d migrate.decide\n",
		len(tr.TraceEvents), len(catOf), flows, counters, byCat["migrate.decide"])
}
