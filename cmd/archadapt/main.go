// Command archadapt runs the paper's evaluation (§5) and regenerates its
// figures.
//
// Usage:
//
//	archadapt [-mode both|control|adaptive] [-fig N] [-csv] [-seed N]
//	          [-caching] [-qos] [-cold-remos] [-settle S] [-smart]
//	          [-oscillate] [-duration S]
//
// With -fig 0 (default) it prints run summaries and the comparison table;
// with -fig N it prints the requested figure (7–13) as an ASCII plot or CSV.
package main

import (
	"flag"
	"fmt"
	"os"

	"archadapt"
)

func main() {
	mode := flag.String("mode", "both", "control | adaptive | both")
	fig := flag.Int("fig", 0, "figure to regenerate (7-13); 0 = summaries")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII plots")
	seed := flag.Uint64("seed", 1, "experiment seed")
	caching := flag.Bool("caching", false, "enable gauge caching (§5.3 extension)")
	qos := flag.Bool("qos", false, "prioritize monitoring traffic (§5.3 extension)")
	coldRemos := flag.Bool("cold-remos", false, "skip Remos pre-querying (exposes cold-query lag)")
	settle := flag.Float64("settle", 0, "repair settle time in seconds (§5.3 extension)")
	smart := flag.Bool("smart", false, "worst-latency-first repair selection (§7 extension)")
	oscillate := flag.Bool("oscillate", false, "alternating-competition oscillation scenario")
	duration := flag.Float64("duration", 0, "run duration in seconds (default 1800)")
	flag.Parse()

	cfg := archadapt.DefaultConfig()
	cfg.GaugeCaching = *caching
	cfg.SkipRemosPrequery = *coldRemos
	cfg.SettleTime = *settle
	cfg.SmartSelection = *smart
	if *qos {
		cfg.MonitoringPriority = archadapt.Prioritized
	}
	base := archadapt.ExperimentOptions{
		Seed: *seed, Cfg: cfg, Duration: *duration, Oscillate: *oscillate,
	}

	var control, adaptive *archadapt.ExperimentResults
	if *mode == "control" || *mode == "both" {
		fmt.Fprintln(os.Stderr, "running control (1800 simulated seconds)...")
		opts := base
		opts.Adaptive = false
		control = archadapt.RunExperiment(opts)
	}
	if *mode == "adaptive" || *mode == "both" {
		fmt.Fprintln(os.Stderr, "running adaptive (1800 simulated seconds)...")
		opts := base
		opts.Adaptive = true
		adaptive = archadapt.RunExperiment(opts)
	}

	if *fig != 0 {
		f := archadapt.Figure(*fig)
		res := control
		if f.Adaptive() || (control == nil && adaptive != nil) {
			res = adaptive
		}
		if res == nil {
			fmt.Fprintf(os.Stderr, "figure %d needs the %s run; adjust -mode\n", *fig,
				map[bool]string{true: "adaptive", false: "control"}[f.Adaptive()])
			os.Exit(2)
		}
		if *csv {
			fmt.Println("#", f.Title())
			fmt.Print(archadapt.FigureCSV(f, res))
			return
		}
		fmt.Print(archadapt.RenderFigure(f, res))
		return
	}

	if control != nil {
		fmt.Println(control.Summarize())
	}
	if adaptive != nil {
		fmt.Println(adaptive.Summarize())
	}
	if control != nil && adaptive != nil {
		fmt.Println("=== control vs adaptive ===")
		fmt.Print(archadapt.CompareRuns(control, adaptive))
	}
}
