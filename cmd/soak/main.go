// Command soak drives the seeded chaos engine (internal/chaos): each seed
// becomes a random-but-deterministic fleet scenario — grid shape, app mix,
// admission churn, and a fault schedule composing the injectors into
// overlapping, repeated, restore-racing sequences — executed in both pinned
// and migrate modes under the eight standing invariants (same-seed
// determinism, slot/reservation ledger audits, netsim solver-vs-oracle
// equivalence, ranked-targeting sanity, no stuck drains, parallel/serial
// worker invariance — a pooled run must fingerprint byte-identically to the
// single-kernel oracle — a balanced admission ledger with autoscaled replicas
// inside the policy cap on seeds that enable the open-loop engine, and
// sharded/single-kernel invariance — a run hosted on per-region shard kernels
// must fingerprint byte-identically to the same run on one kernel).
//
// Usage:
//
//	soak [-seeds START:END] [-v]          bounded CI mode (default 0:64)
//	soak -duration 10m [-seeds START:]    long local mode: seeds from START
//	                                      until the wall clock expires
//
// On the first failing seed, soak prints every violation, shrinks the
// scenario to a minimal reproducer (ddmin over the fault schedule, then the
// scalar knobs; disable with -shrink=false, tune with -shrink-budget), emits
// it as a ready-to-paste fleet.ScenarioOptions literal, and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"archadapt/internal/chaos"
	"archadapt/internal/fleet"
)

func main() {
	seeds := flag.String("seeds", "0:64", "half-open seed range START:END (END ignored with -duration)")
	duration := flag.Duration("duration", 0, "run until this much wall time has elapsed instead of a fixed range")
	shrink := flag.Bool("shrink", true, "on failure, shrink to a minimal reproducer before reporting")
	budget := flag.Int("shrink-budget", 120, "max candidate executions the shrinker may spend")
	verbose := flag.Bool("v", false, "print each seed as it passes")
	flag.Parse()

	start, end, err := parseRange(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(2)
	}

	t0 := time.Now()
	checked := 0
	for seed := start; ; seed++ {
		if *duration > 0 {
			if time.Since(t0) >= *duration {
				break
			}
		} else if seed >= end {
			break
		}
		vs := chaos.CheckSeed(seed)
		checked++
		if len(vs) > 0 {
			report(vs, *shrink, *budget)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("seed %d: clean\n", seed)
		}
	}
	fmt.Printf("soak: %d seeds clean in %.1fs (pinned + migrate, each run twice)\n",
		checked, time.Since(t0).Seconds())
}

// report prints every violation for the failing seed, then shrinks the
// first failing (seed, mode) run to a minimal reproducer and emits it as a
// ScenarioOptions literal with a re-check hint.
func report(vs []chaos.Violation, shrink bool, budget int) {
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "FAIL %s\n", v)
	}
	v := vs[0]
	opts := chaos.Generate(v.Seed)
	if v.Mode == chaos.ModeMigrate {
		opts.Migration = chaos.MigratePolicy(v.Seed)
	}
	if shrink {
		inv := v.Invariant
		fails := func(o fleet.ScenarioOptions) bool {
			for _, w := range chaos.Check(o) {
				if w.Invariant == inv {
					return true
				}
			}
			return false
		}
		fmt.Fprintf(os.Stderr, "shrinking seed %d (%s) against the %q invariant (budget %d)...\n",
			v.Seed, v.Mode, inv, budget)
		opts = chaos.Shrink(opts, fails, budget)
	}
	if v.Invariant == "parallel" {
		if w := chaos.MinimalDivergingWorkers(opts, 8); w > 0 {
			fmt.Fprintf(os.Stderr, "parallel divergence reproduces with as few as %d workers\n", w)
		} else {
			fmt.Fprintf(os.Stderr, "parallel divergence did not reproduce at workers 2..8 on the shrunk scenario\n")
		}
	}
	fmt.Fprintf(os.Stderr, "minimal reproducer (re-check with chaos.Check on this literal):\n%s\n",
		chaos.FormatOptions(opts))
}

// parseRange parses "START:END" (half-open); "START:" leaves END at the
// maximum for -duration mode.
func parseRange(s string) (start, end uint64, err error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-seeds %q: want START:END", s)
	}
	if lo != "" {
		if start, err = strconv.ParseUint(lo, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("-seeds %q: %v", s, err)
		}
	}
	end = ^uint64(0)
	if hi != "" {
		if end, err = strconv.ParseUint(hi, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("-seeds %q: %v", s, err)
		}
	}
	if end <= start {
		return 0, 0, fmt.Errorf("-seeds %q: empty range", s)
	}
	return start, end, nil
}
