// Command remosq queries the simulated Remos service on the paper's testbed
// (Table 1's remos_get_flow), demonstrating the cold-query cost of §5.3 and
// the effect of pre-querying.
//
// Usage:
//
//	remosq                      # timing demo: cold vs warm vs pre-queried
//	remosq mS1 mC3              # one query between two testbed machines
//
// Machines: mC12 mC3 mC4 mC56 mS1 mS2 mS3 mS4 mS5RQ mS6 mS7.
package main

import (
	"flag"
	"fmt"
	"os"

	"archadapt"
)

func main() {
	flag.Parse()
	tb := archadapt.NewTestbed(1)

	query := func(src, dst string) {
		a, ok := tb.Net.Lookup(src)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown machine %q\n", src)
			os.Exit(2)
		}
		b, ok := tb.Net.Lookup(dst)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown machine %q\n", dst)
			os.Exit(2)
		}
		start := tb.K.Now()
		tb.Rm.GetFlow(tb.Hosts["mS4"], a, b, func(bw float64) {
			fmt.Printf("remos_get_flow(%s, %s) = %.4g Mbps  (answered after %.2f s, cold=%v)\n",
				src, dst, bw/1e6, tb.K.Now()-start, tb.K.Now()-start > 1)
		})
		tb.K.RunAll(0)
	}

	if flag.NArg() == 2 {
		query(flag.Arg(0), flag.Arg(1))
		return
	}

	fmt.Println("cold query (Remos must collect and analyze data first):")
	query("mS1", "mC3")
	fmt.Println("warm repeat of the same pair:")
	query("mS1", "mC3")
	fmt.Println("pre-querying a second pair, then querying it:")
	tb.Rm.Prequery(tb.Hosts["mS5RQ"], tb.Hosts["mC3"])
	tb.K.RunAll(0)
	query("mS5RQ", "mC3")
	fmt.Printf("\nservice stats: %d queries, %d cold collections\n", tb.Rm.Queries(), tb.Rm.ColdQueries())
}
