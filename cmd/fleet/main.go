// Command fleet runs many managed applications concurrently on one shared
// generated grid and prints a per-app comparison table — the grid-scale
// version of cmd/archadapt's single-application evaluation.
//
// Usage:
//
//	fleet [-apps N] [-mode both|control|adaptive] [-seed N] [-duration S]
//	      [-routers N] [-hosts-per-router N] [-host-capacity N]
//	      [-admit-stagger S] [-crush-start S] [-crush-stagger S]
//	      [-crush-duration S] [-caching] [-settle S]
//
// With -mode both (the default) it runs the same fleet twice — once as pure
// observers, once with repairs enabled — and prints the per-app comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"archadapt"
)

func main() {
	apps := flag.Int("apps", 32, "number of applications to admit")
	mode := flag.String("mode", "both", "control | adaptive | both")
	seed := flag.Uint64("seed", 1, "fleet seed (drives every stochastic stream)")
	duration := flag.Float64("duration", 600, "run duration in simulated seconds")
	routers := flag.Int("routers", 0, "backbone routers (0 = auto-size for -apps)")
	hostsPerRouter := flag.Int("hosts-per-router", 0, "hosts per router (0 = auto)")
	hostCap := flag.Int("host-capacity", 1, "process slots per host")
	admitStagger := flag.Float64("admit-stagger", 0, "seconds between admissions")
	crushStart := flag.Float64("crush-start", 120, "first contention onset (<0 disables)")
	crushStagger := flag.Float64("crush-stagger", 5, "seconds between per-app contention onsets")
	crushDuration := flag.Float64("crush-duration", 240, "contention duration per app")
	caching := flag.Bool("caching", false, "enable gauge caching (§5.3 extension)")
	settle := flag.Float64("settle", 0, "repair settle time in seconds")
	flag.Parse()
	switch *mode {
	case "control", "adaptive", "both":
	default:
		fmt.Fprintf(os.Stderr, "fleet: unknown -mode %q (want control|adaptive|both)\n", *mode)
		os.Exit(2)
	}

	cfg := archadapt.DefaultConfig()
	cfg.GaugeCaching = *caching
	cfg.SettleTime = *settle
	base := archadapt.FleetScenarioOptions{
		Apps:           *apps,
		Seed:           *seed,
		Duration:       *duration,
		Routers:        *routers,
		HostsPerRouter: *hostsPerRouter,
		HostCapacity:   *hostCap,
		AdmitStagger:   *admitStagger,
		CrushStart:     *crushStart,
		CrushStagger:   *crushStagger,
		CrushDuration:  *crushDuration,
		Manager:        cfg,
	}

	run := func(adaptive bool) *archadapt.FleetScenarioResult {
		kind := "control"
		if adaptive {
			kind = "adaptive"
		}
		opts := base
		opts.Adaptive = adaptive
		res, err := archadapt.RunFleetScenario(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %s run: %v\n", kind, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ran %s fleet: %s, %d apps admitted, %d rejected\n",
			kind, res.Grid, len(res.Summaries), len(res.Fleet.Rejections()))
		for _, rej := range res.Fleet.Rejections() {
			fmt.Fprintf(os.Stderr, "  rejected %s at t=%.0f: %v\n", rej.Name, rej.Time, rej.Err)
		}
		return res
	}

	var control, adaptive *archadapt.FleetScenarioResult
	if *mode == "control" || *mode == "both" {
		control = run(false)
	}
	if *mode == "adaptive" || *mode == "both" {
		adaptive = run(true)
	}

	if control != nil && (*mode == "control" || adaptive == nil) {
		fmt.Println("=== control fleet ===")
		fmt.Print(control.Table())
	}
	if adaptive != nil {
		fmt.Println("=== adaptive fleet ===")
		fmt.Print(adaptive.Table())
	}
	if control != nil && adaptive != nil {
		fmt.Println("=== per-app control vs adaptive ===")
		fmt.Print(archadapt.FleetCompareTable(control.Summaries, adaptive.Summaries))
	}
}
