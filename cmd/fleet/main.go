// Command fleet runs many managed applications concurrently on one shared
// generated grid and prints a per-app comparison table — the grid-scale
// version of cmd/archadapt's single-application evaluation.
//
// Usage:
//
//	fleet [-apps N] [-mode both|control|adaptive|migrate] [-seed N] [-workers N] [-shards N]
//	      [-duration S] [-routers N] [-hosts-per-router N] [-spare-routers N]
//	      [-host-capacity N] [-admit-stagger S] [-admit-waves N] [-retire-after S]
//	      [-crush-start S] [-crush-stagger S] [-crush-duration S]
//	      [-crush-apps N] [-crush-all-groups]
//	      [-backbone-crush S] [-region-fail S] [-region-fail-router N]
//	      [-migration] [-ranked] [-max-concurrent N] [-caching] [-settle S]
//	      [-openloop] [-users N]
//	      [-trace FILE] [-trace-format chrome|jsonl] [-pprof CPU[,HEAP]]
//	fleet -scenario NAME [-mode ...] [-seed N]
//	fleet -list
//
// With -mode both (the default) it runs the same fleet twice — once as pure
// observers, once with repairs enabled — and prints the per-app comparison.
// With -mode migrate it runs the fleet twice with repairs enabled — once
// pinned (migration disabled) and once with the fleet-level migration
// controller — and prints the pinned-vs-migrating comparison.
//
// -scenario runs a named entry from the scenario catalog (SCENARIOS.md);
// -list prints the catalog. Explicitly set flags (-apps, -seed, -duration,
// -migration, -ranked, -max-concurrent) override the entry's values —
// e.g. `-scenario backbone-rescue -ranked=false` runs the avoid-set-only
// control against the committed ranked entry.
//
// -openloop replaces the closed-loop request generators with the open-loop
// heavy-traffic engine: arrival-driven aggregated flow classes carrying
// -users modeled users per application (autoscaling enabled), at a cost
// independent of the population size. With -scenario it overrides the
// entry's open-loop policy — e.g. `-scenario flash-crowd -users 1000000`
// reruns the committed flash crowd at a million users per app.
//
// -trace FILE attaches the deterministic observability plane to the run
// under test (the adaptive run; the migrating run with -mode migrate) and
// exports its causal span timeline — chrome format loads directly into
// chrome://tracing or Perfetto, jsonl is one span per line for scripting.
// -pprof writes a CPU profile (and optionally a heap profile) of the whole
// invocation for scripts/bench.sh -profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"archadapt"
)

// writeTrace exports tr to path in the requested format.
func writeTrace(tr *archadapt.Tracer, path, format string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
	if format == "jsonl" {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: writing trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s trace (%d spans) to %s\n", format, tr.Len(), path)
}

func main() {
	apps := flag.Int("apps", 32, "number of applications to admit")
	mode := flag.String("mode", "both", "control | adaptive | both | migrate")
	seed := flag.Uint64("seed", 1, "fleet seed (drives every stochastic stream)")
	workers := flag.Int("workers", 1, "simulation worker pool size (1 = serial oracle; results are byte-identical at any setting)")
	shards := flag.Int("shards", 0, "host event execution on per-region shard kernels: 0 = single-kernel oracle, -1 = one shard per region, N = N shards (results are byte-identical at any setting)")
	duration := flag.Float64("duration", 600, "run duration in simulated seconds")
	routers := flag.Int("routers", 0, "backbone routers (0 = auto-size for -apps)")
	hostsPerRouter := flag.Int("hosts-per-router", 0, "hosts per router (0 = auto)")
	spareRouters := flag.Int("spare-routers", 0, "extra routers beyond the auto-sized minimum (migration headroom)")
	hostCap := flag.Int("host-capacity", 1, "process slots per host")
	admitStagger := flag.Float64("admit-stagger", 0, "seconds between admissions")
	admitWaves := flag.Int("admit-waves", 0, "spread admissions into N diurnal waves")
	retireAfter := flag.Float64("retire-after", 0, "retire each app this long after admission (0 = never)")
	crushStart := flag.Float64("crush-start", 120, "first contention onset (<0 disables)")
	crushStagger := flag.Float64("crush-stagger", 5, "seconds between per-app contention onsets")
	crushDuration := flag.Float64("crush-duration", 240, "contention duration per app")
	crushApps := flag.Int("crush-apps", 0, "crush only the first N apps (0 = all)")
	crushAllGroups := flag.Bool("crush-all-groups", false, "crush every group's servers, not just the primary's")
	backboneCrush := flag.Float64("backbone-crush", 0, "start correlated backbone contention at this time (0 disables)")
	regionFail := flag.Float64("region-fail", 0, "fail one router's region at this time (0 disables)")
	regionFailRouter := flag.Int("region-fail-router", 1, "router index for -region-fail")
	migration := flag.Bool("migration", false, "enable the fleet-level migration controller")
	ranked := flag.Bool("ranked", false, "measurement-driven migration targeting (region health index + PlaceRanked)")
	maxConcurrent := flag.Int("max-concurrent", 0, "cap on concurrently draining migrations (0 = policy default)")
	openloop := flag.Bool("openloop", false, "drive apps with the open-loop heavy-traffic engine (autoscaling enabled)")
	users := flag.Int("users", 0, "modeled users per app with -openloop (0 = one per client)")
	caching := flag.Bool("caching", false, "enable gauge caching (§5.3 extension)")
	settle := flag.Float64("settle", 0, "repair settle time in seconds")
	scenario := flag.String("scenario", "", "run a named scenario from the catalog (see -list)")
	list := flag.Bool("list", false, "print the scenario catalog and exit")
	traceOut := flag.String("trace", "", "trace the run under test and write its timeline to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome | jsonl")
	pprofOut := flag.String("pprof", "", "write a CPU profile to the first path (and a heap profile to an optional second, comma-separated)")
	flag.Parse()

	if *list {
		for _, e := range archadapt.FleetCatalog() {
			fmt.Printf("%-16s %s\n%16s expect: %s\n", e.Name, e.Stresses, "", e.Expect)
		}
		return
	}
	switch *mode {
	case "control", "adaptive", "both", "migrate":
	default:
		fmt.Fprintf(os.Stderr, "fleet: unknown -mode %q (want control|adaptive|both|migrate)\n", *mode)
		os.Exit(2)
	}
	switch *traceFormat {
	case "chrome", "jsonl":
	default:
		fmt.Fprintf(os.Stderr, "fleet: unknown -trace-format %q (want chrome|jsonl)\n", *traceFormat)
		os.Exit(2)
	}
	if *pprofOut != "" {
		paths := strings.SplitN(*pprofOut, ",", 2)
		cf, err := os.Create(paths[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
			if len(paths) == 2 && paths[1] != "" {
				hf, err := os.Create(paths[1])
				if err != nil {
					fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
					return
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(hf); err != nil {
					fmt.Fprintf(os.Stderr, "fleet: heap profile: %v\n", err)
				}
				hf.Close()
			}
		}()
	}

	cfg := archadapt.DefaultConfig()
	cfg.GaugeCaching = *caching
	cfg.SettleTime = *settle

	var base archadapt.FleetScenarioOptions
	if *scenario != "" {
		entry, err := archadapt.FleetScenarioByName(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v (try -list)\n", err)
			os.Exit(2)
		}
		base = entry.Opts
		base.Manager = cfg
		explicitlySet := func(name string) bool {
			set := false
			flag.Visit(func(f *flag.Flag) { set = set || f.Name == name })
			return set
		}
		// Explicitly set flags override the catalog entry.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "apps":
				base.Apps = *apps
			case "seed":
				base.Seed = *seed
			case "workers":
				base.Workers = *workers
			case "shards":
				base.Shards = *shards
			case "duration":
				base.Duration = *duration
			case "migration":
				base.Migration.Enabled = *migration
			case "ranked":
				base.Migration.Ranked = *ranked
			case "max-concurrent":
				base.Migration.MaxConcurrent = *maxConcurrent
			case "openloop":
				base.OpenLoop.Enabled = *openloop
				if *openloop && !base.OpenLoop.Scale.Enabled {
					base.OpenLoop.Scale.Enabled = true
				}
			case "users":
				// Overriding the population implies the engine unless
				// -openloop=false said otherwise.
				base.OpenLoop.Users = *users
				if !explicitlySet("openloop") {
					base.OpenLoop.Enabled = true
					base.OpenLoop.Scale.Enabled = true
				}
			case "mode", "scenario", "caching", "settle", "list",
				"trace", "trace-format", "pprof":
				// orthogonal to the entry's shape
			default:
				fmt.Fprintf(os.Stderr, "fleet: -%s has no effect together with -scenario (the entry's value is used)\n", f.Name)
			}
		})
	} else {
		base = archadapt.FleetScenarioOptions{
			Apps:           *apps,
			Seed:           *seed,
			Workers:        *workers,
			Shards:         *shards,
			Duration:       *duration,
			Routers:        *routers,
			HostsPerRouter: *hostsPerRouter,
			SpareRouters:   *spareRouters,
			HostCapacity:   *hostCap,
			AdmitStagger:   *admitStagger,
			AdmitWaves:     *admitWaves,
			RetireAfter:    *retireAfter,
			CrushStart:     *crushStart,
			CrushStagger:   *crushStagger,
			CrushDuration:  *crushDuration,
			CrushApps:      *crushApps,
			CrushAllGroups: *crushAllGroups,
			Manager:        cfg,
		}
		if *backboneCrush > 0 {
			base.BackboneCrushStart = *backboneCrush
		}
		if *regionFail > 0 {
			base.RegionFailStart = *regionFail
			base.RegionFailRouter = *regionFailRouter
		}
		base.Migration = archadapt.FleetMigrationPolicy{
			// -mode migrate enables migration for its second run even when
			// -migration is unset, so the targeting knobs are always carried.
			Enabled: *migration || *ranked,
			Ranked:  *ranked, MaxConcurrent: *maxConcurrent,
		}
		if *openloop || *users != 0 {
			base.OpenLoop = archadapt.FleetOpenLoopPolicy{
				Enabled: true,
				Users:   *users,
				Scale:   archadapt.FleetScalePolicy{Enabled: true},
			}
		}
	}
	// -mode migrate enables migration itself for the second run.
	if !base.Migration.Enabled && *mode != "migrate" && (*ranked || *maxConcurrent != 0) {
		fmt.Fprintf(os.Stderr, "fleet: -ranked/-max-concurrent have no effect while migration is disabled (add -migration, -mode migrate, or a migration-enabled scenario)\n")
	}

	run := func(kind string, adaptive, migrating, traced bool) *archadapt.FleetScenarioResult {
		opts := base
		opts.Adaptive = adaptive
		opts.Migration.Enabled = migrating
		opts.Trace = traced && *traceOut != ""
		res, err := archadapt.RunFleetScenario(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %s run: %v\n", kind, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ran %s fleet: %s, %d apps admitted, %d rejected\n",
			kind, res.Grid, len(res.Summaries), len(res.Fleet.Rejections()))
		for _, rej := range res.Fleet.Rejections() {
			fmt.Fprintf(os.Stderr, "  rejected %s at t=%.0f: %v\n", rej.Name, rej.Time, rej.Err)
		}
		if led, ok := res.Fleet.OpenLoopLedger(); ok && led != (archadapt.FleetAdmissionLedger{}) {
			fmt.Fprintf(os.Stderr, "  open-loop admission: offered %d admitted %d shed %d queued %d (active %d, retired %d)\n",
				led.Offered, led.Admitted, led.Shed, led.Queued, led.Active, led.Retired)
		}
		var ups, downs int
		for _, s := range res.Summaries {
			ups += s.ScaleUps
			downs += s.ScaleDowns
		}
		if ups+downs > 0 {
			fmt.Fprintf(os.Stderr, "  autoscaler: %d scale-ups, %d scale-downs\n", ups, downs)
		}
		for _, name := range res.Fleet.Apps() {
			for _, m := range res.Fleet.App(name).Migrations {
				switch {
				case m.Err != nil:
					fmt.Fprintf(os.Stderr, "  %s migration at t=%.0f failed: %v\n", name, m.DecidedAt, m.Err)
				case !m.Completed():
					fmt.Fprintf(os.Stderr, "  %s migration at t=%.0f aborted\n", name, m.DecidedAt)
				default:
					fmt.Fprintf(os.Stderr, "  %s migrated t=%.0f→%.0f (drained=%v)\n",
						name, m.DecidedAt, m.CompletedAt, m.Drained)
				}
			}
		}
		if opts.Trace {
			writeTrace(res.Fleet.Tracer(), *traceOut, *traceFormat)
		}
		return res
	}

	if *mode == "migrate" {
		pinned := run("pinned", true, false, false)
		migrating := run("migrating", true, true, true)
		fmt.Println("=== pinned fleet (migration disabled) ===")
		fmt.Print(pinned.Table())
		fmt.Println("=== migrating fleet ===")
		fmt.Print(migrating.Table())
		fmt.Println("=== per-app pinned vs migrating ===")
		fmt.Print(archadapt.FleetCompareTable(pinned.Summaries, migrating.Summaries))
		return
	}

	migrating := base.Migration.Enabled
	var control, adaptive *archadapt.FleetScenarioResult
	if *mode == "control" || *mode == "both" {
		control = run("control", false, migrating, *mode == "control")
	}
	if *mode == "adaptive" || *mode == "both" {
		adaptive = run("adaptive", true, migrating, true)
	}

	if control != nil && (*mode == "control" || adaptive == nil) {
		fmt.Println("=== control fleet ===")
		fmt.Print(control.Table())
	}
	if adaptive != nil {
		fmt.Println("=== adaptive fleet ===")
		fmt.Print(adaptive.Table())
	}
	if control != nil && adaptive != nil {
		fmt.Println("=== per-app control vs adaptive ===")
		fmt.Print(archadapt.FleetCompareTable(control.Summaries, adaptive.Summaries))
	}
}
