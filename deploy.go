package archadapt

import (
	"fmt"

	"archadapt/internal/operators"
)

// Placement maps the logical deployment (a Spec) onto simulated machines.
type Placement struct {
	// ServerHosts and ClientHosts assign each named server/client a host.
	ServerHosts map[string]NodeID
	ClientHosts map[string]NodeID
	// QueueHost runs the request-queue machine; ManagerHost runs the repair
	// infrastructure (architecture manager, gauge manager, Remos).
	QueueHost   NodeID
	ManagerHost NodeID

	// ServiceBase/ServicePerBit set every server's processing-time model;
	// zero values default to 50 ms + 0.4 s per 20 KB.
	ServiceBase   float64
	ServicePerBit float64

	// ClientRate and ClientRespBits configure initial client traffic; zero
	// values default to 1 req/s and 8 KB replies.
	ClientRate     float64
	ClientRespBits float64
}

// Deployment bundles a deployed scenario: the application, its architectural
// model, the Remos service, and (after Manage) the architecture manager.
type Deployment struct {
	K     *Kernel
	Net   *Network
	App   *App
	Model *Model
	Rm    *Remos
	Mgr   *Manager

	placement Placement
}

// Deploy instantiates a Spec on a network: creates the request queues, the
// server and client processes, activates each group's initial servers, and
// builds the matching architectural model. The returned Deployment is ready
// for Manage plus App.Start.
func Deploy(k *Kernel, net *Network, spec Spec, pl Placement, seed uint64) (*Deployment, error) {
	if pl.ServiceBase == 0 {
		pl.ServiceBase = 0.05
	}
	if pl.ServicePerBit == 0 {
		pl.ServicePerBit = 0.4 / (20 * 8192)
	}
	if pl.ClientRate == 0 {
		pl.ClientRate = 1.0
	}
	if pl.ClientRespBits == 0 {
		pl.ClientRespBits = 8 * 8192
	}

	a := NewApp(k, net, pl.QueueHost)
	rng := NewRand(seed)
	for _, g := range spec.Groups {
		if err := a.CreateQueue(g.Name); err != nil {
			return nil, err
		}
		for i, srv := range g.Servers {
			host, ok := pl.ServerHosts[srv]
			if !ok {
				return nil, fmt.Errorf("archadapt: no host for server %s", srv)
			}
			a.AddServer(srv, host, g.Name, pl.ServiceBase, pl.ServicePerBit)
			if i < g.ActiveCount {
				if err := a.Activate(srv); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, c := range spec.Clients {
		host, ok := pl.ClientHosts[c.Name]
		if !ok {
			return nil, fmt.Errorf("archadapt: no host for client %s", c.Name)
		}
		cli := a.AddClient(c.Name, host, c.Group, pl.ClientRate, rng.Fork("client:"+c.Name))
		respBits := pl.ClientRespBits
		r := rng.Fork("resp:" + c.Name)
		cli.RespBits = func() float64 { return r.LogNormalAround(respBits, 0.35) }
	}

	mdl, err := operators.Build(spec)
	if err != nil {
		return nil, err
	}
	return &Deployment{
		K: k, Net: net, App: a, Model: mdl,
		Rm:        NewRemos(k, net, pl.ManagerHost),
		placement: pl,
	}, nil
}

// Manage attaches the architecture manager and deploys its monitoring.
func (d *Deployment) Manage(cfg ManagerConfig) *Manager {
	d.Mgr = NewManager(cfg, d.K, d.Net, d.App, d.Model, d.placement.ManagerHost, d.Rm)
	d.Mgr.Deploy()
	return d.Mgr
}
