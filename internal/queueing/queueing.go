// Package queueing provides the design-time performance analysis the paper
// leans on (§5: "we calculated that an initial starting point of 3
// replicated servers in one server group would be sufficient to serve our
// six clients"; §7: "a queuing-theoretic analysis of performance can
// indicate possible points of adaptation"). It implements the standard
// M/M/m model: Poisson arrivals, exponential service, m replicated servers
// sharing one FIFO queue — exactly the server-group architecture of
// Figure 2.
package queueing

import (
	"fmt"
	"math"
)

// MMm describes one server group under analysis.
type MMm struct {
	// Lambda is the aggregate arrival rate (requests/second).
	Lambda float64
	// Mu is the per-server service rate (requests/second).
	Mu float64
	// M is the number of replicated servers.
	M int
}

// Valid reports whether the system is stable (utilization < 1). A zero
// arrival rate is trivially stable; a group with no servers or no service
// capacity never is.
func (q MMm) Valid() bool {
	return q.Lambda >= 0 && q.Mu > 0 && q.M > 0 && q.Utilization() < 1
}

// Utilization returns ρ = λ/(mμ). Degenerate groups (m ≤ 0 or μ ≤ 0) are
// reported as saturated (+Inf) rather than NaN so callers can branch on
// ρ ≥ 1 without NaN-poisoning downstream arithmetic.
func (q MMm) Utilization() float64 {
	if q.M <= 0 || q.Mu <= 0 {
		return math.Inf(1)
	}
	return q.Lambda / (float64(q.M) * q.Mu)
}

// Saturated reports whether the group cannot drain its offered load
// (ρ ≥ 1, or a degenerate m/μ). Saturated groups have infinite mean wait.
func (q MMm) Saturated() bool {
	return q.Lambda > 0 && !q.Valid()
}

// ErlangC returns the probability an arriving request waits (all servers
// busy). An empty system (λ=0) never waits; a saturated one always does.
func (q MMm) ErlangC() float64 {
	if q.Lambda <= 0 {
		return 0
	}
	if !q.Valid() {
		return 1
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	m := float64(q.M)
	rho := q.Utilization()

	// Σ_{k<m} a^k/k!  computed iteratively for stability.
	sum := 0.0
	term := 1.0
	for k := 0; k < q.M; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	// a^m/m! · 1/(1-ρ)
	top := term * a / m / (1 - rho)
	return top / (sum + top)
}

// MeanQueueLength returns Lq, the mean number of waiting requests. It is 0
// for an empty system and +Inf (never NaN) when saturated.
func (q MMm) MeanQueueLength() float64 {
	if !q.Valid() {
		return math.Inf(1)
	}
	rho := q.Utilization()
	return q.ErlangC() * rho / (1 - rho)
}

// MeanWait returns Wq, the mean time spent waiting in queue (seconds). It
// is 0 for an empty system and +Inf (never NaN) when saturated.
func (q MMm) MeanWait() float64 {
	if !q.Valid() {
		return math.Inf(1)
	}
	return q.ErlangC() / (float64(q.M)*q.Mu - q.Lambda)
}

// MeanResponse returns W = Wq + 1/μ, the mean end-to-end service latency
// excluding network transfer time. Saturated or degenerate groups return
// +Inf, never NaN — callers compare W against a latency bound and a NaN
// would silently pass every comparison.
func (q MMm) MeanResponse() float64 {
	if q.Mu <= 0 {
		return math.Inf(1)
	}
	return q.MeanWait() + 1/q.Mu
}

// String summarizes the analysis.
func (q MMm) String() string {
	return fmt.Sprintf("M/M/%d λ=%.2f μ=%.2f ρ=%.2f W=%.3fs Lq=%.2f",
		q.M, q.Lambda, q.Mu, q.Utilization(), q.MeanResponse(), q.MeanQueueLength())
}

// ServersFor returns the minimum number of servers keeping mean response
// under maxLatency, and the analysis at that point. It returns ok=false if
// even maxServers servers cannot meet the bound.
func ServersFor(lambda, mu, maxLatency float64, maxServers int) (int, MMm, bool) {
	for m := 1; m <= maxServers; m++ {
		q := MMm{Lambda: lambda, Mu: mu, M: m}
		if q.Valid() && q.MeanResponse() <= maxLatency {
			return m, q, true
		}
	}
	return 0, MMm{}, false
}

// MinBandwidth returns the minimum connection bandwidth (bits/sec) that
// keeps the transfer time of a reply of respBits under budget seconds —
// the analysis that produced the paper's 10 Kbps floor.
func MinBandwidth(respBits, budget float64) float64 {
	if budget <= 0 {
		return math.Inf(1)
	}
	return respBits / budget
}
