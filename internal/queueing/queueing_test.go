package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1MatchesClosedForm(t *testing.T) {
	// With m=1 the M/M/m formulas reduce to the classic M/M/1: W = 1/(μ-λ),
	// Lq = ρ²/(1-ρ), P(wait) = ρ.
	q := MMm{Lambda: 3, Mu: 5, M: 1}
	rho := 3.0 / 5.0
	if got := q.ErlangC(); math.Abs(got-rho) > 1e-9 {
		t.Fatalf("ErlangC=%v, want %v", got, rho)
	}
	if got := q.MeanResponse(); math.Abs(got-1/(5.0-3.0)) > 1e-9 {
		t.Fatalf("W=%v, want %v", got, 1/(5.0-3.0))
	}
	if got := q.MeanQueueLength(); math.Abs(got-rho*rho/(1-rho)) > 1e-9 {
		t.Fatalf("Lq=%v", got)
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Standard worked example: λ=2/min, μ=1/min per server, m=3 ⇒
	// a=2 Erlangs, C(3,2) = 4/9.
	q := MMm{Lambda: 2, Mu: 1, M: 3}
	if got := q.ErlangC(); math.Abs(got-4.0/9.0) > 1e-9 {
		t.Fatalf("ErlangC=%v, want 4/9", got)
	}
}

func TestUnstableSystem(t *testing.T) {
	q := MMm{Lambda: 10, Mu: 1, M: 3}
	if q.Valid() {
		t.Fatal("ρ>1 should be invalid")
	}
	if !math.IsInf(q.MeanResponse(), 1) {
		t.Fatal("unstable response should be +Inf")
	}
}

// TestEdgeCases pins the degenerate corners surfaced by the open-loop
// engine, which evaluates MeanResponse on whatever (λ, μ, m) the fleet is
// currently in — including saturated and empty groups. Every corner must
// yield a comparable float (0 or +Inf), never NaN.
func TestEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name            string
		q               MMm
		valid, sat      bool
		rho, wq, w, erc float64 // expected; NaN entries are disallowed outputs
	}{
		{"empty system", MMm{Lambda: 0, Mu: 2, M: 3}, true, false, 0, 0, 0.5, 0},
		{"exactly critical", MMm{Lambda: 6, Mu: 2, M: 3}, false, true, 1, inf, inf, 1},
		{"overloaded", MMm{Lambda: 10, Mu: 1, M: 3}, false, true, 10.0 / 3, inf, inf, 1},
		{"zero servers", MMm{Lambda: 1, Mu: 2, M: 0}, false, true, inf, inf, inf, 1},
		{"zero service rate", MMm{Lambda: 1, Mu: 0, M: 3}, false, true, inf, inf, inf, 1},
		{"all zero", MMm{}, false, false, inf, inf, inf, 0},
		{"negative lambda", MMm{Lambda: -1, Mu: 2, M: 3}, false, false, -1.0 / 6, inf, inf, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.q.Valid(); got != c.valid {
				t.Errorf("Valid=%v, want %v", got, c.valid)
			}
			if got := c.q.Saturated(); got != c.sat {
				t.Errorf("Saturated=%v, want %v", got, c.sat)
			}
			checks := []struct {
				label     string
				got, want float64
			}{
				{"Utilization", c.q.Utilization(), c.rho},
				{"MeanWait", c.q.MeanWait(), c.wq},
				{"MeanResponse", c.q.MeanResponse(), c.w},
				{"ErlangC", c.q.ErlangC(), c.erc},
			}
			for _, ch := range checks {
				if math.IsNaN(ch.got) {
					t.Errorf("%s is NaN; degenerate inputs must map to 0 or +Inf", ch.label)
					continue
				}
				if math.IsInf(ch.want, 1) {
					if !math.IsInf(ch.got, 1) {
						t.Errorf("%s=%v, want +Inf", ch.label, ch.got)
					}
				} else if math.Abs(ch.got-ch.want) > 1e-12 {
					t.Errorf("%s=%v, want %v", ch.label, ch.got, ch.want)
				}
			}
		})
	}
}

func TestPaperSizing(t *testing.T) {
	// The paper's design inputs: six clients at ~1 req/s each (λ≈6/s),
	// replies around 20 KB with service time ≈0.3–0.45 s (μ≈2.2–3.3/s),
	// bound 2 s. Three servers must suffice — that was the experiment's
	// starting configuration.
	m, q, ok := ServersFor(6, 3.0, 2.0, 10)
	if !ok {
		t.Fatal("no sizing found")
	}
	if m != 3 {
		t.Fatalf("ServersFor=%d (%s), want 3 (the paper's initial deployment)", m, q)
	}
	// And the 10 Kbps floor: a 2.5 KB reply in 2 s needs 10 Kbps.
	if bw := MinBandwidth(2.5*8192, 2.0); math.Abs(bw-10240) > 1 {
		t.Fatalf("MinBandwidth=%v, want ~10Kbps", bw)
	}
}

func TestServersForImpossible(t *testing.T) {
	if _, _, ok := ServersFor(100, 0.5, 0.1, 4); ok {
		t.Fatal("bound cannot be met; ok should be false")
	}
}

// Properties: adding a server never hurts; response is always at least the
// service time; utilization in (0,1) for valid systems.
func TestMonotonicityProperties(t *testing.T) {
	f := func(l8, m8 uint8, m int8) bool {
		lambda := 0.1 + float64(l8)/16
		mu := 0.1 + float64(m8)/16
		m1 := int(m%8) + 1
		q1 := MMm{Lambda: lambda, Mu: mu, M: m1}
		q2 := MMm{Lambda: lambda, Mu: mu, M: m1 + 1}
		if !q1.Valid() {
			return true
		}
		if q1.Utilization() <= 0 || q1.Utilization() >= 1 {
			return false
		}
		if q1.MeanResponse() < 1/mu-1e-12 {
			return false
		}
		if q2.Valid() && q2.MeanResponse() > q1.MeanResponse()+1e-9 {
			return false
		}
		c := q1.ErlangC()
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
