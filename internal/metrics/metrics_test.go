package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func series(vals ...float64) *Series {
	s := NewSeries("s")
	for i, v := range vals {
		s.Add(float64(i), v)
	}
	return s
}

func TestSeriesStats(t *testing.T) {
	s := series(1, 2, 3, 4, 5)
	if s.Min() != 1 || s.Max() != 5 || s.Mean() != 3 {
		t.Fatalf("min=%v max=%v mean=%v", s.Min(), s.Max(), s.Mean())
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("p50=%v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("p100=%v", got)
	}
	if got := s.FracAbove(3); got != 0.4 {
		t.Fatalf("fracAbove=%v", got)
	}
	if got := s.FirstAbove(3.5); got != 3 {
		t.Fatalf("firstAbove=%v", got)
	}
	if got := s.LastAbove(3.5); got != 4 {
		t.Fatalf("lastAbove=%v", got)
	}
	if got := s.FirstAbove(100); got != -1 {
		t.Fatalf("firstAbove(100)=%v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("e")
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series stats should be zero")
	}
	if s.FracAbove(1) != 0 || s.FirstAbove(1) != -1 {
		t.Fatal("empty series predicates")
	}
}

func TestFracAboveBetween(t *testing.T) {
	s := series(0, 10, 10, 0, 10) // t = 0..4
	if got := s.FracAboveBetween(5, 1, 4); got != 2.0/3.0 {
		t.Fatalf("got %v", got)
	}
	if got := s.FracAboveBetween(5, 10, 20); got != 0 {
		t.Fatal("empty range should be 0")
	}
}

func TestCSV(t *testing.T) {
	s := series(1.5, 2.5)
	out := s.CSV()
	if !strings.HasPrefix(out, "# s\n") || !strings.Contains(out, "0.0,1.5") {
		t.Fatalf("csv:\n%s", out)
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(10)
	if _, ok := w.Avg(0); ok {
		t.Fatal("empty window should not average")
	}
	w.Add(0, 2)
	w.Add(5, 4)
	if avg, ok := w.Avg(6); !ok || avg != 3 {
		t.Fatalf("avg=%v ok=%v", avg, ok)
	}
	// First sample falls out of the window at t=11.
	if avg, _ := w.Avg(11); avg != 4 {
		t.Fatalf("avg=%v, want 4", avg)
	}
	if _, ok := w.Avg(100); ok {
		t.Fatal("expired window should be empty")
	}
}

func TestASCIIPlot(t *testing.T) {
	s1 := series(0.1, 1, 10, 100)
	s2 := series(100, 10, 1, 0.1)
	s2.Name = "s2"
	out := ASCIIPlot("test", []*Series{s1, s2}, 40, 8, true, 0.1, 100)
	if !strings.Contains(out, "test") || !strings.Contains(out, "*=s") || !strings.Contains(out, "o=s2") {
		t.Fatalf("plot:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
	if empty := ASCIIPlot("none", []*Series{NewSeries("x")}, 40, 8, false, 0, 1); !strings.Contains(empty, "no data") {
		t.Fatal("empty plot should say so")
	}
}

// Property: Percentile is monotone in p, bounded by Min/Max; FracAbove is
// antitone in the threshold.
func TestSeriesProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("p")
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(float64(i), v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
			if v < s.Min()-1e-12 || v > s.Max()+1e-12 {
				return false
			}
		}
		below := math.Nextafter(s.Min(), math.Inf(-1))
		return s.FracAbove(below) == 1 && s.FracAbove(s.Max()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.N() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatalf("empty Dist: N=%d mean=%v min=%v max=%v", d.N(), d.Mean(), d.Min(), d.Max())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := d.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v", p, got)
		}
	}
	if got := PercentileSorted(nil, 50); got != 0 {
		t.Fatalf("PercentileSorted(nil) = %v", got)
	}
}

func TestDistSingleSample(t *testing.T) {
	var d Dist
	d.Add(7.5)
	if d.N() != 1 || d.Mean() != 7.5 || d.Min() != 7.5 || d.Max() != 7.5 {
		t.Fatalf("single Dist: N=%d mean=%v", d.N(), d.Mean())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := d.Percentile(p); got != 7.5 {
			t.Fatalf("single Percentile(%v) = %v", p, got)
		}
	}
}

func TestDistMatchesSeriesPercentile(t *testing.T) {
	vals := []float64{5, 1, 9, 3, 3, 8, 2, 7, 4, 6}
	s := NewSeries("x")
	var d Dist
	for i, v := range vals {
		s.Add(float64(i), v)
		d.Add(v)
	}
	for p := 0.0; p <= 100; p += 5 {
		if sv, dv := s.Percentile(p), d.Percentile(p); sv != dv {
			t.Fatalf("p%v: Series=%v Dist=%v", p, sv, dv)
		}
	}
	// Adding after a (sorting) query keeps later queries correct.
	d.Add(0.5)
	if got := d.Percentile(0); got != 0.5 {
		t.Fatalf("post-sort Add: p0 = %v", got)
	}
}

func TestDistMerge(t *testing.T) {
	var a, b Dist
	a.Add(1)
	a.Add(3)
	b.Add(2)
	a.Merge(&b)
	a.Merge(nil)
	a.Merge(&Dist{})
	if a.N() != 3 || a.Percentile(50) != 2 || b.N() != 1 {
		t.Fatalf("merge: aN=%d p50=%v bN=%d", a.N(), a.Percentile(50), b.N())
	}
}
