// Package metrics provides time-series capture and summary statistics for
// the experiment harness: the series behind Figures 8–13 and the aggregate
// rows recorded in EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a sampled time series.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At returns sample i.
func (s *Series) At(i int) (t, v float64) { return s.T[i], s.V[i] }

// Max returns the maximum value (0 for empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.V {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum value (0 for empty series).
func (s *Series) Min() float64 {
	if len(s.V) == 0 {
		return 0
	}
	m := s.V[0]
	for _, v := range s.V {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the mean value (0 for empty series).
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100).
func (s *Series) Percentile(p float64) float64 {
	sorted := append([]float64(nil), s.V...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted returns the p-th percentile (0 ≤ p ≤ 100) of an
// ascending-sorted sample slice using the nearest-rank method, 0 for an
// empty slice. Shared by Series.Percentile and Dist.Percentile so every
// percentile in the repo means the same thing.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Dist is an order-free sample distribution with lazily sorted percentile
// queries — the summary-statistics core shared by the experiment harness and
// the observability plane's phase-latency histograms. The zero value is an
// empty distribution ready for use.
type Dist struct {
	vs     []float64
	sorted bool
}

// Add appends one sample.
func (d *Dist) Add(v float64) {
	d.vs = append(d.vs, v)
	d.sorted = false
}

// Merge folds all of o's samples into d.
func (d *Dist) Merge(o *Dist) {
	if o == nil || len(o.vs) == 0 {
		return
	}
	d.vs = append(d.vs, o.vs...)
	d.sorted = false
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.vs) }

// Mean returns the sample mean (0 when empty).
func (d *Dist) Mean() float64 {
	if len(d.vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d.vs {
		sum += v
	}
	return sum / float64(len(d.vs))
}

// Min returns the smallest sample (0 when empty).
func (d *Dist) Min() float64 {
	d.sort()
	if len(d.vs) == 0 {
		return 0
	}
	return d.vs[0]
}

// Max returns the largest sample (0 when empty).
func (d *Dist) Max() float64 {
	d.sort()
	if len(d.vs) == 0 {
		return 0
	}
	return d.vs[len(d.vs)-1]
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest rank,
// 0 when empty. Sorting is amortized: samples are sorted in place on the
// first query after an Add.
func (d *Dist) Percentile(p float64) float64 {
	d.sort()
	return PercentileSorted(d.vs, p)
}

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.vs)
		d.sorted = true
	}
}

// FracAbove returns the fraction of samples strictly above threshold.
func (s *Series) FracAbove(threshold float64) float64 {
	if len(s.V) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.V {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.V))
}

// FracAboveBetween is FracAbove restricted to samples with t in [t0, t1).
func (s *Series) FracAboveBetween(threshold, t0, t1 float64) float64 {
	n, total := 0, 0
	for i, v := range s.V {
		if s.T[i] < t0 || s.T[i] >= t1 {
			continue
		}
		total++
		if v > threshold {
			n++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// FirstAbove returns the first time the series exceeds threshold, or -1.
func (s *Series) FirstAbove(threshold float64) float64 {
	for i, v := range s.V {
		if v > threshold {
			return s.T[i]
		}
	}
	return -1
}

// LastAbove returns the last time the series exceeds threshold, or -1.
func (s *Series) LastAbove(threshold float64) float64 {
	for i := len(s.V) - 1; i >= 0; i-- {
		if s.V[i] > threshold {
			return s.T[i]
		}
	}
	return -1
}

// CSV renders "t,v" lines.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for i := range s.T {
		fmt.Fprintf(&b, "%.1f,%.6g\n", s.T[i], s.V[i])
	}
	return b.String()
}

// Window is a sliding-window average over (time, value) samples — the same
// computation the latency gauge performs, reused by the harness for
// ground-truth series.
type Window struct {
	Width   float64
	samples []struct{ t, v float64 }
}

// NewWindow creates a window of the given width in seconds.
func NewWindow(width float64) *Window { return &Window{Width: width} }

// Add appends a sample.
func (w *Window) Add(t, v float64) {
	w.samples = append(w.samples, struct{ t, v float64 }{t, v})
}

// Avg returns the average of samples within [now-Width, now]; ok is false
// when the window is empty.
func (w *Window) Avg(now float64) (avg float64, ok bool) {
	cutoff := now - w.Width
	kept := w.samples[:0]
	for _, s := range w.samples {
		if s.t >= cutoff {
			kept = append(kept, s)
		}
	}
	w.samples = kept
	if len(w.samples) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, s := range w.samples {
		sum += s.v
	}
	return sum / float64(len(w.samples)), true
}

// ASCIIPlot renders a crude log-scale plot of several series, one glyph per
// series — enough to eyeball the Figures 8–13 shapes in a terminal.
func ASCIIPlot(title string, series []*Series, width, height int, logScale bool, yMin, yMax float64) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	glyphs := "*o+x#@%&"
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	tMin, tMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		if s.T[0] < tMin {
			tMin = s.T[0]
		}
		if s.T[s.Len()-1] > tMax {
			tMax = s.T[s.Len()-1]
		}
	}
	if math.IsInf(tMin, 1) {
		return title + ": (no data)\n"
	}
	yval := func(v float64) float64 {
		if logScale {
			if v < yMin {
				v = yMin
			}
			return math.Log10(v)
		}
		return v
	}
	lo, hi := yval(yMin), yval(yMax)
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.T {
			x := int(float64(width-1) * (s.T[i] - tMin) / math.Max(tMax-tMin, 1e-9))
			yv := yval(s.V[i])
			if yv < lo {
				yv = lo
			}
			if yv > hi {
				yv = hi
			}
			y := height - 1 - int(float64(height-1)*(yv-lo)/math.Max(hi-lo, 1e-9))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %.4g .. %.4g%s, x: %.0fs .. %.0fs]\n", title, yMin, yMax,
		map[bool]string{true: " log", false: ""}[logScale], tMin, tMax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	b.WriteString("  " + strings.Join(legend, "  ") + "\n")
	return b.String()
}
