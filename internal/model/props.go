package model

import (
	"fmt"
	"sort"
)

// Props is an ordered-by-name property list attached to every architecture
// element. Property values are dynamically typed: float64, int, bool, string,
// or []string. The paper annotates elements with performance attributes
// (delay, bandwidth, load) and threshold parameters (maxLatency,
// maxServerLoad, minBandwidth); gauges write the former, the task layer the
// latter.
type Props struct {
	m map[string]any
}

// NewProps returns an empty property list.
func NewProps() Props { return Props{m: map[string]any{}} }

// Set stores a property value. Ints are normalized to float64 so numeric
// comparisons in the constraint language have one numeric type.
func (p *Props) Set(name string, v any) {
	if p.m == nil {
		p.m = map[string]any{}
	}
	switch x := v.(type) {
	case int:
		p.m[name] = float64(x)
	case int64:
		p.m[name] = float64(x)
	case float32:
		p.m[name] = float64(x)
	case float64, bool, string, []string:
		p.m[name] = v
	default:
		panic(fmt.Sprintf("model: unsupported property type %T for %q", v, name))
	}
}

// Get returns the raw value.
func (p *Props) Get(name string) (any, bool) {
	v, ok := p.m[name]
	return v, ok
}

// Has reports whether the property exists.
func (p *Props) Has(name string) bool { _, ok := p.m[name]; return ok }

// Delete removes a property.
func (p *Props) Delete(name string) { delete(p.m, name) }

// Float returns a numeric property.
func (p *Props) Float(name string) (float64, bool) {
	v, ok := p.m[name]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

// FloatOr returns a numeric property or def when absent.
func (p *Props) FloatOr(name string, def float64) float64 {
	if f, ok := p.Float(name); ok {
		return f
	}
	return def
}

// Bool returns a boolean property.
func (p *Props) Bool(name string) (bool, bool) {
	v, ok := p.m[name]
	if !ok {
		return false, false
	}
	b, ok := v.(bool)
	return b, ok
}

// BoolOr returns a boolean property or def when absent.
func (p *Props) BoolOr(name string, def bool) bool {
	if b, ok := p.Bool(name); ok {
		return b
	}
	return def
}

// Str returns a string property.
func (p *Props) Str(name string) (string, bool) {
	v, ok := p.m[name]
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// StrOr returns a string property or def when absent.
func (p *Props) StrOr(name, def string) string {
	if s, ok := p.Str(name); ok {
		return s
	}
	return def
}

// Names returns the property names sorted, for deterministic iteration and
// printing.
func (p *Props) Names() []string {
	out := make([]string, 0, len(p.m))
	for k := range p.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of properties.
func (p *Props) Len() int { return len(p.m) }

// clone deep-copies the property list.
func (p *Props) clone() Props {
	c := NewProps()
	for k, v := range p.m {
		if ss, ok := v.([]string); ok {
			c.m[k] = append([]string(nil), ss...)
			continue
		}
		c.m[k] = v
	}
	return c
}
