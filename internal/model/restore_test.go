package model

import "testing"

func TestRestoreComponentRoundTrip(t *testing.T) {
	s := paperSystem()
	c := s.Component("ServerGrp2")
	// Detach nothing needed: ServerGrp2 has no attachments in paperSystem.
	if err := s.RemoveComponent("ServerGrp2"); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreComponent(c); err != nil {
		t.Fatal(err)
	}
	got := s.Component("ServerGrp2")
	if got != c {
		t.Fatal("restore must re-insert the same pointer")
	}
	if got.Rep == nil || len(got.Rep.Components()) != 3 {
		t.Fatal("representation lost across remove/restore")
	}
	if got.System() != s {
		t.Fatal("parent not relinked")
	}
	// Restoring again must fail (duplicate).
	if err := s.RestoreComponent(c); err == nil {
		t.Fatal("duplicate restore should fail")
	}
	if err := s.RestoreComponent(nil); err == nil {
		t.Fatal("nil restore should fail")
	}
}

func TestRestoreConnectorAndRole(t *testing.T) {
	s := paperSystem()
	conn := s.Connector("ReqConn1")
	role := conn.Role("client1")
	if err := s.Detach(s.Component("User1").Port("request"), role); err != nil {
		t.Fatal(err)
	}
	if err := conn.RemoveRole("client1"); err != nil {
		t.Fatal(err)
	}
	if err := conn.RestoreRole(role); err != nil {
		t.Fatal(err)
	}
	if conn.Role("client1") != role {
		t.Fatal("role pointer lost")
	}
	if err := conn.RestoreRole(role); err == nil {
		t.Fatal("duplicate role restore should fail")
	}

	// Whole connector: detach everything first.
	for _, a := range s.AttachmentsOfRole(conn.Role("server")) {
		_ = s.Detach(a.Port, a.Role)
	}
	for i := 2; i <= 6; i++ {
		r := conn.Role("client" + string(rune('0'+i)))
		for _, a := range s.AttachmentsOfRole(r) {
			_ = s.Detach(a.Port, a.Role)
		}
	}
	if err := s.RemoveConnector("ReqConn1"); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreConnector(conn); err != nil {
		t.Fatal(err)
	}
	if s.Connector("ReqConn1") != conn {
		t.Fatal("connector pointer lost")
	}
}

func TestRestorePort(t *testing.T) {
	s := paperSystem()
	c := s.Component("ServerGrp2")
	p := c.Port("provide")
	if err := c.RemovePort("provide"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestorePort(p); err != nil {
		t.Fatal(err)
	}
	if c.Port("provide") != p {
		t.Fatal("port pointer lost")
	}
	if err := c.RestorePort(p); err == nil {
		t.Fatal("duplicate port restore should fail")
	}
}

func TestRemovePortGuardedByAttachment(t *testing.T) {
	s := paperSystem()
	c := s.Component("User1")
	if err := c.RemovePort("request"); err == nil {
		t.Fatal("attached port removal should fail")
	}
	conn := s.Connector("ReqConn1")
	_ = s.Detach(c.Port("request"), conn.Role("client1"))
	if err := c.RemovePort("request"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemovePort("request"); err == nil {
		t.Fatal("double removal should fail")
	}
}
