// Package model implements the runtime software-architecture model at the
// heart of the paper: a graph of typed components and connectors annotated
// with property lists, the representation scheme shared by Acme, xADL and
// SADL (§2).
//
// Components expose Ports; connectors expose Roles; an Attachment binds a
// port to a role. A component may carry a Representation — a nested
// sub-architecture (the paper's ServerGrpRep holding the replicated servers)
// — together with Bindings that map inner ports to outer ports.
//
// The model is a plain data structure mutated only from kernel context; the
// repair package layers transactional undo on top of the mutation methods
// here.
package model

import (
	"fmt"
	"sort"
)

// Kind discriminates element categories.
type Kind int

// Element kinds.
const (
	KindComponent Kind = iota
	KindConnector
	KindPort
	KindRole
	KindSystem
)

func (k Kind) String() string {
	switch k {
	case KindComponent:
		return "component"
	case KindConnector:
		return "connector"
	case KindPort:
		return "port"
	case KindRole:
		return "role"
	case KindSystem:
		return "system"
	}
	return "unknown"
}

// Element is the interface shared by all architecture elements.
type Element interface {
	Name() string
	Kind() Kind
	Type() string
	Props() *Props
}

// elem carries the common fields of every element.
type elem struct {
	name  string
	typ   string
	props Props
}

func (e *elem) Name() string  { return e.name }
func (e *elem) Type() string  { return e.typ }
func (e *elem) Props() *Props { return &e.props }

// Port is a component's point of interaction.
type Port struct {
	elem
	Owner *Component
}

// Kind implements Element.
func (p *Port) Kind() Kind { return KindPort }

// QName returns "component.port".
func (p *Port) QName() string { return p.Owner.Name() + "." + p.Name() }

// Role is a connector's point of attachment.
type Role struct {
	elem
	Owner *Connector
}

// Kind implements Element.
func (r *Role) Kind() Kind { return KindRole }

// QName returns "connector.role".
func (r *Role) QName() string { return r.Owner.Name() + "." + r.Name() }

// Component is a principal computational element or data store.
type Component struct {
	elem
	ports  []*Port
	Rep    *System // optional representation (nested sub-architecture)
	parent *System
}

// Kind implements Element.
func (c *Component) Kind() Kind { return KindComponent }

// System returns the system that owns this component.
func (c *Component) System() *System { return c.parent }

// Ports returns the component's ports in declaration order.
func (c *Component) Ports() []*Port { return c.ports }

// Port returns the named port, or nil.
func (c *Component) Port(name string) *Port {
	for _, p := range c.ports {
		if p.name == name {
			return p
		}
	}
	return nil
}

// AddPort declares a new port of the given type.
func (c *Component) AddPort(name, typ string) *Port {
	if c.Port(name) != nil {
		panic(fmt.Sprintf("model: duplicate port %s.%s", c.name, name))
	}
	p := &Port{elem: elem{name: name, typ: typ, props: NewProps()}, Owner: c}
	c.ports = append(c.ports, p)
	return p
}

// RemovePort deletes a port; attachments referencing it must be removed
// first.
func (c *Component) RemovePort(name string) error {
	for i, p := range c.ports {
		if p.name == name {
			if c.parent != nil && len(c.parent.AttachmentsOfPort(p)) > 0 {
				return fmt.Errorf("model: port %s still attached", p.QName())
			}
			c.ports = append(c.ports[:i], c.ports[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("model: no port %s.%s", c.name, name)
}

// EnsureRep returns the component's representation, creating an empty one if
// needed.
func (c *Component) EnsureRep() *System {
	if c.Rep == nil {
		c.Rep = NewSystem(c.name+"Rep", "")
	}
	return c.Rep
}

// Connector is a pathway of interaction between components.
type Connector struct {
	elem
	roles  []*Role
	parent *System
}

// Kind implements Element.
func (c *Connector) Kind() Kind { return KindConnector }

// System returns the owning system.
func (c *Connector) System() *System { return c.parent }

// Roles returns the connector's roles in declaration order.
func (c *Connector) Roles() []*Role { return c.roles }

// Role returns the named role, or nil.
func (c *Connector) Role(name string) *Role {
	for _, r := range c.roles {
		if r.name == name {
			return r
		}
	}
	return nil
}

// AddRole declares a new role of the given type.
func (c *Connector) AddRole(name, typ string) *Role {
	if c.Role(name) != nil {
		panic(fmt.Sprintf("model: duplicate role %s.%s", c.name, name))
	}
	r := &Role{elem: elem{name: name, typ: typ, props: NewProps()}, Owner: c}
	c.roles = append(c.roles, r)
	return r
}

// RemoveRole deletes a role; attachments referencing it must be removed
// first.
func (c *Connector) RemoveRole(name string) error {
	for i, r := range c.roles {
		if r.name == name {
			if c.parent != nil && len(c.parent.AttachmentsOfRole(r)) > 0 {
				return fmt.Errorf("model: role %s still attached", r.QName())
			}
			c.roles = append(c.roles[:i], c.roles[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("model: no role %s.%s", c.name, name)
}

// Attachment binds a component port to a connector role.
type Attachment struct {
	Port *Port
	Role *Role
}

// Binding maps a port of an inner (representation) component to a port of
// the outer component.
type Binding struct {
	Inner *Port
	Outer *Port
}

// System is an architecture graph: components, connectors, attachments.
// A System may also serve as a component representation.
type System struct {
	elem
	components []*Component
	connectors []*Connector
	atts       []Attachment
	bindings   []Binding
}

// NewSystem creates an empty system with the given name and style (type).
func NewSystem(name, style string) *System {
	return &System{elem: elem{name: name, typ: style, props: NewProps()}}
}

// Kind implements Element.
func (s *System) Kind() Kind { return KindSystem }

// Components returns the components in declaration order.
func (s *System) Components() []*Component { return s.components }

// Connectors returns the connectors in declaration order.
func (s *System) Connectors() []*Connector { return s.connectors }

// Attachments returns all attachments.
func (s *System) Attachments() []Attachment { return s.atts }

// Bindings returns all representation bindings.
func (s *System) Bindings() []Binding { return s.bindings }

// Component returns the named component, or nil.
func (s *System) Component(name string) *Component {
	for _, c := range s.components {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Connector returns the named connector, or nil.
func (s *System) Connector(name string) *Connector {
	for _, c := range s.connectors {
		if c.name == name {
			return c
		}
	}
	return nil
}

// AddComponent creates a component of the given type.
func (s *System) AddComponent(name, typ string) *Component {
	if s.Component(name) != nil {
		panic(fmt.Sprintf("model: duplicate component %q", name))
	}
	c := &Component{elem: elem{name: name, typ: typ, props: NewProps()}, parent: s}
	s.components = append(s.components, c)
	return c
}

// AddConnector creates a connector of the given type.
func (s *System) AddConnector(name, typ string) *Connector {
	if s.Connector(name) != nil {
		panic(fmt.Sprintf("model: duplicate connector %q", name))
	}
	c := &Connector{elem: elem{name: name, typ: typ, props: NewProps()}, parent: s}
	s.connectors = append(s.connectors, c)
	return c
}

// RemoveComponent deletes a component and fails if it still has attachments.
func (s *System) RemoveComponent(name string) error {
	for i, c := range s.components {
		if c.name != name {
			continue
		}
		for _, p := range c.ports {
			if len(s.AttachmentsOfPort(p)) > 0 {
				return fmt.Errorf("model: component %q still attached via %s", name, p.QName())
			}
		}
		s.components = append(s.components[:i], s.components[i+1:]...)
		return nil
	}
	return fmt.Errorf("model: no component %q", name)
}

// RemoveConnector deletes a connector and fails if it still has attachments.
func (s *System) RemoveConnector(name string) error {
	for i, c := range s.connectors {
		if c.name != name {
			continue
		}
		for _, r := range c.roles {
			if len(s.AttachmentsOfRole(r)) > 0 {
				return fmt.Errorf("model: connector %q still attached via %s", name, r.QName())
			}
		}
		s.connectors = append(s.connectors[:i], s.connectors[i+1:]...)
		return nil
	}
	return fmt.Errorf("model: no connector %q", name)
}

// Attach binds port to role. Both must belong to this system, and a role can
// hold at most one attachment (a port may attach to several roles).
func (s *System) Attach(p *Port, r *Role) error {
	if p == nil || r == nil {
		return fmt.Errorf("model: attach with nil endpoint")
	}
	if p.Owner.parent != s || r.Owner.parent != s {
		return fmt.Errorf("model: attach across systems (%s -> %s)", p.QName(), r.QName())
	}
	for _, a := range s.atts {
		if a.Role == r {
			return fmt.Errorf("model: role %s already attached", r.QName())
		}
		if a.Port == p && a.Role == r {
			return fmt.Errorf("model: duplicate attachment %s -> %s", p.QName(), r.QName())
		}
	}
	s.atts = append(s.atts, Attachment{Port: p, Role: r})
	return nil
}

// Detach removes the attachment between p and r.
func (s *System) Detach(p *Port, r *Role) error {
	for i, a := range s.atts {
		if a.Port == p && a.Role == r {
			s.atts = append(s.atts[:i], s.atts[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("model: no attachment %s -> %s", p.QName(), r.QName())
}

// Bind records a representation binding inner↔outer.
func (s *System) Bind(inner, outer *Port) {
	s.bindings = append(s.bindings, Binding{Inner: inner, Outer: outer})
}

// Unbind removes a binding.
func (s *System) Unbind(inner *Port) error {
	for i, b := range s.bindings {
		if b.Inner == inner {
			s.bindings = append(s.bindings[:i], s.bindings[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("model: no binding for %s", inner.QName())
}

// AttachmentsOfPort returns attachments involving p.
func (s *System) AttachmentsOfPort(p *Port) []Attachment {
	var out []Attachment
	for _, a := range s.atts {
		if a.Port == p {
			out = append(out, a)
		}
	}
	return out
}

// PortAttachment returns the first attachment involving p and how many
// there are — the allocation-free form for per-report model lookups, where
// the style guarantees exactly one attachment per client request port.
func (s *System) PortAttachment(p *Port) (Attachment, int) {
	var first Attachment
	n := 0
	for _, a := range s.atts {
		if a.Port == p {
			if n == 0 {
				first = a
			}
			n++
		}
	}
	return first, n
}

// AttachmentsOfRole returns attachments involving r.
func (s *System) AttachmentsOfRole(r *Role) []Attachment {
	var out []Attachment
	for _, a := range s.atts {
		if a.Role == r {
			out = append(out, a)
		}
	}
	return out
}

// Attached reports whether port p is attached to role r — the paper's
// attached(role, port) predicate (Fig. 5 line 8).
func (s *System) Attached(p *Port, r *Role) bool {
	for _, a := range s.atts {
		if a.Port == p && a.Role == r {
			return true
		}
	}
	return false
}

// Connected reports whether two components share a connector — the paper's
// connected(sgrp, client) predicate (Fig. 5 line 20).
func (s *System) Connected(a, b *Component) bool {
	for _, conn := range s.ConnectorsOf(a) {
		for _, other := range s.ComponentsOn(conn) {
			if other == b {
				return true
			}
		}
	}
	return false
}

// ConnectorsOf returns the connectors some port of c attaches to.
func (s *System) ConnectorsOf(c *Component) []*Connector {
	seen := map[*Connector]bool{}
	var out []*Connector
	for _, a := range s.atts {
		if a.Port.Owner == c && !seen[a.Role.Owner] {
			seen[a.Role.Owner] = true
			out = append(out, a.Role.Owner)
		}
	}
	return out
}

// ComponentsOn returns the components attached to connector conn.
func (s *System) ComponentsOn(conn *Connector) []*Component {
	seen := map[*Component]bool{}
	var out []*Component
	for _, a := range s.atts {
		if a.Role.Owner == conn && !seen[a.Port.Owner] {
			seen[a.Port.Owner] = true
			out = append(out, a.Port.Owner)
		}
	}
	return out
}

// ComponentsByType returns components whose type equals typ, sorted by name
// for deterministic iteration in repair scripts.
func (s *System) ComponentsByType(typ string) []*Component {
	var out []*Component
	for _, c := range s.components {
		if c.typ == typ {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Validate checks structural integrity: attachment endpoints belong to this
// system, no dangling references, representation bindings are well-formed.
func (s *System) Validate() error {
	inComps := map[*Component]bool{}
	for _, c := range s.components {
		inComps[c] = true
	}
	inConns := map[*Connector]bool{}
	for _, c := range s.connectors {
		inConns[c] = true
	}
	for _, a := range s.atts {
		if a.Port == nil || a.Role == nil {
			return fmt.Errorf("model: attachment with nil endpoint in %q", s.name)
		}
		if !inComps[a.Port.Owner] {
			return fmt.Errorf("model: attachment port %s not in system %q", a.Port.QName(), s.name)
		}
		if !inConns[a.Role.Owner] {
			return fmt.Errorf("model: attachment role %s not in system %q", a.Role.QName(), s.name)
		}
	}
	roleSeen := map[*Role]bool{}
	for _, a := range s.atts {
		if roleSeen[a.Role] {
			return fmt.Errorf("model: role %s multiply attached", a.Role.QName())
		}
		roleSeen[a.Role] = true
	}
	for _, c := range s.components {
		if c.Rep != nil {
			if err := c.Rep.Validate(); err != nil {
				return fmt.Errorf("model: rep of %q: %w", c.name, err)
			}
		}
	}
	return nil
}
