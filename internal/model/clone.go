package model

// Clone deep-copies the system: elements, properties, attachments, bindings,
// and nested representations. The copy shares nothing with the original, so
// repair tactics can run what-if analyses (and tests can diff before/after
// states) without touching the live model.
func (s *System) Clone() *System {
	c := NewSystem(s.name, s.typ)
	c.props = s.props.clone()

	portMap := map[*Port]*Port{}
	roleMap := map[*Role]*Role{}

	for _, comp := range s.components {
		nc := c.AddComponent(comp.name, comp.typ)
		nc.props = comp.props.clone()
		for _, p := range comp.ports {
			np := nc.AddPort(p.name, p.typ)
			np.props = p.props.clone()
			portMap[p] = np
		}
		if comp.Rep != nil {
			nc.Rep = comp.Rep.Clone()
		}
	}
	for _, conn := range s.connectors {
		ncn := c.AddConnector(conn.name, conn.typ)
		ncn.props = conn.props.clone()
		for _, r := range conn.roles {
			nr := ncn.AddRole(r.name, r.typ)
			nr.props = r.props.clone()
			roleMap[r] = nr
		}
	}
	for _, a := range s.atts {
		if err := c.Attach(portMap[a.Port], roleMap[a.Role]); err != nil {
			panic("model: clone attach: " + err.Error())
		}
	}
	for _, b := range s.bindings {
		// Bindings can cross the representation boundary; only same-level
		// bindings are cloned here. Representation-internal ports live in the
		// cloned Rep and are re-linked by name.
		inner, outer := portMap[b.Inner], portMap[b.Outer]
		if inner != nil && outer != nil {
			c.Bind(inner, outer)
		}
	}
	return c
}

// Equal reports whether two systems are structurally identical: same element
// names/types/properties (by value), same attachments and bindings by
// qualified name. Element declaration order is ignored — architectures are
// graphs, and transactional rollback may restore elements in a different
// slice order. Useful for clone tests and for verifying rollback restores
// the model exactly.
func (s *System) Equal(o *System) bool {
	if s.name != o.name || s.typ != o.typ || !propsEqual(&s.props, &o.props) {
		return false
	}
	if len(s.components) != len(o.components) || len(s.connectors) != len(o.connectors) ||
		len(s.atts) != len(o.atts) || len(s.bindings) != len(o.bindings) {
		return false
	}
	for _, c := range s.components {
		oc := o.Component(c.name)
		if oc == nil || c.typ != oc.typ || !propsEqual(&c.props, &oc.props) {
			return false
		}
		if len(c.ports) != len(oc.ports) {
			return false
		}
		for _, p := range c.ports {
			op := oc.Port(p.name)
			if op == nil || p.typ != op.typ || !propsEqual(&p.props, &op.props) {
				return false
			}
		}
		switch {
		case c.Rep == nil && oc.Rep == nil:
		case c.Rep != nil && oc.Rep != nil:
			if !c.Rep.Equal(oc.Rep) {
				return false
			}
		default:
			return false
		}
	}
	for _, c := range s.connectors {
		oc := o.Connector(c.name)
		if oc == nil || c.typ != oc.typ || !propsEqual(&c.props, &oc.props) {
			return false
		}
		if len(c.roles) != len(oc.roles) {
			return false
		}
		for _, r := range c.roles {
			or := oc.Role(r.name)
			if or == nil || r.typ != or.typ || !propsEqual(&r.props, &or.props) {
				return false
			}
		}
	}
	attKey := func(a Attachment) string { return a.Port.QName() + "->" + a.Role.QName() }
	have := map[string]int{}
	for _, a := range s.atts {
		have[attKey(a)]++
	}
	for _, a := range o.atts {
		have[attKey(a)]--
	}
	for _, v := range have {
		if v != 0 {
			return false
		}
	}
	return true
}

func propsEqual(a, b *Props) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, k := range a.Names() {
		av, _ := a.Get(k)
		bv, ok := b.Get(k)
		if !ok {
			return false
		}
		as, aIsSlice := av.([]string)
		bs, bIsSlice := bv.([]string)
		if aIsSlice != bIsSlice {
			return false
		}
		if aIsSlice {
			if len(as) != len(bs) {
				return false
			}
			for i := range as {
				if as[i] != bs[i] {
					return false
				}
			}
			continue
		}
		if av != bv {
			return false
		}
	}
	return true
}
