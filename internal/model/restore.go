package model

import "fmt"

// The Restore* methods re-insert a previously removed element pointer, with
// all its ports/roles/properties intact. They exist for transactional undo in
// the repair layer: Remove followed by Restore of the same pointer is an
// exact inverse.

// RestoreComponent re-adds a component removed from this system.
func (s *System) RestoreComponent(c *Component) error {
	if c == nil {
		return fmt.Errorf("model: restore nil component")
	}
	if s.Component(c.name) != nil {
		return fmt.Errorf("model: restore: component %q already present", c.name)
	}
	c.parent = s
	s.components = append(s.components, c)
	return nil
}

// RestoreConnector re-adds a connector removed from this system.
func (s *System) RestoreConnector(c *Connector) error {
	if c == nil {
		return fmt.Errorf("model: restore nil connector")
	}
	if s.Connector(c.name) != nil {
		return fmt.Errorf("model: restore: connector %q already present", c.name)
	}
	c.parent = s
	s.connectors = append(s.connectors, c)
	return nil
}

// RestoreRole re-adds a role removed from this connector.
func (c *Connector) RestoreRole(r *Role) error {
	if r == nil {
		return fmt.Errorf("model: restore nil role")
	}
	if c.Role(r.name) != nil {
		return fmt.Errorf("model: restore: role %s.%s already present", c.name, r.name)
	}
	r.Owner = c
	c.roles = append(c.roles, r)
	return nil
}

// RestorePort re-adds a port removed from this component.
func (c *Component) RestorePort(p *Port) error {
	if p == nil {
		return fmt.Errorf("model: restore nil port")
	}
	if c.Port(p.name) != nil {
		return fmt.Errorf("model: restore: port %s.%s already present", c.name, p.name)
	}
	p.Owner = c
	c.ports = append(c.ports, p)
	return nil
}
