package model

import (
	"strings"
	"testing"
	"testing/quick"

	"archadapt/internal/sim"
)

// paperSystem builds the Figure 2 architecture: clients, server groups with
// replicated-server representations, and request connectors.
func paperSystem() *System {
	s := NewSystem("storage", "ClientServerFam")
	for _, g := range []string{"ServerGrp1", "ServerGrp2"} {
		grp := s.AddComponent(g, "ServerGroupT")
		grp.AddPort("provide", "ProvideT")
		rep := grp.EnsureRep()
		for i := 1; i <= 3; i++ {
			srv := rep.AddComponent(g+"Srv"+string(rune('0'+i)), "ServerT")
			srv.AddPort("work", "WorkT")
		}
	}
	for i := 1; i <= 6; i++ {
		cli := s.AddComponent("User"+string(rune('0'+i)), "ClientT")
		cli.AddPort("request", "RequestT")
	}
	conn := s.AddConnector("ReqConn1", "ReqConnT")
	conn.AddRole("server", "ServerRoleT")
	_ = s.Attach(s.Component("ServerGrp1").Port("provide"), conn.Role("server"))
	for i := 1; i <= 6; i++ {
		r := conn.AddRole("client"+string(rune('0'+i)), "ClientRoleT")
		_ = s.Attach(s.Component("User"+string(rune('0'+i))).Port("request"), r)
	}
	return s
}

func TestBuildPaperSystem(t *testing.T) {
	s := paperSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Components()); got != 8 {
		t.Fatalf("components=%d, want 8", got)
	}
	if got := len(s.ComponentsByType("ClientT")); got != 6 {
		t.Fatalf("clients=%d, want 6", got)
	}
	grp := s.Component("ServerGrp1")
	if grp.Rep == nil || len(grp.Rep.Components()) != 3 {
		t.Fatal("ServerGrp1 representation should hold 3 servers")
	}
}

func TestConnectedPredicate(t *testing.T) {
	s := paperSystem()
	u1 := s.Component("User1")
	g1 := s.Component("ServerGrp1")
	g2 := s.Component("ServerGrp2")
	if !s.Connected(u1, g1) {
		t.Fatal("User1 should be connected to ServerGrp1")
	}
	if s.Connected(u1, g2) {
		t.Fatal("User1 should not be connected to ServerGrp2")
	}
	if !s.Connected(g1, u1) {
		t.Fatal("connected should be symmetric")
	}
}

func TestAttachedPredicate(t *testing.T) {
	s := paperSystem()
	conn := s.Connector("ReqConn1")
	p := s.Component("User1").Port("request")
	if !s.Attached(p, conn.Role("client1")) {
		t.Fatal("want attached")
	}
	if s.Attached(p, conn.Role("client2")) {
		t.Fatal("wrong role reported attached")
	}
}

func TestAttachRules(t *testing.T) {
	s := NewSystem("s", "")
	c := s.AddComponent("c", "T")
	p := c.AddPort("p", "PT")
	conn := s.AddConnector("x", "XT")
	r := conn.AddRole("r", "RT")
	if err := s.Attach(p, r); err != nil {
		t.Fatal(err)
	}
	// A role holds at most one attachment.
	c2 := s.AddComponent("c2", "T")
	p2 := c2.AddPort("p", "PT")
	if err := s.Attach(p2, r); err == nil {
		t.Fatal("attaching second port to same role should fail")
	}
	// Cross-system attach fails.
	s2 := NewSystem("s2", "")
	cc := s2.AddComponent("cc", "T")
	pp := cc.AddPort("p", "PT")
	if err := s.Attach(pp, r); err == nil {
		t.Fatal("cross-system attach should fail")
	}
}

func TestRemoveComponentGuards(t *testing.T) {
	s := paperSystem()
	if err := s.RemoveComponent("User1"); err == nil {
		t.Fatal("removing attached component should fail")
	}
	conn := s.Connector("ReqConn1")
	if err := s.Detach(s.Component("User1").Port("request"), conn.Role("client1")); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveComponent("User1"); err != nil {
		t.Fatal(err)
	}
	if s.Component("User1") != nil {
		t.Fatal("component still present")
	}
	if err := s.RemoveComponent("User1"); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestDetachUnknown(t *testing.T) {
	s := paperSystem()
	conn := s.Connector("ReqConn1")
	err := s.Detach(s.Component("User1").Port("request"), conn.Role("client2"))
	if err == nil || !strings.Contains(err.Error(), "no attachment") {
		t.Fatalf("err=%v", err)
	}
}

func TestPropsTypes(t *testing.T) {
	p := NewProps()
	p.Set("f", 1.5)
	p.Set("i", 42) // normalized to float64
	p.Set("b", true)
	p.Set("s", "hello")
	p.Set("ss", []string{"a", "b"})
	if f, ok := p.Float("f"); !ok || f != 1.5 {
		t.Fatal("float")
	}
	if f, ok := p.Float("i"); !ok || f != 42 {
		t.Fatal("int should read back as float")
	}
	if b, ok := p.Bool("b"); !ok || !b {
		t.Fatal("bool")
	}
	if s, ok := p.Str("s"); !ok || s != "hello" {
		t.Fatal("str")
	}
	if _, ok := p.Float("s"); ok {
		t.Fatal("type confusion")
	}
	if p.FloatOr("absent", 9) != 9 {
		t.Fatal("FloatOr default")
	}
	names := p.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestPropsUnsupportedTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	p := NewProps()
	p.Set("x", struct{}{})
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	s := paperSystem()
	s.Component("User1").Props().Set("averageLatency", 1.25)
	s.Props().Set("maxLatency", 2.0)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	// Mutating the clone must not touch the original.
	c.Component("User1").Props().Set("averageLatency", 99.0)
	c.AddComponent("extra", "ClientT")
	if v, _ := s.Component("User1").Props().Float("averageLatency"); v != 1.25 {
		t.Fatal("clone mutation leaked into original")
	}
	if s.Component("extra") != nil {
		t.Fatal("clone component leaked")
	}
	if s.Equal(c) {
		t.Fatal("Equal failed to detect divergence")
	}
}

func TestCloneRepDeep(t *testing.T) {
	s := paperSystem()
	c := s.Clone()
	rep := c.Component("ServerGrp1").Rep
	rep.AddComponent("newServer", "ServerT")
	if len(s.Component("ServerGrp1").Rep.Components()) != 3 {
		t.Fatal("rep mutation leaked")
	}
}

func TestValidateCatchesForeignAttachment(t *testing.T) {
	s := paperSystem()
	// Forge an attachment to a component from a different system.
	other := NewSystem("other", "")
	oc := other.AddComponent("x", "T")
	op := oc.AddPort("p", "PT")
	s.atts = append(s.atts, Attachment{Port: op, Role: s.Connector("ReqConn1").Role("server")})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject foreign port")
	}
}

func TestComponentsOnAndConnectorsOf(t *testing.T) {
	s := paperSystem()
	conn := s.Connector("ReqConn1")
	comps := s.ComponentsOn(conn)
	if len(comps) != 7 { // 6 users + ServerGrp1
		t.Fatalf("componentsOn=%d, want 7", len(comps))
	}
	conns := s.ConnectorsOf(s.Component("User3"))
	if len(conns) != 1 || conns[0] != conn {
		t.Fatalf("connectorsOf wrong: %v", conns)
	}
}

// Property: clone is always Equal and structurally valid for randomly grown
// systems; mutating the clone never affects the original's element counts.
func TestCloneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		s := NewSystem("rand", "Fam")
		nc := 1 + rng.Intn(6)
		for i := 0; i < nc; i++ {
			c := s.AddComponent("comp"+string(rune('a'+i)), "T")
			for j := 0; j < rng.Intn(3); j++ {
				c.AddPort("p"+string(rune('0'+j)), "PT")
			}
			if rng.Float64() < 0.3 {
				rep := c.EnsureRep()
				rep.AddComponent("inner", "IT")
			}
			c.Props().Set("load", rng.Float64()*10)
		}
		for i := 0; i < rng.Intn(3); i++ {
			conn := s.AddConnector("conn"+string(rune('0'+i)), "CT")
			for j := 0; j < 1+rng.Intn(3); j++ {
				conn.AddRole("r"+string(rune('0'+j)), "RT")
			}
		}
		// Random valid attachments.
		for _, conn := range s.Connectors() {
			for _, r := range conn.Roles() {
				comp := s.Components()[rng.Intn(len(s.Components()))]
				if len(comp.Ports()) == 0 {
					continue
				}
				p := comp.Ports()[rng.Intn(len(comp.Ports()))]
				_ = s.Attach(p, r) // may fail if role already used; fine
			}
		}
		if s.Validate() != nil {
			return false
		}
		c := s.Clone()
		if !s.Equal(c) || c.Validate() != nil {
			return false
		}
		before := len(s.Components())
		c.AddComponent("zzz", "T")
		return len(s.Components()) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
