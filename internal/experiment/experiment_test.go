package experiment

import (
	"strings"
	"testing"

	"archadapt/internal/core"
	"archadapt/internal/netsim"
	"archadapt/internal/repair"
	"archadapt/internal/workload"
)

// The integration tests run the full 30-minute experiment (a fraction of a
// second of wall time) and assert the paper's qualitative claims.

func controlRun(t *testing.T) *Results {
	t.Helper()
	return Run(Options{Adaptive: false, Seed: 1})
}

func adaptiveRun(t *testing.T) *Results {
	t.Helper()
	return Run(Options{Adaptive: true, Seed: 1})
}

func TestTestbedTopology(t *testing.T) {
	tb := NewTestbed(1)
	if got := tb.Net.NumNodes(); got != 16 { // 5 routers + 11 host machines
		t.Fatalf("nodes=%d, want 16", got)
	}
	// C3 reaches SG1 servers over the contested R2-R3 link (3 hops) and SG2
	// over R3-R4 (3 hops); C1 reaches SG1 without touching either.
	if h := tb.Net.PathHops(tb.Hosts["mC3"], tb.Hosts["mS1"]); h != 3 {
		t.Fatalf("C3->S1 hops=%d", h)
	}
	if h := tb.Net.PathHops(tb.Hosts["mC3"], tb.Hosts["mS5RQ"]); h != 3 {
		t.Fatalf("C3->S5 hops=%d", h)
	}
	if h := tb.Net.PathHops(tb.Hosts["mC12"], tb.Hosts["mS1"]); h != 3 {
		t.Fatalf("C1->S1 hops=%d", h)
	}
	// Crushing the contested link must not affect C1's path to SG1.
	tb.Net.SetBackgroundBoth(tb.Links.SG1Path, workload.LinkCapacity)
	if bw := tb.Net.AvailBandwidth(tb.Hosts["mS1"], tb.Hosts["mC12"]); bw < 9e6 {
		t.Fatalf("C1 path degraded by C3's competition: %v", bw)
	}
	if bw := tb.Net.AvailBandwidth(tb.Hosts["mS1"], tb.Hosts["mC3"]); bw > 1e5 {
		t.Fatalf("C3 path should be crushed: %v", bw)
	}
	// Initial deployment: 3+2 active servers, both spares idle.
	if got := tb.App.ActiveServersOf(SG1); len(got) != 3 {
		t.Fatalf("SG1 active=%v", got)
	}
	if got := tb.App.ActiveServersOf(SG2); len(got) != 2 {
		t.Fatalf("SG2 active=%v", got)
	}
	if tb.App.Server("S4").Active() || tb.App.Server("S7").Active() {
		t.Fatal("spares must start inactive")
	}
}

func TestControlNeverRecovers(t *testing.T) {
	res := controlRun(t)
	s := res.Summarize()
	// Paper: "Once the latency rises to above two seconds (at approximately
	// 140 seconds for each client), it never falls below this required
	// threshold."
	if s.FirstViolationAt < 100 || s.FirstViolationAt > 200 {
		t.Fatalf("first violation at %v, want ~120-160 s", s.FirstViolationAt)
	}
	if s.FracAbove2s < 0.9 {
		t.Fatalf("control should stay above 2 s almost always, got %.2f", s.FracAbove2s)
	}
	if s.Repairs != 0 {
		t.Fatalf("control must not repair, got %d", s.Repairs)
	}
	// Queue explodes (paper Figure 9 reaches thousands).
	if s.MaxQueue < 1000 {
		t.Fatalf("control queue should explode, max=%v", s.MaxQueue)
	}
	// Available bandwidth collapses (paper Figure 10 bottoms near 1e-4..1e-2
	// Mbps).
	if s.MinBandwidthMbps > 0.01 {
		t.Fatalf("control min bandwidth %v Mbps, want < 0.01", s.MinBandwidthMbps)
	}
}

func TestAdaptiveMaintainsConstraint(t *testing.T) {
	res := adaptiveRun(t)
	s := res.Summarize()
	// Paper: "the latency experienced by clients was less than two seconds
	// for most of the time."
	if s.FracAbove2s > 0.35 {
		t.Fatalf("adaptive above-2s fraction %.2f, want < 0.35", s.FracAbove2s)
	}
	// Full recovery by the final phase.
	if s.FinalPhaseFracAbove2s > 0.05 {
		t.Fatalf("adaptive final phase above-2s %.2f, want ~0", s.FinalPhaseFracAbove2s)
	}
	if s.Repairs == 0 {
		t.Fatal("adaptive run performed no repairs")
	}
	// Paper: repairs "averages 30 seconds".
	if s.MeanRepairSeconds < 5 || s.MeanRepairSeconds > 90 {
		t.Fatalf("mean repair %v s, want ~30", s.MeanRepairSeconds)
	}
	// Both spares recruited ("we were able to recruit only two extra
	// servers", activated mid-run).
	if _, ok := s.ServerActivations["S4"]; !ok {
		t.Fatal("S4 never activated")
	}
	if _, ok := s.ServerActivations["S7"]; !ok {
		t.Fatal("S7 never activated")
	}
	// The bandwidth repair moved the starved clients to ServerGrp2.
	if res.ClientGroups["C3"] != SG2 || res.ClientGroups["C4"] != SG2 {
		t.Fatalf("C3/C4 should end on SG2: %v", res.ClientGroups)
	}
	if s.Moves < 2 {
		t.Fatalf("moves=%d, want >= 2", s.Moves)
	}
}

func TestAdaptiveBeatsControl(t *testing.T) {
	ctrl := controlRun(t).Summarize()
	adpt := adaptiveRun(t).Summarize()
	if adpt.FracAbove2s >= ctrl.FracAbove2s/2 {
		t.Fatalf("adaptive (%.2f) should at least halve control's violation fraction (%.2f)",
			adpt.FracAbove2s, ctrl.FracAbove2s)
	}
	if adpt.MaxQueue >= ctrl.MaxQueue/2 {
		t.Fatalf("adaptive max queue %v vs control %v", adpt.MaxQueue, ctrl.MaxQueue)
	}
}

func TestMatchedSeeding(t *testing.T) {
	// Paper §5.1 control-variable trick: same seed ⇒ identical request
	// sequences. Two control runs must match exactly; and the adaptive run
	// must differ from control only because of repairs.
	a := Run(Options{Adaptive: false, Seed: 7, Duration: 400})
	b := Run(Options{Adaptive: false, Seed: 7, Duration: 400})
	for _, c := range a.Clients {
		if a.Responses[c] != b.Responses[c] {
			t.Fatalf("same-seed runs diverged for %s: %d vs %d", c, a.Responses[c], b.Responses[c])
		}
		sa, sb := a.Latency[c], b.Latency[c]
		if sa.Len() != sb.Len() {
			t.Fatalf("series length differs for %s", c)
		}
		for i := 0; i < sa.Len(); i++ {
			ta, va := sa.At(i)
			tb2, vb := sb.At(i)
			if ta != tb2 || va != vb {
				t.Fatalf("series differ for %s at %d", c, i)
			}
		}
	}
}

func TestGaugeCachingAblation(t *testing.T) {
	// §5.3: "caching gauges or relocating them ... should see our repair
	// speed improve dramatically."
	slow := Run(Options{Adaptive: true, Seed: 1})
	fast := Run(Options{Adaptive: true, Seed: 1, Cfg: core.Config{GaugeCaching: true}})
	ss, fs := slow.Summarize(), fast.Summarize()
	if fs.Repairs == 0 || ss.Repairs == 0 {
		t.Fatalf("both runs should repair: %d vs %d", ss.Repairs, fs.Repairs)
	}
	if fs.MeanRepairSeconds >= ss.MeanRepairSeconds/2 {
		t.Fatalf("caching should cut repair time dramatically: %.1f vs %.1f",
			fs.MeanRepairSeconds, ss.MeanRepairSeconds)
	}
}

func TestMonitoringQoSAblation(t *testing.T) {
	// §5.3: prioritizing monitoring traffic removes the detection lag when
	// the shared network is congested. With QoS the first repair lands no
	// later than without it.
	be := Run(Options{Adaptive: true, Seed: 1})
	qos := Run(Options{Adaptive: true, Seed: 1,
		Cfg: core.Config{MonitoringPriority: netsim.Prioritized}})
	if len(be.Spans) == 0 || len(qos.Spans) == 0 {
		t.Fatal("both runs should repair")
	}
	if qos.Spans[0].Start > be.Spans[0].Start+10 {
		t.Fatalf("QoS first repair at %.0f, best-effort at %.0f — QoS should not be slower",
			qos.Spans[0].Start, be.Spans[0].Start)
	}
	qs := qos.Summarize()
	if qs.FracAbove2s > be.Summarize().FracAbove2s+0.05 {
		t.Fatalf("QoS run should not be worse overall")
	}
}

func TestRemosPrequeryAblation(t *testing.T) {
	// §5.3: without pre-querying, the first bandwidth queries take minutes,
	// delaying the move repairs.
	warm := Run(Options{Adaptive: true, Seed: 1})
	cold := Run(Options{Adaptive: true, Seed: 1, Cfg: core.Config{SkipRemosPrequery: true}})
	firstMove := func(r *Results) float64 {
		for _, sp := range r.Spans {
			for _, op := range sp.Ops {
				if op.Kind == repair.OpMoveClient {
					return sp.Start
				}
			}
		}
		return -1
	}
	wm, cm := firstMove(warm), firstMove(cold)
	if wm < 0 {
		t.Fatal("warm run never moved a client")
	}
	if cm >= 0 && cm < wm {
		t.Fatalf("cold Remos moved earlier (%v) than warm (%v)?", cm, wm)
	}
}

func TestSettlingReducesRepairChurn(t *testing.T) {
	// §5.3 extension: with settle time, fewer repair attempts/alerts fire
	// while a repair's effect is still landing.
	raw := Run(Options{Adaptive: true, Seed: 1})
	settled := Run(Options{Adaptive: true, Seed: 1, Cfg: core.Config{SettleTime: 60}})
	rs, ss := raw.Summarize(), settled.Summarize()
	if ss.Alerts > rs.Alerts {
		t.Fatalf("settling should not increase alerts: %d vs %d", ss.Alerts, rs.Alerts)
	}
	if ss.FracAbove2s > rs.FracAbove2s+0.15 {
		t.Fatalf("settling should not substantially hurt latency: %.2f vs %.2f",
			ss.FracAbove2s, rs.FracAbove2s)
	}
}

func TestFigureRendering(t *testing.T) {
	res := adaptiveRun(t)
	for _, f := range []Figure{Figure7, Figure11, Figure12, Figure13} {
		out := RenderFigure(f, res)
		if !strings.Contains(out, "Figure") {
			t.Fatalf("figure %d render missing title:\n%s", f, out)
		}
		if f != Figure7 && !strings.Contains(out, "repair intervals") {
			t.Fatalf("figure %d should list repair intervals", f)
		}
	}
	ctrl := controlRun(t)
	for _, f := range []Figure{Figure8, Figure9, Figure10} {
		out := RenderFigure(f, ctrl)
		if len(out) < 100 {
			t.Fatalf("figure %d render too small", f)
		}
	}
	if csv := CSVFor(Figure8, ctrl); !strings.Contains(csv, "latency:C1") {
		t.Fatal("CSV missing series header")
	}
	if cmp := CompareRuns(ctrl, res); !strings.Contains(cmp, "control") || !strings.Contains(cmp, "adaptive") {
		t.Fatal("comparison table malformed")
	}
}

func TestOscillationDampingAblation(t *testing.T) {
	// Alternating competition makes clients ping-pong; damping cuts the
	// number of moves without losing the latency win.
	wild := Run(Options{Adaptive: true, Seed: 1, Oscillate: true})
	damped := Run(Options{Adaptive: true, Seed: 1, Oscillate: true,
		Cfg: core.Config{SettleTime: 20, OscillationWindow: 300, OscillationMoves: 3, DampFactor: 6}})
	wm, dm := wild.Summarize().Moves, damped.Summarize().Moves
	if wm == 0 {
		t.Skip("oscillation scenario produced no moves at this seed")
	}
	if dm > wm {
		t.Fatalf("damping should not increase moves: %d vs %d", dm, wm)
	}
}

func TestScriptedRepairsMatchHandCoded(t *testing.T) {
	// The Figure 5 script, compiled and bound in place of the hand-coded
	// tactics, must produce the same repair sequence on the full run.
	hand := Run(Options{Adaptive: true, Seed: 1})
	scripted := Run(Options{Adaptive: true, Seed: 1, Cfg: core.Config{ScriptedRepairs: true}})
	hs, ss := hand.Summarize(), scripted.Summarize()
	if hs.Repairs != ss.Repairs || hs.Moves != ss.Moves {
		t.Fatalf("repairs/moves differ: hand %d/%d vs scripted %d/%d",
			hs.Repairs, hs.Moves, ss.Repairs, ss.Moves)
	}
	for srv, at := range hs.ServerActivations {
		if sat, ok := ss.ServerActivations[srv]; !ok || sat != at {
			t.Fatalf("activation %s: hand %v vs scripted %v (ok=%v)", srv, at, sat, ok)
		}
	}
	if hand.ClientGroups["C3"] != scripted.ClientGroups["C3"] {
		t.Fatal("final placements differ")
	}
	if ss.FracAbove2s > hs.FracAbove2s+0.02 {
		t.Fatalf("scripted run worse: %.3f vs %.3f", ss.FracAbove2s, hs.FracAbove2s)
	}
}
