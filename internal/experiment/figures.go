package experiment

import (
	"fmt"
	"sort"
	"strings"

	"archadapt/internal/metrics"
)

// Figure identifies one of the paper's evaluation figures.
type Figure int

// The paper's figures (§5).
const (
	Figure7  Figure = 7  // workload stepping functions
	Figure8  Figure = 8  // control: average latency
	Figure9  Figure = 9  // control: server load (queue length)
	Figure10 Figure = 10 // control: available bandwidth
	Figure11 Figure = 11 // adaptive: average latency
	Figure12 Figure = 12 // adaptive: available bandwidth
	Figure13 Figure = 13 // adaptive: server load
)

// Title returns the paper's caption for a figure.
func (f Figure) Title() string {
	switch f {
	case Figure7:
		return "Figure 7. Bandwidth and Server Load Generation"
	case Figure8:
		return "Figure 8. Average Latency for Control"
	case Figure9:
		return "Figure 9. Server Load for Control"
	case Figure10:
		return "Figure 10. Available Bandwidth in Control"
	case Figure11:
		return "Figure 11. Average Latency under Repair"
	case Figure12:
		return "Figure 12. Available Bandwidth under Repair"
	case Figure13:
		return "Figure 13. Server Load under Repair"
	}
	return fmt.Sprintf("Figure %d", int(f))
}

// Adaptive reports whether the figure comes from the adaptive run.
func (f Figure) Adaptive() bool { return f >= Figure11 }

// SeriesFor extracts the series a figure plots from a run's results.
func SeriesFor(f Figure, r *Results) []*metrics.Series {
	var out []*metrics.Series
	switch f {
	case Figure8, Figure11:
		for _, c := range r.Clients {
			out = append(out, r.Latency[c])
		}
	case Figure9, Figure13:
		for _, g := range r.Groups {
			out = append(out, r.Queue[g])
		}
	case Figure10, Figure12:
		for _, c := range r.Clients {
			out = append(out, r.Bandwidth[c])
		}
	}
	return out
}

// RenderFigure produces the textual form of a figure: an ASCII plot with the
// paper's log axes plus the repair interval bars of Figures 11–13.
func RenderFigure(f Figure, r *Results) string {
	var b strings.Builder
	series := SeriesFor(f, r)
	switch f {
	case Figure8, Figure11:
		b.WriteString(metrics.ASCIIPlot(f.Title(), series, 76, 14, true, 0.1, 1000))
	case Figure9, Figure13:
		b.WriteString(metrics.ASCIIPlot(f.Title(), series, 76, 14, true, 0.1, 10000))
	case Figure10, Figure12:
		b.WriteString(metrics.ASCIIPlot(f.Title(), series, 76, 14, true, 0.0001, 10))
	case Figure7:
		return renderFigure7()
	}
	if f.Adaptive() && len(r.Spans) > 0 {
		b.WriteString("repair intervals:\n")
		for _, sp := range r.Spans {
			var ops []string
			for _, op := range sp.Ops {
				ops = append(ops, op.String())
			}
			fmt.Fprintf(&b, "  [%6.0f .. %6.0f] %-12s %s (%s)\n",
				sp.Start, sp.End, sp.Subject, strings.Join(sp.Tactics, "+"), strings.Join(ops, ", "))
		}
	}
	return b.String()
}

// renderFigure7 prints the workload schedule as the paper's stepping
// functions.
func renderFigure7() string {
	return `Figure 7. Bandwidth and Server Load Generation
  t in [   0, 120): quiescent warm-up; all paths idle; baseline traffic
  t in [ 120, 600): avail BW C3,C4<->SG1 = 5 Kbps (crushed); C3,C4<->SG2 = 5 Mbps
  t in [ 600,1200): all clients 20KB @ 2/s; C3,C4<->SG1 = 2 Mbps; C3,C4<->SG2 = 3 Mbps
  t in [1200,1800): baseline traffic; C3,C4<->SG2 = 9 Mbps; C3,C4<->SG1 = 3 Mbps
  baseline traffic: ~8KB replies (lognormal), 1 req/s per client, 0.5KB requests
`
}

// CSVFor renders a figure's series as CSV blocks.
func CSVFor(f Figure, r *Results) string {
	var b strings.Builder
	for _, s := range SeriesFor(f, r) {
		b.WriteString(s.CSV())
	}
	return b.String()
}

// CompareRuns renders the control-vs-adaptive comparison table the
// discussion in §5.2/§5.3 makes qualitatively.
func CompareRuns(control, adaptive *Results) string {
	cs, as := control.Summarize(), adaptive.Summarize()
	var b strings.Builder
	b.WriteString("metric                                control      adaptive\n")
	fmt.Fprintf(&b, "first latency violation (s)       %9.0f    %9.0f\n", cs.FirstViolationAt, as.FirstViolationAt)
	fmt.Fprintf(&b, "samples above 2 s (%%)             %9.1f    %9.1f\n", 100*cs.FracAbove2s, 100*as.FracAbove2s)
	fmt.Fprintf(&b, "final 10 min above 2 s (%%)        %9.1f    %9.1f\n", 100*cs.FinalPhaseFracAbove2s, 100*as.FinalPhaseFracAbove2s)
	fmt.Fprintf(&b, "max queue length                  %9.0f    %9.0f\n", cs.MaxQueue, as.MaxQueue)
	fmt.Fprintf(&b, "min available bandwidth (Mbps)    %9.4f    %9.4f\n", cs.MinBandwidthMbps, as.MinBandwidthMbps)
	fmt.Fprintf(&b, "repairs / moves / alerts          %4d/%2d/%3d   %4d/%2d/%3d\n",
		cs.Repairs, cs.Moves, cs.Alerts, as.Repairs, as.Moves, as.Alerts)
	fmt.Fprintf(&b, "mean repair duration (s)          %9.1f    %9.1f\n", cs.MeanRepairSeconds, as.MeanRepairSeconds)
	var acts []string
	for srv, at := range as.ServerActivations {
		acts = append(acts, fmt.Sprintf("%s@%.0fs", srv, at))
	}
	sort.Strings(acts)
	fmt.Fprintf(&b, "spares activated (adaptive)       %s\n", strings.Join(acts, ", "))
	return b.String()
}
