package experiment

import (
	"testing"

	"archadapt/internal/sim"
	"archadapt/internal/workload"
)

// Failure injection: monitoring messages are dropped on the wire. The
// framework must degrade gracefully — slower detection, but no crashes and
// still a decisive win over the control run.
func TestLossyMonitoringStillAdapts(t *testing.T) {
	tb := NewTestbed(1)
	cfg := Options{Adaptive: true, Seed: 1}.Cfg
	mgr := tb.Manage(cfg)
	// 20% loss on both monitoring buses (probe observations and gauge
	// reports); the application's own traffic is unaffected.
	mgr.ProbeBus.SetDrop(0.2, sim.NewRand(99))
	mgr.ReportBus.SetDrop(0.2, sim.NewRand(98))
	mgr.Deploy()
	rng := sim.NewRand(uint64(1) ^ 0x9e3779b97f4a7c15)
	schedule(tb, rng)
	tb.K.Run(900)
	if len(mgr.Spans()) == 0 {
		t.Fatal("no repairs at 20% monitoring loss")
	}
	// The starved clients still end up on SG2.
	moved := 0
	for _, c := range []string{"C3", "C4"} {
		if tb.App.Client(c).Group == SG2 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("no client moved despite repairs: %+v", mgr.Spans())
	}
}

// Heavy loss: the system must survive (no panics, no wedged manager) even
// when most monitoring traffic disappears.
func TestSevereMonitoringLossSurvives(t *testing.T) {
	tb := NewTestbed(1)
	cfg := Options{Adaptive: true, Seed: 1}.Cfg
	mgr := tb.Manage(cfg)
	mgr.ProbeBus.SetDrop(0.9, sim.NewRand(7))
	mgr.ReportBus.SetDrop(0.9, sim.NewRand(8))
	mgr.Deploy()
	rng := sim.NewRand(uint64(1) ^ 0x9e3779b97f4a7c15)
	schedule(tb, rng)
	tb.K.Run(900)
	if mgr.Checks() == 0 {
		t.Fatal("control loop stalled")
	}
	// No assertion on repairs: with 90% loss the framework may legitimately
	// never assemble a fresh-enough model. The test is that nothing breaks.
}

func schedule(tb *Testbed, rng *sim.Rand) {
	workload.Paper(tb.Net, tb.App, tb.Links, rng).Install(tb.K)
}
