package experiment

import (
	"fmt"
	"sort"
	"strings"

	"archadapt/internal/app"
	"archadapt/internal/core"
	"archadapt/internal/metrics"
	"archadapt/internal/repair"
	"archadapt/internal/sim"
	"archadapt/internal/workload"
)

// Options configures one experimental run.
type Options struct {
	// Adaptive enables the framework's repairs; false is the control run.
	Adaptive bool
	// Cfg tunes the manager (monitoring runs in both control and adaptive
	// runs, so the network carries the same monitoring load either way).
	Cfg core.Config
	// Seed drives every stochastic stream; control and adaptive runs use
	// the same seed to get the paper's matched request sequences.
	Seed uint64
	// Duration of the run (default: the paper's 1800 s).
	Duration float64
	// SamplePeriod of the ground-truth series (default 5 s).
	SamplePeriod float64
	// Oscillate replaces the Figure 7 schedule's middle phase with
	// alternating competition (the §5.3 oscillation scenario).
	Oscillate bool
}

// Results carries the measured series and repair history of one run.
type Results struct {
	Opts Options

	// Latency: one series per client (Figures 8 and 11).
	Latency map[string]*metrics.Series
	// Queue: one series per group (Figures 9 and 13).
	Queue map[string]*metrics.Series
	// Bandwidth: available bandwidth client↔its current group
	// (Figures 10 and 12).
	Bandwidth map[string]*metrics.Series

	Spans  []core.RepairSpan
	Alerts []core.Alert

	Clients []string
	Groups  []string

	// Final state, for assertions.
	ActiveServers map[string][]string
	ClientGroups  map[string]string
	Responses     map[string]uint64
	Dropped       uint64
}

// Run executes one full experiment.
func Run(opts Options) *Results {
	if opts.Duration <= 0 {
		opts.Duration = workload.RunEnd
	}
	if opts.SamplePeriod <= 0 {
		opts.SamplePeriod = 5
	}
	tb := NewTestbed(opts.Seed)
	cfg := opts.Cfg
	cfg.DisableRepairs = !opts.Adaptive
	mgr := tb.Manage(cfg)
	mgr.Deploy()

	// Workload (its RNG stream is isolated from the clients').
	rng := sim.NewRand(opts.Seed ^ 0x9e3779b97f4a7c15)
	sched := workload.Paper(tb.Net, tb.App, tb.Links, rng)
	sched.Install(tb.K)
	if opts.Oscillate {
		osc := workload.Oscillator(tb.Net, tb.Links, workload.PhaseBWEnd, workload.PhaseLoadEnd, 60)
		osc.Install(tb.K)
	}

	res := &Results{
		Opts:      opts,
		Latency:   map[string]*metrics.Series{},
		Queue:     map[string]*metrics.Series{},
		Bandwidth: map[string]*metrics.Series{},
		Clients:   tb.App.Clients(),
		Groups:    tb.App.Groups(),
	}

	// Ground-truth samplers (window average, or age of the oldest
	// outstanding request while a client is wedged — see app.ObserveLatency).
	obs := app.ObserveLatency(tb.App, tb.App.Clients(), 30)
	for _, name := range tb.App.Clients() {
		res.Latency[name] = metrics.NewSeries("latency:" + name)
		res.Bandwidth[name] = metrics.NewSeries("bandwidth:" + name)
	}
	for _, g := range tb.App.Groups() {
		res.Queue[g] = metrics.NewSeries("queue:" + g)
	}

	tb.K.Ticker(opts.SamplePeriod, opts.SamplePeriod, func(now float64) {
		for _, name := range tb.App.Clients() {
			if v, ok := obs.Sample(name, now); ok {
				res.Latency[name].Add(now, v)
			}
			cli := tb.App.Client(name)
			if hosts := tb.App.ActiveServersOf(cli.Group); len(hosts) > 0 {
				sh := tb.App.Server(hosts[0]).Host
				res.Bandwidth[name].Add(now, tb.Net.AvailBandwidth(sh, cli.Host)/1e6) // Mbps
			}
		}
		for _, g := range tb.App.Groups() {
			res.Queue[g].Add(now, float64(tb.App.QueueLen(g)))
		}
	})

	// Run to completion: the schedule stops clients at Duration; drain the
	// tail (in-flight transfers, gauge churn) afterwards.
	tb.K.Run(opts.Duration)
	mgr.Stop()
	tb.App.StopClients()
	tb.K.Run(opts.Duration + 300)

	res.Spans = mgr.Spans()
	res.Alerts = mgr.Alerts()
	res.ActiveServers = map[string][]string{}
	for _, g := range tb.App.Groups() {
		res.ActiveServers[g] = tb.App.ActiveServersOf(g)
	}
	res.ClientGroups = map[string]string{}
	res.Responses = map[string]uint64{}
	for _, c := range tb.App.Clients() {
		res.ClientGroups[c] = tb.App.Client(c).Group
		res.Responses[c] = tb.App.Client(c).Responses()
	}
	res.Dropped = tb.App.DroppedRequests()
	return res
}

// Summary aggregates a run for EXPERIMENTS.md and bench output.
type Summary struct {
	Adaptive bool
	// FirstViolationAt is the earliest time any client's measured average
	// latency exceeds the 2 s bound (paper: ≈140 s in the control).
	FirstViolationAt float64
	// FracAbove2s is the overall fraction of (client, sample) points above
	// the bound after the quiescent phase.
	FracAbove2s float64
	// FinalPhaseFracAbove2s is the same for the final ten minutes
	// (recovery).
	FinalPhaseFracAbove2s float64
	MaxQueue              float64
	MinBandwidthMbps      float64
	Repairs               int
	MeanRepairSeconds     float64
	ServerActivations     map[string]float64 // server -> activation time
	Moves                 int
	Alerts                int
	Responses             uint64
}

// Summarize computes the run's aggregate row.
func (r *Results) Summarize() Summary {
	s := Summary{Adaptive: r.Opts.Adaptive, FirstViolationAt: -1, ServerActivations: map[string]float64{}}
	for _, cli := range r.Clients {
		ser := r.Latency[cli]
		if t := ser.FirstAbove(2.0); t >= 0 && (s.FirstViolationAt < 0 || t < s.FirstViolationAt) {
			s.FirstViolationAt = t
		}
	}
	var above, total float64
	var aboveF, totalF float64
	end := r.Opts.Duration
	if end <= 0 {
		end = workload.RunEnd
	}
	for _, cli := range r.Clients {
		ser := r.Latency[cli]
		for i := 0; i < ser.Len(); i++ {
			t, v := ser.At(i)
			if t < workload.PhaseQuiesceEnd {
				continue
			}
			total++
			if v > 2.0 {
				above++
			}
			if t >= end-600 {
				totalF++
				if v > 2.0 {
					aboveF++
				}
			}
		}
	}
	if total > 0 {
		s.FracAbove2s = above / total
	}
	if totalF > 0 {
		s.FinalPhaseFracAbove2s = aboveF / totalF
	}
	for _, g := range r.Groups {
		if m := r.Queue[g].Max(); m > s.MaxQueue {
			s.MaxQueue = m
		}
	}
	s.MinBandwidthMbps = 1e9
	for _, cli := range r.Clients {
		if m := r.Bandwidth[cli].Min(); m < s.MinBandwidthMbps {
			s.MinBandwidthMbps = m
		}
	}
	s.Repairs = len(r.Spans)
	for _, sp := range r.Spans {
		s.MeanRepairSeconds += sp.Duration()
		for _, op := range sp.Ops {
			switch op.Kind {
			case repair.OpAddServer:
				if _, seen := s.ServerActivations[op.Server]; !seen {
					s.ServerActivations[op.Server] = sp.Start
				}
			case repair.OpMoveClient:
				s.Moves++
			}
		}
	}
	if s.Repairs > 0 {
		s.MeanRepairSeconds /= float64(s.Repairs)
	}
	s.Alerts = len(r.Alerts)
	for _, n := range r.Responses {
		s.Responses += n
	}
	return s
}

// String renders the summary as the harness's standard row block.
func (s Summary) String() string {
	var b strings.Builder
	kind := "control"
	if s.Adaptive {
		kind = "adaptive"
	}
	fmt.Fprintf(&b, "run=%s\n", kind)
	fmt.Fprintf(&b, "  first latency violation     : %.0f s\n", s.FirstViolationAt)
	fmt.Fprintf(&b, "  samples above 2 s (t>120s)  : %.1f%%\n", 100*s.FracAbove2s)
	fmt.Fprintf(&b, "  samples above 2 s (final 10m): %.1f%%\n", 100*s.FinalPhaseFracAbove2s)
	fmt.Fprintf(&b, "  max queue length            : %.0f\n", s.MaxQueue)
	fmt.Fprintf(&b, "  min available bandwidth     : %.4g Mbps\n", s.MinBandwidthMbps)
	fmt.Fprintf(&b, "  repairs=%d moves=%d alerts=%d mean repair=%.1f s\n",
		s.Repairs, s.Moves, s.Alerts, s.MeanRepairSeconds)
	if len(s.ServerActivations) > 0 {
		var names []string
		for n := range s.ServerActivations {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  spare %s activated at %.0f s\n", n, s.ServerActivations[n])
		}
	}
	fmt.Fprintf(&b, "  responses delivered         : %d\n", s.Responses)
	return b.String()
}
