// Package experiment reproduces the paper's evaluation (§5): the Figure 6
// testbed, the Figure 7 workload, the thirty-minute control and adaptive
// runs, and the series behind Figures 8–13.
package experiment

import (
	"archadapt/internal/app"
	"archadapt/internal/core"
	"archadapt/internal/model"
	"archadapt/internal/netsim"
	"archadapt/internal/operators"
	"archadapt/internal/remos"
	"archadapt/internal/sim"
	"archadapt/internal/workload"
)

// Group and server names of the paper's deployment.
const (
	SG1 = "ServerGrp1"
	SG2 = "ServerGrp2"
)

// Service-time model: base CPU cost plus per-bit disk/CPU cost, tuned so a
// 20 KB stress reply costs ≈0.45 s (three servers ≈ 6.7 req/s — overwhelmed
// by the 12 req/s stress phase, comfortable at the 6 req/s baseline).
const (
	ServiceBase   = 0.05
	ServicePerBit = 0.4 / (20 * 8192)
)

// Testbed is the experimental installation: network, application, model,
// and (for adaptive runs) the architecture manager.
type Testbed struct {
	K     *sim.Kernel
	Net   *netsim.Network
	App   *app.System
	Model *model.System
	Mgr   *core.Manager
	Rm    *remos.Service

	Links workload.Links
	Hosts map[string]netsim.NodeID
}

// NewTestbed builds the Figure 6 deployment:
//
//	R1: C1,C2 (shared host) and S4 (also the repair infrastructure);
//	R2: S1,S2,S3;   R3: C3, C4;   R4: S5+request queues, S6;   R5: C5,C6, S7.
//
// Routers form the chain R1–R2–R3–R4–R5 plus the R2–R4 cross link, so the
// contested C3,C4↔SG1 and C3,C4↔SG2 paths (Figure 7) are isolated from the
// other clients' paths. All links run at 10 Mbps.
func NewTestbed(seed uint64) *Testbed {
	k := sim.NewKernel()
	net := netsim.New(k)
	tb := &Testbed{K: k, Net: net, Hosts: map[string]netsim.NodeID{}}

	r1 := net.AddRouter("R1")
	r2 := net.AddRouter("R2")
	r3 := net.AddRouter("R3")
	r4 := net.AddRouter("R4")
	r5 := net.AddRouter("R5")

	add := func(name string, router netsim.NodeID) netsim.NodeID {
		h := net.AddHost(name)
		net.Connect(h, router, workload.LinkCapacity, 1e-3)
		tb.Hosts[name] = h
		return h
	}
	mC12 := add("mC12", r1)
	mS4 := add("mS4", r1)
	mS1 := add("mS1", r2)
	mS2 := add("mS2", r2)
	mS3 := add("mS3", r2)
	mC3 := add("mC3", r3)
	mC4 := add("mC4", r3)
	mS5RQ := add("mS5RQ", r4)
	mS6 := add("mS6", r4)
	mC56 := add("mC56", r5)
	mS7 := add("mS7", r5)

	net.Connect(r1, r2, workload.LinkCapacity, 1e-3)
	sg1Path := net.Connect(r2, r3, workload.LinkCapacity, 1e-3)
	sg2Path := net.Connect(r3, r4, workload.LinkCapacity, 1e-3)
	net.Connect(r4, r5, workload.LinkCapacity, 1e-3)
	net.Connect(r2, r4, workload.LinkCapacity, 1e-3) // cross link
	tb.Links = workload.Links{SG1Path: sg1Path, SG2Path: sg2Path}

	// Application: queues on the S5 machine, servers, clients.
	a := app.New(k, net, mS5RQ)
	must(a.CreateQueue(SG1))
	must(a.CreateQueue(SG2))
	serverHosts := map[string]netsim.NodeID{
		"S1": mS1, "S2": mS2, "S3": mS3, "S4": mS4,
		"S5": mS5RQ, "S6": mS6, "S7": mS7,
	}
	groupOf := map[string]string{
		"S1": SG1, "S2": SG1, "S3": SG1, "S4": SG1,
		"S5": SG2, "S6": SG2, "S7": SG2,
	}
	for _, s := range []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7"} {
		a.AddServer(s, serverHosts[s], groupOf[s], ServiceBase, ServicePerBit)
	}
	for _, s := range []string{"S1", "S2", "S3", "S5", "S6"} {
		must(a.Activate(s)) // S4 and S7 are the spares
	}
	clientHosts := map[string]netsim.NodeID{
		"C1": mC12, "C2": mC12, "C3": mC3, "C4": mC4, "C5": mC56, "C6": mC56,
	}
	rng := sim.NewRand(seed)
	for _, c := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		a.AddClient(c, clientHosts[c], SG1, workload.BaselineRate, rng.Fork("client:"+c))
	}
	tb.App = a

	// Architecture model mirroring the deployment.
	mdl, err := operators.Build(operators.Spec{
		Name: "storage",
		Groups: []operators.GroupSpec{
			{Name: SG1, Servers: []string{"S1", "S2", "S3", "S4"}, ActiveCount: 3},
			{Name: SG2, Servers: []string{"S5", "S6", "S7"}, ActiveCount: 2},
		},
		Clients: []operators.ClientSpec{
			{Name: "C1", Group: SG1}, {Name: "C2", Group: SG1},
			{Name: "C3", Group: SG1}, {Name: "C4", Group: SG1},
			{Name: "C5", Group: SG1}, {Name: "C6", Group: SG1},
		},
		MaxLatency:    2.0,
		MaxServerLoad: 6.0,
		MinBandwidth:  10e3,
	})
	must(err)
	tb.Model = mdl

	// Remos and the repair infrastructure live on S4's machine.
	tb.Rm = remos.New(k, net, mS4)
	return tb
}

// Manage attaches an architecture manager (with its monitoring stack) on the
// repair-infrastructure host.
func (tb *Testbed) Manage(cfg core.Config) *core.Manager {
	tb.Mgr = core.New(cfg, tb.K, tb.Net, tb.App, tb.Model, tb.Hosts["mS4"], tb.Rm)
	return tb.Mgr
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
