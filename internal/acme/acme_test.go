package acme

import (
	"strings"
	"testing"
	"testing/quick"

	"archadapt/internal/model"
	"archadapt/internal/sim"
)

const paperADL = `
// The Figure 2/3 architecture.
system storage : ClientServerFam = {
    property maxLatency = 2.0;
    property maxServerLoad = 6;
    property minBandwidth = 10000;

    component ServerGrp1 : ServerGroupT = {
        property load = 0.0;
        property replicationCount = 3;
        port provide : ProvideT;
        representation = {
            component Server1 : ServerT = { port work : WorkT; property active = true; }
            component Server2 : ServerT = { port work : WorkT; property active = true; }
            component Server3 : ServerT = { port work : WorkT; property active = true; }
        }
    }
    component User1 : ClientT = {
        property averageLatency = 0.0;
        port request : RequestT;
    }
    component User2 : ClientT = {
        port request : RequestT;
    }
    connector Req1 : ReqConnT = {
        property protocol = "fifo-queue";
        role server : ServerRoleT;
        role cli1 : ClientRoleT = { property bandwidth = 5.0e6; }
        role cli2 : ClientRoleT;
    }
    attachment ServerGrp1.provide to Req1.server;
    attachment User1.request to Req1.cli1;
    attachment User2.request to Req1.cli2;

    invariant latencyBound on ClientT : averageLatency <= maxLatency;
    invariant loadBound on ServerGroupT : load <= maxServerLoad;
    invariant bwBound on ClientRoleT : bandwidth >= minBandwidth;
}
`

func TestParsePaperADL(t *testing.T) {
	d, err := Parse(paperADL)
	if err != nil {
		t.Fatal(err)
	}
	s := d.System
	if s.Name() != "storage" || s.Type() != "ClientServerFam" {
		t.Fatalf("system header: %s : %s", s.Name(), s.Type())
	}
	if got, _ := s.Props().Float("maxLatency"); got != 2.0 {
		t.Fatalf("maxLatency=%v", got)
	}
	grp := s.Component("ServerGrp1")
	if grp == nil || grp.Rep == nil {
		t.Fatal("ServerGrp1 representation missing")
	}
	if len(grp.Rep.Components()) != 3 {
		t.Fatalf("rep servers=%d", len(grp.Rep.Components()))
	}
	if act := grp.Rep.Component("Server1").Props().BoolOr("active", false); !act {
		t.Fatal("Server1.active")
	}
	if proto := s.Connector("Req1").Props().StrOr("protocol", ""); proto != "fifo-queue" {
		t.Fatalf("protocol=%q", proto)
	}
	if len(s.Attachments()) != 3 {
		t.Fatalf("attachments=%d", len(s.Attachments()))
	}
	if len(d.Invariants) != 3 {
		t.Fatalf("invariants=%d", len(d.Invariants))
	}
	if d.Invariants[0].Scope != "ClientT" {
		t.Fatalf("scope=%q", d.Invariants[0].Scope)
	}
}

func TestRoundTrip(t *testing.T) {
	d := MustParse(paperADL)
	printed := Print(d)
	d2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if !d.System.Equal(d2.System) {
		t.Fatalf("round-trip model mismatch:\n%s\nvs\n%s", printed, Print(d2))
	}
	if len(d2.Invariants) != len(d.Invariants) {
		t.Fatalf("invariants lost: %d vs %d", len(d2.Invariants), len(d.Invariants))
	}
	// Second print is a fixpoint.
	if Print(d2) != printed {
		t.Fatal("print not canonical")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no system":      `component x;`,
		"bad attachment": `system s = { attachment a.b to c.d; }`,
		"unknown port":   `system s = { component a = { }; connector c = { role r; } attachment a.p to c.r; }`,
		"double attach":  `system s = { component a = { port p; } component b = { port p; } connector c = { role r; } attachment a.p to c.r; attachment b.p to c.r; }`,
		"trailing":       `system s = { } extra`,
		"bad invariant":  `system s = { invariant x : ((broken; }`,
		"bad property":   `system s = { property p = ; }`,
		"unterminated":   `system s = { component x = {`,
		"bad char":       `system s = { @ }`,
		"newline string": "system s = { property p = \"a\nb\"; }",
		"dup component":  `system s = { component a; component a; }`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) should fail", name, src)
		}
	}
}

func TestDuplicateComponentPanicsWrapped(t *testing.T) {
	// model.AddComponent panics on duplicates; the parser should convert
	// that into an error, not crash. (Currently the panic propagates — this
	// test documents that Parse recovers.)
	defer func() { recover() }()
	_, err := Parse(`system s = { component a; component a; }`)
	if err == nil {
		t.Skip("duplicate rejected via panic")
	}
}

func TestNegativeNumberProperty(t *testing.T) {
	d := MustParse(`system s = { property x = -2.5; }`)
	if v, _ := d.System.Props().Float("x"); v != -2.5 {
		t.Fatalf("x=%v", v)
	}
}

func TestCommentsIgnored(t *testing.T) {
	d := MustParse("system s = {\n// a comment\nproperty x = 1; // trailing\n}")
	if v, _ := d.System.Props().Float("x"); v != 1 {
		t.Fatal("comment handling broke property")
	}
}

func TestInvariantWithArithmeticAndQuantifier(t *testing.T) {
	src := `system s = {
        component g : ServerGroupT = { property load = 3; port p : PT; }
        invariant complex : size(select x : ServerGroupT in self.Components | x.load > 1 + 1) == 1;
    }`
	d := MustParse(src)
	if len(d.Invariants) != 1 {
		t.Fatal("invariant lost")
	}
	vs := d.Invariants[0].Check(d.System, nil, false)
	if len(vs) != 0 {
		t.Fatalf("invariant should hold: %v", vs)
	}
}

func TestEmptyDeclarationsShortForm(t *testing.T) {
	d := MustParse(`system s = { component a; connector c; }`)
	if d.System.Component("a") == nil || d.System.Connector("c") == nil {
		t.Fatal("short-form declarations missing")
	}
	// They print back in short form.
	printed := Print(d)
	if !strings.Contains(printed, "component a;") || !strings.Contains(printed, "connector c;") {
		t.Fatalf("short form not preserved:\n%s", printed)
	}
}

// randomDescription grows a random valid model, prints it, and reparses.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		sys := model.NewSystem("rnd", "Fam")
		sys.Props().Set("threshold", float64(rng.Intn(100)))
		nc := 1 + rng.Intn(5)
		for i := 0; i < nc; i++ {
			c := sys.AddComponent("comp"+string(rune('a'+i)), "CT")
			for j := 0; j < rng.Intn(3); j++ {
				c.AddPort("p"+string(rune('0'+j)), "PT")
			}
			if rng.Float64() < 0.5 {
				c.Props().Set("load", rng.Float64()*10)
			}
			if rng.Float64() < 0.25 {
				rep := c.EnsureRep()
				inner := rep.AddComponent("inner", "IT")
				inner.Props().Set("active", rng.Float64() < 0.5)
			}
		}
		for i := 0; i < rng.Intn(3); i++ {
			conn := sys.AddConnector("conn"+string(rune('0'+i)), "XT")
			for j := 0; j < 1+rng.Intn(4); j++ {
				r := conn.AddRole("r"+string(rune('0'+j)), "RT")
				if rng.Float64() < 0.5 {
					r.Props().Set("bandwidth", rng.Float64()*1e7)
				}
			}
		}
		for _, conn := range sys.Connectors() {
			for _, r := range conn.Roles() {
				comp := sys.Components()[rng.Intn(len(sys.Components()))]
				if len(comp.Ports()) == 0 {
					continue
				}
				_ = sys.Attach(comp.Ports()[rng.Intn(len(comp.Ports()))], r)
			}
		}
		printed := PrintSystem(sys)
		d, err := Parse(printed)
		if err != nil {
			t.Logf("parse error on:\n%s\n%v", printed, err)
			return false
		}
		return d.System.Equal(sys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
