// Package acme reads and writes a textual architecture description language
// in the Acme family, standing in for the paper's AcmeLib: systems of typed
// components and connectors with ports, roles, property lists, nested
// representations, attachments, and invariants.
//
// Example:
//
//	system storage : ClientServerFam = {
//	    property maxLatency = 2.0;
//	    component ServerGrp1 : ServerGroupT = {
//	        port provide : ProvideT;
//	        property load = 0.0;
//	        representation = {
//	            component Server1 : ServerT = { port work : WorkT; }
//	        }
//	    }
//	    connector Req1 : ReqConnT = {
//	        role server : ServerRoleT;
//	    }
//	    attachment ServerGrp1.provide to Req1.server;
//	    invariant latency on ClientT : averageLatency <= maxLatency;
//	}
//
// Parse returns the model plus the declared invariants; Print renders a
// canonical form such that Parse∘Print is the identity on models.
package acme

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
)

// Description is a parsed ADL file: the architecture plus its invariants.
type Description struct {
	System     *model.System
	Invariants []*constraint.Invariant
}

// ---- lexer ----

type tkind int

const (
	tkEOF tkind = iota
	tkWord
	tkNumber
	tkString
	tkPunct // { } = ; : .
)

type tok struct {
	kind tkind
	text string
	num  float64
	line int
}

func (t tok) String() string {
	if t.kind == tkEOF {
		return "end of file"
	}
	return strconv.Quote(t.text)
}

type lexer struct {
	src  string
	i    int
	line int
	toks []tok
}

func lexAll(src string) ([]tok, error) {
	l := &lexer{src: src, line: 1}
	n := len(src)
	for l.i < n {
		c := src[l.i]
		switch {
		case c == '\n':
			l.line++
			l.i++
		case c == ' ' || c == '\t' || c == '\r':
			l.i++
		case c == '/' && l.i+1 < n && src[l.i+1] == '/':
			for l.i < n && src[l.i] != '\n' {
				l.i++
			}
		case unicode.IsDigit(rune(c)) || ((c == '-' || c == '.') && l.i+1 < n && unicode.IsDigit(rune(src[l.i+1]))):
			j := l.i + 1
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			f, err := strconv.ParseFloat(src[l.i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("acme:%d: bad number %q", l.line, src[l.i:j])
			}
			l.toks = append(l.toks, tok{kind: tkNumber, text: src[l.i:j], num: f, line: l.line})
			l.i = j
		case c == '"':
			j := l.i + 1
			var sb []byte
			for j < n && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("acme:%d: newline in string", l.line)
				}
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb = append(sb, src[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("acme:%d: unterminated string", l.line)
			}
			l.toks = append(l.toks, tok{kind: tkString, text: string(sb), line: l.line})
			l.i = j + 1
		case unicode.IsLetter(rune(c)) || c == '_':
			j := l.i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			l.toks = append(l.toks, tok{kind: tkWord, text: src[l.i:j], line: l.line})
			l.i = j
		case c == '<' || c == '>' || c == '!' || c == '=':
			// Expression operators appear inside invariant bodies; `==` must
			// stay distinct from the declaration-level `=`.
			if l.i+1 < n && src[l.i+1] == '=' {
				l.toks = append(l.toks, tok{kind: tkPunct, text: src[l.i : l.i+2], line: l.line})
				l.i += 2
			} else {
				l.toks = append(l.toks, tok{kind: tkPunct, text: string(c), line: l.line})
				l.i++
			}
		case strings.ContainsRune("{}=;:.,|()+-*/", rune(c)):
			l.toks = append(l.toks, tok{kind: tkPunct, text: string(c), line: l.line})
			l.i++
		default:
			return nil, fmt.Errorf("acme:%d: unexpected character %q", l.line, c)
		}
	}
	l.toks = append(l.toks, tok{kind: tkEOF, line: l.line})
	return l.toks, nil
}

// ---- parser ----

type parser struct {
	toks []tok
	i    int
}

func (p *parser) peek() tok { return p.toks[p.i] }
func (p *parser) next() tok { t := p.toks[p.i]; p.i++; return t }

func (p *parser) acceptPunct(s string) bool {
	if p.peek().kind == tkPunct && p.peek().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptWord(s string) bool {
	if p.peek().kind == tkWord && p.peek().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("acme:%d: expected %q, found %s", p.peek().line, s, p.peek())
	}
	return nil
}

func (p *parser) expectWord() (string, error) {
	t := p.peek()
	if t.kind != tkWord {
		return "", fmt.Errorf("acme:%d: expected identifier, found %s", t.line, t)
	}
	p.i++
	return t.text, nil
}

// Parse parses an ADL source text.
func Parse(src string) (d *Description, err error) {
	// The model layer panics on structural misuse (duplicate names); surface
	// those as parse errors rather than crashing the caller.
	defer func() {
		if r := recover(); r != nil {
			d = nil
			err = fmt.Errorf("acme: %v", r)
		}
	}()
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if !p.acceptWord("system") {
		return nil, fmt.Errorf("acme:%d: expected 'system', found %s", p.peek().line, p.peek())
	}
	name, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	style := ""
	if p.acceptPunct(":") {
		style, err = p.expectWord()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	d = &Description{System: model.NewSystem(name, style)}
	if err := p.parseSystemBody(d, d.System); err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("acme:%d: trailing input %s", p.peek().line, p.peek())
	}
	if err := d.System.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Description {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type attSpec struct {
	compOrConn, portOrRole string
	toConn, toRole         string
	line                   int
}

func (p *parser) parseSystemBody(d *Description, sys *model.System) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var atts []attSpec
	for !p.acceptPunct("}") {
		t := p.peek()
		if t.kind != tkWord {
			return fmt.Errorf("acme:%d: expected declaration, found %s", t.line, t)
		}
		switch t.text {
		case "property":
			p.i++
			if err := p.parseProperty(sys.Props()); err != nil {
				return err
			}
		case "component":
			p.i++
			if err := p.parseComponent(d, sys); err != nil {
				return err
			}
		case "connector":
			p.i++
			if err := p.parseConnector(sys); err != nil {
				return err
			}
		case "attachment":
			p.i++
			a, err := p.parseAttachment()
			if err != nil {
				return err
			}
			atts = append(atts, a)
		case "invariant":
			p.i++
			if err := p.parseInvariant(d); err != nil {
				return err
			}
		default:
			return fmt.Errorf("acme:%d: unknown declaration %q", t.line, t.text)
		}
	}
	// Resolve attachments after all declarations.
	for _, a := range atts {
		comp := sys.Component(a.compOrConn)
		if comp == nil {
			return fmt.Errorf("acme:%d: attachment references unknown component %q", a.line, a.compOrConn)
		}
		port := comp.Port(a.portOrRole)
		if port == nil {
			return fmt.Errorf("acme:%d: component %q has no port %q", a.line, a.compOrConn, a.portOrRole)
		}
		conn := sys.Connector(a.toConn)
		if conn == nil {
			return fmt.Errorf("acme:%d: attachment references unknown connector %q", a.line, a.toConn)
		}
		role := conn.Role(a.toRole)
		if role == nil {
			return fmt.Errorf("acme:%d: connector %q has no role %q", a.line, a.toConn, a.toRole)
		}
		if err := sys.Attach(port, role); err != nil {
			return fmt.Errorf("acme:%d: %w", a.line, err)
		}
	}
	return nil
}

func (p *parser) parseProperty(props *model.Props) error {
	name, err := p.expectWord()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	t := p.next()
	var v any
	switch {
	case t.kind == tkNumber:
		v = t.num
	case t.kind == tkString:
		v = t.text
	case t.kind == tkWord && t.text == "true":
		v = true
	case t.kind == tkWord && t.text == "false":
		v = false
	default:
		return fmt.Errorf("acme:%d: bad property value %s", t.line, t)
	}
	props.Set(name, v)
	return p.expectPunct(";")
}

func (p *parser) parseComponent(d *Description, sys *model.System) error {
	name, err := p.expectWord()
	if err != nil {
		return err
	}
	typ := ""
	if p.acceptPunct(":") {
		if typ, err = p.expectWord(); err != nil {
			return err
		}
	}
	c := sys.AddComponent(name, typ)
	if p.acceptPunct(";") {
		return nil
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		t := p.peek()
		switch {
		case t.kind == tkWord && t.text == "property":
			p.i++
			if err := p.parseProperty(c.Props()); err != nil {
				return err
			}
		case t.kind == tkWord && t.text == "port":
			p.i++
			pn, err := p.expectWord()
			if err != nil {
				return err
			}
			pt := ""
			if p.acceptPunct(":") {
				if pt, err = p.expectWord(); err != nil {
					return err
				}
			}
			port := c.AddPort(pn, pt)
			if p.acceptPunct("=") {
				if err := p.expectPunct("{"); err != nil {
					return err
				}
				for !p.acceptPunct("}") {
					if !p.acceptWord("property") {
						return fmt.Errorf("acme:%d: expected property in port body", p.peek().line)
					}
					if err := p.parseProperty(port.Props()); err != nil {
						return err
					}
				}
			} else if err := p.expectPunct(";"); err != nil {
				return err
			}
		case t.kind == tkWord && t.text == "representation":
			p.i++
			if err := p.expectPunct("="); err != nil {
				return err
			}
			rep := c.EnsureRep()
			if err := p.parseSystemBody(d, rep); err != nil {
				return err
			}
		default:
			return fmt.Errorf("acme:%d: unexpected %s in component body", t.line, t)
		}
	}
	return nil
}

func (p *parser) parseConnector(sys *model.System) error {
	name, err := p.expectWord()
	if err != nil {
		return err
	}
	typ := ""
	if p.acceptPunct(":") {
		if typ, err = p.expectWord(); err != nil {
			return err
		}
	}
	c := sys.AddConnector(name, typ)
	if p.acceptPunct(";") {
		return nil
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		t := p.peek()
		switch {
		case t.kind == tkWord && t.text == "property":
			p.i++
			if err := p.parseProperty(c.Props()); err != nil {
				return err
			}
		case t.kind == tkWord && t.text == "role":
			p.i++
			rn, err := p.expectWord()
			if err != nil {
				return err
			}
			rt := ""
			if p.acceptPunct(":") {
				if rt, err = p.expectWord(); err != nil {
					return err
				}
			}
			role := c.AddRole(rn, rt)
			if p.acceptPunct("=") {
				if err := p.expectPunct("{"); err != nil {
					return err
				}
				for !p.acceptPunct("}") {
					if !p.acceptWord("property") {
						return fmt.Errorf("acme:%d: expected property in role body", p.peek().line)
					}
					if err := p.parseProperty(role.Props()); err != nil {
						return err
					}
				}
			} else if err := p.expectPunct(";"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("acme:%d: unexpected %s in connector body", t.line, t)
		}
	}
	return nil
}

func (p *parser) parseAttachment() (attSpec, error) {
	var a attSpec
	a.line = p.peek().line
	var err error
	if a.compOrConn, err = p.expectWord(); err != nil {
		return a, err
	}
	if err = p.expectPunct("."); err != nil {
		return a, err
	}
	if a.portOrRole, err = p.expectWord(); err != nil {
		return a, err
	}
	if !p.acceptWord("to") {
		return a, fmt.Errorf("acme:%d: expected 'to' in attachment", p.peek().line)
	}
	if a.toConn, err = p.expectWord(); err != nil {
		return a, err
	}
	if err = p.expectPunct("."); err != nil {
		return a, err
	}
	if a.toRole, err = p.expectWord(); err != nil {
		return a, err
	}
	return a, p.expectPunct(";")
}

// parseInvariant parses `invariant NAME [on TYPE] : <expr-to-semicolon>;`.
// The expression is handed to the constraint package verbatim.
func (p *parser) parseInvariant(d *Description) error {
	name, err := p.expectWord()
	if err != nil {
		return err
	}
	scope := ""
	if p.acceptWord("on") {
		if scope, err = p.expectWord(); err != nil {
			return err
		}
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	// Collect raw tokens until the terminating semicolon.
	var sb strings.Builder
	depth := 0
	for {
		t := p.peek()
		if t.kind == tkEOF {
			return fmt.Errorf("acme:%d: unterminated invariant %q", t.line, name)
		}
		if t.kind == tkPunct && t.text == ";" && depth == 0 {
			p.i++
			break
		}
		if t.kind == tkPunct && t.text == "{" {
			depth++
		}
		if t.kind == tkPunct && t.text == "}" {
			depth--
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if t.kind == tkString {
			sb.WriteString(strconv.Quote(t.text))
		} else {
			sb.WriteString(t.text)
		}
		p.i++
	}
	inv, err := constraint.NewInvariant(name, scope, sb.String())
	if err != nil {
		return err
	}
	d.Invariants = append(d.Invariants, inv)
	return nil
}
