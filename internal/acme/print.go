package acme

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
)

// Print renders a description in canonical ADL form. Parse(Print(d)) yields
// a model Equal to d.System with the same invariants, making the printer
// usable for persistence and for diffing model snapshots in tests.
func Print(d *Description) string {
	var b strings.Builder
	printSystem(&b, d.System, d.Invariants, 0, "system")
	return b.String()
}

// PrintSystem renders just the architecture (no invariants).
func PrintSystem(sys *model.System) string {
	var b strings.Builder
	printSystem(&b, sys, nil, 0, "system")
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func printSystem(b *strings.Builder, sys *model.System, invs []*constraint.Invariant, depth int, keyword string) {
	indent(b, depth)
	if keyword == "system" {
		b.WriteString("system ")
		b.WriteString(sys.Name())
		if sys.Type() != "" {
			b.WriteString(" : " + sys.Type())
		}
		b.WriteString(" = {\n")
	} else {
		b.WriteString("representation = {\n")
	}
	printProps(b, sys.Props(), depth+1)
	for _, c := range sys.Components() {
		printComponent(b, c, depth+1)
	}
	for _, c := range sys.Connectors() {
		printConnector(b, c, depth+1)
	}
	for _, a := range sys.Attachments() {
		indent(b, depth+1)
		fmt.Fprintf(b, "attachment %s to %s;\n", a.Port.QName(), a.Role.QName())
	}
	for _, inv := range invs {
		indent(b, depth+1)
		b.WriteString("invariant " + inv.Name)
		if inv.Scope != "" {
			b.WriteString(" on " + inv.Scope)
		}
		b.WriteString(" : " + inv.Expr.String() + ";\n")
	}
	indent(b, depth)
	b.WriteString("}\n")
}

func printProps(b *strings.Builder, props *model.Props, depth int) {
	names := props.Names()
	sort.Strings(names)
	for _, name := range names {
		v, _ := props.Get(name)
		indent(b, depth)
		switch x := v.(type) {
		case float64:
			fmt.Fprintf(b, "property %s = %s;\n", name, strconv.FormatFloat(x, 'g', -1, 64))
		case bool:
			fmt.Fprintf(b, "property %s = %t;\n", name, x)
		case string:
			fmt.Fprintf(b, "property %s = %s;\n", name, strconv.Quote(x))
		case []string:
			// String lists are not part of the surface syntax; they are
			// runtime-only. Skip.
		}
	}
}

func printComponent(b *strings.Builder, c *model.Component, depth int) {
	indent(b, depth)
	b.WriteString("component " + c.Name())
	if c.Type() != "" {
		b.WriteString(" : " + c.Type())
	}
	if c.Props().Len() == 0 && len(c.Ports()) == 0 && c.Rep == nil {
		b.WriteString(";\n")
		return
	}
	b.WriteString(" = {\n")
	printProps(b, c.Props(), depth+1)
	for _, p := range c.Ports() {
		indent(b, depth+1)
		b.WriteString("port " + p.Name())
		if p.Type() != "" {
			b.WriteString(" : " + p.Type())
		}
		if p.Props().Len() > 0 {
			b.WriteString(" = {\n")
			printProps(b, p.Props(), depth+2)
			indent(b, depth+1)
			b.WriteString("}\n")
		} else {
			b.WriteString(";\n")
		}
	}
	if c.Rep != nil {
		printSystem(b, c.Rep, nil, depth+1, "representation")
	}
	indent(b, depth)
	b.WriteString("}\n")
}

func printConnector(b *strings.Builder, c *model.Connector, depth int) {
	indent(b, depth)
	b.WriteString("connector " + c.Name())
	if c.Type() != "" {
		b.WriteString(" : " + c.Type())
	}
	if c.Props().Len() == 0 && len(c.Roles()) == 0 {
		b.WriteString(";\n")
		return
	}
	b.WriteString(" = {\n")
	printProps(b, c.Props(), depth+1)
	for _, r := range c.Roles() {
		indent(b, depth+1)
		b.WriteString("role " + r.Name())
		if r.Type() != "" {
			b.WriteString(" : " + r.Type())
		}
		if r.Props().Len() > 0 {
			b.WriteString(" = {\n")
			printProps(b, r.Props(), depth+2)
			indent(b, depth+1)
			b.WriteString("}\n")
		} else {
			b.WriteString(";\n")
		}
	}
	indent(b, depth)
	b.WriteString("}\n")
}
