// Package benchfix provides shared fixtures for the substrate benchmarks, so
// `go test -bench` (bench_test.go) and cmd/benchjson measure exactly the same
// workload — if the fixture changes, both change together.
package benchfix

import (
	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// ReflowStar builds the BenchmarkMaxMinReflow fixture — a 10-host star with
// 100 long-lived crossing flows on 10 Mbps access links — and returns the op
// the benchmark loop applies: the i-th background-load mutation on the first
// access link, which re-solves the (single) region those flows share.
func ReflowStar() (op func(i int)) {
	k := sim.NewKernel()
	net := netsim.New(k)
	hosts := make([]netsim.NodeID, 10)
	r := net.AddRouter("r")
	for i := range hosts {
		hosts[i] = net.AddHost(string(rune('a' + i)))
		net.Connect(hosts[i], r, 10e6, 1e-3)
	}
	for i := 0; i < 100; i++ {
		net.StartTransfer(hosts[i%10], hosts[(i+1)%10], 1e12, "x", nil)
	}
	return func(i int) { net.SetBackgroundBoth(0, float64(i%10)*1e5) }
}
