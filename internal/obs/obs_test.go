package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func fixedClock(t *float64) func() float64 { return func() float64 { return *t } }

func TestNilTracerIsDisabledAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must be disabled")
	}
	if id := tr.Instant(KindProbeSample, 0, "a", "x", 1, 2); id != 0 {
		t.Fatalf("nil Instant returned %d", id)
	}
	if id := tr.Begin(KindDrain, 0, "a", "x", 0, 0); id != 0 {
		t.Fatalf("nil Begin returned %d", id)
	}
	tr.EndSpan(1)
	tr.KernelEvent(5)
	tr.RecordPhase("a", PhaseDetect, 1)
	if tr.Len() != 0 || tr.Spans() != nil || tr.PhasesFor("a") != nil || tr.KernelBuckets() != nil {
		t.Fatal("nil tracer leaked state")
	}
	if _, ok := tr.Ancestor(1, KindProbeSample); ok {
		t.Fatal("nil Ancestor found something")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil chrome export is not JSON: %v", err)
	}
}

func TestSpanTreeAndAncestor(t *testing.T) {
	now := 0.0
	tr := New(fixedClock(&now))
	probe := tr.Instant(KindProbeSample, 0, "app00", "C1", 3.5, 0)
	now = 1
	upd := tr.Instant(KindGaugeUpdate, probe, "app00", "latency:C1", 3.5, 0)
	now = 2
	rep := tr.Instant(KindGaugeReport, upd, "app00", "latency:C1", 3.5, 0)
	now = 3
	viol := tr.Instant(KindViolation, rep, "app00", "C1/latency", 3.5, 2)

	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	sp, ok := tr.Get(viol)
	if !ok || sp.Kind != KindViolation || sp.Parent != rep || sp.Start != 3 {
		t.Fatalf("Get(viol) = %+v ok=%v", sp, ok)
	}
	anc, ok := tr.Ancestor(viol, KindProbeSample)
	if !ok || anc.ID != probe {
		t.Fatalf("Ancestor(viol, probe) = %+v ok=%v", anc, ok)
	}
	// Ancestor excludes the span itself.
	if _, ok := tr.Ancestor(probe, KindProbeSample); ok {
		t.Fatal("Ancestor matched the span itself")
	}
	if n := tr.CountKind(KindGaugeUpdate); n != 1 {
		t.Fatalf("CountKind(gauge.update) = %d", n)
	}
	// A forward/bogus parent is clamped to root rather than recorded.
	bogus := tr.Instant(KindVerdict, SpanID(99), "app00", "unhealthy", 1, 0)
	if sp, _ := tr.Get(bogus); sp.Parent != 0 {
		t.Fatalf("bogus parent kept: %d", sp.Parent)
	}
}

func TestBeginEndSpan(t *testing.T) {
	now := 10.0
	tr := New(fixedClock(&now))
	d := tr.Begin(KindDrain, 0, "app00", "drain", 0, 0)
	if sp, _ := tr.Get(d); sp.End != -1 {
		t.Fatalf("open span End = %v", sp.End)
	}
	now = 25
	tr.EndSpan(d)
	sp, _ := tr.Get(d)
	if sp.End != 25 {
		t.Fatalf("End = %v, want 25", sp.End)
	}
	// Double-close is a no-op.
	now = 40
	tr.EndSpan(d)
	if sp, _ := tr.Get(d); sp.End != 25 {
		t.Fatalf("double EndSpan moved End to %v", sp.End)
	}
	tr.EndSpan(999) // unknown: no-op
}

func TestKernelBuckets(t *testing.T) {
	now := 0.0
	tr := New(fixedClock(&now))
	tr.KernelEvent(0)
	tr.KernelEvent(9.99)
	tr.KernelEvent(10)
	tr.KernelEvent(35)
	b := tr.KernelBuckets()
	if len(b) != 4 || b[0] != 2 || b[1] != 1 || b[2] != 0 || b[3] != 1 {
		t.Fatalf("buckets = %v", b)
	}
}

func TestPhases(t *testing.T) {
	now := 0.0
	tr := New(fixedClock(&now))
	tr.RecordPhase("b", PhaseDetect, 12)
	tr.RecordPhase("a", PhaseDetect, 8)
	tr.RecordPhase("b", PhaseDrain, 30)
	tr.RecordPhase("b", PhaseDetect, 4)

	if apps := tr.PhaseApps(); len(apps) != 2 || apps[0] != "b" || apps[1] != "a" {
		t.Fatalf("PhaseApps = %v", apps)
	}
	ps := tr.PhasesFor("b")
	if ps == nil || ps.Dist(PhaseDetect).N() != 2 || ps.Dist(PhaseDrain).N() != 1 {
		t.Fatalf("phases for b: %+v", ps)
	}
	if got := ps.Dist(PhaseDetect).Percentile(50); got != 4 {
		t.Fatalf("p50 detect = %v, want 4", got)
	}
	if tr.PhasesFor("missing") != nil {
		t.Fatal("PhasesFor(missing) != nil")
	}
	merged := &PhaseSet{}
	merged.Merge(tr.PhasesFor("a"))
	merged.Merge(tr.PhasesFor("b"))
	if merged.Dist(PhaseDetect).N() != 3 || merged.Empty() {
		t.Fatalf("merged detect N = %d", merged.Dist(PhaseDetect).N())
	}
	if !new(PhaseSet).Empty() {
		t.Fatal("zero PhaseSet not empty")
	}
	// Negative samples and out-of-range phases are dropped, not recorded.
	tr.RecordPhase("a", PhaseDecide, -1)
	tr.RecordPhase("a", NumPhases, 1)
	if tr.PhasesFor("a").Dist(PhaseDecide).N() != 0 {
		t.Fatal("negative sample recorded")
	}
}

func buildSampleTrace() *Tracer {
	now := 0.0
	tr := New(fixedClock(&now))
	probe := tr.Instant(KindProbeSample, 0, "app00", "C1", 3.5, 0)
	now = 2
	rep := tr.Instant(KindGaugeReport, probe, "app00", "latency:C1", 3.5, 0)
	now = 5
	dec := tr.Instant(KindMigrateDecide, rep, "app00", "ranked", -0.2, 0.9)
	drain := tr.Begin(KindDrain, dec, "app00", "drain", 0, 0)
	now = 20
	tr.EndSpan(drain)
	tr.Instant(KindRegionHealth, 0, "", "region3", 0.8, 9.5e6)
	tr.Begin(KindRecover, dec, "app00", "recover", 0, 0) // left open
	tr.KernelEvent(3)
	tr.KernelEvent(14)
	return tr
}

func TestWriteJSONL(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != tr.Len() {
		t.Fatalf("%d lines for %d spans", len(lines), tr.Len())
	}
	for _, line := range lines {
		var sp jsonlSpan
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if sp.End < sp.Start {
			t.Fatalf("unclamped open span: %+v", sp)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	var phs []string
	cats := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		ph, _ := ev["ph"].(string)
		phs = append(phs, ph)
		if cat, ok := ev["cat"].(string); ok {
			cats[cat]++
		}
	}
	for _, want := range []string{"M", "X", "i", "C", "s", "f"} {
		found := false
		for _, ph := range phs {
			if ph == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q event in chrome export", want)
		}
	}
	if cats["migrate.decide"] == 0 || cats["region.health"] == 0 || cats["flow"] == 0 {
		t.Fatalf("missing categories: %v", cats)
	}

	// Same trace exports byte-identically (determinism).
	var buf2 bytes.Buffer
	if err := buildSampleTrace().WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome export is not deterministic")
	}
}
