// Trace export: JSONL for programmatic consumers, Chrome trace_event JSON
// for timeline viewers (chrome://tracing, Perfetto). Export runs after the
// simulation, so it may allocate freely; only recording is hot-path code.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonlSpan is the JSONL wire form of one span.
type jsonlSpan struct {
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	Kind   string  `json:"kind"`
	App    string  `json:"app,omitempty"`
	Name   string  `json:"name,omitempty"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	V1     float64 `json:"v1,omitempty"`
	V2     float64 `json:"v2,omitempty"`
}

// WriteJSONL writes one JSON object per span, in emission order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for i := range t.spans {
		sp := &t.spans[i]
		end := sp.End
		if end < sp.Start {
			end = sp.Start // still open at export: clamp
		}
		if err := enc.Encode(jsonlSpan{
			ID: uint64(sp.ID), Parent: uint64(sp.Parent), Kind: sp.Kind.String(),
			App: sp.App, Name: sp.Name, Start: sp.Start, End: end,
			V1: sp.V1, V2: sp.V2,
		}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record. Virtual seconds map to trace
// microseconds, so a 900 s scenario renders as a 900 ms timeline.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track (tid) layout within each application's process row.
const (
	tidMonitoring = 1 // probe samples, gauge updates, reports, model updates
	tidRepair     = 2 // violations, repair decisions/tactics/ops, alerts
	tidMigration  = 3 // verdicts, migration decide/reserve/drain/cutover/recover
)

func tidFor(k Kind) int {
	switch k {
	case KindProbeSample, KindGaugeUpdate, KindGaugeReport, KindModelUpdate, KindMessage:
		return tidMonitoring
	case KindViolation, KindRepairDecide, KindTactic, KindOp, KindRepair, KindAlert:
		return tidRepair
	default:
		return tidMigration
	}
}

func usec(t float64) int64 { return int64(t*1e6 + 0.5) }

// WriteChromeTrace writes the span tree in Chrome trace_event JSON. Each
// application becomes a process row with monitoring/repair/migration thread
// tracks; duration spans are complete ("X") events, instants are thread
// instants ("i"), parent links become flow arrows ("s"/"f"), and region
// health plus kernel event rate become counter ("C") tracks on the fleet
// process.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}

	// Process rows: pid 1 is the fleet scope, applications follow in
	// first-span order.
	const fleetPid = 1
	pidOf := map[string]int{"": fleetPid}
	var events []chromeEvent
	meta := func(pid int, name string) {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		for tid, tname := range [...]string{
			tidMonitoring: "monitoring", tidRepair: "repair", tidMigration: "migration",
		} {
			if tname == "" {
				continue
			}
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": tname},
			})
		}
	}
	meta(fleetPid, "fleet")

	for i := range t.spans {
		sp := &t.spans[i]
		pid, ok := pidOf[sp.App]
		if !ok {
			pid = fleetPid + len(pidOf)
			pidOf[sp.App] = pid
			meta(pid, sp.App)
		}
		if sp.Kind == KindRegionHealth {
			events = append(events, chromeEvent{
				Name: sp.Name, Cat: sp.Kind.String(), Ph: "C",
				Ts: usec(sp.Start), Pid: fleetPid,
				Args: map[string]any{"score": sp.V1, "bw": sp.V2},
			})
			continue
		}
		tid := tidFor(sp.Kind)
		args := map[string]any{
			"span": uint64(sp.ID), "parent": uint64(sp.Parent),
			"v1": sp.V1, "v2": sp.V2,
		}
		end := sp.End
		if end < sp.Start {
			end = sp.Start
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Kind.String(),
			Ts: usec(sp.Start), Pid: pid, Tid: tid, Args: args,
		}
		if end > sp.Start {
			ev.Ph = "X"
			ev.Dur = usec(end) - usec(sp.Start)
			if ev.Dur < 1 {
				ev.Dur = 1
			}
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		events = append(events, ev)

		// Parent link as a flow arrow, drawn from the parent's location to
		// this span's start.
		if sp.Parent != 0 {
			if par, ok := t.Get(sp.Parent); ok {
				ppid := pidOf[par.App]
				if ppid == 0 {
					ppid = fleetPid
				}
				ptid := tidFor(par.Kind)
				if par.Kind == KindRegionHealth {
					ppid, ptid = fleetPid, tidMigration
				}
				events = append(events,
					chromeEvent{Name: "cause", Cat: "flow", Ph: "s",
						Ts: usec(par.Start), Pid: ppid, Tid: ptid, ID: uint64(sp.ID)},
					chromeEvent{Name: "cause", Cat: "flow", Ph: "f", BP: "e",
						Ts: usec(sp.Start), Pid: pid, Tid: tid, ID: uint64(sp.ID)},
				)
			}
		}
	}

	// Kernel event rate as a fleet-scope counter track.
	for i, n := range t.kernelBuckets {
		if n == 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name: "kernel.events", Cat: "kernel", Ph: "C",
			Ts:  usec(float64(i) * KernelBucketWidth),
			Pid: fleetPid, Args: map[string]any{"fired": n},
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: chrome trace export: %w", err)
	}
	return nil
}
