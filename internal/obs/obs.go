// Package obs is the deterministic observability plane: causal tracing and
// phase-latency metrics for the whole adaptation control loop.
//
// The paper's claim is a closed loop — monitor, detect, decide, repair — but
// summary tables only show *outcomes*. This package records *why*: every
// adaptation becomes a causal chain of typed spans (probe sample → gauge
// update → gauge report → model update → violation → repair decision →
// tactic/op → repair, and at fleet scale verdict → migration decision →
// reservation → drain → cutover → recovery), linked by parent IDs, stamped
// with virtual time from the simulation kernel. On top of the spans, a
// phase registry attributes each adaptation's latency to four phases
// (detection, decision, drain, recovery) per application, with percentile
// summaries surfaced in the fleet tables.
//
// Purity contract: a nil *Tracer is the disabled plane. Every emitting hook
// in the kernel, bus, gauges, manager and fleet guards on Enabled() (nil-safe)
// so a run with tracing off executes the exact same event sequence, allocates
// nothing extra on the monitoring hot path, and produces byte-identical
// summaries — the same retained-oracle discipline as PerAppMonitoring and
// LegacyTargeting, gated by tests and the benchjson trace-off gate.
//
// Determinism: the tracer reads time only from the injected clock (the
// kernel's virtual clock), never the wall clock, so same-seed runs produce
// identical span trees and identical phase distributions.
package obs

import "archadapt/internal/metrics"

// SpanID identifies one span within a Tracer. IDs are assigned densely from 1
// in emission order; 0 is "no span" (roots, or tracing disabled).
type SpanID uint64

// Kind is the span taxonomy: one constant per step of the control loop.
type Kind uint8

// Span kinds, in causal order through the two nested control loops. The
// monitoring kinds (ProbeSample..ModelUpdate) are emitted per message on the
// shared plane; the repair kinds by each application's core.Manager; the
// migration kinds by the fleet controller.
const (
	KindNone          Kind = iota
	KindProbeSample        // a probe observation published on the probe bus
	KindGaugeUpdate        // a gauge folding one probe sample into its window
	KindGaugeReport        // a gauge report published on the reporting bus
	KindModelUpdate        // the manager applying a report to the model
	KindViolation          // a constraint violation at a check tick
	KindRepairDecide       // the repair engine committing to a strategy
	KindTactic             // one tactic applied inside a repair decision
	KindOp                 // one committed model operation
	KindRepair             // the repair's runtime extent (incl. gauge churn)
	KindAlert              // human escalation (no tactic applied)
	KindVerdict            // a fleet unhealthy verdict for one app
	KindMigrateDecide      // the fleet committing to (or failing) a migration
	KindReserve            // the staged target reservation
	KindDrain              // the pause-and-drain extent
	KindCutover            // the re-placement instant
	KindRecover            // post-adaptation time back to healthy
	KindRegionHealth       // one region's health-index refresh (a counter)
	KindMessage            // any other bus message
)

var kindNames = [...]string{
	KindNone:          "none",
	KindProbeSample:   "probe.sample",
	KindGaugeUpdate:   "gauge.update",
	KindGaugeReport:   "gauge.report",
	KindModelUpdate:   "model.update",
	KindViolation:     "violation",
	KindRepairDecide:  "repair.decide",
	KindTactic:        "tactic",
	KindOp:            "op",
	KindRepair:        "repair",
	KindAlert:         "alert",
	KindVerdict:       "verdict",
	KindMigrateDecide: "migrate.decide",
	KindReserve:       "reserve",
	KindDrain:         "drain",
	KindCutover:       "cutover",
	KindRecover:       "recover",
	KindRegionHealth:  "region.health",
	KindMessage:       "message",
}

// String returns the kind's wire name (also the Chrome-trace category).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one recorded step of the control loop. Parent links spans into the
// causal tree; Parent is always a lower ID (parents are recorded before their
// children), so ancestor walks terminate. End equals Start for instantaneous
// spans and -1 while a duration span is still open.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   Kind
	// App is the owning application ("" for fleet-level spans).
	App string
	// Name identifies the subject: a client, gauge, strategy/subject pair,
	// region — whatever the kind observes.
	Name       string
	Start, End float64
	// V1/V2 carry the kind's values (latency, report value, streak length,
	// source/target health, region score/bandwidth).
	V1, V2 float64
}

// Phase is one of the four latency-attribution phases of an adaptation.
type Phase uint8

// The phases of one adaptation, at either loop level. Detection covers the
// monitoring pipeline (probe observation to first violation/verdict);
// decision the deliberation (first violation to committed repair, or streak
// start to migration decision); drain the disruptive extent (gauge churn, or
// client pause through cutover); recovery the settling time back to healthy.
const (
	PhaseDetect Phase = iota
	PhaseDecide
	PhaseDrain
	PhaseRecover
	NumPhases
)

var phaseNames = [...]string{"detect", "decide", "drain", "recover"}

// String returns the phase's display name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseSet holds one scope's (an application's, or the fleet's merged)
// phase-latency distributions, indexed by Phase.
type PhaseSet struct {
	D [NumPhases]metrics.Dist
}

// Dist returns the distribution for one phase.
func (s *PhaseSet) Dist(p Phase) *metrics.Dist { return &s.D[p] }

// Merge folds o's samples into s (fleet-wide aggregation).
func (s *PhaseSet) Merge(o *PhaseSet) {
	if o == nil {
		return
	}
	for i := range s.D {
		s.D[i].Merge(&o.D[i])
	}
}

// Empty reports whether no phase holds any sample.
func (s *PhaseSet) Empty() bool {
	for i := range s.D {
		if s.D[i].N() > 0 {
			return false
		}
	}
	return true
}

// KernelBucketWidth is the width in virtual seconds of the tracer's kernel
// event-rate buckets.
const KernelBucketWidth = 10.0

// Tracer records spans and phase samples for one run. A nil Tracer is the
// disabled plane: Enabled() is false and every method is a no-op, which is
// the single nil check the hot paths pay.
type Tracer struct {
	clock func() float64
	spans []Span

	phases   map[string]*PhaseSet
	phaseApp []string // insertion order, for deterministic iteration

	kernelBuckets []uint64
}

// New creates a tracer reading virtual time from clock (the simulation
// kernel's Now).
func New(clock func() float64) *Tracer {
	if clock == nil {
		panic("obs: New requires a clock")
	}
	return &Tracer{clock: clock, phases: map[string]*PhaseSet{}}
}

// Enabled reports whether the tracer records anything. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the recorded spans in emission order. The slice aliases the
// tracer's storage; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Get returns a span by ID.
func (t *Tracer) Get(id SpanID) (Span, bool) {
	if t == nil || id == 0 || int(id) > len(t.spans) {
		return Span{}, false
	}
	return t.spans[id-1], true
}

// Instant records an instantaneous span at the current virtual time and
// returns its ID (0 on a nil tracer).
func (t *Tracer) Instant(kind Kind, parent SpanID, app, name string, v1, v2 float64) SpanID {
	if t == nil {
		return 0
	}
	now := t.clock()
	return t.push(Span{Parent: parent, Kind: kind, App: app, Name: name,
		Start: now, End: now, V1: v1, V2: v2})
}

// Begin opens a duration span starting now; close it with EndSpan. An open
// span has End = -1.
func (t *Tracer) Begin(kind Kind, parent SpanID, app, name string, v1, v2 float64) SpanID {
	if t == nil {
		return 0
	}
	return t.push(Span{Parent: parent, Kind: kind, App: app, Name: name,
		Start: t.clock(), End: -1, V1: v1, V2: v2})
}

// EndSpan closes an open duration span at the current virtual time. Unknown
// or already-closed IDs are no-ops, so abort paths can close defensively.
func (t *Tracer) EndSpan(id SpanID) {
	if t == nil || id == 0 || int(id) > len(t.spans) {
		return
	}
	sp := &t.spans[id-1]
	if sp.End < sp.Start {
		sp.End = t.clock()
	}
}

func (t *Tracer) push(sp Span) SpanID {
	// Parents are recorded before children; a forward reference would break
	// ancestor-walk termination, so it is clamped to root.
	if sp.Parent > SpanID(len(t.spans)) {
		sp.Parent = 0
	}
	sp.ID = SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, sp)
	return sp.ID
}

// Ancestor walks the parent chain of id (excluding id itself) and returns the
// first span whose kind is in kinds.
func (t *Tracer) Ancestor(id SpanID, kinds ...Kind) (Span, bool) {
	if t == nil {
		return Span{}, false
	}
	cur, ok := t.Get(id)
	for ok && cur.Parent != 0 {
		cur, ok = t.Get(cur.Parent)
		if !ok {
			break
		}
		for _, k := range kinds {
			if cur.Kind == k {
				return cur, true
			}
		}
	}
	return Span{}, false
}

// CountKind returns how many recorded spans have the given kind.
func (t *Tracer) CountKind(k Kind) int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.spans {
		if t.spans[i].Kind == k {
			n++
		}
	}
	return n
}

// KernelEvent counts one fired kernel event at virtual time at into the
// event-rate buckets. Called from the kernel's fire hook, so it must stay
// allocation-free in the steady state (the bucket slice grows monotonically).
func (t *Tracer) KernelEvent(at float64) {
	if t == nil || at < 0 {
		return
	}
	idx := int(at / KernelBucketWidth)
	for idx >= len(t.kernelBuckets) {
		t.kernelBuckets = append(t.kernelBuckets, 0)
	}
	t.kernelBuckets[idx]++
}

// KernelBuckets returns fired-event counts per KernelBucketWidth of virtual
// time. The slice aliases tracer storage.
func (t *Tracer) KernelBuckets() []uint64 {
	if t == nil {
		return nil
	}
	return t.kernelBuckets
}

// RecordPhase adds one phase-latency sample for an application scope.
func (t *Tracer) RecordPhase(app string, p Phase, seconds float64) {
	if t == nil || p >= NumPhases || seconds < 0 {
		return
	}
	ps := t.phases[app]
	if ps == nil {
		ps = &PhaseSet{}
		t.phases[app] = ps
		t.phaseApp = append(t.phaseApp, app)
	}
	ps.D[p].Add(seconds)
}

// PhasesFor returns an application's phase distributions, or nil when the
// scope recorded no samples. The returned set aliases tracer storage.
func (t *Tracer) PhasesFor(app string) *PhaseSet {
	if t == nil {
		return nil
	}
	return t.phases[app]
}

// PhaseApps returns the scopes with recorded phase samples, in first-sample
// order (deterministic across same-seed runs).
func (t *Tracer) PhaseApps() []string {
	if t == nil {
		return nil
	}
	return t.phaseApp
}
