package constraint

import (
	"strings"
	"testing"
	"testing/quick"

	"archadapt/internal/model"
	"archadapt/internal/sim"
)

// testSystem builds a small client/server system with properties set.
func testSystem() *model.System {
	s := model.NewSystem("sys", "ClientServerFam")
	s.Props().Set("maxLatency", 2.0)
	s.Props().Set("maxServerLoad", 6.0)
	s.Props().Set("minBandwidth", 10000.0)

	g1 := s.AddComponent("ServerGrp1", "ServerGroupT")
	g1.AddPort("provide", "ProvideT")
	g1.Props().Set("load", 8.0) // overloaded
	g2 := s.AddComponent("ServerGrp2", "ServerGroupT")
	g2.AddPort("provide", "ProvideT")
	g2.Props().Set("load", 1.0)

	c1 := s.AddComponent("User1", "ClientT")
	c1.AddPort("request", "RequestT")
	c1.Props().Set("averageLatency", 3.5) // violating
	c2 := s.AddComponent("User2", "ClientT")
	c2.AddPort("request", "RequestT")
	c2.Props().Set("averageLatency", 0.5)

	conn := s.AddConnector("Req1", "ReqConnT")
	conn.AddRole("server", "ServerRoleT")
	r1 := conn.AddRole("cli1", "ClientRoleT")
	r1.Props().Set("bandwidth", 5000.0) // below minBandwidth
	r2 := conn.AddRole("cli2", "ClientRoleT")
	r2.Props().Set("bandwidth", 5e6)
	_ = s.Attach(g1.Port("provide"), conn.Role("server"))
	_ = s.Attach(c1.Port("request"), r1)
	_ = s.Attach(c2.Port("request"), r2)
	return s
}

func eval(t *testing.T, src string, env *Env) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmeticAndPrecedence(t *testing.T) {
	env := NewEnv(nil)
	cases := map[string]float64{
		"1 + 2 * 3":   7,
		"(1 + 2) * 3": 9,
		"10 / 4":      2.5,
		"2 - 3 - 4":   -5,
		"-2 * 3":      -6,
		"1.5e2 + 0.5": 150.5,
	}
	for src, want := range cases {
		if v := eval(t, src, env); v.Kind != KNum || v.Num != want {
			t.Errorf("%q = %s, want %v", src, v, want)
		}
	}
}

func TestComparisonsAndBooleans(t *testing.T) {
	env := NewEnv(nil)
	cases := map[string]bool{
		"1 < 2":             true,
		"2 <= 2":            true,
		"3 > 4":             false,
		"1 == 1 and 2 == 2": true,
		"1 == 2 or 2 == 2":  true,
		"not (1 == 2)":      true,
		"!(1 == 1)":         false,
		`"a" == "a"`:        true,
		`"a" != "b"`:        true,
		"true and false":    false,
		"nil == nil":        true,
	}
	for src, want := range cases {
		if v := eval(t, src, env); v.Kind != KBool || v.Bool != want {
			t.Errorf("%q = %s, want %v", src, v, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// `or` must not evaluate the right side when left is true — the right
	// side here would be an unbound-identifier error.
	env := NewEnv(nil)
	if v := eval(t, "true or undefinedName", env); !v.Bool {
		t.Fatal("short-circuit or failed")
	}
	if v := eval(t, "false and undefinedName", env); v.Bool {
		t.Fatal("short-circuit and failed")
	}
}

func TestPropertyRefs(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	if v := eval(t, "self.maxLatency", env); v.Num != 2.0 {
		t.Fatalf("self.maxLatency = %s", v)
	}
	env.Bind("cli", Elem(s.Component("User1")))
	if v := eval(t, "cli.averageLatency", env); v.Num != 3.5 {
		t.Fatalf("cli.averageLatency = %s", v)
	}
	if v := eval(t, "cli.name", env); v.Str != "User1" {
		t.Fatalf("cli.name = %s", v)
	}
	if v := eval(t, "cli.type", env); v.Str != "ClientT" {
		t.Fatalf("cli.type = %s", v)
	}
}

func TestImplicitItResolution(t *testing.T) {
	s := testSystem()
	env := NewEnv(s).Bind("it", Elem(s.Component("User1")))
	// averageLatency comes from `it`, maxLatency falls through to the system.
	if v := eval(t, "averageLatency <= maxLatency", env); v.Bool {
		t.Fatal("User1 violates the latency bound; expression said otherwise")
	}
	env2 := NewEnv(s).Bind("it", Elem(s.Component("User2")))
	if v := eval(t, "averageLatency <= maxLatency", env2); !v.Bool {
		t.Fatal("User2 satisfies the latency bound; expression said otherwise")
	}
}

func TestSelectAndSize(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	v := eval(t, "select g : ServerGroupT in self.Components | g.load > maxServerLoad", env)
	if v.Kind != KSet || len(v.Set) != 1 || v.Set[0].Elem.Name() != "ServerGrp1" {
		t.Fatalf("select = %s", v)
	}
	n := eval(t, "size(select g : ServerGroupT in self.Components | g.load > maxServerLoad)", env)
	if n.Num != 1 {
		t.Fatalf("size = %s", n)
	}
}

func TestSelectOneDeterministic(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	v := eval(t, "select one c : ClientT in self.Components | c.averageLatency > 0", env)
	if v.Kind != KElem || v.Elem.Name() != "User1" {
		t.Fatalf("select one = %s, want User1 (name order)", v)
	}
	nilv := eval(t, "select one c : ClientT in self.Components | c.averageLatency > 100", env)
	if nilv.Kind != KNil {
		t.Fatalf("empty select one = %s, want nil", nilv)
	}
}

func TestExistsForall(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	if v := eval(t, "exists c : ClientT in self.Components | c.averageLatency > maxLatency", env); !v.Bool {
		t.Fatal("exists should find User1")
	}
	if v := eval(t, "forall c : ClientT in self.Components | c.averageLatency <= maxLatency", env); v.Bool {
		t.Fatal("forall should fail on User1")
	}
	if v := eval(t, "forall g : ServerGroupT in self.Components | g.load > 0", env); !v.Bool {
		t.Fatal("forall over groups should hold")
	}
}

func TestConnectedAttachedFunctions(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	env.Bind("cli", Elem(s.Component("User1")))
	env.Bind("grp", Elem(s.Component("ServerGrp1")))
	env.Bind("grp2", Elem(s.Component("ServerGrp2")))
	if v := eval(t, "connected(cli, grp)", env); !v.Bool {
		t.Fatal("connected(cli, grp)")
	}
	if v := eval(t, "connected(cli, grp2)", env); v.Bool {
		t.Fatal("connected(cli, grp2) should be false")
	}
	// Figure 5 line 20 form, inside a quantifier.
	v := eval(t, "select g : ServerGroupT in self.Components | connected(g, cli) and g.load > maxServerLoad", env)
	if len(v.Set) != 1 {
		t.Fatalf("overloaded groups connected to cli = %s", v)
	}
	env.Bind("p", Elem(s.Component("User1").Port("request")))
	env.Bind("r", Elem(s.Connector("Req1").Role("cli1")))
	if v := eval(t, "attached(p, r)", env); !v.Bool {
		t.Fatal("attached(p, r)")
	}
	if v := eval(t, "attached(r, p)", env); !v.Bool {
		t.Fatal("attached should accept either order")
	}
	// exists over ports, as in Figure 5 lines 7-8.
	env.Bind("badRole", Elem(s.Connector("Req1").Role("cli1")))
	if v := eval(t, "exists p : RequestT in cli.Ports | attached(p, badRole)", env); !v.Bool {
		t.Fatal("Figure 5 exists-form failed")
	}
}

func TestCustomFunction(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	env.Funcs["findGoodSGrp"] = func(args []Value) (Value, error) {
		return Elem(s.Component("ServerGrp2")), nil
	}
	env.Bind("cli", Elem(s.Component("User1")))
	if v := eval(t, "findGoodSGrp(cli, minBandwidth) != nil", env); !v.Bool {
		t.Fatal("custom function")
	}
}

func TestEvalErrors(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	bad := []string{
		"undefinedVar + 1",
		`self.noSuchProp`,
		`1 < "a"`,
		"1 / 0",
		"size(1)",
		"connected(1, 2)",
		"unknownFn()",
		"exists x in 5 | true",
	}
	for _, src := range bad {
		e, err := Parse(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := Eval(e, env); err == nil {
			t.Errorf("%q should fail to evaluate", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1 +",
		"(1",
		"a = b",
		"exists | x",
		"select one in x | y",
		"a..b",
		`"unterminated`,
		"1 2",
		"@",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
}

func TestInvariantScopedCheck(t *testing.T) {
	s := testSystem()
	reg := NewRegistry()
	reg.Add(MustInvariant("latency", "ClientT", "averageLatency <= maxLatency"))
	reg.Add(MustInvariant("bandwidth", "ClientRoleT", "bandwidth >= minBandwidth"))
	reg.Add(MustInvariant("load", "ServerGroupT", "load <= maxServerLoad"))
	vs := reg.CheckAll(s)
	if len(vs) != 3 {
		t.Fatalf("violations=%d (%v), want 3", len(vs), vs)
	}
	subjects := map[string]bool{}
	for _, v := range vs {
		subjects[v.Subject.Name()] = true
	}
	for _, want := range []string{"User1", "cli1", "ServerGrp1"} {
		if !subjects[want] {
			t.Errorf("missing violation subject %s (got %v)", want, vs)
		}
	}
}

func TestInvariantSkipIncomplete(t *testing.T) {
	s := testSystem()
	// User3 has no averageLatency property yet (gauge not reporting).
	c := s.AddComponent("User3", "ClientT")
	c.AddPort("request", "RequestT")
	reg := NewRegistry()
	reg.Add(MustInvariant("latency", "ClientT", "averageLatency <= maxLatency"))
	vs := reg.CheckAll(s)
	for _, v := range vs {
		if v.Subject.Name() == "User3" {
			t.Fatal("incomplete element should be skipped")
		}
	}
	reg.SkipIncomplete = false
	vs = reg.CheckAll(s)
	found := false
	for _, v := range vs {
		if v.Subject != nil && v.Subject.Name() == "User3" && v.Err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("strict mode should surface evaluation errors")
	}
}

func TestSystemScopedInvariant(t *testing.T) {
	s := testSystem()
	inv := MustInvariant("fewGroups", "", "size(select g : ServerGroupT in self.Components | g.load > 0) <= 2")
	if vs := inv.Check(s, nil, true); len(vs) != 0 {
		t.Fatalf("unexpected violations %v", vs)
	}
	inv2 := MustInvariant("noClients", "", "size(select c : ClientT in self.Components | true) == 0")
	if vs := inv2.Check(s, nil, true); len(vs) != 1 || vs[0].Subject != nil {
		t.Fatalf("want one system violation, got %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	s := testSystem()
	inv := MustInvariant("latency", "ClientT", "averageLatency <= maxLatency")
	vs := inv.Check(s, nil, true)
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
	if got := vs[0].String(); !strings.Contains(got, "latency") || !strings.Contains(got, "User1") {
		t.Fatalf("violation string %q", got)
	}
}

// Property: parse(print(e)) == print(e) — printing is a fixpoint for parsed
// expressions.
func TestPrintParseFixpoint(t *testing.T) {
	srcs := []string{
		"averageLatency <= maxLatency",
		"size(loadedServerGroups) == 0",
		"exists p : RequestT in cli.Ports | attached(p, badRole)",
		"select g : ServerGroupT in self.Components | connected(g, cli) and g.load > maxServerLoad",
		"select one s : ServerGroupT in self.Components | connected(cli, s)",
		"role.bandwidth >= minBandwidth or fallback == true",
		"not (a == b) and c < d + 2 * e",
		"-x + 3 > 0",
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := e1.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", printed, src, err)
		}
		if e2.String() != printed {
			t.Fatalf("fixpoint failed: %q -> %q -> %q", src, printed, e2.String())
		}
	}
}

// Property: randomly generated expressions either fail to parse, or print to
// a form that reparses to the same canonical string.
func TestRandomExprFixpoint(t *testing.T) {
	var gen func(rng *sim.Rand, depth int) string
	gen = func(rng *sim.Rand, depth int) string {
		if depth <= 0 {
			switch rng.Intn(4) {
			case 0:
				return "x"
			case 1:
				return "3.5"
			case 2:
				return "true"
			default:
				return "a.b"
			}
		}
		switch rng.Intn(6) {
		case 0:
			return "(" + gen(rng, depth-1) + " + " + gen(rng, depth-1) + ")"
		case 1:
			return "(" + gen(rng, depth-1) + " <= " + gen(rng, depth-1) + ")"
		case 2:
			return "(" + gen(rng, depth-1) + " and " + gen(rng, depth-1) + ")"
		case 3:
			return "size(f(" + gen(rng, depth-1) + "))"
		case 4:
			return "exists v : T in self.Components | " + gen(rng, depth-1)
		default:
			return "!(" + gen(rng, depth-1) + ")"
		}
	}
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		src := gen(rng, 3)
		e, err := Parse(src)
		if err != nil {
			return true
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			return false
		}
		return e2.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
