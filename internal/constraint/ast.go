package constraint

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed constraint expression. Expressions print back to a
// canonical source form (used by the ADL unparser), so parse∘print is a
// fixpoint.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Lit is a literal: number, string, boolean, or nil.
type Lit struct{ Val Value }

// Ref is a (possibly dotted) reference: `averageLatency`,
// `self.Components`, `role.bandwidth`.
type Ref struct {
	Parts []string
	// errUnbound caches the unbound-identifier error for this node: its text
	// depends only on Parts[0], and the warm-up phase (gauges not yet
	// reporting) hits it on every check tick, so allocating it per
	// evaluation is measurable fleet-wide.
	errUnbound error
}

// Unary is !x or -x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation (arithmetic, comparison, and/or).
type Binary struct {
	Op   string
	L, R Expr
}

// Call is a function invocation: size(s), connected(a, b), attached(p, r).
type Call struct {
	Fn   string
	Args []Expr
}

// Quant is a first-order form over a set:
//
//	exists p : RequestT in cli.Ports | pred
//	forall s : ServerT in grp.Reps | pred
//	select sgrp : ServerGroupT in self.Components | pred   (yields a set)
//	select one c : ClientT in self.Components | pred       (yields one elem or nil)
type Quant struct {
	Mode string // "exists", "forall", "select"
	One  bool   // select one
	Var  string
	Type string // element type filter; empty means untyped
	Dom  Expr
	Pred Expr
}

func (*Lit) isExpr()    {}
func (*Ref) isExpr()    {}
func (*Unary) isExpr()  {}
func (*Binary) isExpr() {}
func (*Call) isExpr()   {}
func (*Quant) isExpr()  {}

func (e *Lit) String() string {
	if e.Val.Kind == KStr {
		return strconv.Quote(e.Val.Str)
	}
	return e.Val.String()
}

func (e *Ref) String() string { return strings.Join(e.Parts, ".") }

func (e *Unary) String() string {
	if e.Op == "!" {
		return "!" + parenthesize(e.X)
	}
	return e.Op + parenthesize(e.X)
}

func (e *Binary) String() string {
	return parenthesize(e.L) + " " + e.Op + " " + parenthesize(e.R)
}

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(args, ", ") + ")"
}

func (e *Quant) String() string {
	mode := e.Mode
	if e.One {
		mode += " one"
	}
	typ := ""
	if e.Type != "" {
		typ = " : " + e.Type
	}
	return mode + " " + e.Var + typ + " in " + e.Dom.String() + " | " + e.Pred.String()
}

// parenthesize wraps compound sub-expressions so the canonical form is
// unambiguous without tracking precedence. Unary must be wrapped too: `!`
// binds looser than arithmetic in this grammar, so `!a + b` and `(!a) + b`
// are different expressions.
func parenthesize(e Expr) string {
	switch e.(type) {
	case *Binary, *Quant, *Unary:
		return "(" + e.String() + ")"
	}
	return e.String()
}
