package constraint

import (
	"testing"
)

func TestUnionContainsHasProperty(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	v := eval(t, "size(union(select c : ClientT in self.Components | true, select g : ServerGroupT in self.Components | true))", env)
	if v.Num != 4 {
		t.Fatalf("union size=%v, want 4 (2 clients + 2 groups)", v)
	}
	env.Bind("cli", Elem(s.Component("User1")))
	if v := eval(t, "contains(select c : ClientT in self.Components | true, cli)", env); !v.Bool {
		t.Fatal("contains should find User1")
	}
	env.Bind("grp", Elem(s.Component("ServerGrp1")))
	if v := eval(t, "contains(select c : ClientT in self.Components | true, grp)", env); v.Bool {
		t.Fatal("contains should not find a group among clients")
	}
	if v := eval(t, `hasProperty(cli, "averageLatency")`, env); !v.Bool {
		t.Fatal("hasProperty true case")
	}
	if v := eval(t, `hasProperty(cli, "nope")`, env); v.Bool {
		t.Fatal("hasProperty false case")
	}
}

func TestNestedQuantifiers(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	// For every client there exists a request port — the Fig. 5 line 6-8
	// shape, nested.
	v := eval(t, "forall c : ClientT in self.Components | exists p : RequestT in c.Ports | true", env)
	if !v.Bool {
		t.Fatal("nested quantifier failed")
	}
	// select inside select: groups connected to some violating client.
	v = eval(t, `size(select g : ServerGroupT in self.Components |
        size(select c : ClientT in self.Components | connected(g, c) and c.averageLatency > maxLatency) > 0) == 1`, env)
	if !v.Bool {
		t.Fatal("nested select failed")
	}
}

func TestValueStringForms(t *testing.T) {
	s := testSystem()
	cases := map[string]Value{
		"nil":    Nil(),
		"3.5":    Num(3.5),
		"true":   Bool(true),
		`"x"`:    Str("x"),
		"{3, 4}": Set([]Value{Num(3), Num(4)}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String()=%q, want %q", got, want)
		}
	}
	ev := Elem(s.Component("User1"))
	if got := ev.String(); got != "<component User1>" {
		t.Errorf("elem string %q", got)
	}
}

func TestEqualMixedKinds(t *testing.T) {
	if equal(Num(1), Str("1")) {
		t.Fatal("cross-kind equality")
	}
	if !equal(Set([]Value{Num(1)}), Set([]Value{Num(1)})) {
		t.Fatal("set equality")
	}
	if equal(Set([]Value{Num(1)}), Set([]Value{Num(2)})) {
		t.Fatal("set inequality")
	}
	if equal(Set([]Value{Num(1)}), Set([]Value{Num(1), Num(2)})) {
		t.Fatal("set length inequality")
	}
}

func TestRolesAndRepsPseudoProps(t *testing.T) {
	s := testSystem()
	env := NewEnv(s)
	env.Bind("conn", Elem(s.Connector("Req1")))
	if v := eval(t, "size(select r : ClientRoleT in conn.Roles | true)", env); v.Num != 2 {
		t.Fatalf("roles=%v", v)
	}
	// Reps on a component without a representation yields the empty set.
	env.Bind("grp", Elem(s.Component("ServerGrp1")))
	if v := eval(t, "size(grp.Reps)", env); v.Num != 0 {
		t.Fatalf("reps=%v", v)
	}
}
