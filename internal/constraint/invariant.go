package constraint

import (
	"fmt"

	"archadapt/internal/model"
)

// Invariant is a named constraint evaluated over the architecture. When
// Scope names an element type (e.g. "ClientT" or "ClientRoleT"), the
// invariant is checked once per element of that type with `it` bound to the
// element; with an empty Scope it is checked once against the system.
//
// This is the runtime form of the paper's
//
//	invariant r : averageLatency <= maxLatency  !→  fixLatency(r)
//
// — the association to a repair strategy lives in the repair package.
type Invariant struct {
	Name  string
	Scope string
	Expr  Expr
}

// NewInvariant parses src into an invariant.
func NewInvariant(name, scope, src string) (*Invariant, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("invariant %s: %w", name, err)
	}
	return &Invariant{Name: name, Scope: scope, Expr: e}, nil
}

// MustInvariant is NewInvariant that panics on parse errors.
func MustInvariant(name, scope, src string) *Invariant {
	inv, err := NewInvariant(name, scope, src)
	if err != nil {
		panic(err)
	}
	return inv
}

// Violation reports one failed invariant instance.
type Violation struct {
	Invariant *Invariant
	// Subject is the element the invariant was checked against (nil for
	// system-scoped invariants).
	Subject model.Element
	// Err is non-nil when the expression itself failed to evaluate (missing
	// property, type error); the paper treats these as model errors.
	Err error
}

// String renders the violation.
func (v Violation) String() string {
	subj := "system"
	if v.Subject != nil {
		subj = fmt.Sprintf("%s %s", v.Subject.Kind(), v.Subject.Name())
	}
	if v.Err != nil {
		return fmt.Sprintf("%s on %s: evaluation error: %v", v.Invariant.Name, subj, v.Err)
	}
	return fmt.Sprintf("%s violated on %s", v.Invariant.Name, subj)
}

// scopeElements enumerates the elements an invariant quantifies over.
func scopeElements(sys *model.System, scope string) []model.Element {
	return scopeElementsInto(nil, sys, scope)
}

// scopeElementsInto appends the scope's elements to dst — the reusable-
// scratch form for per-tick checking.
func scopeElementsInto(dst []model.Element, sys *model.System, scope string) []model.Element {
	out := dst
	for _, c := range sys.Components() {
		if c.Type() == scope {
			out = append(out, c)
		}
		for _, p := range c.Ports() {
			if p.Type() == scope {
				out = append(out, p)
			}
		}
	}
	for _, c := range sys.Connectors() {
		if c.Type() == scope {
			out = append(out, c)
		}
		for _, r := range c.Roles() {
			if r.Type() == scope {
				out = append(out, r)
			}
		}
	}
	return out
}

// Check evaluates the invariant over sys and returns violations. Elements
// lacking the referenced properties are skipped silently only when
// `SkipIncomplete` asks for it (gauges may not have reported yet); otherwise
// evaluation errors surface as violations with Err set.
func (inv *Invariant) Check(sys *model.System, funcs map[string]func([]Value) (Value, error), skipIncomplete bool) []Violation {
	env := NewEnv(sys)
	if funcs != nil {
		env.Funcs = funcs
	}
	if inv.Scope == "" {
		ok, err := EvalBool(inv.Expr, env)
		if err != nil {
			if skipIncomplete {
				return nil
			}
			return []Violation{{Invariant: inv, Err: err}}
		}
		if !ok {
			return []Violation{{Invariant: inv}}
		}
		return nil
	}
	var out []Violation
	for _, el := range scopeElements(sys, inv.Scope) {
		ok, err := EvalBool(inv.Expr, env.child("it", Elem(el)))
		if err != nil {
			if skipIncomplete {
				continue
			}
			out = append(out, Violation{Invariant: inv, Subject: el, Err: err})
			continue
		}
		if !ok {
			out = append(out, Violation{Invariant: inv, Subject: el})
		}
	}
	return out
}

// Registry is an ordered collection of invariants checked together.
type Registry struct {
	invs  []*Invariant
	Funcs map[string]func([]Value) (Value, error)
	// SkipIncomplete suppresses violations caused by missing properties —
	// the normal mode while monitoring is still warming up.
	SkipIncomplete bool

	// Reusable evaluation scratch: CheckAll runs on every control-loop tick
	// of every managed application, so the environments and the scope slice
	// are kept across calls instead of being rebuilt. env/itEnv are bound to
	// envSys and rebuilt only if CheckAll sees a different system.
	envSys  *model.System
	env     *Env
	itEnv   *Env
	scratch []model.Element
}

// NewRegistry returns an empty registry with SkipIncomplete set.
func NewRegistry() *Registry {
	return &Registry{Funcs: map[string]func([]Value) (Value, error){}, SkipIncomplete: true}
}

// Add appends an invariant.
func (r *Registry) Add(inv *Invariant) *Registry {
	r.invs = append(r.invs, inv)
	return r
}

// Invariants returns the registered invariants in order.
func (r *Registry) Invariants() []*Invariant { return r.invs }

// CheckAll evaluates every invariant and concatenates violations in
// registration order. It is equivalent to calling Check per invariant but
// reuses the registry's evaluation scratch, so a clean pass (no violations)
// allocates nothing.
func (r *Registry) CheckAll(sys *model.System) []Violation {
	if r.envSys != sys {
		r.envSys = sys
		r.env = NewEnv(sys)
		r.env.Funcs = r.Funcs
		r.itEnv = r.env.child("it", Nil())
	}
	var out []Violation
	for _, inv := range r.invs {
		if inv.Scope == "" {
			ok, err := EvalBool(inv.Expr, r.env)
			if err != nil {
				if !r.SkipIncomplete {
					out = append(out, Violation{Invariant: inv, Err: err})
				}
				continue
			}
			if !ok {
				out = append(out, Violation{Invariant: inv})
			}
			continue
		}
		r.scratch = scopeElementsInto(r.scratch[:0], sys, inv.Scope)
		for _, el := range r.scratch {
			r.itEnv.vars["it"] = Elem(el)
			ok, err := EvalBool(inv.Expr, r.itEnv)
			if err != nil {
				if !r.SkipIncomplete {
					out = append(out, Violation{Invariant: inv, Subject: el, Err: err})
				}
				continue
			}
			if !ok {
				out = append(out, Violation{Invariant: inv, Subject: el})
			}
		}
	}
	return out
}
