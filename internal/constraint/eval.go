package constraint

import (
	"fmt"
	"sort"

	"archadapt/internal/model"
)

// Env is an evaluation environment: variable bindings layered over a system,
// plus optional external functions (style-specific queries such as the
// paper's findGoodSGrp, which consults the runtime layer).
type Env struct {
	Sys   *model.System
	vars  map[string]Value
	Funcs map[string]func(args []Value) (Value, error)
}

// NewEnv creates an environment rooted at sys with `self` bound to it.
func NewEnv(sys *model.System) *Env {
	e := &Env{Sys: sys, vars: map[string]Value{}, Funcs: map[string]func([]Value) (Value, error){}}
	return e
}

// Bind sets a variable.
func (e *Env) Bind(name string, v Value) *Env {
	e.vars[name] = v
	return e
}

// child creates a scope with one extra binding.
func (e *Env) child(name string, v Value) *Env {
	c := &Env{Sys: e.Sys, vars: map[string]Value{}, Funcs: e.Funcs}
	for k, vv := range e.vars {
		c.vars[k] = vv
	}
	c.vars[name] = v
	return c
}

// Eval evaluates expr in env.
func Eval(expr Expr, env *Env) (Value, error) {
	switch x := expr.(type) {
	case *Lit:
		return x.Val, nil
	case *Ref:
		return evalRef(x, env)
	case *Unary:
		return evalUnary(x, env)
	case *Binary:
		return evalBinary(x, env)
	case *Call:
		return evalCall(x, env)
	case *Quant:
		return evalQuant(x, env)
	}
	return Nil(), fmt.Errorf("constraint: unknown expression %T", expr)
}

// EvalBool evaluates expr and requires a boolean result.
func EvalBool(expr Expr, env *Env) (bool, error) {
	v, err := Eval(expr, env)
	if err != nil {
		return false, err
	}
	return v.Truthy()
}

func evalRef(r *Ref, env *Env) (Value, error) {
	head := r.Parts[0]
	var cur Value
	switch {
	case head == "self":
		cur = Elem(env.Sys)
	default:
		if v, ok := env.vars[head]; ok {
			cur = v
		} else if v, ok := lookupImplicit(head, env); ok {
			// Bare identifiers resolve against the implicit subject (`it`),
			// then the system: the paper writes `averageLatency <=
			// maxLatency` with both sides resolved in the constrained
			// element's context.
			return v, nil
		} else {
			if r.errUnbound == nil {
				r.errUnbound = fmt.Errorf("constraint: unbound identifier %q", head)
			}
			return Nil(), r.errUnbound
		}
	}
	for _, part := range r.Parts[1:] {
		next, err := member(cur, part, env)
		if err != nil {
			return Nil(), err
		}
		cur = next
	}
	return cur, nil
}

// lookupImplicit resolves a bare name against `it` (the element under
// check), then the system's properties.
func lookupImplicit(name string, env *Env) (Value, bool) {
	if it, ok := env.vars["it"]; ok && it.Kind == KElem {
		if v, ok := propValue(it.Elem, name); ok {
			return v, true
		}
	}
	if env.Sys != nil {
		if v, ok := propValue(env.Sys, name); ok {
			return v, true
		}
	}
	return Nil(), false
}

func propValue(e model.Element, name string) (Value, bool) {
	raw, ok := e.Props().Get(name)
	if !ok {
		return Nil(), false
	}
	switch v := raw.(type) {
	case float64:
		return Num(v), true
	case bool:
		return Bool(v), true
	case string:
		return Str(v), true
	case []string:
		set := make([]Value, len(v))
		for i, s := range v {
			set[i] = Str(s)
		}
		return Set(set), true
	}
	return Nil(), false
}

// member resolves `cur.part`: structural pseudo-properties first
// (Components, Connectors, Ports, Roles, Reps, name, type), then element
// properties.
func member(cur Value, part string, env *Env) (Value, error) {
	if cur.Kind != KElem {
		return Nil(), fmt.Errorf("constraint: cannot select %q from %s", part, cur)
	}
	e := cur.Elem
	switch part {
	case "name":
		return Str(e.Name()), nil
	case "type":
		return Str(e.Type()), nil
	}
	switch el := e.(type) {
	case *model.System:
		switch part {
		case "Components":
			return elemSet(componentsAsElements(el.Components())), nil
		case "Connectors":
			conns := el.Connectors()
			out := make([]model.Element, len(conns))
			for i, c := range conns {
				out[i] = c
			}
			return elemSet(out), nil
		}
	case *model.Component:
		switch part {
		case "Ports":
			ports := el.Ports()
			out := make([]model.Element, len(ports))
			for i, p := range ports {
				out[i] = p
			}
			return elemSet(out), nil
		case "Reps":
			if el.Rep == nil {
				return Set(nil), nil
			}
			return elemSet(componentsAsElements(el.Rep.Components())), nil
		}
	case *model.Connector:
		if part == "Roles" {
			roles := el.Roles()
			out := make([]model.Element, len(roles))
			for i, r := range roles {
				out[i] = r
			}
			return elemSet(out), nil
		}
	}
	if v, ok := propValue(e, part); ok {
		return v, nil
	}
	return Nil(), fmt.Errorf("constraint: %s %q has no property %q", e.Kind(), e.Name(), part)
}

func componentsAsElements(cs []*model.Component) []model.Element {
	out := make([]model.Element, len(cs))
	for i, c := range cs {
		out[i] = c
	}
	return out
}

func elemSet(es []model.Element) Value {
	vs := make([]Value, len(es))
	for i, e := range es {
		vs[i] = Elem(e)
	}
	return Set(vs)
}

func evalUnary(u *Unary, env *Env) (Value, error) {
	v, err := Eval(u.X, env)
	if err != nil {
		return Nil(), err
	}
	switch u.Op {
	case "!":
		b, err := v.Truthy()
		if err != nil {
			return Nil(), err
		}
		return Bool(!b), nil
	case "-":
		if v.Kind != KNum {
			return Nil(), fmt.Errorf("constraint: unary - on %s", v)
		}
		return Num(-v.Num), nil
	}
	return Nil(), fmt.Errorf("constraint: unknown unary %q", u.Op)
}

func evalBinary(b *Binary, env *Env) (Value, error) {
	// Short-circuit boolean operators.
	if b.Op == "and" || b.Op == "or" {
		l, err := EvalBool(b.L, env)
		if err != nil {
			return Nil(), err
		}
		if b.Op == "and" && !l {
			return Bool(false), nil
		}
		if b.Op == "or" && l {
			return Bool(true), nil
		}
		r, err := EvalBool(b.R, env)
		if err != nil {
			return Nil(), err
		}
		return Bool(r), nil
	}
	l, err := Eval(b.L, env)
	if err != nil {
		return Nil(), err
	}
	r, err := Eval(b.R, env)
	if err != nil {
		return Nil(), err
	}
	switch b.Op {
	case "==":
		return Bool(equal(l, r)), nil
	case "!=":
		return Bool(!equal(l, r)), nil
	case "<", "<=", ">", ">=":
		if l.Kind != KNum || r.Kind != KNum {
			return Nil(), fmt.Errorf("constraint: %s requires numbers, got %s %s", b.Op, l, r)
		}
		switch b.Op {
		case "<":
			return Bool(l.Num < r.Num), nil
		case "<=":
			return Bool(l.Num <= r.Num), nil
		case ">":
			return Bool(l.Num > r.Num), nil
		default:
			return Bool(l.Num >= r.Num), nil
		}
	case "+", "-", "*", "/":
		if l.Kind != KNum || r.Kind != KNum {
			return Nil(), fmt.Errorf("constraint: %s requires numbers, got %s %s", b.Op, l, r)
		}
		switch b.Op {
		case "+":
			return Num(l.Num + r.Num), nil
		case "-":
			return Num(l.Num - r.Num), nil
		case "*":
			return Num(l.Num * r.Num), nil
		default:
			if r.Num == 0 {
				return Nil(), fmt.Errorf("constraint: division by zero")
			}
			return Num(l.Num / r.Num), nil
		}
	}
	return Nil(), fmt.Errorf("constraint: unknown operator %q", b.Op)
}

func evalCall(c *Call, env *Env) (Value, error) {
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := Eval(a, env)
		if err != nil {
			return Nil(), err
		}
		args[i] = v
	}
	switch c.Fn {
	case "size":
		if len(args) != 1 || args[0].Kind != KSet {
			return Nil(), fmt.Errorf("constraint: size() wants one set argument")
		}
		return Num(float64(len(args[0].Set))), nil
	case "connected":
		if len(args) != 2 {
			return Nil(), fmt.Errorf("constraint: connected() wants two arguments")
		}
		a, aok := asComponent(args[0])
		b, bok := asComponent(args[1])
		if !aok || !bok {
			return Nil(), fmt.Errorf("constraint: connected() wants components, got %s, %s", args[0], args[1])
		}
		return Bool(env.Sys.Connected(a, b)), nil
	case "attached":
		if len(args) != 2 {
			return Nil(), fmt.Errorf("constraint: attached() wants two arguments")
		}
		// Accept (port, role) in either order — the paper writes both.
		p, r := asPortRole(args[0], args[1])
		if p == nil || r == nil {
			return Nil(), fmt.Errorf("constraint: attached() wants a port and a role, got %s, %s", args[0], args[1])
		}
		return Bool(env.Sys.Attached(p, r)), nil
	case "hasProperty":
		if len(args) != 2 || args[0].Kind != KElem || args[1].Kind != KStr {
			return Nil(), fmt.Errorf("constraint: hasProperty(elem, name)")
		}
		return Bool(args[0].Elem.Props().Has(args[1].Str)), nil
	case "union":
		var all []Value
		for _, a := range args {
			if a.Kind != KSet {
				return Nil(), fmt.Errorf("constraint: union() wants sets")
			}
			all = append(all, a.Set...)
		}
		return Set(all), nil
	case "contains":
		if len(args) != 2 || args[0].Kind != KSet {
			return Nil(), fmt.Errorf("constraint: contains(set, v)")
		}
		for _, v := range args[0].Set {
			if equal(v, args[1]) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	}
	if fn, ok := env.Funcs[c.Fn]; ok {
		return fn(args)
	}
	return Nil(), fmt.Errorf("constraint: unknown function %q", c.Fn)
}

func asComponent(v Value) (*model.Component, bool) {
	if v.Kind != KElem {
		return nil, false
	}
	c, ok := v.Elem.(*model.Component)
	return c, ok
}

func asPortRole(a, b Value) (*model.Port, *model.Role) {
	if a.Kind != KElem || b.Kind != KElem {
		return nil, nil
	}
	if p, ok := a.Elem.(*model.Port); ok {
		if r, ok := b.Elem.(*model.Role); ok {
			return p, r
		}
		return nil, nil
	}
	if r, ok := a.Elem.(*model.Role); ok {
		if p, ok := b.Elem.(*model.Port); ok {
			return p, r
		}
	}
	return nil, nil
}

func evalQuant(q *Quant, env *Env) (Value, error) {
	dom, err := Eval(q.Dom, env)
	if err != nil {
		return Nil(), err
	}
	if dom.Kind != KSet {
		return Nil(), fmt.Errorf("constraint: quantifier domain is not a set: %s", dom)
	}
	var matches []Value
	for _, v := range dom.Set {
		if q.Type != "" {
			if v.Kind != KElem || v.Elem.Type() != q.Type {
				continue
			}
		}
		ok, err := EvalBool(q.Pred, env.child(q.Var, v))
		if err != nil {
			return Nil(), err
		}
		switch q.Mode {
		case "exists":
			if ok {
				return Bool(true), nil
			}
		case "forall":
			if !ok {
				return Bool(false), nil
			}
		case "select":
			if ok {
				matches = append(matches, v)
			}
		}
	}
	switch q.Mode {
	case "exists":
		return Bool(false), nil
	case "forall":
		return Bool(true), nil
	}
	// select: deterministic order by element name where applicable.
	sort.SliceStable(matches, func(i, j int) bool {
		a, b := matches[i], matches[j]
		if a.Kind == KElem && b.Kind == KElem {
			return a.Elem.Name() < b.Elem.Name()
		}
		return false
	})
	if q.One {
		if len(matches) == 0 {
			return Nil(), nil
		}
		return matches[0], nil
	}
	return Set(matches), nil
}
