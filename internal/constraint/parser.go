package constraint

import "fmt"

// Parse parses a constraint expression.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("constraint: trailing input at %s in %q", p.peek(), src)
	}
	return e, nil
}

// MustParse is Parse that panics; for statically known expressions.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("constraint: expected %q, found %s in %q", text, p.peek(), p.src)
	}
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tKeyword, "not") || p.accept(tOp, "!") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]bool{"<": true, "<=": true, ">": true, ">=": true, "==": true, "!=": true}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tOp && cmpOps[t.text] {
		p.i++
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: t.text, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tOp && (t.text == "+" || t.text == "-") {
			p.i++
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tOp && (t.text == "*" || t.text == "/") {
			p.i++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tNumber:
		p.i++
		return &Lit{Val: Num(t.num)}, nil
	case t.kind == tString:
		p.i++
		return &Lit{Val: Str(t.text)}, nil
	case t.kind == tKeyword && t.text == "true":
		p.i++
		return &Lit{Val: Bool(true)}, nil
	case t.kind == tKeyword && t.text == "false":
		p.i++
		return &Lit{Val: Bool(false)}, nil
	case t.kind == tKeyword && t.text == "nil":
		p.i++
		return &Lit{Val: Nil()}, nil
	case t.kind == tKeyword && (t.text == "exists" || t.text == "forall" || t.text == "select"):
		return p.parseQuant()
	case t.kind == tPunct && t.text == "(":
		p.i++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tIdent:
		return p.parseRefOrCall()
	}
	return nil, fmt.Errorf("constraint: unexpected %s in %q", t, p.src)
}

func (p *parser) parseQuant() (Expr, error) {
	mode := p.next().text
	one := false
	if mode == "select" && p.accept(tKeyword, "one") {
		one = true
	}
	v := p.peek()
	if v.kind != tIdent {
		return nil, fmt.Errorf("constraint: expected variable after %q, found %s", mode, v)
	}
	p.i++
	typ := ""
	if p.accept(tPunct, ":") {
		tt := p.peek()
		if tt.kind != tIdent {
			return nil, fmt.Errorf("constraint: expected type after ':', found %s", tt)
		}
		typ = tt.text
		p.i++
	}
	if err := p.expect(tKeyword, "in"); err != nil {
		return nil, err
	}
	dom, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tPunct, "|"); err != nil {
		return nil, err
	}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	return &Quant{Mode: mode, One: one, Var: v.text, Type: typ, Dom: dom, Pred: pred}, nil
}

func (p *parser) parseRefOrCall() (Expr, error) {
	name := p.next().text
	if p.accept(tPunct, "(") {
		var args []Expr
		if !p.accept(tPunct, ")") {
			for {
				a, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.accept(tPunct, ",") {
					continue
				}
				if err := p.expect(tPunct, ")"); err != nil {
					return nil, err
				}
				break
			}
		}
		return &Call{Fn: name, Args: args}, nil
	}
	parts := []string{name}
	for p.accept(tPunct, ".") {
		t := p.peek()
		if t.kind != tIdent {
			return nil, fmt.Errorf("constraint: expected identifier after '.', found %s", t)
		}
		parts = append(parts, t.text)
		p.i++
	}
	return &Ref{Parts: parts}, nil
}
