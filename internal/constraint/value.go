// Package constraint implements the architectural constraint language used
// to express invariants over the model — the role Armani plays for Acme in
// the paper. Expressions support numeric/boolean/string operations, element
// property references, and the first-order forms of Figure 5:
//
//	invariant averageLatency <= maxLatency
//	exists p : RequestT in cli.Ports | attached(p, badRole)
//	select sgrp : ServerGroupT in self.Components | connected(sgrp, client)
//	size(loadedServerGroups) == 0
//
// The evaluator is pure: it reads the model and never mutates it.
package constraint

import (
	"fmt"
	"strconv"
	"strings"

	"archadapt/internal/model"
)

// ValueKind discriminates runtime value types.
type ValueKind int

// Runtime value kinds.
const (
	KNil ValueKind = iota
	KNum
	KBool
	KStr
	KElem
	KSet
)

// Value is a constraint-language runtime value.
type Value struct {
	Kind ValueKind
	Num  float64
	Bool bool
	Str  string
	Elem model.Element
	Set  []Value
}

// Nil is the nil value.
func Nil() Value { return Value{Kind: KNil} }

// Num wraps a number.
func Num(f float64) Value { return Value{Kind: KNum, Num: f} }

// Bool wraps a boolean.
func Bool(b bool) Value { return Value{Kind: KBool, Bool: b} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KStr, Str: s} }

// Elem wraps a model element.
func Elem(e model.Element) Value {
	if e == nil {
		return Nil()
	}
	return Value{Kind: KElem, Elem: e}
}

// Set wraps a list of values.
func Set(vs []Value) Value { return Value{Kind: KSet, Set: vs} }

// Truthy reports the boolean interpretation; only booleans are truthy/falsy,
// everything else is a type error.
func (v Value) Truthy() (bool, error) {
	if v.Kind != KBool {
		return false, fmt.Errorf("constraint: %s is not a boolean", v)
	}
	return v.Bool, nil
}

// String renders the value for error messages and the ADL printer.
func (v Value) String() string {
	switch v.Kind {
	case KNil:
		return "nil"
	case KNum:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KBool:
		return strconv.FormatBool(v.Bool)
	case KStr:
		return strconv.Quote(v.Str)
	case KElem:
		return fmt.Sprintf("<%s %s>", v.Elem.Kind(), v.Elem.Name())
	case KSet:
		parts := make([]string, len(v.Set))
		for i, e := range v.Set {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "?"
}

// equal compares two values for the == / != operators.
func equal(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KNil:
		return true
	case KNum:
		return a.Num == b.Num
	case KBool:
		return a.Bool == b.Bool
	case KStr:
		return a.Str == b.Str
	case KElem:
		return a.Elem == b.Elem
	case KSet:
		if len(a.Set) != len(b.Set) {
			return false
		}
		for i := range a.Set {
			if !equal(a.Set[i], b.Set[i]) {
				return false
			}
		}
		return true
	}
	return false
}
