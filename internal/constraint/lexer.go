package constraint

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind enumerates token types.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tOp    // < <= > >= == != + - * / !
	tPunct // ( ) . , : | { }
	tKeyword
)

var keywords = map[string]bool{
	"and": true, "or": true, "not": true,
	"exists": true, "forall": true, "select": true, "one": true,
	"in": true, "true": true, "false": true, "nil": true,
}

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return strconv.Quote(t.text)
}

// lex tokenizes src; errors carry byte offsets.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := src[j]
				if unicode.IsDigit(rune(d)) {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (src[j] == '+' || src[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			f, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("constraint: bad number %q at %d", src[i:j], i)
			}
			toks = append(toks, token{kind: tNumber, text: src[i:j], num: f, pos: i})
			i = j
		case c == '"':
			j := i + 1
			var sb []byte
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb = append(sb, src[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("constraint: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tString, text: string(sb), pos: i})
			i = j + 1
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			k := tIdent
			if keywords[word] {
				k = tKeyword
			}
			toks = append(toks, token{kind: k, text: word, pos: i})
			i = j
		case c == '<' || c == '>' || c == '=' || c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tOp, text: src[i : i+2], pos: i})
				i += 2
			} else {
				if c == '=' {
					return nil, fmt.Errorf("constraint: single '=' at %d (use '==')", i)
				}
				toks = append(toks, token{kind: tOp, text: string(c), pos: i})
				i++
			}
		case c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, token{kind: tOp, text: string(c), pos: i})
			i++
		case c == '(' || c == ')' || c == '.' || c == ',' || c == ':' || c == '|' || c == '{' || c == '}':
			toks = append(toks, token{kind: tPunct, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("constraint: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tEOF, pos: n})
	return toks, nil
}
