package arrivals

import (
	"math"
	"math/big"
	"testing"

	"archadapt/internal/sim"
)

// Poisson inter-arrival times must be exponential: seeded KS test at the 5%
// level against the analytic Exp(λ) target.
func TestPoissonInterArrivalsKS(t *testing.T) {
	const lambda = 5.0
	p := Poisson{Lambda: lambda}
	r := sim.NewRand(42)
	ts := Sample(p, 2000, Peak(p, 2000), r)
	if len(ts) < 8000 {
		t.Fatalf("sample too small: %d arrivals", len(ts))
	}
	inter := make([]float64, 0, len(ts))
	prev := 0.0
	for _, x := range ts {
		inter = append(inter, x-prev)
		prev = x
	}
	d := KSExponential(inter, lambda)
	if crit := KSCritical(len(inter)); d > crit {
		t.Fatalf("KS statistic %.5f exceeds 5%% critical value %.5f (n=%d)", d, crit, len(inter))
	}
}

// Per-window arrival counts under a constant rate must follow the Poisson
// pmf: seeded chi-square test against the analytic distribution.
func TestPoissonCountsChiSquare(t *testing.T) {
	const lambda, window, horizon = 4.0, 1.0, 2000.0
	p := Poisson{Lambda: lambda}
	r := sim.NewRand(7)
	ts := Sample(p, horizon, Peak(p, horizon), r)
	nWindows := int(horizon / window)
	counts := make([]int, nWindows)
	for _, x := range ts {
		counts[int(x/window)]++
	}
	// Histogram of counts, tail-merged at K so every expected bin is ≥ 5.
	const K = 10
	obs := make([]float64, K+1)
	for _, c := range counts {
		if c > K {
			c = K
		}
		obs[c]++
	}
	exp := make([]float64, K+1)
	tail := 1.0
	for k := 0; k < K; k++ {
		pk := PoissonPMF(k, lambda*window)
		exp[k] = pk * float64(nWindows)
		tail -= pk
	}
	exp[K] = tail * float64(nWindows)
	stat, dof := ChiSquare(obs, exp)
	if crit := ChiSquareCritical(dof); stat > crit {
		t.Fatalf("chi-square %.2f exceeds 5%% critical value %.2f (dof=%d)", stat, crit, dof)
	}
}

// The diurnal envelope (sinusoid × flash-crowd burst) must match its
// analytic target: binned arrival counts vs the integrated rate.
func TestDiurnalEnvelopeChiSquare(t *testing.T) {
	d := Diurnal{
		Base:   5,
		Swing:  0.5,
		Period: 1000,
		Bursts: []Burst{{At: 300, Duration: 100, Factor: 3}},
	}
	const horizon = 1000.0
	r := sim.NewRand(11)
	ts := Sample(d, horizon, Peak(d, horizon), r)
	const bins = 20
	obs := make([]float64, bins)
	for _, x := range ts {
		obs[int(x/(horizon/bins))]++
	}
	exp := make([]float64, bins)
	for i := range exp {
		t0 := horizon * float64(i) / bins
		exp[i] = Integrate(d, t0, t0+horizon/bins, 512)
	}
	stat, dof := ChiSquare(obs, exp)
	if crit := ChiSquareCritical(dof); stat > crit {
		t.Fatalf("chi-square %.2f exceeds 5%% critical value %.2f (dof=%d)", stat, crit, dof)
	}
}

func TestDiurnalEnvelopeShape(t *testing.T) {
	d := Diurnal{Base: 10, Swing: 0.4, Period: 600}
	if got := d.Rate(150); math.Abs(got-14) > 1e-9 {
		t.Fatalf("peak rate %v, want 14", got) // sin peaks at a quarter period
	}
	if got := d.Rate(450); math.Abs(got-6) > 1e-9 {
		t.Fatalf("trough rate %v, want 6", got)
	}
	over := Diurnal{Base: 10, Swing: 1, Period: 600, Bursts: []Burst{{At: 400, Duration: 200, Factor: 2}}}
	for _, tt := range []float64{0, 150, 450, 500, 599} {
		if r := over.Rate(tt); r < 0 {
			t.Fatalf("negative rate %v at t=%v", r, tt)
		}
	}
}

func TestTraceRate(t *testing.T) {
	tr := Trace{Times: []float64{10, 20, 30}, Rates: []float64{1, 5, 2}}
	cases := []struct{ t, want float64 }{
		{0, 0}, {9.999, 0}, {10, 1}, {15, 1}, {20, 5}, {29.9, 5}, {30, 2}, {1e9, 2},
	}
	for _, c := range cases {
		if got := tr.Rate(c.t); got != c.want {
			t.Fatalf("Trace.Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPeakDominates(t *testing.T) {
	procs := []Process{
		Poisson{Lambda: 3},
		Diurnal{Base: 5, Swing: 0.5, Period: 300, Bursts: []Burst{{At: 50, Duration: 20, Factor: 4}}},
		Trace{Times: []float64{0, 10}, Rates: []float64{2, 9}},
	}
	for _, p := range procs {
		peak := Peak(p, 1000)
		for i := 0; i <= 5000; i++ {
			tt := 1000 * float64(i) / 5000
			if r := p.Rate(tt); r > peak+1e-12 {
				t.Fatalf("%T: Rate(%v)=%v exceeds Peak=%v", p, tt, r, peak)
			}
		}
	}
}

// Exactness: the aggregated class's offered load must equal the sum of the
// per-user rates it replaces. SumExact is held to within one ulp of an
// arbitrary-precision reference at 10^6 users.
func TestAggregateOfferedLoadExact(t *testing.T) {
	const users = 1_000_000
	r := sim.NewRand(99)
	rates := make([]float64, users)
	for i := range rates {
		rates[i] = r.LogNormalAround(1.0, 0.5) // heterogeneous per-user rates
	}
	got := SumExact(rates)

	exact := new(big.Float).SetPrec(200)
	for _, x := range rates {
		exact.Add(exact, big.NewFloat(x))
	}
	want, _ := exact.Float64()
	if got != want && math.Nextafter(got, want) != want {
		t.Fatalf("SumExact = %.17g, arbitrary-precision sum = %.17g (off by more than 1 ulp)", got, want)
	}

	// Naive summation demonstrably drifts at this scale — the reason the
	// aggregation uses compensated summation in the first place.
	naive := 0.0
	for _, x := range rates {
		naive += x
	}
	if naive == want {
		t.Logf("naive sum happened to round exactly; exactness still held above")
	}

	// A homogeneous population folds to users × rate, within one ulp.
	const per = 0.731
	same := make([]float64, users)
	for i := range same {
		same[i] = per
	}
	agg := SumExact(same)
	if ref := float64(users) * per; math.Abs(agg-ref) > math.Abs(ref)*1e-15 {
		t.Fatalf("homogeneous aggregate %v, want %v", agg, ref)
	}
}

func TestIntegrateMatchesClosedForm(t *testing.T) {
	p := Poisson{Lambda: 3}
	if got := Integrate(p, 0, 10, 100); math.Abs(got-30) > 1e-9 {
		t.Fatalf("∫3 dt over 10s = %v, want 30", got)
	}
	d := Diurnal{Base: 2, Swing: 0.5, Period: 100}
	// Over a whole period the sinusoid integrates away: 2·100 = 200.
	if got := Integrate(d, 0, 100, 1000); math.Abs(got-200) > 1e-6 {
		t.Fatalf("∫diurnal over period = %v, want 200", got)
	}
}
