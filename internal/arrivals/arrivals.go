// Package arrivals defines the open-loop arrival processes that drive
// aggregated flow classes. Where the paper's clients are closed-loop —
// each waits for its reply before thinking and sending again, so offered
// load is capped by client count — an open-loop process offers load as a
// pure function of time, independent of how the system is coping. That is
// the regime where overload is even possible, and it is how a class models
// up to 10^6 users without 10^6 request objects: the process yields a
// per-user rate envelope, and the class multiplies by its user count.
//
// Every process is deterministic: Rate(t) is an analytic envelope, not a
// sample path. Stochastic sampling (Lewis–Shedler thinning in Sample) is
// used only by the statistical test battery that pins the envelopes to
// their analytic targets.
package arrivals

import (
	"math"
	"sort"

	"archadapt/internal/sim"
)

// Process is a deterministic arrival-rate envelope. Rate returns the
// instantaneous arrival rate (requests/sec per modeled user) at simulated
// time t; an aggregated class scales it by its user count.
type Process interface {
	Rate(t float64) float64
}

// Poisson is a homogeneous process: constant rate Lambda. The aggregate of
// n users is Poisson with rate n·Lambda — the superposition property the
// aggregation model rests on.
type Poisson struct {
	Lambda float64
}

// Rate returns Lambda for all t.
func (p Poisson) Rate(float64) float64 {
	if p.Lambda < 0 {
		return 0
	}
	return p.Lambda
}

// Burst is a multiplicative rate spike — the flash-crowd ingredient.
type Burst struct {
	At       float64 // start time (seconds)
	Duration float64
	Factor   float64 // rate multiplier while active (e.g. 8 for a flash crowd)
}

// Diurnal is a sinusoidal day/night envelope around a base rate, with
// optional flash-crowd bursts layered on top:
//
//	rate(t) = Base · (1 + Swing·sin(2π(t/Period + Phase))) · Π active bursts
//
// Overlapping bursts compound. The envelope is clamped at zero.
type Diurnal struct {
	Base   float64
	Swing  float64 // amplitude as a fraction of Base, in [0, 1]
	Period float64 // seconds per cycle (a scenario "day")
	Phase  float64 // fraction of a period
	Bursts []Burst
}

// Rate returns the envelope at t.
func (d Diurnal) Rate(t float64) float64 {
	period := d.Period
	if period <= 0 {
		period = 86400
	}
	r := d.Base * (1 + d.Swing*math.Sin(2*math.Pi*(t/period+d.Phase)))
	for _, b := range d.Bursts {
		if t >= b.At && t < b.At+b.Duration {
			r *= b.Factor
		}
	}
	if r < 0 || math.IsNaN(r) {
		r = 0
	}
	return r
}

// Trace is a trace-driven schedule: a right-continuous step function. The
// rate is Rates[i] from Times[i] (inclusive) until Times[i+1] (exclusive),
// and zero before Times[0]. Times must be ascending and the slices equal
// length.
type Trace struct {
	Times []float64
	Rates []float64
}

// Rate returns the step value in effect at t.
func (tr Trace) Rate(t float64) float64 {
	i := sort.SearchFloat64s(tr.Times, t)
	if i < len(tr.Times) && tr.Times[i] == t {
		i++
	}
	if i == 0 {
		return 0
	}
	r := tr.Rates[i-1]
	if r < 0 {
		return 0
	}
	return r
}

// Peak returns an upper bound on p.Rate over [0, horizon], the thinning
// envelope Sample needs. Known process types get their exact analytic
// bound; anything else is scanned numerically with a safety margin.
func Peak(p Process, horizon float64) float64 {
	switch q := p.(type) {
	case Poisson:
		return q.Rate(0)
	case Diurnal:
		bound := q.Base * (1 + math.Abs(q.Swing))
		factor := 1.0
		for _, b := range q.Bursts {
			if b.Factor > 1 {
				factor *= b.Factor
			}
		}
		return bound * factor
	case Trace:
		max := 0.0
		for _, r := range q.Rates {
			if r > max {
				max = r
			}
		}
		return max
	default:
		max := 0.0
		const steps = 10000
		for i := 0; i <= steps; i++ {
			if r := p.Rate(horizon * float64(i) / steps); r > max {
				max = r
			}
		}
		return max * 1.25
	}
}

// Sample draws one sample path of arrival times on [0, horizon) from the
// non-homogeneous Poisson process with intensity p.Rate, by Lewis–Shedler
// thinning: candidate arrivals at the constant envelope rate maxRate are
// kept with probability Rate(t)/maxRate. maxRate must dominate the rate
// over the horizon (use Peak). Used by the statistical test battery only —
// the simulation itself consumes the analytic envelope.
func Sample(p Process, horizon, maxRate float64, r *sim.Rand) []float64 {
	if maxRate <= 0 {
		return nil
	}
	var ts []float64
	t := 0.0
	for {
		t += r.Exp(1 / maxRate)
		if t >= horizon {
			return ts
		}
		if r.Float64()*maxRate < p.Rate(t) {
			ts = append(ts, t)
		}
	}
}

// Integrate returns ∫ p.Rate dt over [t0, t1] by composite Simpson's rule —
// the expected arrival count on the interval. steps is rounded up to even.
func Integrate(p Process, t0, t1 float64, steps int) float64 {
	if t1 <= t0 {
		return 0
	}
	if steps < 2 {
		steps = 2
	}
	if steps%2 == 1 {
		steps++
	}
	h := (t1 - t0) / float64(steps)
	sum := p.Rate(t0) + p.Rate(t1)
	for i := 1; i < steps; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * p.Rate(t0+float64(i)*h)
	}
	return sum * h / 3
}

// SumExact returns the compensated (Neumaier) sum of per-user rates. An
// aggregated class replaces up to 10^6 individual users with one number;
// naive left-to-right float64 summation loses low-order bits at that
// scale, so the class's offered load would drift from the population it
// models. Compensated summation keeps the aggregate faithful to the sum to
// within one ulp.
func SumExact(xs []float64) float64 {
	sum, comp := 0.0, 0.0
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}
