package arrivals

import (
	"math"
	"sort"
)

// Goodness-of-fit machinery for the statistical test battery. The tests are
// seeded, so they are deterministic regression tests shaped like hypothesis
// tests: each pins a sampled path against its analytic target at the 5%
// level, and a code change that skews the samplers or envelopes fails them
// permanently, not flakily.

// KSExponential returns the two-sided Kolmogorov–Smirnov statistic of the
// sample against the exponential distribution with the given rate:
// D_n = sup |F_n(x) − (1 − e^{−rate·x})|. The input need not be sorted.
func KSExponential(sample []float64, rate float64) float64 {
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	d := 0.0
	for i, x := range xs {
		f := 1 - math.Exp(-rate*x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSCritical returns the asymptotic 5% critical value for the KS statistic
// at sample size n: 1.3581/√n. A statistic above it rejects the null.
func KSCritical(n int) float64 {
	return 1.3581 / math.Sqrt(float64(n))
}

// ChiSquare returns Pearson's statistic Σ (obs−exp)²/exp over the bins,
// skipping bins with non-positive expectation, and the degrees of freedom
// (contributing bins − 1).
func ChiSquare(obs, exp []float64) (stat float64, dof int) {
	for i := range obs {
		if i >= len(exp) || exp[i] <= 0 {
			continue
		}
		d := obs[i] - exp[i]
		stat += d * d / exp[i]
		dof++
	}
	if dof > 0 {
		dof--
	}
	return stat, dof
}

// ChiSquareCritical returns the 5% critical value of the χ² distribution
// with dof degrees of freedom, via the Wilson–Hilferty cube approximation
// (accurate to ~0.1% for dof ≥ 3).
func ChiSquareCritical(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	k := float64(dof)
	const z95 = 1.6448536269514722 // Φ⁻¹(0.95)
	v := 1 - 2/(9*k) + z95*math.Sqrt(2/(9*k))
	return k * v * v * v
}

// PoissonPMF returns P(X = k) for X ~ Poisson(mean), computed in log space
// to stay finite for large means.
func PoissonPMF(k int, mean float64) float64 {
	if mean <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	logp := float64(k)*math.Log(mean) - mean
	for i := 2; i <= k; i++ {
		logp -= math.Log(float64(i))
	}
	return math.Exp(logp)
}
