package envmgr

import (
	"errors"
	"testing"

	"archadapt/internal/app"
	"archadapt/internal/netsim"
	"archadapt/internal/remos"
	"archadapt/internal/sim"
)

type rig struct {
	k                          *sim.Kernel
	net                        *netsim.Network
	a                          *app.System
	m                          *Manager
	rm                         *remos.Service
	sHost, cHost, qHost, mHost netsim.NodeID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k)
	r := net.AddRouter("r")
	sHost := net.AddHost("sHost")
	cHost := net.AddHost("cHost")
	qHost := net.AddHost("qHost")
	mHost := net.AddHost("mHost")
	spareHost := net.AddHost("spareHost")
	for _, h := range []netsim.NodeID{sHost, cHost, qHost, mHost, spareHost} {
		net.Connect(h, r, 10e6, 1e-3)
	}
	a := app.New(k, net, qHost)
	if err := a.CreateQueue("G1"); err != nil {
		t.Fatal(err)
	}
	if err := a.CreateQueue("G2"); err != nil {
		t.Fatal(err)
	}
	a.AddServer("S1", sHost, "G1", 0.05, 0)
	if err := a.Activate("S1"); err != nil {
		t.Fatal(err)
	}
	a.AddServer("SP", spareHost, "G1", 0.05, 0) // spare
	a.AddClient("C1", cHost, "G1", 0, sim.NewRand(1))
	rm := remos.New(k, net, mHost)
	return &rig{k: k, net: net, a: a, m: New(k, net, a, mHost, rm), rm: rm,
		sHost: sHost, cHost: cHost, qHost: qHost, mHost: mHost}
}

func TestCreateReqQueueEffectAfterRPC(t *testing.T) {
	r := newRig(t)
	if err := r.m.CreateReqQueue("G3"); err != nil {
		t.Fatal(err)
	}
	// Effect lands only after the RPC delay.
	found := false
	for _, g := range r.a.Groups() {
		if g == "G3" {
			found = true
		}
	}
	if found {
		t.Fatal("queue materialized before RPC landed")
	}
	r.k.RunAll(0)
	found = false
	for _, g := range r.a.Groups() {
		if g == "G3" {
			found = true
		}
	}
	if !found {
		t.Fatal("queue never materialized")
	}
	if err := r.m.CreateReqQueue("G1"); err == nil {
		t.Fatal("duplicate queue should fail")
	}
}

func TestActivateDeactivateLifecycle(t *testing.T) {
	r := newRig(t)
	if err := r.m.ActivateServer("SP"); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll(0)
	if !r.a.Server("SP").Active() {
		t.Fatal("SP not active after RPC")
	}
	if err := r.m.ActivateServer("SP"); err == nil {
		t.Fatal("double activate should fail")
	}
	if err := r.m.DeactivateServer("SP"); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll(0)
	if r.a.Server("SP").Active() {
		t.Fatal("SP still active")
	}
	if err := r.m.DeactivateServer("SP"); err == nil {
		t.Fatal("double deactivate should fail")
	}
	if err := r.m.ActivateServer("nope"); err == nil {
		t.Fatal("unknown server should fail")
	}
}

func TestConnectServerRules(t *testing.T) {
	r := newRig(t)
	if err := r.m.ConnectServer("S1", "G2"); err == nil {
		t.Fatal("connecting an active server should fail")
	}
	if err := r.m.ConnectServer("SP", "G2"); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll(0)
	if r.a.Server("SP").Group != "G2" {
		t.Fatal("SP not repointed")
	}
	if err := r.m.ConnectServer("SP", "nope"); err == nil {
		t.Fatal("unknown queue should fail")
	}
}

func TestMoveClient(t *testing.T) {
	r := newRig(t)
	if err := r.m.MoveClient("C1", "G2"); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll(0)
	if r.a.Client("C1").Group != "G2" {
		t.Fatal("client not moved")
	}
	if err := r.m.MoveClient("C1", "nope"); err == nil {
		t.Fatal("unknown queue should fail")
	}
	if err := r.m.MoveClient("nope", "G1"); err == nil {
		t.Fatal("unknown client should fail")
	}
}

func TestFindServerUsesWarmRemosOnly(t *testing.T) {
	r := newRig(t)
	// Cold Remos: the spare is invisible (§5.3 cold-query lag).
	if _, err := r.m.FindServer("C1", 1e3); err == nil {
		t.Fatal("cold Remos should hide the spare")
	}
	r.rm.Prequery(r.a.Server("SP").Host, r.cHost)
	r.k.RunAll(0)
	name, err := r.m.FindServer("C1", 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if name != "SP" {
		t.Fatalf("found %q, want SP", name)
	}
	// Threshold above the link capacity: no server qualifies.
	if _, err := r.m.FindServer("C1", 100e6); err == nil {
		t.Fatal("impossible threshold should fail")
	}
}

func TestRemosGetFlowRoundTrip(t *testing.T) {
	r := newRig(t)
	got := -1.0
	if err := r.m.RemosGetFlow("C1", "S1", func(bw float64) { got = bw }); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll(0)
	if got <= 0 {
		t.Fatal("no bandwidth answer")
	}
	if err := r.m.RemosGetFlow("nope", "S1", nil); err == nil {
		t.Fatal("unknown client should fail")
	}
	if err := r.m.RemosGetFlow("C1", "nope", nil); err == nil {
		t.Fatal("unknown server should fail")
	}
}

func TestFailureInjection(t *testing.T) {
	r := newRig(t)
	boom := errors.New("rmi boom")
	r.m.FailNext = boom
	if err := r.m.ActivateServer("SP"); !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	// The failure is one-shot.
	if err := r.m.ActivateServer("SP"); err != nil {
		t.Fatal(err)
	}
	if r.m.Stats().Failures != 1 {
		t.Fatalf("failures=%d", r.m.Stats().Failures)
	}
}

func TestStatsCount(t *testing.T) {
	r := newRig(t)
	_ = r.m.ActivateServer("SP")
	_ = r.m.MoveClient("C1", "G2")
	_, _ = r.m.FindServer("C1", 1e3)
	st := r.m.Stats()
	if st.ActivateServer != 1 || st.MoveClient != 1 || st.FindServer != 1 {
		t.Fatalf("stats %+v", st)
	}
}
