// Package envmgr implements the environment manager: the runtime-layer
// operator suite of Table 1, invoked (in the paper, via RMI) to change the
// running system. Every call is a remote invocation from the repair
// infrastructure host — restricted in the paper's testbed to the machine
// running Server 4 — so each op pays a control-message round trip on the
// simulated network before its effect lands.
package envmgr

import (
	"fmt"

	"archadapt/internal/app"
	"archadapt/internal/netsim"
	"archadapt/internal/remos"
	"archadapt/internal/sim"
)

// OpStats counts operator invocations, for Table 1 benchmarks and tests.
type OpStats struct {
	CreateReqQueue   uint64
	FindServer       uint64
	MoveClient       uint64
	ConnectServer    uint64
	ActivateServer   uint64
	DeactivateServer uint64
	RemosGetFlow     uint64
	Failures         uint64
}

// Manager exposes the Table 1 operators against a running app.System.
type Manager struct {
	K    *sim.Kernel
	Net  *netsim.Network
	App  *app.System
	Host netsim.NodeID // repair-infrastructure machine
	Rm   *remos.Service

	// RPCBits is the size of one invocation message (default 1 KB).
	RPCBits float64
	// Priority of control-plane traffic.
	Priority netsim.Priority

	stats OpStats
	// FailNext, when set, makes the next mutating operator fail — failure
	// injection for translator abort paths.
	FailNext error
}

// New creates a manager on host.
func New(k *sim.Kernel, net *netsim.Network, a *app.System, host netsim.NodeID, rm *remos.Service) *Manager {
	return &Manager{K: k, Net: net, App: a, Host: host, Rm: rm, RPCBits: 8192}
}

// Stats returns operator invocation counts.
func (m *Manager) Stats() OpStats { return m.stats }

func (m *Manager) injected() error {
	if m.FailNext != nil {
		err := m.FailNext
		m.FailNext = nil
		m.stats.Failures++
		return err
	}
	return nil
}

// rpc schedules effect after a round trip to target and returns the modeled
// one-way delay.
func (m *Manager) rpc(target netsim.NodeID, effect func()) float64 {
	return m.Net.SendMessage(m.Host, target, m.RPCBits, m.Priority, effect)
}

// CreateReqQueue adds a logical request queue for a group on the queue
// machine (Table 1 createReqQueue).
func (m *Manager) CreateReqQueue(group string) error {
	if err := m.injected(); err != nil {
		return err
	}
	m.stats.CreateReqQueue++
	// Validate synchronously; the queue materializes after the RPC delay.
	for _, g := range m.App.Groups() {
		if g == group {
			return fmt.Errorf("envmgr: queue for %s already exists", group)
		}
	}
	m.rpc(m.App.QueueHost, func() {
		_ = m.App.CreateQueue(group)
	})
	return nil
}

// FindServer finds a spare (inactive) server whose predicted bandwidth to
// the client is at least bwThresh (Table 1 findServer). Only Remos-warm
// pairs are visible — the cold-query lag of §5.3 is real here, so callers
// should pre-query.
func (m *Manager) FindServer(client string, bwThresh float64) (string, error) {
	m.stats.FindServer++
	cli := m.App.Client(client)
	if cli == nil {
		return "", fmt.Errorf("envmgr: no client %q", client)
	}
	best, bestBW := "", -1.0
	for _, name := range m.App.Servers() {
		srv := m.App.Server(name)
		if srv.Active() {
			continue
		}
		bw, ok := m.Rm.Predict(srv.Host, cli.Host)
		if !ok || bw < bwThresh {
			continue
		}
		if bw > bestBW {
			best, bestBW = name, bw
		}
	}
	if best == "" {
		return "", fmt.Errorf("envmgr: no spare server with %.0f bps to %s", bwThresh, client)
	}
	return best, nil
}

// MoveClient re-routes a client to another group's queue (Table 1
// moveClient).
func (m *Manager) MoveClient(client, group string) error {
	if err := m.injected(); err != nil {
		return err
	}
	if m.App.Client(client) == nil {
		return fmt.Errorf("envmgr: no client %q", client)
	}
	if !m.hasQueue(group) {
		return fmt.Errorf("envmgr: no queue for %q", group)
	}
	m.stats.MoveClient++
	m.rpc(m.App.QueueHost, func() { _ = m.App.MoveClient(client, group) })
	return nil
}

// ConnectServer points a server at a group's queue (Table 1 connectServer).
func (m *Manager) ConnectServer(server, group string) error {
	if err := m.injected(); err != nil {
		return err
	}
	srv := m.App.Server(server)
	if srv == nil {
		return fmt.Errorf("envmgr: no server %q", server)
	}
	if srv.Active() {
		return fmt.Errorf("envmgr: server %q is active", server)
	}
	if !m.hasQueue(group) {
		return fmt.Errorf("envmgr: no queue for %q", group)
	}
	m.stats.ConnectServer++
	m.rpc(srv.Host, func() { _ = m.App.ConnectServer(server, group) })
	return nil
}

// ActivateServer signals a server to begin pulling requests (Table 1
// activateServer).
func (m *Manager) ActivateServer(server string) error {
	if err := m.injected(); err != nil {
		return err
	}
	srv := m.App.Server(server)
	if srv == nil {
		return fmt.Errorf("envmgr: no server %q", server)
	}
	if srv.Active() {
		return fmt.Errorf("envmgr: server %q already active", server)
	}
	m.stats.ActivateServer++
	m.rpc(srv.Host, func() { _ = m.App.Activate(server) })
	return nil
}

// DeactivateServer signals a server to stop pulling requests (Table 1
// deactivateServer).
func (m *Manager) DeactivateServer(server string) error {
	if err := m.injected(); err != nil {
		return err
	}
	srv := m.App.Server(server)
	if srv == nil {
		return fmt.Errorf("envmgr: no server %q", server)
	}
	if !srv.Active() {
		return fmt.Errorf("envmgr: server %q not active", server)
	}
	m.stats.DeactivateServer++
	m.rpc(srv.Host, func() { _ = m.App.Deactivate(server) })
	return nil
}

// RemosGetFlow returns (asynchronously) the predicted bandwidth between a
// client and a server (Table 1 remos_get_flow).
func (m *Manager) RemosGetFlow(client, server string, cb func(bw float64)) error {
	m.stats.RemosGetFlow++
	cli := m.App.Client(client)
	if cli == nil {
		return fmt.Errorf("envmgr: no client %q", client)
	}
	srv := m.App.Server(server)
	if srv == nil {
		return fmt.Errorf("envmgr: no server %q", server)
	}
	m.Rm.GetFlow(m.Host, srv.Host, cli.Host, cb)
	return nil
}

func (m *Manager) hasQueue(group string) bool {
	for _, g := range m.App.Groups() {
		if g == group {
			return true
		}
	}
	return false
}
