package remos

import (
	"math"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

func rig() (*sim.Kernel, *netsim.Network, *Service, netsim.NodeID, netsim.NodeID, netsim.LinkID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddHost("a")
	r := n.AddRouter("r")
	b := n.AddHost("b")
	h := n.AddHost("remos")
	l1 := n.Connect(a, r, 10e6, 1e-3)
	n.Connect(b, r, 10e6, 1e-3)
	n.Connect(h, r, 10e6, 1e-3)
	return k, n, New(k, n, h), a, b, l1
}

func TestColdQueryTakesMinutes(t *testing.T) {
	k, _, s, a, b, _ := rig()
	var answered float64 = -1
	s.GetFlow(s.Host, a, b, func(bw float64) { answered = k.Now() })
	k.RunAll(0)
	if answered < s.ColdDelay {
		t.Fatalf("cold query answered at %v, want >= %v", answered, s.ColdDelay)
	}
	if s.ColdQueries() != 1 || s.Queries() != 1 {
		t.Fatalf("stats: %d/%d", s.ColdQueries(), s.Queries())
	}
}

func TestWarmQueryIsFast(t *testing.T) {
	k, _, s, a, b, _ := rig()
	s.GetFlow(s.Host, a, b, func(float64) {})
	k.RunAll(0)
	start := k.Now()
	var answered float64 = -1
	s.GetFlow(s.Host, a, b, func(float64) { answered = k.Now() })
	k.RunAll(0)
	if d := answered - start; d > 1 {
		t.Fatalf("warm query took %v, want sub-second", d)
	}
	if s.ColdQueries() != 1 {
		t.Fatalf("warm query should not re-collect: %d", s.ColdQueries())
	}
}

func TestConcurrentColdQueriesJoin(t *testing.T) {
	k, _, s, a, b, _ := rig()
	answers := 0
	for i := 0; i < 3; i++ {
		s.GetFlow(s.Host, a, b, func(float64) { answers++ })
	}
	k.RunAll(0)
	if answers != 3 {
		t.Fatalf("answers=%d", answers)
	}
	if s.ColdQueries() != 1 {
		t.Fatalf("concurrent queries should share one collection, got %d", s.ColdQueries())
	}
}

func TestPredictOnlyWarmPairs(t *testing.T) {
	k, _, s, a, b, _ := rig()
	if _, ok := s.Predict(a, b); ok {
		t.Fatal("cold pair should not predict")
	}
	s.Prequery(a, b)
	if _, ok := s.Predict(a, b); ok {
		t.Fatal("prequery must take ColdDelay before the pair warms")
	}
	k.RunAll(0)
	bw, ok := s.Predict(a, b)
	if !ok {
		t.Fatal("pair should be warm after prequery completes")
	}
	if math.Abs(bw-10e6) > 1 {
		t.Fatalf("bw=%v", bw)
	}
}

func TestPredictionTracksNetworkState(t *testing.T) {
	k, n, s, a, b, l1 := rig()
	s.Prequery(a, b)
	k.RunAll(0)
	n.SetBackgroundBoth(l1, 8e6)
	bw, _ := s.Predict(a, b)
	if math.Abs(bw-2e6) > 1 {
		t.Fatalf("prediction should reflect current competition: %v", bw)
	}
}

func TestPrequeryAllWarmsAllPairs(t *testing.T) {
	k, n, s, a, b, _ := rig()
	c := n.AddHost("c")
	r2, _ := n.Lookup("r")
	n.Connect(c, r2, 10e6, 1e-3)
	s.PrequeryAll([]netsim.NodeID{a, b}, []netsim.NodeID{b, c})
	k.RunAll(0)
	for _, pair := range [][2]netsim.NodeID{{a, b}, {a, c}, {b, c}} {
		if !s.Warm(pair[0], pair[1]) {
			t.Fatalf("pair %v not warm", pair)
		}
	}
	if s.Warm(b, a) {
		t.Fatal("reverse pair should not be warm (directional)")
	}
	// Re-prequerying warm pairs is a no-op.
	cold := s.ColdQueries()
	s.PrequeryAll([]netsim.NodeID{a}, []netsim.NodeID{b})
	if s.ColdQueries() != cold {
		t.Fatal("prequery of a warm pair should not re-collect")
	}
}

func TestGetFlowWhilePrequeryPendingJoins(t *testing.T) {
	k, _, s, a, b, _ := rig()
	s.Prequery(a, b)
	got := -1.0
	s.GetFlow(s.Host, a, b, func(bw float64) { got = bw })
	k.RunAll(0)
	if got < 0 {
		t.Fatal("query joined to pending collection never answered")
	}
	if s.ColdQueries() != 1 {
		t.Fatalf("collections=%d, want 1", s.ColdQueries())
	}
}

func TestQueryDelayGrowsUnderCongestion(t *testing.T) {
	// The Remos round trip itself rides the shared network (§5.3 lag).
	k, n, s, a, b, l1 := rig()
	s.Prequery(a, b)
	k.RunAll(0)
	t0 := k.Now()
	var d1 float64
	s.GetFlow(a, a, b, func(float64) { d1 = k.Now() - t0 })
	k.RunAll(0)
	n.SetBackgroundBoth(l1, 10e6)
	t1 := k.Now()
	var d2 float64
	s.GetFlow(a, a, b, func(float64) { d2 = k.Now() - t1 })
	k.RunAll(0)
	if d2 < 5*d1 {
		t.Fatalf("congested query %v vs idle %v", d2, d1)
	}
}

// TestGetFlowBatchMixedWarmCold: a batch answers warm pairs with live
// measurements, reports NaN for cold pairs, and starts their collections so
// the next batch sees them warm — all in one query/response exchange.
func TestGetFlowBatchMixedWarmCold(t *testing.T) {
	k, n, s, a, b, _ := rig()
	s.Prequery(a, b)
	k.RunAll(0) // a→b warm; b→a still cold
	srcs := []netsim.NodeID{a, b}
	dsts := []netsim.NodeID{b, a}
	out := make([]float64, 2)
	queriesBefore := s.Queries()
	var got []float64
	s.GetFlowBatch(s.Host, srcs, dsts, out, func(bws []float64) { got = bws })
	k.RunAll(0)
	if got == nil {
		t.Fatal("batch callback never fired")
	}
	if want := n.AvailBandwidth(a, b); got[0] != want {
		t.Errorf("warm pair measured %v, want %v", got[0], want)
	}
	if !math.IsNaN(got[1]) {
		t.Errorf("cold pair measured %v, want NaN", got[1])
	}
	if s.Queries() != queriesBefore+1 {
		t.Errorf("batch counted as %d queries, want 1", s.Queries()-queriesBefore)
	}
	if !s.Warm(b, a) {
		t.Error("cold pair's background collection never completed")
	}
	// The next batch sees the previously-cold pair warm.
	var second []float64
	s.GetFlowBatch(s.Host, srcs, dsts, out, func(bws []float64) { second = bws })
	k.RunAll(0)
	if math.IsNaN(second[1]) {
		t.Error("pair still cold on the second batch")
	}
}

// TestGetFlowBatchReusesBuffer: the caller's out buffer is handed back to
// the callback, so periodic callers can reuse one slice with no per-batch
// allocation of results.
func TestGetFlowBatchReusesBuffer(t *testing.T) {
	k, _, s, a, b, _ := rig()
	s.Prequery(a, b)
	k.RunAll(0)
	out := make([]float64, 1)
	s.GetFlowBatch(s.Host, []netsim.NodeID{a}, []netsim.NodeID{b}, out, func(bws []float64) {
		if &bws[0] != &out[0] {
			t.Error("callback did not receive the caller's buffer")
		}
	})
	k.RunAll(0)
}
