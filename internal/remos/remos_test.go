package remos

import (
	"math"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

func rig() (*sim.Kernel, *netsim.Network, *Service, netsim.NodeID, netsim.NodeID, netsim.LinkID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddHost("a")
	r := n.AddRouter("r")
	b := n.AddHost("b")
	h := n.AddHost("remos")
	l1 := n.Connect(a, r, 10e6, 1e-3)
	n.Connect(b, r, 10e6, 1e-3)
	n.Connect(h, r, 10e6, 1e-3)
	return k, n, New(k, n, h), a, b, l1
}

func TestColdQueryTakesMinutes(t *testing.T) {
	k, _, s, a, b, _ := rig()
	var answered float64 = -1
	s.GetFlow(s.Host, a, b, func(bw float64) { answered = k.Now() })
	k.RunAll(0)
	if answered < s.ColdDelay {
		t.Fatalf("cold query answered at %v, want >= %v", answered, s.ColdDelay)
	}
	if s.ColdQueries() != 1 || s.Queries() != 1 {
		t.Fatalf("stats: %d/%d", s.ColdQueries(), s.Queries())
	}
}

func TestWarmQueryIsFast(t *testing.T) {
	k, _, s, a, b, _ := rig()
	s.GetFlow(s.Host, a, b, func(float64) {})
	k.RunAll(0)
	start := k.Now()
	var answered float64 = -1
	s.GetFlow(s.Host, a, b, func(float64) { answered = k.Now() })
	k.RunAll(0)
	if d := answered - start; d > 1 {
		t.Fatalf("warm query took %v, want sub-second", d)
	}
	if s.ColdQueries() != 1 {
		t.Fatalf("warm query should not re-collect: %d", s.ColdQueries())
	}
}

func TestConcurrentColdQueriesJoin(t *testing.T) {
	k, _, s, a, b, _ := rig()
	answers := 0
	for i := 0; i < 3; i++ {
		s.GetFlow(s.Host, a, b, func(float64) { answers++ })
	}
	k.RunAll(0)
	if answers != 3 {
		t.Fatalf("answers=%d", answers)
	}
	if s.ColdQueries() != 1 {
		t.Fatalf("concurrent queries should share one collection, got %d", s.ColdQueries())
	}
}

func TestPredictOnlyWarmPairs(t *testing.T) {
	k, _, s, a, b, _ := rig()
	if _, ok := s.Predict(a, b); ok {
		t.Fatal("cold pair should not predict")
	}
	s.Prequery(a, b)
	if _, ok := s.Predict(a, b); ok {
		t.Fatal("prequery must take ColdDelay before the pair warms")
	}
	k.RunAll(0)
	bw, ok := s.Predict(a, b)
	if !ok {
		t.Fatal("pair should be warm after prequery completes")
	}
	if math.Abs(bw-10e6) > 1 {
		t.Fatalf("bw=%v", bw)
	}
}

func TestPredictionTracksNetworkState(t *testing.T) {
	k, n, s, a, b, l1 := rig()
	s.Prequery(a, b)
	k.RunAll(0)
	n.SetBackgroundBoth(l1, 8e6)
	bw, _ := s.Predict(a, b)
	if math.Abs(bw-2e6) > 1 {
		t.Fatalf("prediction should reflect current competition: %v", bw)
	}
}

func TestPrequeryAllWarmsAllPairs(t *testing.T) {
	k, n, s, a, b, _ := rig()
	c := n.AddHost("c")
	r2, _ := n.Lookup("r")
	n.Connect(c, r2, 10e6, 1e-3)
	s.PrequeryAll([]netsim.NodeID{a, b}, []netsim.NodeID{b, c})
	k.RunAll(0)
	for _, pair := range [][2]netsim.NodeID{{a, b}, {a, c}, {b, c}} {
		if !s.Warm(pair[0], pair[1]) {
			t.Fatalf("pair %v not warm", pair)
		}
	}
	if s.Warm(b, a) {
		t.Fatal("reverse pair should not be warm (directional)")
	}
	// Re-prequerying warm pairs is a no-op.
	cold := s.ColdQueries()
	s.PrequeryAll([]netsim.NodeID{a}, []netsim.NodeID{b})
	if s.ColdQueries() != cold {
		t.Fatal("prequery of a warm pair should not re-collect")
	}
}

func TestGetFlowWhilePrequeryPendingJoins(t *testing.T) {
	k, _, s, a, b, _ := rig()
	s.Prequery(a, b)
	got := -1.0
	s.GetFlow(s.Host, a, b, func(bw float64) { got = bw })
	k.RunAll(0)
	if got < 0 {
		t.Fatal("query joined to pending collection never answered")
	}
	if s.ColdQueries() != 1 {
		t.Fatalf("collections=%d, want 1", s.ColdQueries())
	}
}

func TestQueryDelayGrowsUnderCongestion(t *testing.T) {
	// The Remos round trip itself rides the shared network (§5.3 lag).
	k, n, s, a, b, l1 := rig()
	s.Prequery(a, b)
	k.RunAll(0)
	t0 := k.Now()
	var d1 float64
	s.GetFlow(a, a, b, func(float64) { d1 = k.Now() - t0 })
	k.RunAll(0)
	n.SetBackgroundBoth(l1, 10e6)
	t1 := k.Now()
	var d2 float64
	s.GetFlow(a, a, b, func(float64) { d2 = k.Now() - t1 })
	k.RunAll(0)
	if d2 < 5*d1 {
		t.Fatalf("congested query %v vs idle %v", d2, d1)
	}
}
