// Package remos simulates the Remos resource-query system the paper uses as
// its network probe (remos_get_flow, Table 1). It predicts the available
// bandwidth between two hosts by querying the network simulator, and
// reproduces the operational artifact reported in §5.3: "The first Remos
// query for information about bandwidth between two nodes on the network
// takes several minutes because Remos needs to collect and analyze data.
// After this initial delay, the query is quite fast." Pre-querying
// (Prequery/PrequeryAll) is the paper's mitigation.
package remos

import (
	"math"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

type pairKey struct{ src, dst netsim.NodeID }

// Service is a Remos collector running on a host.
type Service struct {
	K    *sim.Kernel
	Net  *netsim.Network
	Host netsim.NodeID

	// ColdDelay is the collection time for the first query about a host
	// pair. The paper reports "several minutes"; default 90 s.
	ColdDelay float64
	// WarmDelay is the processing time for subsequent queries.
	WarmDelay float64
	// QueryBits is the size of the query/response messages.
	QueryBits float64
	// Priority of Remos control traffic.
	Priority netsim.Priority

	warm       map[pairKey]bool
	pending    map[pairKey][]func(float64)
	collecting map[pairKey]bool

	queries     uint64
	coldQueries uint64

	queryPool []*query
}

// query is one in-flight remos_get_flow exchange. Records are pooled: the
// warm path (every bandwidth gauge tick, fleet-wide) runs query → serve →
// reply → callback without allocating.
type query struct {
	s                *Service
	caller, src, dst netsim.NodeID
	cb               func(float64)
	bw               float64
}

func (s *Service) getQuery() *query {
	if n := len(s.queryPool); n > 0 {
		q := s.queryPool[n-1]
		s.queryPool[n-1] = nil
		s.queryPool = s.queryPool[:n-1]
		return q
	}
	return &query{s: s}
}

func (s *Service) putQuery(q *query) {
	q.cb = nil
	s.queryPool = append(s.queryPool, q)
}

// Static callbacks for the pooled query path (no per-query closures).
func serveFn(arg any) {
	q := arg.(*query)
	q.s.serve(q)
}

func warmReplyFn(arg any) {
	q := arg.(*query)
	q.bw = q.s.measure(q.src, q.dst)
	q.s.Net.SendMessageTo(q.s.Host, q.caller, q.s.QueryBits, q.s.Priority, callbackFn, q)
}

func callbackFn(arg any) {
	q := arg.(*query)
	cb, bw := q.cb, q.bw
	q.s.putQuery(q)
	cb(bw)
}

// New creates a Remos service on host.
func New(k *sim.Kernel, net *netsim.Network, host netsim.NodeID) *Service {
	return &Service{
		K: k, Net: net, Host: host,
		ColdDelay: 90, WarmDelay: 0.05, QueryBits: 8192,
		warm:       map[pairKey]bool{},
		pending:    map[pairKey][]func(float64){},
		collecting: map[pairKey]bool{},
	}
}

// Queries returns the total number of GetFlow calls served.
func (s *Service) Queries() uint64 { return s.queries }

// ColdQueries returns how many of them hit the collection path.
func (s *Service) ColdQueries() uint64 { return s.coldQueries }

// Warm reports whether the pair has been collected.
func (s *Service) Warm(src, dst netsim.NodeID) bool { return s.warm[pairKey{src, dst}] }

// measure reads the current prediction from the network.
func (s *Service) measure(src, dst netsim.NodeID) float64 {
	return s.Net.AvailBandwidth(src, dst)
}

// GetFlow asynchronously resolves the predicted available bandwidth from src
// to dst on behalf of a caller host: query message to the service, cold
// collection if the pair is new, response message back, then cb. This is
// Table 1's remos_get_flow.
func (s *Service) GetFlow(caller, src, dst netsim.NodeID, cb func(bw float64)) {
	q := s.getQuery()
	q.caller, q.src, q.dst, q.cb = caller, src, dst, cb
	s.Net.SendMessageTo(caller, s.Host, s.QueryBits, s.Priority, serveFn, q)
}

func (s *Service) serve(q *query) {
	s.queries++
	key := pairKey{q.src, q.dst}
	if s.warm[key] {
		s.K.AfterAnonArg(s.WarmDelay, warmReplyFn, q)
		return
	}
	// Cold: start (or join) a collection for this pair. The cold path is
	// rare (once per pair), so it trades the pooled record for a closure.
	caller, src, dst, cb := q.caller, q.src, q.dst, q.cb
	s.putQuery(q)
	reply := func(bw float64) {
		s.Net.SendMessage(s.Host, caller, s.QueryBits, s.Priority, func() { cb(bw) })
	}
	s.pending[key] = append(s.pending[key], reply)
	if s.collecting[key] {
		return
	}
	s.startCollection(key, src, dst)
}

// Predict returns the cached-path prediction synchronously when the pair is
// warm. Cold pairs return ok=false — callers like findServer must either
// wait for a GetFlow or skip the pair, which is precisely the lag the paper
// worked around by pre-querying.
func (s *Service) Predict(src, dst netsim.NodeID) (bw float64, ok bool) {
	if !s.warm[pairKey{src, dst}] {
		return 0, false
	}
	return s.measure(src, dst), true
}

// Prequery starts collection for a pair without a caller (the paper:
// "we pre-queried Remos so that subsequent queries were much faster").
func (s *Service) Prequery(src, dst netsim.NodeID) {
	key := pairKey{src, dst}
	if s.warm[key] {
		return
	}
	if s.collecting[key] {
		return
	}
	s.startCollection(key, src, dst)
}

// startCollection begins the cold data-collection pass for a pair; when it
// completes, every pending waiter gets the fresh measurement.
func (s *Service) startCollection(key pairKey, src, dst netsim.NodeID) {
	s.collecting[key] = true
	s.coldQueries++
	s.K.AfterAnon(s.ColdDelay, func() {
		s.warm[key] = true
		delete(s.collecting, key)
		bw := s.measure(src, dst)
		waiters := s.pending[key]
		delete(s.pending, key)
		for _, w := range waiters {
			w(bw)
		}
	})
}

// GetFlowBatch resolves the predicted available bandwidth for len(srcs)
// (src, dst) pairs in one query/response exchange: one query message
// caller→collector, one WarmDelay for the whole batch, one response message
// back (sized per pair), then cb(out). The pairs need not involve the
// caller — like GetFlow, the collector answers about arbitrary host pairs.
//
// Warm pairs are measured; cold pairs report NaN and kick off a background
// collection so later batches see them warm — a batch issued on a periodic
// control tick must never block the several minutes a cold collection takes.
// out must have length len(srcs) and is passed through to cb, so a periodic
// caller can reuse one buffer across batches.
func (s *Service) GetFlowBatch(caller netsim.NodeID, srcs, dsts []netsim.NodeID, out []float64, cb func(bws []float64)) {
	if len(srcs) != len(dsts) || len(out) != len(srcs) {
		panic("remos: GetFlowBatch srcs/dsts/out length mismatch")
	}
	s.Net.SendMessage(caller, s.Host, s.QueryBits, s.Priority, func() {
		s.queries++
		s.K.AfterAnon(s.WarmDelay, func() {
			for i := range srcs {
				if s.warm[pairKey{srcs[i], dsts[i]}] {
					out[i] = s.measure(srcs[i], dsts[i])
				} else {
					out[i] = math.NaN()
					s.Prequery(srcs[i], dsts[i])
				}
			}
			bits := s.QueryBits + 64*float64(len(srcs))
			s.Net.SendMessage(s.Host, caller, bits, s.Priority, func() { cb(out) })
		})
	})
}

// PrequeryAll warms every (src, dst) pair.
func (s *Service) PrequeryAll(srcs, dsts []netsim.NodeID) {
	for _, a := range srcs {
		for _, b := range dsts {
			if a != b {
				s.Prequery(a, b)
			}
		}
	}
}
