// Package script implements the repair-script language of Figure 5: an
// imperative layer over the constraint expression language in which repair
// strategies and tactics are written:
//
//	strategy fixLatency(badClient : ClientT) = {
//	    if (fixServerLoad(badClient)) { commit repair; }
//	    else { if (fixBandwidth(badClient)) { commit repair; }
//	           else { abort ModelError; } }
//	}
//
//	tactic fixServerLoad(client : ClientT) : boolean = {
//	    let loaded : set = select sgrp : ServerGroupT in self.Components |
//	        connected(sgrp, client) and sgrp.load > maxServerLoad;
//	    if (size(loaded) == 0) { return false; }
//	    foreach sGrp in loaded { sGrp.addServer(); }
//	    return size(loaded) > 0;
//	}
//
// The paper's prototype hand-coded its repairs "using a form that could be
// generated from the repair strategies in Figure 5"; this package closes
// that gap: Compile turns the Figure 5 text into repair.Strategy values that
// run on the same engine as the hand-coded Go tactics.
//
// Statements: `let x [: type] = expr;`, `if (expr) {..} [else {..}]`,
// `foreach v in expr {..}`, `return expr;`, `commit repair;`,
// `abort Name;`, and method/procedure calls `recv.method(args);`.
// Expressions are exactly the constraint language (select/exists/forall,
// connected, attached, size, style functions). Style operators (addServer,
// move, remove) are supplied by an OperatorSet.
package script

import (
	"fmt"
	"strings"
	"unicode"

	"archadapt/internal/constraint"
)

// ---- tokens ----

type tok struct {
	text string
	pos  int // byte offset in source
	end  int
}

func lex(src string) ([]tok, error) {
	var toks []tok
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, tok{text: src[i:j], pos: i, end: j})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, tok{text: src[i:j], pos: i, end: j})
			i = j
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("script: unterminated string at %d", i)
			}
			toks = append(toks, tok{text: src[i : j+1], pos: i, end: j + 1})
			i = j + 1
		case strings.ContainsRune("{}();,.|:", rune(c)):
			toks = append(toks, tok{text: string(c), pos: i, end: i + 1})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, tok{text: src[i : i+2], pos: i, end: i + 2})
				i += 2
			} else {
				toks = append(toks, tok{text: string(c), pos: i, end: i + 1})
				i++
			}
		case strings.ContainsRune("+-*/", rune(c)):
			toks = append(toks, tok{text: string(c), pos: i, end: i + 1})
			i++
		default:
			return nil, fmt.Errorf("script: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

// ---- AST ----

type stmt interface{ isStmt() }

type letStmt struct {
	name string
	expr constraint.Expr
}

type ifStmt struct {
	cond      constraint.Expr
	then, els []stmt
}

type foreachStmt struct {
	varName string
	domain  constraint.Expr
	body    []stmt
}

type returnStmt struct{ expr constraint.Expr }

type commitStmt struct{}

type abortStmt struct{ reason string }

type callStmt struct {
	recv   string // "" for plain procedure calls
	method string
	args   []constraint.Expr
}

func (*letStmt) isStmt()     {}
func (*ifStmt) isStmt()      {}
func (*foreachStmt) isStmt() {}
func (*returnStmt) isStmt()  {}
func (*commitStmt) isStmt()  {}
func (*abortStmt) isStmt()   {}
func (*callStmt) isStmt()    {}

// param is a declared strategy/tactic parameter.
type param struct {
	name string
	typ  string
}

// Def is one parsed strategy or tactic definition.
type Def struct {
	Kind   string // "strategy" or "tactic"
	Name   string
	params []param
	body   []stmt
}
