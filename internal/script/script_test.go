package script

import (
	"errors"
	"strings"
	"testing"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
	"archadapt/internal/repair"
)

// testModel builds a one-client, two-group model with thresholds.
func testModel() *model.System {
	s := model.NewSystem("t", "ClientServerFam")
	s.Props().Set("maxLatency", 2.0)
	s.Props().Set("maxServerLoad", 6.0)
	s.Props().Set("minBandwidth", 10e3)
	g1 := s.AddComponent("G1", "ServerGroupT")
	g1.AddPort("provide", "ProvideT")
	g1.Props().Set("load", 1.0)
	g2 := s.AddComponent("G2", "ServerGroupT")
	g2.AddPort("provide", "ProvideT")
	g2.Props().Set("load", 0.0)
	c := s.AddComponent("C1", "ClientT")
	c.AddPort("request", "RequestT")
	c.Props().Set("averageLatency", 5.0)
	conn := s.AddConnector("G1Conn", "ReqConnT")
	conn.AddRole("server", "ServerRoleT")
	r := conn.AddRole("C1Role", "ClientRoleT")
	r.Props().Set("bandwidth", 5e3)
	_ = s.Attach(g1.Port("provide"), conn.Role("server"))
	_ = s.Attach(c.Port("request"), r)
	return s
}

func violation(s *model.System) constraint.Violation {
	inv := constraint.MustInvariant("latencyBound", "ClientT", "averageLatency <= maxLatency")
	vs := inv.Check(s, nil, true)
	if len(vs) != 1 {
		panic("want one violation")
	}
	return vs[0]
}

// run compiles src with ops and executes strategy `name` on the model.
func run(t *testing.T, src string, ops OperatorSet, s *model.System) repair.Outcome {
	t.Helper()
	lib, err := Compile(src, ops)
	if err != nil {
		t.Fatal(err)
	}
	var strat *repair.Strategy
	for _, st := range lib.Strategies {
		strat = st
	}
	return strat.Execute(s, violation(s), nil, 0)
}

func TestCommitAndModelMutation(t *testing.T) {
	s := testModel()
	called := 0
	ops := OperatorSet{
		Methods: map[string]Method{
			"poke": func(ctx *repair.Context, recv constraint.Value, args []constraint.Value) error {
				called++
				ctx.Txn.SetProp(recv.Elem, "poked", true)
				return nil
			},
		},
	}
	out := run(t, `
        strategy fix(cli : ClientT) = {
            cli.poke();
            commit repair;
        }`, ops, s)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if called != 1 {
		t.Fatalf("method called %d times", called)
	}
	if !s.Component("C1").Props().BoolOr("poked", false) {
		t.Fatal("mutation missing after commit")
	}
}

func TestNoCommitMeansNotApplied(t *testing.T) {
	s := testModel()
	out := run(t, `
        strategy fix(cli : ClientT) = {
            let x : float = 1 + 1;
        }`, OperatorSet{}, s)
	if !errors.Is(out.Err, repair.ErrNoTacticApplied) {
		t.Fatalf("err=%v", out.Err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	s := testModel()
	snap := s.Clone()
	ops := OperatorSet{
		Methods: map[string]Method{
			"poke": func(ctx *repair.Context, recv constraint.Value, args []constraint.Value) error {
				ctx.Txn.SetProp(recv.Elem, "poked", true)
				return nil
			},
		},
	}
	out := run(t, `
        strategy fix(cli : ClientT) = {
            cli.poke();
            abort ModelError;
        }`, ops, s)
	if out.Err == nil || !strings.Contains(out.Err.Error(), "ModelError") {
		t.Fatalf("err=%v", out.Err)
	}
	if !s.Equal(snap) {
		t.Fatal("abort did not roll back")
	}
}

func TestIfElseAndLet(t *testing.T) {
	s := testModel()
	out := run(t, `
        strategy fix(cli : ClientT) = {
            let lat : float = cli.averageLatency;
            if (lat > maxLatency) { commit repair; }
            else { abort Unreachable; }
        }`, OperatorSet{}, s)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
}

func TestForeachIteratesSelect(t *testing.T) {
	s := testModel()
	var poked []string
	ops := OperatorSet{
		Methods: map[string]Method{
			"mark": func(ctx *repair.Context, recv constraint.Value, args []constraint.Value) error {
				poked = append(poked, recv.Elem.Name())
				return nil
			},
		},
	}
	out := run(t, `
        strategy fix(cli : ClientT) = {
            foreach g in select x : ServerGroupT in self.Components | x.load >= 0 {
                g.mark();
            }
            commit repair;
        }`, ops, s)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(poked) != 2 || poked[0] != "G1" || poked[1] != "G2" {
		t.Fatalf("poked=%v", poked)
	}
}

func TestTacticCallAndReturn(t *testing.T) {
	s := testModel()
	out := run(t, `
        strategy fix(cli : ClientT) = {
            if (isBad(cli)) { commit repair; }
            else { abort NotBad; }
        }
        tactic isBad(c : ClientT) : boolean = {
            return c.averageLatency > maxLatency;
        }`, OperatorSet{}, s)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
}

func TestStyleFuncsAvailable(t *testing.T) {
	s := testModel()
	ops := OperatorSet{
		Funcs: map[string]func([]constraint.Value) (constraint.Value, error){
			"answer": func([]constraint.Value) (constraint.Value, error) {
				return constraint.Num(42), nil
			},
		},
	}
	out := run(t, `
        strategy fix(cli : ClientT) = {
            if (answer() == 42) { commit repair; }
        }`, ops, s)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`strategy = { }`,
		`strategy f() = { let ; }`,
		`strategy f() = { if true { } }`, // missing parens
		`strategy f() = { foreach in x { } }`,
		`strategy f() = { commit repair }`, // missing semicolon
		`strategy f() = { abort; }`,
		`strategy f() = { x.y(; }`,
		`strategy f() = { 5; }`,
		`tactic only() : boolean = { return true; }`, // no strategy
		`strategy f() = { unterminated`,
	}
	for _, src := range bad {
		if _, err := Compile(src, OperatorSet{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	s := testModel()
	cases := map[string]string{
		"unknown method":   `strategy f(c : ClientT) = { c.nosuch(); }`,
		"unknown receiver": `strategy f(c : ClientT) = { ghost.move(c); }`,
		"unknown proc":     `strategy f(c : ClientT) = { nosuch(); }`,
		"foreach non-set":  `strategy f(c : ClientT) = { foreach x in 5 { commit repair; } }`,
		"bad condition":    `strategy f(c : ClientT) = { if (5) { commit repair; } }`,
	}
	for name, src := range cases {
		out := run(t, src, OperatorSet{}, s)
		if out.Err == nil {
			t.Errorf("%s: expected runtime error", name)
		}
	}
}

func TestTwoParamStrategyRejected(t *testing.T) {
	s := testModel()
	out := run(t, `strategy f(a : ClientT, b : ClientT) = { commit repair; }`, OperatorSet{}, s)
	if out.Err == nil {
		t.Fatal("two-parameter strategy should fail at runtime")
	}
}
