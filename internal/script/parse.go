package script

import (
	"fmt"
	"strings"

	"archadapt/internal/constraint"
)

// parser walks the token stream; embedded expressions are sliced out of the
// raw source by byte offsets and handed to the constraint parser.
type parser struct {
	src  string
	toks []tok
	i    int
}

// ParseDefs parses a script source into strategy/tactic definitions.
func ParseDefs(src string) ([]*Def, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var defs []*Def
	for !p.eof() {
		d, err := p.parseDef()
		if err != nil {
			return nil, err
		}
		defs = append(defs, d)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("script: no definitions")
	}
	return defs, nil
}

func (p *parser) eof() bool { return p.i >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.i].text
}

func (p *parser) next() string {
	t := p.peek()
	p.i++
	return t
}

func (p *parser) expect(text string) error {
	if p.peek() != text {
		return fmt.Errorf("script: expected %q, found %q near offset %d", text, p.peek(), p.pos())
	}
	p.i++
	return nil
}

func (p *parser) pos() int {
	if p.eof() {
		return len(p.src)
	}
	return p.toks[p.i].pos
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (p *parser) parseDef() (*Def, error) {
	kind := p.next()
	if kind != "strategy" && kind != "tactic" {
		return nil, fmt.Errorf("script: expected 'strategy' or 'tactic', found %q", kind)
	}
	name := p.next()
	if !isIdent(name) {
		return nil, fmt.Errorf("script: bad %s name %q", kind, name)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []param
	for p.peek() != ")" {
		pn := p.next()
		if !isIdent(pn) {
			return nil, fmt.Errorf("script: bad parameter %q in %s", pn, name)
		}
		pt := ""
		if p.peek() == ":" {
			p.i++
			pt = p.next()
		}
		params = append(params, param{name: pn, typ: pt})
		if p.peek() == "," {
			p.i++
		}
	}
	p.i++ // ")"
	// Optional result-type annotation: `: boolean`.
	if p.peek() == ":" {
		p.i++
		p.i++ // type name, ignored
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, fmt.Errorf("script: in %s %s: %w", kind, name, err)
	}
	return &Def{Kind: kind, Name: name, params: params, body: body}, nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for p.peek() != "}" {
		if p.eof() {
			return nil, fmt.Errorf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.i++ // "}"
	return out, nil
}

func (p *parser) parseStmt() (stmt, error) {
	switch p.peek() {
	case "let":
		p.i++
		name := p.next()
		if !isIdent(name) {
			return nil, fmt.Errorf("bad let variable %q", name)
		}
		if p.peek() == ":" { // optional type annotation: `: set{...}` or ident
			p.i++
			p.next()
			// allow `set { T }`-style annotations
			if p.peek() == "{" {
				for p.peek() != "}" && !p.eof() {
					p.i++
				}
				p.i++
			}
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.exprUntilSemicolon()
		if err != nil {
			return nil, err
		}
		return &letStmt{name: name, expr: e}, nil
	case "if":
		p.i++
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.peek() == "else" {
			p.i++
			if p.peek() == "if" {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &ifStmt{cond: cond, then: then, els: els}, nil
	case "foreach":
		p.i++
		v := p.next()
		if !isIdent(v) {
			return nil, fmt.Errorf("bad foreach variable %q", v)
		}
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		dom, err := p.exprUntilBrace()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &foreachStmt{varName: v, domain: dom, body: body}, nil
	case "return":
		p.i++
		e, err := p.exprUntilSemicolon()
		if err != nil {
			return nil, err
		}
		return &returnStmt{expr: e}, nil
	case "commit":
		p.i++
		if p.peek() == "repair" {
			p.i++
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &commitStmt{}, nil
	case "abort":
		p.i++
		reason := p.next()
		if !isIdent(reason) {
			return nil, fmt.Errorf("bad abort reason %q", reason)
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &abortStmt{reason: reason}, nil
	}
	// Method or procedure call: recv.method(args); or proc(args);
	name := p.next()
	if !isIdent(name) {
		return nil, fmt.Errorf("unexpected token %q", name)
	}
	recv, method := "", name
	if p.peek() == "." {
		p.i++
		recv, method = name, p.next()
		if !isIdent(method) {
			return nil, fmt.Errorf("bad method name %q", method)
		}
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []constraint.Expr
	for p.peek() != ")" {
		a, err := p.exprUntil(func(t string, depth int) bool {
			return depth == 0 && (t == "," || t == ")")
		})
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.peek() == "," {
			p.i++
		}
	}
	p.i++ // ")"
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &callStmt{recv: recv, method: method, args: args}, nil
}

// parenExpr parses "(" expr ")".
func (p *parser) parenExpr() (constraint.Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	e, err := p.exprUntil(func(t string, depth int) bool { return depth == 0 && t == ")" })
	if err != nil {
		return nil, err
	}
	p.i++ // ")"
	return e, nil
}

func (p *parser) exprUntilSemicolon() (constraint.Expr, error) {
	e, err := p.exprUntil(func(t string, depth int) bool { return depth == 0 && t == ";" })
	if err != nil {
		return nil, err
	}
	p.i++ // ";"
	return e, nil
}

func (p *parser) exprUntilBrace() (constraint.Expr, error) {
	return p.exprUntil(func(t string, depth int) bool { return depth == 0 && t == "{" })
}

// exprUntil slices raw source from the current token up to (exclusive) the
// first token satisfying stop, and hands it to the constraint parser.
// depth tracks parentheses so stops inside nested calls don't trigger.
func (p *parser) exprUntil(stop func(t string, depth int) bool) (constraint.Expr, error) {
	if p.eof() {
		return nil, fmt.Errorf("expected expression, found end of input")
	}
	start := p.toks[p.i].pos
	depth := 0
	j := p.i
	for ; j < len(p.toks); j++ {
		t := p.toks[j].text
		if stop(t, depth) {
			break
		}
		switch t {
		case "(":
			depth++
		case ")":
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' in expression")
			}
		}
	}
	if j >= len(p.toks) {
		return nil, fmt.Errorf("unterminated expression near offset %d", start)
	}
	raw := strings.TrimSpace(p.src[start:p.toks[j].pos])
	e, err := constraint.Parse(raw)
	if err != nil {
		return nil, err
	}
	p.i = j
	return e, nil
}
