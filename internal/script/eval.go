package script

import (
	"errors"
	"fmt"

	"archadapt/internal/constraint"
	"archadapt/internal/repair"
)

// Method is a style operator invocable as `recv.method(args)` in a script;
// it mutates the model through the transaction in ctx.
type Method func(ctx *repair.Context, recv constraint.Value, args []constraint.Value) error

// OperatorSet supplies the style-specific pieces a script can call:
// Methods (addServer, move, remove, ...) and Funcs (findGoodSGrp, roleOf,
// ...) usable inside expressions.
type OperatorSet struct {
	Methods map[string]Method
	Funcs   map[string]func([]constraint.Value) (constraint.Value, error)
}

// Library is a compiled script: its strategies are ready to bind to
// invariants on the repair engine.
type Library struct {
	Strategies map[string]*repair.Strategy
	Tactics    map[string]*Def
	defs       []*Def
	ops        OperatorSet
}

// control-flow signals inside the interpreter.
var (
	errCommit = errors.New("script: commit")
)

type returnSignal struct{ val constraint.Value }

func (returnSignal) Error() string { return "script: return" }

type abortSignal struct{ reason string }

func (a abortSignal) Error() string { return "script: abort " + a.reason }

// Compile parses src and compiles every strategy into a repair.Strategy
// whose single engine-level tactic runs the script body. Tactic definitions
// are callable from strategies (and from each other).
func Compile(src string, ops OperatorSet) (*Library, error) {
	defs, err := ParseDefs(src)
	if err != nil {
		return nil, err
	}
	lib := &Library{
		Strategies: map[string]*repair.Strategy{},
		Tactics:    map[string]*Def{},
		defs:       defs,
		ops:        ops,
	}
	for _, d := range defs {
		if d.Kind == "tactic" {
			if _, dup := lib.Tactics[d.Name]; dup {
				return nil, fmt.Errorf("script: duplicate tactic %q", d.Name)
			}
			lib.Tactics[d.Name] = d
		}
	}
	for _, d := range defs {
		if d.Kind != "strategy" {
			continue
		}
		if _, dup := lib.Strategies[d.Name]; dup {
			return nil, fmt.Errorf("script: duplicate strategy %q", d.Name)
		}
		d := d
		lib.Strategies[d.Name] = &repair.Strategy{
			Name:   d.Name,
			Policy: repair.FirstSuccess,
			Tactics: []*repair.Tactic{{
				Name: d.Name + "Body",
				Script: func(ctx *repair.Context) (bool, error) {
					return lib.runStrategy(d, ctx)
				},
			}},
		}
	}
	if len(lib.Strategies) == 0 {
		return nil, fmt.Errorf("script: no strategies defined")
	}
	return lib, nil
}

// frame is one lexical execution scope.
type frame struct {
	vars map[string]constraint.Value
	lib  *Library
	ctx  *repair.Context
}

func (lib *Library) newFrame(ctx *repair.Context) *frame {
	return &frame{vars: map[string]constraint.Value{}, lib: lib, ctx: ctx}
}

// env assembles a constraint evaluation environment from the frame: script
// variables, the violation subject as `it`, style funcs, and tactic
// invocation as expression-level calls.
func (f *frame) env() *constraint.Env {
	env := constraint.NewEnv(f.ctx.Sys)
	env.Funcs = map[string]func([]constraint.Value) (constraint.Value, error){}
	for name, fn := range f.lib.ops.Funcs {
		env.Funcs[name] = fn
	}
	for name, fn := range f.ctx.Env.Funcs {
		if _, have := env.Funcs[name]; !have {
			env.Funcs[name] = fn
		}
	}
	for name, d := range f.lib.Tactics {
		d := d
		env.Funcs[name] = func(args []constraint.Value) (constraint.Value, error) {
			return f.lib.callTactic(d, f.ctx, args)
		}
	}
	if f.ctx.Violation.Subject != nil {
		env.Bind("it", constraint.Elem(f.ctx.Violation.Subject))
	}
	for k, v := range f.vars {
		env.Bind(k, v)
	}
	return env
}

func (f *frame) eval(e constraint.Expr) (constraint.Value, error) {
	return constraint.Eval(e, f.env())
}

// runStrategy executes a strategy body. Commit ⇒ applied; fallthrough (no
// commit) ⇒ not applied; abort ⇒ error (engine rolls back).
func (lib *Library) runStrategy(d *Def, ctx *repair.Context) (bool, error) {
	f := lib.newFrame(ctx)
	if err := bindParams(f, d, ctx); err != nil {
		return false, err
	}
	err := f.exec(d.body)
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, errCommit):
		return true, nil
	default:
		var ret returnSignal
		if errors.As(err, &ret) {
			ok, terr := ret.val.Truthy()
			if terr != nil {
				return false, terr
			}
			return ok, nil
		}
		var ab abortSignal
		if errors.As(err, &ab) {
			return false, fmt.Errorf("script: strategy %s aborted: %s", d.Name, ab.reason)
		}
		return false, err
	}
}

// callTactic invokes a tactic definition with evaluated arguments and
// returns its boolean result.
func (lib *Library) callTactic(d *Def, ctx *repair.Context, args []constraint.Value) (constraint.Value, error) {
	if len(args) != len(d.params) {
		return constraint.Nil(), fmt.Errorf("script: tactic %s wants %d args, got %d", d.Name, len(d.params), len(args))
	}
	f := lib.newFrame(ctx)
	for i, p := range d.params {
		f.vars[p.name] = args[i]
	}
	err := f.exec(d.body)
	switch {
	case err == nil:
		return constraint.Bool(false), nil
	case errors.Is(err, errCommit):
		return constraint.Bool(true), nil
	default:
		var ret returnSignal
		if errors.As(err, &ret) {
			return ret.val, nil
		}
		return constraint.Nil(), err
	}
}

// bindParams binds a strategy's first parameter to the violation subject
// (the engine's analogue of `invariant r : ... !→ fixLatency(r)`).
func bindParams(f *frame, d *Def, ctx *repair.Context) error {
	if len(d.params) == 0 {
		return nil
	}
	if len(d.params) > 1 {
		return fmt.Errorf("script: strategy %s: only one parameter (the violation subject) is supported", d.Name)
	}
	if ctx.Violation.Subject == nil {
		return fmt.Errorf("script: strategy %s needs a violation subject", d.Name)
	}
	f.vars[d.params[0].name] = constraint.Elem(ctx.Violation.Subject)
	return nil
}

func (f *frame) exec(stmts []stmt) error {
	for _, s := range stmts {
		if err := f.execOne(s); err != nil {
			return err
		}
	}
	return nil
}

func (f *frame) execOne(s stmt) error {
	switch st := s.(type) {
	case *letStmt:
		v, err := f.eval(st.expr)
		if err != nil {
			return err
		}
		f.vars[st.name] = v
		return nil
	case *ifStmt:
		cond, err := f.eval(st.cond)
		if err != nil {
			return err
		}
		ok, err := cond.Truthy()
		if err != nil {
			return err
		}
		if ok {
			return f.exec(st.then)
		}
		return f.exec(st.els)
	case *foreachStmt:
		dom, err := f.eval(st.domain)
		if err != nil {
			return err
		}
		if dom.Kind != constraint.KSet {
			return fmt.Errorf("script: foreach over non-set %s", dom)
		}
		saved, had := f.vars[st.varName]
		for _, v := range dom.Set {
			f.vars[st.varName] = v
			if err := f.exec(st.body); err != nil {
				return err
			}
		}
		if had {
			f.vars[st.varName] = saved
		} else {
			delete(f.vars, st.varName)
		}
		return nil
	case *returnStmt:
		v, err := f.eval(st.expr)
		if err != nil {
			return err
		}
		return returnSignal{val: v}
	case *commitStmt:
		return errCommit
	case *abortStmt:
		return abortSignal{reason: st.reason}
	case *callStmt:
		return f.call(st)
	}
	return fmt.Errorf("script: unknown statement %T", s)
}

func (f *frame) call(st *callStmt) error {
	args := make([]constraint.Value, len(st.args))
	for i, a := range st.args {
		v, err := f.eval(a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	if st.recv == "" {
		// Procedure call: a tactic or an expression-level function used as
		// a statement.
		env := f.env()
		fn, ok := env.Funcs[st.method]
		if !ok {
			return fmt.Errorf("script: unknown procedure %q", st.method)
		}
		_, err := fn(args)
		return err
	}
	recv, ok := f.vars[st.recv]
	if !ok {
		return fmt.Errorf("script: unknown receiver %q", st.recv)
	}
	m, ok := f.lib.ops.Methods[st.method]
	if !ok {
		return fmt.Errorf("script: unknown operator %q", st.method)
	}
	return m(f.ctx, recv, args)
}
