package translator

import (
	"strings"
	"testing"

	"archadapt/internal/app"
	"archadapt/internal/envmgr"
	"archadapt/internal/netsim"
	"archadapt/internal/remos"
	"archadapt/internal/repair"
	"archadapt/internal/sim"
)

func rig(t *testing.T) (*sim.Kernel, *app.System, *Translator) {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k)
	r := net.AddRouter("r")
	h1 := net.AddHost("h1")
	h2 := net.AddHost("h2")
	q := net.AddHost("q")
	m := net.AddHost("m")
	for _, h := range []netsim.NodeID{h1, h2, q, m} {
		net.Connect(h, r, 10e6, 1e-3)
	}
	a := app.New(k, net, q)
	_ = a.CreateQueue("G1")
	_ = a.CreateQueue("G2")
	a.AddServer("S1", h1, "G1", 0.05, 0)
	_ = a.Activate("S1")
	a.AddServer("SP", h2, "G2", 0.05, 0) // spare parked on G2
	a.AddClient("C1", h1, "G1", 0, sim.NewRand(1))
	env := envmgr.New(k, net, a, m, remos.New(k, net, m))
	return k, a, New(env)
}

func TestAddServerExpandsToConnectPlusActivate(t *testing.T) {
	k, a, tr := rig(t)
	// Model assigned the spare (parked on G2) to G1: translator must
	// connect it to G1's queue first, then activate.
	if err := tr.Apply(repair.Op{Kind: repair.OpAddServer, Group: "G1", Server: "SP"}); err != nil {
		t.Fatal(err)
	}
	k.RunAll(0)
	srv := a.Server("SP")
	if !srv.Active() || srv.Group != "G1" {
		t.Fatalf("SP active=%v group=%s", srv.Active(), srv.Group)
	}
	trace := strings.Join(tr.Applied, ";")
	if !strings.Contains(trace, "connectServer(SP,G1)") || !strings.Contains(trace, "activateServer(SP)") {
		t.Fatalf("trace %q", trace)
	}
}

func TestAddServerSkipsConnectWhenParkedOnGroup(t *testing.T) {
	k, a, tr := rig(t)
	if err := tr.Apply(repair.Op{Kind: repair.OpAddServer, Group: "G2", Server: "SP"}); err != nil {
		t.Fatal(err)
	}
	k.RunAll(0)
	if !a.Server("SP").Active() {
		t.Fatal("SP inactive")
	}
	for _, step := range tr.Applied {
		if strings.HasPrefix(step, "connectServer") {
			t.Fatalf("unnecessary connect: %v", tr.Applied)
		}
	}
}

func TestRemoveServer(t *testing.T) {
	k, a, tr := rig(t)
	if err := tr.Apply(repair.Op{Kind: repair.OpRemoveServer, Group: "G1", Server: "S1"}); err != nil {
		t.Fatal(err)
	}
	k.RunAll(0)
	if a.Server("S1").Active() {
		t.Fatal("S1 still active")
	}
}

func TestMoveClientAndCreateQueue(t *testing.T) {
	k, a, tr := rig(t)
	if err := tr.Apply(repair.Op{Kind: repair.OpMoveClient, Client: "C1", Group: "G2"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Apply(repair.Op{Kind: repair.OpCreateQueue, Group: "G3"}); err != nil {
		t.Fatal(err)
	}
	k.RunAll(0)
	if a.Client("C1").Group != "G2" {
		t.Fatal("client not moved")
	}
	has := false
	for _, g := range a.Groups() {
		if g == "G3" {
			has = true
		}
	}
	if !has {
		t.Fatal("queue not created")
	}
}

func TestUnknownServerFails(t *testing.T) {
	_, _, tr := rig(t)
	if err := tr.Apply(repair.Op{Kind: repair.OpAddServer, Group: "G1", Server: "nope"}); err == nil {
		t.Fatal("unknown server should fail")
	}
	if err := tr.Apply(repair.Op{Kind: repair.OpMoveClient, Client: "C1", Group: "nope"}); err == nil {
		t.Fatal("unknown group should fail")
	}
	if err := tr.Apply(repair.Op{Kind: repair.OpKind(99)}); err == nil {
		t.Fatal("unknown op kind should fail")
	}
}
