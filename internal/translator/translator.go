// Package translator bridges the model layer to the runtime layer (Figure 1,
// arrow 5): it expands each semantic repair operation into the Table 1
// environment-manager calls that realize it. The paper notes this component
// was hand-tailored per platform; here it is hand-tailored to the simulated
// grid testbed.
package translator

import (
	"fmt"

	"archadapt/internal/envmgr"
	"archadapt/internal/repair"
)

// Translator applies model-level ops through the environment manager.
type Translator struct {
	Env *envmgr.Manager
	// Applied records the expansion trace for tests and the repair log.
	Applied []string
}

// New creates a translator over an environment manager.
func New(env *envmgr.Manager) *Translator {
	return &Translator{Env: env}
}

// Apply implements repair.Translator.
func (t *Translator) Apply(op repair.Op) error {
	switch op.Kind {
	case repair.OpAddServer:
		// The model chose the spare; realize it as connect (if the server is
		// parked on another queue) + activate.
		srv := t.Env.App.Server(op.Server)
		if srv == nil {
			return fmt.Errorf("translator: unknown server %q", op.Server)
		}
		if srv.Group != op.Group {
			if err := t.Env.ConnectServer(op.Server, op.Group); err != nil {
				return err
			}
			t.Applied = append(t.Applied, fmt.Sprintf("connectServer(%s,%s)", op.Server, op.Group))
		}
		if err := t.Env.ActivateServer(op.Server); err != nil {
			return err
		}
		t.Applied = append(t.Applied, fmt.Sprintf("activateServer(%s)", op.Server))
		return nil
	case repair.OpRemoveServer:
		if err := t.Env.DeactivateServer(op.Server); err != nil {
			return err
		}
		t.Applied = append(t.Applied, fmt.Sprintf("deactivateServer(%s)", op.Server))
		return nil
	case repair.OpMoveClient:
		if err := t.Env.MoveClient(op.Client, op.Group); err != nil {
			return err
		}
		t.Applied = append(t.Applied, fmt.Sprintf("moveClient(%s,%s)", op.Client, op.Group))
		return nil
	case repair.OpCreateQueue:
		if err := t.Env.CreateReqQueue(op.Group); err != nil {
			return err
		}
		t.Applied = append(t.Applied, fmt.Sprintf("createReqQueue(%s)", op.Group))
		return nil
	}
	return fmt.Errorf("translator: unknown op kind %v", op.Kind)
}
