// Package chaos is the seeded scenario fuzzer and invariant-checking soak
// harness: it turns one uint64 seed into a random-but-deterministic fleet
// scenario — grid shape, heterogeneous app mix, admission churn, and a fault
// schedule composing the injectors into overlapping, repeated, restore-racing
// sequences the hand-written catalog never tries — then executes it in both
// pinned and migrate modes under the standing invariants:
//
//  1. determinism — a same-seed re-run is byte-identical (summary table,
//     migration records, rejections, free slots);
//  2. slots — the scheduler's ledger audits clean mid-run and post-run
//     (Fleet.AuditSlots: every admit/retire/migrate round-trips its slots
//     and reservations), and balanced fault schedules leave zero background;
//  3. netsim — the incremental region-partitioned solver spot-checks equal
//     to the retained global oracle (Network.VerifyReference);
//  4. ranked — no ranked migration ever records a target measurably worse
//     than its source (TargetHealth ≥ SourceHealth);
//  5. drains — no stuck drains: every migration record reaches a cutover,
//     a recorded abort, or a placement error;
//  6. parallel — a pooled run fingerprints byte-identically to the
//     single-kernel oracle (Workers is a pure throughput knob);
//  7. openloop — when the seed enables the open-loop engine, the admission
//     ledger balances (Offered = Admitted + Shed + Queued; Admitted =
//     Active + Retired, with Active matching the live population) and no
//     server group ever carries more autoscaled replicas than the policy
//     cap;
//  8. sharded — a run hosted on per-region shard kernels fingerprints
//     byte-identically to the single-kernel oracle (Shards is a pure
//     hosting knob, exactly as Workers is a pure throughput knob).
//
// On failure, Shrink bisects the fault schedule (ddmin) and trims the
// scenario to a minimal reproducer, and FormatOptions renders it as a
// ready-to-paste ScenarioOptions literal. cmd/soak is the driver.
package chaos

import (
	"math"
	"sort"

	"archadapt/internal/fleet"
	"archadapt/internal/sim"
)

// Generate derives a random-but-deterministic scenario from a seed. Sizes
// are bounded so one run stays well under a second: 2–6 apps of 1–3 shapes,
// 2 process slots max per host, explicit router counts with spare-region
// headroom, 240–480 s of scripted time, and a 3–10 event fault schedule.
// Every generated schedule is balanced — each injection either carries a
// Duration (auto-restore) or targets state that may legitimately not exist
// (the deliberately unbalanced restores, defined to be safe no-ops) — so a
// clean run must end with zero background load on every link.
func Generate(seed uint64) fleet.ScenarioOptions {
	rng := sim.NewRand(seed).Fork("chaos:gen")

	shapes := 1 + rng.Intn(3)
	mix := make([]fleet.AppSpec, 0, shapes)
	for i := 0; i < shapes; i++ {
		mix = append(mix, fleet.AppSpec{
			Groups:          1 + rng.Intn(3),
			ServersPerGroup: 1 + rng.Intn(2),
			SparesPerGroup:  rng.Intn(2),
			Clients:         1 + rng.Intn(3),
			ClientRate:      0.5 + 0.25*float64(rng.Intn(7)),
		})
	}
	apps := 2 + rng.Intn(5)
	hostCap := 1 + rng.Intn(2)
	hpr := 2 + rng.Intn(3)

	// Size the grid explicitly: the fault schedule needs to know the region
	// count, and migrations need spare-region headroom beyond the slot
	// minimum.
	slots := 1 // Remos collector
	for i := 0; i < apps; i++ {
		s := mix[i%len(mix)]
		slots += 2 + s.Groups*(s.ServersPerGroup+s.SparesPerGroup) + s.Clients
	}
	hosts := (slots + hostCap - 1) / hostCap
	routers := (hosts + hpr - 1) / hpr
	if routers < 4 {
		routers = 4
	}
	routers += 1 + rng.Intn(3)

	duration := float64(240 + 60*rng.Intn(5))
	opts := fleet.ScenarioOptions{
		Apps:           apps,
		AppMix:         mix,
		Routers:        routers,
		HostsPerRouter: hpr,
		HostCapacity:   hostCap,
		Seed:           seed,
		Duration:       duration,
		Adaptive:       true,
		CrushStart:     -1, // all contention comes from the fault schedule
	}
	// Admission/retirement churn: sometimes staggered starts, sometimes two
	// diurnal waves with early retirement.
	if rng.Intn(3) == 0 {
		opts.AdmitStagger = float64(5 * (1 + rng.Intn(4)))
	}
	if rng.Intn(4) == 0 {
		opts.AdmitWaves = 2
		opts.RetireAfter = math.Round(duration * 0.45)
	}

	// The fault schedule: overlapping, repeated and restore-racing
	// compositions, every window clamped inside the scripted duration so
	// the end state must be clean.
	window := func() (at, dur float64) {
		at = math.Round(40 + rng.Float64()*(duration-160))
		dur = math.Round(30 + rng.Float64()*120)
		if at+dur > duration {
			dur = duration - at
		}
		return at, dur
	}
	nf := 3 + rng.Intn(8)
	var faults []fleet.Fault
	for i := 0; i < nf; i++ {
		at, dur := window()
		switch rng.Intn(10) {
		case 0, 1: // per-app crush, auto-restored
			kind := fleet.FaultCrushPrimary
			if rng.Intn(2) == 0 {
				kind = fleet.FaultCrushAll
			}
			faults = append(faults, fleet.Fault{At: at, Kind: kind, App: rng.Intn(apps), Duration: dur})
		case 2, 3: // region failure, sometimes raced by a partial restore
			flt := fleet.Fault{At: at, Kind: fleet.FaultRegionFail, Router: rng.Intn(routers), Duration: dur}
			faults = append(faults, flt)
			if rng.Intn(2) == 0 {
				faults = append(faults, fleet.Fault{
					At:       math.Round(at + rng.Float64()*dur),
					Kind:     fleet.FaultRegionPartialRestore,
					Router:   flt.Router,
					Fraction: 0.25 + 0.25*float64(rng.Intn(3)),
				})
			}
		case 4, 5: // backbone contention, sometimes partially lifted early
			faults = append(faults, fleet.Fault{
				At: at, Kind: fleet.FaultBackboneCrush, Duration: dur,
				Fraction: 0.2 + 0.1*float64(rng.Intn(5)),
				LeaveBps: float64(20+10*rng.Intn(7)) * 1e3,
			})
			if rng.Intn(3) == 0 {
				faults = append(faults, fleet.Fault{
					At:       math.Round(at + rng.Float64()*dur),
					Kind:     fleet.FaultBackbonePartialRestore,
					Fraction: 0.5,
				})
			}
		case 6: // forced operator migration — mid-drain races with everything
			faults = append(faults, fleet.Fault{At: at, Kind: fleet.FaultMigrate, App: rng.Intn(apps)})
		case 7: // early retirement
			faults = append(faults, fleet.Fault{At: at, Kind: fleet.FaultRetire, App: rng.Intn(apps)})
		case 8: // nested failure of the same region (refcount stress)
			r := rng.Intn(routers)
			inner := math.Round(at + dur*0.3)
			innerDur := dur
			if inner+innerDur > duration {
				innerDur = duration - inner
			}
			faults = append(faults,
				fleet.Fault{At: at, Kind: fleet.FaultRegionFail, Router: r, Duration: dur},
				fleet.Fault{At: inner, Kind: fleet.FaultRegionFail, Router: r, Duration: innerDur})
		case 9: // deliberately unbalanced restore: must no-op harmlessly
			kind := fleet.FaultRegionRestore
			if rng.Intn(2) == 0 {
				kind = fleet.FaultBackboneRestore
			}
			faults = append(faults, fleet.Fault{At: at, Kind: kind, Router: rng.Intn(routers)})
		}
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	opts.Faults = faults

	// Open-loop fuzzing draws from its own fork, so every pre-open-loop
	// field of every seed is exactly what it was before the engine existed
	// (promoted catalog literals stay faithful to their seeds). A third of
	// seeds run open-loop: fuzzed population, per-shape arrival processes
	// spanning all three kinds, and sometimes the autoscaler and/or the
	// admission gate on top of the fault schedule.
	ol := sim.NewRand(seed).Fork("chaos:openloop")
	if ol.Intn(3) == 0 {
		users := 1000 * (1 + ol.Intn(10))
		opts.OpenLoop = fleet.OpenLoopPolicy{
			Enabled: true,
			Users:   users,
			Scale:   fleet.ScalePolicy{Enabled: ol.Intn(2) == 0, MaxReplicas: 1 + ol.Intn(4)},
		}
		if ol.Intn(2) == 0 {
			opts.OpenLoop.Admission = fleet.AdmissionPolicy{Enabled: true, Queue: ol.Intn(2) == 0}
		}
		// Aggregate offered load between 0.3x and 1.1x of each shape's
		// service capacity, spread over the modeled users.
		const mu = 1 / (0.05 + 0.16) // service rate at the default RespBits
		for i := range opts.AppMix {
			s := &opts.AppMix[i]
			ratio := 0.3 + 0.1*float64(ol.Intn(9))
			perUser := ratio * float64(s.Groups*s.ServersPerGroup) * mu / float64(users)
			switch ol.Intn(3) {
			case 0:
				s.Arrivals = fleet.ArrivalSpec{Lambda: perUser}
			case 1:
				s.Arrivals = fleet.ArrivalSpec{Kind: fleet.ArrivalDiurnal,
					Base: perUser, Swing: 0.2 + 0.1*float64(ol.Intn(4)), Period: duration / 2}
				if ol.Intn(2) == 0 {
					s.Arrivals.BurstAt = math.Round(duration * 0.3)
					s.Arrivals.BurstDuration = 60
					s.Arrivals.BurstFactor = float64(2 + ol.Intn(4))
				}
			case 2:
				s.Arrivals = fleet.ArrivalSpec{Kind: fleet.ArrivalTrace,
					Times: []float64{0, math.Round(duration * 0.3), math.Round(duration * 0.6)},
					Rates: []float64{perUser * 0.5, perUser * 1.5, perUser * 0.8}}
			}
		}
	}
	// Region-sharded hosting draws from its own fork for the same reason as
	// the open-loop block: every pre-sharding field of every seed keeps its
	// historical value. A third of seeds host execution on per-region shard
	// kernels; the sharded invariant then checks the other side, so both
	// directions of the equivalence see continuous fuzz.
	if sim.NewRand(seed).Fork("chaos:shards").Intn(3) == 0 {
		opts.Shards = -1
	}
	return opts
}

// MigratePolicy derives the migrate-mode policy for a seed: snappy enough
// (10 s checks, patience 2, 60 s cooldown) that short chaos runs actually
// migrate, with the targeting mode and drain cap themselves fuzzed.
func MigratePolicy(seed uint64) fleet.MigrationPolicy {
	rng := sim.NewRand(seed).Fork("chaos:policy")
	return fleet.MigrationPolicy{
		Enabled:       true,
		Ranked:        rng.Intn(2) == 0,
		MaxConcurrent: 1 + rng.Intn(3),
		CheckPeriod:   10,
		Patience:      2,
		Cooldown:      60,
	}
}
