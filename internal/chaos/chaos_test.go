package chaos

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"archadapt/internal/fleet"
)

// TestGenerateDeterministic pins the fuzzer's contract: the same seed always
// yields the same scenario and the same migrate-mode policy, and nearby seeds
// yield different ones (the generator actually consumes its entropy).
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%s\nvs\n%s", seed, FormatOptions(a), FormatOptions(b))
		}
		if pa, pb := MigratePolicy(seed), MigratePolicy(seed); pa != pb {
			t.Fatalf("seed %d: MigratePolicy not deterministic: %+v vs %+v", seed, pa, pb)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Error("seeds 1 and 2 generated identical scenarios; the generator is ignoring its seed")
	}
}

// TestGenerateBounds asserts every generated scenario stays inside the sizes
// the package documents, across a seed sweep — the property that keeps a
// soak run fast and the fault schedule's windows inside the scripted time.
func TestGenerateBounds(t *testing.T) {
	for seed := uint64(0); seed < 128; seed++ {
		o := Generate(seed)
		if o.Apps < 2 || o.Apps > 6 {
			t.Fatalf("seed %d: Apps = %d outside [2,6]", seed, o.Apps)
		}
		if o.Duration < 240 || o.Duration > 480 {
			t.Fatalf("seed %d: Duration = %g outside [240,480]", seed, o.Duration)
		}
		if len(o.Faults) < 3 {
			t.Fatalf("seed %d: only %d faults", seed, len(o.Faults))
		}
		for i, flt := range o.Faults {
			if flt.At < 0 || flt.At > o.Duration {
				t.Fatalf("seed %d: fault %d fires at %g outside the %g s run", seed, i, flt.At, o.Duration)
			}
			if flt.Duration > 0 && flt.At+flt.Duration > o.Duration {
				t.Fatalf("seed %d: fault %d restore at %g lands past the %g s run — the end state could not be clean",
					seed, i, flt.At+flt.Duration, o.Duration)
			}
			if i > 0 && flt.At < o.Faults[i-1].At {
				t.Fatalf("seed %d: fault schedule not sorted by At", seed)
			}
		}
		p := MigratePolicy(seed)
		if !p.Enabled || p.MaxConcurrent < 1 || p.MaxConcurrent > 3 {
			t.Fatalf("seed %d: generated policy out of bounds: %+v", seed, p)
		}
	}
}

// TestGenerateOpenLoopBounds sweeps seeds for the open-loop draw: a healthy
// fraction of seeds enable the engine, every enabled policy validates (the
// scenario would fail to start otherwise), and every fuzzed arrival spec
// resolves to a process.
func TestGenerateOpenLoopBounds(t *testing.T) {
	enabled := 0
	for seed := uint64(0); seed < 128; seed++ {
		o := Generate(seed)
		if !o.OpenLoop.Enabled {
			for _, s := range o.AppMix {
				if !reflect.DeepEqual(s.Arrivals, fleet.ArrivalSpec{}) {
					t.Fatalf("seed %d: closed-loop scenario carries an arrival spec: %+v", seed, s.Arrivals)
				}
			}
			continue
		}
		enabled++
		p := o.OpenLoop
		if p.Users < 1000 || p.Users > 10000 {
			t.Fatalf("seed %d: Users = %d outside [1000,10000]", seed, p.Users)
		}
		if p.Scale.MaxReplicas < 1 || p.Scale.MaxReplicas > 4 {
			t.Fatalf("seed %d: MaxReplicas = %d outside [1,4]", seed, p.Scale.MaxReplicas)
		}
		for i, s := range o.AppMix {
			if reflect.DeepEqual(s.Arrivals, fleet.ArrivalSpec{}) {
				t.Fatalf("seed %d: open-loop scenario shape %d has no arrival spec", seed, i)
			}
		}
	}
	if enabled < 16 {
		t.Fatalf("only %d of 128 seeds enabled the open-loop engine; the draw is broken", enabled)
	}
}

// TestCheckOpenLoopSeedClean runs the full invariant battery (both modes,
// including the openloop ledger/replica-cap invariant) on the first few
// seeds that enable the open-loop engine.
func TestCheckOpenLoopSeedClean(t *testing.T) {
	checked := 0
	for seed := uint64(0); seed < 64 && checked < 3; seed++ {
		if !Generate(seed).OpenLoop.Enabled {
			continue
		}
		checked++
		for _, v := range CheckSeed(seed) {
			t.Errorf("%s", v)
		}
	}
	if checked == 0 {
		t.Fatal("no open-loop seed in 0..63")
	}
}

// TestScenarioOptionsJSONRoundTrip is the chaos-vocabulary portability test:
// a generated scenario encodes to JSON, decodes back to a DeepEqual value,
// and the decoded copy runs to a byte-identical fingerprint. This is what
// lets a failing seed be reported, stored, and replayed as plain data.
func TestScenarioOptionsJSONRoundTrip(t *testing.T) {
	for _, seed := range []uint64{3, 17, 41} {
		opts := Generate(seed)
		opts.Migration = MigratePolicy(seed)

		blob, err := json.Marshal(opts)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var decoded fleet.ScenarioOptions
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if !reflect.DeepEqual(opts, decoded) {
			t.Fatalf("seed %d: options changed across the JSON round-trip:\n%s\nvs\n%s",
				seed, FormatOptions(opts), FormatOptions(decoded))
		}

		orig, err := fleet.RunScenario(opts)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		replay, err := fleet.RunScenario(decoded)
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if f1, f2 := Fingerprint(orig), Fingerprint(replay); f1 != f2 {
			t.Fatalf("seed %d: decoded scenario ran differently:\n--- original\n%s--- replay\n%s", seed, f1, f2)
		}
	}
}

// TestCheckSeedCleanRange soaks a short seed range in both modes — the same
// check cmd/soak runs at scale — and requires every invariant to hold.
func TestCheckSeedCleanRange(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for _, v := range CheckSeed(seed) {
			t.Errorf("%s", v)
		}
	}
}

// TestCheckParallelTwinClean exercises the parallel invariant's other
// direction: a scenario that itself carries a worker pool is checked against
// its Workers=1 serial twin, and a healthy engine keeps both byte-identical.
func TestCheckParallelTwinClean(t *testing.T) {
	opts := Generate(5)
	opts.Workers = 3
	for _, v := range Check(opts) {
		t.Errorf("%s", v)
	}
}

// TestMinimalDivergingWorkersClean pins the divergence scanner's negative
// result: on a healthy scenario every pooled run matches the serial oracle,
// so the minimal diverging worker count is 0 (none found).
func TestMinimalDivergingWorkersClean(t *testing.T) {
	opts := Generate(2)
	opts.Migration = MigratePolicy(2)
	if w := MinimalDivergingWorkers(opts, 4); w != 0 {
		t.Fatalf("MinimalDivergingWorkers = %d on a healthy scenario, want 0", w)
	}
}

// TestShrinkMinimizes drives ddmin with a synthetic predicate — the failure
// is "the schedule still contains the marker fault" — and requires the
// shrunk scenario to be minimal: exactly the marker, one app, no admission
// churn, the duration floor.
func TestShrinkMinimizes(t *testing.T) {
	marker := fleet.Fault{At: 77, Kind: fleet.FaultRetire, App: 5}
	opts := Generate(9)
	opts.AdmitWaves, opts.RetireAfter, opts.AdmitStagger = 2, 100, 5
	opts.Faults = append(opts.Faults, marker)

	calls := 0
	fails := func(o fleet.ScenarioOptions) bool {
		calls++
		for _, flt := range o.Faults {
			if flt == marker {
				return true
			}
		}
		return false
	}
	got := Shrink(opts, fails, 0)

	if len(got.Faults) != 1 || got.Faults[0] != marker {
		t.Fatalf("shrunk schedule = %+v, want exactly the marker fault", got.Faults)
	}
	if got.Apps != 1 {
		t.Errorf("Apps = %d, want 1", got.Apps)
	}
	if got.AdmitWaves != 0 || got.AdmitStagger != 0 || got.RetireAfter != 0 {
		t.Errorf("admission churn survived the shrink: %+v", got)
	}
	if got.Duration != 120 {
		t.Errorf("Duration = %g, want the 120 s floor", got.Duration)
	}
	if calls > 120 {
		t.Errorf("shrink spent %d candidate runs, over the default budget", calls)
	}
	if !fails(got) {
		t.Error("Shrink returned a candidate that does not fail")
	}
}

// TestShrinkRespectsBudget: with a budget too small to make progress, Shrink
// must still return a failing candidate (the original).
func TestShrinkRespectsBudget(t *testing.T) {
	opts := Generate(9)
	alwaysTrue := func(fleet.ScenarioOptions) bool { return true }
	got := Shrink(opts, alwaysTrue, 1)
	if len(got.Faults) == 0 && len(opts.Faults) > 0 {
		// With one probe the first ddmin chunk may be removed; what must
		// never happen is returning a non-failing candidate.
		t.Log("single-probe shrink removed a chunk — acceptable")
	}
	if !alwaysTrue(got) {
		t.Error("Shrink returned a non-failing candidate")
	}
}

// TestFormatOptionsLiteral checks the reproducer emitter: non-zero fields
// appear with their fleet-qualified identifiers, zero fields are omitted,
// and the output parses as the scenario it came from (spot-checked by
// substring since we cannot compile it here).
func TestFormatOptionsLiteral(t *testing.T) {
	opts := fleet.ScenarioOptions{
		Apps: 2, Seed: 7, Duration: 240, CrushStart: -1, Adaptive: true,
		AppMix: []fleet.AppSpec{
			{Groups: 1, ServersPerGroup: 2, Clients: 2, ClientRate: 1,
				Arrivals: fleet.ArrivalSpec{Kind: fleet.ArrivalDiurnal, Base: 0.002, Swing: 0.4, Period: 120}},
		},
		Migration: fleet.MigrationPolicy{Enabled: true, Ranked: true, CheckPeriod: 10},
		OpenLoop: fleet.OpenLoopPolicy{Enabled: true, Users: 5000,
			Scale:     fleet.ScalePolicy{Enabled: true, MaxReplicas: 3},
			Admission: fleet.AdmissionPolicy{Enabled: true, Queue: true}},
		Faults: []fleet.Fault{
			{At: 50, Kind: fleet.FaultRegionFail, Router: 3, Duration: 60},
			{At: 80, Kind: fleet.FaultBackbonePartialRestore, Fraction: 0.5},
		},
	}
	got := FormatOptions(opts)
	for _, want := range []string{
		"Apps: 2", "Seed: 7", "Duration: 240", "CrushStart: -1", "Adaptive: true",
		"Migration: fleet.MigrationPolicy{Enabled: true, Ranked: true, CheckPeriod: 10}",
		"Arrivals: fleet.ArrivalSpec{Kind: fleet.ArrivalDiurnal, Base: 0.002, Swing: 0.4, Period: 120}",
		"OpenLoop: fleet.OpenLoopPolicy{Enabled: true, Users: 5000, " +
			"Scale: fleet.ScalePolicy{Enabled: true, MaxReplicas: 3}, " +
			"Admission: fleet.AdmissionPolicy{Enabled: true, Queue: true}}",
		"{At: 50, Kind: fleet.FaultRegionFail, Router: 3, Duration: 60}",
		"{At: 80, Kind: fleet.FaultBackbonePartialRestore, Fraction: 0.5}",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("literal missing %q:\n%s", want, got)
		}
	}
	for _, absent := range []string{"Routers:", "AdmitStagger:", "App: 0", "LeaveBps:"} {
		if strings.Contains(got, absent) {
			t.Errorf("literal carries zero-valued field %q:\n%s", absent, got)
		}
	}
}
