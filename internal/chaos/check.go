package chaos

import (
	"fmt"
	"strings"

	"archadapt/internal/fleet"
	"archadapt/internal/netsim"
)

// The two execution modes every generated scenario is checked in.
const (
	ModePinned  = "pinned"
	ModeMigrate = "migrate"
)

// Modes lists them in check order.
var Modes = []string{ModePinned, ModeMigrate}

// Violation is one invariant failure observed while checking a run.
type Violation struct {
	// Seed and Mode locate the failing run (filled by CheckSeed; Check
	// alone leaves them zero).
	Seed uint64
	Mode string
	// Invariant names the failed class: determinism, slots, netsim, ranked,
	// drains, parallel, openloop, sharded, or run (the scenario failed to
	// start at all).
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("seed %d (%s) %s: %s", v.Seed, v.Mode, v.Invariant, v.Detail)
}

// CheckSeed generates the scenario for one seed and checks it in both modes
// (pinned: no migration policy; migrate: the seed-derived MigratePolicy).
// It returns every violation found, or nil for a clean seed.
func CheckSeed(seed uint64) []Violation {
	base := Generate(seed)
	var out []Violation
	for _, mode := range Modes {
		opts := base
		if mode == ModeMigrate {
			opts.Migration = MigratePolicy(seed)
		}
		for _, v := range Check(opts) {
			v.Seed, v.Mode = seed, mode
			out = append(out, v)
		}
	}
	return out
}

// Check executes one scenario exactly as given — twice, for the determinism
// invariant — under the full invariant set. The options carry everything
// (including any migration policy); Check itself derives nothing from seeds,
// which is what lets a shrunk reproducer re-check as a plain literal.
func Check(opts fleet.ScenarioOptions) []Violation {
	var vs []Violation
	add := func(invariant, format string, args ...any) {
		vs = append(vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	run := func(o fleet.ScenarioOptions, spot bool) (*fleet.ScenarioResult, error) {
		r, err := fleet.StartScenario(o)
		if err != nil {
			return nil, err
		}
		if spot {
			// Mid-run spot checks on a 12.5 s ticker (off-phase with the 15 s
			// default decision tick): the slot/reservation ledger and the
			// incremental solver vs the retained global oracle.
			checks := 0
			r.K.Ticker(12.5, 12.5, func(now float64) {
				if checks >= 8 {
					return // cap the noise from a persistently broken run
				}
				if err := r.Fleet.AuditSlots(); err != nil {
					checks++
					add("slots", "t=%.1f: %v", now, err)
				}
				if err := r.Fleet.Net.VerifyReference(1e-6); err != nil {
					checks++
					add("netsim", "t=%.1f: %v", now, err)
				}
			})
		}
		return r.Finish(), nil
	}

	res, err := run(opts, true)
	if err != nil {
		add("run", "scenario failed to start: %v", err)
		return vs
	}
	rerun, err := run(opts, false)
	if err != nil {
		add("run", "re-run failed to start: %v", err)
		return vs
	}

	// (1) Same-seed determinism, byte-identical.
	baseFP := Fingerprint(res)
	if f2 := Fingerprint(rerun); baseFP != f2 {
		add("determinism", "same-seed runs diverge:\n--- run 1\n%s--- run 2\n%s", baseFP, f2)
	}

	f := res.Fleet
	// (2) Slot/reservation ledger after the full run, plus the fault
	// round-trip: a balanced schedule must leave zero background anywhere.
	if err := f.AuditSlots(); err != nil {
		add("slots", "post-run: %v", err)
	}
	for id := 0; id < f.Net.NumLinks(); id++ {
		for _, d := range []netsim.Dir{netsim.Fwd, netsim.Rev} {
			if bg := f.Net.Background(netsim.LinkID(id), d); bg != 0 {
				add("slots", "link %d dir %d still carries %g bps background after the balanced schedule", id, d, bg)
			}
		}
	}
	// (3) Final solver equivalence against the global oracle.
	if err := f.Net.VerifyReference(1e-6); err != nil {
		add("netsim", "post-run: %v", err)
	}
	// (4) Ranked targeting never measurably worse; (5) no stuck drains.
	for _, name := range f.Apps() {
		for i, m := range f.App(name).Migrations {
			if m.Ranked && m.TargetHealth < m.SourceHealth {
				add("ranked", "%s migration %d chose a measurably worse region: source %.4f -> target %.4f",
					name, i, m.SourceHealth, m.TargetHealth)
			}
			if !m.Completed() && !m.Aborted() && m.Err == nil {
				add("drains", "%s migration %d decided at t=%.0f never completed, aborted, or errored",
					name, i, m.DecidedAt)
			}
			if m.Completed() && m.CompletedAt < m.DecidedAt {
				add("drains", "%s migration %d completed at t=%.2f before its decision at t=%.2f",
					name, i, m.CompletedAt, m.DecidedAt)
			}
		}
	}

	// (6) Parallel worker invariance: Workers is a pure throughput knob, so a
	// pooled run must be byte-identical to the single-kernel oracle (and a
	// scenario already carrying a pool must match its serial twin). On a
	// divergence the detail names the minimal worker count that reproduces
	// it, found by MinimalDivergingWorkers.
	par := opts
	if par.Workers > 1 {
		par.Workers = 1
	} else {
		par.Workers = 2
	}
	if pres, perr := run(par, false); perr != nil {
		add("parallel", "workers=%d twin failed to start: %v", par.Workers, perr)
	} else if pf := Fingerprint(pres); pf != baseFP {
		minW := MinimalDivergingWorkers(opts, 8)
		add("parallel", "workers=%d run diverges from workers=%d (minimal diverging count %d):\n--- workers=%d\n%s--- workers=%d\n%s",
			par.Workers, opts.Workers, minW, opts.Workers, baseFP, par.Workers, pf)
	}

	// (7) Open-loop books: the admission ledger balances at both levels,
	// the active count matches the live admitted population, and no server
	// group carries more autoscaled replicas than the policy cap.
	if led, ok := f.OpenLoopLedger(); ok {
		if led.Offered != led.Admitted+led.Shed+led.Queued {
			add("openloop", "ledger unbalanced: Offered %d != Admitted %d + Shed %d + Queued %d",
				led.Offered, led.Admitted, led.Shed, led.Queued)
		}
		if led.Admitted != led.Active+led.Retired {
			add("openloop", "admitted split unbalanced: Admitted %d != Active %d + Retired %d",
				led.Admitted, led.Active, led.Retired)
		}
		if f.Cfg.OpenLoop.Admission.Enabled {
			live := 0
			for _, name := range f.Apps() {
				if f.App(name).Live() {
					live++
				}
			}
			if led.Active != live {
				add("openloop", "ledger counts %d active apps, fleet holds %d live", led.Active, live)
			}
			if led.Admitted != len(f.Apps()) {
				add("openloop", "ledger counts %d admitted apps, fleet admitted %d", led.Admitted, len(f.Apps()))
			}
		}
		maxReps := f.Cfg.OpenLoop.Scale.MaxReplicas
		for _, name := range f.Apps() {
			a := f.App(name)
			for _, g := range a.Sys.Groups() {
				if n := a.AutoscaledOf(g); n > maxReps {
					add("openloop", "%s group %s carries %d autoscaled replicas, over the cap %d",
						name, g, n, maxReps)
				}
			}
		}
	}

	// (8) Sharded hosting invariance: Shards is a pure hosting knob, so a
	// region-sharded run must be byte-identical to the single-kernel oracle
	// (and a scenario already sharded must match its single-kernel twin). On
	// a divergence the detail names the minimal shard count that reproduces
	// it, found by MinimalDivergingShards.
	sh := opts
	if sh.Shards != 0 {
		sh.Shards = 0
	} else {
		sh.Shards = -1
	}
	if sres, serr := run(sh, false); serr != nil {
		add("sharded", "shards=%d twin failed to start: %v", sh.Shards, serr)
	} else if sf := Fingerprint(sres); sf != baseFP {
		minS := MinimalDivergingShards(opts, 8)
		add("sharded", "shards=%d run diverges from shards=%d (minimal diverging count %d):\n--- shards=%d\n%s--- shards=%d\n%s",
			sh.Shards, opts.Shards, minS, opts.Shards, baseFP, sh.Shards, sf)
	}
	return vs
}

// Fingerprint renders everything a deterministic run must reproduce: the
// summary table, every application's migration records (timings, abort
// state, targeting scores), the rejections, the final free-slot count and
// the migration high-water mark.
func Fingerprint(res *fleet.ScenarioResult) string {
	var b strings.Builder
	b.WriteString(res.Table())
	f := res.Fleet
	for _, name := range f.Apps() {
		for i, m := range f.App(name).Migrations {
			fmt.Fprintf(&b, "mig %s #%d decided=%.3f completed=%.3f aborted=%.3f drained=%v ranked=%v src=%.6f dst=%.6f err=%v\n",
				name, i, m.DecidedAt, m.CompletedAt, m.AbortedAt, m.Drained, m.Ranked,
				m.SourceHealth, m.TargetHealth, m.Err)
		}
	}
	for _, rej := range f.Rejections() {
		fmt.Fprintf(&b, "rej %s t=%.3f: %v\n", rej.Name, rej.Time, rej.Err)
	}
	if led, ok := f.OpenLoopLedger(); ok {
		fmt.Fprintf(&b, "openloop offered=%d admitted=%d shed=%d queued=%d active=%d retired=%d\n",
			led.Offered, led.Admitted, led.Shed, led.Queued, led.Active, led.Retired)
		for _, name := range f.Apps() {
			if ups, downs := f.App(name).ScaleActions(); ups+downs > 0 {
				fmt.Fprintf(&b, "scale %s ups=%d downs=%d\n", name, ups, downs)
			}
		}
	}
	fmt.Fprintf(&b, "free-slots=%d peak-migrations=%d\n", f.Sch.FreeSlots(), f.PeakConcurrentMigrations())
	return b.String()
}
