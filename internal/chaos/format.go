package chaos

import (
	"fmt"
	"strings"

	"archadapt/internal/fleet"
)

// FormatOptions renders a scenario as a ready-to-paste Go literal — the
// form a shrunk reproducer is reported in, and the form a promoted find is
// committed to the catalog in. Only non-zero fields are emitted, so a
// minimal reproducer reads as small as it is.
func FormatOptions(o fleet.ScenarioOptions) string {
	var b strings.Builder
	b.WriteString("fleet.ScenarioOptions{\n")
	w := func(format string, args ...any) { fmt.Fprintf(&b, "\t"+format+",\n", args...) }
	if o.Apps != 0 {
		w("Apps: %d", o.Apps)
	}
	for i, s := range o.AppMix {
		if i == 0 {
			b.WriteString("\tAppMix: []fleet.AppSpec{\n")
		}
		fmt.Fprintf(&b, "\t\t{Groups: %d, ServersPerGroup: %d, SparesPerGroup: %d, Clients: %d, ClientRate: %g%s},\n",
			s.Groups, s.ServersPerGroup, s.SparesPerGroup, s.Clients, s.ClientRate, arrivalsLiteral(s.Arrivals))
		if i == len(o.AppMix)-1 {
			b.WriteString("\t},\n")
		}
	}
	if o.Routers != 0 {
		w("Routers: %d", o.Routers)
	}
	if o.HostsPerRouter != 0 {
		w("HostsPerRouter: %d", o.HostsPerRouter)
	}
	if o.SpareRouters != 0 {
		w("SpareRouters: %d", o.SpareRouters)
	}
	if o.HostCapacity != 0 {
		w("HostCapacity: %d", o.HostCapacity)
	}
	w("Seed: %d", o.Seed)
	if o.Duration != 0 {
		w("Duration: %g", o.Duration)
	}
	if o.AdmitStagger != 0 {
		w("AdmitStagger: %g", o.AdmitStagger)
	}
	if o.AdmitWaves != 0 {
		w("AdmitWaves: %d", o.AdmitWaves)
	}
	if o.WavePeriod != 0 {
		w("WavePeriod: %g", o.WavePeriod)
	}
	if o.RetireAfter != 0 {
		w("RetireAfter: %g", o.RetireAfter)
	}
	if o.CrushStart != 0 {
		w("CrushStart: %g", o.CrushStart)
	}
	if o.Adaptive {
		w("Adaptive: true")
	}
	if o.Workers != 0 {
		w("Workers: %d", o.Workers)
	}
	if o.Shards != 0 {
		w("Shards: %d", o.Shards)
	}
	if p := o.Migration; p.Enabled {
		fmt.Fprintf(&b, "\tMigration: fleet.MigrationPolicy{Enabled: true")
		if p.Ranked {
			b.WriteString(", Ranked: true")
		}
		if p.CheckPeriod != 0 {
			fmt.Fprintf(&b, ", CheckPeriod: %g", p.CheckPeriod)
		}
		if p.Patience != 0 {
			fmt.Fprintf(&b, ", Patience: %d", p.Patience)
		}
		if p.Cooldown != 0 {
			fmt.Fprintf(&b, ", Cooldown: %g", p.Cooldown)
		}
		if p.MaxConcurrent != 0 {
			fmt.Fprintf(&b, ", MaxConcurrent: %d", p.MaxConcurrent)
		}
		b.WriteString("},\n")
	}
	if p := o.OpenLoop; p.Enabled {
		fmt.Fprintf(&b, "\tOpenLoop: fleet.OpenLoopPolicy{Enabled: true")
		if p.Users != 0 {
			fmt.Fprintf(&b, ", Users: %d", p.Users)
		}
		if p.AdjustPeriod != 0 {
			fmt.Fprintf(&b, ", AdjustPeriod: %g", p.AdjustPeriod)
		}
		if s := p.Scale; s.Enabled {
			fmt.Fprintf(&b, ", Scale: fleet.ScalePolicy{Enabled: true")
			if s.UpAt != 0 {
				fmt.Fprintf(&b, ", UpAt: %g", s.UpAt)
			}
			if s.DownAt != 0 {
				fmt.Fprintf(&b, ", DownAt: %g", s.DownAt)
			}
			if s.Cooldown != 0 {
				fmt.Fprintf(&b, ", Cooldown: %g", s.Cooldown)
			}
			if s.MaxReplicas != 0 {
				fmt.Fprintf(&b, ", MaxReplicas: %d", s.MaxReplicas)
			}
			b.WriteString("}")
		}
		if a := p.Admission; a.Enabled {
			fmt.Fprintf(&b, ", Admission: fleet.AdmissionPolicy{Enabled: true")
			if a.MaxUtilization != 0 {
				fmt.Fprintf(&b, ", MaxUtilization: %g", a.MaxUtilization)
			}
			if a.Queue {
				b.WriteString(", Queue: true")
			}
			if a.RetryPeriod != 0 {
				fmt.Fprintf(&b, ", RetryPeriod: %g", a.RetryPeriod)
			}
			b.WriteString("}")
		}
		b.WriteString("},\n")
	}
	for i, flt := range o.Faults {
		if i == 0 {
			b.WriteString("\tFaults: []fleet.Fault{\n")
		}
		b.WriteString("\t\t{")
		fmt.Fprintf(&b, "At: %g, Kind: %s", flt.At, faultKindIdent(flt.Kind))
		if flt.App != 0 {
			fmt.Fprintf(&b, ", App: %d", flt.App)
		}
		if flt.Router != 0 {
			fmt.Fprintf(&b, ", Router: %d", flt.Router)
		}
		if flt.Fraction != 0 {
			fmt.Fprintf(&b, ", Fraction: %g", flt.Fraction)
		}
		if flt.LeaveBps != 0 {
			fmt.Fprintf(&b, ", LeaveBps: %g", flt.LeaveBps)
		}
		if flt.Duration != 0 {
			fmt.Fprintf(&b, ", Duration: %g", flt.Duration)
		}
		b.WriteString("},\n")
		if i == len(o.Faults)-1 {
			b.WriteString("\t},\n")
		}
	}
	b.WriteString("}")
	return b.String()
}

// arrivalsLiteral renders an AppSpec's arrival process as a ", Arrivals:
// ..." literal suffix, or "" for the zero spec.
func arrivalsLiteral(s fleet.ArrivalSpec) string {
	var b strings.Builder
	zero := fleet.ArrivalSpec{}
	if s.Kind == zero.Kind && s.Lambda == zero.Lambda && s.Base == zero.Base &&
		s.Swing == zero.Swing && s.Period == zero.Period && s.Phase == zero.Phase &&
		s.BurstAt == zero.BurstAt && s.BurstDuration == zero.BurstDuration &&
		s.BurstFactor == zero.BurstFactor && len(s.Times) == 0 && len(s.Rates) == 0 {
		return ""
	}
	b.WriteString(", Arrivals: fleet.ArrivalSpec{")
	first := true
	w := func(format string, args ...any) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}
	switch s.Kind {
	case fleet.ArrivalPoisson:
		w("Kind: fleet.ArrivalPoisson")
	case fleet.ArrivalDiurnal:
		w("Kind: fleet.ArrivalDiurnal")
	case fleet.ArrivalTrace:
		w("Kind: fleet.ArrivalTrace")
	case "":
	default:
		w("Kind: %q", s.Kind)
	}
	if s.Lambda != 0 {
		w("Lambda: %g", s.Lambda)
	}
	if s.Base != 0 {
		w("Base: %g", s.Base)
	}
	if s.Swing != 0 {
		w("Swing: %g", s.Swing)
	}
	if s.Period != 0 {
		w("Period: %g", s.Period)
	}
	if s.Phase != 0 {
		w("Phase: %g", s.Phase)
	}
	if s.BurstFactor != 0 {
		w("BurstAt: %g, BurstDuration: %g, BurstFactor: %g", s.BurstAt, s.BurstDuration, s.BurstFactor)
	}
	if len(s.Times) > 0 {
		w("Times: %#v, Rates: %#v", s.Times, s.Rates)
	}
	b.WriteString("}")
	return b.String()
}

// faultKindIdent maps a FaultKind value back to its Go identifier.
func faultKindIdent(k fleet.FaultKind) string {
	switch k {
	case fleet.FaultCrushPrimary:
		return "fleet.FaultCrushPrimary"
	case fleet.FaultCrushAll:
		return "fleet.FaultCrushAll"
	case fleet.FaultRestoreApp:
		return "fleet.FaultRestoreApp"
	case fleet.FaultBackboneCrush:
		return "fleet.FaultBackboneCrush"
	case fleet.FaultBackboneRestore:
		return "fleet.FaultBackboneRestore"
	case fleet.FaultBackbonePartialRestore:
		return "fleet.FaultBackbonePartialRestore"
	case fleet.FaultRegionFail:
		return "fleet.FaultRegionFail"
	case fleet.FaultRegionRestore:
		return "fleet.FaultRegionRestore"
	case fleet.FaultRegionPartialRestore:
		return "fleet.FaultRegionPartialRestore"
	case fleet.FaultRetire:
		return "fleet.FaultRetire"
	case fleet.FaultMigrate:
		return "fleet.FaultMigrate"
	}
	return fmt.Sprintf("fleet.FaultKind(%q)", string(k))
}
