package chaos

import (
	"math"

	"archadapt/internal/fleet"
)

// Shrink reduces a failing scenario to a minimal reproducer. fails must
// report whether a candidate still exhibits the failure (for invariant
// violations: func(o) bool { return len(chaos.Check(o)) > 0 }); Shrink
// assumes fails(opts) is true and never returns a candidate that is not.
//
// The fault schedule is minimized first with delta debugging (ddmin):
// progressively finer chunks of the schedule are removed while the failure
// persists, converging to a schedule where every remaining fault is load-
// bearing. Then the scalar knobs are trimmed greedily — fewer apps, no
// admission churn, shorter duration. budget caps the total number of
// candidate executions (0 means 120); each candidate costs two full runs
// under Check, so the default stays in seconds.
func Shrink(opts fleet.ScenarioOptions, fails func(fleet.ScenarioOptions) bool, budget int) fleet.ScenarioOptions {
	if budget <= 0 {
		budget = 120
	}
	calls := 0
	try := func(c fleet.ScenarioOptions) bool {
		if calls >= budget {
			return false
		}
		calls++
		return fails(c)
	}

	cur := opts
	// ddmin over the fault schedule.
	n := 2
	for len(cur.Faults) >= 1 {
		if n > len(cur.Faults) {
			n = len(cur.Faults)
		}
		chunk := (len(cur.Faults) + n - 1) / n
		reduced := false
		for i := 0; i < len(cur.Faults); i += chunk {
			end := i + chunk
			if end > len(cur.Faults) {
				end = len(cur.Faults)
			}
			cand := cur
			cand.Faults = append(append([]fleet.Fault{}, cur.Faults[:i]...), cur.Faults[end:]...)
			if try(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if chunk == 1 {
				break // every single fault is load-bearing
			}
			n *= 2
		}
	}

	// Greedy scalar shrinks: each keeps only if the failure persists.
	for cur.Apps > 1 {
		cand := cur
		cand.Apps--
		if !try(cand) {
			break
		}
		cur = cand
	}
	if cur.AdmitWaves > 0 || cur.AdmitStagger > 0 || cur.RetireAfter > 0 {
		cand := cur
		cand.AdmitWaves, cand.WavePeriod, cand.AdmitStagger, cand.RetireAfter = 0, 0, 0, 0
		if try(cand) {
			cur = cand
		}
	}
	if cur.OpenLoop.Enabled {
		// Try dropping the open-loop engine entirely (arrival specs too):
		// if the failure survives, it was never an open-loop bug.
		cand := cur
		cand.OpenLoop = fleet.OpenLoopPolicy{}
		cand.AppMix = append([]fleet.AppSpec{}, cur.AppMix...)
		for i := range cand.AppMix {
			cand.AppMix[i].Arrivals = fleet.ArrivalSpec{}
		}
		cand.App.Arrivals = fleet.ArrivalSpec{}
		if try(cand) {
			cur = cand
		}
	}
	if cur.Shards != 0 {
		// Try moving the run back onto the single kernel: if the failure
		// survives, it was never a sharding bug.
		cand := cur
		cand.Shards = 0
		if try(cand) {
			cur = cand
		}
	}
	for cur.Duration > 120 {
		cand := cur
		cand.Duration = math.Round(cur.Duration * 0.7)
		if cand.Duration < 120 {
			cand.Duration = 120
		}
		if !try(cand) {
			break
		}
		cur = cand
	}
	return cur
}

// MinimalDivergingWorkers scans worker counts 2..max and returns the smallest
// one whose run of opts diverges (by Fingerprint) from the Workers=1 oracle —
// the parallel-invariant analogue of ddmin's "smallest failing input". A run
// that fails to start counts as diverging at that count. It returns 0 when
// every pooled run up to max is byte-identical: the divergence did not
// reproduce, or needs more workers than the scan covers.
func MinimalDivergingWorkers(opts fleet.ScenarioOptions, max int) int {
	serial := opts
	serial.Workers = 1
	ref, err := fleet.RunScenario(serial)
	if err != nil {
		return 0
	}
	want := Fingerprint(ref)
	for w := 2; w <= max; w++ {
		cand := opts
		cand.Workers = w
		res, err := fleet.RunScenario(cand)
		if err != nil || Fingerprint(res) != want {
			return w
		}
	}
	return 0
}

// MinimalDivergingShards is MinimalDivergingWorkers for the region-sharded
// hosting plane: it scans shard counts 1..max and returns the smallest one
// whose run diverges (by Fingerprint) from the Shards=0 single-kernel oracle.
// The scan starts at 1 because even a one-shard run exercises the window
// driver and exchange; 0 means every sharded run up to max was byte-identical.
func MinimalDivergingShards(opts fleet.ScenarioOptions, max int) int {
	single := opts
	single.Shards = 0
	ref, err := fleet.RunScenario(single)
	if err != nil {
		return 0
	}
	want := Fingerprint(ref)
	for s := 1; s <= max; s++ {
		cand := opts
		cand.Shards = s
		res, err := fleet.RunScenario(cand)
		if err != nil || Fingerprint(res) != want {
			return s
		}
	}
	return 0
}
