// Package bus is a content-based publish/subscribe event service in the
// spirit of Siena, which the paper uses to carry probe observations and
// gauge reports across the distributed system.
//
// Deliveries are real messages on the simulated network. By default they are
// best-effort, so monitoring traffic competes with application data — the
// configuration the paper deployed and then identified as a problem ("the
// same network is being used to monitor the system as to run it");
// Prioritized delivery models the QoS mitigation of §5.3.
//
// # Sharding
//
// One Bus carries the monitoring traffic of an entire fleet. Tenants —
// managed applications — attach through Shard handles: a shard is an
// isolated routing domain (publishes on a shard reach only that shard's
// subscribers), so N applications share one bus's dispatch machinery,
// subscription pool and delivery-record pool instead of owning N private
// buses. Shards released at retirement are recycled for the next admission;
// steady-state publish→deliver cycles allocate nothing. A Bus used directly
// (Publish/Subscribe on the Bus itself) operates on its default shard, which
// is the single-tenant configuration the per-application reference oracle
// runs.
package bus

import (
	"strings"

	"archadapt/internal/netsim"
	"archadapt/internal/obs"
	"archadapt/internal/sim"
)

// Message is one event notification. The payload is a fixed set of typed
// slots rather than a map, so constructing and copying a message never
// allocates. Topics use the slots as follows:
//
//	probe.response  Name=client  Group=group            V1=latency
//	probe.queue     Group=group                         V1=len
//	probe.server    Name=server                         V1=busy  V2=served
//	gauge.report    Name=gauge   Target, Kind, Prop     V1=value
type Message struct {
	Topic string
	Src   netsim.NodeID
	Time  sim.Time

	Name   string // client / server / gauge name
	Target string
	Kind   string
	Prop   string
	Group  string
	V1, V2 float64

	// Span is the message's own trace span, stamped by the bus at publish
	// time when the observability plane is enabled; Parent is the causal
	// predecessor the publisher pre-sets (e.g. a gauge parents its report on
	// the probe sample it last folded). Both stay zero — and cost nothing —
	// when tracing is off.
	Span, Parent obs.SpanID
}

// Str reads a string field by its wire name (see the slot table above).
func (m Message) Str(name string) string {
	switch name {
	case "client", "server", "gauge", "name":
		return m.Name
	case "group":
		return m.Group
	case "target":
		return m.Target
	case "kind":
		return m.Kind
	case "prop":
		return m.Prop
	}
	return ""
}

// Num reads a numeric field by its wire name.
func (m Message) Num(name string) float64 {
	switch name {
	case "latency", "len", "busy", "value":
		return m.V1
	case "served":
		return m.V2
	}
	return 0
}

// Filter decides whether a subscription matches a message (content-based
// routing).
type Filter func(Message) bool

// TopicIs matches messages by exact topic.
func TopicIs(topic string) Filter {
	return func(m Message) bool { return m.Topic == topic }
}

// TopicAndField matches topic plus one string field value.
func TopicAndField(topic, field, value string) Filter {
	return func(m Message) bool { return m.Topic == topic && m.Str(field) == value }
}

// Subscription is a registered consumer. Subscription structs are pooled
// bus-wide: gen is bumped when a subscription is recycled so that in-flight
// deliveries addressed to a previous tenant are discarded rather than handed
// to the new one.
type Subscription struct {
	Host    netsim.NodeID
	filter  Filter
	handler func(Message)
	dead    bool
	gen     uint64
}

// Bus routes published messages to matching subscribers over the network.
// It owns the shared infrastructure — pools and dispatch — while Shards own
// the per-tenant routing state.
type Bus struct {
	K   *sim.Kernel
	Net *netsim.Network
	// MsgBits is the on-wire size of one notification (default 2 KB).
	MsgBits float64
	// Priority applies to all bus traffic; BestEffort reproduces the
	// paper's monitoring lag, Prioritized is the QoS ablation.
	Priority netsim.Priority
	// Tracer, when non-nil, records a span per published message — the
	// observability plane's monitoring-level hook. Publish paths pay one nil
	// check when it is off.
	Tracer *obs.Tracer

	def      *Shard
	free     []*Shard
	subPool  []*Subscription
	dlvPool  []*delivery
	tenants  int
	acquired uint64
}

// New creates a bus on the network.
func New(k *sim.Kernel, net *netsim.Network) *Bus {
	return &Bus{K: k, Net: net, MsgBits: 2 * 8192}
}

// Shard is one tenant's isolated routing domain on a shared Bus. The zero
// value is not usable; obtain shards from Bus.Acquire (or use the Bus
// directly for its default shard).
type Shard struct {
	b    *Bus
	subs []*Subscription

	// Label names the tenant (the application) for trace spans published on
	// this shard. Set by the fleet at admission, cleared at Release.
	Label string

	// Affinity is the simulation worker group the shard's tenant belongs to
	// (0 when the fleet runs serial). The fleet assigns it at admission and
	// uses it to keep one tenant's parallelizable work — sampling, summary
	// fan-out — on one worker group; it never affects delivery order or
	// results. Cleared at Release.
	Affinity int

	published uint64
	delivered uint64
	dropped   uint64
	dropRate  float64
	dropRNG   *sim.Rand
	closed    bool
}

// Acquire leases a shard — fresh, or recycled from a retired tenant with its
// subscriber list's capacity intact.
func (b *Bus) Acquire() *Shard {
	b.tenants++
	b.acquired++
	if n := len(b.free); n > 0 {
		sh := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		sh.closed = false
		sh.published, sh.delivered, sh.dropped = 0, 0, 0
		sh.dropRate, sh.dropRNG = 0, nil
		return sh
	}
	return &Shard{b: b}
}

// Release detaches every remaining subscription and returns the shard to the
// bus's free list. In-flight deliveries addressed to the released tenant are
// discarded (generation check), never delivered to a later tenant.
func (sh *Shard) Release() {
	if sh.closed {
		return
	}
	sh.closed = true
	sh.Label = ""
	sh.Affinity = 0
	sh.b.tenants--
	for _, s := range sh.subs {
		sh.b.recycleSub(s)
	}
	sh.subs = sh.subs[:0]
	sh.b.free = append(sh.b.free, sh)
}

// Tenants returns the number of live shards (excluding the default shard).
func (b *Bus) Tenants() int { return b.tenants }

// ShardsAcquired returns the cumulative Acquire count — with Tenants, the
// shard-reuse observability for admission/retirement tests.
func (b *Bus) ShardsAcquired() uint64 { return b.acquired }

// defShard lazily creates the default (single-tenant) shard.
func (b *Bus) defShard() *Shard {
	if b.def == nil {
		b.def = &Shard{b: b}
	}
	return b.def
}

// Published returns the number of Publish calls on this shard.
func (sh *Shard) Published() uint64 { return sh.published }

// Delivered returns the number of notifications handed to subscribers.
func (sh *Shard) Delivered() uint64 { return sh.delivered }

// Dropped returns the number of notifications lost to injected faults.
func (sh *Shard) Dropped() uint64 { return sh.dropped }

// SetDrop makes the shard lose the given fraction of notifications,
// deterministically via rng — failure injection for the monitoring plane.
func (sh *Shard) SetDrop(rate float64, rng *sim.Rand) {
	sh.dropRate = rate
	sh.dropRNG = rng
}

// Subscribers returns the number of live subscriptions on the shard.
func (sh *Shard) Subscribers() int { return len(sh.subs) }

// Tracer returns the owning bus's tracer (nil when the observability plane
// is off) so gauges can parent their reports on probe-sample spans.
func (sh *Shard) Tracer() *obs.Tracer { return sh.b.Tracer }

// traceKind maps a bus topic to its span kind without importing the topic
// owners (probes, gauges import this package).
func traceKind(topic string) obs.Kind {
	switch {
	case strings.HasPrefix(topic, "probe."):
		return obs.KindProbeSample
	case topic == "gauge.report":
		return obs.KindGaugeReport
	}
	return obs.KindMessage
}

// traceMsg stamps the message's own span: kind from the topic, parent from
// the publisher's pre-set Parent, scope from the shard label. The subject is
// the message's Name (client, server, gauge) or its Group for group-keyed
// probe samples.
func (sh *Shard) traceMsg(msg *Message) {
	name := msg.Name
	if name == "" {
		name = msg.Group
	}
	msg.Span = sh.b.Tracer.Instant(traceKind(msg.Topic), msg.Parent, sh.Label, name, msg.V1, msg.V2)
}

// Subscribe registers a handler running on host for messages matching f.
func (sh *Shard) Subscribe(host netsim.NodeID, f Filter, handler func(Message)) *Subscription {
	s := sh.b.getSub()
	s.Host, s.filter, s.handler = host, f, handler
	sh.subs = append(sh.subs, s)
	return s
}

// Unsubscribe removes a subscription; queued deliveries are dropped. A
// handle not (or no longer) registered on the shard is a no-op: the struct
// may already be pooled and re-issued to another tenant, so a stale handle
// must never be able to touch it.
func (sh *Shard) Unsubscribe(s *Subscription) {
	if s == nil {
		return
	}
	for i, x := range sh.subs {
		if x == s {
			sh.subs = append(sh.subs[:i], sh.subs[i+1:]...)
			sh.b.recycleSub(s)
			return
		}
	}
}

// delivery is one notification in flight to one subscriber. Records are
// pooled on the Bus; gen pins the subscriber identity at send time.
type delivery struct {
	sh  *Shard
	sub *Subscription
	gen uint64
	msg Message
}

// deliverFn is the static delivery callback — no per-send closures.
func deliverFn(arg any) {
	d := arg.(*delivery)
	sub, sh, msg := d.sub, d.sh, d.msg
	stale := d.gen != sub.gen || sub.dead
	d.sh, d.sub = nil, nil
	sh.b.dlvPool = append(sh.b.dlvPool, d)
	if stale {
		return
	}
	sh.delivered++
	sub.handler(msg)
}

func (b *Bus) getDelivery() *delivery {
	if n := len(b.dlvPool); n > 0 {
		d := b.dlvPool[n-1]
		b.dlvPool[n-1] = nil
		b.dlvPool = b.dlvPool[:n-1]
		return d
	}
	return &delivery{}
}

func (b *Bus) getSub() *Subscription {
	if n := len(b.subPool); n > 0 {
		s := b.subPool[n-1]
		b.subPool[n-1] = nil
		b.subPool = b.subPool[:n-1]
		s.dead = false
		return s
	}
	return &Subscription{}
}

// recycleSub invalidates in-flight deliveries and pools the subscription.
func (b *Bus) recycleSub(s *Subscription) {
	s.dead = true
	s.gen++
	s.filter, s.handler = nil, nil
	b.subPool = append(b.subPool, s)
}

// Publish routes msg to every matching subscriber on the shard. Delivery to
// a subscriber on the same host is immediate (next event); remote deliveries
// traverse the network with the bus priority. One publish is one dispatch
// pass: matching, drop sampling and scheduling reuse pooled records, so the
// steady state allocates nothing.
func (sh *Shard) Publish(msg Message) {
	msg.Time = sh.b.K.Now()
	if sh.b.Tracer != nil {
		sh.traceMsg(&msg)
	}
	sh.dispatch(msg)
}

// PublishBatch routes a slice of same-tick, same-source messages in one
// dispatch pass, equivalent to calling Publish on each in order. Because no
// other event can run mid-pass, the network state is frozen: the pass reuses
// one delay computation per destination host instead of re-walking the route
// for every message (the queue probe publishes one sample per server group
// per tick — the fleet's highest-rate same-tick burst).
func (sh *Shard) PublishBatch(msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	b := sh.b
	now := b.K.Now()
	src := msgs[0].Src
	type hostDelay struct {
		host  netsim.NodeID
		delay float64
	}
	var memo [8]hostDelay
	nmemo := 0
	for _, msg := range msgs {
		msg.Time = now
		if b.Tracer != nil {
			sh.traceMsg(&msg)
		}
		sh.published++
		for _, s := range sh.subs {
			if s.dead || !s.filter(msg) {
				continue
			}
			if sh.dropRate > 0 && sh.dropRNG != nil && sh.dropRNG.Float64() < sh.dropRate {
				sh.dropped++
				continue
			}
			delay, found := 0.0, false
			if msg.Src == src {
				for i := 0; i < nmemo; i++ {
					if memo[i].host == s.Host {
						delay, found = memo[i].delay, true
						break
					}
				}
			}
			if !found {
				delay = b.Net.MessageDelay(msg.Src, s.Host, b.MsgBits, b.Priority)
				if msg.Src == src && nmemo < len(memo) {
					memo[nmemo] = hostDelay{s.Host, delay}
					nmemo++
				}
			}
			d := b.getDelivery()
			d.sh, d.sub, d.gen, d.msg = sh, s, s.gen, msg
			b.Net.SendPrecomputed(msg.Src, s.Host, delay, b.MsgBits, b.Priority, deliverFn, d)
		}
	}
}

// dispatch fans one stamped message out to the shard's subscribers.
func (sh *Shard) dispatch(msg Message) {
	b := sh.b
	sh.published++
	for _, s := range sh.subs {
		if s.dead || !s.filter(msg) {
			continue
		}
		if sh.dropRate > 0 && sh.dropRNG != nil && sh.dropRNG.Float64() < sh.dropRate {
			sh.dropped++
			continue
		}
		d := b.getDelivery()
		d.sh, d.sub, d.gen, d.msg = sh, s, s.gen, msg
		b.Net.SendMessageTo(msg.Src, s.Host, b.MsgBits, b.Priority, deliverFn, d)
	}
}

// --- default-shard convenience: a Bus used directly is a single tenant ---

// Default returns the bus's default shard (the single-tenant endpoint).
func (b *Bus) Default() *Shard { return b.defShard() }

// Published returns the default shard's Publish count.
func (b *Bus) Published() uint64 { return b.defShard().published }

// Delivered returns the default shard's delivery count.
func (b *Bus) Delivered() uint64 { return b.defShard().delivered }

// Dropped returns the default shard's injected-fault loss count.
func (b *Bus) Dropped() uint64 { return b.defShard().dropped }

// SetDrop configures fault injection on the default shard.
func (b *Bus) SetDrop(rate float64, rng *sim.Rand) { b.defShard().SetDrop(rate, rng) }

// Subscribe registers a subscription on the default shard.
func (b *Bus) Subscribe(host netsim.NodeID, f Filter, handler func(Message)) *Subscription {
	return b.defShard().Subscribe(host, f, handler)
}

// Unsubscribe removes a default-shard subscription.
func (b *Bus) Unsubscribe(s *Subscription) { b.defShard().Unsubscribe(s) }

// Publish routes msg on the default shard.
func (b *Bus) Publish(msg Message) { b.defShard().Publish(msg) }
