// Package bus is a content-based publish/subscribe event service in the
// spirit of Siena, which the paper uses to carry probe observations and
// gauge reports across the distributed system.
//
// Deliveries are real messages on the simulated network. By default they are
// best-effort, so monitoring traffic competes with application data — the
// configuration the paper deployed and then identified as a problem ("the
// same network is being used to monitor the system as to run it");
// Prioritized delivery models the QoS mitigation of §5.3.
package bus

import (
	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// Message is one event notification.
type Message struct {
	Topic  string
	Fields map[string]any
	Src    netsim.NodeID
	Time   sim.Time
}

// Str reads a string field.
func (m Message) Str(name string) string {
	v, _ := m.Fields[name].(string)
	return v
}

// Num reads a numeric field.
func (m Message) Num(name string) float64 {
	v, _ := m.Fields[name].(float64)
	return v
}

// Filter decides whether a subscription matches a message (content-based
// routing).
type Filter func(Message) bool

// TopicIs matches messages by exact topic.
func TopicIs(topic string) Filter {
	return func(m Message) bool { return m.Topic == topic }
}

// TopicAndField matches topic plus one string field value.
func TopicAndField(topic, field, value string) Filter {
	return func(m Message) bool { return m.Topic == topic && m.Str(field) == value }
}

// Subscription is a registered consumer.
type Subscription struct {
	id      uint64
	Host    netsim.NodeID
	filter  Filter
	handler func(Message)
	dead    bool
}

// Bus routes published messages to matching subscribers over the network.
type Bus struct {
	K   *sim.Kernel
	Net *netsim.Network
	// MsgBits is the on-wire size of one notification (default 2 KB).
	MsgBits float64
	// Priority applies to all bus traffic; BestEffort reproduces the
	// paper's monitoring lag, Prioritized is the QoS ablation.
	Priority netsim.Priority

	subs      []*Subscription
	nextID    uint64
	published uint64
	delivered uint64
	dropped   uint64
	dropRate  float64
	dropRNG   *sim.Rand
}

// New creates a bus on the network.
func New(k *sim.Kernel, net *netsim.Network) *Bus {
	return &Bus{K: k, Net: net, MsgBits: 2 * 8192}
}

// Published returns the number of Publish calls.
func (b *Bus) Published() uint64 { return b.published }

// Delivered returns the number of notifications handed to subscribers.
func (b *Bus) Delivered() uint64 { return b.delivered }

// Dropped returns the number of notifications lost to injected faults.
func (b *Bus) Dropped() uint64 { return b.dropped }

// SetDrop makes the bus lose the given fraction of notifications,
// deterministically via rng — failure injection for the monitoring plane.
func (b *Bus) SetDrop(rate float64, rng *sim.Rand) {
	b.dropRate = rate
	b.dropRNG = rng
}

// Subscribe registers a handler running on host for messages matching f.
func (b *Bus) Subscribe(host netsim.NodeID, f Filter, handler func(Message)) *Subscription {
	s := &Subscription{id: b.nextID, Host: host, filter: f, handler: handler}
	b.nextID++
	b.subs = append(b.subs, s)
	return s
}

// Unsubscribe removes a subscription; queued deliveries are dropped.
func (b *Bus) Unsubscribe(s *Subscription) {
	if s == nil {
		return
	}
	s.dead = true
	for i, x := range b.subs {
		if x == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Publish routes msg to every matching subscriber. Delivery to a subscriber
// on the same host is immediate (next event); remote deliveries traverse the
// network with the bus priority.
func (b *Bus) Publish(msg Message) {
	msg.Time = b.K.Now()
	b.published++
	for _, s := range b.subs {
		if s.dead || !s.filter(msg) {
			continue
		}
		if b.dropRate > 0 && b.dropRNG != nil && b.dropRNG.Float64() < b.dropRate {
			b.dropped++
			continue
		}
		s := s
		b.Net.SendMessage(msg.Src, s.Host, b.MsgBits, b.Priority, func() {
			if s.dead {
				return
			}
			b.delivered++
			s.handler(msg)
		})
	}
}
