package bus

import (
	"reflect"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

func rig() (*sim.Kernel, *netsim.Network, netsim.NodeID, netsim.NodeID, netsim.LinkID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddHost("a")
	r := n.AddRouter("r")
	b := n.AddHost("b")
	l1 := n.Connect(a, r, 10e6, 1e-3)
	n.Connect(r, b, 10e6, 1e-3)
	return k, n, a, b, l1
}

func TestPublishDelivers(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	var got []Message
	b.Subscribe(bHost, TopicIs("x"), func(m Message) { got = append(got, m) })
	b.Publish(Message{Topic: "x", Src: a, V1: 1.5, Name: "hi"})
	b.Publish(Message{Topic: "y", Src: a})
	k.RunAll(0)
	if len(got) != 1 {
		t.Fatalf("delivered=%d, want 1 (topic filter)", len(got))
	}
	if got[0].V1 != 1.5 || got[0].Name != "hi" {
		t.Fatalf("fields corrupted: %+v", got[0])
	}
	if b.Published() != 2 || b.Delivered() != 1 {
		t.Fatalf("stats: pub=%d del=%d", b.Published(), b.Delivered())
	}
}

func TestContentFilter(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	cnt := 0
	b.Subscribe(bHost, TopicAndField("probe", "client", "C3"), func(Message) { cnt++ })
	b.Publish(Message{Topic: "probe", Src: a, Name: "C3"})
	b.Publish(Message{Topic: "probe", Src: a, Name: "C4"})
	k.RunAll(0)
	if cnt != 1 {
		t.Fatalf("content filter matched %d, want 1", cnt)
	}
}

func TestMultipleSubscribersOrdered(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	var order []int
	b.Subscribe(bHost, TopicIs("x"), func(Message) { order = append(order, 1) })
	b.Subscribe(bHost, TopicIs("x"), func(Message) { order = append(order, 2) })
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order %v", order)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	cnt := 0
	sub := b.Subscribe(bHost, TopicIs("x"), func(Message) { cnt++ })
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	b.Unsubscribe(sub)
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if cnt != 1 {
		t.Fatalf("cnt=%d, want 1", cnt)
	}
	b.Unsubscribe(sub) // double unsubscribe is a no-op
	b.Unsubscribe(nil)
}

func TestUnsubscribeDropsInFlight(t *testing.T) {
	// A notification already on the wire must not be delivered after the
	// subscriber cancels.
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	cnt := 0
	sub := b.Subscribe(bHost, TopicIs("x"), func(Message) { cnt++ })
	b.Publish(Message{Topic: "x", Src: a})
	sub2 := b.Subscribe(bHost, TopicIs("x"), func(Message) {})
	_ = sub2
	b.Unsubscribe(sub)
	k.RunAll(0)
	if cnt != 0 {
		t.Fatalf("in-flight delivery after unsubscribe: %d", cnt)
	}
}

func TestSameHostDeliveryFast(t *testing.T) {
	k, n, a, _, _ := rig()
	b := New(k, n)
	at := -1.0
	b.Subscribe(a, TopicIs("x"), func(Message) { at = k.Now() })
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if at < 0 || at > 1e-3 {
		t.Fatalf("local delivery at %v", at)
	}
}

func TestCongestionDelaysDelivery(t *testing.T) {
	k, n, a, bHost, l1 := rig()
	b := New(k, n)
	var times []float64
	b.Subscribe(bHost, TopicIs("x"), func(Message) { times = append(times, k.Now()) })
	k.At(0, func() { b.Publish(Message{Topic: "x", Src: a}) })
	k.At(10, func() { n.SetBackgroundBoth(l1, 10e6) }) // saturate
	k.At(10.1, func() { b.Publish(Message{Topic: "x", Src: a}) })
	k.RunAll(0)
	if len(times) != 2 {
		t.Fatalf("deliveries=%d", len(times))
	}
	idle := times[0]
	congested := times[1] - 10.1
	if congested < 10*idle {
		t.Fatalf("congested delivery %v not slower than idle %v", congested, idle)
	}
	// Prioritized traffic ignores congestion.
	b.Priority = netsim.Prioritized
	t0 := k.Now()
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if d := times[2] - t0; d > 2*idle+1e-6 {
		t.Fatalf("prioritized delivery %v should match idle %v", d, idle)
	}
}

func TestMessageTimeStamped(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	var stamp float64
	b.Subscribe(bHost, TopicIs("x"), func(m Message) { stamp = m.Time })
	k.At(5, func() { b.Publish(Message{Topic: "x", Src: a}) })
	k.RunAll(0)
	if stamp != 5 {
		t.Fatalf("publish time %v, want 5", stamp)
	}
}

func TestShardIsolation(t *testing.T) {
	// Two tenants on one bus: publishes on one shard never reach the other's
	// subscribers — the per-app-bus semantics, on shared infrastructure.
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	s1 := b.Acquire()
	s2 := b.Acquire()
	var got1, got2 int
	s1.Subscribe(bHost, TopicIs("x"), func(Message) { got1++ })
	s2.Subscribe(bHost, TopicIs("x"), func(Message) { got2++ })
	s1.Publish(Message{Topic: "x", Src: a})
	s1.Publish(Message{Topic: "x", Src: a})
	s2.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if got1 != 2 || got2 != 1 {
		t.Fatalf("cross-shard leak: got1=%d got2=%d", got1, got2)
	}
	if b.Tenants() != 2 {
		t.Fatalf("tenants=%d", b.Tenants())
	}
}

func TestShardReleaseDropsInFlightAndRecycles(t *testing.T) {
	// A released shard's in-flight deliveries are discarded, and the next
	// Acquire reuses the shard and its subscription structs without the new
	// tenant seeing the old tenant's traffic.
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	s1 := b.Acquire()
	old := 0
	s1.Subscribe(bHost, TopicIs("x"), func(Message) { old++ })
	s1.Publish(Message{Topic: "x", Src: a}) // in flight at release
	s1.Release()

	s2 := b.Acquire()
	if s2 != s1 {
		t.Fatal("released shard was not recycled")
	}
	fresh := 0
	s2.Subscribe(bHost, TopicIs("x"), func(Message) { fresh++ })
	k.RunAll(0)
	if old != 0 {
		t.Fatalf("released tenant received %d deliveries", old)
	}
	if fresh != 0 {
		t.Fatalf("new tenant received the old tenant's in-flight delivery %d times", fresh)
	}
	s2.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if fresh != 1 {
		t.Fatalf("new tenant deliveries=%d, want 1", fresh)
	}
	if b.Tenants() != 1 {
		t.Fatalf("tenants=%d", b.Tenants())
	}
}

func TestPublishBatchMatchesSequentialPublish(t *testing.T) {
	// PublishBatch must be observationally identical to publishing each
	// message in order: same matches, same delivery order, same timing.
	run := func(batch bool) (order []string, times []float64) {
		k, n, a, bHost, _ := rig()
		b := New(k, n)
		sh := b.Acquire()
		sh.Subscribe(bHost, TopicAndField("q", "group", "G1"), func(m Message) {
			order = append(order, "G1")
			times = append(times, k.Now())
		})
		sh.Subscribe(bHost, TopicIs("q"), func(m Message) {
			order = append(order, "any:"+m.Group)
			times = append(times, k.Now())
		})
		msgs := []Message{
			{Topic: "q", Src: a, Group: "G1", V1: 3},
			{Topic: "q", Src: a, Group: "G2", V1: 5},
		}
		if batch {
			sh.PublishBatch(msgs)
		} else {
			for _, m := range msgs {
				sh.Publish(m)
			}
		}
		k.RunAll(0)
		return
	}
	seqOrder, seqTimes := run(false)
	batchOrder, batchTimes := run(true)
	if !reflect.DeepEqual(seqOrder, batchOrder) {
		t.Fatalf("order diverged: %v vs %v", seqOrder, batchOrder)
	}
	if !reflect.DeepEqual(seqTimes, batchTimes) {
		t.Fatalf("timing diverged: %v vs %v", seqTimes, batchTimes)
	}
	if len(seqOrder) != 3 {
		t.Fatalf("deliveries=%d, want 3", len(seqOrder))
	}
}
