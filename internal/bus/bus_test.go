package bus

import (
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

func rig() (*sim.Kernel, *netsim.Network, netsim.NodeID, netsim.NodeID, netsim.LinkID) {
	k := sim.NewKernel()
	n := netsim.New(k)
	a := n.AddHost("a")
	r := n.AddRouter("r")
	b := n.AddHost("b")
	l1 := n.Connect(a, r, 10e6, 1e-3)
	n.Connect(r, b, 10e6, 1e-3)
	return k, n, a, b, l1
}

func TestPublishDelivers(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	var got []Message
	b.Subscribe(bHost, TopicIs("x"), func(m Message) { got = append(got, m) })
	b.Publish(Message{Topic: "x", Src: a, Fields: map[string]any{"v": 1.5, "s": "hi"}})
	b.Publish(Message{Topic: "y", Src: a})
	k.RunAll(0)
	if len(got) != 1 {
		t.Fatalf("delivered=%d, want 1 (topic filter)", len(got))
	}
	if got[0].Num("v") != 1.5 || got[0].Str("s") != "hi" {
		t.Fatalf("fields corrupted: %+v", got[0])
	}
	if b.Published() != 2 || b.Delivered() != 1 {
		t.Fatalf("stats: pub=%d del=%d", b.Published(), b.Delivered())
	}
}

func TestContentFilter(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	cnt := 0
	b.Subscribe(bHost, TopicAndField("probe", "client", "C3"), func(Message) { cnt++ })
	b.Publish(Message{Topic: "probe", Src: a, Fields: map[string]any{"client": "C3"}})
	b.Publish(Message{Topic: "probe", Src: a, Fields: map[string]any{"client": "C4"}})
	k.RunAll(0)
	if cnt != 1 {
		t.Fatalf("content filter matched %d, want 1", cnt)
	}
}

func TestMultipleSubscribersOrdered(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	var order []int
	b.Subscribe(bHost, TopicIs("x"), func(Message) { order = append(order, 1) })
	b.Subscribe(bHost, TopicIs("x"), func(Message) { order = append(order, 2) })
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order %v", order)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	cnt := 0
	sub := b.Subscribe(bHost, TopicIs("x"), func(Message) { cnt++ })
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	b.Unsubscribe(sub)
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if cnt != 1 {
		t.Fatalf("cnt=%d, want 1", cnt)
	}
	b.Unsubscribe(sub) // double unsubscribe is a no-op
	b.Unsubscribe(nil)
}

func TestUnsubscribeDropsInFlight(t *testing.T) {
	// A notification already on the wire must not be delivered after the
	// subscriber cancels.
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	cnt := 0
	sub := b.Subscribe(bHost, TopicIs("x"), func(Message) { cnt++ })
	b.Publish(Message{Topic: "x", Src: a})
	sub2 := b.Subscribe(bHost, TopicIs("x"), func(Message) {})
	_ = sub2
	b.Unsubscribe(sub)
	k.RunAll(0)
	if cnt != 0 {
		t.Fatalf("in-flight delivery after unsubscribe: %d", cnt)
	}
}

func TestSameHostDeliveryFast(t *testing.T) {
	k, n, a, _, _ := rig()
	b := New(k, n)
	at := -1.0
	b.Subscribe(a, TopicIs("x"), func(Message) { at = k.Now() })
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if at < 0 || at > 1e-3 {
		t.Fatalf("local delivery at %v", at)
	}
}

func TestCongestionDelaysDelivery(t *testing.T) {
	k, n, a, bHost, l1 := rig()
	b := New(k, n)
	var times []float64
	b.Subscribe(bHost, TopicIs("x"), func(Message) { times = append(times, k.Now()) })
	k.At(0, func() { b.Publish(Message{Topic: "x", Src: a}) })
	k.At(10, func() { n.SetBackgroundBoth(l1, 10e6) }) // saturate
	k.At(10.1, func() { b.Publish(Message{Topic: "x", Src: a}) })
	k.RunAll(0)
	if len(times) != 2 {
		t.Fatalf("deliveries=%d", len(times))
	}
	idle := times[0]
	congested := times[1] - 10.1
	if congested < 10*idle {
		t.Fatalf("congested delivery %v not slower than idle %v", congested, idle)
	}
	// Prioritized traffic ignores congestion.
	b.Priority = netsim.Prioritized
	t0 := k.Now()
	b.Publish(Message{Topic: "x", Src: a})
	k.RunAll(0)
	if d := times[2] - t0; d > 2*idle+1e-6 {
		t.Fatalf("prioritized delivery %v should match idle %v", d, idle)
	}
}

func TestMessageTimeStamped(t *testing.T) {
	k, n, a, bHost, _ := rig()
	b := New(k, n)
	var stamp float64
	b.Subscribe(bHost, TopicIs("x"), func(m Message) { stamp = m.Time })
	k.At(5, func() { b.Publish(Message{Topic: "x", Src: a}) })
	k.RunAll(0)
	if stamp != 5 {
		t.Fatalf("publish time %v, want 5", stamp)
	}
}
