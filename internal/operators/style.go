// Package operators defines the client-server architectural style of the
// paper's example — type vocabulary, a model builder, the style-specific
// adaptation operators of §3.3 (addServer, move, remove, findGoodSGrp), and
// the Figure 5 repair tactics built from them.
package operators

import (
	"fmt"

	"archadapt/internal/model"
)

// Style and element type names (the ADL vocabulary of Figures 2 and 5).
const (
	FamClientServer = "ClientServerFam"
	TClient         = "ClientT"
	TServerGroup    = "ServerGroupT"
	TServer         = "ServerT"
	TReqConn        = "ReqConnT"
	TClientRole     = "ClientRoleT"
	TServerRole     = "ServerRoleT"
	TRequestPort    = "RequestT"
	TProvidePort    = "ProvideT"
	TWorkPort       = "WorkT"
)

// Property names used by gauges, constraints and tactics.
const (
	PropAvgLatency    = "averageLatency"
	PropBandwidth     = "bandwidth"
	PropLoad          = "load"
	PropActive        = "active"
	PropReplication   = "replicationCount"
	PropMaxLatency    = "maxLatency"
	PropMaxServerLoad = "maxServerLoad"
	PropMinBandwidth  = "minBandwidth"
	PropMinServerLoad = "minServerLoad"
	PropMinReplicas   = "minReplicas"
)

// Invariant names bound to repair strategies.
const (
	InvLatency     = "latencyBound"
	InvLoad        = "loadBound"
	InvBandwidth   = "bandwidthBound"
	InvUtilization = "utilizationFloor"
)

// GroupSpec describes one replicated server group: its servers in order,
// and how many of them start active (the rest are spares, the paper's S4 and
// S7).
type GroupSpec struct {
	Name        string
	Servers     []string
	ActiveCount int
}

// ClientSpec describes one client and its initial server group.
type ClientSpec struct {
	Name  string
	Group string
}

// Spec describes the whole system plus the task-layer thresholds.
type Spec struct {
	Name          string
	Groups        []GroupSpec
	Clients       []ClientSpec
	MaxLatency    float64 // seconds (paper: 2 s)
	MaxServerLoad float64 // queue length (paper: 6)
	MinBandwidth  float64 // bits/sec (paper: 10 Kbps)
}

// ConnName returns the connector name for a server group.
func ConnName(group string) string { return group + "Conn" }

// RoleName returns the client-role name for a client.
func RoleName(client string) string { return client + "Role" }

// Build constructs the architectural model for a spec: one component per
// group (with a representation holding its replicated servers), one
// connector per group (the request queue), one component per client, and the
// attachments wiring clients to their group's connector.
func Build(spec Spec) (*model.System, error) {
	sys := model.NewSystem(spec.Name, FamClientServer)
	sys.Props().Set(PropMaxLatency, spec.MaxLatency)
	sys.Props().Set(PropMaxServerLoad, spec.MaxServerLoad)
	sys.Props().Set(PropMinBandwidth, spec.MinBandwidth)

	for _, g := range spec.Groups {
		if g.ActiveCount > len(g.Servers) {
			return nil, fmt.Errorf("operators: group %s: %d active > %d servers", g.Name, g.ActiveCount, len(g.Servers))
		}
		grp := sys.AddComponent(g.Name, TServerGroup)
		grp.AddPort("provide", TProvidePort)
		grp.Props().Set(PropLoad, 0.0)
		grp.Props().Set(PropReplication, float64(g.ActiveCount))
		rep := grp.EnsureRep()
		for i, srv := range g.Servers {
			s := rep.AddComponent(srv, TServer)
			s.AddPort("work", TWorkPort)
			s.Props().Set(PropActive, i < g.ActiveCount)
		}
		conn := sys.AddConnector(ConnName(g.Name), TReqConn)
		sr := conn.AddRole("server", TServerRole)
		if err := sys.Attach(grp.Port("provide"), sr); err != nil {
			return nil, err
		}
	}
	for _, c := range spec.Clients {
		cli := sys.AddComponent(c.Name, TClient)
		cli.AddPort("request", TRequestPort)
		conn := sys.Connector(ConnName(c.Group))
		if conn == nil {
			return nil, fmt.Errorf("operators: client %s references unknown group %s", c.Name, c.Group)
		}
		role := conn.AddRole(RoleName(c.Name), TClientRole)
		if err := sys.Attach(cli.Port("request"), role); err != nil {
			return nil, err
		}
	}
	return sys, sys.Validate()
}

// GroupOf returns the server group a client is currently connected to, with
// the connector and the client's role on it.
func GroupOf(sys *model.System, cli *model.Component) (*model.Component, *model.Connector, *model.Role, error) {
	port := cli.Port("request")
	if port == nil {
		return nil, nil, nil, fmt.Errorf("operators: client %s has no request port", cli.Name())
	}
	att, natts := sys.PortAttachment(port)
	if natts != 1 {
		return nil, nil, nil, fmt.Errorf("operators: client %s has %d attachments, want 1", cli.Name(), natts)
	}
	role := att.Role
	conn := role.Owner
	// First server group attached to conn, scanning attachments directly —
	// this runs once per gauge report, so it must not build component lists.
	for _, a := range sys.Attachments() {
		if a.Role.Owner == conn && a.Port.Owner.Type() == TServerGroup {
			return a.Port.Owner, conn, role, nil
		}
	}
	return nil, nil, nil, fmt.Errorf("operators: connector %s has no server group", conn.Name())
}

// ActiveServers returns the names of active servers in a group's
// representation, in declaration order.
func ActiveServers(grp *model.Component) []string {
	var out []string
	if grp.Rep == nil {
		return out
	}
	for _, s := range grp.Rep.Components() {
		if s.Props().BoolOr(PropActive, false) {
			out = append(out, s.Name())
		}
	}
	return out
}

// SpareServers returns the names of inactive servers in a group.
func SpareServers(grp *model.Component) []string {
	var out []string
	if grp.Rep == nil {
		return out
	}
	for _, s := range grp.Rep.Components() {
		if !s.Props().BoolOr(PropActive, false) {
			out = append(out, s.Name())
		}
	}
	return out
}
