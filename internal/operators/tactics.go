package operators

import (
	"fmt"

	"archadapt/internal/model"
	"archadapt/internal/repair"
)

// GroupQuery is the runtime-layer query behind the paper's
//
//	findGoodSGroup(cl: ClientT, bw: float): ServerGroupT
//
// It returns the server group with the best predicted bandwidth to the
// client that is above bw (and the prediction itself), or nil when no group
// qualifies. The production implementation consults the Remos substitute via
// the environment manager; tests inject stubs.
type GroupQuery func(sys *model.System, cli *model.Component, minBW float64) (*model.Component, float64)

// ErrNoServerGroupFound is the paper's `abort NoServerGroupFound` (Fig. 5
// line 41).
var ErrNoServerGroupFound = fmt.Errorf("operators: no server group with sufficient bandwidth")

// subjectClient resolves the violation subject to a ClientT component. The
// latency invariant is scoped to clients, mirroring Fig. 5 lines 5-8 where
// the strategy selects the client attached to the violated role.
func subjectClient(ctx *repair.Context) (*model.Component, error) {
	el := ctx.Violation.Subject
	if el == nil {
		return nil, fmt.Errorf("operators: violation has no subject")
	}
	cli, ok := el.(*model.Component)
	if !ok || cli.Type() != TClient {
		return nil, fmt.Errorf("operators: violation subject %s is not a client", el.Name())
	}
	return cli, nil
}

// FixServerLoad is the first tactic of Figure 5 (lines 16-26): if any server
// group connected to the client is overloaded, activate a server in each.
// It declines (false) when no group is overloaded, or when every overloaded
// group is out of spares — in the paper's run that is exactly when "the only
// repair possible was to move clients".
func FixServerLoad() *repair.Tactic {
	return &repair.Tactic{
		Name: "fixServerLoad",
		Script: func(ctx *repair.Context) (bool, error) {
			cli, err := subjectClient(ctx)
			if err != nil {
				return false, err
			}
			maxLoad := ctx.Sys.Props().FloatOr(PropMaxServerLoad, 6)
			var loaded []*model.Component
			for _, grp := range ctx.Sys.ComponentsByType(TServerGroup) {
				if !ctx.Sys.Connected(grp, cli) {
					continue
				}
				if grp.Props().FloatOr(PropLoad, 0) > maxLoad {
					loaded = append(loaded, grp)
				}
			}
			if len(loaded) == 0 {
				return false, nil
			}
			activated := 0
			for _, grp := range loaded {
				if _, err := AddServer(ctx.Txn, grp); err == nil {
					activated++
				}
			}
			return activated > 0, nil
		},
	}
}

// FixBandwidth is the second tactic of Figure 5 (lines 28-42): when the
// client's connection bandwidth is below the floor, move the client to the
// group with the best predicted bandwidth. A missing bandwidth property
// (gauge not yet reporting) declines rather than aborting; a query that
// finds no better group returns ErrNoServerGroupFound, the paper's abort.
func FixBandwidth(query GroupQuery) *repair.Tactic {
	return &repair.Tactic{
		Name: "fixBandwidth",
		Script: func(ctx *repair.Context) (bool, error) {
			cli, err := subjectClient(ctx)
			if err != nil {
				return false, err
			}
			curGrp, _, role, err := GroupOf(ctx.Sys, cli)
			if err != nil {
				return false, err
			}
			minBW := ctx.Sys.Props().FloatOr(PropMinBandwidth, 10e3)
			bw, ok := role.Props().Float(PropBandwidth)
			if !ok {
				return false, nil
			}
			if bw >= minBW {
				return false, nil
			}
			if query == nil {
				return false, fmt.Errorf("operators: no group query configured")
			}
			good, predicted := query(ctx.Sys, cli, minBW)
			if good == nil {
				return false, ErrNoServerGroupFound
			}
			if good == curGrp {
				// Measurements disagree (gauge lag): the best group is the
				// one we are already on. Decline and let monitoring settle.
				return false, nil
			}
			if err := MoveClient(ctx.Txn, ctx.Sys, cli, good, predicted); err != nil {
				return false, err
			}
			return true, nil
		},
	}
}

// FixUnderutilization is the paper's third repair ("not shown": reduce the
// number of servers in a server group if the server group is underutilized")
// — it keeps the active-server set minimal, the cost goal stated in §1.
func FixUnderutilization() *repair.Tactic {
	return &repair.Tactic{
		Name: "fixUnderutilization",
		Script: func(ctx *repair.Context) (bool, error) {
			grp, ok := ctx.Violation.Subject.(*model.Component)
			if !ok || grp.Type() != TServerGroup {
				return false, fmt.Errorf("operators: utilization subject is not a server group")
			}
			minLoad := ctx.Sys.Props().FloatOr(PropMinServerLoad, 1)
			minReplicas := int(ctx.Sys.Props().FloatOr(PropMinReplicas, 1))
			if grp.Props().FloatOr(PropLoad, 0) >= minLoad {
				return false, nil
			}
			if len(ActiveServers(grp)) <= minReplicas {
				return false, nil
			}
			if err := RemoveServer(ctx.Txn, grp, ""); err != nil {
				return false, nil // cannot shrink further; not an error
			}
			return true, nil
		},
	}
}

// FixLatency assembles the Figure 5 strategy: first try to relieve server
// load, then try to move the client to a better-connected group.
func FixLatency(query GroupQuery) *repair.Strategy {
	return &repair.Strategy{
		Name:    "fixLatency",
		Policy:  repair.FirstSuccess,
		Tactics: []*repair.Tactic{FixServerLoad(), FixBandwidth(query)},
	}
}

// ShrinkStrategy wraps FixUnderutilization for the utilization invariant.
func ShrinkStrategy() *repair.Strategy {
	return &repair.Strategy{
		Name:    "shrink",
		Policy:  repair.FirstSuccess,
		Tactics: []*repair.Tactic{FixUnderutilization()},
	}
}
