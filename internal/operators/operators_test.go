package operators

import (
	"errors"
	"testing"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
	"archadapt/internal/repair"
)

// paperSpec is the experiment's initial configuration: SG1 = {S1,S2,S3}
// active + S4 spare, SG2 = {S5,S6} active + S7 spare, six clients on SG1.
func paperSpec() Spec {
	return Spec{
		Name: "storage",
		Groups: []GroupSpec{
			{Name: "ServerGrp1", Servers: []string{"S1", "S2", "S3", "S4"}, ActiveCount: 3},
			{Name: "ServerGrp2", Servers: []string{"S5", "S6", "S7"}, ActiveCount: 2},
		},
		Clients: []ClientSpec{
			{Name: "C1", Group: "ServerGrp1"}, {Name: "C2", Group: "ServerGrp1"},
			{Name: "C3", Group: "ServerGrp1"}, {Name: "C4", Group: "ServerGrp1"},
			{Name: "C5", Group: "ServerGrp1"}, {Name: "C6", Group: "ServerGrp1"},
		},
		MaxLatency:    2.0,
		MaxServerLoad: 6.0,
		MinBandwidth:  10e3,
	}
}

func build(t *testing.T) *model.System {
	t.Helper()
	sys, err := Build(paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildShape(t *testing.T) {
	sys := build(t)
	if got := len(sys.ComponentsByType(TClient)); got != 6 {
		t.Fatalf("clients=%d", got)
	}
	g1 := sys.Component("ServerGrp1")
	if got := ActiveServers(g1); len(got) != 3 {
		t.Fatalf("active=%v", got)
	}
	if got := SpareServers(g1); len(got) != 1 || got[0] != "S4" {
		t.Fatalf("spares=%v", got)
	}
	if v, _ := g1.Props().Float(PropReplication); v != 3 {
		t.Fatalf("replication=%v", v)
	}
	grp, conn, role, err := GroupOf(sys, sys.Component("C3"))
	if err != nil {
		t.Fatal(err)
	}
	if grp.Name() != "ServerGrp1" || conn.Name() != "ServerGrp1Conn" || role.Name() != "C3Role" {
		t.Fatalf("GroupOf: %s %s %s", grp.Name(), conn.Name(), role.Name())
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	s := paperSpec()
	s.Groups[0].ActiveCount = 9
	if _, err := Build(s); err == nil {
		t.Fatal("overfull ActiveCount should fail")
	}
	s = paperSpec()
	s.Clients[0].Group = "NoSuchGroup"
	if _, err := Build(s); err == nil {
		t.Fatal("unknown group should fail")
	}
}

func TestAddServerActivatesSpare(t *testing.T) {
	sys := build(t)
	g1 := sys.Component("ServerGrp1")
	txn := repair.NewTxn(sys)
	name, err := AddServer(txn, g1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "S4" {
		t.Fatalf("activated %s, want S4", name)
	}
	if len(ActiveServers(g1)) != 4 {
		t.Fatal("S4 not active")
	}
	if v, _ := g1.Props().Float(PropReplication); v != 4 {
		t.Fatalf("replication=%v", v)
	}
	ops := txn.Ops()
	if len(ops) != 1 || ops[0].Kind != repair.OpAddServer || ops[0].Server != "S4" {
		t.Fatalf("ops=%v", ops)
	}
	// No spares left.
	if _, err := AddServer(txn, g1); err == nil {
		t.Fatal("second AddServer should fail (no spares)")
	}
}

func TestRemoveServer(t *testing.T) {
	sys := build(t)
	g1 := sys.Component("ServerGrp1")
	txn := repair.NewTxn(sys)
	if err := RemoveServer(txn, g1, "S2"); err != nil {
		t.Fatal(err)
	}
	if len(ActiveServers(g1)) != 2 {
		t.Fatal("S2 still active")
	}
	// Default picks the last active server.
	if err := RemoveServer(txn, g1, ""); err != nil {
		t.Fatal(err)
	}
	if got := ActiveServers(g1); len(got) != 1 || got[0] != "S1" {
		t.Fatalf("active=%v", got)
	}
	// Refuses to remove the last one.
	if err := RemoveServer(txn, g1, ""); err == nil {
		t.Fatal("removing last server should fail")
	}
}

func TestMoveClient(t *testing.T) {
	sys := build(t)
	snap := sys.Clone()
	cli := sys.Component("C3")
	g2 := sys.Component("ServerGrp2")
	txn := repair.NewTxn(sys)
	if err := MoveClient(txn, sys, cli, g2, 5e6); err != nil {
		t.Fatal(err)
	}
	grp, conn, role, err := GroupOf(sys, cli)
	if err != nil {
		t.Fatal(err)
	}
	if grp.Name() != "ServerGrp2" || conn.Name() != "ServerGrp2Conn" {
		t.Fatalf("client on %s via %s", grp.Name(), conn.Name())
	}
	if bw, _ := role.Props().Float(PropBandwidth); bw != 5e6 {
		t.Fatalf("seeded bandwidth=%v", bw)
	}
	if sys.Connector("ServerGrp1Conn").Role("C3Role") != nil {
		t.Fatal("old role not removed")
	}
	ops := txn.Ops()
	if len(ops) != 1 || ops[0].Kind != repair.OpMoveClient || ops[0].Group != "ServerGrp2" {
		t.Fatalf("ops=%v", ops)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// Abort restores everything.
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	if !sys.Equal(snap) {
		t.Fatal("move rollback failed")
	}
	// Moving to the same group is rejected.
	txn2 := repair.NewTxn(sys)
	g1 := sys.Component("ServerGrp1")
	if err := MoveClient(txn2, sys, cli, g1, 0); err == nil {
		t.Fatal("no-op move should fail")
	}
}

// violationFor fabricates a latency violation for a client.
func violationFor(sys *model.System, client string) constraint.Violation {
	inv := constraint.MustInvariant(InvLatency, TClient, "averageLatency <= maxLatency")
	sys.Component(client).Props().Set(PropAvgLatency, 10.0)
	for _, v := range inv.Check(sys, nil, true) {
		if v.Subject.Name() == client {
			return v
		}
	}
	panic("no violation for " + client)
}

func TestFixServerLoadTactic(t *testing.T) {
	sys := build(t)
	sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0) // overloaded
	strat := &repair.Strategy{Name: "s", Policy: repair.FirstSuccess, Tactics: []*repair.Tactic{FixServerLoad()}}
	out := strat.Execute(sys, violationFor(sys, "C1"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Ops) != 1 || out.Ops[0].Server != "S4" {
		t.Fatalf("ops=%v", out.Ops)
	}
	// Second violation: spares exhausted → tactic declines.
	out2 := strat.Execute(sys, violationFor(sys, "C2"), nil, 0)
	if !errors.Is(out2.Err, repair.ErrNoTacticApplied) {
		t.Fatalf("err=%v", out2.Err)
	}
}

func TestFixServerLoadIgnoresUnconnectedGroups(t *testing.T) {
	sys := build(t)
	// Overload SG2, which C1 is NOT connected to: tactic must decline.
	sys.Component("ServerGrp2").Props().Set(PropLoad, 99.0)
	strat := &repair.Strategy{Name: "s", Policy: repair.FirstSuccess, Tactics: []*repair.Tactic{FixServerLoad()}}
	out := strat.Execute(sys, violationFor(sys, "C1"), nil, 0)
	if !errors.Is(out.Err, repair.ErrNoTacticApplied) {
		t.Fatalf("err=%v", out.Err)
	}
}

func TestFixBandwidthMovesClient(t *testing.T) {
	sys := build(t)
	// C3's role reports starved bandwidth.
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3) // below the 10 Kbps floor
	query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp2"), 5e6
	}
	strat := &repair.Strategy{Name: "s", Policy: repair.FirstSuccess, Tactics: []*repair.Tactic{FixBandwidth(query)}}
	out := strat.Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	grp, _, newRole, _ := GroupOf(sys, sys.Component("C3"))
	if grp.Name() != "ServerGrp2" {
		t.Fatalf("client on %s", grp.Name())
	}
	if bw, _ := newRole.Props().Float(PropBandwidth); bw != 5e6 {
		t.Fatalf("bw=%v", bw)
	}
}

func TestFixBandwidthDeclinesWhenHealthy(t *testing.T) {
	sys := build(t)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e6) // plenty
	strat := &repair.Strategy{Name: "s", Policy: repair.FirstSuccess,
		Tactics: []*repair.Tactic{FixBandwidth(func(*model.System, *model.Component, float64) (*model.Component, float64) {
			t.Fatal("query should not run when bandwidth is healthy")
			return nil, 0
		})}}
	out := strat.Execute(sys, violationFor(sys, "C3"), nil, 0)
	if !errors.Is(out.Err, repair.ErrNoTacticApplied) {
		t.Fatalf("err=%v", out.Err)
	}
}

func TestFixBandwidthAbortsWhenNoGroup(t *testing.T) {
	sys := build(t)
	snap := sys.Clone()
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	snap = sys.Clone() // include the property
	query := func(*model.System, *model.Component, float64) (*model.Component, float64) { return nil, 0 }
	strat := &repair.Strategy{Name: "s", Policy: repair.FirstSuccess, Tactics: []*repair.Tactic{FixBandwidth(query)}}
	out := strat.Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err == nil || !errors.Is(out.Err, ErrNoServerGroupFound) {
		t.Fatalf("err=%v", out.Err)
	}
	sys.Component("C3").Props().Set(PropAvgLatency, 10.0) // violationFor set it before clone
	snap.Component("C3").Props().Set(PropAvgLatency, 10.0)
	if !sys.Equal(snap) {
		t.Fatal("abort must leave model unchanged")
	}
}

func TestFixBandwidthDeclinesWhenBestIsCurrent(t *testing.T) {
	sys := build(t)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp1"), 1e6 // current group
	}
	strat := &repair.Strategy{Name: "s", Policy: repair.FirstSuccess, Tactics: []*repair.Tactic{FixBandwidth(query)}}
	out := strat.Execute(sys, violationFor(sys, "C3"), nil, 0)
	if !errors.Is(out.Err, repair.ErrNoTacticApplied) {
		t.Fatalf("err=%v", out.Err)
	}
}

func TestFixLatencyPrefersServerLoadOverMove(t *testing.T) {
	// Both causes present: the strategy must apply fixServerLoad first
	// (the paper's prototype "prioritize[d] server load repairs").
	sys := build(t)
	sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp2"), 5e6
	}
	out := FixLatency(query).Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Applied) != 1 || out.Applied[0] != "fixServerLoad" {
		t.Fatalf("applied=%v", out.Applied)
	}
	grp, _, _, _ := GroupOf(sys, sys.Component("C3"))
	if grp.Name() != "ServerGrp1" {
		t.Fatal("client should not have moved")
	}
}

func TestFixLatencyFallsBackToMove(t *testing.T) {
	sys := build(t)
	// Exhaust SG1's spare first.
	txn := repair.NewTxn(sys)
	if _, err := AddServer(txn, sys.Component("ServerGrp1")); err != nil {
		t.Fatal(err)
	}
	sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp2"), 5e6
	}
	out := FixLatency(query).Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Applied) != 1 || out.Applied[0] != "fixBandwidth" {
		t.Fatalf("applied=%v", out.Applied)
	}
	grp, _, _, _ := GroupOf(sys, sys.Component("C3"))
	if grp.Name() != "ServerGrp2" {
		t.Fatal("client should have moved to SG2")
	}
}

func TestFixUnderutilizationShrinks(t *testing.T) {
	sys := build(t)
	sys.Props().Set(PropMinServerLoad, 1.0)
	sys.Props().Set(PropMinReplicas, 1.0)
	g2 := sys.Component("ServerGrp2")
	g2.Props().Set(PropLoad, 0.1)
	inv := constraint.MustInvariant(InvUtilization, TServerGroup,
		"load >= minServerLoad or replicationCount <= minReplicas")
	vs := inv.Check(sys, nil, true)
	if len(vs) == 0 {
		t.Fatal("expected utilization violation")
	}
	var g2v constraint.Violation
	for _, v := range vs {
		if v.Subject.Name() == "ServerGrp2" {
			g2v = v
		}
	}
	out := ShrinkStrategy().Execute(sys, g2v, nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if got := ActiveServers(g2); len(got) != 1 {
		t.Fatalf("active after shrink=%v", got)
	}
	// At the floor now: strategy declines.
	out2 := ShrinkStrategy().Execute(sys, g2v, nil, 0)
	if !errors.Is(out2.Err, repair.ErrNoTacticApplied) {
		t.Fatalf("err=%v", out2.Err)
	}
}

func TestEngineEndToEndWithOperators(t *testing.T) {
	// Full loop: violation → engine → fixLatency → ops to translator.
	sys := build(t)
	sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0)
	var translated []repair.Op
	eng := repair.NewEngine(sys, repair.TranslatorFunc(func(op repair.Op) error {
		translated = append(translated, op)
		return nil
	}))
	eng.Bind(InvLatency, FixLatency(nil))
	rec := eng.HandleViolation(violationFor(sys, "C1"), 100)
	if rec == nil || rec.Err != nil {
		t.Fatalf("record %+v", rec)
	}
	if len(translated) != 1 || translated[0].Kind != repair.OpAddServer {
		t.Fatalf("translated=%v", translated)
	}
}
