package operators

import (
	"strings"
	"testing"

	"archadapt/internal/model"
	"archadapt/internal/repair"
)

// The compiled Figure 5 script must reproduce the hand-coded strategy's
// decisions on every scenario the hand-coded tests cover.

func compiled(t *testing.T, query GroupQuery) *repair.Strategy {
	t.Helper()
	s, err := CompileFixLatency(query)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScriptedFixServerLoad(t *testing.T) {
	sys := build(t)
	sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0)
	out := compiled(t, nil).Execute(sys, violationFor(sys, "C1"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Ops) != 1 || out.Ops[0].Kind != repair.OpAddServer || out.Ops[0].Server != "S4" {
		t.Fatalf("ops=%v", out.Ops)
	}
	if got := ActiveServers(sys.Component("ServerGrp1")); len(got) != 4 {
		t.Fatalf("active=%v", got)
	}
}

func TestScriptedFixBandwidthMove(t *testing.T) {
	sys := build(t)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp2"), 5e6
	}
	out := compiled(t, query).Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Ops) != 1 || out.Ops[0].Kind != repair.OpMoveClient || out.Ops[0].Group != "ServerGrp2" {
		t.Fatalf("ops=%v", out.Ops)
	}
	grp, _, _, _ := GroupOf(sys, sys.Component("C3"))
	if grp.Name() != "ServerGrp2" {
		t.Fatal("client not moved")
	}
}

func TestScriptedAbortNoServerGroupFound(t *testing.T) {
	sys := build(t)
	snap := sys.Clone()
	snap.Component("C3").Props().Set(PropAvgLatency, 10.0)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	snap = sys.Clone()
	snap.Component("C3").Props().Set(PropAvgLatency, 10.0)
	query := func(*model.System, *model.Component, float64) (*model.Component, float64) { return nil, 0 }
	out := compiled(t, query).Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err == nil || !strings.Contains(out.Err.Error(), "NoServerGroupFound") {
		t.Fatalf("err=%v", out.Err)
	}
	if !sys.Equal(snap) {
		t.Fatal("abort must leave model unchanged")
	}
}

func TestScriptedAbortModelErrorWhenNothingApplies(t *testing.T) {
	// Healthy load, healthy bandwidth: both tactics decline and Figure 5
	// line 13 aborts with ModelError.
	sys := build(t)
	_, _, role, _ := GroupOf(sys, sys.Component("C1"))
	role.Props().Set(PropBandwidth, 5e6)
	out := compiled(t, nil).Execute(sys, violationFor(sys, "C1"), nil, 0)
	if out.Err == nil || !strings.Contains(out.Err.Error(), "ModelError") {
		t.Fatalf("err=%v", out.Err)
	}
}

func TestScriptedPrefersLoadOverMove(t *testing.T) {
	sys := build(t)
	sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp2"), 5e6
	}
	out := compiled(t, query).Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Ops) != 1 || out.Ops[0].Kind != repair.OpAddServer {
		t.Fatalf("ops=%v — fixServerLoad should win", out.Ops)
	}
}

func TestScriptedSpareExhaustionFallsThrough(t *testing.T) {
	// No spares left: scripted fixServerLoad must decline (replicas
	// unchanged) and fixBandwidth must take over — the paper's phase-2
	// behaviour.
	sys := build(t)
	txn := repair.NewTxn(sys)
	if _, err := AddServer(txn, sys.Component("ServerGrp1")); err != nil {
		t.Fatal(err)
	}
	sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0)
	_, _, role, _ := GroupOf(sys, sys.Component("C3"))
	role.Props().Set(PropBandwidth, 5e3)
	query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp2"), 5e6
	}
	out := compiled(t, query).Execute(sys, violationFor(sys, "C3"), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Ops) != 1 || out.Ops[0].Kind != repair.OpMoveClient {
		t.Fatalf("ops=%v — move should take over when spares are gone", out.Ops)
	}
}

func TestScriptedMatchesHandCodedAcrossScenarios(t *testing.T) {
	type scenario struct {
		name  string
		setup func(sys *model.System)
		query GroupQuery
	}
	sg2Query := func(s *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
		return s.Component("ServerGrp2"), 5e6
	}
	nilQuery := func(*model.System, *model.Component, float64) (*model.Component, float64) { return nil, 0 }
	scenarios := []scenario{
		{"overload", func(sys *model.System) {
			sys.Component("ServerGrp1").Props().Set(PropLoad, 9.0)
		}, sg2Query},
		{"starved", func(sys *model.System) {
			_, _, role, _ := GroupOf(sys, sys.Component("C1"))
			role.Props().Set(PropBandwidth, 5e3)
		}, sg2Query},
		{"healthy", func(sys *model.System) {
			_, _, role, _ := GroupOf(sys, sys.Component("C1"))
			role.Props().Set(PropBandwidth, 5e6)
		}, sg2Query},
		{"starved-nowhere-to-go", func(sys *model.System) {
			_, _, role, _ := GroupOf(sys, sys.Component("C1"))
			role.Props().Set(PropBandwidth, 5e3)
		}, nilQuery},
	}
	for _, sc := range scenarios {
		handSys := build(t)
		sc.setup(handSys)
		hand := FixLatency(sc.query).Execute(handSys, violationFor(handSys, "C1"), nil, 0)

		scriptSys := build(t)
		sc.setup(scriptSys)
		script := compiled(t, sc.query).Execute(scriptSys, violationFor(scriptSys, "C1"), nil, 0)

		if (hand.Err == nil) != (script.Err == nil) {
			t.Fatalf("%s: hand err=%v script err=%v", sc.name, hand.Err, script.Err)
		}
		if hand.Err != nil {
			// Both failed; the scripted ModelError corresponds to the
			// engine's ErrNoTacticApplied in the hand-coded version.
			continue
		}
		if len(hand.Ops) != len(script.Ops) {
			t.Fatalf("%s: ops %v vs %v", sc.name, hand.Ops, script.Ops)
		}
		for i := range hand.Ops {
			if hand.Ops[i] != script.Ops[i] {
				t.Fatalf("%s: op %d: %v vs %v", sc.name, i, hand.Ops[i], script.Ops[i])
			}
		}
		if !handSys.Equal(scriptSys) {
			t.Fatalf("%s: resulting models differ", sc.name)
		}
	}
}

func TestScriptOperatorSetComplete(t *testing.T) {
	ops := ScriptOperators(nil)
	for _, m := range []string{"addServer", "move", "remove"} {
		if ops.Methods[m] == nil {
			t.Fatalf("method %s missing", m)
		}
	}
	for _, f := range []string{"roleOf", "groupOf", "findGoodSGrp"} {
		if ops.Funcs[f] == nil {
			t.Fatalf("func %s missing", f)
		}
	}
	if _, err := CompileFixLatency(nil); err != nil {
		t.Fatal(err)
	}
}
