package operators

import (
	"fmt"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
	"archadapt/internal/repair"
	"archadapt/internal/script"
)

// ScriptOperators exposes this style's adaptation operators to the Figure 5
// script language: methods addServer / move / remove on model elements, and
// the expression-level queries roleOf and findGoodSGrp.
func ScriptOperators(query GroupQuery) script.OperatorSet {
	asComponent := func(v constraint.Value, what string) (*model.Component, error) {
		if v.Kind != constraint.KElem {
			return nil, fmt.Errorf("operators: %s is not an element", what)
		}
		c, ok := v.Elem.(*model.Component)
		if !ok {
			return nil, fmt.Errorf("operators: %s is not a component", what)
		}
		return c, nil
	}
	return script.OperatorSet{
		Methods: map[string]script.Method{
			"addServer": func(ctx *repair.Context, recv constraint.Value, args []constraint.Value) error {
				grp, err := asComponent(recv, "addServer receiver")
				if err != nil {
					return err
				}
				if len(SpareServers(grp)) == 0 {
					// Figure 5 calls addServer on every overloaded group; a
					// group with no spare is a no-op, not an abort — the
					// script detects overall effect via replicasOf.
					return nil
				}
				_, err = AddServer(ctx.Txn, grp)
				return err
			},
			"move": func(ctx *repair.Context, recv constraint.Value, args []constraint.Value) error {
				cli, err := asComponent(recv, "move receiver")
				if err != nil {
					return err
				}
				if len(args) < 1 {
					return fmt.Errorf("operators: move(to) needs a target group")
				}
				to, err := asComponent(args[0], "move target")
				if err != nil {
					return err
				}
				bw := 0.0
				if len(args) > 1 && args[1].Kind == constraint.KNum {
					bw = args[1].Num
				} else if query != nil {
					// Seed the fresh role's bandwidth with the prediction,
					// exactly as the hand-coded FixBandwidth tactic does, so
					// the constraint does not re-fire before gauges catch up.
					if best, predicted := query(ctx.Sys, cli, 0); best == to {
						bw = predicted
					}
				}
				return MoveClient(ctx.Txn, ctx.Sys, cli, to, bw)
			},
			"remove": func(ctx *repair.Context, recv constraint.Value, args []constraint.Value) error {
				grp, err := asComponent(recv, "remove receiver")
				if err != nil {
					return err
				}
				server := ""
				if len(args) > 0 && args[0].Kind == constraint.KStr {
					server = args[0].Str
				}
				return RemoveServer(ctx.Txn, grp, server)
			},
		},
		Funcs: map[string]func([]constraint.Value) (constraint.Value, error){
			// roleOf(client) resolves the client's current connector role,
			// letting scripts read role.bandwidth as Figure 5 does.
			"roleOf": func(args []constraint.Value) (constraint.Value, error) {
				if len(args) != 1 || args[0].Kind != constraint.KElem {
					return constraint.Nil(), fmt.Errorf("operators: roleOf(client)")
				}
				cli, ok := args[0].Elem.(*model.Component)
				if !ok || cli.Type() != TClient {
					return constraint.Nil(), fmt.Errorf("operators: roleOf wants a client")
				}
				_, _, role, err := GroupOf(cli.System(), cli)
				if err != nil {
					return constraint.Nil(), err
				}
				return constraint.Elem(role), nil
			},
			// groupOf(client) resolves the client's current server group.
			"groupOf": func(args []constraint.Value) (constraint.Value, error) {
				if len(args) != 1 || args[0].Kind != constraint.KElem {
					return constraint.Nil(), fmt.Errorf("operators: groupOf(client)")
				}
				cli, ok := args[0].Elem.(*model.Component)
				if !ok || cli.Type() != TClient {
					return constraint.Nil(), fmt.Errorf("operators: groupOf wants a client")
				}
				grp, _, _, err := GroupOf(cli.System(), cli)
				if err != nil {
					return constraint.Nil(), err
				}
				return constraint.Elem(grp), nil
			},
			// findGoodSGrp(client, minBW): the §3.3 runtime query.
			"findGoodSGrp": func(args []constraint.Value) (constraint.Value, error) {
				if len(args) != 2 || args[0].Kind != constraint.KElem || args[1].Kind != constraint.KNum {
					return constraint.Nil(), fmt.Errorf("operators: findGoodSGrp(client, minBW)")
				}
				cli, ok := args[0].Elem.(*model.Component)
				if !ok {
					return constraint.Nil(), fmt.Errorf("operators: findGoodSGrp wants a client")
				}
				if query == nil {
					return constraint.Nil(), fmt.Errorf("operators: no group query configured")
				}
				grp, _ := query(cli.System(), cli, args[1].Num)
				if grp == nil {
					return constraint.Nil(), nil
				}
				return constraint.Elem(grp), nil
			},
		},
	}
}

// FixLatencyScript is the Figure 5 repair strategy in the script language —
// the textual form the paper says its hand-coded repairs "could be generated
// from". CompileFixLatency turns it into an executable strategy.
const FixLatencyScript = `
strategy fixLatency(badClient : ClientT) = {
    if (fixServerLoad(badClient)) { commit repair; }
    else if (fixBandwidth(badClient)) { commit repair; }
    else { abort ModelError; }
}

tactic fixServerLoad(client : ClientT) : boolean = {
    let loadedServerGroups : set = select sgrp : ServerGroupT in self.Components |
        connected(sgrp, client) and sgrp.load > maxServerLoad;
    if (size(loadedServerGroups) == 0) { return false; }
    let before : float = replicasOf(loadedServerGroups);
    foreach sGrp in loadedServerGroups { sGrp.addServer(); }
    return replicasOf(loadedServerGroups) > before;
}

tactic fixBandwidth(client : ClientT) : boolean = {
    let role : ClientRoleT = roleOf(client);
    if (role.bandwidth >= minBandwidth) { return false; }
    let oldSGrp : ServerGroupT = groupOf(client);
    let goodSGrp : ServerGroupT = findGoodSGrp(client, minBandwidth);
    if (goodSGrp == nil) { abort NoServerGroupFound; }
    if (goodSGrp == oldSGrp) { return false; }
    client.move(goodSGrp);
    return true;
}
`

// CompileFixLatency compiles FixLatencyScript against this style's
// operators. The scripted fixServerLoad differs from Figure 5's literal
// line 26 (`return size(loadedServerGroups) > 0`) in one way: it reports
// success only if some spare was actually activated, since addServer on a
// spare-less group is a no-op here rather than an error.
func CompileFixLatency(query GroupQuery) (*repair.Strategy, error) {
	ops := ScriptOperators(query)
	// replicasOf(set of groups): total replication count — lets the script
	// detect whether addServer had any effect.
	ops.Funcs["replicasOf"] = func(args []constraint.Value) (constraint.Value, error) {
		if len(args) != 1 || args[0].Kind != constraint.KSet {
			return constraint.Nil(), fmt.Errorf("operators: replicasOf(set)")
		}
		total := 0.0
		for _, v := range args[0].Set {
			if v.Kind == constraint.KElem {
				if c, ok := v.Elem.(*model.Component); ok {
					total += float64(len(ActiveServers(c)))
				}
			}
		}
		return constraint.Num(total), nil
	}
	lib, err := script.Compile(FixLatencyScript, ops)
	if err != nil {
		return nil, err
	}
	return lib.Strategies["fixLatency"], nil
}
