package operators

import (
	"fmt"

	"archadapt/internal/model"
	"archadapt/internal/repair"
)

// The architecture adaptation operators of §3.3. Each operates on the model
// inside a transaction and records the semantic op the translator will
// propagate; none touches the runtime directly.

// AddServer activates a spare server in grp's representation — the paper's
//
//	addServer(): adds a new replicated server component to its
//	representation, ensuring that the architecture is structurally valid.
//
// The model keeps spares as inactive ServerT components (the runtime testbed
// had two spare machines, S4 and S7), so "adding" a server flips one to
// active and bumps the replication count. It returns the server's name, or
// an error when the group has no spare left.
func AddServer(txn *repair.Txn, grp *model.Component) (string, error) {
	if grp.Type() != TServerGroup {
		return "", fmt.Errorf("operators: addServer on %s (%s)", grp.Name(), grp.Type())
	}
	spares := SpareServers(grp)
	if len(spares) == 0 {
		return "", fmt.Errorf("operators: no spare server in %s", grp.Name())
	}
	name := spares[0]
	srv := grp.Rep.Component(name)
	txn.SetProp(srv, PropActive, true)
	txn.SetProp(grp, PropReplication, grp.Props().FloatOr(PropReplication, 0)+1)
	txn.Record(repair.Op{Kind: repair.OpAddServer, Group: grp.Name(), Server: name})
	return name, nil
}

// RemoveServer deactivates an active server — the paper's
//
//	remove(): deletes the server from its containing server group ...
//	changes the replication count ... and deletes the binding.
//
// It refuses to drop a group below one active server.
func RemoveServer(txn *repair.Txn, grp *model.Component, serverName string) error {
	if grp.Type() != TServerGroup {
		return fmt.Errorf("operators: removeServer on %s (%s)", grp.Name(), grp.Type())
	}
	active := ActiveServers(grp)
	if len(active) <= 1 {
		return fmt.Errorf("operators: %s has only %d active server(s)", grp.Name(), len(active))
	}
	if serverName == "" {
		serverName = active[len(active)-1]
	}
	srv := grp.Rep.Component(serverName)
	if srv == nil || !srv.Props().BoolOr(PropActive, false) {
		return fmt.Errorf("operators: %s has no active server %q", grp.Name(), serverName)
	}
	txn.SetProp(srv, PropActive, false)
	txn.SetProp(grp, PropReplication, grp.Props().FloatOr(PropReplication, 1)-1)
	txn.Record(repair.Op{Kind: repair.OpRemoveServer, Group: grp.Name(), Server: serverName})
	return nil
}

// MoveClient repoints a client at another server group — the paper's
//
//	move(to: ServerGroupT): deletes the role currently connecting the
//	client ... and performs the necessary attachment to a connector that
//	will connect it to the server group passed in as a parameter.
//
// newBandwidth, when positive, seeds the fresh role's bandwidth property so
// the constraint does not re-fire before the gauges catch up.
func MoveClient(txn *repair.Txn, sys *model.System, cli, to *model.Component, newBandwidth float64) error {
	if cli.Type() != TClient {
		return fmt.Errorf("operators: move on %s (%s)", cli.Name(), cli.Type())
	}
	if to.Type() != TServerGroup {
		return fmt.Errorf("operators: move target %s is %s", to.Name(), to.Type())
	}
	curGrp, curConn, curRole, err := GroupOf(sys, cli)
	if err != nil {
		return err
	}
	if curGrp == to {
		return fmt.Errorf("operators: client %s already on %s", cli.Name(), to.Name())
	}
	newConn := sys.Connector(ConnName(to.Name()))
	if newConn == nil {
		return fmt.Errorf("operators: group %s has no connector", to.Name())
	}
	port := cli.Port("request")
	if err := txn.Detach(sys, port, curRole); err != nil {
		return err
	}
	if err := txn.RemoveRole(curConn, curRole.Name()); err != nil {
		return err
	}
	role, err := txn.AddRole(newConn, RoleName(cli.Name()), TClientRole)
	if err != nil {
		return err
	}
	if newBandwidth > 0 {
		txn.SetProp(role, PropBandwidth, newBandwidth)
	}
	if err := txn.Attach(sys, port, role); err != nil {
		return err
	}
	txn.Record(repair.Op{Kind: repair.OpMoveClient, Client: cli.Name(), Group: to.Name()})
	return nil
}
