package probes

import (
	"testing"

	"archadapt/internal/app"
	"archadapt/internal/bus"
	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

func rig(t *testing.T) (*sim.Kernel, *app.System, *bus.Shard, netsim.NodeID) {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k)
	r := net.AddRouter("r")
	ch := net.AddHost("ch")
	sh := net.AddHost("sh")
	qh := net.AddHost("qh")
	for _, h := range []netsim.NodeID{ch, sh, qh} {
		net.Connect(h, r, 10e6, 1e-3)
	}
	a := app.New(k, net, qh)
	_ = a.CreateQueue("G")
	a.AddServer("S", sh, "G", 0.05, 0)
	_ = a.Activate("S")
	a.AddClient("C", ch, "G", 2.0, sim.NewRand(1))
	return k, a, bus.New(k, net).Default(), qh
}

func TestResponseProbePublishes(t *testing.T) {
	k, a, b, qh := rig(t)
	var msgs []bus.Message
	b.Subscribe(qh, bus.TopicIs(TopicResponse), func(m bus.Message) { msgs = append(msgs, m) })
	AttachResponseProbe(b, a.Client("C"))
	a.Start()
	k.Run(30)
	a.StopClients()
	k.RunAll(0)
	if len(msgs) < 20 {
		t.Fatalf("observations=%d, want ~60", len(msgs))
	}
	m := msgs[0]
	if m.Str("client") != "C" || m.Str("group") != "G" {
		t.Fatalf("fields %+v", m)
	}
	if m.Num("latency") <= 0 {
		t.Fatal("latency missing")
	}
}

func TestQueueProbeSamples(t *testing.T) {
	k, a, b, qh := rig(t)
	var lens []float64
	b.Subscribe(qh, bus.TopicAndField(TopicQueue, "group", "G"), func(m bus.Message) {
		lens = append(lens, m.Num("len"))
	})
	p := StartQueueProbe(k, b, a, 5)
	// Deactivate the server so the queue backs up.
	_ = a.Deactivate("S")
	a.Start()
	// Run past the t=30 tick so its delivery lands, then stop the probe.
	k.Run(32)
	p.Stop()
	n := len(lens)
	if n < 4 {
		t.Fatalf("samples=%d", n)
	}
	if lens[n-1] <= lens[0] {
		t.Fatalf("queue should grow with server down: %v", lens)
	}
	k.Run(62)
	if len(lens) != n {
		t.Fatal("probe kept sampling after Stop")
	}
}

func TestServerProbeSamples(t *testing.T) {
	k, a, b, qh := rig(t)
	var served []float64
	b.Subscribe(qh, bus.TopicAndField(TopicServer, "server", "S"), func(m bus.Message) {
		served = append(served, m.Num("served"))
	})
	p := StartServerProbe(k, b, a, 5)
	a.Start()
	k.Run(60)
	p.Stop()
	a.StopClients()
	k.RunAll(0)
	if len(served) < 5 {
		t.Fatalf("samples=%d", len(served))
	}
	if served[len(served)-1] <= served[0] {
		t.Fatalf("served counter should grow: %v", served)
	}
}
