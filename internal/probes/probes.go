// Package probes implements the lowest level of the paper's three-level
// monitoring infrastructure (Figure 4): probes are deployed in the target
// system, observe raw events, and announce observations on the probe bus.
//
// The application probes correspond to the paper's AIDE-instrumented Java
// probes ("the probes report when particular methods have been called, so
// that bandwidth, latency, and server load can be calculated by the
// gauges"); the flow probe wraps Remos.
//
// Probes publish onto a bus.Shard — an application's routing domain on the
// fleet-shared monitoring bus (or on a private per-application bus in the
// reference configuration). Attach functions return detach handles so the
// fleet can fully unhook a retired application's instrumentation.
package probes

import (
	"archadapt/internal/app"
	"archadapt/internal/bus"
	"archadapt/internal/sim"
)

// Probe-bus topics.
const (
	// TopicResponse carries one observation per client response:
	// Name=client, V1=latency, Group=group.
	TopicResponse = "probe.response"
	// TopicQueue carries periodic queue-length samples:
	// Group=group, V1=len.
	TopicQueue = "probe.queue"
	// TopicServer carries server activity samples:
	// Name=server, V1=busy (0/1), V2=served.
	TopicServer = "probe.server"
)

// AttachResponseProbe instruments a client so every completed response is
// announced on the probe shard from the client's host. The returned detach
// function silences the probe (used when the application retires and its
// shard is released for reuse).
func AttachResponseProbe(sh *bus.Shard, c *app.Client) (detach func()) {
	attached := true
	c.OnResponse = append(c.OnResponse, func(r app.Response) {
		if !attached {
			return
		}
		sh.Publish(bus.Message{
			Topic: TopicResponse,
			Src:   c.Host,
			Name:  c.Name,
			V1:    r.Latency,
			Group: r.Req.Group,
		})
	})
	return func() { attached = false }
}

// QueueProbe samples every group's queue length on a period and announces
// the samples from the queue machine. This realizes the paper's server-load
// measure ("we measure server load by measuring the size of the queue of
// waiting client requests").
type QueueProbe struct {
	stop    func()
	scratch []bus.Message
}

// StartQueueProbe begins sampling. Samples start after one period (probes
// need deployment time; the paper's first two minutes are quiescent for
// exactly this reason). All of a tick's per-group samples go out in one
// batched dispatch pass.
func StartQueueProbe(k *sim.Kernel, sh *bus.Shard, sys *app.System, period float64) *QueueProbe {
	p := &QueueProbe{}
	p.stop = k.Ticker(k.Now()+period, period, func(now sim.Time) {
		p.scratch = p.scratch[:0]
		for _, g := range sys.Groups() {
			p.scratch = append(p.scratch, bus.Message{
				Topic: TopicQueue,
				Src:   sys.QueueHost,
				Group: g,
				V1:    float64(sys.QueueLen(g)),
			})
		}
		sh.PublishBatch(p.scratch)
	})
	return p
}

// Stop halts sampling.
func (p *QueueProbe) Stop() {
	if p.stop != nil {
		p.stop()
	}
}

// ServerProbe samples server busyness — used by utilization analyses and
// the webfarm example.
type ServerProbe struct {
	stop func()
}

// StartServerProbe begins sampling all servers on a period.
func StartServerProbe(k *sim.Kernel, sh *bus.Shard, sys *app.System, period float64) *ServerProbe {
	p := &ServerProbe{}
	p.stop = k.Ticker(k.Now()+period, period, func(now sim.Time) {
		for _, name := range sys.Servers() {
			srv := sys.Server(name)
			busy := 0.0
			if srv.Busy() {
				busy = 1.0
			}
			sh.Publish(bus.Message{
				Topic: TopicServer,
				Src:   srv.Host,
				Name:  name,
				V1:    busy,
				V2:    float64(srv.Served()),
			})
		}
	})
	return p
}

// Stop halts sampling.
func (p *ServerProbe) Stop() {
	if p.stop != nil {
		p.stop()
	}
}
