// Package probes implements the lowest level of the paper's three-level
// monitoring infrastructure (Figure 4): probes are deployed in the target
// system, observe raw events, and announce observations on the probe bus.
//
// The application probes correspond to the paper's AIDE-instrumented Java
// probes ("the probes report when particular methods have been called, so
// that bandwidth, latency, and server load can be calculated by the
// gauges"); the flow probe wraps Remos.
package probes

import (
	"archadapt/internal/app"
	"archadapt/internal/bus"
	"archadapt/internal/sim"
)

// Probe-bus topics.
const (
	// TopicResponse carries one observation per client response:
	// fields client (string), latency (float64), group (string).
	TopicResponse = "probe.response"
	// TopicQueue carries periodic queue-length samples:
	// fields group (string), len (float64).
	TopicQueue = "probe.queue"
	// TopicServer carries server activity samples:
	// fields server (string), busy (float64 0/1), served (float64).
	TopicServer = "probe.server"
)

// AttachResponseProbe instruments a client so every completed response is
// announced on the probe bus from the client's host.
func AttachResponseProbe(b *bus.Bus, c *app.Client) {
	c.OnResponse = append(c.OnResponse, func(r app.Response) {
		b.Publish(bus.Message{
			Topic: TopicResponse,
			Src:   c.Host,
			Fields: map[string]any{
				"client":  c.Name,
				"latency": r.Latency,
				"group":   r.Req.Group,
			},
		})
	})
}

// QueueProbe samples every group's queue length on a period and announces
// the samples from the queue machine. This realizes the paper's server-load
// measure ("we measure server load by measuring the size of the queue of
// waiting client requests").
type QueueProbe struct {
	stop func()
}

// StartQueueProbe begins sampling. Samples start after one period (probes
// need deployment time; the paper's first two minutes are quiescent for
// exactly this reason).
func StartQueueProbe(k *sim.Kernel, b *bus.Bus, sys *app.System, period float64) *QueueProbe {
	p := &QueueProbe{}
	p.stop = k.Ticker(k.Now()+period, period, func(now sim.Time) {
		for _, g := range sys.Groups() {
			b.Publish(bus.Message{
				Topic: TopicQueue,
				Src:   sys.QueueHost,
				Fields: map[string]any{
					"group": g,
					"len":   float64(sys.QueueLen(g)),
				},
			})
		}
	})
	return p
}

// Stop halts sampling.
func (p *QueueProbe) Stop() {
	if p.stop != nil {
		p.stop()
	}
}

// ServerProbe samples server busyness — used by utilization analyses and
// the webfarm example.
type ServerProbe struct {
	stop func()
}

// StartServerProbe begins sampling all servers on a period.
func StartServerProbe(k *sim.Kernel, b *bus.Bus, sys *app.System, period float64) *ServerProbe {
	p := &ServerProbe{}
	p.stop = k.Ticker(k.Now()+period, period, func(now sim.Time) {
		for _, name := range sys.Servers() {
			srv := sys.Server(name)
			busy := 0.0
			if srv.Busy() {
				busy = 1.0
			}
			b.Publish(bus.Message{
				Topic: TopicServer,
				Src:   srv.Host,
				Fields: map[string]any{
					"server": name,
					"busy":   busy,
					"served": float64(srv.Served()),
				},
			})
		}
	})
	return p
}

// Stop halts sampling.
func (p *ServerProbe) Stop() {
	if p.stop != nil {
		p.stop()
	}
}
