package core

import (
	"sort"

	"archadapt/internal/bus"
	"archadapt/internal/constraint"
	"archadapt/internal/obs"
	"archadapt/internal/repair"
)

// This file is the manager's attachment to the observability plane
// (internal/obs). Every hook is gated on m.tr != nil: with tracing off the
// manager performs one pointer comparison per call site and is otherwise
// byte-identical to the untraced build (asserted by the fleet purity tests).
//
// Span chain produced per adaptation episode, rooted in the monitoring plane
// (the bus stamps probe samples and gauge reports, gauges stamp updates):
//
//	probe.sample → gauge.update → gauge.report → model.update → violation
//	  → repair.decide (tactic*, op*) → repair [open across gauge churn]
//	  → recover [open until the first all-clear check]
//
// Phase samples: detect = probe sample (or model update) → first violating
// check; decide = episode open → repair commit; drain = gauge-churn extent;
// recover = churn done → first healthy check.

// reportRef remembers the newest model.update span per model subject, so a
// violation can parent on the observation that triggered it.
type reportRef struct {
	span obs.SpanID
	at   float64
}

// recoverRef is an open recovery span awaiting the subject's first healthy
// check.
type recoverRef struct {
	span obs.SpanID
	at   float64
}

// traceState is the manager's per-episode bookkeeping. Allocated only when a
// tracer is configured.
type traceState struct {
	lastReport     map[string]reportRef  // model subject -> newest model.update
	violSpan       map[string]obs.SpanID // open episode -> violation span
	violSince      map[string]float64    // open episode -> first violating check
	pendingRecover map[string]recoverRef // repaired subject -> open recover span
	lastDecision   obs.SpanID            // newest repair.decide (engine observer)
	scratch        map[string]bool       // per-check violating-subject set
}

// traceInit attaches the manager to cfg.Tracer: allocates episode state and
// installs the repair-engine observer that emits decision spans.
func (m *Manager) traceInit(app string) {
	m.tr = m.Cfg.Tracer
	m.trApp = app
	m.trState = &traceState{
		lastReport:     map[string]reportRef{},
		violSpan:       map[string]obs.SpanID{},
		violSince:      map[string]float64{},
		pendingRecover: map[string]recoverRef{},
		scratch:        map[string]bool{},
	}
	m.Engine.Observer = func(rec *repair.Record, v constraint.Violation, now float64) {
		st := m.trState
		name := rec.Strategy
		if name == "" {
			name = "none"
		}
		dec := m.tr.Instant(obs.KindRepairDecide, st.violSpan[rec.Subject], m.trApp,
			name+"/"+rec.Subject, float64(len(rec.Applied)), float64(len(rec.Ops)))
		for _, tac := range rec.Applied {
			m.tr.Instant(obs.KindTactic, dec, m.trApp, tac, 0, 0)
		}
		for _, op := range rec.Ops {
			m.tr.Instant(obs.KindOp, dec, m.trApp, op.String(), 0, 0)
		}
		st.lastDecision = dec
	}
}

// traceModelUpdate records one gauge report landing in the model: a
// model.update span parented on the report's bus span, remembered per model
// subject so the next violation on that subject can chain to it.
func (m *Manager) traceModelUpdate(msg bus.Message, subject string) {
	upd := m.tr.Instant(obs.KindModelUpdate, msg.Span, m.trApp, subject+"/"+msg.Prop, msg.V1, 0)
	m.trState.lastReport[subject] = reportRef{span: upd, at: m.K.Now()}
}

// traceCheck reconciles episode state against one check's violation set:
// opens episodes (violation span + detect-phase sample) for new subjects and
// closes episodes for subjects that stopped violating, resolving any pending
// recovery span. Close order is sorted for cross-run determinism.
func (m *Manager) traceCheck(vs []constraint.Violation, now float64) {
	st := m.trState
	for k := range st.scratch {
		delete(st.scratch, k)
	}
	for _, v := range vs {
		subj := subjectName(v)
		st.scratch[subj] = true
		if _, open := st.violSince[subj]; open {
			continue
		}
		st.violSince[subj] = now
		ref := st.lastReport[subj]
		inv := "?"
		if v.Invariant != nil {
			inv = v.Invariant.Name
		}
		st.violSpan[subj] = m.tr.Instant(obs.KindViolation, ref.span, m.trApp, subj+"/"+inv, 0, 0)
		if ref.span != 0 {
			// Detect latency runs from the observation's origin — the probe
			// sample when one exists (bandwidth updates are rooted at the
			// Remos reply) — to this first violating check.
			start := ref.at
			if anc, ok := m.tr.Ancestor(ref.span, obs.KindProbeSample); ok {
				start = anc.Start
			}
			m.tr.RecordPhase(m.trApp, obs.PhaseDetect, now-start)
		}
	}
	var closed []string
	for subj := range st.violSince {
		if !st.scratch[subj] {
			closed = append(closed, subj)
		}
	}
	sort.Strings(closed)
	for _, subj := range closed {
		delete(st.violSince, subj)
		delete(st.violSpan, subj)
		if pr, ok := st.pendingRecover[subj]; ok {
			delete(st.pendingRecover, subj)
			m.tr.EndSpan(pr.span)
			m.tr.RecordPhase(m.trApp, obs.PhaseRecover, now-pr.at)
		}
	}
}

// traceRepairBegin marks a committed repair: a decide-phase sample (episode
// open → commit) and an open repair span, parented on the engine observer's
// decision span, that traceRepairDone closes when gauge churn completes.
func (m *Manager) traceRepairBegin(rec *repair.Record, now float64) obs.SpanID {
	st := m.trState
	if since, ok := st.violSince[rec.Subject]; ok {
		m.tr.RecordPhase(m.trApp, obs.PhaseDecide, now-since)
	}
	return m.tr.Begin(obs.KindRepair, st.lastDecision, m.trApp, rec.Strategy+"/"+rec.Subject, 0, 0)
}

// traceRepairDone closes the repair span at churn completion, records the
// drain phase, and opens the recovery span that the first post-repair healthy
// check will close.
func (m *Manager) traceRepairDone(rec *repair.Record, span obs.SpanID, start float64) {
	now := m.K.Now()
	m.tr.EndSpan(span)
	m.tr.RecordPhase(m.trApp, obs.PhaseDrain, now-start)
	st := m.trState
	if old, ok := st.pendingRecover[rec.Subject]; ok {
		// A repeat repair superseded an unresolved recovery: close the stale
		// span at the new repair's completion.
		m.tr.EndSpan(old.span)
	}
	rc := m.tr.Begin(obs.KindRecover, span, m.trApp, "recover/"+rec.Subject, 0, 0)
	st.pendingRecover[rec.Subject] = recoverRef{span: rc, at: now}
}
