package core

import (
	"testing"

	"archadapt/internal/app"
	"archadapt/internal/netsim"
	"archadapt/internal/operators"
	"archadapt/internal/remos"
	"archadapt/internal/repair"
	"archadapt/internal/sim"
)

// rig builds a minimal two-group deployment with the manager on its own
// host.
type rig struct {
	k         *sim.Kernel
	net       *netsim.Network
	a         *app.System
	mgr       *Manager
	crushLink netsim.LinkID
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k)
	r1 := net.AddRouter("r1")
	r2 := net.AddRouter("r2")
	cHost := net.AddHost("cHost")
	aHost := net.AddHost("aHost")
	bHost := net.AddHost("bHost")
	spareHost := net.AddHost("spareHost")
	mHost := net.AddHost("mHost")
	qHost := net.AddHost("qHost")
	net.Connect(cHost, r1, 10e6, 1e-3)
	crush := net.Connect(r1, r2, 10e6, 1e-3)
	net.Connect(aHost, r2, 10e6, 1e-3)
	net.Connect(spareHost, r2, 10e6, 1e-3)
	r3 := net.AddRouter("r3")
	net.Connect(r1, r3, 10e6, 1e-3)
	net.Connect(bHost, r3, 10e6, 1e-3)
	net.Connect(mHost, r3, 10e6, 1e-3)
	net.Connect(qHost, r3, 10e6, 1e-3)

	a := app.New(k, net, qHost)
	_ = a.CreateQueue("GA")
	_ = a.CreateQueue("GB")
	a.AddServer("A1", aHost, "GA", 0.05, 2.4e-6)
	a.AddServer("A2", spareHost, "GA", 0.05, 2.4e-6) // spare
	a.AddServer("B1", bHost, "GB", 0.05, 2.4e-6)
	_ = a.Activate("A1")
	_ = a.Activate("B1")
	a.AddClient("C1", cHost, "GA", 1.0, sim.NewRand(3))

	mdl, err := operators.Build(operators.Spec{
		Name: "rig",
		Groups: []operators.GroupSpec{
			{Name: "GA", Servers: []string{"A1", "A2"}, ActiveCount: 1},
			{Name: "GB", Servers: []string{"B1"}, ActiveCount: 1},
		},
		Clients:       []operators.ClientSpec{{Name: "C1", Group: "GA"}},
		MaxLatency:    2.0,
		MaxServerLoad: 6,
		MinBandwidth:  10e3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rm := remos.New(k, net, mHost)
	mgr := New(cfg, k, net, a, mdl, mHost, rm)
	return &rig{k: k, net: net, a: a, mgr: mgr, crushLink: crush}
}

func TestDeployCreatesMonitoring(t *testing.T) {
	r := newRig(t, Config{})
	r.mgr.Deploy()
	r.a.Start()
	r.k.Run(120)
	// 1 client × (latency + bandwidth) + 2 groups × load = 4 gauges.
	if got := r.mgr.GaugeMgr.Deployed(); got != 4 {
		t.Fatalf("gauges=%d, want 4", got)
	}
	if r.mgr.Reports() == 0 {
		t.Fatal("no gauge reports consumed")
	}
	// The model learned measured properties.
	c1 := r.mgr.Model.Component("C1")
	if _, ok := c1.Props().Float(operators.PropAvgLatency); !ok {
		t.Fatal("averageLatency never reached the model")
	}
	_, _, role, err := operators.GroupOf(r.mgr.Model, c1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := role.Props().Float(operators.PropBandwidth); !ok {
		t.Fatal("bandwidth never reached the model")
	}
	if r.mgr.Checks() == 0 {
		t.Fatal("control loop never ran")
	}
	if len(r.mgr.Spans()) != 0 {
		t.Fatalf("healthy system repaired itself: %+v", r.mgr.Spans())
	}
}

func TestBandwidthViolationTriggersMove(t *testing.T) {
	r := newRig(t, Config{})
	r.mgr.Deploy()
	r.a.Start()
	r.k.At(150, func() { r.net.SetBackgroundBoth(r.crushLink, 10e6-5e3) })
	r.k.Run(400)
	if r.a.Client("C1").Group != "GB" {
		t.Fatalf("client not moved; group=%s spans=%+v alerts=%d",
			r.a.Client("C1").Group, r.mgr.Spans(), len(r.mgr.Alerts()))
	}
	// Model and runtime agree.
	grp, _, _, err := operators.GroupOf(r.mgr.Model, r.mgr.Model.Component("C1"))
	if err != nil || grp.Name() != "GB" {
		t.Fatalf("model group=%v err=%v", grp, err)
	}
	found := false
	for _, sp := range r.mgr.Spans() {
		for _, op := range sp.Ops {
			if op.Kind == repair.OpMoveClient && op.Group == "GB" {
				found = true
			}
		}
		if sp.End <= sp.Start {
			t.Fatal("span has no duration")
		}
	}
	if !found {
		t.Fatal("no move op recorded")
	}
}

func TestOverloadTriggersAddServer(t *testing.T) {
	r := newRig(t, Config{})
	r.mgr.Deploy()
	// Overwhelm GA's single active server: 4 req/s of 20KB (≈0.45 s each).
	cli := r.a.Client("C1")
	cli.Rate = 4
	cli.RespBits = func() float64 { return 20 * 8192 }
	r.a.Start()
	r.k.Run(400)
	if !r.a.Server("A2").Active() {
		t.Fatalf("spare never activated; spans=%+v", r.mgr.Spans())
	}
	grp := r.mgr.Model.Component("GA")
	if got := operators.ActiveServers(grp); len(got) != 2 {
		t.Fatalf("model servers=%v", got)
	}
}

func TestDisableRepairsObservesOnly(t *testing.T) {
	r := newRig(t, Config{DisableRepairs: true})
	r.mgr.Deploy()
	r.a.Start()
	r.k.At(150, func() { r.net.SetBackgroundBoth(r.crushLink, 10e6-5e3) })
	r.k.Run(500)
	if len(r.mgr.Spans()) != 0 {
		t.Fatal("observer mode repaired")
	}
	if r.mgr.ViolationsSeen() == 0 {
		t.Fatal("observer mode should still see violations")
	}
	if r.a.Client("C1").Group != "GA" {
		t.Fatal("client moved in observer mode")
	}
}

func TestRepairDurationIncludesGaugeChurn(t *testing.T) {
	r := newRig(t, Config{})
	r.mgr.Deploy()
	r.a.Start()
	r.k.At(150, func() { r.net.SetBackgroundBoth(r.crushLink, 10e6-5e3) })
	r.k.Run(600)
	spans := r.mgr.Spans()
	if len(spans) == 0 {
		t.Fatal("no repairs")
	}
	// Destroy/recreate churn for latency+bandwidth gauges: tens of seconds.
	if d := spans[0].Duration(); d < 10 || d > 200 {
		t.Fatalf("repair duration %v, want tens of seconds", d)
	}
	creates, deletes, _ := r.mgr.GaugeMgr.Counts()
	if deletes == 0 || creates <= 4 {
		t.Fatalf("no gauge churn recorded: creates=%d deletes=%d", creates, deletes)
	}
}

func TestGaugeCachingShortensSpans(t *testing.T) {
	run := func(caching bool) float64 {
		r := newRig(t, Config{GaugeCaching: caching})
		r.mgr.Deploy()
		r.a.Start()
		r.k.At(150, func() { r.net.SetBackgroundBoth(r.crushLink, 10e6-5e3) })
		r.k.Run(600)
		spans := r.mgr.Spans()
		if len(spans) == 0 {
			t.Fatal("no repairs")
		}
		return spans[0].Duration()
	}
	slow := run(false)
	fast := run(true)
	if fast >= slow/2 {
		t.Fatalf("caching churn %v not much faster than recreate %v", fast, slow)
	}
	_, _, retargets := func() (uint64, uint64, uint64) {
		r := newRig(t, Config{GaugeCaching: true})
		r.mgr.Deploy()
		r.a.Start()
		r.k.At(150, func() { r.net.SetBackgroundBoth(r.crushLink, 10e6-5e3) })
		r.k.Run(600)
		return r.mgr.GaugeMgr.Counts()
	}()
	if retargets == 0 {
		t.Fatal("caching mode never retargeted")
	}
}

func TestAlertsOnUnrepairable(t *testing.T) {
	// Crush the path but make GB unattractive too (no better group): the
	// engine should escalate rather than thrash.
	r := newRig(t, Config{})
	r.mgr.Deploy()
	r.a.Start()
	r.k.At(150, func() {
		r.net.SetBackgroundBoth(r.crushLink, 10e6-5e3)
		// Also crush the GB path.
		id, ok := r.net.LinkBetween(r.net.MustLookup("r1"), r.net.MustLookup("r3"))
		if !ok {
			t.Error("no r1-r3 link")
			return
		}
		r.net.SetBackgroundBoth(id, 10e6-5e3)
	})
	r.k.Run(500)
	if r.a.Client("C1").Group != "GA" {
		t.Fatal("client moved with nowhere to go")
	}
	if len(r.mgr.Alerts())+failedSpans(r.mgr) == 0 {
		t.Fatal("no escalation recorded")
	}
}

func failedSpans(m *Manager) int {
	n := 0
	for _, rec := range m.Engine.Records() {
		if rec.Err != nil {
			n++
		}
	}
	return n
}

func TestScaleDownConfig(t *testing.T) {
	r := newRig(t, Config{ScaleDown: true, SettleTime: 30, LoadSmoothing: 0.3})
	// Activate the spare manually, keep the client idle: the group is
	// underutilized and should shrink back.
	_ = r.a.Activate("A2")
	mdl := r.mgr.Model
	grp := mdl.Component("GA")
	txn := repair.NewTxn(mdl)
	if _, err := operators.AddServer(txn, grp); err != nil {
		t.Fatal(err)
	}
	r.a.Client("C1").Rate = 0.05 // nearly idle
	r.mgr.Deploy()
	r.a.Start()
	r.k.Run(600)
	if r.a.Server("A2").Active() {
		t.Fatalf("underutilized spare not deactivated; spans=%+v", r.mgr.Spans())
	}
}

func TestManagerString(t *testing.T) {
	r := newRig(t, Config{})
	if s := r.mgr.String(); s == "" {
		t.Fatal("empty string")
	}
}
