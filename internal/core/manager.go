package core

import (
	"fmt"
	"sort"

	"archadapt/internal/app"
	"archadapt/internal/bus"
	"archadapt/internal/constraint"
	"archadapt/internal/envmgr"
	"archadapt/internal/gauges"
	"archadapt/internal/model"
	"archadapt/internal/netsim"
	"archadapt/internal/obs"
	"archadapt/internal/operators"
	"archadapt/internal/probes"
	"archadapt/internal/remos"
	"archadapt/internal/repair"
	"archadapt/internal/sim"
	"archadapt/internal/translator"
)

// RepairSpan is one completed repair with its wall-clock extent, the
// intervals drawn atop Figures 11–13. Duration covers strategy execution,
// operator propagation and gauge churn.
type RepairSpan struct {
	Start, End float64
	Strategy   string
	Subject    string
	Tactics    []string
	Ops        []repair.Op
}

// Duration returns End-Start.
func (r RepairSpan) Duration() float64 { return r.End - r.Start }

// Alert is a human-escalation event (§7: "alert a human observer for manual
// intervention").
type Alert struct {
	Time    float64
	Subject string
	Reason  string
}

// Manager is the architecture manager: the model layer of the framework.
type Manager struct {
	Cfg  Config
	K    *sim.Kernel
	Net  *netsim.Network
	App  *app.System
	Env  *envmgr.Manager
	Rm   *remos.Service
	Host netsim.NodeID

	Model    *model.System
	Registry *constraint.Registry
	Engine   *repair.Engine
	Trans    *translator.Translator

	// ProbeBus and ReportBus are this application's routing domains on the
	// monitoring plane; GaugeMgr is its lease on the gauge manager. In the
	// fleet configuration all three are views onto fleet-shared
	// infrastructure; in the per-application reference configuration they
	// are backed by private, single-tenant instances.
	ProbeBus  *bus.Shard
	ReportBus *bus.Shard
	GaugeMgr  *gauges.Lease

	queueProbe  *probes.QueueProbe
	stopCheck   func()
	probeDetach []func()
	reportSub   *bus.Subscription

	// tr/trApp/trState attach the control loop to the observability plane;
	// all nil/zero (and every hook a single nil check) when tracing is off.
	tr      *obs.Tracer
	trApp   string
	trState *traceState

	busy        bool
	spans       []RepairSpan
	alerts      []Alert
	reports     uint64
	checks      uint64
	violationsN uint64
}

// Plane bundles the monitoring endpoints a Manager attaches to: the
// application's probe and report shards and its gauge lease. The fleet
// builds planes from its shared bus and gauge-manager infrastructure; a
// zero Plane makes the manager build private single-tenant infrastructure
// (the per-application reference configuration).
type Plane struct {
	Probe  *bus.Shard
	Report *bus.Shard
	Gauges *gauges.Lease
}

// New wires a manager over an already-built model and application, with
// private monitoring infrastructure. Hosts: the manager (and gauge manager)
// run on host — in the paper's testbed, the machine running Server 4.
func New(cfg Config, k *sim.Kernel, net *netsim.Network, a *app.System, mdl *model.System, host netsim.NodeID, rm *remos.Service) *Manager {
	return NewAttached(cfg, k, net, a, mdl, host, rm, Plane{})
}

// NewAttached wires a manager onto an existing monitoring plane — the fleet
// configuration, where one sharded bus and one gauge manager serve every
// application. A zero plane falls back to private per-application
// infrastructure configured from cfg (buses and gauge manager of its own),
// which is the reference oracle the fleet equivalence tests compare
// against.
func NewAttached(cfg Config, k *sim.Kernel, net *netsim.Network, a *app.System, mdl *model.System, host netsim.NodeID, rm *remos.Service, plane Plane) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		Cfg: cfg, K: k, Net: net, App: a, Model: mdl, Host: host, Rm: rm,
	}
	if plane.Probe == nil {
		probeBus := bus.New(k, net)
		probeBus.Priority = cfg.MonitoringPriority
		reportBus := bus.New(k, net)
		reportBus.Priority = cfg.MonitoringPriority
		gm := gauges.NewManager(k, net, host)
		gm.Caching = cfg.GaugeCaching
		gm.Priority = cfg.MonitoringPriority
		plane = Plane{Probe: probeBus.Default(), Report: reportBus.Default(), Gauges: gm.DefaultLease()}
	}
	m.ProbeBus = plane.Probe
	m.ReportBus = plane.Report
	m.GaugeMgr = plane.Gauges

	m.Env = envmgr.New(k, net, a, host, rm)
	m.Trans = translator.New(m.Env)

	m.Registry = constraint.NewRegistry()
	m.Registry.Add(constraint.MustInvariant(operators.InvLatency, operators.TClient,
		"averageLatency <= maxLatency"))
	m.Registry.Add(constraint.MustInvariant(operators.InvLoad, operators.TServerGroup,
		"load <= maxServerLoad"))
	m.Registry.Add(constraint.MustInvariant(operators.InvBandwidth, operators.TClientRole,
		"bandwidth >= minBandwidth"))

	m.Engine = repair.NewEngine(mdl, m.Trans)
	m.Engine.SettleTime = cfg.SettleTime
	m.Engine.OscillationWindow = cfg.OscillationWindow
	m.Engine.OscillationMoves = cfg.OscillationMoves
	m.Engine.DampFactor = cfg.DampFactor
	m.Engine.AlertFn = func(v constraint.Violation, reason string) {
		m.alerts = append(m.alerts, Alert{Time: k.Now(), Subject: subjectName(v), Reason: reason})
		if m.tr != nil {
			m.tr.Instant(obs.KindAlert, m.trState.violSpan[subjectName(v)], m.trApp,
				subjectName(v)+": "+reason, 0, 0)
		}
	}
	if cfg.ScriptedRepairs {
		strat, err := operators.CompileFixLatency(m.FindGoodSGrp)
		if err != nil {
			panic("core: compiling Figure 5 script: " + err.Error())
		}
		m.Engine.Bind(operators.InvLatency, strat)
	} else {
		m.Engine.Bind(operators.InvLatency, operators.FixLatency(m.FindGoodSGrp))
	}
	if cfg.ScaleDown {
		if !mdl.Props().Has(operators.PropMinServerLoad) {
			mdl.Props().Set(operators.PropMinServerLoad, 1.0)
		}
		if !mdl.Props().Has(operators.PropMinReplicas) {
			mdl.Props().Set(operators.PropMinReplicas, 1.0)
		}
		m.Registry.Add(constraint.MustInvariant(operators.InvUtilization, operators.TServerGroup,
			"load >= minServerLoad or replicationCount <= minReplicas"))
		m.Engine.Bind(operators.InvUtilization, operators.ShrinkStrategy())
	}
	if cfg.Tracer != nil {
		m.traceInit(m.GaugeMgr.App())
	}
	return m
}

func subjectName(v constraint.Violation) string {
	if v.Subject == nil {
		return "system"
	}
	return v.Subject.Name()
}

// Spans returns completed repair spans.
func (m *Manager) Spans() []RepairSpan { return m.spans }

// Alerts returns human-escalation events.
func (m *Manager) Alerts() []Alert { return m.alerts }

// Reports returns the number of gauge reports consumed.
func (m *Manager) Reports() uint64 { return m.reports }

// Checks returns the number of constraint evaluations performed.
func (m *Manager) Checks() uint64 { return m.checks }

// ViolationsSeen returns the cumulative violation count across checks.
func (m *Manager) ViolationsSeen() uint64 { return m.violationsN }

// groupServerHost returns the host of a group's first active server.
func (m *Manager) groupServerHost(group string) (netsim.NodeID, bool) {
	act := m.App.ActiveServersOf(group)
	if len(act) == 0 {
		return 0, false
	}
	return m.App.Server(act[0]).Host, true
}

// FindGoodSGrp is the runtime query of §3.3: the server group with the best
// predicted bandwidth to the client above minBW. Predictions come from the
// Remos substitute's warm cache; cold pairs are invisible (the paper's
// motivation for pre-querying).
func (m *Manager) FindGoodSGrp(sys *model.System, cli *model.Component, minBW float64) (*model.Component, float64) {
	c := m.App.Client(cli.Name())
	if c == nil {
		return nil, 0
	}
	var best *model.Component
	bestBW := minBW
	for _, grp := range sys.ComponentsByType(operators.TServerGroup) {
		host, ok := m.groupServerHost(grp.Name())
		if !ok {
			continue
		}
		bw, ok := m.Rm.Predict(host, c.Host)
		if !ok {
			continue
		}
		if bw >= bestBW {
			best, bestBW = grp, bw
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bestBW
}

// Deploy installs probes and gauges and starts the control loop. It mirrors
// the paper's run protocol: monitoring needs its quiescent warm-up before
// constraints begin to see fresh properties.
func (m *Manager) Deploy() {
	// Probes.
	for _, name := range m.App.Clients() {
		m.probeDetach = append(m.probeDetach, probes.AttachResponseProbe(m.ProbeBus, m.App.Client(name)))
	}
	m.queueProbe = probes.StartQueueProbe(m.K, m.ProbeBus, m.App, m.Cfg.GaugePeriod)

	// Remos pre-querying (paper §5.3 mitigation).
	if !m.Cfg.SkipRemosPrequery {
		var cliHosts, srvHosts []netsim.NodeID
		for _, name := range m.App.Clients() {
			cliHosts = append(cliHosts, m.App.Client(name).Host)
		}
		for _, name := range m.App.Servers() {
			srvHosts = append(srvHosts, m.App.Server(name).Host)
		}
		m.Rm.PrequeryAll(srvHosts, cliHosts)
	}

	// Gauges.
	for _, name := range m.App.Clients() {
		cli := m.App.Client(name)
		lg := gauges.NewLatencyGauge(m.K, m.ProbeBus, m.ReportBus, cli.Host, name,
			m.Cfg.LatencyWindow, m.Cfg.GaugePeriod)
		_ = m.GaugeMgr.Create(lg, nil)
		m.createBandwidthGauge(name)
	}
	for _, g := range m.App.Groups() {
		lg := gauges.NewLoadGauge(m.K, m.ProbeBus, m.ReportBus, m.App.QueueHost, g, m.Cfg.GaugePeriod)
		lg.Smooth = m.Cfg.LoadSmoothing
		_ = m.GaugeMgr.Create(lg, nil)
	}

	// Gauge consumer: reports update the model.
	m.reportSub = m.ReportBus.Subscribe(m.Host, bus.TopicIs(gauges.TopicReport), m.consumeReport)

	// Control loop.
	m.stopCheck = m.K.Ticker(m.K.Now()+m.Cfg.CheckPeriod, m.Cfg.CheckPeriod, func(now sim.Time) {
		m.check(now)
	})
}

// Stop halts the control loop and probes.
func (m *Manager) Stop() {
	if m.stopCheck != nil {
		m.stopCheck()
	}
	if m.queueProbe != nil {
		m.queueProbe.Stop()
	}
}

// Shutdown is Stop plus a full detach from the monitoring plane: response
// probes are silenced, the report subscription removed, and the gauge lease
// closed (every gauge stops measuring now; teardown handshakes drain in the
// background). The fleet calls this when retiring an application in the
// shared-plane configuration, so the application's shards can be released
// and reused with nothing left attached.
func (m *Manager) Shutdown() {
	m.Stop()
	for _, detach := range m.probeDetach {
		detach()
	}
	m.probeDetach = nil
	if m.reportSub != nil {
		m.ReportBus.Unsubscribe(m.reportSub)
		m.reportSub = nil
	}
	m.GaugeMgr.Close(nil)
}

// Reattach moves a shut-down manager to a new host and monitoring plane and
// redeploys its instrumentation — the re-place step of a fleet migration.
// The caller must have called Shutdown first (probes detached, report
// subscription removed, gauge lease closed) and re-pointed the application's
// processes at their new hosts; Reattach then re-anchors the environment
// manager's operator RPCs at the new host, installs fresh probes and gauges
// through the new plane, and restarts the control loop. Repair history,
// alerts and counters survive, so summaries aggregate across the move.
func (m *Manager) Reattach(host netsim.NodeID, plane Plane) {
	m.Host = host
	m.ProbeBus = plane.Probe
	m.ReportBus = plane.Report
	m.GaugeMgr = plane.Gauges
	m.Env.Host = host
	// A repair whose gauge churn straddled the move finds its gauges already
	// torn down; the manager must not stay wedged on it.
	m.busy = false
	m.Deploy()
}

func (m *Manager) createBandwidthGauge(client string) {
	cli := m.App.Client(client)
	bg := gauges.NewBandwidthGauge(m.K, m.ReportBus, m.Rm, cli.Host, client, cli.Host,
		func() (netsim.NodeID, bool) { return m.groupServerHost(cli.Group) },
		m.Cfg.GaugePeriod)
	_ = m.GaugeMgr.Create(bg, nil)
}

// consumeReport applies one gauge report to the model (Figure 4's
// "gauge consumers ... update an abstraction/model").
func (m *Manager) consumeReport(msg bus.Message) {
	m.reports++
	target := msg.Target
	prop := msg.Prop
	value := msg.V1
	switch msg.Kind {
	case "client":
		if c := m.Model.Component(target); c != nil {
			c.Props().Set(prop, value)
			if m.tr != nil {
				m.traceModelUpdate(msg, c.Name())
			}
		}
	case "group":
		if g := m.Model.Component(target); g != nil {
			g.Props().Set(prop, value)
			if m.tr != nil {
				m.traceModelUpdate(msg, g.Name())
			}
		}
	case "clientRole":
		cli := m.Model.Component(target)
		if cli == nil {
			return
		}
		_, _, role, err := operators.GroupOf(m.Model, cli)
		if err != nil {
			return
		}
		role.Props().Set(prop, value)
		if m.tr != nil {
			// Bandwidth violations subject the client's *role* element, so the
			// update is remembered under the role's name to match.
			m.traceModelUpdate(msg, role.Name())
		}
	}
}

// check is one control-loop tick: evaluate all invariants, pick violations,
// drive the engine, then run the repair's gauge churn.
func (m *Manager) check(now float64) {
	m.checks++
	if m.busy {
		return // a repair (including its gauge churn) is still in progress
	}
	vs := m.Registry.CheckAll(m.Model)
	m.violationsN += uint64(len(vs))
	if m.tr != nil {
		m.traceCheck(vs, now)
	}
	if len(vs) == 0 || m.Cfg.DisableRepairs {
		return
	}
	if m.Cfg.SmartSelection {
		sort.SliceStable(vs, func(i, j int) bool { return severity(vs[i]) > severity(vs[j]) })
	}
	recs := m.Engine.HandleAll(vs, now)
	for _, rec := range recs {
		if rec.Err != nil || len(rec.Ops) == 0 {
			continue
		}
		m.busy = true
		span := RepairSpan{
			Start:    now,
			Strategy: rec.Strategy,
			Subject:  rec.Subject,
			Tactics:  rec.Applied,
			Ops:      rec.Ops,
		}
		var repairSpan obs.SpanID
		if m.tr != nil {
			repairSpan = m.traceRepairBegin(rec, now)
		}
		rec := rec
		m.churnGauges(rec.Ops, func() {
			span.End = m.K.Now()
			rec.Duration = span.Duration()
			m.spans = append(m.spans, span)
			m.busy = false
			if m.tr != nil {
				m.traceRepairDone(rec, repairSpan, span.Start)
			}
		})
		break
	}
}

// severity orders violations for SmartSelection: worst latency overrun
// first, then worst load, then worst bandwidth deficit.
func severity(v constraint.Violation) float64 {
	if v.Subject == nil {
		return 0
	}
	switch v.Invariant.Name {
	case operators.InvLatency:
		return 1e6 + v.Subject.Props().FloatOr(operators.PropAvgLatency, 0)
	case operators.InvLoad:
		return 1e3 + v.Subject.Props().FloatOr(operators.PropLoad, 0)
	default:
		return -v.Subject.Props().FloatOr(operators.PropBandwidth, 0)
	}
}

// churnGauges performs the post-repair gauge maintenance: the gauges
// observing the elements a repair touched must be torn down and recreated
// (or re-targeted, with caching). This is the cost that made the paper's
// repairs average 30 seconds. done fires when all affected gauges are live
// again.
func (m *Manager) churnGauges(ops []repair.Op, done func()) {
	type churnItem struct {
		old string
		mk  func() gauges.Gauge
	}
	var items []churnItem
	seen := map[string]bool{}
	add := func(old string, mk func() gauges.Gauge) {
		if seen[old] {
			return
		}
		seen[old] = true
		items = append(items, churnItem{old: old, mk: mk})
	}
	for _, op := range ops {
		switch op.Kind {
		case repair.OpMoveClient:
			client := op.Client
			cli := m.App.Client(client)
			if cli == nil {
				continue
			}
			add("latency:"+client, func() gauges.Gauge {
				return gauges.NewLatencyGauge(m.K, m.ProbeBus, m.ReportBus, cli.Host, client,
					m.Cfg.LatencyWindow, m.Cfg.GaugePeriod)
			})
			add("bandwidth:"+client, func() gauges.Gauge {
				return gauges.NewBandwidthGauge(m.K, m.ReportBus, m.Rm, cli.Host, client, cli.Host,
					func() (netsim.NodeID, bool) { return m.groupServerHost(cli.Group) },
					m.Cfg.GaugePeriod)
			})
		case repair.OpAddServer, repair.OpRemoveServer:
			group := op.Group
			add("load:"+group, func() gauges.Gauge {
				lg := gauges.NewLoadGauge(m.K, m.ProbeBus, m.ReportBus, m.App.QueueHost, group, m.Cfg.GaugePeriod)
				lg.Smooth = m.Cfg.LoadSmoothing
				return lg
			})
		}
	}
	if len(items) == 0 {
		m.K.After(0, done)
		return
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(items) {
			done()
			return
		}
		it := items[i]
		if err := m.GaugeMgr.Recreate(it.old, it.mk(), func() { step(i + 1) }); err != nil {
			// Gauge missing (already churned): skip.
			step(i + 1)
		}
	}
	step(0)
}

// String summarizes manager state for logs.
func (m *Manager) String() string {
	return fmt.Sprintf("core.Manager{checks=%d reports=%d repairs=%d alerts=%d}",
		m.checks, m.reports, len(m.spans), len(m.alerts))
}
