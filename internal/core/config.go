// Package core implements the model layer of Figure 1: the architecture
// manager. It consumes gauge reports, maintains the architectural model's
// properties, checks the architectural constraints, and — on violation —
// drives the repair engine, whose committed operations the translator
// propagates to the environment manager. It also owns the repair-time gauge
// churn that dominated the paper's measured 30-second repairs.
package core

import (
	"archadapt/internal/netsim"
	"archadapt/internal/obs"
)

// Config tunes the architecture manager. Zero value fields fall back to the
// defaults in Defaults(), which mirror the paper's deployment.
type Config struct {
	// CheckPeriod is how often constraints are evaluated against the model.
	CheckPeriod float64
	// GaugePeriod is the reporting period of all gauges.
	GaugePeriod float64
	// LatencyWindow is the latency gauge's sliding window.
	LatencyWindow float64
	// LoadSmoothing is the load gauge's EWMA coefficient in (0,1]; 1 (the
	// default) reports raw queue samples as the paper did. Lower values add
	// hysteresis, damping scale-up/scale-down flapping.
	LoadSmoothing float64

	// GaugeCaching enables the §5.3 extension: re-target gauges in place
	// instead of destroy+create.
	GaugeCaching bool
	// MonitoringPriority lifts monitoring traffic into a QoS-protected
	// class (§5.3 mitigation). Default BestEffort, as deployed in the paper.
	MonitoringPriority netsim.Priority
	// SkipRemosPrequery leaves Remos cold at startup. The default (false)
	// warms all client↔server pairs at deploy time, as the paper did after
	// discovering multi-minute cold queries; skipping it is the ablation
	// that exposes that pathology.
	SkipRemosPrequery bool

	// SmartSelection repairs the worst-latency client first instead of the
	// first reporter (§7 future work).
	SmartSelection bool

	// DisableRepairs runs the manager as a pure observer (the control run):
	// monitoring and constraint checking proceed, repairs never execute.
	DisableRepairs bool

	// ScriptedRepairs drives adaptation through the Figure 5 repair script
	// compiled by internal/script, instead of the hand-coded Go tactics.
	// Both implementations make identical decisions (asserted by tests);
	// the scripted path demonstrates the "could be generated from the
	// repair strategies in Figure 5" form the paper describes.
	ScriptedRepairs bool

	// ScaleDown enables the paper's third (unshown) repair: deactivate
	// servers in underutilized groups to "keep the set of currently active
	// servers to a minimum" (§1). Registers the utilizationFloor invariant
	// and binds the shrink strategy.
	ScaleDown bool

	// Tracer, when non-nil, attaches the manager to the observability plane:
	// the control loop emits causally-linked spans (model update → violation
	// → repair decision → repair/drain → recovery) and phase-latency samples
	// onto it. Nil (the default) disables tracing with zero overhead and
	// byte-identical behavior — the tracer only observes, never steers.
	Tracer *obs.Tracer

	// SettleTime suppresses repeat repairs on one subject while the last
	// repair's effect lands (§5.3). Zero disables.
	SettleTime float64
	// OscillationWindow and OscillationMoves configure move-oscillation
	// detection; DampFactor scales the cooldown when damping kicks in.
	OscillationWindow float64
	OscillationMoves  int
	DampFactor        float64
}

// Defaults returns the paper-faithful configuration: best-effort monitoring,
// destroy/recreate gauge churn, no settling, no damping, first-reporter
// repair selection, pre-queried Remos (the paper pre-queried for its runs).
func Defaults() Config {
	return Config{
		CheckPeriod:   2,
		GaugePeriod:   5,
		LatencyWindow: 20,
	}
}

// withDefaults fills zero fields from Defaults().
func (c Config) withDefaults() Config {
	d := Defaults()
	if c.CheckPeriod <= 0 {
		c.CheckPeriod = d.CheckPeriod
	}
	if c.GaugePeriod <= 0 {
		c.GaugePeriod = d.GaugePeriod
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = d.LatencyWindow
	}
	if c.LoadSmoothing <= 0 || c.LoadSmoothing > 1 {
		c.LoadSmoothing = 1
	}
	return c
}
