package sim

import (
	"fmt"
	"strings"
	"testing"
)

// shardTrace runs a deterministic cross-shard ping-pong on a shard set and
// returns the per-shard execution logs. Each shard appends only to its own
// log (no shared state inside a window), so the combined trace must be
// byte-identical across pool sizes.
func shardTrace(pool *WorkerPool, nShards int, windows int, window float64) string {
	s := NewShards(pool, nShards)
	logs := make([]*strings.Builder, nShards)
	for i := range logs {
		logs[i] = &strings.Builder{}
	}
	// Every shard ticks locally each window and forwards a token to the next
	// shard with exactly one window of lookahead.
	var hop func(sk *ShardKernel, token int) func()
	hop = func(sk *ShardKernel, token int) func() {
		return func() {
			fmt.Fprintf(logs[sk.id], "t=%.2f shard=%d token=%d\n", sk.Now(), sk.id, token)
			if token < windows*nShards {
				sk.Send((sk.id+1)%nShards, sk.Now()+window, hop(s.Shard((sk.id+1)%nShards), token+1))
			}
		}
	}
	for i := 0; i < nShards; i++ {
		sk := s.Shard(i)
		sk.At(0, hop(sk, 0))
		i := i
		sk.Ticker(0.25, window, func(now Time) {
			fmt.Fprintf(logs[i], "t=%.2f shard=%d tick\n", now, i)
		})
	}
	for w := 0; w < windows; w++ {
		s.RunWindow(float64(w+1) * window)
	}
	var b strings.Builder
	for i, l := range logs {
		fmt.Fprintf(&b, "--- shard %d\n%s", i, l.String())
	}
	return b.String()
}

func TestShardsDeterministicAcrossPoolSizes(t *testing.T) {
	ref := shardTrace(nil, 4, 16, 1.0)
	if !strings.Contains(ref, "token=3") {
		t.Fatalf("trace never advanced the token:\n%s", ref)
	}
	for _, workers := range []int{2, 4, 8} {
		p := NewWorkerPool(workers)
		got := shardTrace(p, 4, 16, 1.0)
		p.Close()
		if got != ref {
			t.Fatalf("workers=%d trace diverges from the serial oracle:\n--- serial\n%s--- parallel\n%s",
				workers, ref, got)
		}
	}
}

func TestShardsExchangeOrderContract(t *testing.T) {
	// Three shards all send to shard 0 at the same delivery instant, in
	// scrambled call order within each shard. The contract: delivery order is
	// (time, source shard, source sequence), reproduced by the target
	// kernel's FIFO tie-break.
	s := NewShards(nil, 4)
	var got []string
	rec := func(tag string) func() { return func() { got = append(got, tag) } }
	// Sends issued from inside window events (shard 3 first, then 1, then 2,
	// interleaved at different times within the window).
	s.Shard(3).At(0.7, func() {
		s.Shard(3).Send(0, 2.0, rec("s3#0"))
		s.Shard(3).Send(0, 2.0, rec("s3#1"))
	})
	s.Shard(1).At(0.9, func() {
		s.Shard(1).Send(0, 2.0, rec("s1#0"))
	})
	s.Shard(2).At(0.1, func() {
		s.Shard(2).Send(0, 2.5, rec("s2-late"))
		s.Shard(2).Send(0, 2.0, rec("s2#1"))
	})
	s.RunWindow(1.0)
	s.RunWindow(3.0)
	want := []string{"s1#0", "s2#1", "s3#0", "s3#1", "s2-late"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("exchange delivered %v, want %v", got, want)
	}
}

func TestShardsMergedEventsTieBreakBeforeNextWindowEvents(t *testing.T) {
	// An exchanged event at time T is injected at the merge, so it carries an
	// earlier kernel sequence than anything the target schedules for T during
	// the next window — the exchanged event wins the FIFO tie.
	s := NewShards(nil, 2)
	var got []string
	s.Shard(1).At(0.5, func() {
		s.Shard(1).Send(0, 2.0, func() { got = append(got, "exchanged") })
	})
	s.Shard(0).At(1.5, func() {
		s.Shard(0).At(2.0, func() { got = append(got, "local") })
	})
	s.RunWindow(1.0)
	s.RunWindow(3.0)
	want := []string{"exchanged", "local"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tie-break order %v, want %v", got, want)
	}
}

func TestShardsHorizonViolationPanics(t *testing.T) {
	s := NewShards(nil, 2)
	s.Shard(0).At(0.5, func() {
		// Delivery before the end of the issuing window: conservative
		// contract violation.
		s.Shard(0).Send(1, 0.6, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exchange-horizon violation")
		}
	}()
	s.RunWindow(1.0)
}

func TestShardsRunWindows(t *testing.T) {
	s := NewShards(nil, 3)
	fired := 0
	for i := 0; i < 3; i++ {
		sk := s.Shard(i)
		sk.Ticker(0.5, 1.0, func(Time) { fired++ })
	}
	n := s.Run(10.0, 2.5)
	if n == 0 || fired != 30 {
		t.Fatalf("Run executed %d events, %d ticks (want 30 ticks)", n, fired)
	}
	if s.Horizon() != 10.0 {
		t.Fatalf("horizon %v, want 10", s.Horizon())
	}
	for i := 0; i < 3; i++ {
		if now := s.Shard(i).Now(); now != 10.0 {
			t.Fatalf("shard %d clock %v, want 10", i, now)
		}
	}
}

// stressCounts drives a shard set through heavy churn — every shard runs a
// high-rate local ticker and every event fans out random cross-shard sends
// with minimal lookahead (the very next window boundary), the admit/retire
// handoff pattern racing the exchange horizon — and returns the per-shard
// event counts. Each shard's RNG and counter are its own; the merge is the
// only cross-shard channel, so counts must be identical at any pool size.
func stressCounts(pool *WorkerPool, nShards int) []uint64 {
	const window = 0.25
	s := NewShards(pool, nShards)
	rngs := make([]*Rand, nShards)
	recv := make([]uint64, nShards)
	for i := range rngs {
		rngs[i] = NewRand(uint64(1000 + i))
	}
	// Each token hops a bounded number of times so the event population stays
	// linear; tickers continuously seed fresh tokens so churn never dies out.
	var churn func(sk *ShardKernel, hops int) func()
	churn = func(sk *ShardKernel, hops int) func() {
		return func() {
			recv[sk.id]++
			r := rngs[sk.id]
			next := (float64(int(sk.Now()/window)) + 1) * window
			if hops > 0 {
				to := r.Intn(nShards)
				sk.Send(to, next+r.Float64()*0.5, churn(s.Shard(to), hops-1))
			}
			// A local follow-up inside the same window, racing the barrier.
			if sk.Now()+0.01 < next {
				sk.AfterAnon(0.01, func() { recv[sk.id]++ })
			}
		}
	}
	for i := 0; i < nShards; i++ {
		sk := s.Shard(i)
		sk.At(0, churn(sk, 20))
		seed := sk
		sk.Ticker(0.05, 0.05, func(now Time) {
			recv[seed.id]++
			if int(now/0.2) != int((now-0.05)/0.2) {
				seed.At(now, churn(seed, 20))
			}
		})
	}
	s.Run(8.0, window)
	return recv
}

// TestShardsBarrierStress hammers the window barrier under the full worker
// pool and pins two properties at once: under -race, that shard state inside
// a window is only ever touched by one worker and outboxes are drained only
// at the serial merge; and that the resulting per-shard event counts are
// byte-identical to the nil-pool serial oracle.
func TestShardsBarrierStress(t *testing.T) {
	pool := NewWorkerPool(8)
	defer pool.Close()
	parallel := stressCounts(pool, 8)
	serial := stressCounts(nil, 8)
	var total uint64
	for i, c := range serial {
		if c == 0 {
			t.Fatalf("serial shard %d executed nothing", i)
		}
		total += c
	}
	if total < 1000 {
		t.Fatalf("stress run too small to mean anything: %d events", total)
	}
	if fmt.Sprint(parallel) != fmt.Sprint(serial) {
		t.Fatalf("parallel counts %v diverge from serial oracle %v", parallel, serial)
	}
}
