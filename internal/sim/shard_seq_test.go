package sim

import (
	"fmt"
	"strings"
	"testing"
)

// seqShardsTrace runs one deterministic branching workload and returns its
// full fire trace. nShards == 0 runs the single-kernel oracle; otherwise the
// same schedule calls are routed across a sequenced shard set (node i lives
// on shard i%nShards), with cross-shard follow-ups issued either directly
// (direct=true; legal in sequenced mode, the driver is serial) or through
// the conservative Send/exchange path with one window of lookahead.
func seqShardsTrace(nShards int, direct bool) string {
	const window = 0.5
	var b strings.Builder
	var kernels []*Kernel
	var set *Shards
	if nShards == 0 {
		kernels = []*Kernel{NewKernel()}
	} else {
		set = NewSeqShards(nShards)
		for i := 0; i < nShards; i++ {
			kernels = append(kernels, set.Shard(i).Kernel)
		}
	}
	kfor := func(node int) *Kernel { return kernels[node%len(kernels)] }
	r := NewRand(42)
	var spawn func(node, depth int) func()
	spawn = func(node, depth int) func() {
		return func() {
			k := kfor(node)
			fmt.Fprintf(&b, "t=%.9f node=%d depth=%d\n", k.Now(), node, depth)
			if depth == 0 {
				return
			}
			for j := 0; j < 2; j++ {
				next := r.Intn(16)
				// Strictly more than one window of delay, so the Send path's
				// conservative contract (delivery beyond the issuing window's
				// barrier) always holds.
				at := k.Now() + window + 0.01 + r.Float64()
				tgt := kfor(next)
				if set == nil || direct || tgt == k {
					tgt.AtAnon(at, spawn(next, depth-1))
				} else {
					src := set.Shard(node % nShards)
					src.Send(next%nShards, at, spawn(next, depth-1))
				}
			}
		}
	}
	for n := 0; n < 16; n++ {
		kfor(n).At(float64(n)*0.1, spawn(n, 6))
	}
	if set != nil {
		set.Run(30, window)
	} else {
		kernels[0].Run(30)
	}
	return b.String()
}

// TestSeqShardsMatchSingleKernelOracle is the sequenced-mode contract: the
// same schedule calls, routed across any number of sequenced shards, fire in
// exactly the order a single kernel would — whether cross-shard follow-ups
// are scheduled directly or through the Send/exchange protocol.
func TestSeqShardsMatchSingleKernelOracle(t *testing.T) {
	ref := seqShardsTrace(0, false)
	if !strings.Contains(ref, "depth=0") {
		t.Fatalf("oracle workload never reached full depth:\n%s", ref)
	}
	for _, n := range []int{1, 2, 4, 7} {
		for _, direct := range []bool{true, false} {
			if got := seqShardsTrace(n, direct); got != ref {
				t.Errorf("sequenced shards=%d direct=%v diverges from the single-kernel oracle\n--- oracle\n%.400s\n--- sharded\n%.400s",
					n, direct, ref, got)
			}
		}
	}
}

// TestSeqShardsCancelRescheduleReuse pins the merged driver against the
// oracle for the full event-lifecycle surface the netsim solver leans on:
// Cancel, Reschedule, and Reuse on handles that hop between kernels' heaps.
func seqChurnTrace(nShards int) string {
	trace := func(nShards int) string {
		var b strings.Builder
		var kernels []*Kernel
		var set *Shards
		if nShards == 0 {
			kernels = []*Kernel{NewKernel()}
		} else {
			set = NewSeqShards(nShards)
			for i := 0; i < nShards; i++ {
				kernels = append(kernels, set.Shard(i).Kernel)
			}
		}
		kfor := func(node int) *Kernel { return kernels[node%len(kernels)] }
		r := NewRand(7)
		events := make(map[int]*Event)
		var churn func(step int) func()
		churn = func(step int) func() {
			return func() {
				k := kfor(step)
				fmt.Fprintf(&b, "t=%.9f step=%d\n", k.Now(), step)
				if step >= 400 {
					return
				}
				node := r.Intn(8)
				tk := kfor(node)
				switch r.Intn(4) {
				case 0: // fresh completion-style event, handle retained
					events[node] = tk.At(tk.Now()+0.2+r.Float64(), churn(step+1))
				case 1: // reschedule the node's pending event, or start fresh
					if e := events[node]; !tk.Reschedule(e, tk.Now()+0.2+r.Float64()) {
						events[node] = tk.At(tk.Now()+0.2+r.Float64(), churn(step+1))
					}
				case 2: // cancel then re-arm via Reuse (the stalled-flow path)
					if e := events[node]; e != nil {
						e.Cancel()
						events[node] = tk.Reuse(e, tk.Now()+0.2+r.Float64(), churn(step+1))
					} else {
						events[node] = tk.At(tk.Now()+0.2+r.Float64(), churn(step+1))
					}
				case 3: // anonymous fan-out
					tk.AtAnon(tk.Now()+0.2+r.Float64(), churn(step+1))
				}
			}
		}
		for n := 0; n < 8; n++ {
			kfor(n).At(float64(n)*0.05, churn(n))
		}
		if set != nil {
			set.Run(600, 1.0)
		} else {
			kernels[0].Run(600)
		}
		return b.String()
	}
	return trace(nShards)
}

func TestSeqShardsCancelRescheduleReuse(t *testing.T) {
	ref := seqChurnTrace(0)
	if !strings.Contains(ref, "step=400") {
		t.Fatalf("churn never reached step 400:\n%s", ref)
	}
	for _, n := range []int{2, 5} {
		if got := seqChurnTrace(n); got != ref {
			t.Errorf("sequenced shards=%d lifecycle churn diverges from oracle\n--- oracle\n%.400s\n--- sharded\n%.400s",
				n, ref, got)
		}
	}
}

// TestShardsRunHorizonsExactMultiples is the regression for the window
// accumulation bug: Run used to step the horizon by repeated `horizon +
// window` addition, so a long run drifted off the exact float64 multiples
// and the final window's width depended on accumulated rounding error. Run
// now computes window i's horizon as start + i*window; this drives a million
// 0.1 s windows (0.1 is inexact in binary, the worst case for accumulation)
// and asserts mid-window that the completed horizon sits on the exact
// multiple every single time.
func TestShardsRunHorizonsExactMultiples(t *testing.T) {
	const window = 0.1
	const windows = 1_000_000
	until := float64(windows) * window
	s := NewShards(nil, 1)
	sk := s.Shard(0)
	bad := 0
	var step func(i int) func()
	step = func(i int) func() {
		return func() {
			// This event sits in the middle of window i, so the completed
			// horizon must be the end of window i-1: the exact multiple.
			if want := float64(i-1) * window; s.Horizon() != want {
				if bad < 5 {
					t.Errorf("window %d: horizon %.17g, want exact multiple %.17g", i, s.Horizon(), want)
				}
				bad++
			}
			if i < windows {
				sk.AtAnon(float64(i+1)*window-0.05, step(i+1))
			}
		}
	}
	sk.AtAnon(window-0.05, step(1))
	s.Run(until, window)
	if bad > 0 {
		t.Fatalf("%d of %d windows ended off the exact multiple", bad, windows)
	}
	if s.Horizon() != until {
		t.Fatalf("final horizon %.17g, want %.17g", s.Horizon(), until)
	}
}

// TestShardsZeroWidthWindowSemantics pins the documented flush semantics of
// a zero-width window (until == Horizon()), in both execution modes:
//
//	(a) with nothing pending it executes no events and leaves the horizon
//	    unchanged;
//	(b) events already queued at exactly the horizon fire (window execution
//	    is horizon-inclusive);
//	(c) outbox events the flush delivers are injected, never fired, by the
//	    flush itself — they fire in the following window or flush;
//	(d) inserting a flush between two windows does not change the overall
//	    fire order compared to stepping directly.
func TestShardsZeroWidthWindowSemantics(t *testing.T) {
	modes := []struct {
		name string
		mk   func() *Shards
	}{
		{"parallel", func() *Shards { return NewShards(nil, 2) }},
		{"sequenced", func() *Shards { return NewSeqShards(2) }},
	}
	for _, m := range modes {
		t.Run(m.name+"/empty-flush", func(t *testing.T) {
			s := m.mk()
			s.RunWindow(1.0)
			if n := s.RunWindow(1.0); n != 0 {
				t.Fatalf("empty flush executed %d events, want 0", n)
			}
			if s.Horizon() != 1.0 {
				t.Fatalf("flush moved the horizon to %v", s.Horizon())
			}
		})
		t.Run(m.name+"/at-horizon-delivery", func(t *testing.T) {
			s := m.mk()
			var got []string
			// A send delivered exactly at the barrier: the window that runs
			// the exchange injects it but must not fire it (c); the next
			// flush fires it (b).
			s.Shard(0).At(0.5, func() {
				s.Shard(0).Send(1, 1.0, func() { got = append(got, "delivered") })
			})
			if s.RunWindow(1.0); len(got) != 0 {
				t.Fatalf("delivering window fired the exchanged event: %v", got)
			}
			if s.RunWindow(1.0); fmt.Sprint(got) != "[delivered]" {
				t.Fatalf("flush did not fire the at-horizon event: %v", got)
			}
		})
		t.Run(m.name+"/outbox-flush-outside-window", func(t *testing.T) {
			s := m.mk()
			var got []string
			s.RunWindow(1.0)
			// A send issued outside any window (between runs) sits in the
			// outbox; a flush delivers it without running anything.
			s.Shard(0).Send(1, 2.0, func() { got = append(got, "late") })
			if n := s.RunWindow(1.0); n != 0 || len(got) != 0 {
				t.Fatalf("flush executed %d events, fired %v", n, got)
			}
			if s.RunWindow(3.0); fmt.Sprint(got) != "[late]" {
				t.Fatalf("delivered event never fired: %v", got)
			}
		})
		t.Run(m.name+"/flush-insertion-invariant", func(t *testing.T) {
			run := func(flush bool) string {
				s := m.mk()
				var got []string
				s.Shard(0).At(0.5, func() {
					s.Shard(0).Send(1, 1.0, func() { got = append(got, "exchanged@1") })
				})
				s.Shard(1).At(1.5, func() { got = append(got, "local@1.5") })
				s.RunWindow(1.0)
				if flush {
					s.RunWindow(1.0)
				}
				s.RunWindow(2.0)
				return fmt.Sprint(got)
			}
			plain, flushed := run(false), run(true)
			if plain != flushed {
				t.Fatalf("flush changed the fire order: %s vs %s", plain, flushed)
			}
			if want := "[exchanged@1 local@1.5]"; plain != want {
				t.Fatalf("fire order %s, want %s", plain, want)
			}
		})
	}
}
