package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []float64
	times := []float64{5, 1, 3, 2, 4, 2.5}
	for _, at := range times {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run(10)
	want := append([]float64(nil), times...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v (order %v)", i, got[i], want[i], got)
		}
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1.0, func() { got = append(got, i) })
	}
	k.Run(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestKernelHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, func() { fired++ })
	k.At(2, func() { fired++ })
	k.At(3, func() { fired++ })
	if n := k.Run(2); n != 2 {
		t.Fatalf("Run(2) executed %d events, want 2", n)
	}
	if k.Now() != 2 {
		t.Fatalf("clock at %v after Run(2), want 2", k.Now())
	}
	if n := k.Run(5); n != 1 {
		t.Fatalf("second Run executed %d, want 1", n)
	}
	if fired != 3 {
		t.Fatalf("fired=%d, want 3", fired)
	}
	if k.Now() != 5 {
		t.Fatalf("clock should advance to horizon, got %v", k.Now())
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(1, func() { fired = true })
	e.Cancel()
	k.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Executed() != 0 {
		t.Fatalf("executed=%d, want 0", k.Executed())
	}
}

func TestKernelEventsScheduleEvents(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			k.After(0.5, recur)
		}
	}
	k.At(0, recur)
	k.Run(49.5) // exactly the time of the 100th call
	if depth != 100 {
		t.Fatalf("depth=%d, want 100", depth)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed=%d, want 100", k.Executed())
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {})
	k.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(1, func() {})
}

func TestTicker(t *testing.T) {
	k := NewKernel()
	var ticks []float64
	stop := k.Ticker(1, 2, func(now float64) { ticks = append(ticks, now) })
	k.At(8, func() { stop() })
	k.Run(20)
	want := []float64{1, 3, 5, 7}
	if len(ticks) != len(want) {
		t.Fatalf("ticks=%v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks=%v, want %v", ticks, want)
		}
	}
}

func TestRunAllDrains(t *testing.T) {
	k := NewKernel()
	n := 0
	for i := 0; i < 50; i++ {
		k.At(float64(i), func() { n++ })
	}
	if got := k.RunAll(0); got != 50 {
		t.Fatalf("RunAll executed %d, want 50", got)
	}
	if n != 50 {
		t.Fatalf("n=%d", n)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(7)
	a := r.Fork("clients")
	b := r.Fork("servers")
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams start identically")
	}
	// Fork must be a pure function of (seed, label).
	r2 := NewRand(7)
	a2 := r2.Fork("clients")
	aa, aa2 := NewRand(7).Fork("clients").Uint64(), a2.Uint64()
	if aa != aa2 {
		t.Fatal("Fork not deterministic")
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(123)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("Exp mean=%v, want ~2.0", mean)
	}
}

func TestRandIntnBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 1; i < 50; i++ {
			v := r.Intn(i)
			if v < 0 || v >= i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: event execution order equals sorted (time, seq) order for random
// schedules.
func TestKernelOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		k := NewKernel()
		type stamp struct {
			at  float64
			seq int
		}
		var fired []stamp
		for i, v := range raw {
			at := float64(v%997) / 10
			i := i
			k.At(at, func() { fired = append(fired, stamp{at, i}) })
		}
		k.Run(1e9)
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	k := NewKernel()
	var order []string
	e := k.At(1, func() { order = append(order, "moved") })
	k.At(2, func() { order = append(order, "fixed") })
	if !k.Reschedule(e, 3) {
		t.Fatal("Reschedule refused a pending event")
	}
	k.RunAll(0)
	if len(order) != 2 || order[0] != "fixed" || order[1] != "moved" {
		t.Fatalf("order=%v, want [fixed moved]", order)
	}
}

func TestRescheduleTieBreaksLikeFreshSchedule(t *testing.T) {
	// A rescheduled event lands at the same time as a previously scheduled
	// one: it must fire after it, exactly as a Cancel+At pair would.
	k := NewKernel()
	var order []string
	e := k.At(1, func() { order = append(order, "rescheduled") })
	k.At(5, func() { order = append(order, "existing") })
	k.Reschedule(e, 5)
	k.RunAll(0)
	if len(order) != 2 || order[0] != "existing" || order[1] != "rescheduled" {
		t.Fatalf("order=%v, want [existing rescheduled]", order)
	}
}

func TestRescheduleRejectsDeadOrFired(t *testing.T) {
	k := NewKernel()
	if k.Reschedule(nil, 1) {
		t.Fatal("rescheduled nil event")
	}
	e := k.At(1, func() {})
	e.Cancel()
	if k.Reschedule(e, 2) {
		t.Fatal("rescheduled a cancelled event")
	}
	fired := k.At(0.5, func() {})
	k.RunAll(0)
	if k.Reschedule(fired, 1) {
		t.Fatal("rescheduled an event that already fired")
	}
}

func TestReschedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(1, func() {})
	e := k.At(2, func() {})
	k.Run(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic rescheduling into the past")
		}
	}()
	k.Reschedule(e, 0.5)
}

func TestAnonEventsFIFOWithNamed(t *testing.T) {
	// Anonymous (pooled) and named events at the same time fire in
	// scheduling order — pooling must not perturb the (time, seq) order.
	k := NewKernel()
	var order []int
	k.At(1, func() { order = append(order, 1) })
	k.AtAnon(1, func() { order = append(order, 2) })
	k.AtAnonArg(1, func(arg any) { order = append(order, arg.(int)) }, 3)
	k.At(1, func() { order = append(order, 4) })
	k.RunAll(0)
	if len(order) != 4 {
		t.Fatalf("fired %d events", len(order))
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order %v", order)
		}
	}
}

func TestAnonEventPoolRecycles(t *testing.T) {
	// A chain of sequential anonymous events — the control-message pattern —
	// reuses a handful of Event structs instead of allocating per event.
	k := NewKernel()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 1000 {
			k.AfterAnon(1, step)
		}
	}
	k.AfterAnon(1, step)
	k.RunAll(0)
	if n != 1000 {
		t.Fatalf("fired %d, want 1000", n)
	}
	if len(k.free) == 0 {
		t.Fatal("anonymous events were not recycled")
	}
	if len(k.free) > 4 {
		t.Fatalf("pool grew to %d; a sequential chain should reuse one struct", len(k.free))
	}
}

// TestPooledEventTieBreakTable pins the (time, seq) contract across every
// allocation path at once: however an event reaches the queue — fresh At, a
// pooled AtAnon/AtAnonArg (fresh or recycled struct), Reuse of a fired
// struct, or Reschedule of a pending one — same-time events fire in exactly
// the order their *latest* scheduling happened. This is the ordering the
// parallel plane's merged-injection step leans on (exchanged events are
// injected before next-window locals and must stay ahead of them), so it is
// pinned here as a table rather than left implicit in the pooling code.
func TestPooledEventTieBreakTable(t *testing.T) {
	cases := []struct {
		name string
		// build schedules events on a fresh kernel, logging each firing.
		build func(k *Kernel, log func(string))
		want  []string
	}{
		{
			// Warmed pool: recycled anonymous structs must re-enter FIFO at
			// their new scheduling position, not inherit stale sequence state.
			name: "recycled anon structs keep scheduling order",
			build: func(k *Kernel, log func(string)) {
				k.AtAnon(1, func() { log("warm1") })
				k.AtAnon(1, func() { log("warm2") })
				k.Run(1) // both fire; their structs land in the free pool
				k.At(10, func() { log("a") })
				k.AtAnon(10, func() { log("b") }) // recycled struct
				k.AtAnonArg(10, func(arg any) { log(arg.(string)) }, "c")
				k.AtAnon(10, func() { log("d") })
			},
			want: []string{"warm1", "warm2", "a", "b", "c", "d"},
		},
		{
			// A fired named event recycled via Reuse slots in by its Reuse
			// call order, between the At before it and the AtAnon after it.
			name: "reuse after fire re-enters FIFO at reuse time",
			build: func(k *Kernel, log func(string)) {
				e := k.At(1, func() { log("first-life") })
				k.Run(1)
				k.At(10, func() { log("x") })
				k.Reuse(e, 10, func() { log("y") })
				k.AtAnon(10, func() { log("z") })
			},
			want: []string{"first-life", "x", "y", "z"},
		},
		{
			// Reschedule re-sequences: a pending event moved onto a contested
			// time fires after everything already scheduled there, before
			// anything scheduled later — exactly like a Cancel+At pair.
			name: "reschedule re-sequences behind existing same-time events",
			build: func(k *Kernel, log func(string)) {
				e := k.At(2, func() { log("moved") })
				k.At(10, func() { log("a") })
				k.AtAnon(10, func() { log("b") })
				k.Reschedule(e, 10)
				k.AtAnon(10, func() { log("c") })
			},
			want: []string{"a", "b", "moved", "c"},
		},
		{
			// The full churn cycle: schedule, reschedule, fire, then Reuse the
			// same struct onto a contested time. The second life's position
			// comes from the Reuse call alone; the earlier Reschedule must
			// leave no trace in the tie-break.
			name: "reuse after reschedule carries no stale sequence",
			build: func(k *Kernel, log func(string)) {
				e := k.At(1, func() { log("second") })
				k.Reschedule(e, 2)
				k.Run(2) // fires at 2, struct now free
				late := k.At(12, func() { log("tail") })
				k.AtAnon(10, func() { log("head") })
				k.Reuse(e, 10, func() { log("mid") })
				k.Reschedule(late, 10)
			},
			want: []string{"second", "head", "mid", "tail"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := NewKernel()
			var got []string
			tc.build(k, func(s string) { got = append(got, s) })
			k.RunAll(0)
			if len(got) != len(tc.want) {
				t.Fatalf("fired %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("fired %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestReuseRecyclesFiredEvent(t *testing.T) {
	k := NewKernel()
	n := 0
	e := k.At(1, func() { n++ })
	k.Run(1)
	// e fired and was popped: Reuse must recycle the same struct.
	e2 := k.Reuse(e, 2, func() { n += 10 })
	if e2 != e {
		t.Fatal("Reuse did not recycle the fired event struct")
	}
	k.Run(2)
	if n != 11 {
		t.Fatalf("n=%d, want 11", n)
	}
	// A queued event cannot be recycled; Reuse must allocate.
	pending := k.At(5, func() {})
	if got := k.Reuse(pending, 6, func() {}); got == pending {
		t.Fatal("Reuse recycled a still-queued event")
	}
}
