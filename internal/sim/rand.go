package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core). Every
// stochastic element in the simulation draws from a seeded Rand so that runs
// are exactly reproducible; the control and adaptive experiment runs share
// seeds, mirroring the paper's "seeding the clients so that the size of
// requests and responses occurred in the same sequence in both experiments".
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent child stream; the child's sequence is a pure
// function of the parent seed and the label, so adding new consumers does not
// perturb existing streams.
func (r *Rand) Fork(label string) *Rand {
	h := r.state ^ 0x9e3779b97f4a7c15
	for _, c := range label {
		h ^= uint64(c)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 31
	}
	return NewRand(h)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// Exponential inter-arrival times give the Poisson arrivals assumed by the
// paper's queuing analysis ("average arrival rate ... approximately six per
// second").
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormalAround returns a positive value whose median is m, with mild
// spread; used for request/response size jitter around the paper's averages
// (0.5 KB requests, 20 KB replies).
func (r *Rand) LogNormalAround(m, sigma float64) float64 {
	return m * math.Exp(r.Normal(0, sigma))
}
