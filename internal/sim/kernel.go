// Package sim provides the discrete-event simulation kernel on which every
// other subsystem in this repository runs.
//
// The paper's evaluation is a pair of 30-minute wall-clock runs on a physical
// testbed. Here the testbed is simulated, so time is virtual: events are
// executed in (time, sequence) order by a single goroutine, which makes runs
// deterministic and lets a 1800-second experiment finish in milliseconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of a run.
type Time = float64

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break on a monotonic sequence number).
type Event struct {
	At   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int // heap index, -1 when not queued

	// Anonymous events (AtAnon/AfterAnon/AtAnonArg) never hand their handle
	// to the caller, so the kernel recycles the Event struct after it fires.
	// fnArg+arg is the closure-free form: a static function plus its
	// receiver, so high-rate schedulers (the monitoring plane's message
	// dispatch) allocate nothing per event.
	anon  bool
	fnArg func(any)
	arg   any
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.idx >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now Time
	seq uint64
	// clock and seqp point at this kernel's own now/seq fields — except for
	// kernels in a sequenced shard set (NewSeqShards), which all share shard
	// 0's clock and sequence counter so the merged driver fires events in
	// exactly the (time, seq) order a single kernel would.
	clock   *Time
	seqp    *uint64
	queue   eventHeap
	running bool
	stopped bool
	// sched, when non-nil, is called after any operation that may change the
	// head of this kernel's queue (push, reschedule) — the sequenced shard
	// driver's dirty notification. It must not schedule.
	sched func()
	// Executed counts events that have fired; useful for tests and for
	// detecting runaway scheduling loops.
	executed uint64
	// free is the recycle pool for anonymous events. Only events whose
	// handles never escaped the kernel land here, so reuse cannot alias a
	// handle someone might still Cancel or Reschedule.
	free []*Event

	// FireHook, when non-nil, observes every fired event at its virtual
	// time, before the callback runs — the observability plane's
	// event-rate counter. It must not schedule or mutate kernel state.
	FireHook func(at Time)
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	k.clock = &k.now
	k.seqp = &k.seq
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return *k.clock }

// nextSeq consumes one sequence number from the kernel's (possibly shared)
// counter.
func (k *Kernel) nextSeq() uint64 {
	s := *k.seqp
	*k.seqp++
	return s
}

// notify signals the sequenced shard driver that this kernel's queue head may
// have moved.
func (k *Kernel) notify() {
	if k.sched != nil {
		k.sched()
	}
}

// Executed returns the number of events that have fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn at absolute time t. Scheduling in the past (t < Now) is a
// programming error and panics: the kernel cannot rewind its clock.
func (k *Kernel) At(t Time, fn func()) *Event {
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN time")
	}
	if t < *k.clock {
		panic(fmt.Sprintf("sim: scheduling in the past: at=%.9f now=%.9f", t, *k.clock))
	}
	e := &Event{At: t, seq: k.nextSeq(), fn: fn, idx: -1}
	heap.Push(&k.queue, e)
	k.notify()
	return e
}

// After schedules fn d seconds from now. Negative delays are clamped to zero.
func (k *Kernel) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(*k.clock+d, fn)
}

// checkTime validates a scheduling time against the clock.
func (k *Kernel) checkTime(t Time) {
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN time")
	}
	if t < *k.clock {
		panic(fmt.Sprintf("sim: scheduling in the past: at=%.9f now=%.9f", t, *k.clock))
	}
}

// getFree returns a recycled anonymous event, or a fresh one.
func (k *Kernel) getFree() *Event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &Event{}
}

// AtAnon schedules fn at absolute time t on a pooled event. No handle is
// returned: anonymous events cannot be cancelled or rescheduled, and their
// Event structs are recycled after they fire. This is the allocation-free
// path for fire-and-forget scheduling (message deliveries, ticker steps).
func (k *Kernel) AtAnon(t Time, fn func()) {
	k.checkTime(t)
	e := k.getFree()
	e.At, e.seq, e.fn, e.anon, e.dead, e.idx = t, k.nextSeq(), fn, true, false, -1
	heap.Push(&k.queue, e)
	k.notify()
}

// AfterAnon is AtAnon relative to now. Negative delays are clamped to zero.
func (k *Kernel) AfterAnon(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.AtAnon(*k.clock+d, fn)
}

// AtAnonArg schedules fn(arg) at absolute time t on a pooled event. Passing a
// static function plus its receiver instead of a closure makes the whole
// schedule-fire cycle allocation-free when arg is a pointer — the fast path
// for the event bus's batched dispatch.
func (k *Kernel) AtAnonArg(t Time, fn func(any), arg any) {
	k.checkTime(t)
	e := k.getFree()
	e.At, e.seq, e.fnArg, e.arg, e.anon, e.dead, e.idx = t, k.nextSeq(), fn, arg, true, false, -1
	heap.Push(&k.queue, e)
	k.notify()
}

// AfterAnonArg is AtAnonArg relative to now. Negative delays are clamped to
// zero.
func (k *Kernel) AfterAnonArg(d float64, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	k.AtAnonArg(*k.clock+d, fn, arg)
}

// injectAnon pushes a pooled event carrying a pre-assigned sequence number:
// the sequenced shard exchange's seq-preserving injection. The sequence was
// consumed from the shared counter when the Send was issued, so the merged
// (time, seq) fire order matches the single-kernel oracle exactly.
func (k *Kernel) injectAnon(at Time, seq uint64, fn func(), fnArg func(any), arg any) {
	e := k.getFree()
	e.At, e.seq, e.fn, e.fnArg, e.arg, e.anon, e.dead, e.idx = at, seq, fn, fnArg, arg, true, false, -1
	heap.Push(&k.queue, e)
	k.notify()
}

// fire runs one popped event's callback, recycling anonymous events first so
// nested scheduling from inside the callback can reuse the struct.
func (k *Kernel) fire(e *Event) {
	if k.FireHook != nil {
		k.FireHook(e.At)
	}
	fn, fnArg, arg := e.fn, e.fnArg, e.arg
	if e.anon {
		e.fn, e.fnArg, e.arg, e.anon = nil, nil, nil, false
		k.free = append(k.free, e)
	}
	if fnArg != nil {
		fnArg(arg)
	} else {
		fn()
	}
	k.executed++
}

// Reschedule moves a pending event to absolute time t, reusing its queue slot
// and callback — the fast path for completion-event churn in the fluid-flow
// solver, which previously cancelled and reallocated an event on every rate
// change. The event is re-sequenced as if newly scheduled, so FIFO
// tie-breaking at equal times matches a Cancel+At pair. It returns false when
// the event is nil, cancelled, or no longer queued (it already fired); the
// caller must then schedule a fresh event.
func (k *Kernel) Reschedule(e *Event, t Time) bool {
	if e == nil || e.dead || e.idx < 0 {
		return false
	}
	if math.IsNaN(t) {
		panic("sim: rescheduling at NaN time")
	}
	if t < *k.clock {
		panic(fmt.Sprintf("sim: rescheduling in the past: at=%.9f now=%.9f", t, *k.clock))
	}
	e.At = t
	e.seq = k.nextSeq()
	heap.Fix(&k.queue, e.idx)
	k.notify()
	return true
}

// Reuse schedules fn at absolute time t, recycling e's struct when e is no
// longer queued (it fired, or was cancelled and already popped). The caller
// must be the event's sole owner — the netsim flow-completion pattern, where
// a stalled flow's cancelled event is re-armed when its rate returns. When e
// cannot be recycled (still queued, or nil) a fresh event is allocated.
func (k *Kernel) Reuse(e *Event, t Time, fn func()) *Event {
	if e == nil || e.idx >= 0 {
		return k.At(t, fn)
	}
	k.checkTime(t)
	e.At, e.seq, e.fn, e.dead, e.anon = t, k.nextSeq(), fn, false, false
	heap.Push(&k.queue, e)
	k.notify()
	return e
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in order until the queue is empty or the clock would
// pass `until`. Events scheduled exactly at `until` are executed. It returns
// the number of events executed by this call.
func (k *Kernel) Run(until Time) uint64 {
	if k.running {
		panic("sim: Run re-entered")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	var n uint64
	for len(k.queue) > 0 && !k.stopped {
		e := k.queue[0]
		if e.At > until {
			break
		}
		heap.Pop(&k.queue)
		if e.dead {
			continue
		}
		*k.clock = e.At
		k.fire(e)
		n++
	}
	// Advance the clock to the horizon so that successive Run calls with
	// increasing horizons behave like one continuous run.
	if !k.stopped && *k.clock < until {
		*k.clock = until
	}
	k.notify()
	return n
}

// RunAll executes every queued event (including events scheduled by events)
// until the queue drains. It panics after maxEvents to catch runaway loops;
// pass 0 for the default of 100 million.
func (k *Kernel) RunAll(maxEvents uint64) uint64 {
	if maxEvents == 0 {
		maxEvents = 100_000_000
	}
	var n uint64
	for len(k.queue) > 0 {
		if n >= maxEvents {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events at t=%.3f", maxEvents, *k.clock))
		}
		e := heap.Pop(&k.queue).(*Event)
		if e.dead {
			continue
		}
		*k.clock = e.At
		k.fire(e)
		n++
	}
	k.notify()
	return n
}

// Ticker invokes fn every period seconds, starting at start, until the
// returned stop function is called. fn receives the tick time.
func (k *Kernel) Ticker(start Time, period float64, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	stopped := false
	var tick func()
	at := start
	tick = func() {
		if stopped {
			return
		}
		fn(*k.clock)
		at += period
		k.AtAnon(at, tick)
	}
	k.AtAnon(start, tick)
	return func() { stopped = true }
}
