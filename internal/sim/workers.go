package sim

import (
	"sync"
	"sync/atomic"
)

// WorkerPool is a fixed set of long-lived worker goroutines for deterministic
// fork-join parallelism inside the simulation plane.
//
// The kernel's (time, seq) event order is the source of truth for every run;
// parallelism is only admitted for work that is provably independent of
// execution interleaving — per-component solver fills, per-application
// sampling — so the observable result of a run never depends on how many
// workers execute it. A nil *WorkerPool is valid everywhere and means
// "serial": Do runs inline on the caller's goroutine, which is the retained
// single-threaded oracle path.
type WorkerPool struct {
	size int
	jobs chan poolJob
	wg   sync.WaitGroup
}

// poolJob is one fan-out: tasks [0, n) pulled off a shared cursor.
type poolJob struct {
	n    int
	next *atomic.Int64
	fn   func(i int)
	done *sync.WaitGroup
}

// NewWorkerPool starts a pool of n workers. n <= 1 returns nil — the serial
// pool — so callers can unconditionally thread the pool through without
// branching on worker count. n is taken literally, even beyond GOMAXPROCS:
// results never depend on worker count, and pools wider than the machine
// still interleave goroutines, which is exactly what the determinism and
// race tests need on small runners. Callers chasing throughput should size
// the pool near GOMAXPROCS themselves.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 1 {
		return nil
	}
	p := &WorkerPool{size: n, jobs: make(chan poolJob)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *WorkerPool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		for {
			i := int(job.next.Add(1)) - 1
			if i >= job.n {
				break
			}
			job.fn(i)
		}
		job.done.Done()
	}
}

// Size returns the number of workers (1 for the nil/serial pool).
func (p *WorkerPool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Do runs fn(0) … fn(n-1) and returns when every call has finished — a
// barrier. Tasks are pulled dynamically, so callers must only submit tasks
// whose mutable state is pairwise disjoint: under that contract the result is
// byte-identical to running the loop serially, whatever the interleaving. On
// the nil pool the loop simply runs inline, in index order.
func (p *WorkerPool) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var done sync.WaitGroup
	workers := p.size
	if workers > n {
		workers = n
	}
	done.Add(workers)
	job := poolJob{n: n, next: &next, fn: fn, done: &done}
	for i := 0; i < workers; i++ {
		p.jobs <- job
	}
	done.Wait()
}

// Close stops the workers. Do must not be in flight or called afterwards.
// Closing the nil pool is a no-op.
func (p *WorkerPool) Close() {
	if p == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}
