package sim

import (
	"fmt"
	"slices"
)

// Sharded execution: per-region worker kernels advancing in lockstep
// time windows, with deterministic cross-shard event exchange at the
// window boundaries.
//
// This is the conservative parallel-DES substrate for region-sharded fleet
// execution. Each shard owns one Kernel and everything scheduled on it; a
// window advances every shard to a common horizon in parallel (no shard can
// observe another mid-window), and events aimed across the boundary are
// buffered in per-shard outboxes and merged at the barrier. The merge is the
// whole determinism story, so its ordering contract is stated once, here:
//
//	cross-shard events are delivered in (time, source shard, source send
//	sequence) order, and are injected into the target kernel in exactly
//	that order, so the target's own FIFO tie-break (kernel seq) reproduces
//	it for events at equal times.
//
// The protocol is conservative, not speculative: a send's delivery time must
// be at or after the horizon of the window that issued it (the sender's
// lookahead — e.g. a network propagation delay — is the slack that makes
// windows non-trivial). Sends violating the horizon panic at the merge.
//
// Worker count never changes results: within a window shards share no
// mutable state, and the merge is serial and totally ordered. Running the
// same shard set on the nil (serial) pool executes the same windows in shard
// order — the oracle the parallel path is tested against, byte for byte.

// Shards is a set of worker kernels advancing in lockstep windows.
type Shards struct {
	pool   *WorkerPool
	shards []*ShardKernel
	// horizon is the end of the last completed window: the earliest time a
	// cross-shard send issued in the next window may be delivered.
	horizon Time
}

// ShardKernel is one shard: a Kernel plus the shard's exchange outbox. Only
// the shard's own events may touch it (one worker drives a shard per window).
type ShardKernel struct {
	*Kernel
	set *Shards
	id  int
	seq uint64
	out []xevent
}

// xevent is one cross-shard event in flight through the exchange.
type xevent struct {
	at  Time
	src int
	seq uint64
	to  int
	fn  func()
}

// NewShards creates n shard kernels sharing one worker pool. A nil pool runs
// every window serially, in shard order — the reference execution.
func NewShards(pool *WorkerPool, n int) *Shards {
	if n < 1 {
		panic("sim: NewShards needs at least one shard")
	}
	s := &Shards{pool: pool}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, &ShardKernel{Kernel: NewKernel(), set: s, id: i})
	}
	return s
}

// Len returns the shard count.
func (s *Shards) Len() int { return len(s.shards) }

// Shard returns shard i's kernel handle.
func (s *Shards) Shard(i int) *ShardKernel { return s.shards[i] }

// Horizon returns the end of the last completed window.
func (s *Shards) Horizon() Time { return s.horizon }

// ID returns the shard's index in its set.
func (sk *ShardKernel) ID() int { return sk.id }

// Send schedules fn at absolute time `at` on shard `to`. It may be called
// from inside one of this shard's events during a window; delivery happens at
// the next exchange. The conservative contract: `at` must be at or after the
// end of the current window (the caller's lookahead across the boundary);
// violations are detected at the merge and panic.
func (sk *ShardKernel) Send(to int, at Time, fn func()) {
	if to < 0 || to >= len(sk.set.shards) {
		panic(fmt.Sprintf("sim: Send to unknown shard %d of %d", to, len(sk.set.shards)))
	}
	sk.out = append(sk.out, xevent{at: at, src: sk.id, seq: sk.seq, to: to, fn: fn})
	sk.seq++
}

// RunWindow advances every shard to the horizon `until` in parallel, then
// exchanges the cross-shard events issued during the window. It returns the
// number of events executed across all shards.
func (s *Shards) RunWindow(until Time) uint64 {
	if until < s.horizon {
		panic(fmt.Sprintf("sim: window horizon %.9f before previous horizon %.9f", until, s.horizon))
	}
	counts := make([]uint64, len(s.shards))
	s.pool.Do(len(s.shards), func(i int) {
		counts[i] = s.shards[i].Run(until)
	})
	s.horizon = until
	s.exchange()
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// exchange merges every shard's outbox into the target kernels in the
// protocol order: (time, source shard, source sequence). Injection happens in
// that order, so the target kernel's FIFO tie-break preserves it at equal
// times — including against events the target schedules itself in the next
// window, which by construction carry later kernel sequence numbers.
func (s *Shards) exchange() {
	var pending []xevent
	for _, sk := range s.shards {
		pending = append(pending, sk.out...)
		sk.out = sk.out[:0]
	}
	if len(pending) == 0 {
		return
	}
	slices.SortFunc(pending, func(a, b xevent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.src != b.src {
			return a.src - b.src
		}
		if a.seq != b.seq {
			if a.seq < b.seq {
				return -1
			}
			return 1
		}
		return 0
	})
	for _, x := range pending {
		if x.at < s.horizon {
			panic(fmt.Sprintf("sim: cross-shard send from %d violates the exchange horizon: at=%.9f horizon=%.9f",
				x.src, x.at, s.horizon))
		}
		s.shards[x.to].At(x.at, x.fn)
	}
}

// Run advances the whole set to `until` in fixed-size windows (the exchange
// horizon step), then runs one final window ending exactly at `until`. It
// returns the total number of events executed.
func (s *Shards) Run(until Time, window float64) uint64 {
	if window <= 0 {
		panic("sim: Run window must be positive")
	}
	var n uint64
	for s.horizon+window < until {
		n += s.RunWindow(s.horizon + window)
	}
	n += s.RunWindow(until)
	return n
}

// Executed sums the executed-event counters across shards.
func (s *Shards) Executed() uint64 {
	var n uint64
	for _, sk := range s.shards {
		n += sk.Kernel.Executed()
	}
	return n
}

// Pending sums the queued events across shards (outbox events in transit to
// the next exchange included).
func (s *Shards) Pending() int {
	n := 0
	for _, sk := range s.shards {
		n += sk.Kernel.Pending() + len(sk.out)
	}
	return n
}
