package sim

import (
	"container/heap"
	"fmt"
	"slices"
)

// Sharded execution: per-region worker kernels advancing in lockstep
// time windows, with deterministic cross-shard event exchange at the
// window boundaries.
//
// This is the conservative parallel-DES substrate for region-sharded fleet
// execution. Each shard owns one Kernel and everything scheduled on it; a
// window advances every shard to a common horizon in parallel (no shard can
// observe another mid-window), and events aimed across the boundary are
// buffered in per-shard outboxes and merged at the barrier. The merge is the
// whole determinism story, so its ordering contract is stated once, here:
//
//	cross-shard events are delivered in (time, source shard, source send
//	sequence) order, and are injected into the target kernel in exactly
//	that order, so the target's own FIFO tie-break (kernel seq) reproduces
//	it for events at equal times.
//
// The protocol is conservative, not speculative: a send's delivery time must
// be at or after the horizon of the window that issued it (the sender's
// lookahead — e.g. a network propagation delay — is the slack that makes
// windows non-trivial). Sends violating the horizon panic at the merge.
//
// Worker count never changes results: within a window shards share no
// mutable state, and the merge is serial and totally ordered. Running the
// same shard set on the nil (serial) pool executes the same windows in shard
// order — the oracle the parallel path is tested against, byte for byte.

// Shards is a set of worker kernels advancing in lockstep windows.
type Shards struct {
	pool   *WorkerPool
	shards []*ShardKernel
	// horizon is the end of the last completed window: the earliest time a
	// cross-shard send issued in the next window may be delivered.
	horizon Time

	// Sequenced mode (NewSeqShards): every shard kernel shares shard 0's
	// clock and sequence counter, and RunWindow fires the globally minimal
	// (time, seq) event across all shards instead of running shards
	// back-to-back. heads is a binary heap of shard ids keyed by each shard's
	// queue head; pos[i] is shard i's position in heads. Every kernel
	// operation that can move a queue head repairs the heap immediately via
	// the sched notification — one single-element fix at a time, which is the
	// only regime in which heap.Fix-style repair is sound (batching several
	// changed heads and fixing them one by one is not).
	seq   bool
	heads []int32
	pos   []int32
}

// ShardKernel is one shard: a Kernel plus the shard's exchange outbox. Only
// the shard's own events may touch it (one worker drives a shard per window).
type ShardKernel struct {
	*Kernel
	set *Shards
	id  int
	seq uint64
	out []xevent
}

// xevent is one cross-shard event in flight through the exchange.
type xevent struct {
	at    Time
	src   int
	seq   uint64
	to    int
	fn    func()
	fnArg func(any)
	arg   any
}

// NewShards creates n shard kernels sharing one worker pool. A nil pool runs
// every window serially, in shard order — the reference execution.
func NewShards(pool *WorkerPool, n int) *Shards {
	if n < 1 {
		panic("sim: NewShards needs at least one shard")
	}
	s := &Shards{pool: pool}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, &ShardKernel{Kernel: NewKernel(), set: s, id: i})
	}
	return s
}

// NewSeqShards creates n shard kernels in sequenced mode: all kernels share
// shard 0's clock and sequence counter, and RunWindow executes each window by
// repeatedly firing the globally minimal (time, seq) event across every
// shard's queue. Because sequence numbers are drawn from one shared counter
// in schedule-call order, the fire order — and therefore every observable
// result — is byte-identical to scheduling the same calls on one Kernel,
// regardless of how events are routed to shards. The windows still enforce
// the full conservative contract (Send outboxes, barrier exchange, horizon
// panics), so the region routing and lookahead are continuously validated;
// what sequenced mode gives up is intra-window parallelism, which shared
// fleet state rules out anyway under the byte-identical-oracle contract.
func NewSeqShards(n int) *Shards {
	if n < 1 {
		panic("sim: NewSeqShards needs at least one shard")
	}
	s := &Shards{seq: true}
	for i := 0; i < n; i++ {
		sk := &ShardKernel{Kernel: NewKernel(), set: s, id: i}
		if i > 0 {
			k0 := s.shards[0].Kernel
			sk.Kernel.clock = k0.clock
			sk.Kernel.seqp = k0.seqp
		}
		id := int32(i)
		sk.Kernel.sched = func() { s.fixHead(s.pos[id]) }
		s.shards = append(s.shards, sk)
	}
	s.heads = make([]int32, n)
	s.pos = make([]int32, n)
	for i := range s.heads {
		s.heads[i] = int32(i)
		s.pos[i] = int32(i)
	}
	return s
}

// Sequenced reports whether the set runs in sequenced (oracle-identical)
// mode.
func (s *Shards) Sequenced() bool { return s.seq }

// Len returns the shard count.
func (s *Shards) Len() int { return len(s.shards) }

// Shard returns shard i's kernel handle.
func (s *Shards) Shard(i int) *ShardKernel { return s.shards[i] }

// Horizon returns the end of the last completed window.
func (s *Shards) Horizon() Time { return s.horizon }

// ID returns the shard's index in its set.
func (sk *ShardKernel) ID() int { return sk.id }

// Send schedules fn at absolute time `at` on shard `to`. It may be called
// from inside one of this shard's events during a window; delivery happens at
// the next exchange. The conservative contract: `at` must be at or after the
// end of the current window (the caller's lookahead across the boundary);
// violations are detected at the merge and panic.
func (sk *ShardKernel) Send(to int, at Time, fn func()) {
	sk.send(to, at, fn, nil, nil)
}

// SendArg is Send in the closure-free form (a static function plus its
// receiver), mirroring Kernel.AtAnonArg for cross-shard deliveries.
func (sk *ShardKernel) SendArg(to int, at Time, fn func(any), arg any) {
	sk.send(to, at, nil, fn, arg)
}

func (sk *ShardKernel) send(to int, at Time, fn func(), fnArg func(any), arg any) {
	if to < 0 || to >= len(sk.set.shards) {
		panic(fmt.Sprintf("sim: Send to unknown shard %d of %d", to, len(sk.set.shards)))
	}
	seq := sk.seq
	if sk.set.seq {
		// Sequenced mode: consume the shared kernel sequence at call time, so
		// the exchange can inject the event carrying exactly the sequence a
		// single kernel would have assigned here.
		seq = sk.Kernel.nextSeq()
	} else {
		sk.seq++
	}
	sk.out = append(sk.out, xevent{at: at, src: sk.id, seq: seq, to: to, fn: fn, fnArg: fnArg, arg: arg})
}

// RunWindow advances every shard to the horizon `until` in parallel, then
// exchanges the cross-shard events issued during the window. It returns the
// number of events executed across all shards.
//
// Zero-width windows (until == Horizon()) are permitted and have pinned
// "flush" semantics: events already queued at exactly the horizon fire
// (window execution is horizon-inclusive, same as Kernel.Run), then the
// exchange runs. Outbox events the exchange delivers — including ones timed
// exactly at the horizon — are only injected, never fired, by the call that
// delivered them; they fire at the start of the next window or flush. This
// is identical to where a non-degenerate step would fire them, so a flush
// can be inserted anywhere (e.g. to drain outboxes between Run calls)
// without changing results.
func (s *Shards) RunWindow(until Time) uint64 {
	if until < s.horizon {
		panic(fmt.Sprintf("sim: window horizon %.9f before previous horizon %.9f", until, s.horizon))
	}
	if s.seq {
		return s.runSeqWindow(until)
	}
	counts := make([]uint64, len(s.shards))
	s.pool.Do(len(s.shards), func(i int) {
		counts[i] = s.shards[i].Run(until)
	})
	s.horizon = until
	s.exchange()
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// headLess orders shards by their queue-head event in (time, seq) order;
// empty queues sort last. Sequence numbers are globally unique (shared
// counter), so two non-empty heads never tie.
func (s *Shards) headLess(a, b int32) bool {
	qa, qb := s.shards[a].Kernel.queue, s.shards[b].Kernel.queue
	if len(qa) == 0 {
		return false
	}
	if len(qb) == 0 {
		return true
	}
	ea, eb := qa[0], qb[0]
	if ea.At != eb.At {
		return ea.At < eb.At
	}
	return ea.seq < eb.seq
}

// fixHead restores the heads-heap invariant for the shard at heap position
// `at` (sift up, then down).
func (s *Shards) fixHead(at int32) {
	h := s.heads
	i := at
	for i > 0 {
		parent := (i - 1) / 2
		if !s.headLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		s.pos[h[i]], s.pos[h[parent]] = i, parent
		i = parent
	}
	n := int32(len(h))
	for {
		least, l, r := i, 2*i+1, 2*i+2
		if l < n && s.headLess(h[l], h[least]) {
			least = l
		}
		if r < n && s.headLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		s.pos[h[i]], s.pos[h[least]] = i, least
		i = least
	}
}

// runSeqWindow is the sequenced-mode window body: a serial merged driver
// that fires the globally minimal (time, seq) event until every queue is
// past `until`, then advances the shared clock and runs the exchange.
func (s *Shards) runSeqWindow(until Time) uint64 {
	var n uint64
	k0 := s.shards[0].Kernel
	for {
		t := s.heads[0]
		q := &s.shards[t].Kernel.queue
		if len(*q) == 0 {
			break
		}
		e := (*q)[0]
		if e.At > until {
			break
		}
		heap.Pop(q)
		s.fixHead(s.pos[t])
		if e.dead {
			continue
		}
		*k0.clock = e.At
		s.shards[t].Kernel.fire(e)
		n++
	}
	if *k0.clock < until {
		*k0.clock = until
	}
	s.horizon = until
	s.exchange()
	return n
}

// exchange merges every shard's outbox into the target kernels in the
// protocol order: (time, source shard, source sequence). Injection happens in
// that order, so the target kernel's FIFO tie-break preserves it at equal
// times — including against events the target schedules itself in the next
// window, which by construction carry later kernel sequence numbers.
func (s *Shards) exchange() {
	var pending []xevent
	for _, sk := range s.shards {
		pending = append(pending, sk.out...)
		sk.out = sk.out[:0]
	}
	if len(pending) == 0 {
		return
	}
	slices.SortFunc(pending, func(a, b xevent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.src != b.src {
			return a.src - b.src
		}
		if a.seq != b.seq {
			if a.seq < b.seq {
				return -1
			}
			return 1
		}
		return 0
	})
	for _, x := range pending {
		if x.at < s.horizon {
			panic(fmt.Sprintf("sim: cross-shard send from %d violates the exchange horizon: at=%.9f horizon=%.9f",
				x.src, x.at, s.horizon))
		}
		if s.seq {
			// Sequenced mode: inject preserving the sequence captured at Send
			// time, so the merged fire order matches the single-kernel oracle.
			s.shards[x.to].Kernel.injectAnon(x.at, x.seq, x.fn, x.fnArg, x.arg)
		} else if x.fnArg != nil {
			fn, arg := x.fnArg, x.arg
			s.shards[x.to].At(x.at, func() { fn(arg) })
		} else {
			s.shards[x.to].At(x.at, x.fn)
		}
	}
}

// Run advances the whole set to `until` in fixed-size windows (the exchange
// horizon step), then runs one final window ending exactly at `until`. Window
// i ends at exactly start + i*window — computed by multiplication, not by
// accumulating additions, so horizons sit on the exact float64 multiples no
// matter how many windows a run spans and the final window's width never
// depends on accumulated rounding error. A +Inf window is permitted and runs
// the whole span as one window (the degenerate single-region case, where
// there is no lookahead to respect). It returns the total number of events
// executed.
func (s *Shards) Run(until Time, window float64) uint64 {
	if !(window > 0) {
		panic("sim: Run window must be positive")
	}
	var n uint64
	start := s.horizon
	for i := 1; start+float64(i)*window < until; i++ {
		n += s.RunWindow(start + float64(i)*window)
	}
	n += s.RunWindow(until)
	return n
}

// Executed sums the executed-event counters across shards.
func (s *Shards) Executed() uint64 {
	var n uint64
	for _, sk := range s.shards {
		n += sk.Kernel.Executed()
	}
	return n
}

// Pending sums the queued events across shards (outbox events in transit to
// the next exchange included).
func (s *Shards) Pending() int {
	n := 0
	for _, sk := range s.shards {
		n += sk.Kernel.Pending() + len(sk.out)
	}
	return n
}
