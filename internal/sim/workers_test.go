package sim

import (
	"sync/atomic"
	"testing"
)

func TestWorkerPoolSerialWhenSmall(t *testing.T) {
	if p := NewWorkerPool(0); p != nil {
		t.Fatal("NewWorkerPool(0) should be the nil serial pool")
	}
	if p := NewWorkerPool(1); p != nil {
		t.Fatal("NewWorkerPool(1) should be the nil serial pool")
	}
	var p *WorkerPool
	if got := p.Size(); got != 1 {
		t.Fatalf("nil pool Size() = %d, want 1", got)
	}
	// Nil pool runs inline, in index order.
	var order []int
	p.Do(4, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do order %v, want ascending", order)
		}
	}
	p.Close() // no-op
}

func TestWorkerPoolRunsEveryTaskOnce(t *testing.T) {
	p := NewWorkerPool(4)
	defer p.Close()
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		counts := make([]atomic.Int64, n)
		p.Do(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: task %d ran %d times, want 1", n, i, got)
			}
		}
	}
}

func TestWorkerPoolReusableAcrossCalls(t *testing.T) {
	p := NewWorkerPool(3)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 100; round++ {
		p.Do(17, func(i int) { total.Add(int64(i)) })
	}
	want := int64(100 * 17 * 16 / 2)
	if got := total.Load(); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

func TestWorkerPoolDisjointResultsMatchSerial(t *testing.T) {
	// The pool's contract: with pairwise-disjoint task state, results are
	// byte-identical to the serial loop regardless of interleaving.
	n := 512
	serial := make([]float64, n)
	var nilPool *WorkerPool
	nilPool.Do(n, func(i int) { serial[i] = float64(i) * 1.0000001 })

	p := NewWorkerPool(4)
	defer p.Close()
	parallel := make([]float64, n)
	p.Do(n, func(i int) { parallel[i] = float64(i) * 1.0000001 })

	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestWorkerPoolSizeIsLiteral(t *testing.T) {
	// Worker count is taken literally even beyond GOMAXPROCS, so determinism
	// and race tests get real goroutine interleaving on single-core runners.
	p := NewWorkerPool(8)
	defer p.Close()
	if got := p.Size(); got != 8 {
		t.Fatalf("pool size %d, want 8", got)
	}
}
