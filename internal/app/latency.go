package app

import "archadapt/internal/metrics"

// LatencyObserver measures ground-truth client latency the way the paper's
// harness reads it off the testbed: a sliding-window average of completed
// responses — except that while a client is wedged (no responses at all) the
// window would go silent and hide the outage, so the observer then reports
// the age of the oldest outstanding request, which is what a user would
// actually be experiencing. Shared by the single-application experiment
// harness and the fleet control plane.
type LatencyObserver struct {
	windows     map[string]*metrics.Window
	outstanding map[string]map[uint64]float64
}

// ObserveLatency hooks the named clients (and the system's drop hook) and
// returns the observer. windowWidth is the averaging window in seconds.
func ObserveLatency(sys *System, clients []string, windowWidth float64) *LatencyObserver {
	o := &LatencyObserver{
		windows:     map[string]*metrics.Window{},
		outstanding: map[string]map[uint64]float64{},
	}
	for _, name := range clients {
		name := name
		o.windows[name] = metrics.NewWindow(windowWidth)
		o.outstanding[name] = map[uint64]float64{}
		cli := sys.Client(name)
		cli.OnSend = append(cli.OnSend, func(r *Request) {
			o.outstanding[name][r.ID] = r.SentAt
		})
		cli.OnResponse = append(cli.OnResponse, func(r Response) {
			delete(o.outstanding[name], r.Req.ID)
			o.windows[name].Add(r.DoneAt, r.Latency)
		})
	}
	sys.OnDrop = append(sys.OnDrop, func(r *Request) {
		delete(o.outstanding[r.Client], r.ID)
	})
	return o
}

// Outstanding returns the number of requests sent but not yet answered (or
// dropped) across every observed client — the fleet migration drain check:
// zero means nothing is in flight anywhere in the pipeline.
func (o *LatencyObserver) Outstanding() int {
	n := 0
	for _, m := range o.outstanding {
		n += len(m)
	}
	return n
}

// Sample returns the client's current ground-truth latency, or ok=false when
// there is nothing to report (no completed responses in the window and no
// outstanding requests).
func (o *LatencyObserver) Sample(name string, now float64) (float64, bool) {
	v, ok := o.windows[name].Avg(now)
	if m := o.outstanding[name]; m != nil {
		oldest := -1.0
		for _, sentAt := range m {
			if age := now - sentAt; age > oldest {
				oldest = age
			}
		}
		if oldest >= 0 && oldest > v {
			v, ok = oldest, true
		}
	}
	return v, ok
}
