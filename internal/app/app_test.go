package app

import (
	"math"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// rig builds a 2-router network: clients at r1, queue+servers at r2.
type rig struct {
	k                   *sim.Kernel
	net                 *netsim.Network
	sys                 *System
	cHost, qHost, sHost netsim.NodeID
	l1, l2              netsim.LinkID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k)
	cHost := net.AddHost("chost")
	r1 := net.AddRouter("r1")
	r2 := net.AddRouter("r2")
	qHost := net.AddHost("qhost")
	sHost := net.AddHost("shost")
	l1 := net.Connect(cHost, r1, 10e6, 1e-3)
	net.Connect(r1, r2, 10e6, 1e-3)
	l2 := net.Connect(r2, qHost, 10e6, 1e-3)
	net.Connect(r2, sHost, 10e6, 1e-3)
	sys := New(k, net, qHost)
	if err := sys.CreateQueue("G1"); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, net: net, sys: sys, cHost: cHost, qHost: qHost, sHost: sHost, l1: l1, l2: l2}
}

func (r *rig) addActiveServer(t *testing.T, name string) *Server {
	t.Helper()
	srv := r.sys.AddServer(name, r.sHost, "G1", 0.05, 0)
	if err := r.sys.Activate(name); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestSingleRequestRoundTrip(t *testing.T) {
	r := newRig(t)
	r.addActiveServer(t, "S1")
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	var got []Response
	cli.OnResponse = append(cli.OnResponse, func(resp Response) { got = append(got, resp) })
	r.k.At(0, func() { r.sys.sendRequest(cli) })
	r.k.RunAll(0)
	if len(got) != 1 {
		t.Fatalf("responses=%d", len(got))
	}
	resp := got[0]
	// Latency = request msg + pull msg + 0.05 service + 20KB transfer: well
	// under a second on an idle 10 Mbps path, but strictly positive.
	if resp.Latency <= 0.05 || resp.Latency > 0.5 {
		t.Fatalf("latency=%v", resp.Latency)
	}
	if cli.Responses() != 1 {
		t.Fatal("client counter")
	}
}

func TestFIFOOrderAndQueueGrowth(t *testing.T) {
	r := newRig(t)
	srv := r.sys.AddServer("S1", r.sHost, "G1", 1.0, 0) // slow: 1 s/request
	if err := r.sys.Activate("S1"); err != nil {
		t.Fatal(err)
	}
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	var order []uint64
	cli.OnResponse = append(cli.OnResponse, func(resp Response) { order = append(order, resp.Req.ID) })
	for i := 0; i < 5; i++ {
		r.k.At(0.001*float64(i), func() { r.sys.sendRequest(cli) })
	}
	// All 5 arrive within ~10 ms; the single server serves them in ~5 s.
	r.k.Run(0.5)
	if q := r.sys.QueueLen("G1"); q < 3 {
		t.Fatalf("queue should back up, len=%d", q)
	}
	r.k.RunAll(0)
	if len(order) != 5 {
		t.Fatalf("responses=%d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if srv.Served() != 5 {
		t.Fatalf("served=%d", srv.Served())
	}
	if r.sys.MaxQueueLen("G1") < 3 {
		t.Fatal("high-water mark not tracked")
	}
}

func TestTwoServersShareQueue(t *testing.T) {
	r := newRig(t)
	r.addActiveServer(t, "S1")
	s2 := r.sys.AddServer("S2", r.sHost, "G1", 0.05, 0)
	if err := r.sys.Activate("S2"); err != nil {
		t.Fatal(err)
	}
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	n := 0
	cli.OnResponse = append(cli.OnResponse, func(Response) { n++ })
	for i := 0; i < 10; i++ {
		r.k.At(0, func() { r.sys.sendRequest(cli) })
	}
	r.k.RunAll(0)
	if n != 10 {
		t.Fatalf("responses=%d", n)
	}
	if s2.Served() == 0 {
		t.Fatal("second server never pulled work")
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	r := newRig(t)
	r.addActiveServer(t, "S1")
	cli := r.sys.AddClient("C1", r.cHost, "G1", 5.0, sim.NewRand(42))
	n := 0
	cli.OnResponse = append(cli.OnResponse, func(Response) { n++ })
	r.sys.Start()
	r.k.Run(200)
	r.sys.StopClients()
	r.k.RunAll(0)
	rate := float64(n) / 200
	if math.Abs(rate-5.0) > 0.5 {
		t.Fatalf("observed rate %v, want ~5", rate)
	}
}

func TestDeactivateFinishesCurrentRequest(t *testing.T) {
	r := newRig(t)
	srv := r.sys.AddServer("S1", r.sHost, "G1", 1.0, 0)
	if err := r.sys.Activate("S1"); err != nil {
		t.Fatal(err)
	}
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	done := 0
	cli.OnResponse = append(cli.OnResponse, func(Response) { done++ })
	r.k.At(0, func() { r.sys.sendRequest(cli) })
	r.k.At(0, func() { r.sys.sendRequest(cli) })
	r.k.At(0.5, func() {
		if err := r.sys.Deactivate("S1"); err != nil {
			t.Error(err)
		}
	})
	r.k.RunAll(0)
	if done != 1 {
		t.Fatalf("done=%d: deactivation should finish in-flight request only", done)
	}
	if srv.Active() {
		t.Fatal("server still active")
	}
	if r.sys.QueueLen("G1") != 1 {
		t.Fatalf("queue=%d, want 1 stranded request", r.sys.QueueLen("G1"))
	}
}

func TestActivateDrainsBacklog(t *testing.T) {
	r := newRig(t)
	r.sys.AddServer("S1", r.sHost, "G1", 0.05, 0) // inactive
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	n := 0
	cli.OnResponse = append(cli.OnResponse, func(Response) { n++ })
	for i := 0; i < 4; i++ {
		r.k.At(0, func() { r.sys.sendRequest(cli) })
	}
	r.k.Run(5)
	if n != 0 || r.sys.QueueLen("G1") != 4 {
		t.Fatalf("n=%d queue=%d before activation", n, r.sys.QueueLen("G1"))
	}
	r.k.At(6, func() {
		if err := r.sys.Activate("S1"); err != nil {
			t.Error(err)
		}
	})
	r.k.RunAll(0)
	if n != 4 {
		t.Fatalf("backlog not drained: n=%d", n)
	}
}

func TestMoveClientRoutesNewRequests(t *testing.T) {
	r := newRig(t)
	if err := r.sys.CreateQueue("G2"); err != nil {
		t.Fatal(err)
	}
	r.addActiveServer(t, "S1")
	s2 := r.sys.AddServer("S2", r.sHost, "G2", 0.05, 0)
	if err := r.sys.Activate("S2"); err != nil {
		t.Fatal(err)
	}
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	n := 0
	cli.OnResponse = append(cli.OnResponse, func(Response) { n++ })
	r.k.At(0, func() { r.sys.sendRequest(cli) })
	r.k.At(1, func() {
		if err := r.sys.MoveClient("C1", "G2"); err != nil {
			t.Error(err)
		}
	})
	r.k.At(2, func() { r.sys.sendRequest(cli) })
	r.k.RunAll(0)
	if n != 2 {
		t.Fatalf("responses=%d", n)
	}
	if s2.Served() != 1 {
		t.Fatalf("S2 served=%d, want the post-move request", s2.Served())
	}
}

func TestConnectServerRules(t *testing.T) {
	r := newRig(t)
	r.sys.AddServer("S1", r.sHost, "G1", 0.05, 0)
	if err := r.sys.CreateQueue("G2"); err != nil {
		t.Fatal(err)
	}
	if err := r.sys.ConnectServer("S1", "G2"); err != nil {
		t.Fatal(err)
	}
	if err := r.sys.Activate("S1"); err != nil {
		t.Fatal(err)
	}
	if err := r.sys.ConnectServer("S1", "G1"); err == nil {
		t.Fatal("re-pointing an active server should fail")
	}
	if err := r.sys.ConnectServer("S1", "nope"); err == nil {
		t.Fatal("unknown queue should fail")
	}
	if err := r.sys.MoveClient("nope", "G1"); err == nil {
		t.Fatal("unknown client should fail")
	}
}

func TestCongestionRaisesLatency(t *testing.T) {
	r := newRig(t)
	r.addActiveServer(t, "S1")
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	var lat []float64
	cli.OnResponse = append(cli.OnResponse, func(resp Response) { lat = append(lat, resp.Latency) })
	r.k.At(0, func() { r.sys.sendRequest(cli) })
	// Crush the client's access link before the second request.
	r.k.At(5, func() { r.net.SetBackgroundBoth(r.l1, 10e6-2e3) }) // ~2 Kbps left
	r.k.At(6, func() { r.sys.sendRequest(cli) })
	r.k.RunAll(0)
	if len(lat) != 2 {
		t.Fatalf("lat=%v", lat)
	}
	if lat[1] < 10*lat[0] || lat[1] < 2.0 {
		t.Fatalf("congested latency %v should dwarf idle latency %v", lat[1], lat[0])
	}
}

func TestCrashServerDropsWork(t *testing.T) {
	r := newRig(t)
	srv := r.sys.AddServer("S1", r.sHost, "G1", 1.0, 0)
	if err := r.sys.Activate("S1"); err != nil {
		t.Fatal(err)
	}
	cli := r.sys.AddClient("C1", r.cHost, "G1", 0, sim.NewRand(1))
	n := 0
	cli.OnResponse = append(cli.OnResponse, func(Response) { n++ })
	r.k.At(0, func() { r.sys.sendRequest(cli) })
	r.k.At(0.1, func() {
		if err := r.sys.CrashServer("S1"); err != nil {
			t.Error(err)
		}
	})
	r.k.Run(30)
	if srv.Active() {
		t.Fatal("crashed server still active")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, float64) {
		k := sim.NewKernel()
		net := netsim.New(k)
		a := net.AddHost("a")
		b := net.AddHost("b")
		q := net.AddHost("q")
		rt := net.AddRouter("r")
		net.Connect(a, rt, 10e6, 1e-3)
		net.Connect(b, rt, 10e6, 1e-3)
		net.Connect(q, rt, 10e6, 1e-3)
		sys := New(k, net, q)
		_ = sys.CreateQueue("G")
		sys.AddServer("S", b, "G", 0.05, 1e-6)
		_ = sys.Activate("S")
		cli := sys.AddClient("C", a, "G", 3, sim.NewRand(7))
		total := 0.0
		cli.OnResponse = append(cli.OnResponse, func(resp Response) { total += resp.Latency })
		sys.Start()
		k.Run(100)
		sys.StopClients()
		k.RunAll(0)
		return cli.Responses(), total
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", n1, t1, n2, t2)
	}
	if n1 < 250 {
		t.Fatalf("too few responses: %d", n1)
	}
}
