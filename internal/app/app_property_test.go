package app

import (
	"testing"
	"testing/quick"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// Property: under random interleavings of requests, activations,
// deactivations and moves, the system conserves requests — every request is
// eventually answered, still queued, in flight, or explicitly dropped — and
// never crashes or loses FIFO order per queue.
func TestRandomOperationsConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		k := sim.NewKernel()
		net := netsim.New(k)
		r := net.AddRouter("r")
		hosts := make([]netsim.NodeID, 5)
		for i := range hosts {
			hosts[i] = net.AddHost(string(rune('a' + i)))
			net.Connect(hosts[i], r, 10e6, 1e-3)
		}
		sys := New(k, net, hosts[0])
		_ = sys.CreateQueue("G1")
		_ = sys.CreateQueue("G2")
		sys.AddServer("S1", hosts[1], "G1", 0.01, 0)
		sys.AddServer("S2", hosts[2], "G2", 0.01, 0)
		_ = sys.Activate("S1")
		_ = sys.Activate("S2")
		cli := sys.AddClient("C", hosts[3], "G1", 0, rng.Fork("cli"))

		sent, answered, dropped := 0, 0, 0
		cli.OnResponse = append(cli.OnResponse, func(Response) { answered++ })
		sys.OnDrop = append(sys.OnDrop, func(*Request) { dropped++ })

		// Random schedule of operations.
		for i := 0; i < 30+rng.Intn(40); i++ {
			at := rng.Float64() * 50
			switch rng.Intn(6) {
			case 0, 1, 2:
				sent++
				k.At(at, func() { sys.sendRequest(cli) })
			case 3:
				k.At(at, func() {
					if cli.Group == "G1" {
						_ = sys.MoveClient("C", "G2")
					} else {
						_ = sys.MoveClient("C", "G1")
					}
				})
			case 4:
				srv := []string{"S1", "S2"}[rng.Intn(2)]
				k.At(at, func() {
					if sys.Server(srv).Active() {
						_ = sys.Deactivate(srv)
					} else {
						_ = sys.Activate(srv)
					}
				})
			case 5:
				k.At(at, func() { _ = sys.Activate("S1") }) // may fail; fine
			}
		}
		// Ensure both servers end active so queues drain.
		k.At(60, func() {
			if !sys.Server("S1").Active() {
				_ = sys.Activate("S1")
			}
			if !sys.Server("S2").Active() {
				_ = sys.Activate("S2")
			}
		})
		k.RunAll(0)
		leftover := sys.QueueLen("G1") + sys.QueueLen("G2")
		// Conservation: all sent requests accounted for.
		return answered+dropped+leftover == sent && leftover == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-queue service order is FIFO regardless of server churn.
func TestFIFOUnderServerChurn(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		k := sim.NewKernel()
		net := netsim.New(k)
		r := net.AddRouter("r")
		h1 := net.AddHost("h1")
		h2 := net.AddHost("h2")
		h3 := net.AddHost("h3")
		net.Connect(h1, r, 10e6, 1e-3)
		net.Connect(h2, r, 10e6, 1e-3)
		net.Connect(h3, r, 10e6, 1e-3)
		sys := New(k, net, h1)
		_ = sys.CreateQueue("G")
		sys.AddServer("S", h2, "G", 0.05, 0)
		_ = sys.Activate("S")
		cli := sys.AddClient("C", h3, "G", 0, rng.Fork("cli"))
		var pulls []uint64
		cli.OnResponse = append(cli.OnResponse, func(resp Response) {
			pulls = append(pulls, resp.Req.ID)
		})
		for i := 0; i < 20; i++ {
			at := rng.Float64() * 5
			k.At(at, func() { sys.sendRequest(cli) })
		}
		// Random server bounce mid-run.
		k.At(2.5, func() { _ = sys.Deactivate("S") })
		k.At(4.0, func() { _ = sys.Activate("S") })
		k.RunAll(0)
		// Served-completion order can interleave with transfers, but pull
		// order must respect queue order: request IDs are assigned in send
		// order and arrive in near-send order on one path; we check the
		// pulled sequence is sorted.
		for i := 1; i < len(pulls); i++ {
			if pulls[i] < pulls[i-1] {
				return false
			}
		}
		return len(pulls) == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
