// Open-loop support: aggregated flow classes and synthetic response
// delivery. Where the closed-loop clients above generate one Request object
// per arrival, the open-loop engine (internal/fleet) models up to 10^6 users
// per application as a handful of aggregated classes — one per
// (client-region, server-group) pair — each carried by a single
// demand-capped netsim class flow. The application layer contributes the
// two pieces that must understand its own structure: grouping clients into
// classes, and feeding the synthetic verdicts back through the same
// OnResponse listener chain the real pipeline uses, so probes, gauges and
// the repair loop are indistinguishable from the closed-loop path.
package app

import (
	"fmt"

	"archadapt/internal/netsim"
)

// FlowClass aggregates the clients of one (client-region, server-group)
// pair into a single modeled traffic class. Src is the representative
// ingress host (the first member's host — class reply traffic enters the
// region at one access link); Dst is the host of the group's first active
// server, falling back to the queue machine while a group has no active
// server. Flow and the accounting fields belong to the open-loop engine.
type FlowClass struct {
	Region int
	Group  string
	Src    netsim.NodeID
	Dst    netsim.NodeID
	// Members are the client names aggregated into this class, in
	// registration order.
	Members []string

	// Flow is the class's demand-capped reply flow on the shared network
	// (nil until the engine starts it; nil forever for Src == Dst classes
	// started through StartClassFlow, which keeps them off the solver).
	Flow *netsim.Flow
	// NetBacklog is the fluid queue of reply bits emitted by the servers
	// but not yet granted network capacity; LastDelivered is the
	// Flow.Delivered() reading at the previous adjust tick; EmitRate is the
	// bits/sec the servers were emitting into the network over the current
	// interval; Credit carries the fractional response count between ticks.
	NetBacklog    float64
	LastDelivered float64
	EmitRate      float64
	Credit        float64
}

// BuildFlowClasses groups the system's clients into flow classes keyed by
// (regionOf(client host), client group), in first-seen client-registration
// order — deterministic for a deterministic client set. regionOf maps a
// host to its region index (the fleet passes Grid.RouterIndex).
func BuildFlowClasses(s *System, regionOf func(netsim.NodeID) int) []*FlowClass {
	type key struct {
		region int
		group  string
	}
	idx := map[key]*FlowClass{}
	var out []*FlowClass
	for _, name := range s.order.clients {
		c := s.clients[name]
		k := key{regionOf(c.Host), c.Group}
		fc := idx[k]
		if fc == nil {
			fc = &FlowClass{Region: k.region, Group: c.Group, Src: c.Host, Dst: s.groupAnchor(c.Group)}
			idx[k] = fc
			out = append(out, fc)
		}
		fc.Members = append(fc.Members, name)
	}
	return out
}

// groupAnchor returns the host class reply traffic originates from: the
// group's first active server, else the queue machine.
func (s *System) groupAnchor(group string) netsim.NodeID {
	for _, name := range s.order.servers {
		srv := s.servers[name]
		if srv.active && srv.Group == group {
			return srv.Host
		}
	}
	return s.QueueHost
}

// DeliverSynthetic feeds one aggregated latency verdict into the client's
// response pipeline: the responses counter advances by count (the modeled
// completions since the last tick), and a single Response carrying the
// verdict latency is emitted to the OnResponse listeners even when count is
// zero — during a total outage the gauges must still see the (terrible)
// latency, exactly as the closed-loop observer reports the age of the
// oldest outstanding request. The synthetic Request is cached per client
// (ID 0, never outstanding), so listener bookkeeping keyed by request ID
// treats every delivery as the same no-op entry.
func (c *Client) DeliverSynthetic(now float64, latency float64, count uint64) {
	c.responses += count
	if c.synth == nil {
		c.synth = &Request{Client: c.Name, sys: c.sys}
	}
	c.synth.Group = c.Group
	c.synth.RespBits = c.RespBits()
	done := Response{Req: c.synth, DoneAt: now, Latency: latency}
	for _, fn := range c.OnResponse {
		fn(done)
	}
}

// RemoveServer unregisters a server process entirely — the autoscaling
// teardown path (scale-down, and dropping scaled replicas before a
// migration re-placement, whose Rehost must cover exactly the spec's
// processes). The server is force-deactivated; an in-flight request, if
// any, completes against the detached handle.
func (s *System) RemoveServer(name string) error {
	srv := s.servers[name]
	if srv == nil {
		return fmt.Errorf("app: no server %q", name)
	}
	srv.active = false
	srv.stopped = false
	delete(s.servers, name)
	for i, n := range s.order.servers {
		if n == name {
			s.order.servers = append(s.order.servers[:i], s.order.servers[i+1:]...)
			break
		}
	}
	return nil
}
