// Package app implements the managed application of the paper's experiment:
// a replicated client/server storage system. Clients send small requests to
// a request-queue machine that keeps one FIFO queue per server group;
// servers pull requests from their group's queue, process them, and stream
// the (much larger) reply directly back to the client (§5: requests average
// 0.5 KB, replies 20 KB).
//
// The application runs on the netsim network under the sim kernel and has no
// built-in adaptation: every adaptive behaviour comes from the framework
// through the environment-manager operators (Table 1), exactly as in the
// paper's evaluation.
package app

import (
	"fmt"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// Request is one client request traveling through the system.
type Request struct {
	ID       uint64
	Client   string
	Group    string  // queue it was routed to
	RespBits float64 // reply size requested
	SentAt   sim.Time
	QueuedAt sim.Time
	PulledAt sim.Time

	// sys and srv thread the request through its static pipeline callbacks
	// (send → enqueue → pull → serve → reply) without per-step closures.
	sys *System
	srv *Server
}

// Response records a completed request at the client.
type Response struct {
	Req     *Request
	DoneAt  sim.Time
	Latency float64
}

// Server is one (possibly spare) server process pinned to a host.
type Server struct {
	Name  string
	Host  netsim.NodeID
	Group string // group whose queue it pulls from ("" when unattached)

	// ServiceBase and ServicePerBit model request processing time
	// (CPU + disk): base + bits*perBit seconds.
	ServiceBase   float64
	ServicePerBit float64

	active  bool
	busy    bool
	stopped bool // deactivation requested while busy
	served  uint64
	sys     *System
}

// Active reports whether the server is pulling requests.
func (s *Server) Active() bool { return s.active }

// Busy reports whether the server is mid-request.
func (s *Server) Busy() bool { return s.busy }

// Served returns the number of completed requests.
func (s *Server) Served() uint64 { return s.served }

// Client is a request generator pinned to a host.
type Client struct {
	Name  string
	Host  netsim.NodeID
	Group string // group its new requests are routed to

	// Rate is the mean request rate (Poisson arrivals). ReqBits/RespBits
	// sample the request/reply sizes; the workload layer re-points these at
	// phase boundaries (Figure 7).
	Rate     float64
	ReqBits  func() float64
	RespBits func() float64

	rng     *sim.Rand
	nextID  uint64
	stopped bool
	paused  bool
	pending bool // an arrival event is scheduled
	respTag string

	// Listeners receive completed responses (probes attach here; this is
	// the AIDE-style instrumentation point: "probes report when particular
	// methods have been called").
	OnResponse []func(Response)
	// OnSend listeners observe request emission (for outstanding-request
	// tracking in the harness).
	OnSend []func(*Request)

	responses uint64
	// synth is the cached synthetic request handle behind DeliverSynthetic
	// (openloop.go); nil until the open-loop engine first delivers.
	synth *Request
	sys   *System
}

// Responses returns the number of replies received.
func (c *Client) Responses() uint64 { return c.responses }

// queue is one FIFO request queue on the queue machine. reqs[head:] are the
// waiting requests: dispatch advances head and the array is reset when the
// queue drains (or compacted when the dead prefix dominates), so the backing
// array is reused instead of re-allocated as the slice walks forward.
type queue struct {
	group    string
	reqs     []*Request
	head     int
	maxSeen  int
	enqueued uint64
}

// waiting returns the number of queued requests.
func (q *queue) waiting() int { return len(q.reqs) - q.head }

// System is the running application.
type System struct {
	K   *sim.Kernel
	Net *netsim.Network
	// QueueHost is the machine holding the request queues (shared with
	// Server 5 in the paper's testbed).
	QueueHost netsim.NodeID

	clients map[string]*Client
	servers map[string]*Server
	queues  map[string]*queue
	order   struct {
		clients []string
		servers []string
		groups  []string
	}

	reqSeq      uint64
	droppedReqs uint64

	// OnDrop listeners observe requests discarded by moves or missing
	// queues (harness instrumentation; the paper's clients simply never
	// hear back).
	OnDrop []func(*Request)
}

// New creates an empty application bound to the kernel and network.
func New(k *sim.Kernel, net *netsim.Network, queueHost netsim.NodeID) *System {
	return &System{
		K:         k,
		Net:       net,
		QueueHost: queueHost,
		clients:   map[string]*Client{},
		servers:   map[string]*Server{},
		queues:    map[string]*queue{},
	}
}

// AddClient registers a client on a host, initially routed to group.
func (s *System) AddClient(name string, host netsim.NodeID, group string, rate float64, rng *sim.Rand) *Client {
	if _, dup := s.clients[name]; dup {
		panic("app: duplicate client " + name)
	}
	c := &Client{
		Name: name, Host: host, Group: group, Rate: rate,
		ReqBits:  func() float64 { return 0.5 * 8192 }, // 0.5 KB
		RespBits: func() float64 { return 20 * 8192 },  // 20 KB
		rng:      rng, sys: s, respTag: "resp:" + name,
	}
	s.clients[name] = c
	s.order.clients = append(s.order.clients, name)
	return c
}

// AddServer registers a server process on a host. It starts inactive;
// activation goes through the environment manager, as in the testbed where
// S4 and S7 sat idle until repairs recruited them.
func (s *System) AddServer(name string, host netsim.NodeID, group string, serviceBase, servicePerBit float64) *Server {
	if _, dup := s.servers[name]; dup {
		panic("app: duplicate server " + name)
	}
	srv := &Server{
		Name: name, Host: host, Group: group,
		ServiceBase: serviceBase, ServicePerBit: servicePerBit,
		sys: s,
	}
	s.servers[name] = srv
	s.order.servers = append(s.order.servers, name)
	return srv
}

// CreateQueue provisions a FIFO queue for a group (Table 1 createReqQueue).
func (s *System) CreateQueue(group string) error {
	if _, dup := s.queues[group]; dup {
		return fmt.Errorf("app: queue for %s already exists", group)
	}
	s.queues[group] = &queue{group: group}
	s.order.groups = append(s.order.groups, group)
	return nil
}

// Client returns a client by name.
func (s *System) Client(name string) *Client { return s.clients[name] }

// Server returns a server by name.
func (s *System) Server(name string) *Server { return s.servers[name] }

// Clients returns all client names in registration order.
func (s *System) Clients() []string { return s.order.clients }

// Servers returns all server names in registration order.
func (s *System) Servers() []string { return s.order.servers }

// Groups returns all group names in queue-creation order.
func (s *System) Groups() []string { return s.order.groups }

// QueueLen returns the number of waiting requests in a group's queue.
func (s *System) QueueLen(group string) int {
	q := s.queues[group]
	if q == nil {
		return 0
	}
	return q.waiting()
}

// MaxQueueLen returns the high-water mark of a group's queue.
func (s *System) MaxQueueLen(group string) int {
	q := s.queues[group]
	if q == nil {
		return 0
	}
	return q.maxSeen
}

// ActiveServersOf returns the names of active servers pulling from a group.
func (s *System) ActiveServersOf(group string) []string {
	var out []string
	for _, name := range s.order.servers {
		srv := s.servers[name]
		if srv.active && srv.Group == group {
			out = append(out, name)
		}
	}
	return out
}

// Start begins request generation for every client.
func (s *System) Start() {
	for _, name := range s.order.clients {
		s.scheduleNext(s.clients[name])
	}
}

// StopClients halts request generation (end of experiment).
func (s *System) StopClients() {
	for _, c := range s.clients {
		c.stopped = true
	}
}

// PauseClients suspends request generation on every client without
// discarding it — the drain step of a fleet migration. Paused clients keep
// their RNG streams and outstanding requests; ResumeClients restarts
// generation where it left off.
func (s *System) PauseClients() {
	for _, name := range s.order.clients {
		s.clients[name].paused = true
	}
}

// ResumeClients restarts request generation for paused clients. A client
// whose pre-pause arrival event is still pending is left to that event, so
// a pause/resume cycle never forks a second generator chain.
func (s *System) ResumeClients() {
	for _, name := range s.order.clients {
		c := s.clients[name]
		if !c.paused {
			continue
		}
		c.paused = false
		if !c.pending {
			s.scheduleNext(c)
		}
	}
}

func (s *System) scheduleNext(c *Client) {
	if c.stopped || c.paused || c.Rate <= 0 {
		return
	}
	gap := c.rng.Exp(1 / c.Rate)
	c.pending = true
	s.K.AfterAnonArg(gap, clientTickFn, c)
}

// clientTickFn fires one client arrival and schedules the next.
func clientTickFn(arg any) {
	c := arg.(*Client)
	c.pending = false
	if c.stopped || c.paused {
		return
	}
	c.sys.sendRequest(c)
	c.sys.scheduleNext(c)
}

// sendRequest emits one request: a small message to the queue machine that
// is enqueued on arrival.
func (s *System) sendRequest(c *Client) {
	s.reqSeq++
	req := &Request{
		ID:       s.reqSeq,
		Client:   c.Name,
		Group:    c.Group,
		RespBits: c.RespBits(),
		SentAt:   s.K.Now(),
		sys:      s,
	}
	for _, fn := range c.OnSend {
		fn(req)
	}
	bits := c.ReqBits()
	s.Net.SendMessageTo(c.Host, s.QueueHost, bits, netsim.BestEffort, enqueueFn, req)
}

// enqueueFn fires when a request message reaches the queue machine.
func enqueueFn(arg any) {
	req := arg.(*Request)
	req.sys.enqueue(req)
}

func (s *System) enqueue(req *Request) {
	q := s.queues[req.Group]
	if q == nil {
		// Queue vanished (misrouted request after repair churn): drop. The
		// client will see it as a lost request.
		s.droppedReqs++
		for _, fn := range s.OnDrop {
			fn(req)
		}
		return
	}
	req.QueuedAt = s.K.Now()
	q.reqs = append(q.reqs, req)
	q.enqueued++
	if q.waiting() > q.maxSeen {
		q.maxSeen = q.waiting()
	}
	s.dispatch(q)
}

// dispatch hands queued requests to idle active servers of the group.
func (s *System) dispatch(q *queue) {
	for q.head < len(q.reqs) {
		srv := s.idleServer(q.group)
		if srv == nil {
			q.compact()
			return
		}
		req := q.reqs[q.head]
		q.reqs[q.head] = nil
		q.head++
		s.serve(srv, req)
	}
	q.reqs = q.reqs[:0]
	q.head = 0
}

// compact reclaims the dispatched prefix once it dominates the array.
func (q *queue) compact() {
	if q.head >= 64 && q.head*2 >= len(q.reqs) {
		n := copy(q.reqs, q.reqs[q.head:])
		for i := n; i < len(q.reqs); i++ {
			q.reqs[i] = nil
		}
		q.reqs = q.reqs[:n]
		q.head = 0
	}
}

func (s *System) idleServer(group string) *Server {
	for _, name := range s.order.servers {
		srv := s.servers[name]
		if srv.active && !srv.busy && srv.Group == group {
			return srv
		}
	}
	return nil
}

// serve models the server pulling the request (small message queue→server),
// processing it, and streaming the reply to the client as an elastic
// transfer. The server stays busy until the reply transfer completes —
// matching the paper's Java servers, whose synchronous reply writes are
// exactly why slow clients starve a server group in the control run (and why
// the control "never recovers" until the competing traffic relents).
func (s *System) serve(srv *Server, req *Request) {
	srv.busy = true
	req.srv = srv
	req.PulledAt = s.K.Now()
	pullBits := 0.5 * 8192 // the request payload forwarded to the server
	s.Net.SendMessageTo(s.QueueHost, srv.Host, pullBits, netsim.BestEffort, pulledFn, req)
}

// pulledFn fires when the server has pulled the request off the queue
// machine; the server then processes it for its service time.
func pulledFn(arg any) {
	req := arg.(*Request)
	s, srv := req.sys, req.srv
	service := srv.ServiceBase + srv.ServicePerBit*req.RespBits
	s.K.AfterAnonArg(service, servedFn, req)
}

// servedFn fires when processing completes and streams the reply to the
// client as an elastic transfer.
func servedFn(arg any) {
	req := arg.(*Request)
	s, srv := req.sys, req.srv
	cli := s.clients[req.Client]
	if cli == nil {
		s.finishServing(srv)
		return
	}
	s.Net.StartTransferArg(srv.Host, cli.Host, req.RespBits, cli.respTag, replyDoneFn, req)
}

// replyDoneFn fires when the last reply bit lands at the client.
func replyDoneFn(arg any) {
	req := arg.(*Request)
	s, srv := req.sys, req.srv
	cli := s.clients[req.Client]
	done := Response{Req: req, DoneAt: s.K.Now(), Latency: s.K.Now() - req.SentAt}
	cli.responses++
	for _, fn := range cli.OnResponse {
		fn(done)
	}
	s.finishServing(srv)
}

func (s *System) finishServing(srv *Server) {
	srv.busy = false
	srv.served++
	if srv.stopped {
		srv.active = false
		srv.stopped = false
	}
	if srv.active {
		if q := s.queues[srv.Group]; q != nil {
			s.dispatch(q)
		}
	}
}

// --- operations invoked by the environment manager (Table 1) ---

// Activate marks a server active and starts it pulling from its group.
func (s *System) Activate(server string) error {
	srv := s.servers[server]
	if srv == nil {
		return fmt.Errorf("app: no server %q", server)
	}
	if srv.Group == "" {
		return fmt.Errorf("app: server %q not connected to a queue", server)
	}
	if srv.active {
		return fmt.Errorf("app: server %q already active", server)
	}
	srv.active = true
	srv.stopped = false
	if q := s.queues[srv.Group]; q != nil {
		s.dispatch(q)
	}
	return nil
}

// Deactivate stops a server pulling; if it is mid-request it finishes first.
func (s *System) Deactivate(server string) error {
	srv := s.servers[server]
	if srv == nil {
		return fmt.Errorf("app: no server %q", server)
	}
	if !srv.active {
		return fmt.Errorf("app: server %q not active", server)
	}
	if srv.busy {
		srv.stopped = true
	} else {
		srv.active = false
	}
	return nil
}

// ConnectServer points a server at a group's queue (Table 1 connectServer).
// Only inactive servers can be re-pointed.
func (s *System) ConnectServer(server, group string) error {
	srv := s.servers[server]
	if srv == nil {
		return fmt.Errorf("app: no server %q", server)
	}
	if srv.active {
		return fmt.Errorf("app: server %q is active; deactivate first", server)
	}
	if _, ok := s.queues[group]; !ok {
		return fmt.Errorf("app: no queue for group %q", group)
	}
	srv.Group = group
	return nil
}

// MoveClient re-routes a client's future requests to another group's queue
// (Table 1 moveClient). The client's queued (not yet pulled) requests on the
// old queue are discarded — the request splitter forgets reassigned clients;
// requests already being served complete against the old group.
func (s *System) MoveClient(client, group string) error {
	c := s.clients[client]
	if c == nil {
		return fmt.Errorf("app: no client %q", client)
	}
	if _, ok := s.queues[group]; !ok {
		return fmt.Errorf("app: no queue for group %q", group)
	}
	if old := s.queues[c.Group]; old != nil && c.Group != group {
		kept := old.reqs[:0]
		for _, r := range old.reqs[old.head:] {
			if r.Client == client {
				s.droppedReqs++
				for _, fn := range s.OnDrop {
					fn(r)
				}
				continue
			}
			kept = append(kept, r)
		}
		for i := len(kept); i < len(old.reqs); i++ {
			old.reqs[i] = nil
		}
		old.reqs = kept
		old.head = 0
	}
	c.Group = group
	return nil
}

// DroppedRequests counts requests discarded by queue removal or client
// moves.
func (s *System) DroppedRequests() uint64 { return s.droppedReqs }

// Rehost moves every process of the system onto a new host set: the request
// queue machine, each server and each client (the fleet migration cutover).
// The caller is responsible for quiescing traffic first — pause the clients
// and drain in-flight requests; anything still in flight completes against
// the hosts it was issued from. All three maps must cover every registered
// process; on any gap nothing is changed.
func (s *System) Rehost(queueHost netsim.NodeID, serverHosts, clientHosts map[string]netsim.NodeID) error {
	for _, name := range s.order.servers {
		if _, ok := serverHosts[name]; !ok {
			return fmt.Errorf("app: rehost missing host for server %q", name)
		}
	}
	for _, name := range s.order.clients {
		if _, ok := clientHosts[name]; !ok {
			return fmt.Errorf("app: rehost missing host for client %q", name)
		}
	}
	s.QueueHost = queueHost
	for _, name := range s.order.servers {
		s.servers[name].Host = serverHosts[name]
	}
	for _, name := range s.order.clients {
		s.clients[name].Host = clientHosts[name]
	}
	return nil
}

// CrashServer abruptly deactivates a server, dropping its current request
// (failure injection for the self-healing example and tests).
func (s *System) CrashServer(server string) error {
	srv := s.servers[server]
	if srv == nil {
		return fmt.Errorf("app: no server %q", server)
	}
	srv.active = false
	srv.busy = false
	srv.stopped = false
	return nil
}
