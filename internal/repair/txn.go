// Package repair implements the paper's repair machinery (§3.2): strategies
// made of guarded tactics, executed transactionally against the architecture
// model, with the resulting semantic operations handed to a translator for
// propagation to the running system (§3.3, Figure 1 arrow 5).
package repair

import (
	"fmt"

	"archadapt/internal/model"
)

// OpKind enumerates the semantic operations a repair can emit. The
// translator expands each into the Table 1 runtime calls.
type OpKind int

// Semantic operation kinds.
const (
	// OpAddServer activates a replicated server in a group
	// (findServer + connectServer + activateServer).
	OpAddServer OpKind = iota
	// OpRemoveServer deactivates a server (deactivateServer).
	OpRemoveServer
	// OpMoveClient repoints a client at another group's request queue
	// (moveClient).
	OpMoveClient
	// OpCreateQueue provisions a new logical request queue
	// (createReqQueue).
	OpCreateQueue
)

func (k OpKind) String() string {
	switch k {
	case OpAddServer:
		return "addServer"
	case OpRemoveServer:
		return "removeServer"
	case OpMoveClient:
		return "moveClient"
	case OpCreateQueue:
		return "createReqQueue"
	}
	return "unknownOp"
}

// Op is one semantic operation recorded during a tactic's script.
type Op struct {
	Kind   OpKind
	Client string // client name, for OpMoveClient
	Group  string // server-group name
	Server string // server name, for add/remove
}

func (o Op) String() string {
	switch o.Kind {
	case OpMoveClient:
		return fmt.Sprintf("moveClient(%s -> %s)", o.Client, o.Group)
	case OpAddServer:
		return fmt.Sprintf("addServer(%s in %s)", o.Server, o.Group)
	case OpRemoveServer:
		return fmt.Sprintf("removeServer(%s from %s)", o.Server, o.Group)
	default:
		return fmt.Sprintf("%s(%s)", o.Kind, o.Group)
	}
}

// Txn is a transactional view of the model: every mutation records an undo
// closure, and semantic ops accumulate for the translator. Abort restores
// the model exactly (verified by the model.Equal tests).
type Txn struct {
	Sys     *model.System
	undo    []func() error
	ops     []Op
	aborted bool
}

// NewTxn opens a transaction on sys.
func NewTxn(sys *model.System) *Txn {
	return &Txn{Sys: sys}
}

// Ops returns the semantic operations recorded so far.
func (t *Txn) Ops() []Op { return t.ops }

// Record appends a semantic operation for the translator.
func (t *Txn) Record(op Op) { t.ops = append(t.ops, op) }

// pushUndo registers the inverse of a mutation just performed.
func (t *Txn) pushUndo(fn func() error) { t.undo = append(t.undo, fn) }

// Abort rolls the model back by applying undos in reverse order.
func (t *Txn) Abort() error {
	if t.aborted {
		return nil
	}
	t.aborted = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil {
			return fmt.Errorf("repair: rollback failed (model may be inconsistent): %w", err)
		}
	}
	t.undo = nil
	t.ops = nil
	return nil
}

// --- transactional mutation helpers ---

// SetProp sets a property, remembering the previous value.
func (t *Txn) SetProp(e model.Element, name string, v any) {
	props := e.Props()
	old, had := props.Get(name)
	props.Set(name, v)
	t.pushUndo(func() error {
		if had {
			props.Set(name, old)
		} else {
			props.Delete(name)
		}
		return nil
	})
}

// AddComponent adds a component to sys within the transaction.
func (t *Txn) AddComponent(sys *model.System, name, typ string) (*model.Component, error) {
	if sys.Component(name) != nil {
		return nil, fmt.Errorf("repair: component %q already exists", name)
	}
	c := sys.AddComponent(name, typ)
	t.pushUndo(func() error { return sys.RemoveComponent(name) })
	return c, nil
}

// RemoveComponent removes a component (which must be fully detached).
func (t *Txn) RemoveComponent(sys *model.System, name string) error {
	c := sys.Component(name)
	if c == nil {
		return fmt.Errorf("repair: no component %q", name)
	}
	if err := sys.RemoveComponent(name); err != nil {
		return err
	}
	t.pushUndo(func() error { return sys.RestoreComponent(c) })
	return nil
}

// AddPort adds a port to a component.
func (t *Txn) AddPort(c *model.Component, name, typ string) (*model.Port, error) {
	if c.Port(name) != nil {
		return nil, fmt.Errorf("repair: port %s.%s already exists", c.Name(), name)
	}
	p := c.AddPort(name, typ)
	t.pushUndo(func() error { return c.RemovePort(name) })
	return p, nil
}

// AddRole adds a role to a connector.
func (t *Txn) AddRole(c *model.Connector, name, typ string) (*model.Role, error) {
	if c.Role(name) != nil {
		return nil, fmt.Errorf("repair: role %s.%s already exists", c.Name(), name)
	}
	r := c.AddRole(name, typ)
	t.pushUndo(func() error { return c.RemoveRole(name) })
	return r, nil
}

// RemoveRole removes a detached role.
func (t *Txn) RemoveRole(c *model.Connector, name string) error {
	r := c.Role(name)
	if r == nil {
		return fmt.Errorf("repair: no role %s.%s", c.Name(), name)
	}
	if err := c.RemoveRole(name); err != nil {
		return err
	}
	t.pushUndo(func() error { return c.RestoreRole(r) })
	return nil
}

// Attach binds a port to a role.
func (t *Txn) Attach(sys *model.System, p *model.Port, r *model.Role) error {
	if err := sys.Attach(p, r); err != nil {
		return err
	}
	t.pushUndo(func() error { return sys.Detach(p, r) })
	return nil
}

// Detach unbinds a port from a role.
func (t *Txn) Detach(sys *model.System, p *model.Port, r *model.Role) error {
	if err := sys.Detach(p, r); err != nil {
		return err
	}
	t.pushUndo(func() error { return sys.Attach(p, r) })
	return nil
}
