package repair

import (
	"fmt"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
)

// Translator propagates a committed model-level operation to the running
// system (Figure 1, arrow 5). Implementations live in internal/translator.
type Translator interface {
	Apply(op Op) error
}

// TranslatorFunc adapts a function to the Translator interface.
type TranslatorFunc func(op Op) error

// Apply implements Translator.
func (f TranslatorFunc) Apply(op Op) error { return f(op) }

// Record is one engine-level repair attempt, kept for the repair history
// (drawn as the interval bars atop Figures 11–13) and for oscillation
// analysis.
type Record struct {
	Time     float64
	Duration float64 // filled in by the manager once runtime effects land
	Strategy string
	Subject  string
	Applied  []string
	Ops      []Op
	Err      error
	Damped   bool
}

// Engine matches violations to strategies and executes them with commit /
// abort semantics, plus the paper's §5.3 "future work" refinements:
//
//   - settling: after repairing a subject, further repairs on that subject
//     are suppressed for SettleTime seconds ("the effects of a repair on a
//     system will take time ... unnecessary repairs are likely to occur");
//   - oscillation damping: a client moved OscillationMoves times within
//     OscillationWindow gets an extended cooldown (the client ping-pong the
//     paper observed between 600 s and 1200 s);
//   - escalation: when no tactic applies, AlertFn is invoked instead of
//     thrashing ("alert a human observer for manual intervention").
//
// All three default off (zero values) so the baseline engine behaves exactly
// like the paper's prototype.
type Engine struct {
	Sys        *model.System
	Translator Translator
	Funcs      map[string]func([]constraint.Value) (constraint.Value, error)

	SettleTime        float64
	OscillationWindow float64
	OscillationMoves  int
	DampFactor        float64
	AlertFn           func(v constraint.Violation, reason string)
	// Observer, when non-nil, receives every appended record — successful,
	// failed and damped attempts alike — the moment the attempt resolves.
	// The observability plane hangs its repair-decision spans off this hook;
	// nil (the default) costs one comparison per attempt.
	Observer func(rec *Record, v constraint.Violation, now float64)

	strategies map[string]*Strategy
	order      []string
	cooldown   map[string]float64   // subject -> earliest next repair time
	moveTimes  map[string][]float64 // client -> recent move times
	records    []Record
	alerts     int
}

// NewEngine creates an engine over sys that pushes operations through tr.
func NewEngine(sys *model.System, tr Translator) *Engine {
	return &Engine{
		Sys:        sys,
		Translator: tr,
		Funcs:      map[string]func([]constraint.Value) (constraint.Value, error){},
		strategies: map[string]*Strategy{},
		cooldown:   map[string]float64{},
		moveTimes:  map[string][]float64{},
	}
}

// Bind associates a strategy with an invariant name, the runtime analogue of
// the paper's `invariant r : ... !→ fixLatency(r)`.
func (e *Engine) Bind(invariantName string, s *Strategy) {
	if _, dup := e.strategies[invariantName]; !dup {
		e.order = append(e.order, invariantName)
	}
	e.strategies[invariantName] = s
}

// StrategyFor returns the strategy bound to an invariant.
func (e *Engine) StrategyFor(invariantName string) *Strategy { return e.strategies[invariantName] }

// Records returns the repair history.
func (e *Engine) Records() []Record { return e.records }

// Alerts returns how many times the engine escalated to a human.
func (e *Engine) Alerts() int { return e.alerts }

// LastRecord returns a pointer to the most recent record (nil if none), so
// the manager can annotate durations.
func (e *Engine) LastRecord() *Record {
	if len(e.records) == 0 {
		return nil
	}
	return &e.records[len(e.records)-1]
}

func subjectName(v constraint.Violation) string {
	if v.Subject == nil {
		return "system"
	}
	return v.Subject.Name()
}

// finish notifies the observer of the just-appended record and returns it.
func (e *Engine) finish(v constraint.Violation, now float64) *Record {
	rec := e.LastRecord()
	if e.Observer != nil {
		e.Observer(rec, v, now)
	}
	return rec
}

// HandleViolation runs the bound strategy for one violation at time now.
// It returns the record of the attempt, or nil when the violation was
// suppressed (cooldown) or had no bound strategy.
func (e *Engine) HandleViolation(v constraint.Violation, now float64) *Record {
	if v.Invariant == nil {
		return nil
	}
	s := e.strategies[v.Invariant.Name]
	if s == nil {
		return nil
	}
	subj := subjectName(v)
	if until, ok := e.cooldown[subj]; ok && now < until {
		return nil
	}

	txn := NewTxn(e.Sys)
	env := constraint.NewEnv(e.Sys)
	env.Funcs = e.Funcs
	if v.Subject != nil {
		env.Bind("it", constraint.Elem(v.Subject))
	}
	ctx := &Context{Sys: e.Sys, Violation: v, Txn: txn, Env: env, Now: now}

	rec := Record{Time: now, Strategy: s.Name, Subject: subj}
	for _, tac := range s.Tactics {
		applied, err := tac.Script(ctx)
		if err != nil {
			if rbErr := txn.Abort(); rbErr != nil {
				err = fmt.Errorf("%w (and %v)", err, rbErr)
			}
			rec.Err = fmt.Errorf("repair: tactic %s: %w", tac.Name, err)
			rec.Applied = nil
			e.records = append(e.records, rec)
			return e.finish(v, now)
		}
		if !applied {
			continue
		}
		rec.Applied = append(rec.Applied, tac.Name)
		if s.Policy == FirstSuccess {
			break
		}
	}
	if len(rec.Applied) == 0 {
		_ = txn.Abort()
		rec.Err = ErrNoTacticApplied
		e.records = append(e.records, rec)
		e.alerts++
		if e.AlertFn != nil {
			e.AlertFn(v, "no applicable tactic")
		}
		return e.finish(v, now)
	}

	// Propagate to the runtime layer; any failure aborts the model change so
	// model and system stay consistent.
	if e.Translator != nil {
		for _, op := range txn.Ops() {
			if err := e.Translator.Apply(op); err != nil {
				_ = txn.Abort()
				rec.Err = fmt.Errorf("repair: translate %s: %w", op, err)
				rec.Applied = nil
				e.records = append(e.records, rec)
				return e.finish(v, now)
			}
		}
	}
	rec.Ops = txn.Ops()

	// Settling & oscillation damping.
	cool := e.SettleTime
	for _, op := range rec.Ops {
		if op.Kind != OpMoveClient || e.OscillationWindow <= 0 || e.OscillationMoves <= 0 {
			continue
		}
		times := append(e.moveTimes[op.Client], now)
		cutoff := now - e.OscillationWindow
		kept := times[:0]
		for _, t := range times {
			if t >= cutoff {
				kept = append(kept, t)
			}
		}
		e.moveTimes[op.Client] = kept
		if len(kept) >= e.OscillationMoves {
			rec.Damped = true
			factor := e.DampFactor
			if factor < 1 {
				factor = 1
			}
			c := e.SettleTime * factor
			if c <= 0 {
				c = e.OscillationWindow
			}
			if c > cool {
				cool = c
			}
		}
	}
	if cool > 0 {
		e.cooldown[subj] = now + cool
	}
	e.records = append(e.records, rec)
	return e.finish(v, now)
}

// HandleAll processes violations in order, stopping after the first
// successful repair (the paper's prototype "simply chose to repair the first
// client that reported an error"). Sorting/prioritizing happens upstream in
// the manager when the smarter selection extension is enabled.
func (e *Engine) HandleAll(vs []constraint.Violation, now float64) []*Record {
	var out []*Record
	for _, v := range vs {
		r := e.HandleViolation(v, now)
		if r == nil {
			continue
		}
		out = append(out, r)
		if r.Err == nil {
			break
		}
	}
	return out
}
