package repair

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
	"archadapt/internal/sim"
)

func small() *model.System {
	s := model.NewSystem("s", "Fam")
	s.Props().Set("maxLatency", 2.0)
	c := s.AddComponent("cli", "ClientT")
	c.AddPort("request", "RequestT")
	c.Props().Set("averageLatency", 5.0)
	g := s.AddComponent("grp", "ServerGroupT")
	g.AddPort("provide", "ProvideT")
	conn := s.AddConnector("conn", "ReqConnT")
	r := conn.AddRole("cliRole", "ClientRoleT")
	sr := conn.AddRole("server", "ServerRoleT")
	_ = s.Attach(c.Port("request"), r)
	_ = s.Attach(g.Port("provide"), sr)
	return s
}

func TestTxnSetPropRollback(t *testing.T) {
	s := small()
	snap := s.Clone()
	txn := NewTxn(s)
	txn.SetProp(s.Component("cli"), "averageLatency", 1.0)
	txn.SetProp(s.Component("cli"), "newProp", 7.0)
	if v, _ := s.Component("cli").Props().Float("averageLatency"); v != 1.0 {
		t.Fatal("mutation not applied")
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(snap) {
		t.Fatal("rollback did not restore the model")
	}
}

func TestTxnStructuralRollback(t *testing.T) {
	s := small()
	snap := s.Clone()
	txn := NewTxn(s)
	// Perform a composite change like MoveClient does.
	cli := s.Component("cli")
	conn := s.Connector("conn")
	role := conn.Role("cliRole")
	if err := txn.Detach(s, cli.Port("request"), role); err != nil {
		t.Fatal(err)
	}
	if err := txn.RemoveRole(conn, "cliRole"); err != nil {
		t.Fatal(err)
	}
	conn2, err := txn.AddComponent(s, "grp2", "ServerGroupT")
	if err != nil {
		t.Fatal(err)
	}
	_ = conn2
	nr, err := txn.AddRole(conn, "cliRole2", "ClientRoleT")
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Attach(s, cli.Port("request"), nr); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(snap) {
		t.Fatal("structural rollback did not restore the model")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnDoubleAbortIsNoop(t *testing.T) {
	s := small()
	txn := NewTxn(s)
	txn.SetProp(s.Component("cli"), "x", 1.0)
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
}

func latencyViolation(s *model.System) constraint.Violation {
	inv := constraint.MustInvariant("latencyBound", "ClientT", "averageLatency <= maxLatency")
	vs := inv.Check(s, nil, true)
	if len(vs) != 1 {
		panic(fmt.Sprintf("expected 1 violation, got %d", len(vs)))
	}
	return vs[0]
}

func TestStrategyFirstSuccess(t *testing.T) {
	s := small()
	ran := []string{}
	strat := &Strategy{
		Name:   "fix",
		Policy: FirstSuccess,
		Tactics: []*Tactic{
			{Name: "a", Script: func(ctx *Context) (bool, error) { ran = append(ran, "a"); return false, nil }},
			{Name: "b", Script: func(ctx *Context) (bool, error) {
				ran = append(ran, "b")
				ctx.Txn.SetProp(ctx.Sys.Component("cli"), "averageLatency", 0.5)
				return true, nil
			}},
			{Name: "c", Script: func(ctx *Context) (bool, error) { ran = append(ran, "c"); return true, nil }},
		},
	}
	out := strat.Execute(s, latencyViolation(s), nil, 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(ran) != 2 || ran[0] != "a" || ran[1] != "b" {
		t.Fatalf("ran=%v, want [a b]", ran)
	}
	if len(out.Applied) != 1 || out.Applied[0] != "b" {
		t.Fatalf("applied=%v", out.Applied)
	}
	if v, _ := s.Component("cli").Props().Float("averageLatency"); v != 0.5 {
		t.Fatal("committed change missing")
	}
}

func TestStrategyTryAll(t *testing.T) {
	s := small()
	strat := &Strategy{
		Name:   "fix",
		Policy: TryAll,
		Tactics: []*Tactic{
			{Name: "a", Script: func(ctx *Context) (bool, error) {
				ctx.Txn.SetProp(ctx.Sys, "pa", 1.0)
				return true, nil
			}},
			{Name: "b", Script: func(ctx *Context) (bool, error) {
				ctx.Txn.SetProp(ctx.Sys, "pb", 2.0)
				return true, nil
			}},
		},
	}
	out := strat.Execute(s, latencyViolation(s), nil, 0)
	if out.Err != nil || len(out.Applied) != 2 {
		t.Fatalf("outcome %+v", out)
	}
	if !s.Props().Has("pa") || !s.Props().Has("pb") {
		t.Fatal("both tactics should have committed")
	}
}

func TestStrategyAbortRollsBack(t *testing.T) {
	s := small()
	snap := s.Clone()
	strat := &Strategy{
		Name:   "fix",
		Policy: FirstSuccess,
		Tactics: []*Tactic{
			{Name: "a", Script: func(ctx *Context) (bool, error) {
				ctx.Txn.SetProp(ctx.Sys.Component("cli"), "averageLatency", 0.1)
				return false, errors.New("model error")
			}},
		},
	}
	out := strat.Execute(s, latencyViolation(s), nil, 0)
	if out.Err == nil {
		t.Fatal("want error")
	}
	if !s.Equal(snap) {
		t.Fatal("abort did not roll back")
	}
}

func TestStrategyNoTacticApplied(t *testing.T) {
	s := small()
	strat := &Strategy{
		Name:    "fix",
		Policy:  FirstSuccess,
		Tactics: []*Tactic{{Name: "a", Script: func(ctx *Context) (bool, error) { return false, nil }}},
	}
	out := strat.Execute(s, latencyViolation(s), nil, 0)
	if !errors.Is(out.Err, ErrNoTacticApplied) {
		t.Fatalf("err=%v", out.Err)
	}
}

func TestEngineTranslatesOps(t *testing.T) {
	s := small()
	var applied []Op
	eng := NewEngine(s, TranslatorFunc(func(op Op) error {
		applied = append(applied, op)
		return nil
	}))
	eng.Bind("latencyBound", &Strategy{
		Name:   "fix",
		Policy: FirstSuccess,
		Tactics: []*Tactic{{Name: "t", Script: func(ctx *Context) (bool, error) {
			ctx.Txn.SetProp(ctx.Sys.Component("cli"), "averageLatency", 0.5)
			ctx.Txn.Record(Op{Kind: OpMoveClient, Client: "cli", Group: "grp"})
			return true, nil
		}}},
	})
	rec := eng.HandleViolation(latencyViolation(s), 10)
	if rec == nil || rec.Err != nil {
		t.Fatalf("record %+v", rec)
	}
	if len(applied) != 1 || applied[0].Kind != OpMoveClient {
		t.Fatalf("applied=%v", applied)
	}
	if len(eng.Records()) != 1 {
		t.Fatal("history missing")
	}
}

func TestEngineTranslationFailureRollsBack(t *testing.T) {
	s := small()
	snap := s.Clone()
	eng := NewEngine(s, TranslatorFunc(func(op Op) error { return errors.New("rmi failure") }))
	eng.Bind("latencyBound", &Strategy{
		Name:   "fix",
		Policy: FirstSuccess,
		Tactics: []*Tactic{{Name: "t", Script: func(ctx *Context) (bool, error) {
			ctx.Txn.SetProp(ctx.Sys.Component("cli"), "averageLatency", 0.5)
			ctx.Txn.Record(Op{Kind: OpAddServer, Group: "grp", Server: "x"})
			return true, nil
		}}},
	})
	rec := eng.HandleViolation(latencyViolation(s), 0)
	if rec.Err == nil {
		t.Fatal("want translation error")
	}
	if !s.Equal(snap) {
		t.Fatal("failed translation must roll the model back")
	}
}

func TestEngineCooldownSuppresses(t *testing.T) {
	s := small()
	count := 0
	eng := NewEngine(s, nil)
	eng.SettleTime = 30
	eng.Bind("latencyBound", &Strategy{
		Name:   "fix",
		Policy: FirstSuccess,
		Tactics: []*Tactic{{Name: "t", Script: func(ctx *Context) (bool, error) {
			count++
			return true, nil
		}}},
	})
	v := latencyViolation(s)
	if eng.HandleViolation(v, 0) == nil {
		t.Fatal("first repair should run")
	}
	if eng.HandleViolation(v, 10) != nil {
		t.Fatal("repair inside settle window should be suppressed")
	}
	if eng.HandleViolation(v, 31) == nil {
		t.Fatal("repair after settle window should run")
	}
	if count != 2 {
		t.Fatalf("count=%d", count)
	}
}

func TestEngineOscillationDamping(t *testing.T) {
	s := small()
	eng := NewEngine(s, nil)
	eng.SettleTime = 10
	eng.OscillationWindow = 100
	eng.OscillationMoves = 3
	eng.DampFactor = 10
	eng.Bind("latencyBound", &Strategy{
		Name:   "fix",
		Policy: FirstSuccess,
		Tactics: []*Tactic{{Name: "t", Script: func(ctx *Context) (bool, error) {
			ctx.Txn.Record(Op{Kind: OpMoveClient, Client: "cli", Group: "grp"})
			return true, nil
		}}},
	})
	v := latencyViolation(s)
	times := []float64{0, 20, 40}
	for _, at := range times {
		rec := eng.HandleViolation(v, at)
		if rec == nil {
			t.Fatalf("repair at %v suppressed unexpectedly", at)
		}
		if at == 40 && !rec.Damped {
			t.Fatal("third move within window should be damped")
		}
	}
	// Damped cooldown = SettleTime * DampFactor = 100s from t=40.
	if eng.HandleViolation(v, 60) != nil {
		t.Fatal("damped client should be suppressed at t=60")
	}
	if eng.HandleViolation(v, 141) == nil {
		t.Fatal("damped cooldown should expire by t=141")
	}
}

func TestEngineAlertOnNoTactic(t *testing.T) {
	s := small()
	alerted := 0
	eng := NewEngine(s, nil)
	eng.AlertFn = func(v constraint.Violation, reason string) { alerted++ }
	eng.Bind("latencyBound", &Strategy{
		Name:    "fix",
		Policy:  FirstSuccess,
		Tactics: []*Tactic{{Name: "t", Script: func(ctx *Context) (bool, error) { return false, nil }}},
	})
	rec := eng.HandleViolation(latencyViolation(s), 0)
	if !errors.Is(rec.Err, ErrNoTacticApplied) {
		t.Fatalf("err=%v", rec.Err)
	}
	if alerted != 1 || eng.Alerts() != 1 {
		t.Fatalf("alerted=%d", alerted)
	}
}

func TestEngineUnboundInvariantIgnored(t *testing.T) {
	s := small()
	eng := NewEngine(s, nil)
	if rec := eng.HandleViolation(latencyViolation(s), 0); rec != nil {
		t.Fatal("unbound invariant should be ignored")
	}
}

func TestHandleAllStopsAfterSuccess(t *testing.T) {
	s := small()
	c2 := s.AddComponent("cli2", "ClientT")
	c2.AddPort("request", "RequestT")
	c2.Props().Set("averageLatency", 9.0)
	inv := constraint.MustInvariant("latencyBound", "ClientT", "averageLatency <= maxLatency")
	vs := inv.Check(s, nil, true)
	if len(vs) != 2 {
		t.Fatalf("violations=%d", len(vs))
	}
	fixed := []string{}
	eng := NewEngine(s, nil)
	eng.Bind("latencyBound", &Strategy{
		Name:   "fix",
		Policy: FirstSuccess,
		Tactics: []*Tactic{{Name: "t", Script: func(ctx *Context) (bool, error) {
			fixed = append(fixed, ctx.Violation.Subject.Name())
			return true, nil
		}}},
	})
	recs := eng.HandleAll(vs, 0)
	if len(recs) != 1 || len(fixed) != 1 {
		t.Fatalf("recs=%d fixed=%v — should stop after first success", len(recs), fixed)
	}
}

// Property: any random interleaving of transactional mutations rolls back to
// an Equal model.
func TestTxnRollbackProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		s := small()
		snap := s.Clone()
		txn := NewTxn(s)
		for i := 0; i < 1+rng.Intn(15); i++ {
			switch rng.Intn(5) {
			case 0:
				txn.SetProp(s.Component("cli"), "averageLatency", rng.Float64()*10)
			case 1:
				name := fmt.Sprintf("c%d", rng.Intn(1000))
				if s.Component(name) == nil {
					_, _ = txn.AddComponent(s, name, "ClientT")
				}
			case 2:
				conn := s.Connector("conn")
				name := fmt.Sprintf("r%d", rng.Intn(1000))
				if conn.Role(name) == nil {
					_, _ = txn.AddRole(conn, name, "ClientRoleT")
				}
			case 3:
				txn.SetProp(s, fmt.Sprintf("p%d", rng.Intn(5)), rng.Float64())
			case 4:
				// detach+reattach the client
				cli := s.Component("cli")
				role := s.Connector("conn").Role("cliRole")
				if role != nil && s.Attached(cli.Port("request"), role) {
					_ = txn.Detach(s, cli.Port("request"), role)
				} else if role != nil {
					_ = txn.Attach(s, cli.Port("request"), role)
				}
			}
		}
		if err := txn.Abort(); err != nil {
			return false
		}
		return s.Equal(snap) && s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
