package repair

import (
	"errors"
	"fmt"

	"archadapt/internal/constraint"
	"archadapt/internal/model"
)

// Context is what a tactic sees: the live model (via the transaction), the
// triggering violation, and an expression environment for architecture
// queries (select/connected/attached plus style-specific functions such as
// findGoodSGrp).
type Context struct {
	Sys       *model.System
	Violation constraint.Violation
	Txn       *Txn
	Env       *constraint.Env
	Now       float64
}

// Query evaluates a constraint-language expression against the model with
// `it` bound to the violation subject.
func (c *Context) Query(src string) (constraint.Value, error) {
	e, err := constraint.Parse(src)
	if err != nil {
		return constraint.Nil(), err
	}
	return constraint.Eval(e, c.Env)
}

// QueryBool is Query for boolean expressions.
func (c *Context) QueryBool(src string) (bool, error) {
	v, err := c.Query(src)
	if err != nil {
		return false, err
	}
	return v.Truthy()
}

// Tactic is one guarded repair (Fig. 5: fixServerLoad, fixBandwidth). Its
// precondition pinpoints the cause; its script mutates the model through the
// transaction. Script returning (false, nil) means the tactic examined the
// system and concluded it does not apply — the strategy moves on. An error
// aborts the whole strategy (the paper's `abort ModelError`).
type Tactic struct {
	Name string
	// Script runs the guarded repair. It returns whether the tactic applied.
	Script func(ctx *Context) (bool, error)
}

// Policy selects how a strategy sequences its tactics.
type Policy int

// Strategy policies (§3.2: "It might apply the first tactic that succeeds.
// Alternatively, it might sequence through all of the tactics.").
const (
	FirstSuccess Policy = iota
	TryAll
)

// Strategy is an ordered list of tactics bound to a constraint.
type Strategy struct {
	Name    string
	Policy  Policy
	Tactics []*Tactic
}

// ErrNoTacticApplied reports that every tactic declined: the situation the
// paper flags for human escalation ("it may be necessary to alert a human
// observer", §7).
var ErrNoTacticApplied = errors.New("repair: no applicable tactic")

// Outcome describes one strategy execution.
type Outcome struct {
	Strategy string
	// Applied lists the names of tactics whose scripts ran to completion.
	Applied []string
	// Ops are the committed semantic operations (empty when aborted).
	Ops []Op
	// Err is nil on commit; ErrNoTacticApplied or a script error on abort.
	Err error
}

// Execute runs the strategy transactionally: on success the transaction's
// ops are returned for translation; on failure the model is rolled back.
func (s *Strategy) Execute(sys *model.System, v constraint.Violation, funcs map[string]func([]constraint.Value) (constraint.Value, error), now float64) Outcome {
	txn := NewTxn(sys)
	env := constraint.NewEnv(sys)
	if funcs != nil {
		env.Funcs = funcs
	}
	if v.Subject != nil {
		env.Bind("it", constraint.Elem(v.Subject))
	}
	ctx := &Context{Sys: sys, Violation: v, Txn: txn, Env: env, Now: now}
	out := Outcome{Strategy: s.Name}
	for _, tac := range s.Tactics {
		applied, err := tac.Script(ctx)
		if err != nil {
			if rbErr := txn.Abort(); rbErr != nil {
				err = fmt.Errorf("%w (and %v)", err, rbErr)
			}
			out.Err = fmt.Errorf("repair: tactic %s: %w", tac.Name, err)
			out.Applied = nil
			return out
		}
		if !applied {
			continue
		}
		out.Applied = append(out.Applied, tac.Name)
		if s.Policy == FirstSuccess {
			break
		}
	}
	if len(out.Applied) == 0 {
		_ = txn.Abort()
		out.Err = ErrNoTacticApplied
		return out
	}
	out.Ops = txn.Ops()
	return out
}
