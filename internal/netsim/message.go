package netsim

import "archadapt/internal/sim"

// Priority selects how a control message competes with data traffic.
type Priority int

const (
	// BestEffort messages share the network with data and competition
	// traffic: their latency grows as available bandwidth shrinks. This is
	// the paper's deployed configuration ("the same network is being used to
	// monitor the system as to run it").
	BestEffort Priority = iota
	// Prioritized messages ride a QoS-protected class and see full link
	// capacity regardless of congestion — the mitigation the paper proposes
	// in §5.3. Implemented as the ablation BenchmarkAblationMonitoringQoS.
	Prioritized
)

// MsgStats accumulates control-message accounting.
type MsgStats struct {
	Sent     uint64
	Bits     float64
	TotalLag float64 // summed delivery delays
	MaxLag   float64
	Dropped  uint64
}

// msgStats is exported via Network.MessageStats.
var _ = MsgStats{}

// MessageStats returns cumulative control-plane statistics.
func (n *Network) MessageStats() MsgStats { return n.msgStats }

// DropRate (0..1) drops that fraction of best-effort control messages,
// deterministically via the supplied RNG. Used for failure-injection tests of
// the monitoring stack.
func (n *Network) SetDrop(rate float64, rng *sim.Rand) {
	n.dropRate = rate
	n.dropRNG = rng
}

// SendMessage delivers a small control message of the given size after the
// path's current delay and invokes fn on arrival (fn may be nil for
// fire-and-forget accounting). It returns the modeled delay.
//
// Control messages do not open elastic flows: RPC calls, probe observations
// and gauge reports are tiny compared to data transfers, but their latency
// must still reflect congestion, because the paper's §5.3 lag between "the
// bandwidth actually rises and the time it is noticed" comes from exactly
// this coupling.
func (n *Network) SendMessage(src, dst NodeID, bits float64, prio Priority, fn func()) float64 {
	delay := n.MessageDelay(src, dst, bits, prio)
	if n.dropRate > 0 && prio == BestEffort && n.dropRNG != nil && n.dropRNG.Float64() < n.dropRate {
		n.msgStats.Dropped++
		return delay
	}
	n.msgStats.Sent++
	n.msgStats.Bits += bits
	n.msgStats.TotalLag += delay
	if delay > n.msgStats.MaxLag {
		n.msgStats.MaxLag = delay
	}
	if fn != nil {
		n.deliver(src, dst, delay, fn, nil, nil)
	}
	return delay
}

// SendMessageTo is SendMessage with a closure-free callback: fn is a static
// function and arg its pre-bound receiver, so high-rate senders (the event
// bus's batched dispatch) schedule deliveries without allocating. Semantics
// are otherwise identical to SendMessage.
func (n *Network) SendMessageTo(src, dst NodeID, bits float64, prio Priority, fn func(any), arg any) float64 {
	delay := n.MessageDelay(src, dst, bits, prio)
	n.SendPrecomputed(src, dst, delay, bits, prio, fn, arg)
	return delay
}

// SendPrecomputed records and schedules a control message whose delay the
// caller already computed via MessageDelay — the batched-dispatch fast path,
// which lets one dispatch pass reuse a delay across same-destination sends at
// the same instant. src and dst identify the endpoints for region-sharded
// event hosting (the delivery fires on dst's shard kernel); the delay is
// taken as given. It is semantically identical to SendMessageTo with that
// delay.
func (n *Network) SendPrecomputed(src, dst NodeID, delay, bits float64, prio Priority, fn func(any), arg any) {
	if n.dropRate > 0 && prio == BestEffort && n.dropRNG != nil && n.dropRNG.Float64() < n.dropRate {
		n.msgStats.Dropped++
		return
	}
	n.msgStats.Sent++
	n.msgStats.Bits += bits
	n.msgStats.TotalLag += delay
	if delay > n.msgStats.MaxLag {
		n.msgStats.MaxLag = delay
	}
	if fn != nil {
		n.deliver(src, dst, delay, nil, fn, arg)
	}
}

// MessageDelay computes the current delivery delay for a control message
// without sending it.
func (n *Network) MessageDelay(src, dst NodeID, bits float64, prio Priority) float64 {
	if src == dst {
		return 1e-5
	}
	path := n.route(src, dst)
	delay := 0.0
	for _, h := range path {
		l := n.links[h.link]
		bw := l.Capacity
		if prio == BestEffort {
			bw = l.availCap(h.dir)
			if bw < n.CtrlFloor {
				bw = n.CtrlFloor
			}
		}
		delay += l.PropDelay + n.CtrlPerHopOverhead + bits/bw
	}
	return delay
}
