package netsim

import (
	"fmt"

	"archadapt/internal/sim"
)

// GridSpec parameterizes a generated grid topology. It scales the paper's
// Figure 6 testbed — a chain of routers with a cross link and a handful of
// hosts per router — up to arbitrary sizes: Routers routers in a chain, each
// with HostsPerRouter hosts hanging off it, plus CrossLinks seeded chords
// that give the backbone the kind of alternate paths repairs exploit.
type GridSpec struct {
	// Routers is the backbone length (Figure 6: 5). Minimum 1.
	Routers int
	// HostsPerRouter is the number of hosts attached to each router
	// (Figure 6 averages ≈2). Minimum 1.
	HostsPerRouter int

	// BackboneBps and AccessBps are per-direction link capacities; zero
	// defaults to the testbed's 10 Mbps.
	BackboneBps float64
	AccessBps   float64
	// PropDelay is the per-traversal propagation delay; zero defaults to
	// 1 ms, matching the testbed wiring.
	PropDelay float64

	// CrossLinks is the number of extra backbone chords beyond the chain
	// (Figure 6 has one, R2–R4). Zero defaults to Routers/4; negative means
	// none. Chord endpoints are drawn from Seed, so a spec is a complete,
	// reproducible description of the topology.
	CrossLinks int
	// Seed drives chord selection.
	Seed uint64
}

// withDefaults resolves zero fields to the testbed-scale defaults.
func (s GridSpec) withDefaults() GridSpec {
	if s.Routers < 1 {
		s.Routers = 1
	}
	if s.HostsPerRouter < 1 {
		s.HostsPerRouter = 1
	}
	if s.BackboneBps <= 0 {
		s.BackboneBps = 10e6
	}
	if s.AccessBps <= 0 {
		s.AccessBps = 10e6
	}
	if s.PropDelay <= 0 {
		s.PropDelay = 1e-3
	}
	if s.CrossLinks == 0 {
		s.CrossLinks = s.Routers / 4
	}
	if s.CrossLinks < 0 {
		s.CrossLinks = 0
	}
	return s
}

// Grid is a generated topology: the network plus the structure the fleet
// scheduler needs (which hosts exist, which router each hangs off, and each
// host's access link for targeted contention).
type Grid struct {
	Net  *Network
	Spec GridSpec // resolved (defaults filled in)

	Routers []NodeID
	// Hosts lists every host in creation order: router-major, then host
	// index. Placement iterates this order, which makes placement
	// deterministic.
	Hosts         []NodeID
	HostsByRouter [][]NodeID
	// Backbone lists the chain links followed by the chords.
	Backbone []LinkID

	routerOf  map[NodeID]NodeID
	routerIdx map[NodeID]int
	access    map[NodeID]LinkID
}

// GenerateGrid builds a grid topology on a fresh network bound to k.
// Routers are named R1..Rn and hosts RiHj. The same spec always produces
// the same topology.
func GenerateGrid(k *sim.Kernel, spec GridSpec) *Grid {
	spec = spec.withDefaults()
	g := &Grid{
		Net:       New(k),
		Spec:      spec,
		routerOf:  map[NodeID]NodeID{},
		routerIdx: map[NodeID]int{},
		access:    map[NodeID]LinkID{},
	}
	for i := 0; i < spec.Routers; i++ {
		g.Routers = append(g.Routers, g.Net.AddRouter(fmt.Sprintf("R%d", i+1)))
	}
	for i, r := range g.Routers {
		var hosts []NodeID
		for j := 0; j < spec.HostsPerRouter; j++ {
			h := g.Net.AddHost(fmt.Sprintf("R%dH%d", i+1, j+1))
			g.access[h] = g.Net.Connect(h, r, spec.AccessBps, spec.PropDelay)
			g.routerOf[h] = r
			g.routerIdx[h] = i
			hosts = append(hosts, h)
			g.Hosts = append(g.Hosts, h)
		}
		g.HostsByRouter = append(g.HostsByRouter, hosts)
	}
	// Backbone chain R1–R2–…–Rn.
	for i := 0; i+1 < spec.Routers; i++ {
		g.Backbone = append(g.Backbone,
			g.Net.Connect(g.Routers[i], g.Routers[i+1], spec.BackboneBps, spec.PropDelay))
	}
	// Seeded chords (skipping chain-adjacent and duplicate pairs).
	if spec.Routers >= 4 && spec.CrossLinks > 0 {
		rng := sim.NewRand(spec.Seed ^ 0xc2b2ae3d27d4eb4f)
		used := map[[2]int]bool{}
		placed := 0
		for tries := 0; placed < spec.CrossLinks && tries < 64*spec.CrossLinks; tries++ {
			i := rng.Intn(spec.Routers - 2)
			j := i + 2 + rng.Intn(spec.Routers-i-2)
			if used[[2]int{i, j}] {
				continue
			}
			used[[2]int{i, j}] = true
			g.Backbone = append(g.Backbone,
				g.Net.Connect(g.Routers[i], g.Routers[j], spec.BackboneBps, spec.PropDelay))
			placed++
		}
	}
	return g
}

// RouterOf returns the router a host hangs off.
func (g *Grid) RouterOf(h NodeID) NodeID { return g.routerOf[h] }

// RouterIndex returns the 0-based region index of a host's router (the
// index into Routers and HostsByRouter), or -1 for a node that is not a
// grid host. Region-indexed structures (the fleet's region-health index)
// key off it.
func (g *Grid) RouterIndex(h NodeID) int {
	if i, ok := g.routerIdx[h]; ok {
		return i
	}
	return -1
}

// AccessLink returns a host's access link (for targeted contention).
func (g *Grid) AccessLink(h NodeID) LinkID { return g.access[h] }

// NumHosts returns the host count.
func (g *Grid) NumHosts() int { return len(g.Hosts) }

// String summarizes the topology.
func (g *Grid) String() string {
	return fmt.Sprintf("grid{routers=%d hosts=%d links=%d backbone=%d}",
		len(g.Routers), len(g.Hosts), g.Net.NumLinks(), len(g.Backbone))
}
