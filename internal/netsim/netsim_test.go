package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"archadapt/internal/sim"
)

// line builds a -- r -- b with 10 Mbps links.
func line(t *testing.T) (*sim.Kernel, *Network, NodeID, NodeID, LinkID, LinkID) {
	t.Helper()
	k := sim.NewKernel()
	n := New(k)
	a := n.AddHost("a")
	r := n.AddRouter("r")
	b := n.AddHost("b")
	l1 := n.Connect(a, r, 10e6, 1e-3)
	l2 := n.Connect(r, b, 10e6, 1e-3)
	return k, n, a, b, l1, l2
}

func TestSingleTransferTime(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	doneAt := -1.0
	n.StartTransfer(a, b, 10e6, "x", func(*Flow) { doneAt = k.Now() })
	k.RunAll(0)
	// 10 Mbit over a 10 Mbps path: 1 second.
	if math.Abs(doneAt-1.0) > 1e-6 {
		t.Fatalf("transfer finished at %v, want 1.0", doneAt)
	}
}

func TestTwoTransfersShareFairly(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	var done []float64
	for i := 0; i < 2; i++ {
		n.StartTransfer(a, b, 10e6, "x", func(*Flow) { done = append(done, k.Now()) })
	}
	k.RunAll(0)
	// Two equal flows share 10 Mbps: each gets 5 Mbps, both finish at 2 s.
	if len(done) != 2 {
		t.Fatalf("completed %d", len(done))
	}
	for _, d := range done {
		if math.Abs(d-2.0) > 1e-6 {
			t.Fatalf("finish times %v, want both 2.0", done)
		}
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	var bigDone float64
	n.StartTransfer(a, b, 10e6, "big", func(*Flow) { bigDone = k.Now() })
	n.StartTransfer(a, b, 2.5e6, "small", nil)
	k.RunAll(0)
	// Both share 5 Mbps until small (2.5 Mbit) completes at t=0.5 having used
	// 2.5 Mbit; big then has 7.5 Mbit left at 10 Mbps: 0.75 s more = 1.25 s.
	if math.Abs(bigDone-1.25) > 1e-6 {
		t.Fatalf("big finished at %v, want 1.25", bigDone)
	}
}

func TestBackgroundLoadSlowsTransfer(t *testing.T) {
	k, n, a, b, l1, _ := line(t)
	n.SetBackgroundBoth(l1, 8e6) // 2 Mbps left
	var done float64
	n.StartTransfer(a, b, 2e6, "x", func(*Flow) { done = k.Now() })
	k.RunAll(0)
	if math.Abs(done-1.0) > 1e-6 {
		t.Fatalf("done at %v, want 1.0 (2 Mbit over 2 Mbps)", done)
	}
}

func TestBackgroundChangeMidFlight(t *testing.T) {
	k, n, a, b, l1, _ := line(t)
	var done float64
	n.StartTransfer(a, b, 10e6, "x", func(*Flow) { done = k.Now() })
	// At t=0.5 (5 Mbit sent), competition takes 5 Mbps; remaining 5 Mbit at
	// 5 Mbps takes 1 s more: total 1.5 s.
	k.At(0.5, func() { n.SetBackgroundBoth(l1, 5e6) })
	k.RunAll(0)
	if math.Abs(done-1.5) > 1e-6 {
		t.Fatalf("done at %v, want 1.5", done)
	}
}

func TestDirectionalBackground(t *testing.T) {
	k, n, a, b, l1, _ := line(t)
	// Crush only the reverse direction (b→a); a→b unaffected.
	n.SetBackground(l1, Rev, 10e6)
	var fwdDone, revDone float64
	n.StartTransfer(a, b, 10e6, "fwd", func(*Flow) { fwdDone = k.Now() })
	n.StartTransfer(b, a, 1e4, "rev", func(*Flow) { revDone = k.Now() })
	k.RunAll(0)
	if math.Abs(fwdDone-1.0) > 1e-6 {
		t.Fatalf("fwd done at %v, want 1.0", fwdDone)
	}
	// rev crawls at MinFlowRate (100 bps): 1e4 bits -> 100 s.
	if math.Abs(revDone-100.0) > 1e-3 {
		t.Fatalf("rev done at %v, want ~100", revDone)
	}
}

func TestAvailBandwidth(t *testing.T) {
	_, n, a, b, l1, l2 := line(t)
	if got := n.AvailBandwidth(a, b); math.Abs(got-10e6) > 1 {
		t.Fatalf("avail=%v, want 10e6", got)
	}
	n.SetBackgroundBoth(l1, 4e6)
	n.SetBackgroundBoth(l2, 7e6)
	if got := n.AvailBandwidth(a, b); math.Abs(got-3e6) > 1 {
		t.Fatalf("avail=%v, want bottleneck 3e6", got)
	}
	n.SetBackgroundBoth(l2, 10e6)
	if got := n.AvailBandwidth(a, b); got != n.MinFlowRate {
		t.Fatalf("avail=%v, want floor %v", got, n.MinFlowRate)
	}
}

func TestSameHostTransfer(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddHost("a")
	var done float64
	n.StartTransfer(a, a, 1e9, "local", func(*Flow) { done = k.Now() })
	k.RunAll(0)
	if done <= 0 || done > 1e-3 {
		t.Fatalf("local transfer took %v, want sub-millisecond", done)
	}
}

func TestMessageDelayGrowsUnderCongestion(t *testing.T) {
	_, n, a, b, l1, _ := line(t)
	fast := n.MessageDelay(a, b, 8000, BestEffort)
	n.SetBackgroundBoth(l1, 10e6)
	slow := n.MessageDelay(a, b, 8000, BestEffort)
	if slow < 100*fast {
		t.Fatalf("congested delay %v not much larger than idle %v", slow, fast)
	}
	prio := n.MessageDelay(a, b, 8000, Prioritized)
	if math.Abs(prio-fast) > 1e-6 {
		t.Fatalf("prioritized delay %v should match idle %v", prio, fast)
	}
}

func TestMessageDelivery(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	got := -1.0
	d := n.SendMessage(a, b, 8000, BestEffort, func() { got = k.Now() })
	k.RunAll(0)
	if math.Abs(got-d) > 1e-9 {
		t.Fatalf("delivered at %v, reported delay %v", got, d)
	}
	st := n.MessageStats()
	if st.Sent != 1 || st.Bits != 8000 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMessageDrop(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	n.SetDrop(1.0, sim.NewRand(1))
	delivered := false
	n.SendMessage(a, b, 100, BestEffort, func() { delivered = true })
	k.RunAll(0)
	if delivered {
		t.Fatal("message delivered despite 100% drop")
	}
	if n.MessageStats().Dropped != 1 {
		t.Fatalf("dropped=%d", n.MessageStats().Dropped)
	}
}

func TestCancelTransfer(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	called := false
	f := n.StartTransfer(a, b, 10e6, "x", func(*Flow) { called = true })
	k.At(0.5, func() { f.Cancel() })
	k.RunAll(0)
	if called {
		t.Fatal("cancelled flow invoked done")
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("flows remain: %d", n.ActiveFlows())
	}
}

func TestRoutingPrefersShortPath(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	// a - r1 - r2 - b  plus direct r1 - b shortcut.
	a := n.AddHost("a")
	r1 := n.AddRouter("r1")
	r2 := n.AddRouter("r2")
	b := n.AddHost("b")
	n.Connect(a, r1, 10e6, 1e-3)
	n.Connect(r1, r2, 10e6, 1e-3)
	n.Connect(r2, b, 10e6, 1e-3)
	n.Connect(r1, b, 10e6, 1e-3)
	if hops := n.PathHops(a, b); hops != 2 {
		t.Fatalf("path hops=%d, want 2 via shortcut", hops)
	}
}

func TestNoRoutePanics(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddHost("a")
	b := n.AddHost("b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for partitioned nodes")
		}
	}()
	n.StartTransfer(a, b, 1, "x", nil)
}

// buildRandomNet builds a connected random topology with f flows, then
// checks max–min invariants.
func maxMinInvariants(seed uint64) bool {
	rng := sim.NewRand(seed)
	k := sim.NewKernel()
	n := New(k)
	nHosts := 3 + rng.Intn(5)
	nodes := make([]NodeID, 0, nHosts)
	for i := 0; i < nHosts; i++ {
		nodes = append(nodes, n.AddHost(string(rune('a'+i))))
	}
	// Spanning chain + random extra links.
	caps := map[LinkID]float64{}
	for i := 1; i < nHosts; i++ {
		c := 1e6 * float64(1+rng.Intn(10))
		id := n.Connect(nodes[i-1], nodes[i], c, 1e-3)
		caps[id] = c
	}
	for e := 0; e < rng.Intn(4); e++ {
		i, j := rng.Intn(nHosts), rng.Intn(nHosts)
		if i == j {
			continue
		}
		if _, dup := n.LinkBetween(nodes[i], nodes[j]); dup {
			continue
		}
		c := 1e6 * float64(1+rng.Intn(10))
		id := n.Connect(nodes[i], nodes[j], c, 1e-3)
		caps[id] = c
	}
	// Random background loads.
	for id := range caps {
		if rng.Float64() < 0.3 {
			n.SetBackgroundBoth(id, caps[id]*rng.Float64())
		}
	}
	// Random flows.
	nFlows := 1 + rng.Intn(12)
	flows := make([]*Flow, 0, nFlows)
	for i := 0; i < nFlows; i++ {
		s, d := rng.Intn(nHosts), rng.Intn(nHosts)
		if s == d {
			continue
		}
		flows = append(flows, n.StartTransfer(nodes[s], nodes[d], 1e12, "p", nil))
	}
	if len(flows) == 0 {
		return true
	}
	// Invariant 1: every flow has a positive rate.
	for _, f := range flows {
		if f.Rate() <= 0 {
			return false
		}
	}
	// Invariant 2: no (link,dir) oversubscribed beyond avail + per-flow floor
	// slack (floor rates may legitimately exceed a saturated link's avail).
	type key struct {
		l LinkID
		d Dir
	}
	sum := map[key]float64{}
	cnt := map[key]int{}
	for _, f := range flows {
		for _, h := range f.path {
			sum[key{h.link, h.dir}] += f.Rate()
			cnt[key{h.link, h.dir}]++
		}
	}
	for kk, s := range sum {
		avail := n.Link(kk.l).availCap(kk.d)
		slack := float64(cnt[kk]) * n.MinFlowRate
		if s > avail+slack+1e-6 {
			return false
		}
	}
	// Invariant 3 (bottleneck condition): each flow crosses some saturated
	// link where its rate is >= every other flow's rate on that link.
	for _, f := range flows {
		ok := false
		for _, h := range f.path {
			kk := key{h.link, h.dir}
			avail := n.Link(kk.l).availCap(kk.d)
			saturated := sum[kk] >= avail-1e-6 || avail < n.MinFlowRate*float64(cnt[kk])
			if !saturated {
				continue
			}
			isMax := true
			for _, g := range flows {
				for _, hh := range g.path {
					if hh.link == kk.l && hh.dir == kk.d && g.Rate() > f.Rate()+1e-6 {
						isMax = false
					}
				}
			}
			if isMax {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestMaxMinProperties(t *testing.T) {
	if err := quick.Check(maxMinInvariants, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinDeterminism(t *testing.T) {
	run := func() []float64 {
		k := sim.NewKernel()
		n := New(k)
		a := n.AddHost("a")
		r := n.AddRouter("r")
		b := n.AddHost("b")
		c := n.AddHost("c")
		n.Connect(a, r, 10e6, 1e-3)
		n.Connect(r, b, 10e6, 1e-3)
		n.Connect(r, c, 4e6, 1e-3)
		fs := []*Flow{
			n.StartTransfer(a, b, 1e12, "1", nil),
			n.StartTransfer(a, c, 1e12, "2", nil),
			n.StartTransfer(b, c, 1e12, "3", nil),
		}
		out := make([]float64, len(fs))
		for i, f := range fs {
			out[i] = f.Rate()
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("non-deterministic rates: %v vs %v", x, y)
		}
	}
}

func TestBottleneckShareProbe(t *testing.T) {
	_, n, a, b, _, _ := line(t)
	n.StartTransfer(a, b, 1e12, "bg", nil)
	share := n.BottleneckShare(a, b)
	if math.Abs(share-5e6) > 1 {
		t.Fatalf("probe share=%v, want 5e6 (half of 10 Mbps)", share)
	}
	if n.ActiveFlows() != 1 {
		t.Fatalf("probe flow leaked: %d active", n.ActiveFlows())
	}
}

func TestCancelFreezesRemaining(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	f := n.StartTransfer(a, b, 10e6, "x", nil)
	k.At(0.5, func() { f.Cancel() })
	k.RunAll(0)
	// 5 Mbit were sent by t=0.5 at 10 Mbps; after Cancel the handle must
	// freeze there instead of extrapolating phantom progress.
	if got := f.Remaining(); math.Abs(got-5e6) > 1 {
		t.Fatalf("remaining after cancel=%v, want 5e6", got)
	}
	if f.Rate() != 0 {
		t.Fatalf("rate after cancel=%v, want 0", f.Rate())
	}
}
