package netsim

// Class flows: persistent, demand-capped transfers modeling the aggregate
// traffic of an open-loop flow class (up to 10^6 users behind one flow).
//
// A class flow differs from a bulk transfer in two ways:
//
//   - It never completes. There is no size and no completion event; the
//     solver accumulates delivered bits instead of draining a remaining
//     count, so a class costs O(1) solver state no matter how many modeled
//     users it aggregates.
//   - Its max–min allocation is capped at its offered demand (bits/sec).
//     Progressive filling freezes a demand-capped flow at its demand
//     whenever the fair share reaches it, returning the residual capacity
//     to the elastic flows on the same links — the standard max–min
//     extension for rate-limited sources. Components with no demand-capped
//     flows execute the original fill arithmetic unchanged, so runs without
//     class flows stay byte-identical.
//
// Demand is adjusted in place with SetDemand as the arrival process evolves;
// each change dirties only the flow's own path, so the incremental solver
// re-fills only the affected components.

// StartClassFlow opens a persistent, demand-capped flow carrying the
// aggregate offered load of an open-loop class between two endpoints.
// demand is the offered rate in bits/sec (≥ 0; a zero-demand class stays
// registered but idle). Same-host classes bypass the solver entirely: local
// IPC is modeled as infinitely fast, so they deliver at exactly their
// offered demand.
func (n *Network) StartClassFlow(src, dst NodeID, demand float64, tag string) *Flow {
	if demand < 0 {
		demand = 0
	}
	f := &Flow{
		id:         n.nextFlow,
		Src:        src,
		Dst:        dst,
		Tag:        tag,
		path:       n.route(src, dst),
		index:      -1,
		last:       n.K.Now(),
		net:        n,
		started:    n.K.Now(),
		k:          n.kernelFor(dst),
		persistent: true,
		limited:    true,
		demand:     demand,
	}
	n.nextFlow++
	if len(f.path) == 0 {
		f.rate = demand
		return f
	}
	f.index = len(n.flows)
	n.flows = append(n.flows, f)
	n.linkFlow(f)
	n.solve()
	return f
}

// Demand returns the flow's current offered rate cap in bits/sec.
func (f *Flow) Demand() float64 { return f.demand }

// Persistent reports whether this is a class flow (never completes).
func (f *Flow) Persistent() bool { return f.persistent }

// SetDemand changes a class flow's offered rate. The flow's path is dirtied
// and re-solved (or deferred to the enclosing Batch), settling delivered
// bits for every flow whose allocation shifts. Calling SetDemand on a
// cancelled flow or a non-class flow is a no-op.
func (f *Flow) SetDemand(demand float64) {
	if !f.limited || f.cancelled {
		return
	}
	if demand < 0 {
		demand = 0
	}
	if demand == f.demand {
		return
	}
	f.demand = demand
	if len(f.path) == 0 {
		// Local class: rate tracks demand directly; settle first so
		// Delivered() accounting stays exact across the change.
		now := f.net.K.Now()
		if dt := now - f.last; dt > 0 {
			f.delivered += f.rate * dt
		}
		f.last = now
		f.rate = demand
		return
	}
	for _, h := range f.path {
		f.net.markDirty(resIndex(h))
	}
	f.net.solve()
}

// Delivered returns the total bits this class flow has delivered so far.
// Like Remaining, progress is settled lazily; the accessor folds in time
// elapsed at the current rate.
func (f *Flow) Delivered() float64 {
	d := f.delivered
	if f.net != nil && !f.cancelled {
		if dt := f.net.K.Now() - f.last; dt > 0 {
			d += f.rate * dt
		}
	}
	return d
}
