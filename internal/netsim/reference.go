package netsim

import (
	"fmt"
	"math"
)

// VerifyReference re-solves the whole network with the retained global
// oracle (ReferenceRates) and compares every active flow's incremental rate
// against it, within relative tolerance tol. It is the component-
// decomposition equivalence check the chaos soak harness spot-checks mid-run:
// if the region-partitioned incremental solver ever drifts from the global
// progressive-filling answer, the first diverging flow is reported.
func (n *Network) VerifyReference(tol float64) error {
	ref := n.ReferenceRates()
	for _, f := range n.flows {
		if len(f.path) == 0 {
			continue
		}
		want := ref[f]
		got := f.rate
		scale := math.Max(math.Abs(got), math.Abs(want))
		if math.Abs(got-want) > tol*math.Max(scale, 1) {
			return fmt.Errorf("netsim: flow %d rate %g diverges from reference %g (rel err %.3g)",
				f.id, got, want, math.Abs(got-want)/math.Max(scale, 1))
		}
	}
	return nil
}

// ReferenceRates computes every active flow's max–min fair rate with the
// original global progressive-filling algorithm — maps, fresh slices, all
// flows and links considered on every call. It mutates nothing: rates are
// returned keyed by flow. Retained purely as the oracle for the incremental
// solver's equivalence tests; production code uses solveDirty (regions.go).
func (n *Network) ReferenceRates() map[*Flow]float64 {
	type res struct {
		avail float64
		count int
	}
	// resources indexed by link*2+dir
	resources := make([]res, len(n.links)*2)
	for i, l := range n.links {
		resources[i*2+int(Fwd)] = res{avail: l.availCap(Fwd)}
		resources[i*2+int(Rev)] = res{avail: l.availCap(Rev)}
	}
	rates := make(map[*Flow]float64, len(n.flows))
	active := make([]*Flow, 0, len(n.flows))
	hasLimited := false
	for _, f := range n.flows {
		rates[f] = 0
		if len(f.path) == 0 {
			continue
		}
		active = append(active, f)
		hasLimited = hasLimited || f.limited
		for _, h := range f.path {
			resources[int(h.link)*2+int(h.dir)].count++
		}
	}
	frozen := make(map[*Flow]bool, len(active))
	for len(frozen) < len(active) {
		// Find the minimum fair share among resources with unfrozen flows.
		minShare := -1.0
		for _, r := range resources {
			if r.count == 0 {
				continue
			}
			share := r.avail / float64(r.count)
			if minShare < 0 || share < minShare {
				minShare = share
			}
		}
		if minShare < 0 {
			break // no constrained resources left
		}
		if minShare < n.MinFlowRate {
			minShare = n.MinFlowRate
		}
		// Demand pre-pass, mirroring fillComponentDemand: class flows whose
		// demand is within the fair share freeze at exactly their demand.
		// Skipped entirely when no class flows exist so the oracle's
		// arithmetic matches the original algorithm bit-for-bit.
		if hasLimited {
			capped := false
			for _, f := range active {
				if frozen[f] || !f.limited || f.demand > minShare {
					continue
				}
				rates[f] = f.demand
				frozen[f] = true
				capped = true
				for _, h := range f.path {
					idx := int(h.link)*2 + int(h.dir)
					resources[idx].avail -= f.demand
					if resources[idx].avail < 0 {
						resources[idx].avail = 0
					}
					resources[idx].count--
				}
			}
			if capped {
				continue // re-derive the share over the freed capacity
			}
		}
		progressed := false
		for _, f := range active {
			if frozen[f] {
				continue
			}
			// Freeze f if any of its resources is at the bottleneck share.
			bottled := false
			for _, h := range f.path {
				r := resources[int(h.link)*2+int(h.dir)]
				if r.count > 0 && r.avail/float64(r.count) <= minShare+1e-12 {
					bottled = true
					break
				}
			}
			if !bottled {
				continue
			}
			rates[f] = minShare
			frozen[f] = true
			progressed = true
			for _, h := range f.path {
				idx := int(h.link)*2 + int(h.dir)
				resources[idx].avail -= minShare
				if resources[idx].avail < 0 {
					resources[idx].avail = 0
				}
				resources[idx].count--
			}
		}
		if !progressed {
			// Numerical corner: give every remaining flow the floor rate
			// (capped at demand for class flows).
			for _, f := range active {
				if !frozen[f] {
					rate := n.MinFlowRate
					if f.limited && f.demand < rate {
						rate = f.demand
					}
					rates[f] = rate
					frozen[f] = true
				}
			}
		}
	}
	return rates
}
