package netsim

import (
	"testing"

	"archadapt/internal/sim"
)

// Parallel per-component filling must be byte-identical to the serial path —
// not merely close. The twins below share one kernel: `serial` runs with the
// nil pool (the oracle), `par` with a worker pool attached. Both see the same
// event sequence; after every step all live-flow rates must compare equal
// with ==, and flow accounting must match exactly.

type parTwins struct {
	k           *sim.Kernel
	serial, par *Network
	nodes       []NodeID
	links       []LinkID
	caps        []float64
	live        [][2]*Flow
}

// buildParTwins builds two identical chain networks of nHosts hosts. A chain
// keeps short transfers on disjoint link sets, so batched events routinely
// dirty several connected components at once — the parallel fill's case.
func buildParTwins(pool *sim.WorkerPool, nHosts int) *parTwins {
	tw := &parTwins{k: sim.NewKernel()}
	tw.serial = New(tw.k)
	tw.par = New(tw.k)
	tw.par.Workers = pool
	for i := 0; i < nHosts; i++ {
		tw.nodes = append(tw.nodes, tw.serial.AddHost(string(rune('a'+i))))
		tw.par.AddHost(string(rune('a' + i)))
	}
	for i := 1; i < nHosts; i++ {
		c := 1e6 * float64(1+(i*7)%10)
		tw.links = append(tw.links, tw.serial.Connect(tw.nodes[i-1], tw.nodes[i], c, 1e-3))
		tw.par.Connect(tw.nodes[i-1], tw.nodes[i], c, 1e-3)
		tw.caps = append(tw.caps, c)
	}
	return tw
}

// checkExact compares the twins with ==: any difference is a determinism bug.
func (tw *parTwins) checkExact(t *testing.T) {
	t.Helper()
	if tw.serial.ActiveFlows() != tw.par.ActiveFlows() ||
		tw.serial.CompletedFlows() != tw.par.CompletedFlows() {
		t.Fatalf("flow accounting diverged: active %d vs %d, completed %d vs %d",
			tw.serial.ActiveFlows(), tw.par.ActiveFlows(),
			tw.serial.CompletedFlows(), tw.par.CompletedFlows())
	}
	for i, pair := range tw.live {
		fs, fp := pair[0], pair[1]
		if fs.index < 0 || fp.index < 0 {
			continue // completed or cancelled
		}
		if fs.Rate() != fp.Rate() {
			t.Fatalf("flow %d at t=%.4f: serial rate %v != parallel rate %v",
				i, tw.k.Now(), fs.Rate(), fp.Rate())
		}
	}
}

func TestParallelFillByteIdentical(t *testing.T) {
	pool := sim.NewWorkerPool(4)
	defer pool.Close()
	for seed := uint64(1); seed <= 6; seed++ {
		rng := sim.NewRand(seed * 0x9e3779b97f4a7c15)
		tw := buildParTwins(pool, 14)
		nHosts := len(tw.nodes)
		at := 0.0
		for step := 0; step < 160; step++ {
			at += rng.Float64() * 0.15
			switch rng.Intn(4) {
			case 0, 1: // short transfer between nearby hosts: disjoint regions
				s := rng.Intn(nHosts)
				d := s + 1 + rng.Intn(3)
				if d >= nHosts {
					d = nHosts - 1
				}
				if s == d {
					continue
				}
				bits := 1e4 * float64(1+rng.Intn(400))
				tw.k.At(at, func() {
					var pair [2]*Flow
					pair[0] = tw.serial.StartTransfer(tw.nodes[s], tw.nodes[d], bits, "par", nil)
					pair[1] = tw.par.StartTransfer(tw.nodes[s], tw.nodes[d], bits, "par", nil)
					tw.live = append(tw.live, pair)
				})
			case 2: // batched background changes on several scattered links:
				// one solve, many dirty components, the parallel fill's case
				li1 := rng.Intn(len(tw.links))
				li2 := rng.Intn(len(tw.links))
				li3 := rng.Intn(len(tw.links))
				load1 := tw.caps[li1] * rng.Float64()
				load2 := tw.caps[li2] * rng.Float64()
				load3 := tw.caps[li3] * rng.Float64()
				tw.k.At(at, func() {
					tw.serial.Batch(func() {
						tw.serial.SetBackgroundBoth(tw.links[li1], load1)
						tw.serial.SetBackgroundBoth(tw.links[li2], load2)
						tw.serial.SetBackgroundBoth(tw.links[li3], load3)
					})
					tw.par.Batch(func() {
						tw.par.SetBackgroundBoth(tw.links[li1], load1)
						tw.par.SetBackgroundBoth(tw.links[li2], load2)
						tw.par.SetBackgroundBoth(tw.links[li3], load3)
					})
				})
			case 3: // probe both; shares must be bit-equal too
				s, d := rng.Intn(nHosts), rng.Intn(nHosts)
				tw.k.At(at, func() {
					a := tw.serial.BottleneckShare(tw.nodes[s], tw.nodes[d])
					b := tw.par.BottleneckShare(tw.nodes[s], tw.nodes[d])
					if a != b {
						t.Fatalf("probe share diverged: serial %v != parallel %v", a, b)
					}
				})
			}
			tw.k.At(at, func() { tw.checkExact(t) })
		}
		tw.k.RunAll(0)
		tw.checkExact(t)
		if tw.serial.CompletedFlows() == 0 {
			t.Fatalf("seed %d: no flow completed — the run proved nothing", seed)
		}
		// The parallel network must actually have exercised the pooled path —
		// a multi-component solve dispatched to the workers.
		if st := tw.par.Stats(); st.ParallelFills == 0 {
			t.Fatalf("seed %d: no multi-component solve hit the worker pool (stats %+v)", seed, st)
		}
	}
}

// TestParallelFillComponentStats pins the component accounting: a batch that
// dirties two disjoint link groups produces one solve with two components,
// pooled only when Workers is attached.
func TestParallelFillComponentStats(t *testing.T) {
	pool := sim.NewWorkerPool(2)
	defer pool.Close()
	for _, attach := range []bool{false, true} {
		k := sim.NewKernel()
		n := New(k)
		if attach {
			n.Workers = pool
		}
		a, b := n.AddHost("a"), n.AddHost("b")
		c, d := n.AddHost("c"), n.AddHost("d")
		l1 := n.Connect(a, b, 1e6, 1e-3)
		l2 := n.Connect(c, d, 1e6, 1e-3)
		n.StartTransfer(a, b, 1e5, "s", nil)
		n.StartTransfer(c, d, 1e5, "s", nil)
		before := n.Stats()
		n.Batch(func() {
			n.SetBackgroundBoth(l1, 5e5)
			n.SetBackgroundBoth(l2, 2.5e5)
		})
		st := n.Stats()
		if got := st.Solves - before.Solves; got != 1 {
			t.Fatalf("attach=%v: batch ran %d solves, want 1", attach, got)
		}
		if got := st.Components - before.Components; got != 2 {
			t.Fatalf("attach=%v: batch filled %d components, want 2", attach, got)
		}
		gotPar := st.ParallelFills - before.ParallelFills
		if attach && gotPar != 1 {
			t.Fatalf("attach=true: %d parallel fills, want 1", gotPar)
		}
		if !attach && gotPar != 0 {
			t.Fatalf("attach=false: %d parallel fills, want 0", gotPar)
		}
	}
}
