package netsim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"archadapt/internal/sim"
)

// The incremental solver must be observationally equivalent to the retained
// global one. The driver below builds two identical random networks on one
// kernel — one incremental, one with GlobalReflow forced — and pushes the
// same random event sequence (starts, cancels, background changes, probes)
// through both, comparing flow rates after every step against each other and
// against ReferenceRates, the retained PR 1 algorithm.

type twinNets struct {
	k         *sim.Kernel
	inc, glob *Network
	nodes     []NodeID
	links     []LinkID
	caps      []float64
	live      map[uint64][2]*Flow // id → (incremental, global) handles
}

func buildTwins(rng *sim.Rand) *twinNets {
	tw := &twinNets{k: sim.NewKernel(), live: map[uint64][2]*Flow{}}
	tw.inc = New(tw.k)
	tw.glob = New(tw.k)
	tw.glob.GlobalReflow = true
	nHosts := 3 + rng.Intn(6)
	for i := 0; i < nHosts; i++ {
		tw.nodes = append(tw.nodes, tw.inc.AddHost(string(rune('a'+i))))
		tw.glob.AddHost(string(rune('a' + i)))
	}
	connect := func(i, j int, c float64) {
		tw.links = append(tw.links, tw.inc.Connect(tw.nodes[i], tw.nodes[j], c, 1e-3))
		tw.glob.Connect(tw.nodes[i], tw.nodes[j], c, 1e-3)
		tw.caps = append(tw.caps, c)
	}
	// Spanning chain plus random extra links: several disjoint-looking
	// regions that merge and split as flows come and go.
	for i := 1; i < nHosts; i++ {
		connect(i-1, i, 1e6*float64(1+rng.Intn(10)))
	}
	for e := 0; e < rng.Intn(5); e++ {
		i, j := rng.Intn(nHosts), rng.Intn(nHosts)
		if i == j {
			continue
		}
		if _, dup := tw.inc.LinkBetween(tw.nodes[i], tw.nodes[j]); dup {
			continue
		}
		connect(i, j, 1e6*float64(1+rng.Intn(10)))
	}
	return tw
}

// liveIDs returns the ids of in-flight flows in deterministic order.
func (tw *twinNets) liveIDs() []uint64 {
	ids := make([]uint64, 0, len(tw.live))
	for id := range tw.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(scale, 1)
}

// check compares the two networks' live-flow rates against each other and
// the incremental network against the retained naive global solver.
func (tw *twinNets) check(t testingT) bool {
	if tw.inc.ActiveFlows() != tw.glob.ActiveFlows() ||
		tw.inc.CompletedFlows() != tw.glob.CompletedFlows() {
		t.Logf("flow accounting diverged: active %d vs %d, completed %d vs %d",
			tw.inc.ActiveFlows(), tw.glob.ActiveFlows(),
			tw.inc.CompletedFlows(), tw.glob.CompletedFlows())
		return false
	}
	ref := tw.inc.ReferenceRates()
	for _, id := range tw.liveIDs() {
		pair := tw.live[id]
		fi, fg := pair[0], pair[1]
		if !relClose(fi.Rate(), fg.Rate(), 1e-9) {
			t.Logf("flow %d: incremental rate %v vs global %v", id, fi.Rate(), fg.Rate())
			return false
		}
		if fi.index >= 0 {
			if want, ok := ref[fi]; !ok || !relClose(fi.Rate(), want, 1e-9) {
				t.Logf("flow %d: incremental rate %v vs reference %v", id, fi.Rate(), want)
				return false
			}
		}
	}
	return true
}

type testingT interface{ Logf(string, ...any) }

func solverEquivalence(t testingT, seed uint64) bool {
	rng := sim.NewRand(seed)
	tw := buildTwins(rng)
	ok := true
	at := 0.0
	nHosts := len(tw.nodes)
	for step := 0; step < 40; step++ {
		at += rng.Float64() * 0.4
		switch rng.Intn(5) {
		case 0, 1: // start a transfer (sized so some complete mid-run)
			s, d := rng.Intn(nHosts), rng.Intn(nHosts)
			bits := 1e4 * float64(1+rng.Intn(500))
			tw.k.At(at, func() {
				var pair [2]*Flow
				retire := func(f *Flow) { delete(tw.live, f.ID()) }
				pair[0] = tw.inc.StartTransfer(tw.nodes[s], tw.nodes[d], bits, "eq", retire)
				pair[1] = tw.glob.StartTransfer(tw.nodes[s], tw.nodes[d], bits, "eq", retire)
				if s != d {
					tw.live[pair[0].ID()] = pair
				}
			})
		case 2: // cancel a random in-flight transfer
			pick := rng.Intn(64)
			tw.k.At(at, func() {
				ids := tw.liveIDs()
				if len(ids) == 0 {
					return
				}
				id := ids[pick%len(ids)]
				pair := tw.live[id]
				delete(tw.live, id)
				pair[0].Cancel()
				pair[1].Cancel()
			})
		case 3: // change background load on a random link/direction
			li := rng.Intn(len(tw.links))
			load := tw.caps[li] * rng.Float64()
			both := rng.Intn(2) == 0
			dir := Dir(rng.Intn(2))
			tw.k.At(at, func() {
				if both {
					tw.inc.SetBackgroundBoth(tw.links[li], load)
					tw.glob.SetBackgroundBoth(tw.links[li], load)
				} else {
					tw.inc.SetBackground(tw.links[li], dir, load)
					tw.glob.SetBackground(tw.links[li], dir, load)
				}
			})
		case 4: // probe: must not disturb real flows in either solver
			s, d := rng.Intn(nHosts), rng.Intn(nHosts)
			tw.k.At(at, func() {
				a := tw.inc.BottleneckShare(tw.nodes[s], tw.nodes[d])
				b := tw.glob.BottleneckShare(tw.nodes[s], tw.nodes[d])
				if !relClose(a, b, 1e-9) {
					t.Logf("probe share diverged: %v vs %v", a, b)
					ok = false
				}
			})
		}
		tw.k.At(at, func() {
			if !tw.check(t) {
				ok = false
			}
		})
	}
	tw.k.RunAll(0)
	return ok && tw.check(t)
}

func TestIncrementalSolverEquivalence(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool { return solverEquivalence(t, seed) },
		&quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalSolverEquivalenceLong drives one long sequence so in-flight
// completions, stalls (rate floor) and recoveries all interleave.
func TestIncrementalSolverEquivalenceLong(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := sim.NewRand(seed ^ 0x9e3779b97f4a7c15)
		tw := buildTwins(rng)
		at := 0.0
		for step := 0; step < 300; step++ {
			at += rng.Float64() * 0.2
			s, d := rng.Intn(len(tw.nodes)), rng.Intn(len(tw.nodes))
			switch rng.Intn(3) {
			case 0:
				bits := 1e3 * float64(1+rng.Intn(2000))
				tw.k.At(at, func() {
					var pair [2]*Flow
					retire := func(f *Flow) { delete(tw.live, f.ID()) }
					pair[0] = tw.inc.StartTransfer(tw.nodes[s], tw.nodes[d], bits, "eq", retire)
					pair[1] = tw.glob.StartTransfer(tw.nodes[s], tw.nodes[d], bits, "eq", retire)
					if s != d {
						tw.live[pair[0].ID()] = pair
					}
				})
			case 1:
				li := rng.Intn(len(tw.links))
				// Occasionally saturate completely to exercise the floor.
				load := tw.caps[li]
				if rng.Intn(3) > 0 {
					load *= rng.Float64()
				}
				tw.k.At(at, func() {
					tw.inc.SetBackgroundBoth(tw.links[li], load)
					tw.glob.SetBackgroundBoth(tw.links[li], load)
				})
			case 2:
				pick := rng.Intn(64)
				tw.k.At(at, func() {
					ids := tw.liveIDs()
					if len(ids) == 0 {
						return
					}
					id := ids[pick%len(ids)]
					pair := tw.live[id]
					delete(tw.live, id)
					pair[0].Cancel()
					pair[1].Cancel()
				})
			}
		}
		checkAt := 0.0
		for i := 0; i < 30; i++ {
			checkAt += 2.1
			tw.k.At(checkAt, func() {
				if !tw.check(t) {
					t.Fatalf("seed %d: solvers diverged at t=%.3f", seed, tw.k.Now())
				}
			})
		}
		tw.k.RunAll(0)
		if !tw.check(t) {
			t.Fatalf("seed %d: solvers diverged at end", seed)
		}
	}
}
