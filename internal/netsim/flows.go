package netsim

import (
	"archadapt/internal/sim"
)

// Flow is an elastic bulk transfer in progress. Its rate is recomputed
// whenever the flow set or background load changes.
type Flow struct {
	id         uint64
	Src, Dst   NodeID
	Tag        string
	path       []hop
	remaining  float64 // bits still to deliver
	rate       float64 // bits/sec currently allotted
	last       sim.Time
	completion *sim.Event
	done       func(*Flow)
	net        *Network
	started    sim.Time
	size       float64
	cancelled  bool
}

// Rate returns the flow's current max–min allocation in bits/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns unsent bits (settled to the current instant only at
// reflow boundaries; callers inside the kernel see a consistent snapshot).
func (f *Flow) Remaining() float64 { return f.remaining }

// Size returns the flow's total size in bits.
func (f *Flow) Size() float64 { return f.size }

// Started returns the start time of the flow.
func (f *Flow) Started() sim.Time { return f.started }

// StartTransfer begins an elastic transfer of the given number of bits and
// invokes done (if non-nil) when the last bit arrives. Zero-hop transfers
// (src == dst, e.g. client C5 talking to server S5 on the shared machine)
// complete on the next event with negligible local-IPC delay.
func (n *Network) StartTransfer(src, dst NodeID, bits float64, tag string, done func(*Flow)) *Flow {
	if bits <= 0 {
		bits = 1
	}
	f := &Flow{
		id:        n.nextFlow,
		Src:       src,
		Dst:       dst,
		Tag:       tag,
		path:      n.route(src, dst),
		remaining: bits,
		size:      bits,
		last:      n.K.Now(),
		done:      done,
		net:       n,
		started:   n.K.Now(),
	}
	n.nextFlow++
	if len(f.path) == 0 {
		// Same host: model as a fast local copy.
		n.K.After(1e-5, func() { n.finish(f) })
		return f
	}
	n.flows = append(n.flows, f)
	n.reflow()
	return f
}

// Cancel aborts an in-progress transfer without invoking its completion
// callback. Used by failure-injection tests (e.g. a server crash mid-reply).
func (f *Flow) Cancel() {
	if f.cancelled {
		return
	}
	f.cancelled = true
	if f.completion != nil {
		f.completion.Cancel()
	}
	f.net.removeFlow(f)
	f.net.reflow()
}

// ActiveFlows returns the number of elastic flows currently in the network.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// CompletedFlows returns the number of finished transfers.
func (n *Network) CompletedFlows() uint64 { return n.completedFlows }

// BitsDelivered returns total bits delivered by completed transfers.
func (n *Network) BitsDelivered() float64 { return n.bitsDelivered }

func (n *Network) removeFlow(f *Flow) {
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			return
		}
	}
}

func (n *Network) finish(f *Flow) {
	if f.cancelled {
		return
	}
	f.remaining = 0
	n.completedFlows++
	n.bitsDelivered += f.size
	if f.done != nil {
		f.done(f)
	}
}

// reflow settles every flow's progress to the current instant, recomputes
// max–min fair rates, and reschedules completion events.
func (n *Network) reflow() {
	now := n.K.Now()
	// Settle progress under the old rates.
	for _, f := range n.flows {
		if dt := now - f.last; dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.last = now
	}
	n.computeRates()
	// Reschedule completions under the new rates.
	for _, f := range n.flows {
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
		rate := f.rate
		if rate <= 0 {
			continue // fully stalled; will be rescheduled on the next reflow
		}
		eta := f.remaining / rate
		f := f
		f.completion = n.K.After(eta, func() {
			n.removeFlow(f)
			n.finish(f)
			n.reflow()
		})
	}
}

// computeRates assigns each elastic flow its max–min fair rate via
// progressive filling: repeatedly find the most constrained (link,dir),
// freeze the flows crossing it at the equal share, remove that capacity, and
// continue. Flows whose links are saturated by background traffic receive
// MinFlowRate so that transfers always trickle (the paper's control run shows
// available bandwidth bottoming out near 1e-4 Mbps rather than zero).
func (n *Network) computeRates() {
	type res struct {
		avail float64
		count int
	}
	// resources indexed by link*2+dir
	resources := make([]res, len(n.links)*2)
	for i, l := range n.links {
		resources[i*2+int(Fwd)] = res{avail: l.availCap(Fwd)}
		resources[i*2+int(Rev)] = res{avail: l.availCap(Rev)}
	}
	active := make([]*Flow, 0, len(n.flows))
	for _, f := range n.flows {
		f.rate = 0
		if len(f.path) == 0 {
			continue
		}
		active = append(active, f)
		for _, h := range f.path {
			resources[int(h.link)*2+int(h.dir)].count++
		}
	}
	frozen := make(map[*Flow]bool, len(active))
	for len(frozen) < len(active) {
		// Find the minimum fair share among resources with unfrozen flows.
		minShare := -1.0
		for _, r := range resources {
			if r.count == 0 {
				continue
			}
			share := r.avail / float64(r.count)
			if minShare < 0 || share < minShare {
				minShare = share
			}
		}
		if minShare < 0 {
			break // no constrained resources left
		}
		if minShare < n.MinFlowRate {
			minShare = n.MinFlowRate
		}
		progressed := false
		for _, f := range active {
			if frozen[f] {
				continue
			}
			// Freeze f if any of its resources is at the bottleneck share.
			bottled := false
			for _, h := range f.path {
				r := resources[int(h.link)*2+int(h.dir)]
				if r.count > 0 && r.avail/float64(r.count) <= minShare+1e-12 {
					bottled = true
					break
				}
			}
			if !bottled {
				continue
			}
			f.rate = minShare
			frozen[f] = true
			progressed = true
			for _, h := range f.path {
				idx := int(h.link)*2 + int(h.dir)
				resources[idx].avail -= minShare
				if resources[idx].avail < 0 {
					resources[idx].avail = 0
				}
				resources[idx].count--
			}
		}
		if !progressed {
			// Numerical corner: give every remaining flow the floor rate.
			for _, f := range active {
				if !frozen[f] {
					f.rate = n.MinFlowRate
					frozen[f] = true
				}
			}
		}
	}
}
