package netsim

import (
	"archadapt/internal/sim"
)

// Flow is an elastic bulk transfer in progress. Its rate is recomputed
// whenever the flow set or background load changes in its region of the
// network; progress is settled lazily, when the rate actually changes.
type Flow struct {
	id        uint64
	Src, Dst  NodeID
	Tag       string
	path      []hop
	hopIdx    []int32 // position in each path resource's crossing list
	index     int     // position in net.flows; -1 once removed
	remaining float64 // bits still to deliver as of `last`
	rate      float64 // bits/sec currently allotted
	prevRate  float64 // solver scratch: rate before the current solve
	last      sim.Time
	// completion is the pending arrival event; complete is its callback,
	// created once per flow and reused across reschedules. k is the kernel
	// hosting the completion: the destination node's region shard under a
	// shard plane, the network's control kernel otherwise.
	completion *sim.Event
	complete   func()
	k          *sim.Kernel
	done       func(*Flow)
	doneArg    func(any)
	arg        any
	net        *Network
	started    sim.Time
	size       float64
	cancelled  bool
	seen       uint64 // region-visit epoch
	frozen     uint64 // progressive-filling freeze epoch

	// Class-flow state (StartClassFlow). A persistent flow never completes:
	// instead of draining `remaining` it accumulates `delivered` bits. A
	// limited flow's max–min allocation is capped at `demand` bits/sec, with
	// the residual capacity redistributed to the elastic flows sharing its
	// links.
	persistent bool
	limited    bool
	demand     float64
	delivered  float64 // bits delivered as of `last` (settled lazily)
}

// ID returns the flow's unique id (creation order).
func (f *Flow) ID() uint64 { return f.id }

// Rate returns the flow's current max–min allocation in bits/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns unsent bits at the current instant. Progress is settled
// lazily inside the solver, so the accessor folds in time elapsed at the
// current rate.
func (f *Flow) Remaining() float64 {
	rem := f.remaining
	if f.net != nil {
		if dt := f.net.K.Now() - f.last; dt > 0 {
			rem -= f.rate * dt
		}
	}
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Size returns the flow's total size in bits.
func (f *Flow) Size() float64 { return f.size }

// Started returns the start time of the flow.
func (f *Flow) Started() sim.Time { return f.started }

// StartTransfer begins an elastic transfer of the given number of bits and
// invokes done (if non-nil) when the last bit arrives. Zero-hop transfers
// (src == dst, e.g. client C5 talking to server S5 on the shared machine)
// complete on the next event with negligible local-IPC delay.
func (n *Network) StartTransfer(src, dst NodeID, bits float64, tag string, done func(*Flow)) *Flow {
	if bits <= 0 {
		bits = 1
	}
	f := &Flow{
		id:        n.nextFlow,
		Src:       src,
		Dst:       dst,
		Tag:       tag,
		path:      n.route(src, dst),
		index:     -1,
		remaining: bits,
		size:      bits,
		last:      n.K.Now(),
		done:      done,
		net:       n,
		started:   n.K.Now(),
		k:         n.kernelFor(dst),
	}
	n.nextFlow++
	if len(f.path) == 0 {
		// Same host: model as a fast local copy, on the host's own shard.
		f.k.AfterAnonArg(1e-5, finishFn, f)
		return f
	}
	f.index = len(n.flows)
	n.flows = append(n.flows, f)
	n.linkFlow(f)
	n.solve()
	return f
}

// finishFn is the static local-copy completion callback.
func finishFn(arg any) {
	f := arg.(*Flow)
	f.net.finish(f)
}

// StartTransferArg is StartTransfer with a closure-free completion callback:
// fn is a static function and arg its pre-bound receiver — the per-request
// fast path of the application's reply streaming.
func (n *Network) StartTransferArg(src, dst NodeID, bits float64, tag string, fn func(any), arg any) *Flow {
	f := n.StartTransfer(src, dst, bits, tag, nil)
	f.doneArg, f.arg = fn, arg
	return f
}

// Cancel aborts an in-progress transfer without invoking its completion
// callback. Used by failure-injection tests (e.g. a server crash mid-reply).
func (f *Flow) Cancel() {
	if f.cancelled {
		return
	}
	f.cancelled = true
	// Freeze the handle's progress at the cancellation instant: once the
	// flow leaves the network, Remaining()/Delivered() must stop
	// extrapolating.
	now := f.net.K.Now()
	if dt := now - f.last; dt > 0 {
		if f.persistent {
			f.delivered += f.rate * dt
		} else {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	f.last = now
	f.rate = 0
	if f.completion != nil {
		f.completion.Cancel()
		f.completion = nil
	}
	f.net.removeFlow(f)
	f.net.solve()
}

// ActiveFlows returns the number of elastic flows currently in the network.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// CompletedFlows returns the number of finished transfers.
func (n *Network) CompletedFlows() uint64 { return n.completedFlows }

// BitsDelivered returns total bits delivered by completed transfers.
func (n *Network) BitsDelivered() float64 { return n.bitsDelivered }

// completeFlow fires when a flow's last bit arrives: unlink it (dirtying its
// region), run the done callback, then re-solve — the callback commonly
// starts follow-on transfers whose solve already covers the removal dirt.
func (n *Network) completeFlow(f *Flow) {
	f.completion = nil
	n.removeFlow(f)
	n.finish(f)
	n.solve()
}

func (n *Network) finish(f *Flow) {
	if f.cancelled {
		return
	}
	f.remaining = 0
	f.last = n.K.Now()
	n.completedFlows++
	n.bitsDelivered += f.size
	if f.done != nil {
		f.done(f)
	}
	if f.doneArg != nil {
		f.doneArg(f.arg)
	}
}
