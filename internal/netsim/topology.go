// Package netsim is a fluid-flow network simulator that stands in for the
// paper's physical testbed (Figure 6: five routers, eleven machines, 10 Mbps
// links).
//
// Data transfers are modeled as elastic flows that share link capacity
// max–min fairly, the standard fluid approximation of TCP behaviour.
// Background "competition" traffic (the paper's bandwidth-competition
// generator, Figure 7) is modeled as non-elastic load that reduces the
// capacity available to elastic flows. Small control messages (RPC,
// monitoring traffic) do not open flows; their delivery delay is computed
// from the available bandwidth along the path at send time — which is exactly
// what makes monitoring slow when the network is congested, a pathology the
// paper reports in §5.3.
package netsim

import (
	"fmt"

	"archadapt/internal/sim"
)

// NodeID identifies a host or router.
type NodeID int

// LinkID identifies a duplex link; each direction has independent capacity.
type LinkID int

// Dir selects a link direction.
type Dir int

// Link directions: Fwd is A→B, Rev is B→A.
const (
	Fwd Dir = 0
	Rev Dir = 1
)

// Node is a host or router in the topology.
type Node struct {
	ID     NodeID
	Name   string
	Router bool
}

// Link is a duplex link between two nodes. Capacity is in bits per second and
// applies to each direction independently. bg is the current background
// (competition) load per direction.
type Link struct {
	ID        LinkID
	A, B      NodeID
	Capacity  float64
	PropDelay float64 // seconds, per traversal
	bg        [2]float64
}

// hop is one directed traversal of a link.
type hop struct {
	link LinkID
	dir  Dir
}

// Network is the simulated network. All methods must be called from kernel
// context (the simulation is single-threaded).
type Network struct {
	K      *sim.Kernel
	nodes  []*Node
	links  []*Link
	byName map[string]NodeID
	adj    map[NodeID][]hopTo

	paths map[pathKey][]hop // route cache, invalidated on topology change

	flows    []*Flow
	nextFlow uint64

	// Incremental-solver state (see regions.go): per-(link,dir) resources
	// with their crossing-flow lists, the pending dirty set, batching depth,
	// the region-visit epoch, and reusable scratch buffers. compFlows/compRes
	// hold the same region members grouped by connected component (each
	// group sorted into global order), with compSpans marking the group
	// boundaries — the unit of parallel filling.
	res         []resource
	dirtyRes    []int32
	batching    int
	epoch       uint64
	regionFlows []*Flow
	regionRes   []int32
	stack       []int32
	compFlows   []*Flow
	compRes     []int32
	compSpans   []compSpan
	stats       SolveStats

	// Shard, when non-nil, is the region-sharded event-hosting plane
	// (Grid.AttachShards): per-node events live on the owning region's
	// sequenced shard kernel, and cross-shard deliveries ride the
	// conservative Send/exchange protocol. Nil hosts everything on K.
	Shard *ShardPlane

	// Workers, when non-nil, fills the connected components of a multi-region
	// solve in parallel. The fill touches only component-local state and every
	// component's arithmetic runs in the same order at any worker count, so
	// rates are byte-identical to the nil (serial) pool — the oracle path.
	// Settlement and completion rescheduling stay serial, in global flow
	// order, so kernel event sequencing never depends on the pool.
	Workers *sim.WorkerPool

	// GlobalReflow disables region partitioning and recomputes every flow on
	// every solve — the pre-incremental behaviour. Retained as an escape
	// hatch for the solver-equivalence tests and benchmarks.
	GlobalReflow bool

	// MinFlowRate is the floor rate for an elastic flow when competition has
	// consumed a link entirely; the paper's Figure 10 bottoms out around
	// 1e-4 Mbps (100 bps), which is the default here.
	MinFlowRate float64
	// CtrlFloor bounds control-message delay when the network is saturated.
	CtrlFloor float64
	// CtrlPerHopOverhead is fixed per-hop processing time for control
	// messages.
	CtrlPerHopOverhead float64

	// Stats
	completedFlows uint64
	bitsDelivered  float64
	msgStats       MsgStats

	// Failure injection for control messages.
	dropRate float64
	dropRNG  *sim.Rand
}

// compSpan marks one connected component's slice of the comp scratch arrays.
type compSpan struct {
	flowLo, flowHi int32
	resLo, resHi   int32
}

// SolveStats counts solver work since the network was created.
type SolveStats struct {
	// Solves is the number of dirty-region solves.
	Solves uint64
	// Components is the total number of connected components filled.
	Components uint64
	// ParallelFills is the number of solves whose components were filled on
	// the worker pool (multi-component solves with Workers attached).
	ParallelFills uint64
}

// Stats returns a snapshot of the solver counters.
func (n *Network) Stats() SolveStats { return n.stats }

type hopTo struct {
	to NodeID
	h  hop
}

type pathKey struct{ src, dst NodeID }

// New creates an empty network bound to the kernel.
func New(k *sim.Kernel) *Network {
	return &Network{
		K:                  k,
		byName:             map[string]NodeID{},
		adj:                map[NodeID][]hopTo{},
		paths:              map[pathKey][]hop{},
		MinFlowRate:        100,  // bits/sec
		CtrlFloor:          9600, // bits/sec
		CtrlPerHopOverhead: 5e-4, // 0.5 ms per hop
	}
}

// AddHost adds a non-router node.
func (n *Network) AddHost(name string) NodeID { return n.addNode(name, false) }

// AddRouter adds a router node.
func (n *Network) AddRouter(name string) NodeID { return n.addNode(name, true) }

func (n *Network) addNode(name string, router bool) NodeID {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, &Node{ID: id, Name: name, Router: router})
	n.byName[name] = id
	return id
}

// Node returns the node by id.
func (n *Network) Node(id NodeID) *Node { return n.nodes[int(id)] }

// Lookup returns a node id by name.
func (n *Network) Lookup(name string) (NodeID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// MustLookup is Lookup that panics on unknown names (for experiment wiring).
func (n *Network) MustLookup(name string) NodeID {
	id, ok := n.byName[name]
	if !ok {
		panic("netsim: unknown node " + name)
	}
	return id
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumLinks returns the link count.
func (n *Network) NumLinks() int { return len(n.links) }

// Connect adds a duplex link; capacity in bits/sec per direction.
func (n *Network) Connect(a, b NodeID, capacity, propDelay float64) LinkID {
	if a == b {
		panic("netsim: self link")
	}
	if capacity <= 0 {
		panic("netsim: non-positive capacity")
	}
	id := LinkID(len(n.links))
	n.links = append(n.links, &Link{ID: id, A: a, B: b, Capacity: capacity, PropDelay: propDelay})
	n.res = append(n.res, resource{}, resource{})
	n.adj[a] = append(n.adj[a], hopTo{to: b, h: hop{link: id, dir: Fwd}})
	n.adj[b] = append(n.adj[b], hopTo{to: a, h: hop{link: id, dir: Rev}})
	n.paths = map[pathKey][]hop{} // routes may change
	return id
}

// Link returns the link by id.
func (n *Network) Link(id LinkID) *Link { return n.links[int(id)] }

// LinkBetween returns the link connecting a and b directly, if any.
func (n *Network) LinkBetween(a, b NodeID) (LinkID, bool) {
	for _, ht := range n.adj[a] {
		if ht.to == b {
			return ht.h.link, true
		}
	}
	return 0, false
}

// route returns the hop sequence of a shortest (min-hop) path src→dst,
// computed by BFS and cached. Deterministic: neighbors are explored in
// insertion order.
func (n *Network) route(src, dst NodeID) []hop {
	if src == dst {
		return nil
	}
	if p, ok := n.paths[pathKey{src, dst}]; ok {
		return p
	}
	type crumb struct {
		prev NodeID
		via  hop
	}
	seen := make([]bool, len(n.nodes))
	from := make([]crumb, len(n.nodes))
	queue := []NodeID{src}
	seen[src] = true
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		for _, ht := range n.adj[cur] {
			if seen[ht.to] {
				continue
			}
			seen[ht.to] = true
			from[ht.to] = crumb{prev: cur, via: ht.h}
			if ht.to == dst {
				found = true
				break
			}
			queue = append(queue, ht.to)
		}
	}
	if !found {
		panic(fmt.Sprintf("netsim: no route %s -> %s", n.nodes[src].Name, n.nodes[dst].Name))
	}
	var rev []hop
	for at := dst; at != src; at = from[at].prev {
		rev = append(rev, from[at].via)
	}
	path := make([]hop, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	n.paths[pathKey{src, dst}] = path
	return path
}

// PathHops returns the number of hops on the route src→dst.
func (n *Network) PathHops(src, dst NodeID) int { return len(n.route(src, dst)) }

// SetBackground sets the background (competition) load on one direction of a
// link, in bits/sec, and reflows the elastic traffic in the link's region.
// Loads above capacity are clamped to capacity; setting the load it already
// has is a no-op.
func (n *Network) SetBackground(id LinkID, d Dir, load float64) {
	l := n.links[int(id)]
	if load < 0 {
		load = 0
	}
	if load > l.Capacity {
		load = l.Capacity
	}
	if l.bg[d] == load {
		return
	}
	l.bg[d] = load
	n.markDirty(int32(id)*2 + int32(d))
	n.solve()
}

// SetBackgroundBoth sets the same background load on both directions.
func (n *Network) SetBackgroundBoth(id LinkID, load float64) {
	l := n.links[int(id)]
	if load < 0 {
		load = 0
	}
	if load > l.Capacity {
		load = l.Capacity
	}
	if l.bg[Fwd] == load && l.bg[Rev] == load {
		return
	}
	l.bg[Fwd] = load
	l.bg[Rev] = load
	n.markDirty(int32(id) * 2)
	n.markDirty(int32(id)*2 + 1)
	n.solve()
}

// Background returns the background load on a direction of a link.
func (n *Network) Background(id LinkID, d Dir) float64 { return n.links[int(id)].bg[d] }

// availCap is the capacity available to elastic flows on (link, dir).
func (l *Link) availCap(d Dir) float64 {
	a := l.Capacity - l.bg[d]
	if a < 0 {
		a = 0
	}
	return a
}

// AvailBandwidth returns the bottleneck available bandwidth (capacity minus
// background load) along src→dst in bits/sec. This is what the Remos
// substitute predicts and what the bandwidth gauges report; it corresponds to
// the "Available Bandwidth" series of Figures 10 and 12.
func (n *Network) AvailBandwidth(src, dst NodeID) float64 {
	path := n.route(src, dst)
	if len(path) == 0 {
		return 0
	}
	min := -1.0
	for _, h := range path {
		a := n.links[h.link].availCap(h.dir)
		if min < 0 || a < min {
			min = a
		}
	}
	if min < n.MinFlowRate {
		min = n.MinFlowRate
	}
	return min
}

// BottleneckShare returns the bandwidth a new elastic flow would currently
// obtain on src→dst: the max–min fair share given present flows and
// background load. The probe is solved in rates-only mode: real flows'
// rates are perturbed and then restored exactly, without touching their
// progress or completion events.
func (n *Network) BottleneckShare(src, dst NodeID) float64 {
	path := n.route(src, dst)
	if len(path) == 0 {
		return 0
	}
	n.flushDirty() // pending real dirt must settle normally, not via the probe
	probe := &Flow{path: path, remaining: 1, size: 1, net: n, index: len(n.flows)}
	n.flows = append(n.flows, probe)
	n.linkFlow(probe)
	n.solveDirty(solveProbe)
	share := probe.rate
	n.removeFlow(probe)
	n.solveDirty(solveRestore)
	return share
}
