package netsim

import "slices"

// Incremental, region-partitioned max–min reflow.
//
// The original solver recomputed every flow's rate on every flow start,
// finish, cancellation and background change — O(flows × links) work plus a
// cancel+reallocate of every completion event, per event. Once a fleet of
// applications shares one grid this is the hottest path in the repository.
//
// The solver below keeps the same progressive-filling algorithm but runs it
// only where an event can matter:
//
//   - Every (link, direction) is a resource carrying the list of elastic
//     flows that cross it. Events mark resources dirty: a changed background
//     load marks the link's directions, an added or removed flow marks its
//     path.
//   - At solve time the dirty set is expanded to its connected component in
//     the flow/resource bipartite graph (a flow ties together all resources
//     on its path). Max–min allocations decompose over connected components,
//     so flows outside the dirtied components provably keep their rates;
//     their progress and completion events are left untouched.
//   - Inside a component, filling runs over reusable scratch fields on the
//     resources themselves — no maps and no per-solve allocation. Flows
//     settle lazily: accumulated progress is folded into `remaining` only
//     when a flow's rate actually changes, and a flow whose recomputed rate
//     is unchanged keeps its completion event as-is. Changed completions
//     move via Kernel.Reschedule instead of cancel+reallocate.
//
// # Why max–min decomposes over connected components
//
// The correctness of region-partitioned reflow rests on one invariant:
// progressive filling on the whole network assigns a flow exactly the rate
// it would get from progressive filling restricted to the flow's connected
// component of the flow/resource bipartite graph (flows are vertices on one
// side, (link,direction) resources on the other; a flow is adjacent to every
// resource on its path).
//
// The argument: progressive filling raises all unfrozen flows' rates in
// lockstep until some resource saturates, freezes that resource's flows at
// their fair share, and repeats. Whether a resource saturates — and at what
// fill level — depends only on its capacity, its background load, and the
// number of its crossing flows still unfrozen. Every one of those flows is,
// by definition, in the same component as the resource. So the sequence of
// (fill level, saturating resource) events inside one component is entirely
// determined by that component: flows elsewhere can neither saturate its
// resources nor be frozen by them. Filling the components one at a time —
// or only the dirty ones — therefore produces the same fixed point as
// filling everything at once.
//
// Two bookkeeping invariants make the incremental version of this safe:
//
//   - Dirty expansion reaches the whole affected component. An event dirties
//     the resources it directly touches; the solver then walks flow→resource
//     adjacency until closure (the `seen` epoch). Anything outside the
//     closure shares no resource, transitively, with anything dirtied — by
//     the argument above its rates are already at the global fixed point and
//     must not be recomputed (their completion events stay put).
//   - Bit-identical arithmetic. Region members are sorted into global
//     (index) order before filling, so the floating-point operations inside
//     a component happen in the same order as a global recompute restricted
//     to that component. Same order ⇒ same rounding ⇒ byte-identical rates —
//     the property the equivalence oracles assert, not merely "close".
//
// Because components are independent by the argument above, the solver fills
// each dirty component separately — and, when Network.Workers is attached,
// fills disjoint components concurrently on the worker pool. Parallelism
// changes neither the arithmetic (each component's fill order is fixed by its
// sorted member list) nor kernel event order (settlement and completion
// rescheduling run serially afterwards, over all region flows in global
// index order), so any worker count produces byte-identical runs.
//
// GlobalReflow forces a global recompute on every solve (over the same
// lazy-settlement machinery) and anchors the equivalence tests;
// ReferenceRates retains the original algorithm itself.

// resource is the per-(link, direction) solver state. flows is maintained
// incrementally as transfers start and finish; avail/count are scratch for
// progressive filling, valid only during a solve.
type resource struct {
	flows []flowRef
	dirty bool
	seen  uint64 // region-visit epoch
	avail float64
	count int32
}

// flowRef locates a flow inside a resource's crossing list together with the
// index of this resource in the flow's path, so removal can fix the moved
// entry's back-pointer in O(1).
type flowRef struct {
	f   *Flow
	hop int32
}

func resIndex(h hop) int32 { return int32(h.link)*2 + int32(h.dir) }

// markDirty queues a resource for the next solve.
func (n *Network) markDirty(ri int32) {
	r := &n.res[ri]
	if !r.dirty {
		r.dirty = true
		n.dirtyRes = append(n.dirtyRes, ri)
	}
}

// linkFlow inserts f into the crossing list of every resource on its path
// and marks the path dirty.
func (n *Network) linkFlow(f *Flow) {
	f.hopIdx = make([]int32, len(f.path))
	for i, h := range f.path {
		ri := resIndex(h)
		r := &n.res[ri]
		f.hopIdx[i] = int32(len(r.flows))
		r.flows = append(r.flows, flowRef{f: f, hop: int32(i)})
		n.markDirty(ri)
	}
}

// removeFlow unlinks f from the active set: swap-remove from n.flows via the
// stored index (previously an O(flows) linear scan on every completion) and
// swap-remove from each crossing list, marking the path dirty. Removing a
// flow that is already gone is a no-op.
func (n *Network) removeFlow(f *Flow) {
	i := f.index
	if i < 0 || i >= len(n.flows) || n.flows[i] != f {
		return
	}
	last := len(n.flows) - 1
	n.flows[i] = n.flows[last]
	n.flows[i].index = i
	n.flows[last] = nil
	n.flows = n.flows[:last]
	f.index = -1
	for hi, h := range f.path {
		ri := resIndex(h)
		r := &n.res[ri]
		j := int(f.hopIdx[hi])
		lastj := len(r.flows) - 1
		moved := r.flows[lastj]
		r.flows[j] = moved
		moved.f.hopIdx[moved.hop] = int32(j)
		r.flows[lastj] = flowRef{}
		r.flows = r.flows[:lastj]
		n.markDirty(ri)
	}
}

// Batch defers rate recomputation while fn runs, so a scenario step that
// touches several links (e.g. the fleet crushing every access link of a
// server group) triggers one reflow instead of one per link. fn should only
// mutate background loads or start/cancel transfers; rates and completion
// events are settled once when the outermost batch ends.
func (n *Network) Batch(fn func()) {
	n.batching++
	defer func() {
		n.batching--
		if n.batching == 0 {
			n.solve()
		}
	}()
	fn()
}

// solve recomputes rates for the dirtied regions (unless batched or clean).
func (n *Network) solve() {
	if n.batching > 0 || len(n.dirtyRes) == 0 {
		return
	}
	n.solveDirty(solveNormal)
}

// flushDirty forces pending dirt to settle even inside a batch; used before
// probe solves so they cannot swallow real pending work.
func (n *Network) flushDirty() {
	if len(n.dirtyRes) > 0 {
		n.solveDirty(solveNormal)
	}
}

// collectRegion expands the dirty set to its connected components. It fills
// two views of the same membership: n.compFlows / n.compRes grouped by
// component (each group sorted into global order, boundaries in n.compSpans)
// for per-component filling, and n.regionFlows / n.regionRes sorted into one
// global order for settlement. With GlobalReflow set, every flow and resource
// is collected into a single component regardless of dirt.
func (n *Network) collectRegion() {
	n.epoch++
	n.regionFlows = n.regionFlows[:0]
	n.regionRes = n.regionRes[:0]
	n.compFlows = n.compFlows[:0]
	n.compRes = n.compRes[:0]
	n.compSpans = n.compSpans[:0]
	if n.GlobalReflow {
		for _, ri := range n.dirtyRes {
			n.res[ri].dirty = false
		}
		n.dirtyRes = n.dirtyRes[:0]
		for ri := range n.res {
			if len(n.res[ri].flows) > 0 {
				n.regionRes = append(n.regionRes, int32(ri))
			}
		}
		n.regionFlows = append(n.regionFlows, n.flows...)
		// One component covering everything, filled in the historical
		// (unsorted) global-reflow order.
		n.compFlows = append(n.compFlows, n.regionFlows...)
		n.compRes = append(n.compRes, n.regionRes...)
		n.compSpans = append(n.compSpans, compSpan{
			flowLo: 0, flowHi: int32(len(n.compFlows)),
			resLo: 0, resHi: int32(len(n.compRes)),
		})
		return
	}
	for _, ri := range n.dirtyRes {
		n.res[ri].dirty = false
	}
	// Walk each dirty seed to its component's closure. Seeds landing in an
	// already-collected component are skipped by the epoch check, so each
	// component is collected exactly once, contiguously.
	for _, seed := range n.dirtyRes {
		if n.res[seed].seen == n.epoch {
			continue
		}
		flowLo, resLo := int32(len(n.compFlows)), int32(len(n.compRes))
		n.res[seed].seen = n.epoch
		n.compRes = append(n.compRes, seed)
		n.stack = append(n.stack[:0], seed)
		for len(n.stack) > 0 {
			ri := n.stack[len(n.stack)-1]
			n.stack = n.stack[:len(n.stack)-1]
			for _, fr := range n.res[ri].flows {
				f := fr.f
				if f.seen == n.epoch {
					continue
				}
				f.seen = n.epoch
				n.compFlows = append(n.compFlows, f)
				for _, h := range f.path {
					rj := resIndex(h)
					r := &n.res[rj]
					if r.seen != n.epoch {
						r.seen = n.epoch
						n.compRes = append(n.compRes, rj)
						n.stack = append(n.stack, rj)
					}
				}
			}
		}
		if int32(len(n.compFlows)) == flowLo {
			// A dirtied resource with no crossing flows (e.g. the unused
			// direction of a changed link): nothing to fill, no span. Its
			// resources stay collected so scratch init covers them.
			continue
		}
		// Sort the component's members into global order so the fill's
		// floating-point operations run in the same order as a global
		// recompute restricted to this component — byte-identical rates.
		slices.Sort(n.compRes[resLo:])
		slices.SortFunc(n.compFlows[flowLo:], func(a, b *Flow) int { return a.index - b.index })
		n.compSpans = append(n.compSpans, compSpan{
			flowLo: flowLo, flowHi: int32(len(n.compFlows)),
			resLo: resLo, resHi: int32(len(n.compRes)),
		})
	}
	n.dirtyRes = n.dirtyRes[:0]
	n.regionFlows = append(n.regionFlows, n.compFlows...)
	n.regionRes = append(n.regionRes, n.compRes...)
	slices.Sort(n.regionRes)
	slices.SortFunc(n.regionFlows, func(a, b *Flow) int { return a.index - b.index })
}

// solveMode selects how solveDirty treats flow state around the recompute.
type solveMode int

const (
	// solveNormal saves each region flow's previous rate, recomputes, then
	// settles progress and moves completions for flows whose rate changed.
	solveNormal solveMode = iota
	// solveProbe saves previous rates and recomputes rates only — no
	// settlement, no completion maintenance. Used while a BottleneckShare
	// probe is inserted; time does not advance, so the perturbed rates are
	// transient.
	solveProbe
	// solveRestore recomputes after the probe is removed, comparing against
	// the rates saved by the preceding solveProbe (not the transient ones).
	// When restoration is exact — the overwhelmingly common case — nothing
	// is settled or rescheduled; if floating-point tie-breaking across
	// briefly-bridged regions restores a rate inexactly, the flow settles
	// and its completion moves, keeping rate and event consistent.
	solveRestore
)

// solveDirty collects the dirtied regions and re-runs progressive filling
// inside them, one connected component at a time. Components share no flows
// and no resources, so they fill independently — in parallel on n.Workers
// when attached, serially otherwise — with byte-identical rates either way.
func (n *Network) solveDirty(mode solveMode) {
	if len(n.dirtyRes) == 0 {
		return
	}
	n.collectRegion()
	n.stats.Solves++
	n.stats.Components += uint64(len(n.compSpans))
	for _, ri := range n.regionRes {
		r := &n.res[ri]
		l := n.links[ri>>1]
		r.avail = l.availCap(Dir(ri & 1))
		r.count = int32(len(r.flows))
	}
	epoch := n.epoch
	for _, f := range n.regionFlows {
		if mode != solveRestore {
			f.prevRate = f.rate
		}
		f.rate = 0
	}
	if n.Workers != nil && len(n.compSpans) > 1 {
		n.stats.ParallelFills++
		n.Workers.Do(len(n.compSpans), func(i int) {
			sp := n.compSpans[i]
			n.fillComponent(n.compFlows[sp.flowLo:sp.flowHi], n.compRes[sp.resLo:sp.resHi], epoch)
		})
	} else {
		for _, sp := range n.compSpans {
			n.fillComponent(n.compFlows[sp.flowLo:sp.flowHi], n.compRes[sp.resLo:sp.resHi], epoch)
		}
	}
	if mode == solveProbe {
		return
	}
	// Settle progress and move completions only for flows whose rate actually
	// changed; stable flows keep their event and their lazily-settled state.
	// (In solveRestore, prevRate is the pre-probe rate, which was also the
	// rate in effect since `last` — the probe's transient rates existed for
	// zero simulated time.)
	now := n.K.Now()
	for _, f := range n.regionFlows {
		if f.rate == f.prevRate {
			continue
		}
		if dt := now - f.last; dt > 0 {
			if f.persistent {
				f.delivered += f.prevRate * dt
			} else {
				f.remaining -= f.prevRate * dt
				if f.remaining < 0 {
					f.remaining = 0
				}
			}
		}
		f.last = now
		if f.persistent {
			// Class flows never complete; there is no event to move.
			continue
		}
		n.rescheduleCompletion(f)
	}
}

// fillComponent runs progressive filling over one connected component:
// repeatedly find the most constrained resource, freeze the flows
// bottlenecked there at the equal share, remove that capacity, and continue.
// Saturated links still grant MinFlowRate so transfers always trickle (the
// paper's control run bottoms out near 1e-4 Mbps rather than zero).
//
// Components containing demand-capped class flows take the demand-aware
// variant; all others run the original arithmetic unchanged, keeping runs
// without class flows byte-identical to the pre-class solver.
//
// The fill touches only the component's own flows (rate, frozen) and
// resources (avail, count scratch) plus read-only network config, so disjoint
// components may fill concurrently. Within a component the arithmetic order
// is fixed by the sorted member order, independent of worker count.
func (n *Network) fillComponent(flows []*Flow, resIdx []int32, epoch uint64) {
	for _, f := range flows {
		if f.limited {
			n.fillComponentDemand(flows, resIdx, epoch)
			return
		}
	}
	n.fillComponentElastic(flows, resIdx, epoch)
}

func (n *Network) fillComponentElastic(flows []*Flow, resIdx []int32, epoch uint64) {
	unfrozen := len(flows)
	for unfrozen > 0 {
		minShare := -1.0
		for _, ri := range resIdx {
			r := &n.res[ri]
			if r.count == 0 {
				continue
			}
			share := r.avail / float64(r.count)
			if minShare < 0 || share < minShare {
				minShare = share
			}
		}
		if minShare < 0 {
			break // no constrained resources left
		}
		if minShare < n.MinFlowRate {
			minShare = n.MinFlowRate
		}
		progressed := false
		for _, f := range flows {
			if f.frozen == epoch {
				continue
			}
			// Freeze f if any of its resources is at the bottleneck share.
			bottled := false
			for _, h := range f.path {
				r := &n.res[resIndex(h)]
				if r.count > 0 && r.avail/float64(r.count) <= minShare+1e-12 {
					bottled = true
					break
				}
			}
			if !bottled {
				continue
			}
			f.rate = minShare
			f.frozen = epoch
			unfrozen--
			progressed = true
			for _, h := range f.path {
				r := &n.res[resIndex(h)]
				r.avail -= minShare
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
		if !progressed {
			// Numerical corner: give every remaining flow the floor rate.
			for _, f := range flows {
				if f.frozen != epoch {
					f.rate = n.MinFlowRate
					f.frozen = epoch
					unfrozen--
				}
			}
		}
	}
}

// fillComponentDemand is progressive filling extended with demand caps: the
// standard max–min treatment of rate-limited sources. Each round first
// freezes every unfrozen class flow whose demand is at or below the current
// fair share at exactly its demand — it wants no more — returning the
// residual capacity to the pool before the share is re-derived. Class flows
// whose demand exceeds the share behave like elastic flows and freeze at
// the bottleneck share. Freezing a flow at ≤ the minimum share can only
// raise the remaining resources' shares, so the batched freeze is
// order-independent within a round and the loop terminates (every round
// freezes at least one flow).
func (n *Network) fillComponentDemand(flows []*Flow, resIdx []int32, epoch uint64) {
	unfrozen := len(flows)
	for unfrozen > 0 {
		minShare := -1.0
		for _, ri := range resIdx {
			r := &n.res[ri]
			if r.count == 0 {
				continue
			}
			share := r.avail / float64(r.count)
			if minShare < 0 || share < minShare {
				minShare = share
			}
		}
		if minShare < 0 {
			break // no constrained resources left
		}
		if minShare < n.MinFlowRate {
			minShare = n.MinFlowRate
		}
		capped := false
		for _, f := range flows {
			if f.frozen == epoch || !f.limited || f.demand > minShare {
				continue
			}
			f.rate = f.demand
			f.frozen = epoch
			unfrozen--
			capped = true
			for _, h := range f.path {
				r := &n.res[resIndex(h)]
				r.avail -= f.demand
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
		if capped {
			continue // re-derive the share over the freed capacity
		}
		progressed := false
		for _, f := range flows {
			if f.frozen == epoch {
				continue
			}
			// Freeze f if any of its resources is at the bottleneck share.
			bottled := false
			for _, h := range f.path {
				r := &n.res[resIndex(h)]
				if r.count > 0 && r.avail/float64(r.count) <= minShare+1e-12 {
					bottled = true
					break
				}
			}
			if !bottled {
				continue
			}
			f.rate = minShare
			f.frozen = epoch
			unfrozen--
			progressed = true
			for _, h := range f.path {
				r := &n.res[resIndex(h)]
				r.avail -= minShare
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
		if !progressed {
			// Numerical corner: give every remaining flow the floor rate
			// (capped at demand for class flows).
			for _, f := range flows {
				if f.frozen != epoch {
					rate := n.MinFlowRate
					if f.limited && f.demand < rate {
						rate = f.demand
					}
					f.rate = rate
					f.frozen = epoch
					unfrozen--
				}
			}
		}
	}
}

// rescheduleCompletion re-aims f's completion event at the ETA under its new
// rate, reusing the queued event (and its closure) when possible.
func (n *Network) rescheduleCompletion(f *Flow) {
	if f.rate <= 0 {
		// Fully stalled; rescheduled when a later solve restores a rate. The
		// cancelled event struct stays on the flow so the resume can re-arm
		// it instead of allocating (kernel Reuse).
		f.completion.Cancel()
		return
	}
	// The completion lives on the flow's hosting kernel (the destination's
	// region shard under a shard plane); under the sequenced merged driver
	// this cross-kernel churn is serial and oracle-ordered.
	fk := f.k
	if fk == nil {
		fk = n.K
	}
	at := n.K.Now() + f.remaining/f.rate
	if fk.Reschedule(f.completion, at) {
		return
	}
	if f.complete == nil {
		f.complete = func() { f.net.completeFlow(f) }
	}
	f.completion = fk.Reuse(f.completion, at, f.complete)
}
