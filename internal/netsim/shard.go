package netsim

import (
	"fmt"
	"math"

	"archadapt/internal/sim"
)

// Region-sharded event hosting.
//
// A ShardPlane maps every network node to a shard of a sequenced sim.Shards
// set, by grid region: a host belongs to its router's region, and region r
// lives on shard r mod len(set). Once attached (Grid.AttachShards), the
// network hosts its per-node events — control-message deliveries, flow
// completions, local copies — on the owning node's shard kernel instead of
// the control kernel. Deliveries that stay inside one shard are scheduled
// directly; deliveries that cross shards go through the source shard's
// conservative ShardKernel.Send outbox and are merged at the window barrier.
//
// The conservative lookahead that makes the windows sound is topological:
// every cross-region path crosses at least one backbone link, so its
// propagation delay alone is at least the minimum backbone link latency
// (Grid.Lookahead), and the per-hop control overhead makes the total delay
// strictly larger. Driving the run with Shards.Run(until, lookahead)
// therefore never produces a delivery before the barrier that must carry it
// — and the exchange's horizon panic enforces exactly that, continuously.
//
// The plane requires a sequenced shard set (sim.NewSeqShards): the shared
// sequence counter is what keeps a sharded run byte-identical to the
// single-kernel oracle, and the serial merged driver is what makes direct
// cross-shard completion rescheduling (the solver's Reschedule/Reuse churn
// on flow completion events) safe.
type ShardPlane struct {
	set     *sim.Shards
	shardOf []int32 // indexed by NodeID; nodes beyond the slice map to 0
}

// Set returns the underlying shard set.
func (p *ShardPlane) Set() *sim.Shards { return p.set }

// Shard returns the shard index hosting a node's events.
func (p *ShardPlane) shard(node NodeID) int {
	if int(node) < len(p.shardOf) {
		return int(p.shardOf[node])
	}
	return 0
}

// ShardOf returns the shard index hosting a node's events.
func (p *ShardPlane) ShardOf(node NodeID) int { return p.shard(node) }

// KernelFor returns the kernel hosting a node's events.
func (p *ShardPlane) KernelFor(node NodeID) *sim.Kernel {
	return p.set.Shard(p.shard(node)).Kernel
}

// ForEachKernel visits every shard kernel — the hook for per-kernel wiring
// that must span the whole plane (e.g. the tracer's FireHook).
func (p *ShardPlane) ForEachKernel(fn func(*sim.Kernel)) {
	for i := 0; i < p.set.Len(); i++ {
		fn(p.set.Shard(i).Kernel)
	}
}

// Lookahead returns the conservative cross-region lookahead derived from the
// topology: the minimum propagation delay over the backbone links. Any
// cross-region delivery crosses at least one backbone hop, and per-hop
// control overhead pushes its total delay strictly above this bound, so a
// window of exactly this width never needs an intra-window cross-shard
// delivery. A single-region grid has no backbone and returns +Inf: there is
// nothing to look ahead across, and Shards.Run treats an infinite window as
// one window spanning the whole run.
func (g *Grid) Lookahead() float64 {
	la := math.Inf(1)
	for _, id := range g.Backbone {
		if d := g.Net.links[id].PropDelay; d < la {
			la = d
		}
	}
	return la
}

// AttachShards binds a sequenced shard set to the grid's network and returns
// the routing plane. Shard 0 is the control shard: the caller's fleet
// control plane, plus any node the plane has never seen, lives there. Region
// r (router r and its hosts) maps to shard r mod set.Len(), so a set sized
// at the router count gives every region its own kernel and a smaller set
// folds regions together deterministically.
func (g *Grid) AttachShards(set *sim.Shards) *ShardPlane {
	if !set.Sequenced() {
		panic("netsim: AttachShards requires a sequenced shard set (sim.NewSeqShards)")
	}
	if g.Net.Shard != nil {
		panic("netsim: shard plane already attached")
	}
	n := set.Len()
	p := &ShardPlane{set: set, shardOf: make([]int32, len(g.Net.nodes))}
	for i, r := range g.Routers {
		p.shardOf[r] = int32(i % n)
	}
	for _, h := range g.Hosts {
		p.shardOf[h] = int32(g.routerIdx[h] % n)
	}
	g.Net.Shard = p
	return p
}

// kernelFor returns the kernel hosting a node's events: the control kernel
// without a shard plane, the node's region shard with one.
func (n *Network) kernelFor(node NodeID) *sim.Kernel {
	if n.Shard == nil {
		return n.K
	}
	return n.Shard.KernelFor(node)
}

// deliver schedules an arrival callback at now+delay, hosted on the
// destination node's kernel. Same-shard deliveries are scheduled directly;
// cross-shard deliveries go through the source shard's conservative Send
// outbox, validated against the exchange horizon at the next barrier.
func (n *Network) deliver(src, dst NodeID, delay float64, fn func(), fnArg func(any), arg any) {
	if delay < 0 {
		delay = 0
	}
	sp := n.Shard
	if sp == nil {
		if fnArg != nil {
			n.K.AfterAnonArg(delay, fnArg, arg)
		} else {
			n.K.AfterAnon(delay, fn)
		}
		return
	}
	si, di := sp.shard(src), sp.shard(dst)
	at := n.K.Now() + delay
	if si == di {
		k := sp.set.Shard(di).Kernel
		if fnArg != nil {
			k.AtAnonArg(at, fnArg, arg)
		} else {
			k.AtAnon(at, fn)
		}
		return
	}
	s := sp.set.Shard(si)
	if fnArg != nil {
		s.SendArg(di, at, fnArg, arg)
	} else {
		s.Send(di, at, fn)
	}
}

// VerifyShardHosting cross-checks the plane's routing table: every host maps
// to its region's shard, every router to its own index's shard. It returns
// an error describing the first mismatch — a harness-level invariant for the
// chaos soak.
func (g *Grid) VerifyShardHosting() error {
	p := g.Net.Shard
	if p == nil {
		return nil
	}
	n := p.set.Len()
	for i, r := range g.Routers {
		if got := p.shard(r); got != i%n {
			return fmt.Errorf("netsim: router %d hosted on shard %d, want %d", i, got, i%n)
		}
	}
	for _, h := range g.Hosts {
		if got, want := p.shard(h), g.routerIdx[h]%n; got != want {
			return fmt.Errorf("netsim: host %v (region %d) hosted on shard %d, want %d",
				h, g.routerIdx[h], got, want)
		}
	}
	return nil
}
