package netsim

import (
	"testing"

	"archadapt/internal/sim"
)

func TestGenerateGridShape(t *testing.T) {
	g := GenerateGrid(sim.NewKernel(), GridSpec{Routers: 8, HostsPerRouter: 3, CrossLinks: 2})
	if len(g.Routers) != 8 {
		t.Fatalf("routers = %d, want 8", len(g.Routers))
	}
	if g.NumHosts() != 24 {
		t.Fatalf("hosts = %d, want 24", g.NumHosts())
	}
	// 24 access + 7 chain + 2 chords.
	if got := g.Net.NumLinks(); got != 33 {
		t.Fatalf("links = %d, want 33", got)
	}
	if got := len(g.Backbone); got != 9 {
		t.Fatalf("backbone links = %d, want 9", got)
	}
	for _, h := range g.Hosts {
		if g.Net.Node(h).Router {
			t.Fatalf("host %v marked as router", h)
		}
		r := g.RouterOf(h)
		if !g.Net.Node(r).Router {
			t.Fatalf("RouterOf(%v) = %v is not a router", h, r)
		}
		link := g.Net.Link(g.AccessLink(h))
		if link.A != h && link.B != h {
			t.Fatalf("access link of %v does not touch it", h)
		}
	}
}

func TestGenerateGridConnectivity(t *testing.T) {
	g := GenerateGrid(sim.NewKernel(), GridSpec{Routers: 12, HostsPerRouter: 2, Seed: 7})
	// Every host pair must be routable (route panics if not).
	src := g.Hosts[0]
	for _, dst := range g.Hosts[1:] {
		if hops := g.Net.PathHops(src, dst); hops < 2 {
			t.Fatalf("path %v->%v has %d hops, want >=2", src, dst, hops)
		}
	}
}

func TestGenerateGridDeterministic(t *testing.T) {
	spec := GridSpec{Routers: 16, HostsPerRouter: 2, CrossLinks: 4, Seed: 42}
	a := GenerateGrid(sim.NewKernel(), spec)
	b := GenerateGrid(sim.NewKernel(), spec)
	if a.Net.NumLinks() != b.Net.NumLinks() {
		t.Fatalf("link counts differ: %d vs %d", a.Net.NumLinks(), b.Net.NumLinks())
	}
	for i := range a.Backbone {
		la, lb := a.Net.Link(a.Backbone[i]), b.Net.Link(b.Backbone[i])
		if la.A != lb.A || la.B != lb.B {
			t.Fatalf("backbone link %d differs: %v-%v vs %v-%v", i, la.A, la.B, lb.A, lb.B)
		}
	}
}

func TestGenerateGridDefaults(t *testing.T) {
	g := GenerateGrid(sim.NewKernel(), GridSpec{Routers: 5, HostsPerRouter: 2})
	if g.Spec.BackboneBps != 10e6 || g.Spec.AccessBps != 10e6 {
		t.Fatalf("default capacities = %v/%v, want 10e6", g.Spec.BackboneBps, g.Spec.AccessBps)
	}
	// Routers/4 = 1 default chord, like Figure 6's R2-R4 cross link.
	if got := len(g.Backbone); got != 5 {
		t.Fatalf("backbone links = %d, want 4 chain + 1 chord", got)
	}
	for _, h := range g.Hosts {
		if got := g.Net.Link(g.AccessLink(h)).Capacity; got != 10e6 {
			t.Fatalf("access capacity = %v, want 10e6", got)
		}
	}
}

func TestRouterIndex(t *testing.T) {
	g := GenerateGrid(sim.NewKernel(), GridSpec{Routers: 4, HostsPerRouter: 3, Seed: 1})
	for r, hosts := range g.HostsByRouter {
		for _, h := range hosts {
			if got := g.RouterIndex(h); got != r {
				t.Errorf("RouterIndex(%v) = %d, want %d", h, got, r)
			}
			if g.Routers[g.RouterIndex(h)] != g.RouterOf(h) {
				t.Errorf("RouterIndex and RouterOf disagree for host %v", h)
			}
		}
	}
	// Routers themselves are not hosts.
	if got := g.RouterIndex(g.Routers[0]); got != -1 {
		t.Errorf("RouterIndex(router) = %d, want -1", got)
	}
}
