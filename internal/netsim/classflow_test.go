package netsim

import (
	"math"
	"testing"

	"archadapt/internal/sim"
)

func approx(t *testing.T, label string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", label, got, want, tol)
	}
}

// A demand-capped class never takes more than its offered rate; the freed
// capacity goes to the elastic flows sharing its links.
func TestClassFlowDemandCap(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	cf := n.StartClassFlow(a, b, 2e6, "class")
	doneAt := -1.0
	n.StartTransfer(a, b, 8e6, "bulk", func(*Flow) { doneAt = k.Now() })
	// Fair share on the 10 Mbps path would be 5 Mbps each; the class wants
	// only 2 Mbps, so the bulk flow gets the remaining 8 Mbps.
	approx(t, "class rate", cf.Rate(), 2e6, 1)
	k.Run(1.5)
	approx(t, "bulk done", doneAt, 1.0, 1e-6)
	// After the bulk completes the class still takes exactly its demand.
	approx(t, "class rate after", cf.Rate(), 2e6, 1)
	approx(t, "delivered", cf.Delivered(), 2e6*1.5, 1)
}

// A class whose demand exceeds its fair share behaves like an elastic flow
// and is held at the bottleneck share.
func TestClassFlowBottleneckedAtFairShare(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	cf := n.StartClassFlow(a, b, 20e6, "class")
	n.StartTransfer(a, b, 100e6, "bulk", nil)
	approx(t, "class rate", cf.Rate(), 5e6, 1)
	k.Run(2)
	approx(t, "delivered", cf.Delivered(), 10e6, 1)
}

func TestSetDemandAdjustsAllocation(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	cf := n.StartClassFlow(a, b, 8e6, "class")
	approx(t, "initial rate", cf.Rate(), 8e6, 1)
	k.Run(1)
	cf.SetDemand(3e6)
	approx(t, "lowered rate", cf.Rate(), 3e6, 1)
	k.Run(2)
	// 8 Mbps for 1 s, then 3 Mbps for 1 s.
	approx(t, "delivered", cf.Delivered(), 8e6+3e6, 1)
	cf.SetDemand(0)
	approx(t, "zero-demand rate", cf.Rate(), 0, 1e-9)
	k.Run(3)
	approx(t, "delivered stalled", cf.Delivered(), 11e6, 1)
}

func TestSameHostClassFlow(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddHost("a")
	cf := n.StartClassFlow(a, a, 4e6, "local")
	approx(t, "local rate", cf.Rate(), 4e6, 1e-9)
	k.Run(2)
	cf.SetDemand(1e6)
	k.Run(3)
	approx(t, "delivered", cf.Delivered(), 2*4e6+1e6, 1)
	if n.ActiveFlows() != 0 {
		t.Fatalf("local class flows must not register with the solver")
	}
}

// Cancelling a class flow returns its capacity and freezes Delivered.
func TestClassFlowCancel(t *testing.T) {
	k, n, a, b, _, _ := line(t)
	cf := n.StartClassFlow(a, b, 4e6, "class")
	var bulk *Flow
	bulk = n.StartTransfer(a, b, 100e6, "bulk", nil)
	approx(t, "bulk rate with class", bulk.Rate(), 6e6, 1)
	k.Run(1)
	cf.Cancel()
	approx(t, "bulk rate after cancel", bulk.Rate(), 10e6, 1)
	d := cf.Delivered()
	approx(t, "delivered frozen", d, 4e6, 1)
	k.Run(2)
	if cf.Delivered() != d {
		t.Fatalf("Delivered moved after Cancel: %v -> %v", d, cf.Delivered())
	}
	if cf.Rate() != 0 {
		t.Fatalf("cancelled class rate = %v, want 0", cf.Rate())
	}
}

// The incremental solver with mixed class + elastic flows must agree with
// the global reference oracle (which mirrors the demand pre-pass).
func TestClassFlowVerifyReference(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	a := n.AddHost("a")
	r1 := n.AddRouter("r1")
	r2 := n.AddRouter("r2")
	b := n.AddHost("b")
	c := n.AddHost("c")
	n.Connect(a, r1, 10e6, 1e-3)
	l := n.Connect(r1, r2, 20e6, 2e-3)
	n.Connect(r2, b, 10e6, 1e-3)
	n.Connect(r2, c, 5e6, 1e-3)

	check := func(stage string) {
		t.Helper()
		if err := n.VerifyReference(1e-6); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
	cf1 := n.StartClassFlow(a, b, 3e6, "c1")
	check("one class")
	cf2 := n.StartClassFlow(a, c, 50e6, "c2") // far over capacity: elastic behavior
	check("two classes")
	n.StartTransfer(a, b, 200e6, "bulk1", nil)
	n.StartTransfer(a, c, 200e6, "bulk2", nil)
	check("classes + bulk")
	k.Run(1)
	cf1.SetDemand(9e6)
	check("after SetDemand")
	n.SetBackgroundBoth(l, 15e6)
	check("after background")
	cf2.SetDemand(0.5e6)
	check("after second SetDemand")
	k.Run(3)
	cf1.Cancel()
	check("after cancel")
}

// Batch defers SetDemand re-solves like any other mutation.
func TestSetDemandBatched(t *testing.T) {
	_, n, a, b, _, _ := line(t)
	cf := n.StartClassFlow(a, b, 1e6, "class")
	cf2 := n.StartClassFlow(a, b, 1e6, "class2")
	before := n.Stats().Solves
	n.Batch(func() {
		cf.SetDemand(2e6)
		cf2.SetDemand(3e6)
	})
	if got := n.Stats().Solves - before; got != 1 {
		t.Fatalf("batched SetDemand ran %d solves, want 1", got)
	}
	approx(t, "rate 1", cf.Rate(), 2e6, 1)
	approx(t, "rate 2", cf2.Rate(), 3e6, 1)
}
