package fleet_test

import (
	"reflect"
	"testing"

	"archadapt/internal/chaos"
	"archadapt/internal/fleet"
)

// The region-sharded execution plane's contract: Shards is a pure hosting
// knob. Every scenario in the catalog must produce byte-identical summaries,
// migration records and fingerprints with event execution hosted on per-region
// shard kernels (Shards ∈ {1, -1: one per region}) as on the retained
// single-kernel oracle (Shards = 0). Like the parallel-plane suite, the runs
// are held to chaos.Fingerprint, which folds in the summary table,
// per-migration records, rejections, the slot ledger and the migration
// high-water mark.

var shardCounts = []int{1, -1}

func runSharded(t *testing.T, opts fleet.ScenarioOptions, shards int) *fleet.ScenarioResult {
	t.Helper()
	opts.Shards = shards
	res, err := fleet.RunScenario(opts)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return res
}

func TestCatalogShardedEquivalence(t *testing.T) {
	for _, e := range fleet.Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			oracle := runSharded(t, e.Opts, 0)
			oracleFP := chaos.Fingerprint(oracle)
			for _, s := range shardCounts {
				res := runSharded(t, e.Opts, s)
				if !reflect.DeepEqual(res.Summaries, oracle.Summaries) {
					t.Fatalf("shards=%d summaries diverge from the single-kernel oracle:\noracle:\n%s\nsharded:\n%s",
						s, oracle.Table(), res.Table())
				}
				if fp := chaos.Fingerprint(res); fp != oracleFP {
					t.Fatalf("shards=%d fingerprint diverges from the single-kernel oracle:\n--- oracle\n%s\n--- shards=%d\n%s",
						s, oracleFP, s, fp)
				}
				for _, name := range oracle.Fleet.Apps() {
					om := oracle.Fleet.App(name).Migrations
					sm := res.Fleet.App(name).Migrations
					if !reflect.DeepEqual(om, sm) {
						t.Fatalf("shards=%d: %s migration records diverge:\n%+v\nvs\n%+v", s, name, om, sm)
					}
				}
			}
		})
	}
}

// TestShardedRoutingExercised guards against the equivalence suite passing
// vacuously: a per-region sharded run must actually host events on more than
// one shard kernel and route cross-region deliveries through the exchange.
func TestShardedRoutingExercised(t *testing.T) {
	opts := fleet.ScenarioOptions{
		Apps: 6, Seed: 11, Duration: 240, Adaptive: true, Shards: -1,
		CrushStart: 120, CrushStagger: 0, CrushDuration: 60,
	}
	run, err := fleet.StartScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Shards == nil || run.Shards.Len() < 2 {
		t.Fatalf("expected a multi-shard run, got %+v", run.Shards)
	}
	if err := run.Grid.VerifyShardHosting(); err != nil {
		t.Fatal(err)
	}
	res := run.Finish()
	if got := res.Fleet.Net.CompletedFlows(); got == 0 {
		t.Fatalf("sharded run completed no flows")
	}
}
