package fleet

import (
	"fmt"
	"math"

	"archadapt/internal/core"
	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// ScenarioOptions configures a canned fleet run: generate a grid sized for
// N applications, admit them (optionally staggered), aim Figure 7-style
// bandwidth competition at each application's primary group in turn, and run
// to Duration. It is the fleet equivalent of experiment.Options and drives
// cmd/fleet, the end-to-end tests, and BenchmarkFleet.
type ScenarioOptions struct {
	// Apps is the number of applications to admit (default 8).
	Apps int
	// App is the per-application template; Name is overridden per app.
	App AppSpec

	// Routers and HostsPerRouter size the grid; zero auto-sizes so every
	// process of every application gets its own host slot.
	Routers        int
	HostsPerRouter int

	Seed uint64
	// Duration of the run in simulated seconds (default 600); the fleet
	// drains for a further 120 s after clients stop.
	Duration float64
	// AdmitStagger spaces admissions (default 0: all admitted at t=0).
	AdmitStagger float64

	// CrushStart, CrushStagger and CrushDuration schedule the per-app
	// competition: app i's primary paths are crushed during
	// [CrushStart+i*CrushStagger, +CrushDuration) — but never sooner than
	// 100 s after its admission, so Remos has warmed (the paper's
	// pre-querying) and gauges are reporting. CrushDuration 0 defaults to
	// 240 s; CrushStart <0 disables contention entirely.
	CrushStart    float64
	CrushStagger  float64
	CrushDuration float64

	// Adaptive enables repairs (default via Config); Manager tunes each
	// application's architecture manager.
	Adaptive bool
	Manager  core.Config
	// HostCapacity overrides the auto-sized per-host slot count.
	HostCapacity int

	// GlobalReflow forces the network's pre-incremental global solver (every
	// flow recomputed on every change). Test/bench escape hatch: the solver
	// equivalence test runs the same scenario both ways and requires
	// identical summaries.
	GlobalReflow bool
	// PerAppMonitoring forces the pre-sharding monitoring design (a private
	// bus pair and gauge manager per application) instead of the fleet-shared
	// plane. Same contract as GlobalReflow: the monitoring equivalence test
	// runs both ways and requires identical summaries.
	PerAppMonitoring bool
}

func (o ScenarioOptions) withDefaults() ScenarioOptions {
	if o.Apps < 1 {
		o.Apps = 8
	}
	o.App = o.App.withDefaults()
	if o.Duration <= 0 {
		o.Duration = 600
	}
	if o.CrushDuration <= 0 {
		o.CrushDuration = 240
	}
	if o.HostCapacity < 1 {
		o.HostCapacity = 1
	}
	if o.Routers <= 0 || o.HostsPerRouter <= 0 {
		// Auto-size: one slot per process plus one for the Remos collector.
		perApp := 2 + o.App.Groups*(o.App.ServersPerGroup+o.App.SparesPerGroup) + o.App.Clients
		slots := o.Apps*perApp + 1
		hostsNeeded := (slots + o.HostCapacity - 1) / o.HostCapacity
		if o.HostsPerRouter <= 0 {
			o.HostsPerRouter = 4
		}
		if o.Routers <= 0 {
			o.Routers = int(math.Ceil(float64(hostsNeeded) / float64(o.HostsPerRouter)))
			if o.Routers < 3 {
				o.Routers = 3
			}
		}
	}
	return o
}

// ScenarioResult bundles the finished fleet with its summaries.
type ScenarioResult struct {
	Opts      ScenarioOptions
	Grid      *netsim.Grid
	Fleet     *Fleet
	Summaries []AppSummary
}

// Table renders the result's per-app table.
func (r *ScenarioResult) Table() string { return Table(r.Summaries) }

// RunScenario executes one fleet run to completion. Runs are deterministic:
// the same options (including Seed) produce identical summaries.
func RunScenario(opts ScenarioOptions) (*ScenarioResult, error) {
	opts = opts.withDefaults()
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{
		Routers:        opts.Routers,
		HostsPerRouter: opts.HostsPerRouter,
		Seed:           opts.Seed,
	})
	grid.Net.GlobalReflow = opts.GlobalReflow
	f, err := New(k, grid, opts.Seed, Config{
		Manager:          opts.Manager,
		Adaptive:         opts.Adaptive,
		HostCapacity:     opts.HostCapacity,
		PerAppMonitoring: opts.PerAppMonitoring,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.Apps; i++ {
		spec := opts.App
		spec.Name = fmt.Sprintf("app%02d", i)
		admitAt := float64(i) * opts.AdmitStagger
		admit := func() {
			// Rejections are recorded on the fleet; the run continues with
			// whatever the grid could hold.
			_, _ = f.Admit(spec)
		}
		if admitAt <= 0 {
			admit()
		} else {
			k.At(admitAt, admit)
		}
		if opts.CrushStart >= 0 {
			name := spec.Name
			crushAt := opts.CrushStart + float64(i)*opts.CrushStagger
			if min := admitAt + 100; crushAt < min {
				crushAt = min
			}
			k.At(crushAt, func() { _ = f.CrushPrimary(name) })
			k.At(crushAt+opts.CrushDuration, func() { f.RestorePrimary(name) })
		}
	}
	k.Run(opts.Duration)
	f.Stop()
	k.Run(opts.Duration + 120) // drain in-flight transfers and gauge churn
	return &ScenarioResult{Opts: opts, Grid: grid, Fleet: f, Summaries: f.Summaries()}, nil
}
