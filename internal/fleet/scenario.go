package fleet

import (
	"fmt"
	"math"

	"archadapt/internal/core"
	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// ScenarioOptions configures a canned fleet run: generate a grid sized for
// N applications, admit them (optionally staggered), aim Figure 7-style
// bandwidth competition at each application's primary group in turn, and run
// to Duration. It is the fleet equivalent of experiment.Options and drives
// cmd/fleet, the end-to-end tests, and BenchmarkFleet.
type ScenarioOptions struct {
	// Apps is the number of applications to admit (default 8).
	Apps int
	// App is the per-application template; Name is overridden per app.
	App AppSpec
	// AppMix, when non-empty, admits a heterogeneous fleet: app i uses
	// AppMix[i%len(AppMix)] (names still overridden per app) and App is
	// ignored. Auto-sizing accounts for the exact mix.
	AppMix []AppSpec

	// Routers and HostsPerRouter size the grid; zero auto-sizes so every
	// process of every application gets its own host slot. SpareRouters
	// adds that many routers beyond the auto-sized minimum — headroom the
	// migration controller can re-place degraded applications into (ignored
	// when Routers is set explicitly).
	Routers        int
	HostsPerRouter int
	SpareRouters   int

	Seed uint64
	// Duration of the run in simulated seconds (default 600); the fleet
	// drains for a further 120 s after clients stop.
	Duration float64
	// AdmitStagger spaces admissions (default 0: all admitted at t=0).
	AdmitStagger float64
	// AdmitWaves > 1 spreads admissions into that many diurnal waves: wave w
	// starts at w*WavePeriod (default Duration/AdmitWaves), with
	// AdmitStagger applied within each wave.
	AdmitWaves int
	WavePeriod float64
	// RetireAfter retires each application this long after its admission
	// (0: apps run to the end). With waves, later waves reuse the slots
	// earlier waves freed.
	RetireAfter float64

	// CrushStart, CrushStagger and CrushDuration schedule the per-app
	// competition: app i's primary paths are crushed during
	// [CrushStart+i*CrushStagger, +CrushDuration) — but never sooner than
	// 100 s after its admission, so Remos has warmed (the paper's
	// pre-querying) and gauges are reporting. CrushDuration 0 defaults to
	// 240 s; CrushStart <0 disables contention entirely.
	CrushStart    float64
	CrushStagger  float64
	CrushDuration float64
	// CrushApps limits the per-app contention to the first CrushApps
	// applications (0: all of them).
	CrushApps int
	// CrushAllGroups aims the contention at every group's servers instead
	// of only the primary's — a degradation intra-app repair cannot route
	// around, and the trigger migration exists for.
	CrushAllGroups bool

	// BackboneCrushStart > 0 schedules correlated backbone contention: from
	// that time, for BackboneCrushDuration seconds (default 240),
	// BackboneFraction of the backbone links (default 0.5, chain first) are
	// loaded down to BackboneLeaveBps available (default 50 Kbps).
	BackboneCrushStart    float64
	BackboneCrushDuration float64
	BackboneFraction      float64
	BackboneLeaveBps      float64

	// RegionFailStart > 0 schedules a region-wide failure: every access
	// link under router RegionFailRouter is starved from RegionFailStart
	// for RegionFailDuration seconds (default 240).
	RegionFailStart    float64
	RegionFailDuration float64
	RegionFailRouter   int

	// Faults is an explicit fault schedule (faults.go) composing the
	// injectors freely — overlapping region failures, partial restores,
	// forced migrations, mid-run retirements — beyond what the single-event
	// knobs above express. Events fire in At order (ties in list order,
	// after any same-instant admissions); a Fault with Duration > 0
	// auto-schedules its matching restore. Empty (the default) the run is
	// byte-identical to a build without the schedule. This is the chaos
	// engine's vocabulary: internal/chaos generates these, and shrunk
	// reproducers paste back in as literals.
	Faults []Fault

	// Adaptive enables repairs (default via Config); Manager tunes each
	// application's architecture manager.
	Adaptive bool
	Manager  core.Config
	// HostCapacity overrides the auto-sized per-host slot count.
	HostCapacity int

	// Migration enables and tunes the fleet-level migration controller.
	// Zero value: disabled, and the run is byte-identical to a fleet
	// without the controller.
	Migration MigrationPolicy

	// OpenLoop enables and tunes the open-loop heavy-traffic engine. Zero
	// value: disabled, byte-identical to a fleet without the engine.
	OpenLoop OpenLoopPolicy

	// Trace attaches the run to the observability plane (Config.Trace): the
	// finished ScenarioResult's Fleet.Tracer() holds the causal span tree,
	// phase latencies and kernel counters, and summaries carry PhaseSets.
	// Off (the default) the run is byte-identical to an untraced build.
	Trace bool

	// Workers sizes the fleet's simulation worker pool (Config.Workers).
	// 0 or 1 (the default) runs fully serial — the retained single-threaded
	// oracle. Same-seed runs are byte-identical at every setting; the
	// catalog-wide equivalence test and the chaos parallel invariant enforce
	// exactly that.
	Workers int

	// Shards hosts fleet event execution on per-region shard kernels
	// (Config.ShardByRegion): 0 (the default) runs the retained single-kernel
	// oracle; -1 gives every grid region (router) its own shard; k >= 1 uses
	// k shards with regions assigned round-robin (capped at the region
	// count). The window width is the grid's conservative lookahead — the
	// minimum backbone link latency — so intra-region events never wait on a
	// barrier and cross-region deliveries always clear it. Same-seed runs are
	// byte-identical at every shard count; the catalog-wide sharded
	// equivalence test and the chaos sharded invariant enforce exactly that.
	Shards int

	// GlobalReflow forces the network's pre-incremental global solver (every
	// flow recomputed on every change). Test/bench escape hatch: the solver
	// equivalence test runs the same scenario both ways and requires
	// identical summaries.
	GlobalReflow bool
	// PerAppMonitoring forces the pre-sharding monitoring design (a private
	// bus pair and gauge manager per application) instead of the fleet-shared
	// plane. Same contract as GlobalReflow: the monitoring equivalence test
	// runs both ways and requires identical summaries.
	PerAppMonitoring bool
}

// specFor returns the (defaulted) spec for app index i.
func (o ScenarioOptions) specFor(i int) AppSpec {
	if len(o.AppMix) > 0 {
		return o.AppMix[i%len(o.AppMix)].withDefaults()
	}
	return o.App
}

func (o ScenarioOptions) withDefaults() ScenarioOptions {
	if o.Apps < 1 {
		o.Apps = 8
	}
	o.App = o.App.withDefaults()
	for i := range o.AppMix {
		o.AppMix[i] = o.AppMix[i].withDefaults()
	}
	if o.Duration <= 0 {
		o.Duration = 600
	}
	if o.CrushDuration <= 0 {
		o.CrushDuration = 240
	}
	if o.AdmitWaves > 1 && o.WavePeriod <= 0 {
		o.WavePeriod = o.Duration / float64(o.AdmitWaves)
	}
	if o.BackboneCrushStart > 0 {
		if o.BackboneCrushDuration <= 0 {
			o.BackboneCrushDuration = 240
		}
		if o.BackboneFraction <= 0 {
			o.BackboneFraction = 0.5
		}
		if o.BackboneLeaveBps <= 0 {
			o.BackboneLeaveBps = 50e3
		}
	}
	if o.RegionFailStart > 0 && o.RegionFailDuration <= 0 {
		o.RegionFailDuration = 240
	}
	if o.HostCapacity < 1 {
		o.HostCapacity = 1
	}
	if o.Routers <= 0 || o.HostsPerRouter <= 0 {
		// Auto-size: one slot per process plus one for the Remos collector.
		slots := 1
		for i := 0; i < o.Apps; i++ {
			s := o.specFor(i)
			slots += 2 + s.Groups*(s.ServersPerGroup+s.SparesPerGroup) + s.Clients
		}
		hostsNeeded := (slots + o.HostCapacity - 1) / o.HostCapacity
		if o.HostsPerRouter <= 0 {
			o.HostsPerRouter = 4
		}
		if o.Routers <= 0 {
			o.Routers = int(math.Ceil(float64(hostsNeeded) / float64(o.HostsPerRouter)))
			if o.Routers < 3 {
				o.Routers = 3
			}
			o.Routers += o.SpareRouters
		}
	}
	return o
}

// ScenarioResult bundles the finished fleet with its summaries.
type ScenarioResult struct {
	Opts      ScenarioOptions
	Grid      *netsim.Grid
	Fleet     *Fleet
	Summaries []AppSummary
}

// Table renders the result's per-app table.
func (r *ScenarioResult) Table() string { return Table(r.Summaries) }

// ScenarioRun is a fully scheduled scenario that has not executed yet:
// StartScenario builds the kernel, grid and fleet and places every admission,
// fault and retirement on the kernel; Finish runs it to completion. The gap
// between the two is where a harness installs its own observers — the chaos
// checker hangs mid-run invariant tickers here before letting time run.
type ScenarioRun struct {
	Opts  ScenarioOptions
	K     *sim.Kernel
	Grid  *netsim.Grid
	Fleet *Fleet
	// Shards is the region shard set when Opts.Shards != 0 (K is then shard
	// 0's kernel — the control shard); nil for single-kernel runs.
	Shards *sim.Shards
}

// ScenarioAppName returns the name RunScenario gives app index i.
func ScenarioAppName(i int) string { return fmt.Sprintf("app%02d", i) }

// StartScenario builds one fleet run and schedules its whole script —
// admissions, retirements, the single-event crush knobs, and the explicit
// Faults schedule — without running any virtual time.
func StartScenario(opts ScenarioOptions) (*ScenarioRun, error) {
	opts = opts.withDefaults()
	var shards *sim.Shards
	var k *sim.Kernel
	if opts.Shards != 0 {
		n := opts.Shards
		if n < 0 || n > opts.Routers {
			n = opts.Routers
		}
		shards = sim.NewSeqShards(n)
		// The control shard hosts everything that is not pinned to a region:
		// admissions, tickers, the script, and every unknown node.
		k = shards.Shard(0).Kernel
	} else {
		k = sim.NewKernel()
	}
	grid := netsim.GenerateGrid(k, netsim.GridSpec{
		Routers:        opts.Routers,
		HostsPerRouter: opts.HostsPerRouter,
		Seed:           opts.Seed,
	})
	grid.Net.GlobalReflow = opts.GlobalReflow
	if shards != nil {
		grid.AttachShards(shards)
	}
	f, err := New(k, grid, opts.Seed, Config{
		Manager:          opts.Manager,
		Adaptive:         opts.Adaptive,
		HostCapacity:     opts.HostCapacity,
		PerAppMonitoring: opts.PerAppMonitoring,
		Migration:        opts.Migration,
		OpenLoop:         opts.OpenLoop,
		Trace:            opts.Trace,
		Workers:          opts.Workers,
		ShardByRegion:    shards != nil,
	})
	if err != nil {
		return nil, err
	}
	appsPerWave := opts.Apps
	if opts.AdmitWaves > 1 {
		appsPerWave = (opts.Apps + opts.AdmitWaves - 1) / opts.AdmitWaves
	}
	for i := 0; i < opts.Apps; i++ {
		spec := opts.specFor(i)
		spec.Name = ScenarioAppName(i)
		admitAt := float64(i%appsPerWave) * opts.AdmitStagger
		if opts.AdmitWaves > 1 {
			admitAt += float64(i/appsPerWave) * opts.WavePeriod
		}
		admit := func() {
			// Rejections are recorded on the fleet; the run continues with
			// whatever the grid could hold.
			_, _ = f.Admit(spec)
		}
		if admitAt <= 0 {
			admit()
		} else {
			k.At(admitAt, admit)
		}
		name := spec.Name
		if opts.RetireAfter > 0 {
			k.At(admitAt+opts.RetireAfter, func() {
				if a := f.App(name); a != nil && a.Live() {
					_ = f.Retire(name)
				}
			})
		}
		if opts.CrushStart >= 0 && (opts.CrushApps <= 0 || i < opts.CrushApps) {
			crushAt := opts.CrushStart + float64(i)*opts.CrushStagger
			if min := admitAt + 100; crushAt < min {
				crushAt = min
			}
			crush := f.CrushPrimary
			if opts.CrushAllGroups {
				crush = f.CrushServers
			}
			k.At(crushAt, func() { _ = crush(name) })
			k.At(crushAt+opts.CrushDuration, func() { f.RestorePrimary(name) })
		}
	}
	if opts.BackboneCrushStart > 0 {
		k.At(opts.BackboneCrushStart, func() {
			f.CrushBackbone(opts.BackboneFraction, opts.BackboneLeaveBps)
		})
		k.At(opts.BackboneCrushStart+opts.BackboneCrushDuration, func() { _ = f.RestoreBackbone() })
	}
	if opts.RegionFailStart > 0 {
		k.At(opts.RegionFailStart, func() { _ = f.FailRegion(opts.RegionFailRouter) })
		k.At(opts.RegionFailStart+opts.RegionFailDuration, func() {
			_ = f.RestoreRegion(opts.RegionFailRouter)
		})
	}
	// The explicit fault schedule, in list order (the kernel preserves
	// insertion order at equal times). An injection with Duration > 0
	// schedules its paired restore too.
	for _, flt := range opts.Faults {
		flt := flt
		k.At(flt.At, func() { f.applyFault(flt, ScenarioAppName) })
		if restore := flt.Kind.restoreKind(); restore != "" && flt.Duration > 0 {
			lift := Fault{Kind: restore, App: flt.App, Router: flt.Router}
			k.At(flt.At+flt.Duration, func() { f.applyFault(lift, ScenarioAppName) })
		}
	}
	return &ScenarioRun{Opts: opts, K: k, Grid: grid, Fleet: f, Shards: shards}, nil
}

// Finish runs a started scenario to completion: Duration seconds of
// scripted time, fleet stop, then a 120 s drain of in-flight transfers and
// gauge churn. The fleet's worker pool (if any) is released once the final
// summaries are taken.
func (r *ScenarioRun) Finish() *ScenarioResult {
	if r.Shards != nil {
		// Region-sharded drive: lockstep windows sized by the grid's
		// conservative lookahead (a single-region grid has no backbone and
		// runs one unbounded window). The sequenced shard set shares one
		// (time, seq) order, so this executes the exact event sequence
		// K.Run would.
		window := r.Grid.Lookahead()
		r.Shards.Run(r.Opts.Duration, window)
		r.Fleet.Stop()
		r.Shards.Run(r.Opts.Duration+120, window)
	} else {
		r.K.Run(r.Opts.Duration)
		r.Fleet.Stop()
		r.K.Run(r.Opts.Duration + 120)
	}
	res := &ScenarioResult{Opts: r.Opts, Grid: r.Grid, Fleet: r.Fleet, Summaries: r.Fleet.Summaries()}
	r.Fleet.Close()
	return res
}

// RunScenario executes one fleet run to completion. Runs are deterministic:
// the same options (including Seed) produce identical summaries.
func RunScenario(opts ScenarioOptions) (*ScenarioResult, error) {
	run, err := StartScenario(opts)
	if err != nil {
		return nil, err
	}
	return run.Finish(), nil
}
