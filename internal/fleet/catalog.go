package fleet

import "fmt"

// CatalogEntry is one named, ready-to-run scenario. The catalog is the
// fleet's workload suite: each entry stresses a different part of the
// control plane, and SCENARIOS.md documents the knobs, what each entry
// stresses and the expected adaptive-vs-control outcome. cmd/fleet runs
// entries by name (-scenario).
type CatalogEntry struct {
	Name string
	// Stresses says which mechanism the scenario exercises; Expect is the
	// qualitative outcome a healthy build shows (mirrored in SCENARIOS.md).
	Stresses string
	Expect   string
	Opts     ScenarioOptions
}

// Catalog returns the named scenario suite. Entries are deterministic and
// sized to finish in well under a second of wall clock each.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			Name:     "baseline",
			Stresses: "per-app repair under staggered single-group contention (the PR 1 workload)",
			Expect:   "adaptive fleet repairs every app (moves off the crushed group); control stays degraded for the crush window",
			Opts: ScenarioOptions{
				Apps: 16, Seed: 1, Duration: 600, Adaptive: true,
				CrushStart: 120, CrushStagger: 5, CrushDuration: 240,
			},
		},
		{
			Name:     "heterogeneous",
			Stresses: "placement and monitoring under a mixed fleet: small chatty apps, large replicated apps, single-group apps with spares",
			Expect:   "every shape admits and repairs independently; single-group apps recruit spares instead of moving",
			Opts: ScenarioOptions{
				Apps: 12, Seed: 3, Duration: 600, Adaptive: true,
				AppMix: []AppSpec{
					{Groups: 2, ServersPerGroup: 2, Clients: 2},
					{Groups: 3, ServersPerGroup: 2, Clients: 4, ClientRate: 0.5},
					{Groups: 1, ServersPerGroup: 2, SparesPerGroup: 2, Clients: 2, ClientRate: 2},
				},
				CrushStart: 120, CrushStagger: 10, CrushDuration: 240,
			},
		},
		{
			Name:     "diurnal",
			Stresses: "admission/retirement churn: three admission waves whose apps retire before the next wave, reusing slots and recycled monitoring shards",
			Expect:   "all waves admit onto the same (small) grid; retired apps free slots, shards and gauge leases for their successors",
			Opts: ScenarioOptions{
				Apps: 12, Seed: 5, Duration: 900, Adaptive: true,
				AdmitWaves: 3, WavePeriod: 300, RetireAfter: 280,
				Routers: 12, HostsPerRouter: 4,
				CrushStart: 60, CrushStagger: 20, CrushDuration: 120,
			},
		},
		{
			Name:     "backbone-crush",
			Stresses: "correlated cross-region contention: half the backbone links lose almost all capacity at once, degrading many apps simultaneously",
			Expect:   "repairs fire across much of the fleet in the same window; apps whose groups sit behind the crushed chain segment move clients toward better-connected groups",
			Opts: ScenarioOptions{
				Apps: 12, Seed: 7, Duration: 600, Adaptive: true,
				CrushStart:         -1, // no per-app crushes; the backbone is the event
				BackboneCrushStart: 180, BackboneCrushDuration: 240,
				BackboneFraction: 0.5, BackboneLeaveBps: 50e3,
			},
		},
		{
			Name:     "region-failure",
			Stresses: "grid-scale failure injection: every access link under one router starves, hitting every process placed there regardless of owner",
			Expect:   "apps with a group in the failed region repair around it; apps entirely inside it stay degraded until the region recovers (or migration is enabled)",
			Opts: ScenarioOptions{
				Apps: 12, Seed: 9, Duration: 600, Adaptive: true,
				CrushStart:      -1,
				RegionFailStart: 180, RegionFailDuration: 240, RegionFailRouter: 1,
			},
		},
		{
			Name:     "region-collapse",
			Stresses: "the migration control loop: every server group of the first apps degrades at once, so intra-app repair has nowhere to move clients and only fleet-level re-placement helps",
			Expect:   "with migration enabled the degraded apps are re-placed into spare-router headroom and recover; pinned (migration disabled) they stay above bound for the whole crush",
			Opts: ScenarioOptions{
				Apps: 8, Seed: 11, Duration: 900, Adaptive: true,
				SpareRouters:   4,
				CrushAllGroups: true, CrushApps: 2,
				CrushStart: 150, CrushStagger: 30, CrushDuration: 600,
				Migration: MigrationPolicy{Enabled: true},
			},
		},
		{
			Name:     "backbone-rescue",
			Stresses: "measurement-driven migration targeting: the head of the backbone chain collapses (the proactive backbone verdict drives the decisions), while one of the spare regions every blind re-placement reaches first is concurrently failed — a trap only live measurement can see",
			Expect:   "ranked targeting re-places degraded apps into regions that measure healthy (TargetHealth ≥ SourceHealth on every ranked record) and cuts time-above-bound versus the avoid-set-only controller, which drops its first re-placements into the failed spare region",
			Opts: ScenarioOptions{
				Apps: 10, Seed: 13, Duration: 900, Adaptive: true,
				Routers: 35, HostsPerRouter: 4,
				CrushStart:         -1, // the backbone + failed spare are the event
				BackboneCrushStart: 150, BackboneCrushDuration: 600,
				BackboneFraction: 0.3, BackboneLeaveBps: 30e3,
				RegionFailStart: 150, RegionFailDuration: 600, RegionFailRouter: 21,
				Migration: MigrationPolicy{Enabled: true, Ranked: true},
			},
		},
		{
			Name:     "thundering-herd",
			Stresses: "the migration coordination layer: eight apps lose every server group at the same instant and compete for spare capacity sized for two; staged reservations and the MaxConcurrent cap must serialize the drains",
			Expect:   "at most MaxConcurrent drains in flight at any time, reservations never double-book a spare region's last slots and always round-trip (FreeSlots is exact after the run); the first movers are rescued, the rest settle for the least-bad measured regions",
			Opts: ScenarioOptions{
				Apps: 8, Seed: 17, Duration: 900, Adaptive: true,
				SpareRouters:   4,
				CrushAllGroups: true, CrushApps: 8,
				CrushStart: 150, CrushStagger: 0, CrushDuration: 600,
				Migration: MigrationPolicy{Enabled: true, Ranked: true, MaxConcurrent: 2},
			},
		},
		{
			// Promoted from the chaos fuzzer (internal/chaos, seed 247): the
			// sustained-churn interleaving the hand-written entries never
			// tried. The literal is chaos.Generate(247) + MigratePolicy(247)
			// as generated before open-loop fuzzing existed (the open-loop
			// draws come from a separate RNG fork, so every field here still
			// matches its seed); TestFuzzerPromotedOutcomes pins the dynamics.
			Name:     "fuzzed-drain-races",
			Stresses: "sustained migration churn under a serialized drain pipeline (MaxConcurrent 1): overlapping region failures and backbone crushes keep re-degrading apps that just moved, and two drains race a failure of their own staged target region",
			Expect:   "eleven migrations complete across the run; two drains abort mid-flight when their target region fails after the decision (records stamped aborted with the reason, reservations released); the end-of-run Stop aborts the last in-flight drain; slots and background load audit clean",
			Opts: ScenarioOptions{
				Apps: 5,
				AppMix: []AppSpec{
					{Groups: 3, ServersPerGroup: 1, SparesPerGroup: 1, Clients: 2, ClientRate: 2},
					{Groups: 2, ServersPerGroup: 1, SparesPerGroup: 1, Clients: 3, ClientRate: 1.75},
				},
				Routers: 16, HostsPerRouter: 2, HostCapacity: 2,
				Seed: 247, Duration: 480, CrushStart: -1, Adaptive: true,
				Migration: MigrationPolicy{Enabled: true, CheckPeriod: 10, Patience: 2, Cooldown: 60, MaxConcurrent: 1},
				Faults: []Fault{
					{At: 45, Kind: FaultMigrate},
					{At: 117, Kind: FaultBackboneCrush, Fraction: 0.2, LeaveBps: 40000, Duration: 90},
					{At: 135, Kind: FaultRegionFail, Router: 4, Duration: 99},
					{At: 159, Kind: FaultBackboneCrush, Fraction: 0.5, LeaveBps: 70000, Duration: 94},
					{At: 165, Kind: FaultRegionFail, Router: 4, Duration: 99},
					{At: 175, Kind: FaultRegionFail, Router: 2, Duration: 84},
					{At: 271, Kind: FaultRegionFail, Router: 12, Duration: 134},
					{At: 278, Kind: FaultRegionRestore, Router: 4},
					{At: 313, Kind: FaultBackboneCrush, Fraction: 0.5, LeaveBps: 30000, Duration: 123},
					{At: 341, Kind: FaultRetire, App: 3},
					{At: 351, Kind: FaultRegionFail, Router: 1, Duration: 110},
					{At: 391, Kind: FaultRegionPartialRestore, Router: 12, Fraction: 0.75},
					{At: 397, Kind: FaultBackbonePartialRestore, Fraction: 0.5},
				},
			},
		},
		{
			// Promoted from the chaos fuzzer (seed 187): ranked targeting
			// under genuine capacity starvation — four overlapping region
			// failures on a one-slot-per-host grid leave less spare capacity
			// than any single app needs, so the controller must keep retrying
			// until partial restores free just enough. The literal is
			// chaos.Generate(187) + MigratePolicy(187) verbatim.
			Name:     "fuzzed-capacity-squeeze",
			Stresses: "ranked targeting under capacity starvation: four overlapping region failures (two raced by partial restores) squeeze free slots below what a re-placement needs, an early drain races its target region's failure, and placement failures must resolve as regions recover",
			Expect:   "early migration attempts fail placement (\"no healthy capacity\") and one drain aborts when its target region fails mid-drain; once partial restores free capacity, seven migrations complete, every ranked record satisfies TargetHealth ≥ SourceHealth, and the end state audits clean",
			Opts: ScenarioOptions{
				Apps: 6,
				AppMix: []AppSpec{
					{Groups: 1, ServersPerGroup: 2, SparesPerGroup: 1, Clients: 3, ClientRate: 1.75},
				},
				Routers: 16, HostsPerRouter: 4, HostCapacity: 1,
				Seed: 187, Duration: 360, CrushStart: -1, Adaptive: true,
				Migration: MigrationPolicy{Enabled: true, Ranked: true, CheckPeriod: 10, Patience: 2, Cooldown: 60, MaxConcurrent: 2},
				Faults: []Fault{
					{At: 44, Kind: FaultCrushAll, App: 3, Duration: 87},
					{At: 62, Kind: FaultRegionFail, Router: 11, Duration: 70},
					{At: 84, Kind: FaultRegionFail, Router: 9, Duration: 87},
					{At: 100, Kind: FaultRegionPartialRestore, Router: 11, Fraction: 0.5},
					{At: 102, Kind: FaultRegionFail, Router: 10, Duration: 39},
					{At: 105, Kind: FaultRegionFail, Router: 12, Duration: 116},
					{At: 116, Kind: FaultRegionPartialRestore, Router: 10, Fraction: 0.5},
					{At: 120, Kind: FaultRegionPartialRestore, Router: 9, Fraction: 0.5},
					{At: 137, Kind: FaultCrushPrimary, App: 2, Duration: 124},
					{At: 161, Kind: FaultRetire, App: 3},
					{At: 179, Kind: FaultBackboneCrush, Fraction: 0.2, LeaveBps: 70000, Duration: 91},
					{At: 201, Kind: FaultBackboneCrush, Fraction: 0.6000000000000001, LeaveBps: 80000, Duration: 96},
					{At: 236, Kind: FaultBackbonePartialRestore, Fraction: 0.5},
				},
			},
		},
		{
			Name:     "flash-crowd",
			Stresses: "the open-loop engine end to end: 100k modeled users per app on a diurnal envelope, an 8x flash crowd saturating every primary group at once, and the replica autoscaler absorbing it",
			Expect:   "pre-burst the fleet idles around half utilization; the burst saturates SG1 everywhere, autoscaled replicas grow each group until utilization falls below the up-threshold, and after the burst the same replicas drain back out (ScaleUps and ScaleDowns both nonzero, slots audit clean)",
			Opts: ScenarioOptions{
				Apps: 8, Seed: 19, Duration: 900, Adaptive: true,
				SpareRouters: 16, // slot headroom the autoscaler grows into
				CrushStart:   -1, // the flash crowd is the event
				App: AppSpec{Arrivals: ArrivalSpec{Kind: ArrivalDiurnal,
					Base: 5e-5, Swing: 0.3, Period: 900,
					BurstAt: 300, BurstDuration: 180, BurstFactor: 8}},
				OpenLoop: OpenLoopPolicy{Enabled: true, Users: 100_000,
					Scale: ScalePolicy{Enabled: true}},
			},
		},
		{
			Name:     "overload-shed",
			Stresses: "the fleet admission controller: a mix of light and heavy open-loop apps offered against a gate that admits only while aggregate offered load stays under 95% of fleet service capacity",
			Expect:   "light apps admit; heavy candidates whose load would tip the fleet past the ceiling are shed at offer time (rejections recorded, no placement attempted), and the admission ledger balances: Offered = Admitted + Shed, no queueing",
			Opts: ScenarioOptions{
				Apps: 12, Seed: 23, Duration: 600, Adaptive: true,
				CrushStart: -1,
				AppMix: []AppSpec{
					{Groups: 2, ServersPerGroup: 2, Clients: 2, Arrivals: ArrivalSpec{Lambda: 8e-5}},
					{Groups: 2, ServersPerGroup: 2, Clients: 2, Arrivals: ArrivalSpec{Lambda: 4e-4}},
				},
				OpenLoop: OpenLoopPolicy{Enabled: true, Users: 100_000,
					Admission: AdmissionPolicy{Enabled: true}},
			},
		},
		{
			Name:     "autoscale-race",
			Stresses: "the autoscaler racing the migration controller: overloaded groups grow autoscaled replicas while region-collapse contention drives fleet-level re-placements, so replicas must be torn down at decision time and regrown against the new placement",
			Expect:   "every group scales up early (offered utilization starts past the up-threshold); the crushed apps migrate into spare-router headroom with their autoscaled replicas dropped before the drain and re-added after cutover; slots audit clean at the end",
			Opts: ScenarioOptions{
				Apps: 6, Seed: 29, Duration: 900, Adaptive: true,
				SpareRouters:   8, // headroom both the autoscaler and migration bid for
				CrushAllGroups: true, CrushApps: 2,
				CrushStart: 150, CrushStagger: 30, CrushDuration: 300,
				Migration: MigrationPolicy{Enabled: true},
				App:       AppSpec{Arrivals: ArrivalSpec{Lambda: 1.2e-4}},
				OpenLoop: OpenLoopPolicy{Enabled: true, Users: 100_000,
					Scale: ScalePolicy{Enabled: true}},
			},
		},
	}
}

// ScenarioByName returns the catalog entry with the given name.
func ScenarioByName(name string) (CatalogEntry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	return CatalogEntry{}, fmt.Errorf("fleet: no scenario %q in the catalog", name)
}

// MigrationBenchScenario is the canonical migration benchmark fixture:
// n apps, region-collapse contention (all groups crushed) on the first
// quarter of them, migration enabled, spare-router headroom to migrate
// into. Shared by BenchmarkFleetMigration and cmd/benchjson so the
// committed BENCH_fleet.json baseline measures the same workload.
func MigrationBenchScenario(n int, seed uint64) ScenarioOptions {
	crushApps := n / 4
	if crushApps < 1 {
		crushApps = 1
	}
	return ScenarioOptions{
		Apps: n, Seed: seed, Duration: 600, Adaptive: true,
		SpareRouters:   2 * crushApps,
		CrushAllGroups: true, CrushApps: crushApps,
		CrushStart: 120, CrushStagger: 20, CrushDuration: 360,
		Migration: MigrationPolicy{Enabled: true},
	}
}

// ParallelBenchScenario is the canonical parallel-plane benchmark fixture:
// n apps crushed simultaneously (CrushStagger 0, so restores and repairs
// dirty many disjoint regions in the same instant and the solver sees
// multi-component epochs worth fanning out) over a short 300-second run,
// executed with the given worker count. Workers is a pure throughput knob —
// every summary is byte-identical across counts — so BenchmarkFleetParallel
// and the fleet_parallel rows in BENCH_fleet.json measure speedup, and
// repairs/app doubles as the cross-worker behavior canary.
func ParallelBenchScenario(n, workers int, seed uint64) ScenarioOptions {
	crushApps := n / 4
	if crushApps < 1 {
		crushApps = 1
	}
	return ScenarioOptions{
		Apps: n, Seed: seed, Duration: 300, Adaptive: true, Workers: workers,
		SpareRouters:   2 * crushApps,
		CrushAllGroups: true, CrushApps: crushApps,
		CrushStart: 120, CrushStagger: 0, CrushDuration: 120,
	}
}

// ShardedBenchScenario is the canonical region-sharded hosting fixture: the
// same simultaneous-crush workload as ParallelBenchScenario, executed with
// fleet event execution hosted on the given shard count (0 = the
// single-kernel oracle, -1 = one shard per region). Shards is a pure hosting
// knob — every summary is byte-identical across counts — so
// BenchmarkFleetSharded and the fleet_sharded rows in BENCH_fleet.json
// measure the window driver's overhead (ms/app should stay roughly flat as
// shards are added), and repairs/app doubles as the cross-shard behavior
// canary.
func ShardedBenchScenario(n, shards int, seed uint64) ScenarioOptions {
	o := ParallelBenchScenario(n, 0, seed)
	o.Workers = 0
	o.Shards = shards
	return o
}

// RankedMigrationBenchScenario is MigrationBenchScenario with
// measurement-driven targeting enabled — the canonical ranked-migration
// fixture behind BenchmarkFleetRankedMigration and the
// fleet_ranked_migration row in BENCH_fleet.json. It exercises the region
// health index (batched Remos probes every decision tick), PlaceRanked and
// the reservation/coordination layer on the same region-collapse workload
// the unranked fixture measures.
func RankedMigrationBenchScenario(n int, seed uint64) ScenarioOptions {
	opts := MigrationBenchScenario(n, seed)
	opts.Migration.Ranked = true
	return opts
}

// OpenLoopBenchScenario is the canonical open-loop benchmark fixture: n
// apps, users modeled users each, Poisson arrivals sized so every app
// offers the same aggregate load regardless of population (8 req/s) — the
// engine's cost is per class, not per user, so ms/app across the users axis
// is the aggregation-efficiency canary behind BenchmarkFleetOpenLoop and
// the fleet_openloop rows in BENCH_fleet.json.
func OpenLoopBenchScenario(n, users int, seed uint64) ScenarioOptions {
	return ScenarioOptions{
		Apps: n, Seed: seed, Duration: 300, Adaptive: true,
		CrushStart: -1,
		App:        AppSpec{Arrivals: ArrivalSpec{Lambda: 8.0 / float64(users)}},
		OpenLoop: OpenLoopPolicy{Enabled: true, Users: users,
			Scale: ScalePolicy{Enabled: true}},
	}
}
