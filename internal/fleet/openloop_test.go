package fleet

import (
	"math"
	"reflect"
	"testing"
)

// TestOpenLoopPolicyValidate covers the policy validation and defaulting
// rules: zero fills in, negatives and inverted thresholds reject.
func TestOpenLoopPolicyValidate(t *testing.T) {
	if err := (OpenLoopPolicy{}).validate(); err != nil {
		t.Fatalf("zero policy rejected: %v", err)
	}
	def := OpenLoopPolicy{Enabled: true}.withDefaults()
	if def.AdjustPeriod != 5 || def.Scale.UpAt != 0.8 || def.Scale.DownAt != 0.3 ||
		def.Scale.Cooldown != 30 || def.Scale.MaxReplicas != 8 ||
		def.Admission.MaxUtilization != 0.95 || def.Admission.RetryPeriod != 30 {
		t.Fatalf("defaults wrong: %+v", def)
	}
	bad := []OpenLoopPolicy{
		{Users: -1},
		{AdjustPeriod: -1},
		{AdjustPeriod: math.NaN()},
		{Scale: ScalePolicy{UpAt: -0.1}},
		{Scale: ScalePolicy{UpAt: 0.5, DownAt: 0.6}},
		{Scale: ScalePolicy{MaxReplicas: -2}},
		{Admission: AdmissionPolicy{MaxUtilization: 1.5}},
		{Admission: AdmissionPolicy{MaxUtilization: -0.5}},
		{Admission: AdmissionPolicy{RetryPeriod: -3}},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("bad policy %d (%+v) accepted", i, p)
		}
	}
}

// TestArrivalSpecProcess covers the declarative spec → process resolution,
// including the rejection paths.
func TestArrivalSpecProcess(t *testing.T) {
	if p, err := (ArrivalSpec{}).process(2.5); err != nil || p.Rate(0) != 2.5 {
		t.Fatalf("zero spec: %v, rate %v", err, p.Rate(0))
	}
	if p, err := (ArrivalSpec{Kind: ArrivalPoisson, Lambda: 4}).process(1); err != nil || p.Rate(99) != 4 {
		t.Fatalf("poisson spec: %v", err)
	}
	d, err := (ArrivalSpec{Kind: ArrivalDiurnal, Swing: 0.5, Period: 100,
		BurstAt: 10, BurstDuration: 5, BurstFactor: 3}).process(2)
	if err != nil {
		t.Fatal(err)
	}
	if in, out := d.Rate(12), d.Rate(50); in <= out*1.5 {
		t.Fatalf("burst window rate %v not well above post-burst rate %v", in, out)
	}
	if _, err := (ArrivalSpec{Kind: ArrivalTrace}).process(1); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := (ArrivalSpec{Kind: ArrivalTrace, Times: []float64{0, 1}, Rates: []float64{1}}).process(1); err == nil {
		t.Fatal("ragged trace accepted")
	}
	if _, err := (ArrivalSpec{Kind: "weibull"}).process(1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// dirtyDisabledOpenLoop is a valid policy with every knob set but Enabled
// false. Byte-identity-off must hold against this, not just the zero value:
// everything is gated on Enabled alone.
func dirtyDisabledOpenLoop() OpenLoopPolicy {
	return OpenLoopPolicy{
		Users: 424242, AdjustPeriod: 1,
		Scale:     ScalePolicy{Enabled: true, UpAt: 0.5, DownAt: 0.1, Cooldown: 1, MaxReplicas: 3},
		Admission: AdmissionPolicy{Enabled: true, MaxUtilization: 0.5, Queue: true, RetryPeriod: 1},
	}
}

// TestOpenLoopOffIsByteIdentical is the purity contract, catalog-wide:
// every closed-loop entry must produce byte-identical summaries whether the
// open-loop policy is absent or fully specified but disabled. The
// open-loop entries themselves are checked for run-to-run determinism.
func TestOpenLoopOffIsByteIdentical(t *testing.T) {
	for _, e := range Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			base, err := RunScenario(e.Opts)
			if err != nil {
				t.Fatal(err)
			}
			other := e.Opts
			if !e.Opts.OpenLoop.Enabled {
				other.OpenLoop = dirtyDisabledOpenLoop()
			}
			again, err := RunScenario(other)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base.Summaries, again.Summaries) {
				t.Fatalf("summaries differ:\n%s\nvs\n%s", Table(base.Summaries), Table(again.Summaries))
			}
			if base.Table() != again.Table() {
				t.Fatal("summary tables differ")
			}
			if !e.Opts.OpenLoop.Enabled {
				if _, ok := again.Fleet.OpenLoopLedger(); ok {
					t.Fatal("disabled open-loop policy still attached an engine")
				}
			}
		})
	}
}

// openLoopSmallOpts is a small uncontended open-loop fixture: two default
// apps, constant Poisson arrivals at 4 req/s aggregate per app (0.42 of a
// group's service capacity), 10k modeled users.
func openLoopSmallOpts() ScenarioOptions {
	return ScenarioOptions{
		Apps: 2, Seed: 31, Duration: 600, Adaptive: true,
		CrushStart: -1,
		App:        AppSpec{Arrivals: ArrivalSpec{Lambda: 4e-4}},
		OpenLoop:   OpenLoopPolicy{Enabled: true, Users: 10_000},
	}
}

// TestOpenLoopConservation is the aggregated offered-load exactness check,
// end to end: in an uncontended run the delivered response count per app
// must track lambda * duration — the aggregation may not create or lose
// load beyond startup ramp and the in-flight tail.
func TestOpenLoopConservation(t *testing.T) {
	res, err := RunScenario(openLoopSmallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Fleet.AuditSlots(); err != nil {
		t.Fatal(err)
	}
	want := 4.0 * 600
	for _, s := range res.Summaries {
		got := float64(s.Responses)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s delivered %v responses, want %v within 10%%", s.Name, got, want)
		}
		if s.PeakLatency <= 0 || s.PeakLatency > 2 {
			t.Errorf("%s peak latency %v outside (0, 2]: uncontended verdicts should be well under bound",
				s.Name, s.PeakLatency)
		}
		if s.FracAboveBound != 0 {
			t.Errorf("%s has %v of samples above bound in an uncontended run", s.Name, s.FracAboveBound)
		}
	}
}

// TestOpenLoopClosedLoopEquivalenceSmallN pins the regimes to each other at
// the population where they coincide: with Users defaulted to one per
// client at the closed-loop ClientRate, the open-loop run must land in the
// same ballpark as the closed-loop run — same apps, same order, response
// totals within 2x, and no latency violations on either side.
func TestOpenLoopClosedLoopEquivalenceSmallN(t *testing.T) {
	base := ScenarioOptions{
		Apps: 4, Seed: 37, Duration: 600, Adaptive: true,
		CrushStart: -1,
	}
	closed, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	open := base
	open.OpenLoop = OpenLoopPolicy{Enabled: true}
	openRes, err := RunScenario(open)
	if err != nil {
		t.Fatal(err)
	}
	if len(closed.Summaries) != len(openRes.Summaries) {
		t.Fatalf("app counts differ: %d vs %d", len(closed.Summaries), len(openRes.Summaries))
	}
	for i, cs := range closed.Summaries {
		os := openRes.Summaries[i]
		if cs.Name != os.Name {
			t.Fatalf("summary order differs: %s vs %s", cs.Name, os.Name)
		}
		if cs.Responses == 0 || os.Responses == 0 {
			t.Fatalf("%s: zero responses (closed %d, open %d)", cs.Name, cs.Responses, os.Responses)
		}
		ratio := float64(os.Responses) / float64(cs.Responses)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: open/closed response ratio %v outside [0.5, 2] (closed %d, open %d)",
				cs.Name, ratio, cs.Responses, os.Responses)
		}
		if cs.FracAboveBound > 0.05 || os.FracAboveBound > 0.05 {
			t.Errorf("%s: uncontended violations (closed %v, open %v)",
				cs.Name, cs.FracAboveBound, os.FracAboveBound)
		}
	}
}

// TestOpenLoopFlashCrowd runs the flash-crowd catalog entry and pins the
// autoscaler dynamics: replicas grow into the burst and drain back out.
func TestOpenLoopFlashCrowd(t *testing.T) {
	e, err := ScenarioByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(e.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Fleet.AuditSlots(); err != nil {
		t.Fatal(err)
	}
	tot := Aggregate(res.Summaries)
	if tot.ScaleUps == 0 || tot.ScaleDowns == 0 {
		t.Fatalf("flash crowd did not exercise the autoscaler: ups %d, downs %d", tot.ScaleUps, tot.ScaleDowns)
	}
	for _, s := range res.Summaries {
		if s.ScaleUps == 0 {
			t.Errorf("%s absorbed the burst without scaling up", s.Name)
		}
	}
	// Admission gating is off: the ledger exists but records nothing.
	led, ok := res.Fleet.OpenLoopLedger()
	if !ok {
		t.Fatal("open-loop fleet reports no ledger")
	}
	if led != (AdmissionLedger{}) {
		t.Fatalf("ungated run wrote the admission ledger: %+v", led)
	}
}

// TestOpenLoopOverloadShed runs the overload-shed catalog entry and audits
// the admission ledger: heavy candidates are shed at offer time and the
// books balance.
func TestOpenLoopOverloadShed(t *testing.T) {
	e, err := ScenarioByName("overload-shed")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(e.Opts)
	if err != nil {
		t.Fatal(err)
	}
	led, ok := res.Fleet.OpenLoopLedger()
	if !ok {
		t.Fatal("no admission ledger")
	}
	if led.Offered != 12 {
		t.Fatalf("offered %d, want 12", led.Offered)
	}
	if led.Queued != 0 {
		t.Fatalf("queued %d with queueing disabled", led.Queued)
	}
	if led.Shed < 2 {
		t.Fatalf("shed %d, want at least 2 heavy candidates rejected", led.Shed)
	}
	if led.Offered != led.Admitted+led.Shed+led.Queued {
		t.Fatalf("ledger unbalanced: %+v", led)
	}
	if led.Admitted != led.Active+led.Retired {
		t.Fatalf("admitted split unbalanced: %+v", led)
	}
	if got := len(res.Summaries); got != led.Admitted {
		t.Fatalf("%d summaries for %d admitted apps", got, led.Admitted)
	}
	if got := len(res.Fleet.Rejections()); got != led.Shed {
		t.Fatalf("%d rejections recorded for %d sheds", got, led.Shed)
	}
	if err := res.Fleet.AuditSlots(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLoopAdmissionQueue drives the queue-and-retry path: a candidate
// whose load would tip the fleet past the ceiling parks on the queue, and
// admits once a retirement frees capacity.
func TestOpenLoopAdmissionQueue(t *testing.T) {
	res, err := RunScenario(ScenarioOptions{
		Apps: 3, Seed: 41, Duration: 600, Adaptive: true,
		CrushStart: -1,
		AppMix: []AppSpec{
			{Groups: 2, ServersPerGroup: 2, Clients: 2, Arrivals: ArrivalSpec{Lambda: 8e-4}},
			{Groups: 2, ServersPerGroup: 2, Clients: 2, Arrivals: ArrivalSpec{Lambda: 2.66e-3}},
			{Groups: 2, ServersPerGroup: 2, Clients: 2, Arrivals: ArrivalSpec{Lambda: 2.66e-3}},
		},
		Faults: []Fault{{At: 100, Kind: FaultRetire, App: 1}},
		OpenLoop: OpenLoopPolicy{Enabled: true, Users: 10_000,
			Admission: AdmissionPolicy{Enabled: true, Queue: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	led, _ := res.Fleet.OpenLoopLedger()
	if led.Offered != 3 || led.Admitted != 3 || led.Shed != 0 || led.Queued != 0 {
		t.Fatalf("ledger: %+v, want all three offered apps eventually admitted", led)
	}
	if led.Active != 2 || led.Retired != 1 {
		t.Fatalf("lifecycle split: %+v, want 2 active / 1 retired", led)
	}
	late := res.Fleet.App(ScenarioAppName(2))
	if late == nil {
		t.Fatal("queued app never admitted")
	}
	if late.AdmittedAt < 100 {
		t.Fatalf("queued app admitted at %v, before the retirement at 100 freed capacity", late.AdmittedAt)
	}
	if err := res.Fleet.AuditSlots(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLoopAutoscaleRace runs the autoscale-race catalog entry: the
// autoscaler and the migration controller work the same apps, so replicas
// must round-trip through teardown at decision time without leaking slots.
func TestOpenLoopAutoscaleRace(t *testing.T) {
	e, err := ScenarioByName("autoscale-race")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(e.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Fleet.AuditSlots(); err != nil {
		t.Fatal(err)
	}
	tot := Aggregate(res.Summaries)
	if tot.ScaleUps == 0 {
		t.Fatal("no scale-ups: the race never started")
	}
	if tot.Migrations == 0 {
		t.Fatal("no migrations completed under region-collapse contention")
	}
	if rej := res.Fleet.Rejections(); len(rej) != 0 {
		t.Fatalf("rejections: %+v", rej)
	}
}
