package fleet

import (
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// TestReservationRoundTrip unit-tests the staged-reservation lifecycle
// against Scheduler.FreeSlots: staging holds the slots, Release returns
// them exactly once (idempotent), and Commit transfers ownership so a late
// Release cannot double-free.
func TestReservationRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 6, HostsPerRouter: 4, Seed: 1})
	sch := NewScheduler(grid, 1, nil)
	free0 := sch.FreeSlots()
	spec := AppSpec{Name: "x"}.withDefaults().Spec()

	asg, err := sch.Place(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := sch.Stage(asg)
	held := free0 - sch.FreeSlots()
	if held != asg.slots() {
		t.Fatalf("staged reservation holds %d slots, want %d", held, asg.slots())
	}
	if res.Assignment() != asg {
		t.Fatal("Assignment did not return the staged target")
	}
	res.Release()
	res.Release() // idempotent
	if got := sch.FreeSlots(); got != free0 {
		t.Fatalf("free slots after double release = %d, want %d", got, free0)
	}

	asg2, err := sch.Place(spec)
	if err != nil {
		t.Fatal(err)
	}
	res2 := sch.Stage(asg2)
	committed := res2.Commit()
	res2.Release() // must be a no-op: the cutover owns the slots now
	if got, want := sch.FreeSlots(), free0-asg2.slots(); got != want {
		t.Fatalf("free slots after commit+release = %d, want %d", got, want)
	}
	sch.Release(committed)
	if got := sch.FreeSlots(); got != free0 {
		t.Fatalf("free slots after final release = %d, want %d", got, free0)
	}
}

// TestThunderingHerdReservationsRoundTrip is the coordination-layer leak
// test: eight applications degrade at the same instant and compete for
// spare capacity sized for two. The MaxConcurrent cap must hold at every
// point of the run, and after the herd retires every staged reservation
// must have been committed or returned — FreeSlots round-trips exactly.
func TestThunderingHerdReservationsRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 21, HostsPerRouter: 4, Seed: 17})
	pol := MigrationPolicy{Enabled: true, Ranked: true, MaxConcurrent: 2, Cooldown: 120}
	f, err := New(k, grid, 17, Config{Adaptive: true, HostCapacity: 1, Migration: pol})
	if err != nil {
		t.Fatal(err)
	}
	const herd = 8
	for i := 0; i < herd; i++ {
		if _, err := f.Admit(AppSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	names := f.Apps()
	k.At(150, func() {
		for _, name := range names {
			_ = f.CrushServers(name)
		}
	})
	k.At(600, func() {
		for _, name := range names {
			f.RestorePrimary(name)
		}
	})
	k.Ticker(1, 1, func(now float64) {
		if got := f.MigrationsInFlight(); got > pol.MaxConcurrent {
			t.Errorf("t=%.0f: %d migrations in flight, cap %d", now, got, pol.MaxConcurrent)
		}
	})
	k.Run(800)
	if tot := Aggregate(f.Summaries()); tot.Migrations < 2 {
		t.Fatalf("herd completed only %d migrations; the scenario is not exercising the reservation layer", tot.Migrations)
	}
	if got := f.PeakConcurrentMigrations(); got > pol.MaxConcurrent {
		t.Errorf("peak concurrent migrations = %d, cap %d", got, pol.MaxConcurrent)
	}
	// Retire the herd (aborting any still-draining migration) and assert the
	// scheduler's ledger round-tripped exactly: only the Remos slot is held.
	k.At(810, func() {
		for _, name := range names {
			if err := f.Retire(name); err != nil {
				t.Errorf("retiring %s: %v", name, err)
			}
		}
	})
	k.Run(900)
	if got, want := f.Sch.FreeSlots(), len(grid.Hosts)-1; got != want {
		t.Errorf("free slots after the herd retired = %d, want %d: a reservation leaked", got, want)
	}
	if got := f.Gauges.Leases(); got != 0 {
		t.Errorf("gauge leases after retirement = %d, want 0", got)
	}
	if got := f.ProbeBus.Tenants() + f.ReportBus.Tenants(); got != 0 {
		t.Errorf("bus tenants after retirement = %d, want 0", got)
	}
}

// TestRankedMigrateThenRetireNoLeaks is the ranked-targeting variant of the
// migrate-then-retire leak test: a manual migration under an active region
// health index, then retirement, must return every slot, shard and lease.
func TestRankedMigrateThenRetireNoLeaks(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 8, HostsPerRouter: 3, Seed: 2})
	pol := MigrationPolicy{Enabled: true, Ranked: true}
	f, err := New(k, grid, 2, Config{Adaptive: true, HostCapacity: 1, Migration: pol})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	k.At(200, func() {
		if err := f.Migrate("x"); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	k.At(400, func() {
		if err := f.Retire("x"); err != nil {
			t.Errorf("retire: %v", err)
		}
	})
	k.Run(600)
	if got := len(a.Migrations); got != 1 || !a.Migrations[0].Completed() {
		t.Fatalf("migrations = %+v, want one completed", a.Migrations)
	}
	if got, want := f.Sch.FreeSlots(), len(grid.Hosts)-1; got != want {
		t.Errorf("free slots = %d, want %d", got, want)
	}
	if got := f.Gauges.Deployed(); got != 0 {
		t.Errorf("gauges deployed = %d, want 0", got)
	}
	if got := f.ProbeBus.Tenants() + f.ReportBus.Tenants(); got != 0 {
		t.Errorf("bus tenants = %d, want 0", got)
	}
}

// TestMigrationPlacementFailureHoldsNothing covers the placement-failure
// path of the reservation layer: on a grid with no spare capacity both the
// ranked and the avoid-set placements fail, the attempt is recorded with an
// error, and the scheduler ledger is untouched (nothing was staged).
func TestMigrationPlacementFailureHoldsNothing(t *testing.T) {
	k := sim.NewKernel()
	// Exactly enough hosts for the app plus the Remos collector: a
	// re-placement can never fit.
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 3, HostsPerRouter: 3, Seed: 3})
	pol := MigrationPolicy{Enabled: true, Ranked: true}
	f, err := New(k, grid, 3, Config{Adaptive: true, HostCapacity: 1, Migration: pol})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := -1
	k.At(200, func() {
		freeBefore = f.Sch.FreeSlots()
		if err := f.Migrate("x"); err == nil {
			t.Error("migrate succeeded on a full grid")
		}
	})
	k.Run(400)
	if got := f.Sch.FreeSlots(); got != freeBefore {
		t.Errorf("free slots changed across a failed placement: %d -> %d", freeBefore, got)
	}
	if a.migrating || a.pending != nil {
		t.Error("failed placement left drain state behind")
	}
	if got := len(a.Migrations); got != 1 || a.Migrations[0].Err == nil {
		t.Fatalf("migrations = %+v, want one failed attempt", a.Migrations)
	}
	if f.MigrationsInFlight() != 0 {
		t.Errorf("migrations in flight = %d after a failed placement", f.MigrationsInFlight())
	}
}
