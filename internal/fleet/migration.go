// Fleet-level migration: the feedback loop that re-places a whole
// application when its grid region degrades beyond what intra-app repair can
// fix. The paper's repair loop adapts *within* an architecture (swap server
// groups inside the app); this is the grid-scale analogue one level up — the
// fleet watches each application's gauge reports through the sharded
// monitoring plane, decides when the app's own manager has been given a fair
// chance and failed, and live-migrates the application to a healthy region:
//
//	signals   per-app report-bus health (latency reports above bound,
//	          bandwidth reports below floor) accumulated by a fleet
//	          subscription on the app's report shard
//	decision  a sustained-unhealthy streak longer than a repair attempt
//	          (Patience × CheckPeriod > the paper's ~30 s repair time)
//	drain     pause the clients, let in-flight requests finish (bounded
//	          by DrainTimeout)
//	re-place  reserve a new Assignment away from the degraded region
//	          (Scheduler.PlaceAvoiding), re-point every process, detach
//	          and re-attach the app's monitoring-plane shards and gauge
//	          lease at the new anchor, release the old slots, resume
//
// Everything runs on the shared kernel and is deterministic; with the
// policy disabled the fleet schedules no extra events and subscribes to
// nothing, so default-configuration runs are byte-identical to a build
// without this file.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"archadapt/internal/bus"
	"archadapt/internal/core"
	"archadapt/internal/gauges"
	"archadapt/internal/netsim"
	"archadapt/internal/obs"
)

// MigrationPolicy tunes the fleet-level migration controller. The zero value
// disables migration entirely (no subscriptions, no ticker — the default
// fleet behaves exactly as before the controller existed).
type MigrationPolicy struct {
	// Enabled turns the controller on. Requires the fleet-shared monitoring
	// plane; New rejects Enabled together with Config.PerAppMonitoring.
	Enabled bool
	// CheckPeriod is the interval between fleet health-decision ticks
	// (default 15 s).
	CheckPeriod float64
	// Patience is the number of consecutive unhealthy decision ticks before
	// the fleet gives up on intra-app repair and migrates. The default (4)
	// with the default CheckPeriod gives one minute of sustained
	// degradation — comfortably longer than one ~30 s repair attempt, so
	// the app's own manager always gets its chance first.
	Patience int
	// ViolFrac makes a tick unhealthy when at least this fraction of the
	// latency reports received since the previous tick were above the
	// application's bound (default 0.5). A tick is also unhealthy when
	// every bandwidth report since the previous tick was below the
	// application's floor — the region-bandwidth-collapse signal, which
	// keeps firing even when a wedged app completes no requests at all.
	ViolFrac float64
	// Cooldown is the minimum time after a completed migration before the
	// same application may migrate again (default 300 s).
	Cooldown float64
	// DrainTimeout bounds the pre-cutover drain: if in-flight requests have
	// not completed this long after the decision, the cutover proceeds
	// anyway (default 30 s) — a wedged region must not pin the app forever.
	// A timeout shorter than CheckPeriod is clamped up to it: the
	// controller cannot re-evaluate faster than it measures.
	DrainTimeout float64
	// MaxPerApp caps completed migrations per application (default 3).
	MaxPerApp int

	// Ranked enables measurement-driven targeting: the fleet maintains a
	// per-region health index (RegionHealth) from batched Remos probes and
	// fleet-wide report statistics, migrations land via
	// Scheduler.PlaceRanked in the measurably best region (falling back to
	// the avoid-set path when the index has nothing admissible), and
	// backbone degradation measured below RegionFloorBps becomes a
	// proactive unhealthy verdict. Off (the default), no region probes are
	// issued and targeting is exactly the avoid-set path.
	Ranked bool
	// RegionFloorBps is the measured region bandwidth below which a region
	// counts as degraded for the proactive backbone verdict (default
	// 100 Kbps). Read only when Ranked.
	RegionFloorBps float64
	// MaxConcurrent caps how many migrations may be draining at once
	// across the fleet (default 2) — the admission half of the
	// coordination layer. Eligible applications beyond the cap keep their
	// unhealthy streaks and are reconsidered next tick; when the cap
	// forces a choice, the fairness tie-break prefers the longest streak,
	// then the fewest completed migrations, then admission order.
	MaxConcurrent int
	// LegacyTargeting forces the PR 4 reference controller: staged
	// avoid-set targeting with no concurrency cap and no region
	// measurements. It is the retained byte-identical oracle for the
	// migration equivalence tests, mirroring PerAppMonitoring and
	// GlobalReflow; it cannot be combined with Ranked.
	LegacyTargeting bool
}

// validate rejects nonsensical policies before defaulting fills the zero
// fields: negative knobs, NaNs, out-of-range fractions, and contradictory
// combinations all fail fleet construction instead of being silently
// "fixed" into something the caller did not ask for.
func (p MigrationPolicy) validate() error {
	bad := func(field string, v float64) error {
		return fmt.Errorf("fleet: MigrationPolicy.%s = %v is invalid (zero means default)", field, v)
	}
	switch {
	case p.CheckPeriod < 0 || math.IsNaN(p.CheckPeriod):
		return bad("CheckPeriod", p.CheckPeriod)
	case p.Patience < 0:
		return fmt.Errorf("fleet: MigrationPolicy.Patience = %d is invalid (zero means default)", p.Patience)
	case p.ViolFrac < 0 || p.ViolFrac > 1 || math.IsNaN(p.ViolFrac):
		return bad("ViolFrac", p.ViolFrac)
	case p.Cooldown < 0 || math.IsNaN(p.Cooldown):
		return bad("Cooldown", p.Cooldown)
	case p.DrainTimeout < 0 || math.IsNaN(p.DrainTimeout):
		return bad("DrainTimeout", p.DrainTimeout)
	case p.MaxPerApp < 0:
		return fmt.Errorf("fleet: MigrationPolicy.MaxPerApp = %d is invalid (zero means default)", p.MaxPerApp)
	case p.MaxConcurrent < 0:
		return fmt.Errorf("fleet: MigrationPolicy.MaxConcurrent = %d is invalid (zero means default)", p.MaxConcurrent)
	case p.RegionFloorBps < 0 || math.IsNaN(p.RegionFloorBps):
		return bad("RegionFloorBps", p.RegionFloorBps)
	case p.LegacyTargeting && p.Ranked:
		return fmt.Errorf("fleet: MigrationPolicy.LegacyTargeting (the avoid-set oracle) cannot be combined with Ranked")
	}
	return nil
}

func (p MigrationPolicy) withDefaults() MigrationPolicy {
	if p.CheckPeriod <= 0 {
		p.CheckPeriod = 15
	}
	if p.Patience < 1 {
		p.Patience = 4
	}
	if p.ViolFrac <= 0 {
		p.ViolFrac = 0.5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 300
	}
	if p.DrainTimeout <= 0 {
		p.DrainTimeout = 30
	}
	if p.DrainTimeout < p.CheckPeriod {
		p.DrainTimeout = p.CheckPeriod
	}
	if p.MaxPerApp < 1 {
		p.MaxPerApp = 3
	}
	if p.MaxConcurrent < 1 {
		p.MaxConcurrent = 2
	}
	if p.RegionFloorBps <= 0 {
		p.RegionFloorBps = 100e3
	}
	return p
}

// Migration records one re-placement of an application, or the attempt.
type Migration struct {
	App string
	// DecidedAt is when the controller (or a manual Migrate call) committed
	// to moving the app.
	DecidedAt float64
	// CompletedAt is when the cutover finished; -1 while draining, and
	// forever if the attempt failed (Err) or was aborted. A record is
	// terminal when Completed(), Aborted(), or Err is set.
	CompletedAt float64
	// AbortedAt is when a drain was abandoned — by retirement, by the end
	// of the run, or because the staged target's region failed mid-drain
	// (then Err carries the reason); -1 otherwise.
	AbortedAt float64
	// Drained reports whether every in-flight request completed before the
	// cutover (false: DrainTimeout forced it).
	Drained bool
	// FromManager/ToManager anchor the move for logs: the manager host
	// before and after.
	FromManager, ToManager netsim.NodeID
	// Ranked reports whether the target was chosen by the measured region
	// ranking (false: the staged avoid-set fallback decided).
	Ranked bool
	// SourceHealth and TargetHealth are the decision-time region-health
	// scores of the application's worst current server region and of the
	// worst region its servers were re-placed into. Meaningful only when
	// Ranked; the ranked-targeting invariant is TargetHealth ≥
	// SourceHealth.
	SourceHealth, TargetHealth float64
	// Err is the placement failure when no healthy region had capacity.
	Err error
}

// Completed reports whether the migration finished its cutover.
func (m Migration) Completed() bool { return m.CompletedAt >= 0 }

// Aborted reports whether the drain was abandoned before cutover.
func (m Migration) Aborted() bool { return m.AbortedAt >= 0 }

// appHealth is the fleet's monitoring-plane view of one application, fed by
// a fleet subscription on the app's report shard and consumed by the
// decision ticker. Counters cover the reports since the last tick.
type appHealth struct {
	sub                 *bus.Subscription
	latReports, latViol int
	bwReports, bwBelow  int
	streak              int
	lastMigrated        float64

	// Observability-plane state (all zero when tracing is off):
	// lastViolSpan is the bus span of the newest violating report, the causal
	// parent of the next unhealthy verdict; streakStart anchors the fleet's
	// decide-phase latency; recoverSpan/recoverAt watch a completed
	// migration's recovery, resolved at the first healthy verdict that saw
	// reports.
	lastViolSpan obs.SpanID
	lastVerdict  obs.SpanID
	streakStart  float64
	recoverSpan  obs.SpanID
	recoverAt    float64
}

// attachHealth subscribes the fleet to an application's gauge reports at the
// fleet control host. The subscription is a real bus tenant: reports ride
// the simulated network to the control host, so fleet-level monitoring pays
// the same honesty costs as everything else.
func (f *Fleet) attachHealth(a *App) {
	if a.health == nil {
		a.health = &appHealth{lastMigrated: -1}
	}
	h := a.health
	h.latReports, h.latViol, h.bwReports, h.bwBelow = 0, 0, 0, 0
	maxLat, minBW := a.Spec.MaxLatency, a.Spec.MinBandwidth
	h.sub = a.report.Subscribe(f.Host, bus.TopicIs(gauges.TopicReport), func(msg bus.Message) {
		switch {
		case msg.Kind == "client" && msg.Prop == "averageLatency":
			h.latReports++
			if msg.V1 > maxLat {
				h.latViol++
				h.lastViolSpan = msg.Span // zero (free) when tracing is off
			}
		case msg.Kind == "clientRole" && msg.Prop == "bandwidth":
			h.bwReports++
			if msg.V1 < minBW {
				h.bwBelow++
				h.lastViolSpan = msg.Span
			}
		}
	})
}

// migrationTick is one pass of the fleet feedback loop: refresh the region
// health index (when ranking is on), fold each live application's report
// counters into an unhealthy/healthy verdict, advance or reset its streak,
// and hand the applications whose streak says intra-app repair has had its
// chance and failed to the coordination layer, which bounds how many drains
// run at once.
func (f *Fleet) migrationTick(now float64) {
	p := f.Cfg.Migration
	if f.rh != nil {
		// Region statistics read the per-app counters before they reset
		// below; the batched Remos probe issued here lands before the next
		// tick.
		f.rh.tick()
	}
	cands := f.migrCands[:0]
	for _, name := range f.order {
		a := f.apps[name]
		if !a.Live() || a.health == nil {
			continue
		}
		h := a.health
		if a.migrating {
			// Mid-drain: the region statistics above consumed this tick's
			// reports; zero the counters so they are not folded again next
			// tick, but hold no verdict — health re-attaches at cutover.
			h.latReports, h.latViol, h.bwReports, h.bwBelow = 0, 0, 0, 0
			continue
		}
		unhealthy := (h.latReports > 0 && float64(h.latViol) >= p.ViolFrac*float64(h.latReports)) ||
			(h.bwReports > 0 && h.bwBelow == h.bwReports) ||
			(f.rh != nil && f.rh.appDegraded(a))
		hadReports := h.latReports+h.bwReports > 0
		h.latReports, h.latViol, h.bwReports, h.bwBelow = 0, 0, 0, 0
		if !unhealthy {
			h.streak = 0
			if h.recoverSpan != 0 && hadReports {
				// First healthy verdict backed by fresh reports: the migrated
				// app has demonstrably recovered.
				f.tracer.EndSpan(h.recoverSpan)
				f.tracer.RecordPhase(a.Name, obs.PhaseRecover, now-h.recoverAt)
				h.recoverSpan = 0
			}
			continue
		}
		h.streak++
		if f.tracer != nil {
			if h.streak == 1 {
				h.streakStart = now
				// Fleet-level detect latency: observation origin (probe sample
				// when the chain has one) → first unhealthy verdict.
				if sp, ok := f.tracer.Get(h.lastViolSpan); ok {
					start := sp.Start
					if anc, ok := f.tracer.Ancestor(h.lastViolSpan, obs.KindProbeSample); ok {
						start = anc.Start
					}
					f.tracer.RecordPhase(a.Name, obs.PhaseDetect, now-start)
				}
			}
			h.lastVerdict = f.tracer.Instant(obs.KindVerdict, h.lastViolSpan, a.Name, "unhealthy", float64(h.streak), 0)
		}
		if h.streak < p.Patience {
			continue
		}
		if f.completedMigrations(a) >= p.MaxPerApp {
			continue
		}
		if h.lastMigrated >= 0 && now-h.lastMigrated < p.Cooldown {
			continue
		}
		cands = append(cands, a)
	}
	f.migrCands = cands

	// Coordination: at most MaxConcurrent drains in flight fleet-wide
	// (legacy oracle: unbounded). Deferred candidates keep their streaks —
	// still unhealthy next tick, they compete again. When the cap forces a
	// choice, fairness prefers the longest streak (waited longest), then
	// the fewest completed migrations (least served so far), then admission
	// order; the chosen set is then processed in admission order so
	// placement stays a pure function of scheduler state.
	if !p.LegacyTargeting {
		if room := p.MaxConcurrent - f.inFlight; len(cands) > room {
			if room < 0 {
				room = 0
			}
			sort.SliceStable(cands, func(i, j int) bool {
				if cands[i].health.streak != cands[j].health.streak {
					return cands[i].health.streak > cands[j].health.streak
				}
				return f.completedMigrations(cands[i]) < f.completedMigrations(cands[j])
			})
			cands = cands[:room]
			sort.Slice(cands, func(i, j int) bool { return cands[i].admIdx < cands[j].admIdx })
		}
	}
	for _, a := range cands {
		a.health.streak = 0
		_ = f.beginMigration(a, now)
	}
}

// migrateParent is the causal parent of a migration decision: the app's
// newest unhealthy verdict (policy path), falling back to its newest
// violating report (manual Migrate before any verdict), else a root span.
func (f *Fleet) migrateParent(a *App) obs.SpanID {
	h := a.health
	if h == nil {
		return 0
	}
	if h.lastVerdict != 0 {
		return h.lastVerdict
	}
	return h.lastViolSpan
}

func (f *Fleet) completedMigrations(a *App) int {
	n := 0
	for _, m := range a.Migrations {
		if m.Completed() {
			n++
		}
	}
	return n
}

// Migrate immediately re-places a live application — the operator override;
// the policy ticker drives the same path. It reserves a new assignment away
// from the application's current region, pauses the clients, drains
// in-flight requests (bounded by the policy's DrainTimeout) and cuts over.
// The returned error reports placement failure (no healthy capacity) or a
// bad target; the drain and cutover themselves proceed asynchronously on
// the kernel.
func (f *Fleet) Migrate(name string) error {
	a := f.apps[name]
	if a == nil {
		return fmt.Errorf("fleet: no application %q", name)
	}
	if !a.Live() {
		return fmt.Errorf("fleet: application %q is retired", name)
	}
	if a.migrating {
		return fmt.Errorf("fleet: application %q is already migrating", name)
	}
	if f.Cfg.PerAppMonitoring {
		return fmt.Errorf("fleet: migration requires the fleet-shared monitoring plane")
	}
	// The operator path is coordinated like the ticker path: a manual
	// migration may not exceed the concurrent-drain cap either.
	if p := f.Cfg.Migration; !p.LegacyTargeting && p.MaxConcurrent > 0 && f.inFlight >= p.MaxConcurrent {
		return fmt.Errorf("fleet: %d migrations already draining (MaxConcurrent=%d)", f.inFlight, p.MaxConcurrent)
	}
	return f.beginMigration(a, f.K.Now())
}

// beginMigration reserves the new placement as a staged Reservation and
// starts the drain. With ranking enabled the target comes from the region
// health index via PlaceRanked — only regions measurably at least as
// healthy as the source qualify. Without it (or when the index has nothing
// admissible) the avoid set is staged as before: first every router the
// application currently touches (a completely fresh region), then only the
// routers of its server hosts (the links whose bandwidth actually
// collapsed) — the narrower retry keeps migration possible on grids
// without a whole spare region.
func (f *Fleet) beginMigration(a *App, now float64) error {
	rec := Migration{
		App: a.Name, DecidedAt: now, CompletedAt: -1, AbortedAt: -1,
		FromManager: a.Assign.ManagerHost,
	}
	var newAssign *Assignment
	if f.rh != nil {
		if rank, source, ok := f.rh.RankFor(a); ok {
			if asg, err := f.Sch.PlaceRanked(a.Opspec, rank); err == nil {
				newAssign = asg
				rec.Ranked = true
				rec.SourceHealth = source
				rec.TargetHealth = f.rh.AssignmentHealth(asg)
			}
		}
	}
	if newAssign == nil {
		avoid := map[netsim.NodeID]bool{}
		a.Assign.hosts(func(h netsim.NodeID) { avoid[f.Grid.RouterOf(h)] = true })
		asg, err := f.Sch.PlaceAvoiding(a.Opspec, avoid)
		if err != nil {
			avoid = map[netsim.NodeID]bool{}
			for _, h := range a.Assign.ServerHosts {
				avoid[f.Grid.RouterOf(h)] = true
			}
			asg, err = f.Sch.PlaceAvoiding(a.Opspec, avoid)
		}
		if err != nil {
			rec.Err = err
			a.Migrations = append(a.Migrations, rec)
			if f.tracer != nil {
				f.tracer.Instant(obs.KindMigrateDecide, f.migrateParent(a), a.Name, "failed", 0, 0)
			}
			return err
		}
		newAssign = asg
	}
	rec.ToManager = newAssign.ManagerHost
	a.Migrations = append(a.Migrations, rec)
	if f.tracer != nil {
		target := "avoid-set"
		if rec.Ranked {
			target = "ranked"
		}
		dec := f.tracer.Instant(obs.KindMigrateDecide, f.migrateParent(a), a.Name, target,
			rec.SourceHealth, rec.TargetHealth)
		f.tracer.Instant(obs.KindReserve, dec, a.Name, fmt.Sprintf("mgr@%v", rec.ToManager), 0, 0)
		a.traceDrain = f.tracer.Begin(obs.KindDrain, dec, a.Name, "drain", 0, 0)
		if h := a.health; h != nil && h.streakStart > 0 {
			// Decide latency: first unhealthy verdict → migration commit.
			f.tracer.RecordPhase(a.Name, obs.PhaseDecide, now-h.streakStart)
		}
	}
	if a.ol != nil {
		// Drop autoscaled replicas and cancel class flows before the drain:
		// the cutover's Rehost must cover exactly the spec's processes, and
		// the engine rebuilds classes against the new placement afterwards.
		f.openLoopTeardown(a, true)
	}
	a.migrating = true
	a.pending = f.Sch.Stage(newAssign)
	f.inFlight++
	if f.inFlight > f.peakInFlight {
		f.peakInFlight = f.inFlight
	}
	a.Sys.PauseClients()
	f.pollDrain(a, now)
	return nil
}

// pollDrain waits for the paused application's in-flight requests to finish
// (or for DrainTimeout) and then cuts over. Retirement mid-drain, the end of
// the run, or a failure of the staged target's region after the decision
// aborts the migration cleanly (a region already failed when the target was
// chosen does not — that tradeoff was priced into the decision).
func (f *Fleet) pollDrain(a *App, decidedAt float64) {
	const pollPeriod = 1.0
	var poll func()
	poll = func() {
		if f.stopped || !a.Live() || !a.migrating {
			return // aborted: Retire or Stop released the staged reservation
		}
		now := f.K.Now()
		if r, failed := f.targetFailedSince(a.pending.Assignment(), decidedAt); failed {
			// The staged target's region failed after the decision: cutting
			// over would move the app into the outage. Abort, release the
			// reservation, resume on the old placement.
			f.abortDrain(a, fmt.Errorf("fleet: target region %d failed mid-drain", r), true)
			return
		}
		drained := a.obs.Outstanding() == 0
		if !drained && now < decidedAt+f.Cfg.Migration.DrainTimeout {
			f.K.At(now+pollPeriod, poll)
			return
		}
		f.cutover(a, drained)
	}
	f.K.At(f.K.Now()+pollPeriod, poll)
}

// abortDrain abandons an in-progress drain: the staged reservation is
// released, the record is stamped aborted (reason, when there is one, lands
// in Err), and with resume the clients continue on the old placement — the
// mid-drain-failure path. Retirement and Stop abort without resuming.
func (f *Fleet) abortDrain(a *App, reason error, resume bool) {
	a.pending.Release()
	a.pending = nil
	a.migrating = false
	f.inFlight--
	rec := &a.Migrations[len(a.Migrations)-1]
	rec.AbortedAt = f.K.Now()
	rec.Err = reason
	f.tracer.EndSpan(a.traceDrain)
	a.traceDrain = 0
	if resume {
		a.Sys.ResumeClients()
		if a.health != nil {
			// A fresh verdict streak: the controller re-evaluates from
			// scratch rather than instantly re-deciding into the outage.
			a.health.streak = 0
		}
	}
}

// cutover executes the re-placement at one kernel instant: detach the
// manager from the monitoring plane, release the old shards and slots,
// re-point every process at the new hosts, re-lease a plane at the new
// anchor, redeploy, and resume the clients.
func (f *Fleet) cutover(a *App, drained bool) {
	now := f.K.Now()

	// Full detach from the old anchor: probes silenced, report subscription
	// removed, gauge lease closed (teardown handshakes drain in the
	// background from the old manager host), shards recycled. The fleet's
	// own health subscription dies with the report shard.
	a.Mgr.Shutdown()
	a.probe.Release()
	a.report.Release()
	if a.health != nil {
		a.health.sub = nil
	}

	// Swap placements and re-point the processes. Committing the
	// reservation transfers slot ownership to the live assignment.
	f.Sch.Release(a.Assign)
	a.Assign = a.pending.Commit()
	a.pending = nil
	if err := a.Sys.Rehost(a.Assign.QueueHost, a.Assign.ServerHosts, a.Assign.ClientHosts); err != nil {
		panic("fleet: rehost after placement: " + err.Error()) // placement covers every process
	}

	// Re-attach at the new anchor. The lease name freed synchronously in
	// Shutdown, so re-leasing under the same application name cannot fail.
	lease, err := f.Gauges.Lease(a.Name, a.Assign.ManagerHost)
	if err != nil {
		panic("fleet: re-lease after shutdown: " + err.Error())
	}
	a.probe = f.ProbeBus.Acquire()
	a.report = f.ReportBus.Acquire()
	a.probe.Label = a.Name
	a.report.Label = a.Name
	a.Mgr.Reattach(a.Assign.ManagerHost, core.Plane{Probe: a.probe, Report: a.report, Gauges: lease})
	if a.health != nil {
		f.attachHealth(a)
		a.health.streak = 0
		a.health.lastMigrated = now
	}
	a.Sys.ResumeClients()
	a.migrating = false
	f.inFlight--

	rec := &a.Migrations[len(a.Migrations)-1]
	rec.CompletedAt = now
	rec.Drained = drained

	if f.tracer != nil {
		f.tracer.EndSpan(a.traceDrain)
		how := "timeout"
		if drained {
			how = "drained"
		}
		cut := f.tracer.Instant(obs.KindCutover, a.traceDrain, a.Name, how, 0, 0)
		f.tracer.RecordPhase(a.Name, obs.PhaseDrain, now-rec.DecidedAt)
		a.traceDrain = 0
		if h := a.health; h != nil {
			if h.recoverSpan != 0 {
				// A repeat migration superseded an unresolved recovery.
				f.tracer.EndSpan(h.recoverSpan)
			}
			h.recoverSpan = f.tracer.Begin(obs.KindRecover, cut, a.Name, "recover/migration", 0, 0)
			h.recoverAt = now
		}
	}
}
