package fleet

import (
	"reflect"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// TestMonitoringEquivalenceFleetSummaries runs the same fleet scenario on
// the fleet-shared monitoring plane (the default) and with per-application
// monitoring forced (PerAppMonitoring), and requires byte-identical
// summaries: sharing the bus and gauge manager must not change simulation
// results, only their cost. This mirrors TestSolverEquivalenceFleetSummaries
// — PerAppMonitoring is the retained reference oracle.
func TestMonitoringEquivalenceFleetSummaries(t *testing.T) {
	base := ScenarioOptions{
		Apps: 4, Seed: 9, Duration: 300, Adaptive: true,
		AdmitStagger: 3,
		CrushStart:   120, CrushStagger: 5, CrushDuration: 120,
	}
	shared, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	perAppOpts := base
	perAppOpts.PerAppMonitoring = true
	perApp, err := RunScenario(perAppOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shared.Summaries, perApp.Summaries) {
		t.Fatalf("summaries diverged between monitoring planes:\nshared:\n%s\nper-app:\n%s",
			Table(shared.Summaries), Table(perApp.Summaries))
	}
	if st, pt := Table(shared.Summaries), Table(perApp.Summaries); st != pt {
		t.Fatalf("summary tables diverged:\n%s\nvs\n%s", st, pt)
	}
	// Same-seed determinism still holds on the shared plane.
	again, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shared.Summaries, again.Summaries) {
		t.Fatal("shared-plane runs are not deterministic across same-seed runs")
	}
}

// TestMonitoringEquivalenceWithRetirement extends the oracle comparison to
// mid-run retirement: the shared plane fully detaches a retired app (probes,
// subscriptions, gauges) while the per-app reference leaves its private
// monitoring running — the summaries must still be byte-identical, because
// post-retirement monitoring must have no observable effect.
func TestMonitoringEquivalenceWithRetirement(t *testing.T) {
	run := func(perApp bool) []AppSummary {
		k := sim.NewKernel()
		grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 9, HostsPerRouter: 3, Seed: 21})
		f, err := New(k, grid, 21, Config{Adaptive: true, HostCapacity: 1, PerAppMonitoring: perApp})
		if err != nil {
			t.Fatal(err)
		}
		spec := AppSpec{Groups: 2, ServersPerGroup: 2, Clients: 2}
		for _, name := range []string{"alpha", "beta", "gamma"} {
			s := spec
			s.Name = name
			if _, err := f.Admit(s); err != nil {
				t.Fatalf("admitting %s: %v", name, err)
			}
		}
		k.At(120, func() { _ = f.CrushPrimary("alpha") })
		k.At(200, func() {
			if err := f.Retire("beta"); err != nil {
				t.Errorf("retiring beta: %v", err)
			}
			s := spec
			s.Name = "delta"
			if _, err := f.Admit(s); err != nil {
				t.Errorf("admitting delta: %v", err)
			}
		})
		k.At(240, func() { f.RestorePrimary("alpha") })
		k.Run(400)
		f.Stop()
		k.Run(520)
		return f.Summaries()
	}
	shared := run(false)
	perApp := run(true)
	if !reflect.DeepEqual(shared, perApp) {
		t.Fatalf("summaries diverged with retirement:\nshared:\n%s\nper-app:\n%s",
			Table(shared), Table(perApp))
	}
}

// TestSharedPlaneDetachAndReuse asserts the shared plane's lifecycle
// accounting across mid-run admission and retirement: a retired app's
// subscriptions are fully detached, its gauges torn down (no leaks, via
// Manager.Counts), and its shards recycled for the next admission.
func TestSharedPlaneDetachAndReuse(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 9, HostsPerRouter: 3, Seed: 5})
	f, err := New(k, grid, 5, Config{Adaptive: true, HostCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := AppSpec{Groups: 2, ServersPerGroup: 2, Clients: 2}
	for _, name := range []string{"alpha", "beta"} {
		s := spec
		s.Name = name
		if _, err := f.Admit(s); err != nil {
			t.Fatalf("admitting %s: %v", name, err)
		}
	}
	if got := f.ProbeBus.Tenants(); got != 2 {
		t.Fatalf("probe tenants = %d, want 2", got)
	}
	if got := f.Gauges.Leases(); got != 2 {
		t.Fatalf("gauge leases = %d, want 2", got)
	}
	// Each app deploys 2 latency + 2 bandwidth + 2 load gauges.
	k.Run(100)
	if got := f.Gauges.Deployed(); got != 12 {
		t.Fatalf("deployed gauges = %d, want 12", got)
	}
	creates0, deletes0, _ := f.Gauges.Counts()
	if creates0 != 12 || deletes0 != 0 {
		t.Fatalf("counts after deploy: creates=%d deletes=%d", creates0, deletes0)
	}

	// Retire beta: subscriptions detach, gauges tear down, shards free up.
	if err := f.Retire("beta"); err != nil {
		t.Fatal(err)
	}
	if got := f.ProbeBus.Tenants(); got != 1 {
		t.Fatalf("probe tenants after retire = %d, want 1", got)
	}
	if got := f.ReportBus.Tenants(); got != 1 {
		t.Fatalf("report tenants after retire = %d, want 1", got)
	}
	if got := f.Gauges.Leases(); got != 1 {
		t.Fatalf("gauge leases after retire = %d, want 1", got)
	}
	if got := f.Gauges.Deployed(); got != 6 {
		t.Fatalf("deployed gauges after retire = %d, want 6 (beta leaked)", got)
	}
	creates1, deletes1, _ := f.Gauges.Counts()
	if creates1-deletes1 != uint64(f.Gauges.Deployed()) {
		t.Fatalf("gauge leak: creates=%d deletes=%d deployed=%d",
			creates1, deletes1, f.Gauges.Deployed())
	}

	// A later admission reuses beta's released shards instead of growing the
	// pool: acquisitions rise, but so must tenant count, with no fresh shard
	// structures needed (4 acquisitions total, 2 apps live + 2 recycled).
	acquiredBefore := f.ProbeBus.ShardsAcquired()
	s := spec
	s.Name = "gamma"
	if _, err := f.Admit(s); err != nil {
		t.Fatal(err)
	}
	if got := f.ProbeBus.Tenants(); got != 2 {
		t.Fatalf("probe tenants after re-admit = %d, want 2", got)
	}
	if got := f.ProbeBus.ShardsAcquired(); got != acquiredBefore+1 {
		t.Fatalf("acquisitions = %d, want %d", got, acquiredBefore+1)
	}
	k.Run(200)
	if got := f.Gauges.Deployed(); got != 12 {
		t.Fatalf("deployed gauges after re-admit = %d, want 12", got)
	}
	// Beta's reporting stopped at retirement: its manager consumed reports
	// before retiring and none after (its model stops changing).
	if f.App("beta").Mgr.Reports() == 0 {
		t.Fatal("beta never consumed reports while live")
	}
	reportsAtRetire := f.App("beta").Mgr.Reports()
	k.Run(300)
	if got := f.App("beta").Mgr.Reports(); got != reportsAtRetire {
		t.Fatalf("beta consumed reports after retirement: %d -> %d", reportsAtRetire, got)
	}

	f.Stop()
	k.Run(420)
}
