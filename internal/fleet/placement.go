// Placement: the slot-capacity scheduler that decides which grid hosts an
// application's processes land on, both at admission and when the migration
// controller re-places a degraded application (see the package comment in
// fleet.go for how placement and migration divide the work).
package fleet

import (
	"fmt"
	"math"

	"archadapt/internal/netsim"
	"archadapt/internal/operators"
)

// Assignment maps one application's processes onto grid hosts.
type Assignment struct {
	// QueueHost runs the request-queue machine; ManagerHost runs the repair
	// infrastructure (architecture manager, gauge manager).
	QueueHost   netsim.NodeID
	ManagerHost netsim.NodeID
	ServerHosts map[string]netsim.NodeID
	ClientHosts map[string]netsim.NodeID
}

// slots returns how many host slots the assignment occupies.
func (a *Assignment) slots() int { return 2 + len(a.ServerHosts) + len(a.ClientHosts) }

// hosts iterates every occupied host (with multiplicity).
func (a *Assignment) hosts(fn func(netsim.NodeID)) {
	fn(a.QueueHost)
	fn(a.ManagerHost)
	for _, h := range a.ServerHosts {
		fn(h)
	}
	for _, h := range a.ClientHosts {
		fn(h)
	}
}

// Scheduler places applications on grid hosts. Each host has a fixed number
// of process slots (HostCapacity); the scheduler balances committed load,
// spreads an application's replicas across routers, and ranks candidate
// hosts by predicted bandwidth to the application's queue host — the Remos
// query the paper's findGoodSGroup performs at repair time, applied here at
// admission time.
type Scheduler struct {
	Grid *netsim.Grid
	// HostCapacity is the number of process slots per host.
	HostCapacity int
	// Predict returns the predicted available bandwidth src→dst in bits/sec
	// (normally the Remos substitute's warm-path measurement).
	Predict func(src, dst netsim.NodeID) float64

	load map[netsim.NodeID]int
}

// NewScheduler creates a scheduler over a grid. predict may be nil, in which
// case the network's own availability estimate is used directly.
func NewScheduler(grid *netsim.Grid, hostCapacity int, predict func(src, dst netsim.NodeID) float64) *Scheduler {
	if hostCapacity < 1 {
		hostCapacity = 1
	}
	if predict == nil {
		predict = grid.Net.AvailBandwidth
	}
	return &Scheduler{
		Grid:         grid,
		HostCapacity: hostCapacity,
		Predict:      predict,
		load:         map[netsim.NodeID]int{},
	}
}

// Load returns the committed process count on a host.
func (s *Scheduler) Load(h netsim.NodeID) int { return s.load[h] }

// FreeSlots returns the number of unoccupied process slots on the grid.
func (s *Scheduler) FreeSlots() int {
	free := 0
	for _, h := range s.Grid.Hosts {
		free += s.HostCapacity - s.load[h]
	}
	return free
}

// Reserve permanently takes one slot on the least-loaded host, for fleet
// infrastructure (the shared Remos collector).
func (s *Scheduler) Reserve() (netsim.NodeID, error) {
	h, ok := s.pick(func(h netsim.NodeID) (bool, float64) { return true, 0 })
	if !ok {
		return 0, fmt.Errorf("fleet: no free slot to reserve")
	}
	s.load[h]++
	return h, nil
}

// ReleaseHost returns a single committed slot on a host — the inverse of
// Reserve for slots taken one at a time (the open-loop autoscaler's
// per-replica reservations).
func (s *Scheduler) ReleaseHost(h netsim.NodeID) {
	if s.load[h] > 0 {
		s.load[h]--
	}
}

// pick returns the admissible host with the lowest (load, -score, index)
// rank. score lets callers express preferences (bandwidth, spreading);
// admissible filters hosts out entirely. Ties break on grid host order, so
// placement is deterministic.
func (s *Scheduler) pick(rank func(h netsim.NodeID) (admissible bool, score float64)) (netsim.NodeID, bool) {
	var best netsim.NodeID
	bestLoad, bestScore, found := 0, 0.0, false
	for _, h := range s.Grid.Hosts {
		if s.load[h] >= s.HostCapacity {
			continue
		}
		ok, score := rank(h)
		if !ok {
			continue
		}
		if !found || s.load[h] < bestLoad || (s.load[h] == bestLoad && score > bestScore) {
			best, bestLoad, bestScore, found = h, s.load[h], score, true
		}
	}
	return best, found
}

// Place computes an assignment for a spec and commits it. Placement order —
// queue, manager, server groups in spec order, clients in spec order — and
// the deterministic tie-breaks make the assignment a pure function of
// scheduler state. On any failure nothing is committed.
func (s *Scheduler) Place(spec operators.Spec) (*Assignment, error) {
	return s.PlaceAvoiding(spec, nil)
}

// PlaceAvoiding places like Place but refuses every host hanging off a
// router in avoid — the migration path's "healthy region only" filter: the
// fleet passes the routers of a degraded application's current hosts so the
// re-placement lands somewhere genuinely different. A nil or empty avoid set
// is exactly Place. The capacity pre-check counts only allowed hosts, so a
// grid with free slots solely inside the avoided region fails fast.
func (s *Scheduler) PlaceAvoiding(spec operators.Spec, avoid map[netsim.NodeID]bool) (*Assignment, error) {
	allowed := func(h netsim.NodeID) bool {
		return len(avoid) == 0 || !avoid[s.Grid.RouterOf(h)]
	}
	return s.placeWhere(spec, allowed, nil, func(need, free int) error {
		if len(avoid) > 0 {
			return fmt.Errorf("fleet: no healthy capacity: need %d slots, %d free outside %d avoided routers",
				need, free, len(avoid))
		}
		return fmt.Errorf("fleet: grid full: need %d slots, %d free", need, free)
	})
}

// RegionRank is a measured health score per region (indexed by
// Grid.RouterIndex), higher = healthier. The fleet's region-health index
// produces one from Remos measurements and fleet-wide report statistics;
// PlaceRanked consumes it. A score of -Inf excludes the region outright —
// the migration controller uses that to rule out every region measurably
// worse than the one the application is fleeing. A nil rank disables ranked
// targeting (callers fall back to the avoid-set path).
type RegionRank []float64

// rankWeight scales a region's health score ([-1, 1] from the health
// index) so it dominates every per-host preference (bandwidth ~10, router
// spread 1e3, self-colocation 1e6): ranked placement commits to the
// measurably best region first and only then optimizes within it.
const rankWeight = 1e9

// PlaceRanked places like Place but steers every process toward the
// highest-ranked regions: a host's score is dominated by its region's rank,
// with the usual bandwidth/spread/colocation preferences breaking ties
// inside equally-ranked regions. Hosts in regions ranked -Inf (or beyond
// the rank's length) are excluded entirely, and the capacity pre-check
// counts only admissible hosts. An empty rank is exactly Place.
func (s *Scheduler) PlaceRanked(spec operators.Spec, rank RegionRank) (*Assignment, error) {
	if len(rank) == 0 {
		return s.Place(spec)
	}
	admissible := func(h netsim.NodeID) bool {
		r := s.Grid.RouterIndex(h)
		return r >= 0 && r < len(rank) && !math.IsInf(rank[r], -1)
	}
	bias := func(h netsim.NodeID) float64 {
		// Hosts in regions beyond the rank are inadmissible, but pick
		// evaluates the score before the admissibility filter — guard the
		// index rather than panic on a short rank.
		if r := s.Grid.RouterIndex(h); r >= 0 && r < len(rank) {
			return rank[r] * rankWeight
		}
		return 0
	}
	return s.placeWhere(spec, admissible, bias, func(need, free int) error {
		return fmt.Errorf("fleet: no ranked capacity: need %d slots, %d free in admissible regions", need, free)
	})
}

// placeWhere is the placement core shared by Place, PlaceAvoiding and
// PlaceRanked: allowed filters hosts, bias (nil = none) is added to every
// pick score, and capacityErr renders the caller-specific pre-check
// failure. With a nil bias the arithmetic is identical to the pre-ranking
// scheduler, which the migration equivalence tests rely on.
func (s *Scheduler) placeWhere(spec operators.Spec, allowed func(netsim.NodeID) bool, bias func(netsim.NodeID) float64, capacityErr func(need, free int) error) (*Assignment, error) {
	need := 2
	for _, g := range spec.Groups {
		need += len(g.Servers)
	}
	need += len(spec.Clients)
	free := 0
	for _, h := range s.Grid.Hosts {
		if allowed(h) {
			free += s.HostCapacity - s.load[h]
		}
	}
	if free < need {
		return nil, capacityErr(need, free)
	}

	a := &Assignment{
		ServerHosts: map[string]netsim.NodeID{},
		ClientHosts: map[string]netsim.NodeID{},
	}
	taken := map[netsim.NodeID]int{} // this app's own occupancy (for self-spread)
	var committed []netsim.NodeID
	take := func(h netsim.NodeID) {
		s.load[h]++
		taken[h]++
		committed = append(committed, h)
	}
	release := func() {
		for _, h := range committed {
			s.load[h]--
		}
	}

	// Queue and manager: least-loaded hosts, avoiding double-stacking the
	// app's own infrastructure where possible.
	qh, ok := s.pick(func(h netsim.NodeID) (bool, float64) {
		score := 0.0
		if bias != nil {
			score = bias(h)
		}
		return allowed(h), score
	})
	if !ok {
		return nil, fmt.Errorf("fleet: no host for request queue")
	}
	a.QueueHost = qh
	take(qh)
	mh, ok := s.pick(func(h netsim.NodeID) (bool, float64) {
		score := -float64(taken[h])
		if bias != nil {
			score += bias(h)
		}
		return allowed(h), score
	})
	if !ok {
		release()
		return nil, fmt.Errorf("fleet: no host for manager")
	}
	a.ManagerHost = mh
	take(mh)

	// Server groups: spread each group's replicas across routers, avoid
	// hosts this app already occupies, and among the remainder prefer the
	// best predicted bandwidth to the queue host.
	serverRouters := map[netsim.NodeID]bool{}
	for _, g := range spec.Groups {
		groupRouters := map[netsim.NodeID]bool{}
		for _, srv := range g.Servers {
			h, ok := s.pick(func(h netsim.NodeID) (bool, float64) {
				score := s.Predict(h, a.QueueHost) / 1e6
				if groupRouters[s.Grid.RouterOf(h)] {
					score -= 1e3 // spread replicas across routers
				}
				if taken[h] > 0 {
					score -= 1e6 // never co-locate with our own processes if avoidable
				}
				if bias != nil {
					score += bias(h)
				}
				return allowed(h), score
			})
			if !ok {
				release()
				return nil, fmt.Errorf("fleet: no host for server %s", srv)
			}
			a.ServerHosts[srv] = h
			groupRouters[s.Grid.RouterOf(h)] = true
			serverRouters[s.Grid.RouterOf(h)] = true
			take(h)
		}
	}

	// Clients: prefer routers that host none of this app's servers, so
	// client↔server traffic crosses the backbone as in the testbed.
	for _, c := range spec.Clients {
		h, ok := s.pick(func(h netsim.NodeID) (bool, float64) {
			score := 0.0
			if serverRouters[s.Grid.RouterOf(h)] {
				score -= 1e3
			}
			if taken[h] > 0 {
				score -= 1e6
			}
			if bias != nil {
				score += bias(h)
			}
			return allowed(h), score
		})
		if !ok {
			release()
			return nil, fmt.Errorf("fleet: no host for client %s", c.Name)
		}
		a.ClientHosts[c.Name] = h
		take(h)
	}
	return a, nil
}

// Reservation stages a committed assignment for a migration in flight. The
// slots were taken from the scheduler the moment the assignment was placed
// — a later placement can never hand the same last slots to a second drain;
// that commit-at-decision is what serializes concurrent migrations
// competing for the same spare capacity. The reservation then has exactly
// two exits: Commit hands the slots to the cutover, Release returns them to
// the pool (retirement mid-drain, placement abandoned). Release is
// idempotent and a no-op after Commit, so every abort path can call it
// unconditionally; Scheduler.FreeSlots round-trips exactly either way.
type Reservation struct {
	sch       *Scheduler
	assign    *Assignment
	released  bool
	committed bool
}

// Stage wraps an assignment whose slots this scheduler already committed
// (Place/PlaceAvoiding/PlaceRanked) into a staged reservation.
func (s *Scheduler) Stage(a *Assignment) *Reservation {
	return &Reservation{sch: s, assign: a}
}

// Assignment returns the staged target without transferring ownership.
func (r *Reservation) Assignment() *Assignment { return r.assign }

// Release returns the staged slots to the scheduler. Idempotent; no-op
// after Commit (the slots then belong to the live assignment).
func (r *Reservation) Release() {
	if r == nil || r.released || r.committed {
		return
	}
	r.released = true
	r.sch.Release(r.assign)
}

// Commit finalizes the reservation and hands the assignment to the caller,
// which now owns the slots (they are freed later by Scheduler.Release at
// retirement or the next migration). Committing a released reservation is
// a bug — the slots may already be someone else's.
func (r *Reservation) Commit() *Assignment {
	if r.released {
		panic("fleet: committing a released reservation")
	}
	r.committed = true
	return r.assign
}

// Release returns an assignment's slots to the pool (application
// retirement).
func (s *Scheduler) Release(a *Assignment) {
	if a == nil {
		return
	}
	a.hosts(func(h netsim.NodeID) {
		if s.load[h] > 0 {
			s.load[h]--
		}
	})
}
