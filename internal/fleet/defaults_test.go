package fleet

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// TestMigrationPolicyWithDefaults is the direct table-driven test of the
// policy defaulting rules: zero fields fill in, explicit fields survive,
// and the DrainTimeout-below-CheckPeriod combination is clamped up (the
// controller cannot re-evaluate faster than it measures).
func TestMigrationPolicyWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   MigrationPolicy
		want MigrationPolicy
	}{
		{
			name: "zero fills every default",
			in:   MigrationPolicy{},
			want: MigrationPolicy{
				CheckPeriod: 15, Patience: 4, ViolFrac: 0.5, Cooldown: 300,
				DrainTimeout: 30, MaxPerApp: 3, MaxConcurrent: 2, RegionFloorBps: 100e3,
			},
		},
		{
			name: "explicit fields survive, the rest default",
			in:   MigrationPolicy{Enabled: true, Patience: 2, Cooldown: 60, MaxConcurrent: 5},
			want: MigrationPolicy{
				Enabled: true, CheckPeriod: 15, Patience: 2, ViolFrac: 0.5, Cooldown: 60,
				DrainTimeout: 30, MaxPerApp: 3, MaxConcurrent: 5, RegionFloorBps: 100e3,
			},
		},
		{
			name: "drain timeout below the check period is clamped up",
			in:   MigrationPolicy{CheckPeriod: 20, DrainTimeout: 5},
			want: MigrationPolicy{
				CheckPeriod: 20, Patience: 4, ViolFrac: 0.5, Cooldown: 300,
				DrainTimeout: 20, MaxPerApp: 3, MaxConcurrent: 2, RegionFloorBps: 100e3,
			},
		},
		{
			name: "default drain timeout clamps to a long check period",
			in:   MigrationPolicy{CheckPeriod: 60},
			want: MigrationPolicy{
				CheckPeriod: 60, Patience: 4, ViolFrac: 0.5, Cooldown: 300,
				DrainTimeout: 60, MaxPerApp: 3, MaxConcurrent: 2, RegionFloorBps: 100e3,
			},
		},
		{
			name: "ranked knobs survive",
			in:   MigrationPolicy{Enabled: true, Ranked: true, RegionFloorBps: 50e3},
			want: MigrationPolicy{
				Enabled: true, Ranked: true, CheckPeriod: 15, Patience: 4, ViolFrac: 0.5,
				Cooldown: 300, DrainTimeout: 30, MaxPerApp: 3, MaxConcurrent: 2, RegionFloorBps: 50e3,
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.in.validate(); err != nil {
				t.Fatalf("validate rejected a valid policy: %v", err)
			}
			if got := c.in.withDefaults(); got != c.want {
				t.Errorf("withDefaults:\n got %+v\nwant %+v", got, c.want)
			}
		})
	}
}

// TestMigrationPolicyValidate rejects the nonsensical policies withDefaults
// used to silently "fix": negative knobs, NaNs, out-of-range fractions and
// contradictory flags all fail, and fleet construction surfaces the error.
func TestMigrationPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		in   MigrationPolicy
		frag string // expected substring of the error
	}{
		{"negative check period", MigrationPolicy{CheckPeriod: -1}, "CheckPeriod"},
		{"NaN check period", MigrationPolicy{CheckPeriod: math.NaN()}, "CheckPeriod"},
		{"negative patience", MigrationPolicy{Patience: -2}, "Patience"},
		{"violfrac above one", MigrationPolicy{ViolFrac: 1.5}, "ViolFrac"},
		{"negative violfrac", MigrationPolicy{ViolFrac: -0.1}, "ViolFrac"},
		{"NaN violfrac", MigrationPolicy{ViolFrac: math.NaN()}, "ViolFrac"},
		{"negative cooldown", MigrationPolicy{Cooldown: -5}, "Cooldown"},
		{"NaN cooldown", MigrationPolicy{Cooldown: math.NaN()}, "Cooldown"},
		{"negative drain timeout", MigrationPolicy{DrainTimeout: -1}, "DrainTimeout"},
		{"NaN drain timeout", MigrationPolicy{DrainTimeout: math.NaN()}, "DrainTimeout"},
		{"negative max per app", MigrationPolicy{MaxPerApp: -1}, "MaxPerApp"},
		{"negative max concurrent", MigrationPolicy{MaxConcurrent: -3}, "MaxConcurrent"},
		{"negative region floor", MigrationPolicy{RegionFloorBps: -10}, "RegionFloorBps"},
		{"NaN region floor", MigrationPolicy{RegionFloorBps: math.NaN()}, "RegionFloorBps"},
		{"legacy oracle with ranking", MigrationPolicy{LegacyTargeting: true, Ranked: true}, "LegacyTargeting"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.in.validate()
			if err == nil {
				t.Fatalf("validate accepted %+v", c.in)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not name %s", err, c.frag)
			}
			// New surfaces the same rejection.
			k := sim.NewKernel()
			grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 3, HostsPerRouter: 2, Seed: 1})
			cfg := Config{}
			cfg.Migration = c.in
			if _, err := New(k, grid, 1, cfg); err == nil {
				t.Error("New accepted the invalid policy")
			}
		})
	}
}

// TestConfigWithDefaults covers the fleet-config defaulting rules directly.
func TestConfigWithDefaults(t *testing.T) {
	got := Config{}.withDefaults()
	if got.HostCapacity != 4 || got.SamplePeriod != 5 {
		t.Errorf("zero Config defaulted to %+v", got)
	}
	got = Config{HostCapacity: -2, SamplePeriod: -1}.withDefaults()
	if got.HostCapacity != 4 || got.SamplePeriod != 5 {
		t.Errorf("negative Config fields not clamped: %+v", got)
	}
	kept := Config{HostCapacity: 2, SamplePeriod: 1}.withDefaults()
	if kept.HostCapacity != 2 || kept.SamplePeriod != 1 {
		t.Errorf("explicit Config fields overwritten: %+v", kept)
	}
}

// TestAppSpecWithDefaults covers the per-application defaulting rules,
// including the negative values that clamp rather than reject (an AppSpec
// is workload description, not a control policy).
func TestAppSpecWithDefaults(t *testing.T) {
	got := AppSpec{}.withDefaults()
	want := AppSpec{
		Groups: 2, ServersPerGroup: 2, SparesPerGroup: 0, Clients: 2,
		ClientRate: 1, RespBits: 8 * 8192,
		MaxLatency: 2, MaxServerLoad: 6, MinBandwidth: 10e3,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero AppSpec:\n got %+v\nwant %+v", got, want)
	}
	neg := AppSpec{Groups: -1, ServersPerGroup: -1, SparesPerGroup: -4, Clients: -1,
		ClientRate: -1, RespBits: -1, MaxLatency: -1, MaxServerLoad: -1, MinBandwidth: -1}.withDefaults()
	if !reflect.DeepEqual(neg, want) {
		t.Errorf("negative AppSpec not clamped to defaults:\n got %+v\nwant %+v", neg, want)
	}
}
