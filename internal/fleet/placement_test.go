package fleet

import (
	"math"
	"reflect"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/operators"
	"archadapt/internal/sim"
)

func testGrid(routers, hostsPerRouter int) *netsim.Grid {
	return netsim.GenerateGrid(sim.NewKernel(), netsim.GridSpec{
		Routers: routers, HostsPerRouter: hostsPerRouter, Seed: 1,
	})
}

func testSpec() operators.Spec {
	return AppSpec{Name: "t", Groups: 2, ServersPerGroup: 2, Clients: 2}.withDefaults().Spec()
}

func TestPlaceSpreadsReplicasAcrossRouters(t *testing.T) {
	g := testGrid(6, 3)
	s := NewScheduler(g, 1, nil)
	a, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Each group's replicas must land on distinct routers when space allows.
	for _, grp := range []struct{ s1, s2 string }{{"S1_1", "S1_2"}, {"S2_1", "S2_2"}} {
		r1 := g.RouterOf(a.ServerHosts[grp.s1])
		r2 := g.RouterOf(a.ServerHosts[grp.s2])
		if r1 == r2 {
			t.Errorf("replicas %s,%s co-located on router %v", grp.s1, grp.s2, r1)
		}
	}
	// With capacity 1 and plenty of hosts, every process gets its own host.
	seen := map[netsim.NodeID]int{}
	a.hosts(func(h netsim.NodeID) { seen[h]++ })
	for h, n := range seen {
		if n > 1 {
			t.Errorf("host %v assigned %d processes at capacity 1", h, n)
		}
	}
}

func TestPlaceRespectsCapacity(t *testing.T) {
	g := testGrid(3, 2) // 6 hosts, capacity 1 => 6 slots; an app needs 8
	s := NewScheduler(g, 1, nil)
	if _, err := s.Place(testSpec()); err == nil {
		t.Fatal("expected placement to fail on a full grid")
	}
	// The failed placement must not leak slots.
	for _, h := range g.Hosts {
		if s.Load(h) != 0 {
			t.Fatalf("host %v load = %d after failed placement, want 0", h, s.Load(h))
		}
	}
	// Capacity 2 => 12 slots: fits one app but not two.
	s = NewScheduler(g, 2, nil)
	a1, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(testSpec()); err == nil {
		t.Fatal("expected second placement to fail")
	}
	// Release frees the slots for a new admission.
	s.Release(a1)
	if got := s.FreeSlots(); got != 12 {
		t.Fatalf("free slots after release = %d, want 12", got)
	}
	if _, err := s.Place(testSpec()); err != nil {
		t.Fatalf("placement after release failed: %v", err)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	for run := 0; run < 2; run++ {
		g := testGrid(6, 3)
		s := NewScheduler(g, 1, nil)
		a, err := s.Place(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewScheduler(testGrid(6, 3), 1, nil).Place(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if a.QueueHost != b.QueueHost || a.ManagerHost != b.ManagerHost {
			t.Fatalf("infrastructure placement differs: %+v vs %+v", a, b)
		}
		for srv, h := range a.ServerHosts {
			if b.ServerHosts[srv] != h {
				t.Fatalf("server %s placed on %v vs %v", srv, h, b.ServerHosts[srv])
			}
		}
		for cli, h := range a.ClientHosts {
			if b.ClientHosts[cli] != h {
				t.Fatalf("client %s placed on %v vs %v", cli, h, b.ClientHosts[cli])
			}
		}
	}
}

// TestReleaseReplaceRoundTripFragmented exercises the migration path's
// Release/re-Place cycle on a fragmented grid: releasing an assignment must
// restore every per-host slot count exactly, and a subsequent identical
// placement must succeed with full router spreading intact.
func TestReleaseReplaceRoundTripFragmented(t *testing.T) {
	g := testGrid(8, 2) // 16 hosts, capacity 2 => 32 slots
	s := NewScheduler(g, 2, nil)

	// Fragment: three placements interleaved with a mid-sequence release.
	a1, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	a3, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	_ = a1

	// Snapshot, place-release, compare: the slot state must round-trip
	// exactly, host by host.
	before := map[netsim.NodeID]int{}
	for _, h := range g.Hosts {
		before[h] = s.Load(h)
	}
	free := s.FreeSlots()
	ax, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	s.Release(ax)
	for _, h := range g.Hosts {
		if s.Load(h) != before[h] {
			t.Fatalf("host %v load = %d after place+release, want %d", h, s.Load(h), before[h])
		}
	}
	if got := s.FreeSlots(); got != free {
		t.Fatalf("free slots = %d after place+release, want %d", got, free)
	}

	// Release the middle tenant and re-place the same spec into the holes:
	// it must succeed and still spread each group's replicas across routers
	// (8 routers minus the survivors' spread leaves plenty).
	s.Release(a2)
	b, err := s.Place(testSpec())
	if err != nil {
		t.Fatalf("re-place into freed fragmented slots: %v", err)
	}
	for _, grp := range []struct{ s1, s2 string }{{"S1_1", "S1_2"}, {"S2_1", "S2_2"}} {
		r1 := g.RouterOf(b.ServerHosts[grp.s1])
		r2 := g.RouterOf(b.ServerHosts[grp.s2])
		if r1 == r2 {
			t.Errorf("re-placed replicas %s,%s co-located on router %v", grp.s1, grp.s2, r1)
		}
	}
	// Determinism under fragmentation: an identical scheduler brought to the
	// same state produces the identical re-placement.
	s2 := NewScheduler(testGrid(8, 2), 2, nil)
	c1, _ := s2.Place(testSpec())
	c2, _ := s2.Place(testSpec())
	c3, _ := s2.Place(testSpec())
	_, _, _ = c1, c3, a3
	cx, _ := s2.Place(testSpec())
	s2.Release(cx)
	s2.Release(c2)
	b2, err := s2.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if b.QueueHost != b2.QueueHost || b.ManagerHost != b2.ManagerHost {
		t.Fatalf("fragmented re-placement differs between identical schedulers: %+v vs %+v", b, b2)
	}
	for srv, h := range b.ServerHosts {
		if b2.ServerHosts[srv] != h {
			t.Fatalf("server %s re-placed on %v vs %v", srv, h, b2.ServerHosts[srv])
		}
	}
}

// TestPlaceAvoidingExcludesRouters: the migration filter must keep every
// process off the avoided routers and fail fast when only avoided capacity
// remains — without leaking partially committed slots.
func TestPlaceAvoidingExcludesRouters(t *testing.T) {
	g := testGrid(8, 2)
	s := NewScheduler(g, 1, nil)
	avoid := map[netsim.NodeID]bool{g.Routers[0]: true, g.Routers[1]: true}
	a, err := s.PlaceAvoiding(testSpec(), avoid)
	if err != nil {
		t.Fatal(err)
	}
	a.hosts(func(h netsim.NodeID) {
		if avoid[g.RouterOf(h)] {
			t.Errorf("host %v is on an avoided router", h)
		}
	})
	// Avoid everything: must fail and leave the committed state untouched.
	all := map[netsim.NodeID]bool{}
	for _, r := range g.Routers {
		all[r] = true
	}
	free := s.FreeSlots()
	if _, err := s.PlaceAvoiding(testSpec(), all); err == nil {
		t.Fatal("PlaceAvoiding succeeded with every router avoided")
	}
	if got := s.FreeSlots(); got != free {
		t.Fatalf("failed PlaceAvoiding leaked slots: free %d, want %d", got, free)
	}
}

func TestPlaceClientsAvoidServerRouters(t *testing.T) {
	g := testGrid(8, 2)
	s := NewScheduler(g, 1, nil)
	a, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	serverRouters := map[netsim.NodeID]bool{}
	for _, h := range a.ServerHosts {
		serverRouters[g.RouterOf(h)] = true
	}
	for cli, h := range a.ClientHosts {
		if serverRouters[g.RouterOf(h)] {
			t.Errorf("client %s placed on a server router despite free routers", cli)
		}
	}
}

// TestPlaceRankedPrefersHealthyRegions: with a rank that scores one region
// far above the rest, every process lands in (or as near as capacity
// allows to) the top-ranked regions, and -Inf regions are never used.
func TestPlaceRankedPrefersHealthyRegions(t *testing.T) {
	g := testGrid(6, 4)
	s := NewScheduler(g, 1, nil)
	rank := make(RegionRank, 6)
	for r := range rank {
		rank[r] = math.Inf(-1)
	}
	rank[3], rank[4] = 1.0, 0.9 // only regions 3 and 4 admissible, 3 best
	a, err := s.PlaceRanked(testSpec(), rank)
	if err != nil {
		t.Fatal(err)
	}
	a.hosts(func(h netsim.NodeID) {
		if r := g.RouterIndex(h); r != 3 && r != 4 {
			t.Errorf("process placed in excluded region %d", r)
		}
	})
	// The 8-slot spec exactly fills both admissible regions; a second app
	// must fail the capacity pre-check rather than spill into -Inf regions.
	if _, err := s.PlaceRanked(testSpec(), rank); err == nil {
		t.Fatal("PlaceRanked spilled into excluded regions")
	}
	if free := s.FreeSlots(); free != 4*4 {
		t.Errorf("failed ranked placement leaked slots: %d free, want 16", free)
	}
}

// TestPlaceRankedDeterministic: equal scheduler state and rank produce
// byte-identical assignments.
func TestPlaceRankedDeterministic(t *testing.T) {
	rank := RegionRank{0.2, 0.9, 0.9, 0.1, math.Inf(-1), 0.5}
	place := func() *Assignment {
		s := NewScheduler(testGrid(6, 3), 1, nil)
		a, err := s.PlaceRanked(testSpec(), rank)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if a, b := place(), place(); !reflect.DeepEqual(a, b) {
		t.Fatalf("ranked placement not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
