package fleet

import (
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/operators"
	"archadapt/internal/sim"
)

func testGrid(routers, hostsPerRouter int) *netsim.Grid {
	return netsim.GenerateGrid(sim.NewKernel(), netsim.GridSpec{
		Routers: routers, HostsPerRouter: hostsPerRouter, Seed: 1,
	})
}

func testSpec() operators.Spec {
	return AppSpec{Name: "t", Groups: 2, ServersPerGroup: 2, Clients: 2}.withDefaults().Spec()
}

func TestPlaceSpreadsReplicasAcrossRouters(t *testing.T) {
	g := testGrid(6, 3)
	s := NewScheduler(g, 1, nil)
	a, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Each group's replicas must land on distinct routers when space allows.
	for _, grp := range []struct{ s1, s2 string }{{"S1_1", "S1_2"}, {"S2_1", "S2_2"}} {
		r1 := g.RouterOf(a.ServerHosts[grp.s1])
		r2 := g.RouterOf(a.ServerHosts[grp.s2])
		if r1 == r2 {
			t.Errorf("replicas %s,%s co-located on router %v", grp.s1, grp.s2, r1)
		}
	}
	// With capacity 1 and plenty of hosts, every process gets its own host.
	seen := map[netsim.NodeID]int{}
	a.hosts(func(h netsim.NodeID) { seen[h]++ })
	for h, n := range seen {
		if n > 1 {
			t.Errorf("host %v assigned %d processes at capacity 1", h, n)
		}
	}
}

func TestPlaceRespectsCapacity(t *testing.T) {
	g := testGrid(3, 2) // 6 hosts, capacity 1 => 6 slots; an app needs 8
	s := NewScheduler(g, 1, nil)
	if _, err := s.Place(testSpec()); err == nil {
		t.Fatal("expected placement to fail on a full grid")
	}
	// The failed placement must not leak slots.
	for _, h := range g.Hosts {
		if s.Load(h) != 0 {
			t.Fatalf("host %v load = %d after failed placement, want 0", h, s.Load(h))
		}
	}
	// Capacity 2 => 12 slots: fits one app but not two.
	s = NewScheduler(g, 2, nil)
	a1, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(testSpec()); err == nil {
		t.Fatal("expected second placement to fail")
	}
	// Release frees the slots for a new admission.
	s.Release(a1)
	if got := s.FreeSlots(); got != 12 {
		t.Fatalf("free slots after release = %d, want 12", got)
	}
	if _, err := s.Place(testSpec()); err != nil {
		t.Fatalf("placement after release failed: %v", err)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	for run := 0; run < 2; run++ {
		g := testGrid(6, 3)
		s := NewScheduler(g, 1, nil)
		a, err := s.Place(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewScheduler(testGrid(6, 3), 1, nil).Place(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if a.QueueHost != b.QueueHost || a.ManagerHost != b.ManagerHost {
			t.Fatalf("infrastructure placement differs: %+v vs %+v", a, b)
		}
		for srv, h := range a.ServerHosts {
			if b.ServerHosts[srv] != h {
				t.Fatalf("server %s placed on %v vs %v", srv, h, b.ServerHosts[srv])
			}
		}
		for cli, h := range a.ClientHosts {
			if b.ClientHosts[cli] != h {
				t.Fatalf("client %s placed on %v vs %v", cli, h, b.ClientHosts[cli])
			}
		}
	}
}

func TestPlaceClientsAvoidServerRouters(t *testing.T) {
	g := testGrid(8, 2)
	s := NewScheduler(g, 1, nil)
	a, err := s.Place(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	serverRouters := map[netsim.NodeID]bool{}
	for _, h := range a.ServerHosts {
		serverRouters[g.RouterOf(h)] = true
	}
	for cli, h := range a.ClientHosts {
		if serverRouters[g.RouterOf(h)] {
			t.Errorf("client %s placed on a server router despite free routers", cli)
		}
	}
}
