package fleet

import (
	"fmt"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// TestRankedMigrationProperties drives the ranked controller through
// seeded random fault schedules — per-app server crushes, region failures
// and backbone contention arriving and lifting at random times — and
// asserts the two invariants of the tentpole on every run:
//
//  1. A ranked migration never selects a target whose measured health index
//     is strictly worse than the source's at decision time
//     (TargetHealth ≥ SourceHealth on every Ranked record).
//  2. The coordination layer never exceeds MaxConcurrent draining
//     migrations, polled every simulated second and via the recorded
//     high-water mark.
func TestRankedMigrationProperties(t *testing.T) {
	rankedTotal := 0
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			k := sim.NewKernel()
			grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 16, HostsPerRouter: 3, Seed: seed})
			pol := MigrationPolicy{Enabled: true, Ranked: true, MaxConcurrent: 2, Cooldown: 120}
			f, err := New(k, grid, seed, Config{Adaptive: true, HostCapacity: 1, Migration: pol})
			if err != nil {
				t.Fatal(err)
			}
			const apps = 4
			for i := 0; i < apps; i++ {
				if _, err := f.Admit(AppSpec{}); err != nil {
					t.Fatal(err)
				}
			}
			names := f.Apps()

			// Random fault schedule: every 30–70 s one fault arrives, each
			// lasting 100–250 s. Crushes target random apps, failures random
			// regions, and backbone contention loads a random fraction.
			rng := sim.NewRand(seed ^ 0x9e3779b97f4a7c15)
			for at := 120.0; at < 700; at += 30 + 40*rng.Float64() {
				dur := 100 + 150*rng.Float64()
				switch rng.Intn(3) {
				case 0:
					name := names[rng.Intn(len(names))]
					k.At(at, func() { _ = f.CrushServers(name) })
					k.At(at+dur, func() { f.RestorePrimary(name) })
				case 1:
					r := rng.Intn(len(grid.HostsByRouter))
					k.At(at, func() { _ = f.FailRegion(r) })
					k.At(at+dur, func() { f.RestoreRegion(r) })
				case 2:
					frac := 0.2 + 0.4*rng.Float64()
					k.At(at, func() { f.CrushBackbone(frac, 30e3) })
					k.At(at+dur, func() { f.RestoreBackbone() })
				}
			}
			k.Ticker(0.5, 1, func(now float64) {
				if got := f.MigrationsInFlight(); got > pol.MaxConcurrent {
					t.Errorf("t=%.0f: %d migrations in flight, cap %d", now, got, pol.MaxConcurrent)
				}
			})
			k.Run(900)
			f.Stop()
			k.Run(1000)

			if got := f.PeakConcurrentMigrations(); got > pol.MaxConcurrent {
				t.Errorf("peak concurrent migrations = %d, cap %d", got, pol.MaxConcurrent)
			}
			for _, name := range names {
				for i, m := range f.App(name).Migrations {
					if !m.Ranked {
						continue
					}
					rankedTotal++
					if m.TargetHealth < m.SourceHealth {
						t.Errorf("%s migration %d chose a measurably worse region: source %.4f -> target %.4f",
							name, i, m.SourceHealth, m.TargetHealth)
					}
				}
			}
		})
	}
	// The property must not hold vacuously: the schedules above must have
	// produced ranked migrations to check.
	if rankedTotal == 0 {
		t.Fatal("no ranked migrations occurred across any seed; the fault schedules are too gentle")
	}
}
