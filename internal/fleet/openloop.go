// Open-loop heavy-traffic engine: the fleet's aggregated workload plane.
//
// The closed-loop clients the paper ran cap offered load at the client
// count — each waits for its reply before sending again, so the grid can
// degrade but never truly overload. This file adds the open-loop regime:
// arrival processes (internal/arrivals) offer load as a pure function of
// time, and each application's population — up to 10^6 modeled users — is
// aggregated into a handful of flow classes, one demand-capped netsim flow
// per (client-region, server-group) pair. An M/M/m model
// (internal/queueing) converts each group's offered load into a latency
// verdict, a fluid network model adds queueing and transfer time along the
// class's real (congested) path, and the verdicts are delivered back
// through the ordinary client response pipeline — so probes, gauges and the
// per-app repair loop run unchanged, at any population size.
//
// The engine closes two new control loops of its own:
//
//   - ScalePolicy grows and shrinks server groups against offered
//     utilization, reserving and releasing scheduler slots one replica at a
//     time. Autoscaled replicas live below the architectural model (the
//     repair engine never sees them, like background capacity) and are torn
//     down before a migration re-places the app.
//   - AdmissionPolicy sheds or queues whole applications when the fleet's
//     aggregate offered load would saturate its service capacity, with a
//     balanced ledger (Offered = Admitted + Shed + Queued; Admitted =
//     Active + Retired) the chaos harness audits as an invariant.
//
// Everything here is off by default and byte-identical-off: with
// OpenLoopPolicy.Enabled false the fleet schedules no extra events, admits
// along the unchanged path, and produces summaries identical to a build
// without this file.
package fleet

import (
	"errors"
	"fmt"
	"math"

	"archadapt/internal/app"
	"archadapt/internal/arrivals"
	"archadapt/internal/netsim"
	"archadapt/internal/queueing"
)

// Server service-time constants shared with Admit's closed-loop servers:
// base + perBit·respBits seconds per request.
const (
	olServiceBase   = 0.05
	olServicePerBit = 0.4 / (20 * 8192)
)

// verdictCeiling bounds synthetic latency verdicts (an hour) so summaries
// of saturated runs stay finite and printable; anything near it is far past
// every latency bound that matters.
const verdictCeiling = 3600.0

// Arrival process kinds for ArrivalSpec.Kind.
const (
	ArrivalPoisson = "poisson"
	ArrivalDiurnal = "diurnal"
	ArrivalTrace   = "trace"
)

// ArrivalSpec declaratively selects an application's open-loop arrival
// process — a plain struct (not an interface) so scenario literals,
// including chaos-shrunk reproducers, can spell it out. Rates are per
// modeled user, in requests/sec. The zero value is Poisson at the app's
// ClientRate, which makes the default open-loop run the load-equivalent of
// the closed-loop one.
type ArrivalSpec struct {
	// Kind is "", ArrivalPoisson, ArrivalDiurnal or ArrivalTrace.
	Kind string

	// Lambda is the Poisson rate (default: the app's ClientRate).
	Lambda float64

	// Diurnal envelope: Base (default ClientRate), Swing in [0,1], Period
	// seconds per cycle, Phase as a fraction of a period — plus one
	// optional flash-crowd burst multiplying the rate by BurstFactor during
	// [BurstAt, BurstAt+BurstDuration).
	Base, Swing, Period, Phase          float64
	BurstAt, BurstDuration, BurstFactor float64

	// Trace-driven step schedule (right-continuous; zero before Times[0]).
	Times, Rates []float64
}

// process resolves the spec into an arrivals.Process, defaulting
// unspecified rates to defaultRate.
func (s ArrivalSpec) process(defaultRate float64) (arrivals.Process, error) {
	switch s.Kind {
	case "", ArrivalPoisson:
		lambda := s.Lambda
		if lambda <= 0 {
			lambda = defaultRate
		}
		return arrivals.Poisson{Lambda: lambda}, nil
	case ArrivalDiurnal:
		base := s.Base
		if base <= 0 {
			base = defaultRate
		}
		d := arrivals.Diurnal{Base: base, Swing: s.Swing, Period: s.Period, Phase: s.Phase}
		if s.BurstFactor > 0 && s.BurstDuration > 0 {
			d.Bursts = []arrivals.Burst{{At: s.BurstAt, Duration: s.BurstDuration, Factor: s.BurstFactor}}
		}
		return d, nil
	case ArrivalTrace:
		if len(s.Times) == 0 || len(s.Times) != len(s.Rates) {
			return nil, fmt.Errorf("fleet: ArrivalSpec trace needs equal-length non-empty Times/Rates (%d/%d)",
				len(s.Times), len(s.Rates))
		}
		return arrivals.Trace{Times: s.Times, Rates: s.Rates}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown ArrivalSpec.Kind %q", s.Kind)
	}
}

// ScalePolicy tunes the open-loop replica autoscaler: per server group, the
// engine compares offered utilization ρ = λ/(m·μ) against the thresholds
// every adjust tick and grows or shrinks the group one autoscaled replica
// at a time, reserving/releasing scheduler slots as it goes.
type ScalePolicy struct {
	Enabled bool
	// UpAt/DownAt are the ρ thresholds (defaults 0.8 and 0.3). Scaling up
	// requires free grid capacity; a full grid silently defers.
	UpAt, DownAt float64
	// Cooldown is the minimum time between scale actions on the same group
	// (default 30 s).
	Cooldown float64
	// MaxReplicas caps autoscaled replicas per group (default 8).
	MaxReplicas int
}

// AdmissionPolicy tunes the fleet admission controller: when the aggregate
// open-loop offered load (including the candidate) would push fleet
// utilization past MaxUtilization, the candidate is shed — or queued, and
// retried every RetryPeriod as capacity frees up.
type AdmissionPolicy struct {
	Enabled bool
	// MaxUtilization is the fleet ρ ceiling (default 0.95).
	MaxUtilization float64
	// Queue holds rejected candidates for retry instead of shedding them.
	Queue bool
	// RetryPeriod is the queue retry interval (default 30 s).
	RetryPeriod float64
}

// OpenLoopPolicy enables and tunes the open-loop engine. The zero value
// disables it entirely: no tickers, no per-app state, byte-identical
// summaries to a fleet without the engine.
type OpenLoopPolicy struct {
	Enabled bool
	// Users is the modeled population per application (default: one user
	// per client, making the open-loop run the load-equivalent of the
	// closed-loop one).
	Users int
	// AdjustPeriod is the engine tick: demands recomputed, verdicts
	// delivered, scale decisions taken (default 5 s).
	AdjustPeriod float64
	Scale        ScalePolicy
	Admission    AdmissionPolicy
}

func (p OpenLoopPolicy) validate() error {
	bad := func(field string, v float64) error {
		return fmt.Errorf("fleet: OpenLoopPolicy.%s = %v is invalid (zero means default)", field, v)
	}
	switch {
	case p.Users < 0:
		return fmt.Errorf("fleet: OpenLoopPolicy.Users = %d is invalid (zero means one per client)", p.Users)
	case p.AdjustPeriod < 0 || math.IsNaN(p.AdjustPeriod):
		return bad("AdjustPeriod", p.AdjustPeriod)
	case p.Scale.UpAt < 0 || math.IsNaN(p.Scale.UpAt):
		return bad("Scale.UpAt", p.Scale.UpAt)
	case p.Scale.DownAt < 0 || math.IsNaN(p.Scale.DownAt):
		return bad("Scale.DownAt", p.Scale.DownAt)
	case p.Scale.UpAt > 0 && p.Scale.DownAt > 0 && p.Scale.DownAt >= p.Scale.UpAt:
		return fmt.Errorf("fleet: OpenLoopPolicy.Scale.DownAt %v must be below UpAt %v", p.Scale.DownAt, p.Scale.UpAt)
	case p.Scale.Cooldown < 0 || math.IsNaN(p.Scale.Cooldown):
		return bad("Scale.Cooldown", p.Scale.Cooldown)
	case p.Scale.MaxReplicas < 0:
		return fmt.Errorf("fleet: OpenLoopPolicy.Scale.MaxReplicas = %d is invalid (zero means default)", p.Scale.MaxReplicas)
	case p.Admission.MaxUtilization < 0 || p.Admission.MaxUtilization > 1 || math.IsNaN(p.Admission.MaxUtilization):
		return bad("Admission.MaxUtilization", p.Admission.MaxUtilization)
	case p.Admission.RetryPeriod < 0 || math.IsNaN(p.Admission.RetryPeriod):
		return bad("Admission.RetryPeriod", p.Admission.RetryPeriod)
	}
	return nil
}

func (p OpenLoopPolicy) withDefaults() OpenLoopPolicy {
	if p.AdjustPeriod <= 0 {
		p.AdjustPeriod = 5
	}
	if p.Scale.UpAt <= 0 {
		p.Scale.UpAt = 0.8
	}
	if p.Scale.DownAt <= 0 {
		p.Scale.DownAt = 0.3
	}
	if p.Scale.Cooldown <= 0 {
		p.Scale.Cooldown = 30
	}
	if p.Scale.MaxReplicas < 1 {
		p.Scale.MaxReplicas = 8
	}
	if p.Admission.MaxUtilization <= 0 {
		p.Admission.MaxUtilization = 0.95
	}
	if p.Admission.RetryPeriod <= 0 {
		p.Admission.RetryPeriod = 30
	}
	return p
}

// AdmissionLedger is the admission controller's balanced books. Two
// invariants hold at every instant (the chaos harness audits both):
//
//	Offered  = Admitted + Shed + Queued
//	Admitted = Active + Retired
type AdmissionLedger struct {
	// Offered counts externally offered applications (each spec once,
	// however many retries it takes); Admitted the ones that made it in;
	// Shed the ones rejected for saturation or placement failure; Queued
	// the ones currently waiting for capacity.
	Offered, Admitted, Shed, Queued int
	// Active and Retired split Admitted by lifecycle.
	Active, Retired int
}

// errAdmissionQueued marks an Admit that parked the spec on the retry
// queue rather than rejecting it outright.
var errAdmissionQueued = errors.New("fleet: admission queued: grid near saturation")

// openLoop is the fleet-level engine state (Fleet.ol; nil when disabled).
type openLoop struct {
	p                   OpenLoopPolicy
	ledger              AdmissionLedger
	queued              []AppSpec
	stopTick, stopRetry func()
}

// scaledReplica is one autoscaled server and the slot it holds.
type scaledReplica struct {
	name string
	host netsim.NodeID
}

// openApp is one application's open-loop state (App.ol; nil when disabled).
type openApp struct {
	proc  arrivals.Process
	users float64
	gated bool // admitted through the admission gate (ledger accounting)

	classes  []*app.FlowClass
	assign   *Assignment // assignment identity at the last tick (cutover detection)
	lastTick float64

	// backlog is the per-group server fluid queue in requests; lastScale
	// the per-group cooldown anchor; scaled the live autoscaled replicas.
	backlog   map[string]float64
	lastScale map[string]float64
	scaled    map[string][]scaledReplica
	seq       int
	ups       int
	downs     int

	// Tick scratch, reused across ticks: per-class member rates, per-class
	// offered load, per-class completion counts, per-group aggregates.
	rates  []float64
	lam    []float64
	counts []uint64
	glam   map[string]float64
	gout   map[string]float64
	gwait  map[string]float64
}

// scaledSlots returns the scheduler slots the app's autoscaled replicas
// hold (AuditSlots accounting).
func (ol *openApp) scaledSlots() int {
	n := 0
	for _, reps := range ol.scaled {
		n += len(reps)
	}
	return n
}

// appServiceRate returns μ, a server's request service rate under the
// spec's median reply size.
func appServiceRate(spec AppSpec) float64 {
	return 1 / (olServiceBase + olServicePerBit*spec.RespBits)
}

// startOpenLoop wires the engine into a freshly constructed fleet.
func (f *Fleet) startOpenLoop() {
	p := f.Cfg.OpenLoop
	f.ol = &openLoop{p: p}
	f.ol.stopTick = f.K.Ticker(f.K.Now()+p.AdjustPeriod, p.AdjustPeriod, f.openLoopTick)
	if p.Admission.Enabled && p.Admission.Queue {
		f.ol.stopRetry = f.K.Ticker(f.K.Now()+p.Admission.RetryPeriod, p.Admission.RetryPeriod, f.openLoopRetry)
	}
}

// stopOpenLoop halts the engine tickers (fleet Stop).
func (f *Fleet) stopOpenLoop() {
	if f.ol == nil {
		return
	}
	if f.ol.stopTick != nil {
		f.ol.stopTick()
		f.ol.stopTick = nil
	}
	if f.ol.stopRetry != nil {
		f.ol.stopRetry()
		f.ol.stopRetry = nil
	}
}

// OpenLoopLedger returns the admission controller's ledger; ok is false
// when the open-loop engine is disabled.
func (f *Fleet) OpenLoopLedger() (AdmissionLedger, bool) {
	if f.ol == nil {
		return AdmissionLedger{}, false
	}
	return f.ol.ledger, true
}

// ScaleActions returns the app's autoscaler action counts (zero unless the
// open-loop engine ran).
func (a *App) ScaleActions() (ups, downs int) {
	if a.ol == nil {
		return 0, 0
	}
	return a.ol.ups, a.ol.downs
}

// AutoscaledOf returns the group's live autoscaled replica count.
func (a *App) AutoscaledOf(group string) int {
	if a.ol == nil {
		return 0
	}
	return len(a.ol.scaled[group])
}

// openLoopOffered returns the fleet's aggregate open-loop offered load and
// service capacity in requests/sec, over live open-loop applications.
func (f *Fleet) openLoopOffered(now float64) (lambda, capacity float64) {
	for _, name := range f.order {
		a := f.apps[name]
		if !a.Live() || a.ol == nil {
			continue
		}
		lambda += a.ol.users * a.ol.proc.Rate(now)
		mu := appServiceRate(a.Spec)
		for _, g := range a.Sys.Groups() {
			capacity += float64(len(a.Sys.ActiveServersOf(g))) * mu
		}
	}
	return lambda, capacity
}

// openLoopAdmissible applies the admission gate: would the fleet's offered
// utilization, candidate included, stay within MaxUtilization?
func (f *Fleet) openLoopAdmissible(spec AppSpec, proc arrivals.Process, users, now float64) bool {
	lambda, capacity := f.openLoopOffered(now)
	lambda += users * proc.Rate(now)
	capacity += float64(spec.Groups*spec.ServersPerGroup) * appServiceRate(spec)
	if capacity <= 0 {
		return false
	}
	return lambda/capacity <= f.ol.p.Admission.MaxUtilization
}

// openLoopRetry re-offers queued specs; still-saturated ones stay queued.
func (f *Fleet) openLoopRetry(now float64) {
	if f.stopped || len(f.ol.queued) == 0 {
		return
	}
	kept := f.ol.queued[:0]
	for _, spec := range f.ol.queued {
		if _, err := f.admit(spec, true); errors.Is(err, errAdmissionQueued) {
			kept = append(kept, spec)
		}
	}
	f.ol.queued = kept
}

// openLoopRegister attaches per-app engine state at admission.
func (f *Fleet) openLoopRegister(a *App, proc arrivals.Process, users float64, gated bool) {
	a.ol = &openApp{
		proc: proc, users: users, gated: gated,
		assign: a.Assign, lastTick: f.K.Now(),
		backlog:   map[string]float64{},
		lastScale: map[string]float64{},
		scaled:    map[string][]scaledReplica{},
		glam:      map[string]float64{},
		gout:      map[string]float64{},
		gwait:     map[string]float64{},
	}
	if gated {
		f.ol.ledger.Admitted++
		f.ol.ledger.Active++
	}
	// The arrival process replaces the closed-loop generators from t=0:
	// clients check paused at arrival-event time, so no real request fires.
	a.Sys.PauseClients()
}

// openLoopTeardown cancels the app's class flows and releases its
// autoscaled replicas' slots. removeServers additionally unregisters the
// replicas from the application — required before a migration's Rehost,
// which must cover exactly the spec's processes.
func (f *Fleet) openLoopTeardown(a *App, removeServers bool) {
	ol := a.ol
	if ol == nil {
		return
	}
	f.Net.Batch(func() {
		for _, fc := range ol.classes {
			if fc.Flow != nil {
				fc.Flow.Cancel()
			}
		}
	})
	ol.classes = nil
	for _, g := range a.Sys.Groups() {
		for _, rep := range ol.scaled[g] {
			if removeServers {
				_ = a.Sys.RemoveServer(rep.name)
			}
			f.Sch.ReleaseHost(rep.host)
		}
		delete(ol.scaled, g)
	}
}

// openLoopRetired folds a retirement into the ledger.
func (f *Fleet) openLoopRetired(a *App) {
	if a.ol != nil && a.ol.gated {
		f.ol.ledger.Active--
		f.ol.ledger.Retired++
	}
}

// openLoopTick advances every live, non-draining application. Draining
// apps were torn down at migration decision time and resume at the first
// tick after their cutover.
func (f *Fleet) openLoopTick(now float64) {
	if f.stopped {
		return
	}
	for _, name := range f.order {
		a := f.apps[name]
		if a.Live() && !a.migrating {
			f.openLoopApp(a, now)
		}
	}
}

// openLoopApp is one adjust tick for one application:
//
//  1. settle the past interval's network accounting per class,
//  2. reconcile classes with current membership and anchors,
//  3. aggregate offered load per group, advance the server fluid queues,
//     and compute each group's M/M/m latency verdict,
//  4. take scale decisions,
//  5. push new demands to the class flows (one batched solve), and
//  6. deliver per-class verdicts and completion counts to the members.
func (f *Fleet) openLoopApp(a *App, now float64) {
	ol := a.ol
	if ol.assign != a.Assign {
		// A migration cutover re-placed the app since the last tick; the
		// old flows and replicas were torn down at decision time. Rebuild
		// from the new placement.
		ol.assign = a.Assign
		ol.classes = nil
	}
	// Closed-loop generation stays off. PauseClients is idempotent, and
	// re-asserting it here re-pauses clients a cutover's ResumeClients
	// briefly woke.
	a.Sys.PauseClients()
	dt := now - ol.lastTick
	ol.lastTick = now
	if dt <= 0 {
		return
	}
	respBits := a.Spec.RespBits
	mu := appServiceRate(a.Spec)
	adjust := f.ol.p.AdjustPeriod

	// (1) Reconcile classes: repairs move clients between groups and
	// migrations re-place hosts, so membership and anchors are recomputed
	// every tick; accounting state and flows carry over by (region, group)
	// as long as the endpoints held still. A class whose endpoints moved
	// restarts its flow (bits in flight at the switch are dropped — the
	// fluid model's cost of a re-anchoring, not worth tracking).
	type ckey struct {
		region int
		group  string
	}
	fresh := app.BuildFlowClasses(a.Sys, f.Grid.RouterIndex)
	prev := make(map[ckey]*app.FlowClass, len(ol.classes))
	for _, fc := range ol.classes {
		prev[ckey{fc.Region, fc.Group}] = fc
	}
	for _, fc := range fresh {
		k := ckey{fc.Region, fc.Group}
		old, ok := prev[k]
		if !ok {
			continue
		}
		delete(prev, k)
		fc.NetBacklog, fc.EmitRate, fc.Credit = old.NetBacklog, old.EmitRate, old.Credit
		if old.Src == fc.Src && old.Dst == fc.Dst {
			fc.Flow = old.Flow
			fc.LastDelivered = old.LastDelivered
		} else if old.Flow != nil {
			old.Flow.Cancel()
		}
	}
	for _, fc := range ol.classes {
		if prev[ckey{fc.Region, fc.Group}] == fc && fc.Flow != nil {
			fc.Flow.Cancel()
		}
	}
	ol.classes = fresh

	// (2) Settle the past interval per class: bits the network delivered
	// against bits the servers emitted, and the completed-response count.
	ol.counts = ol.counts[:0]
	for _, fc := range ol.classes {
		delta := 0.0
		if fc.Flow != nil {
			d := fc.Flow.Delivered()
			delta = d - fc.LastDelivered
			fc.LastDelivered = d
		}
		fc.NetBacklog += fc.EmitRate*dt - delta
		if fc.NetBacklog < 1e-9 {
			fc.NetBacklog = 0
		}
		whole := delta/respBits + fc.Credit
		n := math.Floor(whole)
		fc.Credit = whole - n
		ol.counts = append(ol.counts, uint64(n))
	}
	counts := ol.counts

	// (3) Offered load per class (compensated member sum) and per group.
	perUser := ol.proc.Rate(now)
	usersPerClient := ol.users / float64(len(a.Opspec.Clients))
	perMember := usersPerClient * perUser
	ol.lam = ol.lam[:0]
	for g := range ol.glam {
		delete(ol.glam, g)
	}
	for _, fc := range ol.classes {
		ol.rates = ol.rates[:0]
		for range fc.Members {
			ol.rates = append(ol.rates, perMember)
		}
		lam := arrivals.SumExact(ol.rates)
		ol.lam = append(ol.lam, lam)
		ol.glam[fc.Group] += lam
	}

	// Server fluid queues and M/M/m verdicts per group.
	for _, g := range a.Sys.Groups() {
		lamG := ol.glam[g]
		m := len(a.Sys.ActiveServersOf(g))
		capG := float64(m) * mu
		b := ol.backlog[g]
		out := lamG + b/dt
		if out > capG {
			out = capG
		}
		b += (lamG - out) * dt
		if b < 1e-9 {
			b = 0
		}
		ol.backlog[g] = b
		ol.gout[g] = out

		var w float64
		q := queueing.MMm{Lambda: lamG, Mu: mu, M: m}
		switch {
		case capG <= 0:
			// No servers at all: the wait is the age of the backlog.
			if lamG > 1e-12 {
				w = b / lamG
			}
		case q.Valid():
			w = q.MeanResponse() + b/capG
		default:
			// Saturated: the M/M/m wait is +Inf; the finite fluid verdict
			// — drain the standing backlog, then one service time — still
			// blows far past any latency bound, which is what the repair
			// and scale loops need to see.
			w = 1/mu + b/capG
		}
		ol.gwait[g] = w

		// (4) Scale decisions against offered utilization.
		if f.ol.p.Scale.Enabled {
			f.openLoopScale(a, g, lamG, capG, now)
		}
	}

	// (5) New demands: what the servers emit (bounded by group capacity,
	// shared within the group in proportion to offered load) plus a
	// backlog-draining term, pushed in one batched solve.
	f.Net.Batch(func() {
		for i, fc := range ol.classes {
			share := 0.0
			if gl := ol.glam[fc.Group]; gl > 0 {
				share = ol.lam[i] / gl
			}
			fc.EmitRate = share * ol.gout[fc.Group] * respBits
			demand := fc.EmitRate + fc.NetBacklog/adjust
			if fc.Flow == nil {
				fc.Flow = f.Net.StartClassFlow(fc.Src, fc.Dst, demand, a.Name+":"+fc.Group)
			} else {
				fc.Flow.SetDemand(demand)
			}
		}
	})

	// (6) Verdicts: group wait + network time along the class's real path,
	// delivered through the ordinary response pipeline. Counts spread
	// evenly over members (remainder to the earliest-registered).
	for i, fc := range ol.classes {
		tnet := 1e-5
		if fc.Src != fc.Dst {
			avail := f.Net.AvailBandwidth(fc.Src, fc.Dst)
			if avail < f.Net.MinFlowRate {
				avail = f.Net.MinFlowRate
			}
			rate := fc.Flow.Rate()
			if rate < f.Net.MinFlowRate {
				rate = f.Net.MinFlowRate
			}
			tnet = respBits/avail + fc.NetBacklog/rate
		}
		verdict := ol.gwait[fc.Group] + tnet
		if verdict > verdictCeiling {
			verdict = verdictCeiling
		}
		members := uint64(len(fc.Members))
		base, rem := counts[i]/members, counts[i]%members
		for mi, name := range fc.Members {
			n := base
			if uint64(mi) < rem {
				n++
			}
			a.Sys.Client(name).DeliverSynthetic(now, verdict, n)
		}
	}
	ol.counts = counts
}

// openLoopScale applies the scale policy to one group: one replica up on
// sustained ρ above UpAt (slot permitting), one down below DownAt.
func (f *Fleet) openLoopScale(a *App, g string, lamG, capG, now float64) {
	ol := a.ol
	p := f.ol.p.Scale
	if last, ok := ol.lastScale[g]; ok && now-last < p.Cooldown {
		return
	}
	rho := math.Inf(1)
	if capG > 0 {
		rho = lamG / capG
	}
	reps := ol.scaled[g]
	switch {
	case rho > p.UpAt && len(reps) < p.MaxReplicas:
		h, err := f.Sch.Reserve()
		if err != nil {
			return // grid full: nothing to scale into, retry next tick
		}
		ol.seq++
		name := fmt.Sprintf("%s_auto%d", g, ol.seq)
		a.Sys.AddServer(name, h, g, olServiceBase, olServicePerBit)
		if err := a.Sys.Activate(name); err != nil {
			_ = a.Sys.RemoveServer(name)
			f.Sch.ReleaseHost(h)
			return
		}
		ol.scaled[g] = append(reps, scaledReplica{name: name, host: h})
		ol.ups++
		ol.lastScale[g] = now
	case rho < p.DownAt && len(reps) > 0:
		rep := reps[len(reps)-1]
		ol.scaled[g] = reps[:len(reps)-1]
		_ = a.Sys.RemoveServer(rep.name)
		f.Sch.ReleaseHost(rep.host)
		ol.downs++
		ol.lastScale[g] = now
	}
}
