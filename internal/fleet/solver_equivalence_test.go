package fleet

import (
	"reflect"
	"testing"
)

// TestSolverEquivalenceFleetSummaries runs the same fleet scenario with the
// incremental region solver and with the global solve forced (GlobalReflow),
// and requires byte-identical summaries: region partitioning must not change
// simulation results, only their cost. (Byte-identity against the actual
// pre-rewrite PR 1 tree was established by diffing cmd/fleet and
// cmd/archadapt output during the rewrite; this test is the in-tree
// regression guard for the partitioning itself.)
func TestSolverEquivalenceFleetSummaries(t *testing.T) {
	base := ScenarioOptions{
		Apps: 4, Seed: 7, Duration: 300, Adaptive: true,
		CrushStart: 120, CrushStagger: 5, CrushDuration: 120,
	}
	incr, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	globOpts := base
	globOpts.GlobalReflow = true
	glob, err := RunScenario(globOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incr.Summaries, glob.Summaries) {
		t.Fatalf("summaries diverged between solvers:\nincremental:\n%s\nglobal:\n%s",
			Table(incr.Summaries), Table(glob.Summaries))
	}
	if it, gt := Table(incr.Summaries), Table(glob.Summaries); it != gt {
		t.Fatalf("summary tables diverged:\n%s\nvs\n%s", it, gt)
	}
	// Same-seed determinism still holds under the incremental solver.
	again, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incr.Summaries, again.Summaries) {
		t.Fatal("incremental solver runs are not deterministic across same-seed runs")
	}
}
