package fleet

import (
	"strings"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// regionCollapseOpts is the acceptance scenario: app00's entire region
// (every server group's access links) is crushed for most of the run, so
// intra-app repair has nowhere good to move clients and only a fleet-level
// re-placement helps.
func regionCollapseOpts(migrate bool) ScenarioOptions {
	opts := ScenarioOptions{
		Apps: 4, Seed: 7, Duration: 900, Adaptive: true,
		SpareRouters:   4,
		CrushAllGroups: true, CrushApps: 1,
		CrushStart: 150, CrushDuration: 600,
	}
	if migrate {
		opts.Migration = MigrationPolicy{Enabled: true}
	}
	return opts
}

// TestMigrationRescuesRegionCollapse is the acceptance test: under a
// region-wide degradation, the migrating fleet must show materially better
// per-app summaries than the same-seed migration-disabled control, asserted
// on the CompareTable pairing.
func TestMigrationRescuesRegionCollapse(t *testing.T) {
	pinned, err := RunScenario(regionCollapseOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	migr, err := RunScenario(regionCollapseOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	pairs := ComparePairs(pinned.Summaries, migr.Summaries)
	if len(pairs) != 4 {
		t.Fatalf("paired %d apps, want 4", len(pairs))
	}

	victim := pairs[0] // app00 is the crushed app
	if victim.B.Migrations == 0 {
		t.Fatalf("app00 never migrated; records: %+v", migr.Fleet.App("app00").Migrations)
	}
	if victim.A.FracAboveBound < 0.25 {
		t.Errorf("pinned app00 >bound only %.1f%%: the collapse is not material",
			100*victim.A.FracAboveBound)
	}
	// The rescue must be material: the migrating run spends well under half
	// as much of the run above bound as the pinned control.
	if victim.B.FracAboveBound >= 0.5*victim.A.FracAboveBound {
		t.Errorf("migration did not materially help: >bound pinned %.1f%% vs migrating %.1f%%",
			100*victim.A.FracAboveBound, 100*victim.B.FracAboveBound)
	}
	// The migrated app must keep serving — more responses than the pinned
	// run, whose clients wedge against the crushed region.
	if victim.B.Responses <= victim.A.Responses {
		t.Errorf("migrating app00 served %d responses, pinned %d — expected more",
			victim.B.Responses, victim.A.Responses)
	}
	// Untouched apps must not migrate.
	for _, p := range pairs[1:] {
		if p.B.Migrations != 0 {
			t.Errorf("%s migrated %d times despite being healthy", p.Name, p.B.Migrations)
		}
	}
	// The rendered CompareTable carries the same data (smoke).
	table := CompareTable(pinned.Summaries, migr.Summaries)
	if !strings.Contains(table, "app00") {
		t.Fatalf("CompareTable missing app00:\n%s", table)
	}
}

// TestMigrationScenarioDeterministic: migration decisions, drains and
// cutovers all run on the shared kernel, so same-seed migrating runs must be
// identical — including the recorded migration times.
func TestMigrationScenarioDeterministic(t *testing.T) {
	opts := MigrationBenchScenario(8, 3)
	r1, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if t1, t2 := r1.Table(), r2.Table(); t1 != t2 {
		t.Fatalf("summaries differ between identical migrating runs:\n--- run 1\n%s--- run 2\n%s", t1, t2)
	}
	m1 := r1.Fleet.App("app00").Migrations
	m2 := r2.Fleet.App("app00").Migrations
	if len(m1) != len(m2) {
		t.Fatalf("migration counts differ: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i].DecidedAt != m2[i].DecidedAt || m1[i].CompletedAt != m2[i].CompletedAt {
			t.Fatalf("migration %d timing differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
}

// TestMigrationDisabledAddsNothing guards the byte-identical contract for
// the default configuration: with the policy disabled the fleet must not
// subscribe to any report shard, keep no health state, and schedule no
// decision ticks — the run is exactly the pre-migration control plane (the
// solver and monitoring equivalence tests cover the rest of the path).
func TestMigrationDisabledAddsNothing(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 6, HostsPerRouter: 3, Seed: 1})
	f, err := New(k, grid, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if f.stopMigrate != nil {
		t.Error("migration ticker scheduled despite the policy being disabled")
	}
	if a.health != nil {
		t.Error("health state attached despite the policy being disabled")
	}
	// The report shard must carry exactly one subscription: the manager's.
	if got := a.report.Subscribers(); got != 1 {
		t.Errorf("report shard has %d subscribers, want 1 (manager only)", got)
	}
}

// TestMigrationRequiresSharedPlane: the controller reads health through the
// sharded monitoring plane; enabling it with the per-app oracle is a
// configuration error.
func TestMigrationRequiresSharedPlane(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 3, HostsPerRouter: 2, Seed: 1})
	_, err := New(k, grid, 1, Config{
		PerAppMonitoring: true,
		Migration:        MigrationPolicy{Enabled: true},
	})
	if err == nil {
		t.Fatal("New accepted Migration.Enabled together with PerAppMonitoring")
	}
}

// TestMigrateThenRetireNoLeaks walks one app through a manual migration and
// a subsequent retirement and asserts nothing leaks anywhere: no gauges, no
// gauge leases, no bus tenants, and every scheduler slot back except the
// Remos collector's.
func TestMigrateThenRetireNoLeaks(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 8, HostsPerRouter: 3, Seed: 2})
	f, err := New(k, grid, 2, Config{Adaptive: true, HostCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	oldManager := a.Assign.ManagerHost
	gaugesBefore := f.Gauges.Deployed()

	k.At(200, func() {
		if err := f.Migrate("x"); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	k.Run(400)

	if got := len(a.Migrations); got != 1 || !a.Migrations[0].Completed() {
		t.Fatalf("migrations = %+v, want one completed", a.Migrations)
	}
	if a.Assign.ManagerHost == oldManager {
		t.Error("manager host unchanged after migration")
	}
	if a.migrating || a.pending != nil {
		t.Error("migration state not cleared after cutover")
	}
	if got := f.Gauges.Deployed(); got != gaugesBefore {
		t.Errorf("gauges deployed = %d after migration, want %d", got, gaugesBefore)
	}
	if got := f.Gauges.Leases(); got != 1 {
		t.Errorf("gauge leases = %d after migration, want 1", got)
	}
	// The app must still be serving from its new region.
	respAtMigration := a.Sys.Client("C1").Responses()
	k.Run(600)
	if got := a.Sys.Client("C1").Responses(); got <= respAtMigration {
		t.Errorf("no responses after migration: %d -> %d", respAtMigration, got)
	}

	k.At(700, func() {
		if err := f.Retire("x"); err != nil {
			t.Errorf("retire: %v", err)
		}
	})
	k.Run(900)

	if got := f.Gauges.Deployed(); got != 0 {
		t.Errorf("gauges deployed = %d after retirement, want 0", got)
	}
	if got := f.Gauges.Leases(); got != 0 {
		t.Errorf("gauge leases = %d after retirement, want 0", got)
	}
	if got := f.ProbeBus.Tenants(); got != 0 {
		t.Errorf("probe bus tenants = %d after retirement, want 0", got)
	}
	if got := f.ReportBus.Tenants(); got != 0 {
		t.Errorf("report bus tenants = %d after retirement, want 0", got)
	}
	total := len(grid.Hosts) * 1
	if got := f.Sch.FreeSlots(); got != total-1 {
		t.Errorf("free slots = %d after retirement, want %d (all but Remos)", got, total-1)
	}
}

// TestRetireWhileDraining retires an application mid-drain (migration
// decided, cutover not yet executed) and asserts the migration aborts
// cleanly: the reserved target slots are returned, no shards, leases or
// gauges leak, and the cutover never runs.
func TestRetireWhileDraining(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 8, HostsPerRouter: 3, Seed: 4})
	f, err := New(k, grid, 4, Config{Adaptive: true, HostCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// Crush every group so requests wedge and the drain cannot finish fast.
	k.At(150, func() { _ = f.CrushServers("x") })
	k.At(200, func() {
		if err := f.Migrate("x"); err != nil {
			t.Errorf("migrate: %v", err)
		}
		if !a.migrating {
			t.Error("migrate did not enter the draining state")
		}
	})
	// Retire while the drain poller is still waiting on wedged requests.
	k.At(202, func() {
		if err := f.Retire("x"); err != nil {
			t.Errorf("retire mid-drain: %v", err)
		}
	})
	k.Run(400)

	if got := len(a.Migrations); got != 1 {
		t.Fatalf("migrations = %+v, want exactly one aborted record", a.Migrations)
	}
	if a.Migrations[0].Completed() {
		t.Error("migration completed despite mid-drain retirement")
	}
	if a.migrating || a.pending != nil {
		t.Error("migration state not cleared by retirement")
	}
	if got := f.Gauges.Deployed(); got != 0 {
		t.Errorf("gauges deployed = %d, want 0", got)
	}
	if got := f.Gauges.Leases(); got != 0 {
		t.Errorf("gauge leases = %d, want 0", got)
	}
	if got, want := f.ProbeBus.Tenants()+f.ReportBus.Tenants(), 0; got != want {
		t.Errorf("bus tenants = %d, want 0", got)
	}
	total := len(grid.Hosts)
	if got := f.Sch.FreeSlots(); got != total-1 {
		t.Errorf("free slots = %d, want %d: the pending assignment leaked", got, total-1)
	}
}

// TestCatalogScenariosRun smoke-tests every catalog entry at reduced
// duration: admissions succeed, runs are error-free, and the migration entry
// actually migrates.
func TestCatalogScenariosRun(t *testing.T) {
	for _, e := range Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			opts := e.Opts
			res, err := RunScenario(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Summaries) == 0 {
				t.Fatal("no applications admitted")
			}
			// diurnal oversubscribes its small grid on purpose;
			// overload-shed's admission gate rejects heavy apps by design.
			if rej := res.Fleet.Rejections(); len(rej) != 0 && e.Name != "diurnal" && e.Name != "overload-shed" {
				t.Fatalf("rejections: %+v", rej)
			}
			if e.Name == "region-collapse" {
				if tot := Aggregate(res.Summaries); tot.Migrations == 0 {
					t.Error("region-collapse scenario completed no migrations")
				}
			}
		})
	}
}
