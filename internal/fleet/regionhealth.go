// Region health: the measurement side of the paper's measure → evaluate →
// adapt loop, lifted to fleet scale. Where PR 4's migration controller only
// knew what to *leave* (avoid sets over the degraded routers), the health
// index knows where to *go*: it folds live Remos measurements and
// fleet-wide gauge-report statistics into one score per grid region, and
// the controller hands the resulting ranking to Scheduler.PlaceRanked so a
// migrating application lands in the measurably best region, not merely a
// non-avoided one.
package fleet

import (
	"math"
	"strconv"

	"archadapt/internal/netsim"
	"archadapt/internal/obs"
)

// RegionHealth maintains a measured health score per grid region (router),
// refreshed every migration decision tick from two live signals:
//
//   - Remos measurements issued from the fleet control host: each region is
//     probed along two representative backbone paths — from its first host
//     to its ring neighbor's, and to the region half a chain away — batched
//     into a single remos_get_flow exchange per tick
//     (remos.Service.GetFlowBatch). A region behind crushed backbone or
//     access links measures collapsed bandwidth on both probes.
//   - Report-shard statistics: the violation fraction of the gauge reports
//     the migration controller received this tick from applications whose
//     servers sit in the region. Regions full of violating tenants score
//     down even when an instantaneous bandwidth probe looks healthy.
//
// score(r) = clamp(bw_r/refBps, 0..1) − violFrac_r ∈ [−1, 1]: a healthy
// idle region scores ≈1, a starved region hosting violating applications
// approaches −1. Scores feed Scheduler.PlaceRanked (where they dominate
// every per-host preference) and the controller's proactive
// backbone-degradation verdict (measured bandwidth below
// MigrationPolicy.RegionFloorBps counts as unhealthy before gauge evidence
// accumulates).
//
// The measurements are honest: probes ride the simulated network through
// the shared Remos collector, pay the cold-collection delay once per pair
// (pre-queried at construction, the paper's §5.3 mitigation), and land one
// tick late — the index read at tick t is the batch issued at tick t−1,
// the same measurement lag every other control loop in the system pays.
type RegionHealth struct {
	f *Fleet
	// reps[r] is region r's representative host (its first host).
	reps []netsim.NodeID
	// srcs/dsts are the probe pairs, two per region, flattened so region
	// r's probes are indices 2r and 2r+1; out is the reusable batch-reply
	// buffer.
	srcs, dsts []netsim.NodeID
	out        []float64
	// bw[r] is the latest measured bandwidth (the better of the region's
	// two probes); −1 until the first measurement lands.
	bw []float64
	// violFrac[r] is this tick's report-violation fraction attributed to
	// region r; viol/reports are its fold scratch.
	violFrac, viol, reports []float64
	// refBps normalizes measured bandwidth: the tighter of the grid's
	// access and backbone capacities (a probe can never measure more).
	refBps float64

	rank     []float64 // RankFor scratch
	cur      []bool    // RankFor scratch: regions the app occupies
	inFlight bool      // at most one batch outstanding
}

// newRegionHealth builds the index over the fleet's grid and pre-queries
// every probe pair so the first decision ticks after the Remos cold
// collections (~ColdDelay) see a live index.
func newRegionHealth(f *Fleet) *RegionHealth {
	n := len(f.Grid.HostsByRouter)
	rh := &RegionHealth{
		f:        f,
		bw:       make([]float64, n),
		violFrac: make([]float64, n),
		viol:     make([]float64, n),
		reports:  make([]float64, n),
		cur:      make([]bool, n),
		refBps:   math.Min(f.Grid.Spec.AccessBps, f.Grid.Spec.BackboneBps),
	}
	for r := 0; r < n; r++ {
		rh.reps = append(rh.reps, f.Grid.HostsByRouter[r][0])
		rh.bw[r] = -1
	}
	if n >= 2 {
		for r := 0; r < n; r++ {
			next, far := (r+1)%n, (r+n/2)%n
			if far == next || far == r {
				// Small grids: keep the second probe a genuinely different
				// path where one exists (n=3); on a 2-region grid there is
				// only one other region and the probes coincide.
				far = (r + 2) % n
				if far == r {
					far = next
				}
			}
			rh.srcs = append(rh.srcs, rh.reps[r], rh.reps[r])
			rh.dsts = append(rh.dsts, rh.reps[next], rh.reps[far])
		}
		rh.out = make([]float64, len(rh.srcs))
		for i := range rh.srcs {
			f.Rm.Prequery(rh.srcs[i], rh.dsts[i])
		}
	}
	return rh
}

// tick runs at the top of every migration decision tick: it folds the
// controller's per-app report counters (not yet reset) into per-region
// violation fractions, then issues the next batched Remos probe, whose
// reply refreshes the bandwidth component for the following tick.
func (rh *RegionHealth) tick() {
	for r := range rh.viol {
		rh.viol[r], rh.reports[r] = 0, 0
	}
	for _, name := range rh.f.order {
		a := rh.f.apps[name]
		if !a.Live() || a.health == nil {
			continue
		}
		h := a.health
		rep := float64(h.latReports + h.bwReports)
		if rep == 0 {
			continue
		}
		v := float64(h.latViol + h.bwBelow)
		for i := range rh.cur {
			rh.cur[i] = false
		}
		for _, host := range a.Assign.ServerHosts {
			r := rh.f.Grid.RouterIndex(host)
			if r >= 0 && !rh.cur[r] {
				rh.cur[r] = true
				rh.viol[r] += v
				rh.reports[r] += rep
			}
		}
	}
	for r := range rh.violFrac {
		if rh.reports[r] > 0 {
			rh.violFrac[r] = rh.viol[r] / rh.reports[r]
		} else {
			rh.violFrac[r] = 0
		}
	}
	if rh.f.tracer != nil {
		// One region.health counter sample per measured region per tick, in
		// region order (deterministic), rendered as counter tracks by the
		// Chrome exporter: V1 = score, V2 = measured bandwidth.
		for r := range rh.bw {
			if rh.bw[r] < 0 {
				continue
			}
			s, _ := rh.Score(r)
			rh.f.tracer.Instant(obs.KindRegionHealth, 0, "", "region"+strconv.Itoa(r), s, rh.bw[r])
		}
	}
	if !rh.inFlight && len(rh.srcs) > 0 {
		rh.inFlight = true
		rh.f.Rm.GetFlowBatch(rh.f.Host, rh.srcs, rh.dsts, rh.out, rh.fold)
	}
}

// fold lands a batch reply: each region keeps the better of its two probes.
// NaN probes (cold pairs) leave the previous measurement in place.
func (rh *RegionHealth) fold(bws []float64) {
	rh.inFlight = false
	for r := range rh.bw {
		best := math.NaN()
		for p := 2 * r; p < 2*r+2 && p < len(bws); p++ {
			if v := bws[p]; !math.IsNaN(v) && (math.IsNaN(best) || v > best) {
				best = v
			}
		}
		if !math.IsNaN(best) {
			rh.bw[r] = best
		}
	}
}

// Score returns region r's current health score and whether the region has
// been measured yet. Unmeasured regions are never ranked — "measurably
// best" requires a measurement.
func (rh *RegionHealth) Score(r int) (float64, bool) {
	if r < 0 || r >= len(rh.bw) || rh.bw[r] < 0 {
		return 0, false
	}
	n := rh.bw[r] / rh.refBps
	if n > 1 {
		n = 1
	}
	return n - rh.violFrac[r], true
}

// Regions returns the number of regions the index covers.
func (rh *RegionHealth) Regions() int { return len(rh.bw) }

// degraded reports whether region r measures below the policy's floor.
func (rh *RegionHealth) degraded(r int) bool {
	return rh.bw[r] >= 0 && rh.bw[r] < rh.f.Cfg.Migration.RegionFloorBps
}

// appDegraded is the proactive backbone-degradation verdict: every measured
// region hosting one of the application's servers is below the floor. It
// fires on correlated backbone contention ticks before gauge reports have
// accumulated enough evidence, turning CrushBackbone into a first-class
// migration trigger rather than something only visible through wedged
// latency reports.
func (rh *RegionHealth) appDegraded(a *App) bool {
	measured := false
	for _, h := range a.Assign.ServerHosts {
		r := rh.f.Grid.RouterIndex(h)
		if r < 0 || rh.bw[r] < 0 {
			continue
		}
		if !rh.degraded(r) {
			return false
		}
		measured = true
	}
	return measured
}

// RankFor builds the placement rank for migrating a: every region that is
// measurably at least as healthy as the application's current worst server
// region, excluding the regions the application already occupies. ok=false
// when nothing qualifies (index not yet warm, or no admissible region) —
// the controller then falls back to the staged avoid-set path. The returned
// rank aliases internal scratch and is only valid until the next call.
func (rh *RegionHealth) RankFor(a *App) (rank RegionRank, source float64, ok bool) {
	for i := range rh.cur {
		rh.cur[i] = false
	}
	a.Assign.hosts(func(h netsim.NodeID) {
		if r := rh.f.Grid.RouterIndex(h); r >= 0 {
			rh.cur[r] = true
		}
	})
	source, measured := math.Inf(1), false
	for _, h := range a.Assign.ServerHosts {
		if s, ok := rh.Score(rh.f.Grid.RouterIndex(h)); ok {
			measured = true
			if s < source {
				source = s
			}
		}
	}
	if !measured {
		return nil, 0, false
	}
	out := rh.rank[:0]
	any := false
	for r := range rh.bw {
		s, ok := rh.Score(r)
		if !ok || rh.cur[r] || s < source {
			out = append(out, math.Inf(-1))
			continue
		}
		out = append(out, s)
		any = true
	}
	rh.rank = out
	if !any {
		return nil, source, false
	}
	return out, source, true
}

// AssignmentHealth scores a placed assignment as the minimum health of the
// regions its servers landed in — the weakest-link view the ranked-
// targeting property (target never measurably worse than source) is stated
// over.
func (rh *RegionHealth) AssignmentHealth(a *Assignment) float64 {
	min := math.Inf(1)
	for _, h := range a.ServerHosts {
		if s, ok := rh.Score(rh.f.Grid.RouterIndex(h)); ok && s < min {
			min = s
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}
