// Package fleet is the grid control plane: it runs N managed applications
// on one shared simulated grid, where the paper ran one.
//
// The fleet owns everything that is per-grid rather than per-application:
//
//   - Placement (placement.go): a slot-capacity scheduler (Scheduler) that
//     decides *where* an application's processes run — at admission it
//     spreads replicas across routers and ranks candidate hosts by Remos
//     bandwidth predictions; the same machinery re-places applications
//     later (PlaceAvoiding) when the migration controller needs a healthy
//     region. Placement is a pure spatial decision: it commits slots and
//     produces an Assignment, and never touches a running process.
//   - Migration (migration.go): the fleet-level feedback loop that acts on
//     placement. Where each application's own core.Manager repairs *within*
//     its architecture (swap server groups, recruit spares), the migration
//     controller watches per-app gauge reports through the sharded
//     monitoring plane and, when sustained degradation shows intra-app
//     repair has failed, drains the application and re-places it whole —
//     new slots, re-pointed processes, monitoring plane re-anchored —
//     mid-run. Disabled (the default) it schedules nothing and the fleet
//     behaves exactly as before it existed.
//   - Lifecycle: mid-run admission (Admit) and retirement (Retire), with
//     freed slots and monitoring resources recycled for later admissions.
//   - The shared monitoring plane: one sharded probe bus, one sharded
//     gauge-report bus (bus.Bus) and one gauge manager (gauges.Manager)
//     serve the whole fleet. Admission leases an application its isolated
//     shards and gauge lease (core.Plane); retirement detaches them
//     completely — probes silenced, subscriptions removed, gauges torn
//     down — and returns the shards to the bus pools. The pre-sharding
//     one-plane-per-app design is retained behind Config.PerAppMonitoring
//     as the byte-identical reference oracle.
//   - Workload and measurement: targeted bandwidth contention
//     (CrushPrimary/CrushServers, refcounted across apps), correlated
//     backbone contention and region-wide failure injection
//     (CrushBackbone, FailRegion), ground-truth latency sampling, and
//     per-app summaries/fleet aggregates. scenario.go and catalog.go turn
//     these into canned, deterministic scenario runs.
//
// Each admitted application keeps its own architectural model, constraint
// registry and repair engine (core.Manager); the fleet multiplexes them
// over the shared kernel. Runs are deterministic: the same ScenarioOptions
// (including Seed) produce identical summaries.
package fleet

import (
	"fmt"
	"strings"

	"archadapt/internal/app"
	"archadapt/internal/arrivals"
	"archadapt/internal/bus"
	"archadapt/internal/core"
	"archadapt/internal/gauges"
	"archadapt/internal/metrics"
	"archadapt/internal/model"
	"archadapt/internal/netsim"
	"archadapt/internal/obs"
	"archadapt/internal/operators"
	"archadapt/internal/remos"
	"archadapt/internal/repair"
	"archadapt/internal/sim"
)

// Config tunes the fleet control plane.
type Config struct {
	// Manager is the per-application architecture-manager configuration.
	Manager core.Config
	// Adaptive enables repairs; false runs every manager as a pure observer
	// (the fleet-wide control run).
	Adaptive bool
	// HostCapacity is the number of process slots per grid host (default 4).
	HostCapacity int
	// SamplePeriod of the fleet's ground-truth latency sampler (default 5 s).
	SamplePeriod float64
	// PerAppMonitoring gives every application its own private event buses
	// and gauge manager, the pre-sharding design. It is the reference oracle
	// for the fleet-shared monitoring plane (the default), mirroring
	// ScenarioOptions.GlobalReflow: equivalence tests run the same scenario
	// both ways and require byte-identical summaries.
	PerAppMonitoring bool
	// Migration enables and tunes the fleet-level migration controller
	// (migration.go). The zero value disables it; enabling it requires the
	// fleet-shared monitoring plane (not PerAppMonitoring).
	Migration MigrationPolicy
	// OpenLoop enables and tunes the open-loop heavy-traffic engine
	// (openloop.go): aggregated flow classes driven by arrival processes,
	// replica autoscaling and fleet admission control. The zero value
	// disables it and the fleet is byte-identical to a build without the
	// engine.
	OpenLoop OpenLoopPolicy
	// Trace attaches the whole control loop — kernel, monitoring plane,
	// per-app managers, migration controller, region health — to one
	// deterministic observability tracer (internal/obs). Off (the default)
	// no tracer exists and runs are byte-identical to a build without the
	// plane; on, Fleet.Tracer() exposes the collected spans, phase latencies
	// and kernel event-rate counters. Requires the fleet-shared monitoring
	// plane (not PerAppMonitoring).
	Trace bool
	// Workers sizes the fleet's simulation worker pool. 0 or 1 (the default)
	// runs fully serial — the retained single-threaded oracle. Above 1 the
	// fleet attaches the pool to the network solver (disjoint dirty
	// components fill concurrently) and fans per-application sampling and
	// summary aggregation out across it, grouped by each app's worker
	// affinity. The kernel's (time, seq) event order stays the single source
	// of truth, so same-seed runs are byte-identical at every worker count.
	Workers int
	// ShardByRegion declares that the grid carries a region shard plane
	// (netsim.Grid.AttachShards) and the run is driven by sim.Shards windows
	// instead of a single Kernel.Run: each region's events execute on its own
	// shard kernel, with cross-region flow completions, bus deliveries and
	// Remos exchanges hosted on the destination's shard. New validates the
	// flag against the grid — a sharded fleet without a plane (or a plane
	// without the flag) is a wiring bug, not a mode. Off (the default) the
	// fleet is byte-identical to a build without the plane; on, the shared
	// (time, seq) order keeps runs byte-identical to the single-kernel oracle
	// at every shard count.
	ShardByRegion bool
}

func (c Config) withDefaults() Config {
	if c.HostCapacity < 1 {
		c.HostCapacity = 4
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 5
	}
	return c
}

// AppSpec describes one managed application to admit: a replicated
// client/server system in the paper's architectural style, scaled by counts
// rather than named element lists. Element names (SG1, S1, C1, …) are scoped
// to the application; hosts are assigned by the scheduler.
type AppSpec struct {
	Name string
	// Groups is the number of server groups (default 2: a primary and an
	// alternative for bandwidth repairs to move clients to).
	Groups int
	// ServersPerGroup counts active replicas per group (default 2).
	ServersPerGroup int
	// SparesPerGroup counts additional inactive servers per group that load
	// repairs can recruit (default 0).
	SparesPerGroup int
	// Clients counts request generators (default 2).
	Clients int

	// ClientRate is requests/sec per client (default 1). RespBits is the
	// median reply size (default 8 KB, jittered per request).
	ClientRate float64
	RespBits   float64

	// Task-layer thresholds; zero values default to the paper's 2 s latency
	// bound, load 6, and 10 Kbps bandwidth floor.
	MaxLatency    float64
	MaxServerLoad float64
	MinBandwidth  float64

	// Arrivals selects the application's open-loop arrival process
	// (openloop.go); read only when Config.OpenLoop is enabled. The zero
	// value is Poisson at ClientRate per modeled user, which makes the
	// open-loop run the load-equivalent of the closed-loop one.
	Arrivals ArrivalSpec
}

func (s AppSpec) withDefaults() AppSpec {
	if s.Groups < 1 {
		s.Groups = 2
	}
	if s.ServersPerGroup < 1 {
		s.ServersPerGroup = 2
	}
	if s.SparesPerGroup < 0 {
		s.SparesPerGroup = 0
	}
	if s.Clients < 1 {
		s.Clients = 2
	}
	if s.ClientRate <= 0 {
		s.ClientRate = 1
	}
	if s.RespBits <= 0 {
		s.RespBits = 8 * 8192
	}
	if s.MaxLatency <= 0 {
		s.MaxLatency = 2
	}
	if s.MaxServerLoad <= 0 {
		s.MaxServerLoad = 6
	}
	if s.MinBandwidth <= 0 {
		s.MinBandwidth = 10e3
	}
	return s
}

// Spec expands the counts into the operators.Spec the model builder and
// deployer consume. Group i is named SGi, its servers Si_j, clients Ci.
func (s AppSpec) Spec() operators.Spec {
	spec := operators.Spec{
		Name:          s.Name,
		MaxLatency:    s.MaxLatency,
		MaxServerLoad: s.MaxServerLoad,
		MinBandwidth:  s.MinBandwidth,
	}
	for g := 1; g <= s.Groups; g++ {
		gs := operators.GroupSpec{
			Name:        fmt.Sprintf("SG%d", g),
			ActiveCount: s.ServersPerGroup,
		}
		for j := 1; j <= s.ServersPerGroup+s.SparesPerGroup; j++ {
			gs.Servers = append(gs.Servers, fmt.Sprintf("S%d_%d", g, j))
		}
		spec.Groups = append(spec.Groups, gs)
	}
	for c := 1; c <= s.Clients; c++ {
		spec.Clients = append(spec.Clients, operators.ClientSpec{
			Name:  fmt.Sprintf("C%d", c),
			Group: "SG1",
		})
	}
	return spec
}

// App is one managed application running under the fleet: its processes, its
// private architectural model and manager, and its ground-truth series.
type App struct {
	Name   string
	Spec   AppSpec
	Opspec operators.Spec
	Assign *Assignment

	Sys   *app.System
	Model *model.System
	Mgr   *core.Manager

	// Latency holds one ground-truth series per client, sampled by the
	// fleet's sampler (the per-app Figure 8/11 equivalent).
	Latency map[string]*metrics.Series

	AdmittedAt float64
	// RetiredAt is -1 while the application is live.
	RetiredAt float64

	// Migrations records every re-placement of this application (completed,
	// failed and aborted attempts alike), in decision order.
	Migrations []Migration

	obs     *app.LatencyObserver
	crushed []netsim.LinkID
	// admIdx is the application's admission sequence number — the
	// coordination layer's deterministic last tie-break. affinity is the
	// app's simulation worker group (admIdx modulo pool size; 0 when the
	// fleet runs serial): the fleet keeps one app's parallelizable work on
	// one worker group, and stamps it on the app's leased shards and gauges.
	admIdx   int
	affinity int
	// migrating marks an in-progress drain; pending is the staged target
	// reservation, released again if the app retires mid-drain. health is
	// the fleet controller's view of this app (nil when migration is
	// disabled).
	migrating bool
	pending   *Reservation
	health    *appHealth
	// ol is the app's open-loop engine state (openloop.go); nil unless
	// Config.OpenLoop is enabled.
	ol *openApp
	// probe/report are the app's leased shards on the fleet monitoring
	// plane (nil under PerAppMonitoring); released back to the bus pools at
	// retirement.
	probe, report *bus.Shard
	// traceDrain is the open drain span of an in-progress migration (zero
	// when tracing is off or no drain is running); closed at cutover or when
	// the drain is aborted by retirement or fleet stop.
	traceDrain obs.SpanID
}

// Live reports whether the application is still running.
func (a *App) Live() bool { return a.RetiredAt < 0 }

// WorkerAffinity returns the app's simulation worker group — admission index
// modulo the fleet's worker count, or 0 on a serial fleet.
func (a *App) WorkerAffinity() int { return a.affinity }

// Fleet multiplexes N managed applications over one shared kernel, network
// and Remos collector. The fleet owns the monitoring plane — one sharded
// probe bus, one sharded gauge-report bus and one gauge manager serve every
// application; apps lease shards and gauge leases at admission and return
// them at retirement. Each admitted application still gets its own model
// and repair engine; the fleet owns placement, admission, retirement, and
// metric aggregation.
type Fleet struct {
	K    *sim.Kernel
	Grid *netsim.Grid
	Net  *netsim.Network
	Rm   *remos.Service
	Sch  *Scheduler
	Cfg  Config
	// Host is the fleet's own control host (the machine carrying the Remos
	// collector); the migration controller's health subscriptions land here.
	Host netsim.NodeID

	// ProbeBus, ReportBus and Gauges are the fleet-shared monitoring plane
	// (nil under Config.PerAppMonitoring, where every app builds its own).
	ProbeBus  *bus.Bus
	ReportBus *bus.Bus
	Gauges    *gauges.Manager

	rng        *sim.Rand
	apps       map[string]*App
	order      []string
	rejections []Rejection
	crushes    map[netsim.LinkID]int // contention refcount per link (apps may share hosts)
	stopSample func()

	stopMigrate func()
	stopped     bool
	// Backbone/region failure bookkeeping (faults.go): refcounts nest
	// repeated injections, the link lists hold what is still crushed (partial
	// restores shrink them), and regionFailedAt records when each standing
	// region failure began — the drain-race check compares it against a
	// migration's decision time.
	backboneRefs    int
	backboneCrushed []netsim.LinkID
	regionFailRefs  map[int]int
	regionCrushed   map[int][]netsim.LinkID
	regionFailedAt  map[int]float64

	// tracer is the fleet's observability plane (nil unless Config.Trace).
	tracer *obs.Tracer

	// rh is the region health index (nil unless Migration.Ranked);
	// inFlight/peakInFlight count concurrently draining migrations;
	// migrCands is the decision tick's candidate scratch.
	rh           *RegionHealth
	inFlight     int
	peakInFlight int
	migrCands    []*App

	// pool is the simulation worker pool (nil when Config.Workers <= 1 —
	// the serial oracle). Detached and closed by Close; sampleGroups is the
	// per-tick affinity-partition scratch.
	pool         *sim.WorkerPool
	sampleGroups [][]*App

	// ol is the open-loop engine (openloop.go); nil unless Config.OpenLoop
	// is enabled.
	ol *openLoop
}

// Rejection records a failed admission (grid full or placement error).
type Rejection struct {
	Name string
	Time float64
	Err  error
}

// New creates a fleet control plane over a generated grid. The shared Remos
// collector is reserved a slot on the least-loaded host, like the paper's
// Remos collector living on the testbed.
func New(k *sim.Kernel, grid *netsim.Grid, seed uint64, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Migration.validate(); err != nil {
		return nil, err
	}
	cfg.Migration = cfg.Migration.withDefaults()
	if err := cfg.OpenLoop.validate(); err != nil {
		return nil, err
	}
	if cfg.OpenLoop.Enabled {
		cfg.OpenLoop = cfg.OpenLoop.withDefaults()
	}
	if cfg.Migration.Enabled && cfg.PerAppMonitoring {
		return nil, fmt.Errorf("fleet: migration requires the fleet-shared monitoring plane (disable PerAppMonitoring)")
	}
	if cfg.Trace && cfg.PerAppMonitoring {
		return nil, fmt.Errorf("fleet: tracing requires the fleet-shared monitoring plane (disable PerAppMonitoring)")
	}
	if cfg.ShardByRegion && grid.Net.Shard == nil {
		return nil, fmt.Errorf("fleet: ShardByRegion set but the grid has no shard plane (call Grid.AttachShards first)")
	}
	if !cfg.ShardByRegion && grid.Net.Shard != nil {
		return nil, fmt.Errorf("fleet: grid has a shard plane but Config.ShardByRegion is off")
	}
	if cfg.ShardByRegion && grid.Net.Shard.Set().Shard(0).Kernel != k {
		return nil, fmt.Errorf("fleet: sharded fleet must run on shard 0's kernel (the control shard)")
	}
	f := &Fleet{
		K: k, Grid: grid, Net: grid.Net, Cfg: cfg,
		rng:            sim.NewRand(seed),
		apps:           map[string]*App{},
		crushes:        map[netsim.LinkID]int{},
		regionFailRefs: map[int]int{},
		regionCrushed:  map[int][]netsim.LinkID{},
		regionFailedAt: map[int]float64{},
	}
	f.pool = sim.NewWorkerPool(cfg.Workers)
	f.Net.Workers = f.pool
	f.Sch = NewScheduler(grid, cfg.HostCapacity, nil)
	rmHost, err := f.Sch.Reserve()
	if err != nil {
		// The pool is already live: release its goroutines before bailing, or
		// every failed construction leaks Workers-many of them.
		f.Close()
		return nil, fmt.Errorf("fleet: placing Remos collector: %w", err)
	}
	f.Host = rmHost
	f.Rm = remos.New(k, grid.Net, rmHost)
	if !cfg.PerAppMonitoring {
		f.ProbeBus = bus.New(k, grid.Net)
		f.ProbeBus.Priority = cfg.Manager.MonitoringPriority
		f.ReportBus = bus.New(k, grid.Net)
		f.ReportBus.Priority = cfg.Manager.MonitoringPriority
		f.Gauges = gauges.NewManager(k, grid.Net, rmHost)
		f.Gauges.Caching = cfg.Manager.GaugeCaching
		f.Gauges.Priority = cfg.Manager.MonitoringPriority
	}
	if cfg.Trace {
		// One tracer spans the whole plane: the buses stamp probe samples and
		// gauge reports, each admitted manager chains model updates through
		// repairs (core.Config.Tracer rides f.Cfg.Manager into Admit), the
		// kernel hook feeds the event-rate counter, and the migration
		// controller adds the fleet-level spans.
		f.tracer = obs.New(k.Now)
		f.ProbeBus.Tracer = f.tracer
		f.ReportBus.Tracer = f.tracer
		f.Cfg.Manager.Tracer = f.tracer
		if sp := f.Net.Shard; sp != nil {
			// Sharded: every region kernel fires events, so the event-rate
			// counter must observe them all (shard 0's kernel is k itself).
			sp.ForEachKernel(func(sk *sim.Kernel) { sk.FireHook = f.tracer.KernelEvent })
		} else {
			k.FireHook = f.tracer.KernelEvent
		}
	}
	f.Sch.Predict = func(src, dst netsim.NodeID) float64 {
		if bw, ok := f.Rm.Predict(src, dst); ok {
			return bw
		}
		// Cold pair: fall back to the instantaneous estimate; the admission
		// path cannot block for a multi-minute collection.
		return f.Net.AvailBandwidth(src, dst)
	}
	f.stopSample = k.Ticker(k.Now()+cfg.SamplePeriod, cfg.SamplePeriod, f.sample)
	if cfg.Migration.Enabled {
		p := cfg.Migration
		if p.Ranked {
			f.rh = newRegionHealth(f)
		}
		f.stopMigrate = k.Ticker(k.Now()+p.CheckPeriod, p.CheckPeriod, f.migrationTick)
	}
	if cfg.OpenLoop.Enabled {
		f.startOpenLoop()
	}
	return f, nil
}

// RegionHealth returns the measured region health index, or nil unless
// ranked migration targeting (Config.Migration.Ranked) is enabled.
func (f *Fleet) RegionHealth() *RegionHealth { return f.rh }

// Tracer returns the fleet's observability plane, or nil unless Config.Trace
// is enabled.
func (f *Fleet) Tracer() *obs.Tracer { return f.tracer }

// MigrationsInFlight returns how many migrations are currently draining.
func (f *Fleet) MigrationsInFlight() int { return f.inFlight }

// PeakConcurrentMigrations returns the high-water mark of concurrently
// draining migrations over the run — never above the policy's
// MaxConcurrent unless LegacyTargeting disabled the cap.
func (f *Fleet) PeakConcurrentMigrations() int { return f.peakInFlight }

// Apps returns admitted application names in admission order (including
// retired ones).
func (f *Fleet) Apps() []string { return f.order }

// App returns an application handle by name.
func (f *Fleet) App(name string) *App { return f.apps[name] }

// Live returns the number of currently running applications.
func (f *Fleet) Live() int {
	n := 0
	for _, name := range f.order {
		if f.apps[name].Live() {
			n++
		}
	}
	return n
}

// Rejections returns failed admissions.
func (f *Fleet) Rejections() []Rejection { return f.rejections }

// AuditSlots cross-checks the scheduler's slot ledger against the fleet's
// own books: the Remos collector's reserved slot, every live application's
// assignment and every staged mid-drain reservation must account for exactly
// the difference between grid capacity and FreeSlots, and no host may be
// loaded outside [0, HostCapacity]. Any drift means a leaked or double-booked
// reservation somewhere in the admit/retire/migrate machinery — the chaos
// soak harness calls this after every run and on a mid-run ticker.
func (f *Fleet) AuditSlots() error {
	used := 1 // the Remos collector's reserved slot
	for _, name := range f.order {
		a := f.apps[name]
		if a.Live() {
			used += a.Assign.slots()
			if a.ol != nil {
				used += a.ol.scaledSlots()
			}
		}
		if a.pending != nil {
			used += a.pending.Assignment().slots()
		}
	}
	total := len(f.Grid.Hosts) * f.Sch.HostCapacity
	if free := f.Sch.FreeSlots(); free != total-used {
		return fmt.Errorf("fleet: slot ledger drift: %d free, want %d (%d of %d slots accounted for)",
			free, total-used, used, total)
	}
	for _, h := range f.Grid.Hosts {
		if l := f.Sch.Load(h); l < 0 || l > f.Sch.HostCapacity {
			return fmt.Errorf("fleet: host %v carries %d committed slots, outside [0,%d]",
				h, l, f.Sch.HostCapacity)
		}
	}
	return nil
}

// Admit places and starts one application at the current virtual time. It
// can be called before the run starts or mid-run (from kernel context): the
// application's clients, gauges and control loop all schedule from Now.
// With the open-loop admission controller enabled a saturated fleet sheds
// the candidate (or queues it for retry) before placement is attempted.
func (f *Fleet) Admit(spec AppSpec) (*App, error) {
	return f.admit(spec, false)
}

// admit is Admit plus the retry flag: a retry re-offers a spec already on
// the admission queue, so the ledger's Offered/Queued counters (charged at
// the original offer) are not charged again.
func (f *Fleet) admit(spec AppSpec, retry bool) (*App, error) {
	spec = spec.withDefaults()
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("app%02d", len(f.order)+len(f.rejections))
	}
	if _, dup := f.apps[spec.Name]; dup {
		return nil, fmt.Errorf("fleet: duplicate application %q", spec.Name)
	}
	var olProc arrivals.Process
	var olUsers float64
	olGated := false
	if f.ol != nil {
		var err error
		olProc, err = spec.Arrivals.process(spec.ClientRate)
		if err != nil {
			f.rejections = append(f.rejections, Rejection{Name: spec.Name, Time: f.K.Now(), Err: err})
			return nil, err
		}
		olUsers = float64(f.ol.p.Users)
		if f.ol.p.Users <= 0 {
			olUsers = float64(spec.Clients)
		}
		if f.ol.p.Admission.Enabled {
			olGated = true
			if !retry {
				f.ol.ledger.Offered++
			}
			if !f.openLoopAdmissible(spec, olProc, olUsers, f.K.Now()) {
				if f.ol.p.Admission.Queue {
					if !retry {
						f.ol.ledger.Queued++
						f.ol.queued = append(f.ol.queued, spec)
					}
					return nil, fmt.Errorf("fleet: %q: %w", spec.Name, errAdmissionQueued)
				}
				err := fmt.Errorf("fleet: admission shed %q: offered load would saturate the fleet", spec.Name)
				f.ol.ledger.Shed++
				f.rejections = append(f.rejections, Rejection{Name: spec.Name, Time: f.K.Now(), Err: err})
				return nil, err
			}
			if retry {
				f.ol.ledger.Queued-- // leaving the queue: admitted or shed at placement
			}
		}
	}
	opspec := spec.Spec()
	assign, err := f.Sch.Place(opspec)
	if err != nil {
		if olGated {
			f.ol.ledger.Shed++
		}
		f.rejections = append(f.rejections, Rejection{Name: spec.Name, Time: f.K.Now(), Err: err})
		return nil, err
	}

	a := &App{
		Name: spec.Name, Spec: spec, Opspec: opspec, Assign: assign,
		Latency:    map[string]*metrics.Series{},
		AdmittedAt: f.K.Now(),
		RetiredAt:  -1,
	}

	// Internal admission failures below release the placement; they count
	// as sheds so the admission ledger stays balanced.
	fail := func(err error) (*App, error) {
		f.Sch.Release(assign)
		if olGated {
			f.ol.ledger.Shed++
		}
		return nil, err
	}

	// Application processes on the shared network.
	sys := app.New(f.K, f.Net, assign.QueueHost)
	for _, g := range opspec.Groups {
		if err := sys.CreateQueue(g.Name); err != nil {
			return fail(err)
		}
		for i, srv := range g.Servers {
			sys.AddServer(srv, assign.ServerHosts[srv], g.Name, olServiceBase, olServicePerBit)
			if i < g.ActiveCount {
				if err := sys.Activate(srv); err != nil {
					return fail(err)
				}
			}
		}
	}
	for _, c := range opspec.Clients {
		cli := sys.AddClient(c.Name, assign.ClientHosts[c.Name], c.Group, spec.ClientRate,
			f.rng.Fork("app:"+spec.Name+":client:"+c.Name))
		r := f.rng.Fork("app:" + spec.Name + ":resp:" + c.Name)
		median := spec.RespBits
		cli.RespBits = func() float64 { return r.LogNormalAround(median, 0.35) }
	}
	a.Sys = sys

	// Private architectural model and manager over the shared kernel/Remos.
	mdl, err := operators.Build(opspec)
	if err != nil {
		return fail(err)
	}
	a.Model = mdl
	cfg := f.Cfg.Manager
	cfg.DisableRepairs = !f.Cfg.Adaptive
	if f.Cfg.PerAppMonitoring {
		a.Mgr = core.New(cfg, f.K, f.Net, sys, mdl, assign.ManagerHost, f.Rm)
	} else {
		// Lease the app a slice of the fleet-shared monitoring plane.
		lease, err := f.Gauges.Lease(spec.Name, assign.ManagerHost)
		if err != nil {
			return fail(err)
		}
		a.probe = f.ProbeBus.Acquire()
		a.report = f.ReportBus.Acquire()
		// The shard label names this tenant in every span the bus stamps;
		// the affinity ties the tenant's shards to its worker group.
		a.probe.Label = spec.Name
		a.report.Label = spec.Name
		if f.pool != nil {
			aff := len(f.order) % f.pool.Size()
			a.probe.Affinity, a.report.Affinity, lease.Affinity = aff, aff, aff
		}
		a.Mgr = core.NewAttached(cfg, f.K, f.Net, sys, mdl, assign.ManagerHost, f.Rm,
			core.Plane{Probe: a.probe, Report: a.report, Gauges: lease})
	}

	// Ground-truth latency sampling (window average, or the age of the
	// oldest outstanding request while a client is wedged).
	var clientNames []string
	for _, c := range opspec.Clients {
		clientNames = append(clientNames, c.Name)
		a.Latency[c.Name] = metrics.NewSeries(spec.Name + "/latency:" + c.Name)
	}
	a.obs = app.ObserveLatency(sys, clientNames, 30)

	a.Mgr.Deploy()
	sys.Start()
	a.admIdx = len(f.order)
	if f.pool != nil {
		a.affinity = a.admIdx % f.pool.Size()
	}
	f.apps[spec.Name] = a
	f.order = append(f.order, spec.Name)
	if f.Cfg.Migration.Enabled {
		f.attachHealth(a)
	}
	if f.ol != nil {
		f.openLoopRegister(a, olProc, olUsers, olGated)
	}
	return a, nil
}

// Retire stops an application and returns its slots to the scheduler.
// In-flight transfers drain naturally; the handle (and its series) survive
// for fleet summaries.
func (f *Fleet) Retire(name string) error {
	a := f.apps[name]
	if a == nil {
		return fmt.Errorf("fleet: no application %q", name)
	}
	if !a.Live() {
		return fmt.Errorf("fleet: application %q already retired", name)
	}
	if a.migrating {
		// Retired mid-drain: abort the migration and return the staged
		// reservation's slots. The drain poller sees migrating=false and
		// stops; the clients stay paused — they are being retired.
		f.abortDrain(a, nil, false)
	}
	if f.Cfg.PerAppMonitoring {
		a.Mgr.Stop()
	} else {
		// Full detach from the shared plane: probes silenced, report
		// subscription removed, gauges torn down — then the app's shards go
		// back to the bus pools for the next admission. The fleet's health
		// subscription (migration controller) dies with the report shard.
		a.Mgr.Shutdown()
		a.probe.Release()
		a.report.Release()
		a.probe, a.report = nil, nil
		a.health = nil
	}
	a.Sys.StopClients()
	if a.ol != nil {
		f.openLoopTeardown(a, false)
		f.openLoopRetired(a)
	}
	f.RestorePrimary(name)
	f.Sch.Release(a.Assign)
	a.RetiredAt = f.K.Now()
	return nil
}

// Stop halts every live application and the fleet sampler (end of run).
// Unlike Retire it does not release a live application's slots — the run
// is over. In-progress migration drains are aborted: their staged
// reservations are returned so the scheduler ledger and the in-flight
// counter stay consistent for post-run inspection.
func (f *Fleet) Stop() {
	f.stopped = true
	if f.stopSample != nil {
		f.stopSample()
		f.stopSample = nil
	}
	if f.stopMigrate != nil {
		f.stopMigrate()
		f.stopMigrate = nil
	}
	f.stopOpenLoop()
	for _, name := range f.order {
		a := f.apps[name]
		if a.Live() {
			if a.migrating {
				f.abortDrain(a, nil, false)
			}
			a.Mgr.Stop()
			a.Sys.StopClients()
		}
	}
}

// Close releases the fleet's worker pool (no-op on a serial fleet). The
// fleet detaches the pool first — from the network solver and its own
// fan-outs — so later solves, samples or summaries simply run serial; with
// byte-identical semantics at every worker count, nothing else changes.
// Safe to call more than once. Scenario runs close their fleet after the
// final summaries; long-lived embedders should do the same.
func (f *Fleet) Close() {
	if f.pool == nil {
		return
	}
	pool := f.pool
	f.pool = nil
	f.Net.Workers = nil
	pool.Close()
}

// sample records each live application's per-client ground-truth latency.
// With a worker pool attached, live apps are partitioned by worker affinity
// and the groups sample concurrently: one app's observer and series belong to
// exactly one group, and samples land in per-app series, so the recorded data
// is byte-identical to the serial walk.
func (f *Fleet) sample(now float64) {
	if f.pool == nil {
		for _, name := range f.order {
			f.sampleApp(f.apps[name], now)
		}
		return
	}
	for len(f.sampleGroups) < f.pool.Size() {
		f.sampleGroups = append(f.sampleGroups, nil)
	}
	groups := f.sampleGroups[:f.pool.Size()]
	for g := range groups {
		groups[g] = groups[g][:0]
	}
	for _, name := range f.order {
		a := f.apps[name]
		groups[a.affinity] = append(groups[a.affinity], a)
	}
	f.pool.Do(len(groups), func(g int) {
		for _, a := range groups[g] {
			f.sampleApp(a, now)
		}
	})
}

func (f *Fleet) sampleApp(a *App, now float64) {
	if !a.Live() {
		return
	}
	for _, c := range a.Opspec.Clients {
		if v, ok := a.obs.Sample(c.Name, now); ok {
			a.Latency[c.Name].Add(now, v)
		}
	}
}

// AppSummary is one application's aggregate row.
type AppSummary struct {
	Name       string
	AdmittedAt float64
	RetiredAt  float64 // -1 if still live at fleet stop

	Clients, Servers int
	Responses        uint64
	Dropped          uint64

	// PeakLatency is the worst sampled client latency; FracAboveBound the
	// fraction of (client, sample) points above the app's latency bound.
	PeakLatency    float64
	FracAboveBound float64

	Repairs, Moves, Alerts int
	MeanRepairSeconds      float64

	// Migrations counts completed fleet-level re-placements of this app.
	Migrations int

	// ScaleUps and ScaleDowns count the open-loop autoscaler's replica
	// additions and removals for this app. Zero on closed-loop runs.
	ScaleUps, ScaleDowns int

	// Phases holds the app's adaptation phase-latency distributions
	// (detect/decide/drain/recover), collected by the observability plane.
	// Nil when the fleet ran untraced; non-nil (possibly empty) on every
	// summary of a traced run.
	Phases *obs.PhaseSet
}

// Summarize aggregates one application.
func (a *App) Summarize() AppSummary {
	s := AppSummary{
		Name:       a.Name,
		AdmittedAt: a.AdmittedAt,
		RetiredAt:  a.RetiredAt,
		Clients:    len(a.Opspec.Clients),
		Servers:    len(a.Sys.Servers()),
		Dropped:    a.Sys.DroppedRequests(),
	}
	for _, c := range a.Opspec.Clients {
		s.Responses += a.Sys.Client(c.Name).Responses()
	}
	var above, total float64
	for _, c := range a.Opspec.Clients {
		ser := a.Latency[c.Name]
		for i := 0; i < ser.Len(); i++ {
			_, v := ser.At(i)
			total++
			if v > a.Spec.MaxLatency {
				above++
			}
			if v > s.PeakLatency {
				s.PeakLatency = v
			}
		}
	}
	if total > 0 {
		s.FracAboveBound = above / total
	}
	spans := a.Mgr.Spans()
	s.Repairs = len(spans)
	for _, sp := range spans {
		s.MeanRepairSeconds += sp.Duration()
		for _, op := range sp.Ops {
			if op.Kind == repair.OpMoveClient {
				s.Moves++
			}
		}
	}
	if s.Repairs > 0 {
		s.MeanRepairSeconds /= float64(s.Repairs)
	}
	s.Alerts = len(a.Mgr.Alerts())
	for _, m := range a.Migrations {
		if m.Completed() {
			s.Migrations++
		}
	}
	if a.ol != nil {
		s.ScaleUps, s.ScaleDowns = a.ol.ups, a.ol.downs
	}
	return s
}

// Summaries aggregates every admitted application, in admission order. On a
// traced fleet each summary additionally carries the app's phase-latency
// distributions. With a worker pool attached the per-app aggregation fans
// out across it — each summary reads only its own app's state and lands in
// its own row, so the result is byte-identical to the serial walk; the
// tracer attach stays serial (one tracer serves the whole plane).
func (f *Fleet) Summaries() []AppSummary {
	if len(f.order) == 0 {
		return nil
	}
	out := make([]AppSummary, len(f.order))
	f.pool.Do(len(f.order), func(i int) {
		out[i] = f.apps[f.order[i]].Summarize()
	})
	if f.tracer != nil {
		for i := range out {
			if out[i].Phases = f.tracer.PhasesFor(out[i].Name); out[i].Phases == nil {
				out[i].Phases = &obs.PhaseSet{}
			}
		}
	}
	return out
}

// Totals is the fleet-level aggregate.
type Totals struct {
	Apps, Live, Retired    int
	Responses, Dropped     uint64
	Repairs, Moves, Alerts int
	Migrations             int
	ScaleUps, ScaleDowns   int
	// WorstFracAboveBound is the worst per-app violation fraction — the
	// fleet's SLO headline.
	WorstFracAboveBound float64
}

// Aggregate folds per-app summaries into fleet totals.
func Aggregate(sums []AppSummary) Totals {
	var t Totals
	t.Apps = len(sums)
	for _, s := range sums {
		if s.RetiredAt >= 0 {
			t.Retired++
		} else {
			t.Live++
		}
		t.Responses += s.Responses
		t.Dropped += s.Dropped
		t.Repairs += s.Repairs
		t.Moves += s.Moves
		t.Alerts += s.Alerts
		t.Migrations += s.Migrations
		t.ScaleUps += s.ScaleUps
		t.ScaleDowns += s.ScaleDowns
		if s.FracAboveBound > t.WorstFracAboveBound {
			t.WorstFracAboveBound = s.FracAboveBound
		}
	}
	return t
}

// Table renders per-app summaries as a fixed-width table.
func Table(sums []AppSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s %6s %6s %9s %8s %8s %7s %6s %6s %5s %11s\n",
		"app", "admitted", "retired", "cli", "srv", "responses", "dropped",
		"peak-lat", ">bound%", "reps", "moves", "migs", "mean-repair")
	for _, s := range sums {
		retired := "-"
		if s.RetiredAt >= 0 {
			retired = fmt.Sprintf("%.0f", s.RetiredAt)
		}
		fmt.Fprintf(&b, "%-8s %9.0f %9s %6d %6d %9d %8d %7.2fs %6.1f%% %6d %6d %5d %10.1fs\n",
			s.Name, s.AdmittedAt, retired, s.Clients, s.Servers, s.Responses, s.Dropped,
			s.PeakLatency, 100*s.FracAboveBound, s.Repairs, s.Moves, s.Migrations,
			s.MeanRepairSeconds)
	}
	t := Aggregate(sums)
	fmt.Fprintf(&b, "fleet: apps=%d live=%d retired=%d responses=%d dropped=%d repairs=%d moves=%d alerts=%d migrations=%d worst>bound=%.1f%%\n",
		t.Apps, t.Live, t.Retired, t.Responses, t.Dropped, t.Repairs, t.Moves, t.Alerts,
		t.Migrations, 100*t.WorstFracAboveBound)
	b.WriteString(phaseBlock(sums))
	return b.String()
}

// phaseDists formats one PhaseSet as per-phase p50/p95/p99 columns.
func phaseDists(b *strings.Builder, ps *obs.PhaseSet) {
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		d := ps.Dist(p)
		if d.N() == 0 {
			fmt.Fprintf(b, " %18s", "-")
			continue
		}
		fmt.Fprintf(b, " %18s", fmt.Sprintf("%.1f/%.1f/%.1f", d.Percentile(50), d.Percentile(95), d.Percentile(99)))
	}
	b.WriteByte('\n')
}

// phaseBlock renders the phase-latency table for traced summaries: one row
// per app plus a fleet-wide merge. Empty when the run was untraced (no
// summary carries phases).
func phaseBlock(sums []AppSummary) string {
	any := false
	for _, s := range sums {
		if s.Phases != nil {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "phase latency p50/p95/p99 (s): %-8s", "app")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		fmt.Fprintf(&b, " %18s", p.String())
	}
	b.WriteByte('\n')
	all := &obs.PhaseSet{}
	for _, s := range sums {
		if s.Phases == nil {
			continue
		}
		all.Merge(s.Phases)
		fmt.Fprintf(&b, "%30s %-8s", "", s.Name)
		phaseDists(&b, s.Phases)
	}
	fmt.Fprintf(&b, "%30s %-8s", "", "fleet")
	phaseDists(&b, all)
	return b.String()
}

// ComparePair is one application's summaries across two same-seed runs —
// a control/baseline run (A) and the run under test (B). ComparePairs is
// the data behind CompareTable; tests assert on it directly.
type ComparePair struct {
	Name string
	A, B AppSummary
}

// ComparePairs pairs summaries by application name, in A order. Apps missing
// from B (e.g. rejected there) are skipped.
func ComparePairs(a, b []AppSummary) []ComparePair {
	byName := map[string]AppSummary{}
	for _, s := range b {
		byName[s.Name] = s
	}
	var out []ComparePair
	for _, s := range a {
		other, ok := byName[s.Name]
		if !ok {
			continue
		}
		out = append(out, ComparePair{Name: s.Name, A: s, B: other})
	}
	return out
}

// CompareTable renders a per-app comparison of two same-seed runs (the fleet
// version of the paper's Figures 8 vs 11): control vs adaptive, or pinned vs
// migrating. Rows pair by app name in the first run's order; the reps/moves/
// migs column describes the second run.
func CompareTable(control, adaptive []AppSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %16s %18s %14s %15s\n",
		"app", ">bound% A→B", "peak-lat A→B", "resp A→B", "reps/moves/migs")
	for _, p := range ComparePairs(control, adaptive) {
		c, a := p.A, p.B
		fmt.Fprintf(&b, "%-8s %6.1f%% → %5.1f%% %7.2fs → %5.2fs %6d → %5d %8d/%d/%d\n",
			p.Name, 100*c.FracAboveBound, 100*a.FracAboveBound,
			c.PeakLatency, a.PeakLatency, c.Responses, a.Responses,
			a.Repairs, a.Moves, a.Migrations)
	}
	// Phase latencies describe the run under test (B).
	b.WriteString(phaseBlock(adaptive))
	return b.String()
}
