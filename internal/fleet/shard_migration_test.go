package fleet

import (
	"reflect"
	"testing"
)

// Cross-shard migration cutover: under per-region sharding the drain's source
// and target regions live on different shard kernels, so the cutover's
// re-placement, slot release and record stamping cross a shard boundary. The
// contract is the usual one — the Migration records and the slot ledger must
// match the single-kernel oracle byte for byte.
func TestCrossShardMigrationCutover(t *testing.T) {
	opts := regionCollapseOpts(true)

	oracle, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Shards = -1 // one shard per region
	run, err := StartScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Shards == nil || run.Shards.Len() < 2 {
		t.Fatalf("scenario did not shard by region: %+v", run.Shards)
	}
	sharded := run.Finish()

	// The scenario must actually exercise a cross-shard cutover, or the
	// byte-identity assertions below pass vacuously.
	plane := sharded.Grid.Net.Shard
	if plane == nil {
		t.Fatal("sharded run lost its shard plane")
	}
	crossed := false
	for _, name := range sharded.Fleet.Apps() {
		for _, m := range sharded.Fleet.App(name).Migrations {
			if m.Completed() && plane.ShardOf(m.FromManager) != plane.ShardOf(m.ToManager) {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Fatalf("no completed migration crossed a shard boundary; records: %+v",
			sharded.Fleet.App("app00").Migrations)
	}

	// Migration records, byte for byte.
	for _, name := range oracle.Fleet.Apps() {
		om := oracle.Fleet.App(name).Migrations
		sm := sharded.Fleet.App(name).Migrations
		if !reflect.DeepEqual(om, sm) {
			t.Fatalf("%s migration records diverge from the oracle:\n%+v\nvs\n%+v", name, om, sm)
		}
	}

	// Slot ledger: internally consistent on both sides and identical.
	if err := oracle.Fleet.AuditSlots(); err != nil {
		t.Fatalf("oracle slot audit: %v", err)
	}
	if err := sharded.Fleet.AuditSlots(); err != nil {
		t.Fatalf("sharded slot audit: %v", err)
	}
	if of, sf := oracle.Fleet.Sch.FreeSlots(), sharded.Fleet.Sch.FreeSlots(); of != sf {
		t.Fatalf("free-slot ledgers diverge: oracle %d, sharded %d", of, sf)
	}

	if ot, st := oracle.Table(), sharded.Table(); ot != st {
		t.Fatalf("summaries diverge:\n--- oracle\n%s--- sharded\n%s", ot, st)
	}
}
