package fleet

import (
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/repair"
	"archadapt/internal/sim"
)

// TestFleetAdmissionRetirement exercises the control-plane lifecycle:
// admission at t=0, mid-run admission, retirement releasing slots, and the
// retired application going quiet while the rest keep serving.
func TestFleetAdmissionRetirement(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 9, HostsPerRouter: 3, Seed: 3})
	f, err := New(k, grid, 3, Config{HostCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := AppSpec{Groups: 2, ServersPerGroup: 2, Clients: 2}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		s := spec
		s.Name = name
		if _, err := f.Admit(s); err != nil {
			t.Fatalf("admitting %s: %v", name, err)
		}
	}
	if got := f.Live(); got != 3 {
		t.Fatalf("live = %d, want 3", got)
	}
	// 27 hosts, 1 reserved for Remos, 3 apps x 8 slots = 25 used: delta full.
	s := spec
	s.Name = "delta"
	if _, err := f.Admit(s); err == nil {
		t.Fatal("expected delta to be rejected on a full grid")
	}
	if len(f.Rejections()) != 1 || f.Rejections()[0].Name != "delta" {
		t.Fatalf("rejections = %+v, want one for delta", f.Rejections())
	}

	// Retire beta mid-run; its freed slots admit epsilon.
	var betaAtRetire, epsilonAdmitted uint64
	k.At(200, func() {
		if err := f.Retire("beta"); err != nil {
			t.Errorf("retiring beta: %v", err)
		}
		betaAtRetire = f.App("beta").Sys.Client("C1").Responses()
		s := spec
		s.Name = "epsilon"
		if _, err := f.Admit(s); err != nil {
			t.Errorf("admitting epsilon after retirement: %v", err)
		} else {
			epsilonAdmitted = 1
		}
	})
	k.Run(500)
	f.Stop()
	k.Run(620)

	if epsilonAdmitted != 1 {
		t.Fatal("epsilon was not admitted after beta's retirement")
	}
	if got := f.Live(); got != 3 {
		t.Fatalf("live after retirement+admission = %d, want 3", got)
	}
	beta := f.App("beta")
	if beta.RetiredAt != 200 {
		t.Fatalf("beta.RetiredAt = %v, want 200", beta.RetiredAt)
	}
	// A retired app generates no new requests; allow the few in flight at
	// retirement to drain.
	if got := beta.Sys.Client("C1").Responses(); got > betaAtRetire+5 {
		t.Fatalf("beta kept serving after retirement: %d -> %d", betaAtRetire, got)
	}
	for _, name := range []string{"alpha", "gamma", "epsilon"} {
		if got := f.App(name).Sys.Client("C1").Responses(); got == 0 {
			t.Fatalf("%s served no responses", name)
		}
	}
	sums := f.Summaries()
	if len(sums) != 4 {
		t.Fatalf("summaries = %d, want 4", len(sums))
	}
	if epsilon := sums[3]; epsilon.AdmittedAt != 200 {
		t.Fatalf("epsilon.AdmittedAt = %v, want 200", epsilon.AdmittedAt)
	}
}

// TestFleetScenarioDeterministic asserts the acceptance criterion: two runs
// with the same seed produce identical per-app summaries.
func TestFleetScenarioDeterministic(t *testing.T) {
	opts := ScenarioOptions{
		Apps: 8, Seed: 11, Duration: 450, Adaptive: true,
		CrushStart: 120, CrushStagger: 5, CrushDuration: 180,
	}
	r1, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if t1, t2 := r1.Table(), r2.Table(); t1 != t2 {
		t.Fatalf("summaries differ between identical runs:\n--- run 1\n%s--- run 2\n%s", t1, t2)
	}
}

// TestFleetRepairsEachAppIndependently is the end-to-end acceptance test: a
// fleet of 8 applications under staggered Figure 7-style contention, where
// each application's manager must detect and repair its own latency
// violation (by moving its clients to the healthy group) without help from —
// or interference with — the others.
func TestFleetRepairsEachAppIndependently(t *testing.T) {
	opts := ScenarioOptions{
		Apps: 8, Seed: 5, Duration: 600, Adaptive: true,
		CrushStart: 120, CrushStagger: 10, CrushDuration: 300,
	}
	res, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 8 {
		t.Fatalf("admitted %d apps, want 8 (rejections: %v)", len(res.Summaries), res.Fleet.Rejections())
	}
	for _, s := range res.Summaries {
		if s.Repairs == 0 {
			t.Errorf("%s: no repairs fired", s.Name)
		}
		if s.Moves == 0 {
			t.Errorf("%s: no client moves (bandwidth tactic never committed)", s.Name)
		}
		if s.Responses == 0 {
			t.Errorf("%s: no responses", s.Name)
		}
		// The repair must actually have moved the clients off the crushed
		// primary group.
		a := res.Fleet.App(s.Name)
		for _, c := range a.Opspec.Clients {
			if grp := a.Sys.Client(c.Name).Group; grp == "SG1" {
				t.Errorf("%s: client %s still on crushed SG1", s.Name, c.Name)
			}
		}
	}

	// Control comparison: without repairs the same contention leaves every
	// app violating its bound far more of the time.
	ctl, err := RunScenario(ScenarioOptions{
		Apps: 8, Seed: 5, Duration: 600, Adaptive: false,
		CrushStart: 120, CrushStagger: 10, CrushDuration: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ctl.Summaries {
		a := res.Summaries[i]
		if a.FracAboveBound >= c.FracAboveBound {
			t.Errorf("%s: adaptive >bound %.1f%% not better than control %.1f%%",
				a.Name, 100*a.FracAboveBound, 100*c.FracAboveBound)
		}
	}
}

// TestFleetCrushIsTargeted verifies the independence premise of the e2e
// test: crushing one application's primary paths leaves other applications'
// latency within bound (each process has its own host at capacity 1).
func TestFleetCrushIsTargeted(t *testing.T) {
	res, err := RunScenario(ScenarioOptions{
		Apps: 4, Seed: 9, Duration: 400, Adaptive: false,
		CrushStart: 120, CrushStagger: 1e9, // only app00 is ever crushed
		CrushDuration: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if crushed := res.Summaries[0]; crushed.FracAboveBound == 0 {
		t.Error("app00 never violated its bound despite contention")
	}
	for _, s := range res.Summaries[1:] {
		if s.FracAboveBound > 0.02 {
			t.Errorf("%s: violated bound %.1f%% of samples while only app00 was crushed",
				s.Name, 100*s.FracAboveBound)
		}
	}
}

// TestFleetNewOnAdvancedKernel: the control plane must stand up on a kernel
// whose clock is already past the sample period (e.g. after a warm-up
// phase) without scheduling in the past.
func TestFleetNewOnAdvancedKernel(t *testing.T) {
	k := sim.NewKernel()
	k.Run(50) // advance the clock with an empty queue
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 6, HostsPerRouter: 3, Seed: 1})
	f, err := New(k, grid, 1, Config{HostCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "late"})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(200)
	f.Stop()
	k.Run(320)
	if a.AdmittedAt != 50 {
		t.Fatalf("AdmittedAt = %v, want 50", a.AdmittedAt)
	}
	if a.Latency["C1"].Len() == 0 {
		t.Fatal("sampler recorded nothing on an advanced kernel")
	}
}

// TestCrushSharedLinkRefcount: when two applications' crushed server hosts
// share an access link, restoring one application must not lift the other's
// still-active contention.
func TestCrushSharedLinkRefcount(t *testing.T) {
	k := sim.NewKernel()
	// One router, two hosts, generous capacity: apps are forced to share.
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 1, HostsPerRouter: 2, Seed: 1})
	f, err := New(k, grid, 1, Config{HostCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	spec := AppSpec{Groups: 1, ServersPerGroup: 1, Clients: 1}
	for _, name := range []string{"a", "b"} {
		s := spec
		s.Name = name
		if _, err := f.Admit(s); err != nil {
			t.Fatal(err)
		}
	}
	linkA := f.Grid.AccessLink(f.App("a").Assign.ServerHosts["S1_1"])
	linkB := f.Grid.AccessLink(f.App("b").Assign.ServerHosts["S1_1"])
	if linkA != linkB {
		t.Skip("placement did not co-locate the two apps' servers")
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.CrushPrimary("a"))
	must(f.CrushPrimary("b"))
	f.RestorePrimary("a")
	if got := f.Net.Background(linkA, netsim.Fwd); got == 0 {
		t.Fatal("restoring app a lifted app b's still-active contention")
	}
	f.RestorePrimary("b")
	if got := f.Net.Background(linkA, netsim.Fwd); got != 0 {
		t.Fatalf("background = %v after both restores, want 0", got)
	}
}

// TestFleetSpareRecruitment checks the other Figure 5 tactic at fleet scale:
// with spares available and load-driven contention, managers activate spare
// servers.
func TestFleetSpareRecruitment(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 6, HostsPerRouter: 3, Seed: 2})
	f, err := New(k, grid, 2, Config{Adaptive: true, HostCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One group only: moves are impossible, so the load tactic must fire.
	a, err := f.Admit(AppSpec{
		Name: "hot", Groups: 1, ServersPerGroup: 1, SparesPerGroup: 2, Clients: 2,
		ClientRate: 4, RespBits: 20 * 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(500)
	f.Stop()
	k.Run(620)
	added := 0
	for _, sp := range a.Mgr.Spans() {
		for _, op := range sp.Ops {
			if op.Kind == repair.OpAddServer {
				added++
			}
		}
	}
	if added == 0 {
		t.Fatalf("no spare recruited; spans=%v alerts=%v", a.Mgr.Spans(), a.Mgr.Alerts())
	}
	if got := len(a.Sys.ActiveServersOf("SG1")); got < 2 {
		t.Fatalf("active servers = %d, want >=2 after recruitment", got)
	}
}
