package fleet

import (
	"reflect"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// TestMigrationTargetingEquivalence extends the monitoring/solver oracle
// pattern to the migration controller: with ranking disabled (RegionRank
// nil everywhere, no region probes) the coordinated controller must be
// byte-identical to the retained PR 4 reference path
// (MigrationPolicy.LegacyTargeting: staged avoid-set targeting, no
// concurrency cap). Both paths run over the full scenario catalog; entries
// that exercise the new behavior by design — ranked targeting, or an
// explicitly binding MaxConcurrent — are excluded, because there the two
// controllers are *supposed* to differ.
func TestMigrationTargetingEquivalence(t *testing.T) {
	for _, e := range Catalog() {
		if e.Opts.Migration.Ranked || e.Opts.Migration.MaxConcurrent != 0 {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			coordinated, err := RunScenario(e.Opts)
			if err != nil {
				t.Fatal(err)
			}
			legacyOpts := e.Opts
			legacyOpts.Migration.LegacyTargeting = true
			legacy, err := RunScenario(legacyOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(coordinated.Summaries, legacy.Summaries) {
				t.Fatalf("summaries diverged from the legacy avoid-set controller:\ncoordinated:\n%s\nlegacy:\n%s",
					Table(coordinated.Summaries), Table(legacy.Summaries))
			}
			if ct, lt := coordinated.Table(), legacy.Table(); ct != lt {
				t.Fatalf("summary tables diverged:\n%s\nvs\n%s", ct, lt)
			}
			// Migration records must match in every timing detail, and none
			// may claim ranked targeting on either path.
			for _, name := range coordinated.Fleet.Apps() {
				cm := coordinated.Fleet.App(name).Migrations
				lm := legacy.Fleet.App(name).Migrations
				if len(cm) != len(lm) {
					t.Fatalf("%s: migration counts differ: %d vs %d", name, len(cm), len(lm))
				}
				for i := range cm {
					if cm[i].Ranked || lm[i].Ranked {
						t.Errorf("%s migration %d claims ranked targeting with ranking disabled", name, i)
					}
					if cm[i].DecidedAt != lm[i].DecidedAt || cm[i].CompletedAt != lm[i].CompletedAt ||
						cm[i].FromManager != lm[i].FromManager || cm[i].ToManager != lm[i].ToManager {
						t.Errorf("%s migration %d differs: %+v vs %+v", name, i, cm[i], lm[i])
					}
				}
			}
		})
	}
}

// TestRankingOffIssuesNoProbes guards the off-path purity of the region
// health machinery: with migration enabled but Ranked false, no region
// health index exists and the Remos collector sees exactly the query load
// of the pre-ranking controller (no prequeried probe pairs, no batches).
func TestRankingOffIssuesNoProbes(t *testing.T) {
	run := func(ranked bool) (*Fleet, uint64, uint64) {
		k := sim.NewKernel()
		grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 8, HostsPerRouter: 3, Seed: 6})
		pol := MigrationPolicy{Enabled: true, Ranked: ranked}
		f, err := New(k, grid, 6, Config{Adaptive: true, HostCapacity: 1, Migration: pol})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Admit(AppSpec{Name: "x"}); err != nil {
			t.Fatal(err)
		}
		k.Run(300)
		f.Stop()
		k.Run(400)
		return f, f.Rm.Queries(), f.Rm.ColdQueries()
	}
	fOff, qOff, cOff := run(false)
	if fOff.RegionHealth() != nil {
		t.Error("region health index exists with ranking disabled")
	}
	fOn, qOn, cOn := run(true)
	if fOn.RegionHealth() == nil {
		t.Fatal("region health index missing with ranking enabled")
	}
	if qOn <= qOff {
		t.Errorf("ranked run issued no extra Remos queries (%d vs %d) — the index is not measuring", qOn, qOff)
	}
	if cOn <= cOff {
		t.Errorf("ranked run started no extra collections (%d vs %d) — probe pairs were not pre-queried", cOn, cOff)
	}
}

// TestPlaceRankedNilIsPlace: the scheduler-level half of the equivalence
// contract — an empty rank degenerates to exactly Place.
func TestPlaceRankedNilIsPlace(t *testing.T) {
	k := sim.NewKernel()
	spec := AppSpec{Name: "x"}.withDefaults().Spec()
	build := func() *Scheduler {
		grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 6, HostsPerRouter: 4, Seed: 9})
		return NewScheduler(grid, 2, nil)
	}
	a := build()
	b := build()
	pa, err := a.Place(spec)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.PlaceRanked(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("PlaceRanked(nil) diverged from Place:\n%+v\nvs\n%+v", pa, pb)
	}
}
