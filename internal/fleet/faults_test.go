package fleet

import (
	"strings"
	"testing"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// cleanBackgrounds asserts no link carries leftover background load — the
// end state every balanced fault schedule must restore.
func cleanBackgrounds(t *testing.T, net *netsim.Network) {
	t.Helper()
	for id := 0; id < net.NumLinks(); id++ {
		for _, d := range []netsim.Dir{netsim.Fwd, netsim.Rev} {
			if bg := net.Background(netsim.LinkID(id), d); bg != 0 {
				t.Fatalf("link %d dir %d still carries %g bps background after balanced restores", id, d, bg)
			}
		}
	}
}

// TestRestoreWithoutFailErrors pins the unbalanced-call contract: restoring
// a backbone or region that was never failed returns an error and changes
// no link state, and a second restore after a balanced pair errors too.
func TestRestoreWithoutFailErrors(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 5, HostsPerRouter: 2, Seed: 1})
	f, err := New(k, grid, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}

	if err := f.RestoreBackbone(); err == nil {
		t.Error("RestoreBackbone on a healthy backbone: want error, got nil")
	}
	if err := f.RestoreBackboneFraction(0.5); err == nil {
		t.Error("RestoreBackboneFraction on a healthy backbone: want error, got nil")
	}
	if err := f.RestoreRegion(2); err == nil {
		t.Error("RestoreRegion on a healthy region: want error, got nil")
	}
	if err := f.RestoreRegionFraction(2, 0.5); err == nil {
		t.Error("RestoreRegionFraction on a healthy region: want error, got nil")
	}
	cleanBackgrounds(t, f.Net)

	// Balanced pairs succeed; the extra restore after them errors again.
	f.CrushBackbone(0.5, 30e3)
	if err := f.RestoreBackbone(); err != nil {
		t.Errorf("balanced RestoreBackbone: %v", err)
	}
	if err := f.RestoreBackbone(); err == nil {
		t.Error("second RestoreBackbone after balance: want error, got nil")
	}
	if err := f.FailRegion(1); err != nil {
		t.Errorf("FailRegion: %v", err)
	}
	if err := f.RestoreRegion(1); err != nil {
		t.Errorf("balanced RestoreRegion: %v", err)
	}
	if err := f.RestoreRegion(1); err == nil {
		t.Error("second RestoreRegion after balance: want error, got nil")
	}
	cleanBackgrounds(t, f.Net)

	if err := f.FailRegion(99); err == nil {
		t.Error("FailRegion(99) on a 5-router grid: want error, got nil")
	}
}

// TestNestedRegionFailureHoldsUntilBalanced pins the refcount semantics: a
// region failed twice stays failed after one restore and recovers only when
// every failure is balanced; same for the backbone.
func TestNestedRegionFailureHoldsUntilBalanced(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 5, HostsPerRouter: 2, Seed: 2})
	f, err := New(k, grid, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	link := grid.AccessLink(grid.HostsByRouter[1][0])

	_ = f.FailRegion(1)
	_ = f.FailRegion(1) // nested
	if err := f.RestoreRegion(1); err != nil {
		t.Fatalf("first RestoreRegion: %v", err)
	}
	if bg := f.Net.Background(link, netsim.Fwd); bg == 0 {
		t.Error("region recovered after one restore despite a nested failure")
	}
	if err := f.RestoreRegion(1); err != nil {
		t.Fatalf("second RestoreRegion: %v", err)
	}
	cleanBackgrounds(t, f.Net)

	f.CrushBackbone(0.5, 30e3)
	f.CrushBackbone(0.3, 60e3) // nested; first call's parameters stay in force
	bb := grid.Backbone[0]
	if err := f.RestoreBackbone(); err != nil {
		t.Fatalf("first RestoreBackbone: %v", err)
	}
	if bg := f.Net.Background(bb, netsim.Fwd); bg == 0 {
		t.Error("backbone recovered after one restore despite a nested crush")
	}
	if err := f.RestoreBackbone(); err != nil {
		t.Fatalf("second RestoreBackbone: %v", err)
	}
	cleanBackgrounds(t, f.Net)
}

// TestPartialRestoreLiftsSubset pins the partial restores: half the failed
// links recover early, the rest stay starved until the balancing restore.
func TestPartialRestoreLiftsSubset(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 5, HostsPerRouter: 4, Seed: 3})
	f, err := New(k, grid, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}

	_ = f.FailRegion(2)
	hosts := grid.HostsByRouter[2]
	if err := f.RestoreRegionFraction(2, 0.5); err != nil {
		t.Fatalf("RestoreRegionFraction: %v", err)
	}
	lifted, still := 0, 0
	for _, h := range hosts {
		if f.Net.Background(grid.AccessLink(h), netsim.Fwd) == 0 {
			lifted++
		} else {
			still++
		}
	}
	if lifted != 2 || still != 2 {
		t.Fatalf("after a 0.5 partial restore of 4 links: %d lifted, %d still starved; want 2/2", lifted, still)
	}
	if err := f.RestoreRegion(2); err != nil {
		t.Fatalf("balancing RestoreRegion: %v", err)
	}
	cleanBackgrounds(t, f.Net)

	f.CrushBackbone(1.0, 30e3)
	if err := f.RestoreBackboneFraction(1.0); err != nil {
		t.Fatalf("RestoreBackboneFraction: %v", err)
	}
	cleanBackgrounds(t, f.Net) // all links lifted early...
	if err := f.RestoreBackbone(); err != nil {
		t.Fatalf("...but the crush still needs balancing: %v", err)
	}
}

// TestFaultInjectorRefcountRoundTrip is the refcount round-trip property
// test: seeded random interleavings of region failures, backbone crushes,
// per-app crushes, partial restores and deliberately unbalanced restores —
// after every legitimate injection is balanced, every link's background load
// must be exactly zero and the slot ledger must audit clean, and every
// unbalanced restore must have errored without corrupting anything.
func TestFaultInjectorRefcountRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		rng := sim.NewRand(seed).Fork("faults:property")
		k := sim.NewKernel()
		grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 6, HostsPerRouter: 3, Seed: seed})
		f, err := New(k, grid, seed, Config{HostCapacity: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := f.Admit(AppSpec{Groups: 1, ServersPerGroup: 1, Clients: 1}); err != nil {
				t.Fatal(err)
			}
		}
		names := f.Apps()

		// Mirror bookkeeping: how many unbalanced failures this test holds.
		regionRefs := map[int]int{}
		backboneRefs := 0
		regions := len(grid.HostsByRouter)

		for op := 0; op < 60; op++ {
			switch rng.Intn(8) {
			case 0:
				r := rng.Intn(regions)
				if err := f.FailRegion(r); err != nil {
					t.Fatalf("seed %d: FailRegion(%d): %v", seed, r, err)
				}
				regionRefs[r]++
			case 1:
				f.CrushBackbone(0.2+0.6*rng.Float64(), 30e3)
				backboneRefs++
			case 2: // balance one open region failure, if any
				for r := 0; r < regions; r++ {
					if regionRefs[r] > 0 {
						if err := f.RestoreRegion(r); err != nil {
							t.Fatalf("seed %d: balanced RestoreRegion(%d): %v", seed, r, err)
						}
						regionRefs[r]--
						break
					}
				}
			case 3: // balance one open backbone crush, if any
				if backboneRefs > 0 {
					if err := f.RestoreBackbone(); err != nil {
						t.Fatalf("seed %d: balanced RestoreBackbone: %v", seed, err)
					}
					backboneRefs--
				}
			case 4: // stray restore of a region this test is not holding
				for r := 0; r < regions; r++ {
					if regionRefs[r] == 0 {
						if err := f.RestoreRegion(r); err == nil {
							t.Fatalf("seed %d: stray RestoreRegion(%d) did not error", seed, r)
						}
						break
					}
				}
			case 5: // partial restores: legal on held failures, errors otherwise
				r := rng.Intn(regions)
				err := f.RestoreRegionFraction(r, rng.Float64())
				if (err == nil) != (regionRefs[r] > 0) {
					t.Fatalf("seed %d: RestoreRegionFraction(%d) err=%v with refs=%d", seed, r, err, regionRefs[r])
				}
				if backboneRefs > 0 {
					if err := f.RestoreBackboneFraction(rng.Float64()); err != nil {
						t.Fatalf("seed %d: RestoreBackboneFraction: %v", seed, err)
					}
				}
			case 6:
				name := names[rng.Intn(len(names))]
				_ = f.CrushServers(name)
			case 7:
				f.RestorePrimary(names[rng.Intn(len(names))])
			}
		}

		// Drain: balance everything still open, restore the app crushes.
		for r := 0; r < regions; r++ {
			for ; regionRefs[r] > 0; regionRefs[r]-- {
				if err := f.RestoreRegion(r); err != nil {
					t.Fatalf("seed %d: draining RestoreRegion(%d): %v", seed, r, err)
				}
			}
		}
		for ; backboneRefs > 0; backboneRefs-- {
			if err := f.RestoreBackbone(); err != nil {
				t.Fatalf("seed %d: draining RestoreBackbone: %v", seed, err)
			}
		}
		for _, name := range names {
			f.RestorePrimary(name)
		}
		cleanBackgrounds(t, f.Net)
		if err := f.AuditSlots(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := f.Net.VerifyReference(1e-6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDrainAbortsWhenTargetRegionFails is the drain-race regression test: a
// migration is draining toward a staged target when that target's region
// fails. The drain must abort cleanly — reservation released, clients
// resumed on the old placement, the record stamped aborted with the reason —
// instead of cutting over into the freshly failed region.
func TestDrainAbortsWhenTargetRegionFails(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 8, HostsPerRouter: 3, Seed: 4})
	f, err := New(k, grid, 4, Config{Adaptive: true, HostCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// Crush every group so requests wedge and the drain cannot finish fast.
	k.At(150, func() { _ = f.CrushServers("x") })
	k.At(200, func() {
		if err := f.Migrate("x"); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	target := -1
	k.At(200.5, func() {
		if a.pending == nil {
			t.Error("no staged reservation to race against")
			return
		}
		target = grid.RouterIndex(a.pending.Assignment().ManagerHost)
		if err := f.FailRegion(target); err != nil {
			t.Errorf("FailRegion(%d): %v", target, err)
		}
	})
	k.Run(400)

	if got := len(a.Migrations); got != 1 {
		t.Fatalf("migrations = %+v, want exactly one aborted record", a.Migrations)
	}
	m := a.Migrations[0]
	if m.Completed() {
		t.Fatal("migration cut over into a region that failed mid-drain")
	}
	if !m.Aborted() {
		t.Fatal("migration record not stamped aborted")
	}
	if m.AbortedAt <= m.DecidedAt {
		t.Errorf("AbortedAt=%v not after DecidedAt=%v", m.AbortedAt, m.DecidedAt)
	}
	if m.Err == nil || !strings.Contains(m.Err.Error(), "failed mid-drain") {
		t.Errorf("abort reason = %v, want the mid-drain target failure", m.Err)
	}
	if a.migrating || a.pending != nil {
		t.Error("migration state not cleared by the abort")
	}
	if err := f.AuditSlots(); err != nil {
		t.Error(err)
	}
	// The reservation's slots are back: only Remos plus the app's own
	// (unchanged) assignment are committed.
	total := len(grid.Hosts)
	if got, want := f.Sch.FreeSlots(), total-1-a.Assign.slots(); got != want {
		t.Errorf("free slots = %d, want %d: the aborted reservation leaked", got, want)
	}

	// The clients resumed on the old placement: lift the contention and the
	// app serves again.
	before := a.Sys.Client("C1").Responses()
	k.At(410, func() {
		f.RestorePrimary("x")
		_ = f.RestoreRegion(target)
	})
	k.Run(700)
	if got := a.Sys.Client("C1").Responses(); got <= before {
		t.Errorf("clients never resumed after the abort: responses %d -> %d", before, got)
	}
}

// TestRetireRacesTargetRegionFailure interleaves all three mid-drain events
// — target-region failure, then retirement before the drain poller has seen
// the failure — and asserts the retire path wins cleanly: one aborted
// record, no leaks, all slots back.
func TestRetireRacesTargetRegionFailure(t *testing.T) {
	k := sim.NewKernel()
	grid := netsim.GenerateGrid(k, netsim.GridSpec{Routers: 8, HostsPerRouter: 3, Seed: 4})
	f, err := New(k, grid, 4, Config{Adaptive: true, HostCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(AppSpec{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	k.At(150, func() { _ = f.CrushServers("x") })
	k.At(200, func() {
		if err := f.Migrate("x"); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	// Fail the target 0.3 s after the decision and retire 0.3 s after that —
	// both inside the first drain-poll interval, so retirement gets there
	// first.
	k.At(200.3, func() {
		if a.pending == nil {
			t.Error("no staged reservation to race against")
			return
		}
		_ = f.FailRegion(grid.RouterIndex(a.pending.Assignment().ManagerHost))
	})
	k.At(200.6, func() {
		if err := f.Retire("x"); err != nil {
			t.Errorf("retire mid-drain: %v", err)
		}
	})
	k.Run(400)

	if got := len(a.Migrations); got != 1 {
		t.Fatalf("migrations = %+v, want exactly one aborted record", a.Migrations)
	}
	m := a.Migrations[0]
	if m.Completed() || !m.Aborted() {
		t.Fatalf("record = %+v, want aborted and not completed", m)
	}
	if m.Err != nil {
		t.Errorf("retirement abort carries Err=%v, want nil (AbortedAt says what happened)", m.Err)
	}
	if a.Live() {
		t.Fatal("app still live after retirement")
	}
	if err := f.AuditSlots(); err != nil {
		t.Error(err)
	}
	total := len(grid.Hosts)
	if got := f.Sch.FreeSlots(); got != total-1 {
		t.Errorf("free slots = %d, want %d (all but Remos)", got, total-1)
	}
}

// TestScenarioFaultScheduleRuns drives the declarative Faults schedule end
// to end — overlapping region failures with a racing partial restore,
// backbone churn, a forced migration and a mid-run retirement — and asserts
// the run is deterministic and ends balanced.
func TestScenarioFaultScheduleRuns(t *testing.T) {
	opts := ScenarioOptions{
		Apps: 3, Seed: 11, Duration: 420, CrushStart: -1, Adaptive: true,
		SpareRouters: 2,
		Faults: []Fault{
			{At: 120, Kind: FaultRegionFail, Router: 1, Duration: 120},
			{At: 150, Kind: FaultRegionFail, Router: 1, Duration: 120}, // nested
			{At: 180, Kind: FaultRegionPartialRestore, Router: 1, Fraction: 0.5},
			{At: 160, Kind: FaultBackboneCrush, Fraction: 0.4, LeaveBps: 40e3, Duration: 100},
			{At: 200, Kind: FaultBackbonePartialRestore, Fraction: 0.5},
			{At: 220, Kind: FaultMigrate, App: 1},
			{At: 300, Kind: FaultRetire, App: 2},
			{At: 310, Kind: FaultRegionRestore, Router: 3}, // unbalanced: safe no-op
		},
	}
	res1, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Table() != res2.Table() {
		t.Fatalf("fault-schedule run not deterministic:\n--- run 1\n%s\n--- run 2\n%s", res1.Table(), res2.Table())
	}
	f := res1.Fleet
	if a := f.App(ScenarioAppName(2)); a == nil || a.Live() {
		t.Error("FaultRetire did not retire app02")
	}
	if a := f.App(ScenarioAppName(1)); a == nil || len(a.Migrations) == 0 {
		t.Error("FaultMigrate recorded no migration attempt on app01")
	}
	cleanBackgrounds(t, f.Net)
	if err := f.AuditSlots(); err != nil {
		t.Error(err)
	}
}
